(* Tests for the ZDD kernel (§4.1 extension): set-family semantics
   against a reference implementation, zero-suppression canonicity, and
   BDD->ZDD conversion. *)

module Z = Jedd_bdd.Zdd
module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops

module SetFam = Set.Make (struct
  type t = int list

  let compare = compare
end)

let family_of t node =
  let acc = ref SetFam.empty in
  Z.iter_sets t node (fun s -> acc := SetFam.add s !acc);
  !acc

let test_terminals () =
  let t = Z.create () in
  Alcotest.(check int) "zero is empty family" 0 (Z.count t Z.zero);
  Alcotest.(check int) "one is {{}}" 1 (Z.count t Z.one);
  Alcotest.(check bool) "one contains the empty set" true
    (SetFam.mem [] (family_of t Z.one))

let test_singleton () =
  let t = Z.create () in
  let v = Z.new_var t in
  let s = Z.singleton_var t v in
  Alcotest.(check int) "one member" 1 (Z.count t s);
  Alcotest.(check bool) "the member is {v}" true
    (SetFam.equal (family_of t s) (SetFam.singleton [ v ]))

let test_union_inter_diff () =
  let t = Z.create () in
  let a = Z.new_var t and b = Z.new_var t and c = Z.new_var t in
  let sa = Z.singleton_var t a in
  let sb = Z.singleton_var t b in
  let sab = Z.change t sa b in
  (* {a}, {b}, {a,b} *)
  let fam = Z.union t (Z.union t sa sb) sab in
  Alcotest.(check int) "three members" 3 (Z.count t fam);
  let with_a = Z.subset1 t fam a in
  (* members containing a, with a removed: {} and {b} *)
  Alcotest.(check int) "two contained a" 2 (Z.count t with_a);
  let without_a = Z.subset0 t fam a in
  Alcotest.(check int) "one avoided a" 1 (Z.count t without_a);
  let minus = Z.diff t fam sb in
  Alcotest.(check int) "diff removes {b}" 2 (Z.count t minus);
  let inter = Z.inter t fam (Z.union t sb sab) in
  Alcotest.(check int) "intersection" 2 (Z.count t inter);
  ignore c

let test_canonicity () =
  let t = Z.create () in
  let a = Z.new_var t and b = Z.new_var t in
  let f1 = Z.union t (Z.singleton_var t a) (Z.singleton_var t b) in
  let f2 = Z.union t (Z.singleton_var t b) (Z.singleton_var t a) in
  Alcotest.(check int) "same family, same node" f1 f2

let test_of_assignments_roundtrip () =
  let t = Z.create () in
  let bits l = Array.init 4 (fun i -> List.mem i l) in
  let sets = [ [ 0; 2 ]; [ 1 ]; []; [ 0; 1; 2; 3 ] ] in
  let f = Z.of_assignments t ~nvars:4 (List.map bits sets) in
  Alcotest.(check int) "count" 4 (Z.count t f);
  Alcotest.(check bool) "members round-trip" true
    (SetFam.equal (family_of t f) (SetFam.of_list (List.map (List.sort compare) sets)))

let test_of_bdd () =
  let m = M.create () in
  let v0 = M.new_var m and v1 = M.new_var m in
  let f = Ops.bor m (M.var m v0) (M.var m v1) in
  let t = Z.create () in
  let z = Z.of_bdd m f t in
  (* satisfying assignments of x0|x1 over 2 vars: 01, 10, 11 *)
  Alcotest.(check int) "three assignments" 3 (Z.count t z);
  Alcotest.(check bool) "families match" true
    (SetFam.equal (family_of t z)
       (SetFam.of_list [ [ 0 ]; [ 1 ]; [ 0; 1 ] ]))

let prop_ops_match_reference =
  QCheck.Test.make ~count:200 ~name:"ZDD set algebra matches reference"
    QCheck.(pair (int_bound 1000000) (int_bound 1000))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed; extra |] in
      let rand n = Random.State.int st n in
      let nvars = 5 in
      let t = Z.create () in
      for _ = 1 to nvars do
        ignore (Z.new_var t)
      done;
      let random_family () =
        let k = rand 8 in
        List.init k (fun _ -> Array.init nvars (fun _ -> rand 2 = 0))
      in
      let fam1 = random_family () and fam2 = random_family () in
      let to_sets fam =
        SetFam.of_list
          (List.map
             (fun bits ->
               List.filteri (fun i _ -> bits.(i)) (List.init nvars Fun.id))
             fam)
      in
      let z1 = Z.of_assignments t ~nvars fam1 in
      let z2 = Z.of_assignments t ~nvars fam2 in
      let s1 = to_sets fam1 and s2 = to_sets fam2 in
      SetFam.equal (family_of t (Z.union t z1 z2)) (SetFam.union s1 s2)
      && SetFam.equal (family_of t (Z.inter t z1 z2)) (SetFam.inter s1 s2)
      && SetFam.equal (family_of t (Z.diff t z1 z2)) (SetFam.diff s1 s2)
      && Z.count t z1 = SetFam.cardinal s1)

let suite =
  [
    Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "union/inter/diff/subset" `Quick test_union_inter_diff;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "assignments roundtrip" `Quick
      test_of_assignments_roundtrip;
    Alcotest.test_case "of_bdd" `Quick test_of_bdd;
    QCheck_alcotest.to_alcotest ~verbose:false prop_ops_match_reference;
  ]
