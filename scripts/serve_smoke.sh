#!/bin/sh
# Server smoke test: cold-start jeddd on the tiny workload, save a
# snapshot, query it with jeddq over the socket, shut it down, then
# warm-start from the snapshot and check the answers agree.  Exercises
# the full analyze/serve/query/persist loop without the test harness.
set -eu

SOCK="$(mktemp -u /tmp/jeddd-smoke-XXXXXX.sock)"
SNAP="$(mktemp /tmp/jeddd-smoke-XXXXXX.snap)"
trap 'kill $JEDDD_PID 2>/dev/null || true; rm -f "$SOCK" "$SNAP"' EXIT

JEDDD="dune exec bin/jeddd_main.exe --"
JEDDQ="dune exec bin/jeddq_main.exe --"

dune build bin/jeddd_main.exe bin/jeddq_main.exe

wait_for_socket() {
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    echo "serve_smoke: server did not come up" >&2
    exit 1
}

echo "== cold start =="
$JEDDD -s "$SOCK" -b tiny --save "$SNAP" &
JEDDD_PID=$!
wait_for_socket

$JEDDQ -s "$SOCK" ping
$JEDDQ -s "$SOCK" version
COLD_COUNT=$($JEDDQ -s "$SOCK" count pt)
COLD_PT=$($JEDDQ -s "$SOCK" pointsto 0)
$JEDDQ -s "$SOCK" stats >/dev/null
$JEDDQ -s "$SOCK" shutdown
wait $JEDDD_PID

echo "== warm start from snapshot =="
[ -s "$SNAP" ] || { echo "serve_smoke: snapshot missing" >&2; exit 1; }
$JEDDD -s "$SOCK" --snapshot "$SNAP" &
JEDDD_PID=$!
wait_for_socket

WARM_COUNT=$($JEDDQ -s "$SOCK" count pt)
WARM_PT=$($JEDDQ -s "$SOCK" pointsto 0)
$JEDDQ -s "$SOCK" shutdown
wait $JEDDD_PID

[ "$COLD_COUNT" = "$WARM_COUNT" ] || {
    echo "serve_smoke: count mismatch: cold=$COLD_COUNT warm=$WARM_COUNT" >&2
    exit 1
}
[ "$COLD_PT" = "$WARM_PT" ] || {
    echo "serve_smoke: pointsto mismatch: cold=$COLD_PT warm=$WARM_PT" >&2
    exit 1
}

echo "serve_smoke: OK ($COLD_COUNT)"
