.PHONY: all check test smoke release bench-json clean

all:
	dune build

# The full gate: build, unit/property tests, and the seconds-scale
# benchmark smoke run.
check:
	dune build
	dune runtest
	dune build @bench-smoke

test:
	dune runtest

smoke:
	dune build @bench-smoke

# Optimised binaries (-O3 -unsafe -noassert); see the root `dune` file.
release:
	dune build --profile release

# Regenerate the machine-readable benchmark summary committed at the
# repo root (BENCH_pr1.json).
bench-json:
	dune exec --profile release bench/main.exe -- json

clean:
	dune clean
