examples/pointsto_demo.mli:
