lib/bdd/replace.ml: Hashtbl List Manager Ops
