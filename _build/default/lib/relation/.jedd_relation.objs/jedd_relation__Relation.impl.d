lib/relation/relation.ml: Array Attribute Domain Format Gc Hashtbl Jedd_bdd List Physdom Schema String Sys Universe
