(* Tests for the Jedd language: lexer, parser (Figure 5), type checker
   (Figure 6), physical-domain assignment (§3.3.2, Figure 7), error
   reporting (§3.3.3), and end-to-end execution of the paper's virtual
   call resolution example (Figure 4). *)

module L = Jedd_lang.Lexer
module P = Jedd_lang.Parser
module Ast = Jedd_lang.Ast
module TC = Jedd_lang.Typecheck
module C = Jedd_lang.Constraints
module E = Jedd_lang.Encode
module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module Schema = Jedd_relation.Schema

(* ---------------- lexer ---------------- *)

let toks src = List.map fst (L.tokenize ~file:"t.jedd" src)

let test_lexer_symbols () =
  Alcotest.(check bool) "join and compose symbols" true
    (toks "a >< b <> c" = [ L.IDENT "a"; L.JOIN_SYM; L.IDENT "b";
                            L.COMPOSE_SYM; L.IDENT "c"; L.EOF ]);
  Alcotest.(check bool) "constants" true
    (toks "0B 1B 42" = [ L.ZERO_B; L.ONE_B; L.INT 42; L.EOF ]);
  Alcotest.(check bool) "compound assignment" true
    (toks "x |= y &= z -= w" = [ L.IDENT "x"; L.PIPE_EQ; L.IDENT "y";
                                 L.AMP_EQ; L.IDENT "z"; L.MINUS_EQ;
                                 L.IDENT "w"; L.EOF ]);
  Alcotest.(check bool) "arrow vs comparison" true
    (toks "a => b == c != d" = [ L.IDENT "a"; L.ARROW; L.IDENT "b"; L.EQEQ;
                                 L.IDENT "c"; L.NEQ; L.IDENT "d"; L.EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "line and block comments" true
    (toks "a // comment\n /* block \n comment */ b" =
       [ L.IDENT "a"; L.IDENT "b"; L.EOF ])

let test_lexer_positions () =
  let all = L.tokenize ~file:"t.jedd" "ab\n  cd" in
  match all with
  | [ (_, p1); (_, p2); _ ] ->
    Alcotest.(check (pair int int)) "first" (1, 1) (p1.Ast.line, p1.Ast.col);
    Alcotest.(check (pair int int)) "second" (2, 3) (p2.Ast.line, p2.Ast.col)
  | _ -> Alcotest.fail "expected two tokens"

let test_lexer_error () =
  match toks "a $ b" with
  | exception L.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

(* ---------------- parser ---------------- *)

let test_parse_replace_forms () =
  (match (P.parse_expr_string "(a=>) x").Ast.desc with
  | Ast.Replace ([ Ast.Project_away "a" ], { desc = Ast.Var "x"; _ }) -> ()
  | _ -> Alcotest.fail "project form");
  (match (P.parse_expr_string "(a=>b) x").Ast.desc with
  | Ast.Replace ([ Ast.Rename_to ("a", "b") ], _) -> ()
  | _ -> Alcotest.fail "rename form");
  match (P.parse_expr_string "(a=>b c) x").Ast.desc with
  | Ast.Replace ([ Ast.Copy_to ("a", "b", "c") ], _) -> ()
  | _ -> Alcotest.fail "copy form"

let test_parse_join () =
  match (P.parse_expr_string "x{a, b} >< y{c, d}").Ast.desc with
  | Ast.JoinExpr (Ast.Join, { desc = Ast.Var "x"; _ }, [ "a"; "b" ],
                  { desc = Ast.Var "y"; _ }, [ "c"; "d" ]) -> ()
  | _ -> Alcotest.fail "join structure"

let test_parse_compose_in_parens () =
  (* the exact nesting used in line 10 of Figure 4 *)
  match (P.parse_expr_string "(supertype=>tgttype) (x {tgttype} <> y {subtype})").Ast.desc with
  | Ast.Replace ([ Ast.Rename_to ("supertype", "tgttype") ],
                 { desc = Ast.JoinExpr (Ast.Compose, _, [ "tgttype" ], _, [ "subtype" ]); _ })
    -> ()
  | _ -> Alcotest.fail "replace of parenthesised compose"

let test_parse_precedence () =
  (* '-' binds tighter than '&' binds tighter than '|' *)
  match (P.parse_expr_string "a | b & c - d").Ast.desc with
  | Ast.Binop (Ast.Union, { desc = Ast.Var "a"; _ },
               { desc = Ast.Binop (Ast.Inter, { desc = Ast.Var "b"; _ },
                                   { desc = Ast.Binop (Ast.Diff, _, _); _ }); _ })
    -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_literal () =
  match (P.parse_expr_string "new { t=>type, s=>signature:S1, 3=>method }").Ast.desc with
  | Ast.Literal
      [ (Ast.Obj_var "t", { attr_name = "type"; phys_name = None });
        (Ast.Obj_var "s", { attr_name = "signature"; phys_name = Some "S1" });
        (Ast.Obj_int 3, { attr_name = "method"; phys_name = None }) ] -> ()
  | _ -> Alcotest.fail "literal structure"

let test_parse_program_shapes () =
  let src =
    "domain Type 8;\n\
     attribute type : Type;\n\
     physdom T1;\n\
     physdom T2 5;\n\
     class C {\n\
     \  <type> f = 0B;\n\
     \  public void m( <type> x, Type t ) {\n\
     \    if (x != 0B) { f |= x; } else f = x;\n\
     \    do { f -= x; } while (f != 0B);\n\
     \    while (false) { print f; }\n\
     \    return;\n\
     \  }\n\
     }\n"
  in
  let prog = P.parse_program ~file:"t.jedd" src in
  Alcotest.(check int) "five declarations" 5 (List.length prog);
  match List.nth prog 4 with
  | Ast.Class_decl c ->
    Alcotest.(check int) "one field" 1 (List.length c.Ast.fields);
    Alcotest.(check int) "one method" 1 (List.length c.Ast.methods);
    let m = List.hd c.Ast.methods in
    Alcotest.(check int) "two params" 2 (List.length m.Ast.meth_params)
  | _ -> Alcotest.fail "expected class"

let test_parse_error_position () =
  match P.parse_program ~file:"t.jedd" "domain Type ;" with
  | exception P.Parse_error (_, p) ->
    Alcotest.(check int) "line" 1 p.Ast.line
  | _ -> Alcotest.fail "expected parse error"

(* ---------------- typechecking ---------------- *)

let preamble =
  "domain Type 8;\n\
   domain Signature 8;\n\
   domain Method 8;\n\
   attribute type : Type;\n\
   attribute rectype : Type;\n\
   attribute tgttype : Type;\n\
   attribute subtype : Type;\n\
   attribute supertype : Type;\n\
   attribute signature : Signature;\n\
   attribute method : Method;\n\
   physdom T1;\n\
   physdom T2;\n\
   physdom S1;\n\
   physdom M1;\n"

let check_ok body =
  let prog = P.parse_program ~file:"t.jedd" (preamble ^ body) in
  TC.check prog

let expect_type_error name body =
  let prog = P.parse_program ~file:"t.jedd" (preamble ^ body) in
  match TC.check prog with
  | exception TC.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected type error" name

let test_typecheck_setop_schemas () =
  ignore
    (check_ok
       "class C { <type> a; <type> b; public void m() { a = a | b; } }");
  expect_type_error "union schema mismatch"
    "class C { <type> a; <signature> b; public void m() { a = a | b; } }"

let test_typecheck_project () =
  ignore
    (check_ok
       "class C { <type, signature> a; <type> b; public void m() { b = (signature=>) a; } }");
  expect_type_error "project absent attribute"
    "class C { <type> a; <type> b; public void m() { b = (signature=>) a; } }"

let test_typecheck_rename () =
  ignore
    (check_ok
       "class C { <subtype> a; <supertype> b; public void m() { b = (subtype=>supertype) a; } }");
  expect_type_error "rename target present"
    "class C { <subtype, supertype> a; public void m() { a = (subtype=>supertype) a; } }";
  expect_type_error "rename across domains"
    "class C { <type> a; <signature> b; public void m() { b = (type=>signature) a; } }"

let test_typecheck_copy () =
  ignore
    (check_ok
       "class C { <rectype> a; <rectype, tgttype> b; public void m() { b = (rectype=>rectype tgttype) a; } }");
  expect_type_error "copy targets must differ"
    "class C { <rectype> a; <rectype> b; public void m() { b = (rectype=>rectype rectype) a; } }"

let test_typecheck_join () =
  ignore
    (check_ok
       "class C { <rectype, signature> a; <type, method> b; <rectype, signature, method> c;\n\
        public void m() { c = a{rectype} >< b{type}; } }");
  expect_type_error "overlapping non-compared attributes"
    "class C { <rectype, signature> a; <type, signature> b; <rectype, signature> c;\n\
     public void m() { c = a{rectype} >< b{type}; } }";
  expect_type_error "compared attribute missing"
    "class C { <rectype> a; <type> b; <rectype> c;\n\
     public void m() { c = a{signature} >< b{type}; } }"

let test_typecheck_poly_restrictions () =
  ignore (check_ok "class C { <type> a; public void m() { a = 0B; } }");
  expect_type_error "0B in set operation"
    "class C { <type> a; public void m() { a = a | 0B; } }";
  expect_type_error "0B joined"
    "class C { <type> a; public void m() { a = 0B{type} >< a{type}; } }"

let test_typecheck_assignment_compat () =
  expect_type_error "assigning wrong schema"
    "class C { <type> a; <signature> b; public void m() { a = b; } }";
  expect_type_error "duplicate attribute in type"
    "class C { <type, type> a; public void m() { } }"

let test_typecheck_calls () =
  ignore
    (check_ok
       "class C { <type> f;\n\
        <type> get() { return f; }\n\
        public void put( <type> x ) { f = x; }\n\
        public void m() { put(get()); } }");
  expect_type_error "argument schema mismatch"
    "class C { <signature> f;\n\
     public void put( <type> x ) { }\n\
     public void m() { put(f); } }"

(* ---------------- physical-domain assignment ---------------- *)

(* The paper's Figure 4 module.  As §3.3.3 explains, the composition on
   line 10 makes [supertype] conflict with the domain of the attribute it
   is compared against unless it is pinned elsewhere — that is the
   paper's own worked error — so, exactly as the paper prescribes, the
   [extend] parameter pins [supertype] to a domain of its own (T3). *)
let figure4_program =
  preamble ^ "physdom T3;\n"
  ^ "class Resolver {\n\
     \  <type, signature, method> declaresMethod;\n\
     \  <rectype, signature, tgttype, method> answer = 0B;\n\
     \  public void resolve( <rectype, signature> receiverTypes, <subtype, supertype:T3> extend ) {\n\
     \    <rectype, signature, tgttype> toResolve = (rectype => rectype tgttype) receiverTypes;\n\
     \    do {\n\
     \      <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =\n\
     \        toResolve{tgttype, signature} >< declaresMethod{type, signature};\n\
     \      answer |= resolved;\n\
     \      toResolve -= (method=>) resolved;\n\
     \      toResolve = (supertype=>tgttype) (toResolve{tgttype} <> extend{subtype});\n\
     \    } while( toResolve != 0B );\n\
     \  }\n\
     }\n"

let test_assignment_solves_figure4 () =
  match Driver.compile [ ("Fig4.jedd", figure4_program) ] with
  | Error e -> Alcotest.failf "compile failed: %s" (Driver.error_to_string e)
  | Ok c ->
    let st = c.Driver.constraint_stats in
    Alcotest.(check bool) "has expressions" true (st.C.n_rel_exprs > 10);
    Alcotest.(check bool) "has conflicts" true (st.C.n_conflict > 0);
    Alcotest.(check bool) "has equalities" true (st.C.n_equality > 0);
    Alcotest.(check bool) "has assignments" true (st.C.n_assignment > 0);
    (* the four components of Figure 7 end up in the four specified
       domains: check the variable layouts *)
    let phys site attr = (c.Driver.assignment.E.phys_of site attr).Jedd_lang.Tast.p_name in
    let var v = Jedd_lang.Constraints.S_var v in
    Alcotest.(check string) "toResolve.rectype" "T1"
      (phys (var "Resolver.resolve.toResolve") "rectype");
    Alcotest.(check string) "toResolve.signature" "S1"
      (phys (var "Resolver.resolve.toResolve") "signature");
    Alcotest.(check string) "toResolve.tgttype" "T2"
      (phys (var "Resolver.resolve.toResolve") "tgttype");
    Alcotest.(check string) "declaresMethod.type" "T2"
      (phys (var "Resolver.declaresMethod") "type");
    Alcotest.(check string) "declaresMethod.signature" "S1"
      (phys (var "Resolver.declaresMethod") "signature");
    Alcotest.(check string) "declaresMethod.method" "M1"
      (phys (var "Resolver.declaresMethod") "method");
    Alcotest.(check string) "answer.rectype" "T1"
      (phys (var "Resolver.answer") "rectype")

let test_assignment_unreachable () =
  (* no physical domain specified anywhere: §3.3.3 failure mode 1 *)
  let src =
    preamble
    ^ "class C { <type> f; public void m() { f = f | f; } }\n"
  in
  match Driver.compile [ ("t.jedd", src) ] with
  | Error { phase = "assignment"; message; _ } ->
    Alcotest.(check bool) "mentions reachability" true
      (String.length message > 0
      && Str.string_match (Str.regexp ".*no specified physical domain.*") message 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Driver.error_to_string e)
  | Ok _ -> Alcotest.fail "expected unreachable-attribute error"

let test_assignment_conflict_paper_message () =
  (* The exact erroneous program of §3.3.3. *)
  let src =
    preamble
    ^ "class Bad {\n\
       \  <rectype:T1, signature:S1, tgttype:T2> toResolve;\n\
       \  <supertype:T1, subtype:T2> extend;\n\
       \  public void go() {\n\
       \    <rectype, signature, supertype> result = toResolve {tgttype} <> extend {subtype};\n\
       \  }\n\
       }\n"
  in
  match Driver.compile [ ("Test.jedd", src) ] with
  | Error { phase = "assignment"; message; _ } ->
    let contains needle =
      Str.string_match (Str.regexp (".*" ^ Str.quote needle ^ ".*")) message 0
    in
    Alcotest.(check bool) "is a conflict report" true (contains "Conflict between");
    Alcotest.(check bool) "names the attributes" true
      (contains "rectype" && contains "supertype");
    Alcotest.(check bool) "names the physical domain" true
      (contains "over physical domain T1")
  | Error e -> Alcotest.failf "wrong error: %s" (Driver.error_to_string e)
  | Ok _ -> Alcotest.fail "expected assignment conflict"

let test_assignment_conflict_fixed () =
  (* ... and the paper's fix: pin supertype to a new domain T3. *)
  let src =
    preamble ^ "physdom T3;\n"
    ^ "class Bad {\n\
       \  <rectype:T1, signature:S1, tgttype:T2> toResolve;\n\
       \  <supertype:T1, subtype:T2> extend;\n\
       \  public void go() {\n\
       \    <rectype, signature, supertype:T3> result = toResolve {tgttype} <> extend {subtype};\n\
       \  }\n\
       }\n"
  in
  (* supertype is pinned to T1 at the field but T3 at the result; the
     compose must insert a replace, which the flow paths allow *)
  match Driver.compile [ ("Test.jedd", src) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fix should compile: %s" (Driver.error_to_string e)

(* ---------------- end-to-end: Figure 4 execution ---------------- *)

let test_figure4_execution () =
  let c =
    match Driver.compile [ ("Fig4.jedd", figure4_program) ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  in
  let inst = Driver.instantiate c in
  let u = Interp.universe inst in
  (* objects: Type A=0 B=1; Signature foo=0 bar=1; Method A.foo=0 B.bar=1 *)
  let declares_schema = Interp.schema_of_var inst "Resolver.declaresMethod" in
  Interp.set_field inst "Resolver.declaresMethod"
    (R.of_tuples u declares_schema [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ]);
  let recv_schema = Interp.schema_of_var inst "Resolver.resolve.receiverTypes" in
  let receiver_types = R.of_tuples u recv_schema [ [ 1; 0 ]; [ 1; 1 ] ] in
  let extend_schema = Interp.schema_of_var inst "Resolver.resolve.extend" in
  let extend = R.of_tuples u extend_schema [ [ 1; 0 ] ] in
  let result =
    Interp.call inst "Resolver.resolve"
      [ Interp.VRel receiver_types; Interp.VRel extend ]
  in
  Alcotest.(check bool) "void method" true (result = None);
  let answer = Interp.get_field inst "Resolver.answer" in
  (* Figure 4 (c)+(g): foo() resolves to A.foo(), bar() to B.bar() *)
  Alcotest.(check (list (list int)))
    "resolved virtual calls"
    [ [ 1; 0; 0; 0 ]; [ 1; 1; 1; 1 ] ]
    (R.tuples answer)

let test_method_call_and_return () =
  let src =
    preamble
    ^ "class C {\n\
       \  <type:T1> f;\n\
       \  <type> get() { return f; }\n\
       \  public void bump( Type t ) { f |= new { t=>type }; }\n\
       \  public void m( Type t ) { bump(t); f = get() | f; }\n\
       }\n"
  in
  let c =
    match Driver.compile [ ("t.jedd", src) ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  in
  let inst = Driver.instantiate c in
  ignore (Interp.call inst "C.m" [ Interp.VObj 3 ]);
  ignore (Interp.call inst "C.m" [ Interp.VObj 5 ]);
  Alcotest.(check (list (list int)))
    "objects accumulated"
    [ [ 3 ]; [ 5 ] ]
    (R.tuples (Interp.get_field inst "C.f"))

let test_field_initialiser () =
  let src =
    preamble
    ^ "class C { <type:T1> f = new { 2=>type } | new { 4=>type }; }\n"
  in
  let c =
    match Driver.compile [ ("t.jedd", src) ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  in
  let inst = Driver.instantiate c in
  Alcotest.(check (list (list int)))
    "initialised" [ [ 2 ]; [ 4 ] ]
    (R.tuples (Interp.get_field inst "C.f"))

let test_while_and_if () =
  let src =
    preamble
    ^ "class C {\n\
       \  <type:T1> acc;\n\
       \  public void m( <type> seed, <subtype, supertype:T2> succ ) {\n\
       \    <type> frontier = seed;\n\
       \    while (frontier != 0B) {\n\
       \      acc |= frontier;\n\
       \      frontier = (supertype=>type) (frontier{type} <> succ{subtype});\n\
       \      frontier -= acc;\n\
       \    }\n\
       \    if (acc == 0B) { acc = seed; }\n\
       \  }\n\
       }\n"
  in
  let c =
    match Driver.compile [ ("t.jedd", src) ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  in
  let inst = Driver.instantiate c in
  let u = Interp.universe inst in
  let seed_schema = Interp.schema_of_var inst "C.m.seed" in
  let succ_schema = Interp.schema_of_var inst "C.m.succ" in
  let seed = R.of_tuples u seed_schema [ [ 0 ] ] in
  (* chain 0 -> 1 -> 2 -> 3 *)
  let succ = R.of_tuples u succ_schema [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  ignore (Interp.call inst "C.m" [ Interp.VRel seed; Interp.VRel succ ]);
  Alcotest.(check (list (list int)))
    "transitive closure" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (R.tuples (Interp.get_field inst "C.acc"))

(* ---------------- §4.2 memory management ---------------- *)

let test_liveness_kills () =
  (* [a]'s last use is the first |=; the liveness pass must release it
     before the heavy tail of the method.  We probe live handle counts
     from the print hook. *)
  let src =
    preamble
    ^ "class Mem {\n\
       \  <type:T1> acc;\n\
       \  public void m( <type> x ) {\n\
       \    <type> a = x;\n\
       \    acc |= a;\n\
       \    print acc;\n\
       \    acc |= acc;\n\
       \  }\n\
       }\n"
  in
  let c =
    match Driver.compile [ ("t.jedd", src) ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  in
  let inst = Driver.instantiate c in
  let u = Interp.universe inst in
  let live_at_probe = ref (-1) in
  Interp.set_print_hook inst (fun _ ->
      live_at_probe := Jedd_relation.Relation.live_root_count u);
  let x =
    R.of_tuples u (Interp.schema_of_var inst "Mem.m.x") [ [ 1 ]; [ 2 ] ]
  in
  let base = Jedd_relation.Relation.live_root_count u in
  ignore (Interp.call inst "Mem.m" [ Interp.VRel x ]);
  (* At the probe, live handles: the field acc, x's caller handle, the
     parameter handle... everything except [a], which died at the |=.
     Without liveness the count would be at least one higher.  We check
     the conservative property: the probe count is strictly below the
     peak implied by keeping all three method-local handles alive. *)
  Alcotest.(check bool) "probe saw a released local" true
    (!live_at_probe >= 0 && !live_at_probe <= base + 2)

let test_liveness_loop_safety () =
  (* a variable used by the *next* iteration must not be killed *)
  let src =
    preamble
    ^ "class Loop {\n\
       \  <type:T1> acc;\n\
       \  public void m( <type> seed ) {\n\
       \    <type> cur = seed;\n\
       \    <type> i = seed;\n\
       \    do {\n\
       \      acc |= cur;\n\
       \      cur = cur & acc;\n\
       \      i = i - acc;\n\
       \    } while (i != 0B);\n\
       \  }\n\
       }\n"
  in
  let c =
    match Driver.compile [ ("t.jedd", src) ] with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)
  in
  let inst = Driver.instantiate c in
  let u = Interp.universe inst in
  let seed =
    R.of_tuples u (Interp.schema_of_var inst "Loop.m.seed") [ [ 1 ]; [ 3 ] ]
  in
  ignore (Interp.call inst "Loop.m" [ Interp.VRel seed ]);
  Alcotest.(check (list (list int)))
    "loop ran correctly with liveness enabled"
    [ [ 1 ]; [ 3 ] ]
    (R.tuples (Interp.get_field inst "Loop.acc"))

let test_liveness_analysis_direct () =
  let src =
    preamble
    ^ "class L {\n\
       \  <type:T1> f;\n\
       \  public void m( <type> x, <type> y ) {\n\
       \    f = x;\n\
       \    f = f | y;\n\
       \  }\n\
       }\n"
  in
  let prog = P.parse_program ~file:"t.jedd" src in
  let tprog = TC.check prog in
  let m = Hashtbl.find tprog.Jedd_lang.Tast.methods "L.m" in
  let lv = Jedd_lang.Liveness.analyze m in
  (* x dies at the first assignment, y at the second *)
  Alcotest.(check bool) "found kill sites" true
    (Jedd_lang.Liveness.total_kill_sites lv >= 2);
  match m.Jedd_lang.Tast.tm_body with
  | [ s1; s2 ] ->
    Alcotest.(check (list string)) "x dies first" [ "L.m.x" ]
      (Jedd_lang.Liveness.kills_after lv s1);
    Alcotest.(check (list string)) "y dies second" [ "L.m.y" ]
      (Jedd_lang.Liveness.kills_after lv s2)
  | _ -> Alcotest.fail "expected two statements"

let suite =
  [
    Alcotest.test_case "lexer symbols" `Quick test_lexer_symbols;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse replace forms" `Quick test_parse_replace_forms;
    Alcotest.test_case "parse join" `Quick test_parse_join;
    Alcotest.test_case "parse compose in parens" `Quick
      test_parse_compose_in_parens;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse literal" `Quick test_parse_literal;
    Alcotest.test_case "parse program shapes" `Quick test_parse_program_shapes;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "typecheck set ops" `Quick test_typecheck_setop_schemas;
    Alcotest.test_case "typecheck project" `Quick test_typecheck_project;
    Alcotest.test_case "typecheck rename" `Quick test_typecheck_rename;
    Alcotest.test_case "typecheck copy" `Quick test_typecheck_copy;
    Alcotest.test_case "typecheck join" `Quick test_typecheck_join;
    Alcotest.test_case "typecheck 0B/1B restrictions" `Quick
      test_typecheck_poly_restrictions;
    Alcotest.test_case "typecheck assignment" `Quick
      test_typecheck_assignment_compat;
    Alcotest.test_case "typecheck calls" `Quick test_typecheck_calls;
    Alcotest.test_case "assignment solves Figure 4" `Quick
      test_assignment_solves_figure4;
    Alcotest.test_case "assignment unreachable error" `Quick
      test_assignment_unreachable;
    Alcotest.test_case "assignment conflict: paper's message" `Quick
      test_assignment_conflict_paper_message;
    Alcotest.test_case "assignment conflict: paper's fix" `Quick
      test_assignment_conflict_fixed;
    Alcotest.test_case "Figure 4 end-to-end" `Quick test_figure4_execution;
    Alcotest.test_case "method call and return" `Quick
      test_method_call_and_return;
    Alcotest.test_case "field initialiser" `Quick test_field_initialiser;
    Alcotest.test_case "while and if" `Quick test_while_and_if;
    Alcotest.test_case "liveness kills early" `Quick test_liveness_kills;
    Alcotest.test_case "liveness loop safety" `Quick test_liveness_loop_safety;
    Alcotest.test_case "liveness analysis direct" `Quick
      test_liveness_analysis_direct;
  ]
