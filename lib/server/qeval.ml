(* The instrumented query evaluator shared by the single-worker daemon
   (Server) and the multi-domain pool (Jedd_serve): Protocol.eval
   wrapped with a bounded result cache and per-verb latency histograms.

   Cache keys are the canonical form of the request — object fields
   sorted recursively, the non-semantic "id" and "timeout_ms" fields
   dropped — plus the universe hash, so a snapshot upgrade can never
   serve stale answers.  Only successful replies to pure read verbs are
   cached; batch is re-implemented here so each sub-request hits the
   cache individually. *)

type t = {
  world : Protocol.world;
  cache : Rescache.t option;
  universe_hash : string;
  hists : (string, Hist.t) Hashtbl.t; (* per-verb latency *)
  hist_lock : Mutex.t;
}

(* [?cache] shares an existing Rescache across evaluators — the
   generation-swap path hands each new generation's Qeval the same
   cache, then evicts the retired universe hash's entries from it.
   Keys embed the universe hash, so sharing can never mix answers. *)
let create ?cache ?(cache_capacity = 4096) ~universe_hash world =
  {
    world;
    cache =
      (match cache with
      | Some _ -> cache
      | None ->
        if cache_capacity > 0 then
          Some (Rescache.create ~capacity:cache_capacity)
        else None);
    universe_hash;
    hists = Hashtbl.create 16;
    hist_lock = Mutex.create ();
  }

let cache t = t.cache

let world t = t.world
let universe_hash t = t.universe_hash

let hist_for t verb =
  Mutex.lock t.hist_lock;
  let h =
    match Hashtbl.find_opt t.hists verb with
    | Some h -> h
    | None ->
      let h = Hist.create () in
      Hashtbl.add t.hists verb h;
      h
  in
  Mutex.unlock t.hist_lock;
  h

(* -- canonical request keys --------------------------------------------- *)

let rec canonicalize (v : Json.t) : Json.t =
  match v with
  | Json.Obj kvs ->
    Json.Obj
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (List.map (fun (k, v) -> (k, canonicalize v)) kvs))
  | Json.List l -> Json.List (List.map canonicalize l)
  | v -> v

let cache_key t req =
  let semantic =
    match req with
    | Json.Obj kvs ->
      Json.Obj (List.filter (fun (k, _) -> k <> "id" && k <> "timeout_ms") kvs)
    | v -> v
  in
  Json.to_string (canonicalize semantic) ^ "#" ^ t.universe_hash

let cacheable_verb = function
  | "version" | "relations" | "count" | "member" | "tuples" | "pointsto"
  | "resolve" ->
    true
  | _ -> false

let payload_fields = function
  | Json.Obj kvs -> List.filter (fun (k, _) -> k <> "id" && k <> "ok") kvs
  | _ -> []

let is_ok = function
  | Json.Obj kvs -> List.assoc_opt "ok" kvs = Some (Json.Bool true)
  | _ -> false

let verb_of req =
  match Json.member "verb" req with Some (Json.String v) -> v | _ -> ""

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* -- evaluation ---------------------------------------------------------- *)

let rec eval t req : Protocol.outcome =
  let verb = verb_of req in
  let start = now_us () in
  let outcome =
    match verb with
    | "batch" -> eval_batch t req
    | v when cacheable_verb v -> eval_cached t req
    | _ -> Protocol.eval t.world req
  in
  Hist.record (hist_for t (if verb = "" then "invalid" else verb))
    ~us:(now_us () - start);
  outcome

and eval_cached t req =
  let id = Protocol.request_id req in
  match t.cache with
  | None -> Protocol.eval t.world req
  | Some cache -> (
    let key = cache_key t req in
    match Rescache.find cache key with
    | Some fields -> Protocol.Reply (Protocol.ok id fields)
    | None -> (
      match Protocol.eval t.world req with
      | Protocol.Reply r as outcome ->
        if is_ok r then Rescache.add cache key (payload_fields r);
        outcome
      | outcome -> outcome))

and eval_batch t req =
  let id = Protocol.request_id req in
  match Json.member "requests" req with
  | Some (Json.List reqs) ->
    let quit = ref false in
    let responses =
      List.map
        (fun sub ->
          match eval t sub with
          | Protocol.Reply r -> r
          | Protocol.Quit r ->
            quit := true;
            r)
        reqs
    in
    let body = Protocol.ok id [ ("responses", Json.List responses) ] in
    if !quit then Protocol.Quit body else Protocol.Reply body
  | _ -> Protocol.Reply (Protocol.err id "batch: missing \"requests\" array")

(* -- stats --------------------------------------------------------------- *)

(* Additive keys merged into the stats verb's payload. *)
let stats_fields t : (string * Json.t) list =
  let latency =
    Mutex.lock t.hist_lock;
    let kvs =
      Hashtbl.fold (fun verb h acc -> (verb, Hist.to_json h) :: acc) t.hists []
    in
    Mutex.unlock t.hist_lock;
    List.sort (fun (a, _) (b, _) -> String.compare a b) kvs
  in
  [
    ( "result_cache",
      match t.cache with
      | Some c -> Rescache.stats_json c
      | None -> Json.Obj [ ("enabled", Json.Bool false) ] );
    ("latency", Json.Obj latency);
    ("universe_hash", Json.String t.universe_hash);
  ]

let cache_hit_counts t =
  match t.cache with
  | None -> (0, 0, 0)
  | Some c -> (Rescache.hits c, Rescache.misses c, Rescache.evictions c)
