(* The spill store: one per-universe temporary directory holding every
   on-disk artifact the external-memory backend creates — level-ordered
   node files of large BDDs, sorted priority-queue runs, and arc files
   produced by the sweeps.  All I/O of the backend is routed through
   this module so spill activity is observable: the counters below feed
   [Universe.bdd_delta] and the profiler's "External memory" section.

   Directories are unique per store (pid + a process-local counter), so
   concurrent universes never collide, and they are removed on
   [cleanup], which runs from a finaliser and from an [at_exit] hook —
   `dune runtest` must leave no litter in $TMPDIR. *)

type t = {
  dir : string;
  mutable dir_created : bool;
  mutable next_file : int;
  mutable closed : bool;
  pq_budget_bytes : int;
  mem_node_threshold : int;
  (* monotone counters, read by [Universe.bdd_delta_since] *)
  mutable spill_runs : int;
  mutable spilled_bytes : int;
  mutable pq_peak_bytes : int;
  mutable io_millis : float;
}

let counter = ref 0
let live_stores : t list ref = ref []

let default_pq_budget () =
  match Sys.getenv_opt "JEDD_EXTMEM_PQ_BYTES" with
  | Some s -> (try max 512 (int_of_string s) with _ -> 32 lsl 20)
  | None -> 32 lsl 20

let default_mem_node_threshold () =
  match Sys.getenv_opt "JEDD_EXTMEM_MEM_NODES" with
  | Some s -> (try max 8 (int_of_string s) with _ -> 1 lsl 16)
  | None -> 1 lsl 16

let cleanup s =
  if not s.closed then begin
    s.closed <- true;
    if s.dir_created then begin
      (match Sys.readdir s.dir with
      | files ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat s.dir f) with _ -> ())
          files
      | exception _ -> ());
      (try Unix.rmdir s.dir with _ -> ())
    end
  end

let at_exit_installed = ref false

let create ?dir ?pq_budget_bytes ?mem_node_threshold () =
  incr counter;
  let dir =
    match dir with
    | Some d -> d
    | None ->
      let base =
        match Sys.getenv_opt "JEDD_EXTMEM_DIR" with
        | Some d -> d
        | None -> Filename.get_temp_dir_name ()
      in
      Filename.concat base
        (Printf.sprintf "jedd-extmem-%d-%d" (Unix.getpid ()) !counter)
  in
  let s =
    {
      dir;
      dir_created = false;
      next_file = 0;
      closed = false;
      pq_budget_bytes =
        (match pq_budget_bytes with
        | Some b -> max 512 b
        | None -> default_pq_budget ());
      mem_node_threshold =
        (match mem_node_threshold with
        | Some n -> max 8 n
        | None -> default_mem_node_threshold ());
      spill_runs = 0;
      spilled_bytes = 0;
      pq_peak_bytes = 0;
      io_millis = 0.0;
    }
  in
  live_stores := s :: !live_stores;
  if not !at_exit_installed then begin
    at_exit_installed := true;
    at_exit (fun () -> List.iter cleanup !live_stores)
  end;
  Gc.finalise cleanup s;
  s

let dir s = s.dir
let pq_budget_bytes s = s.pq_budget_bytes
let mem_node_threshold s = s.mem_node_threshold

let fresh_path s suffix =
  if s.closed then invalid_arg "Extmem.Store: use after cleanup";
  if not s.dir_created then begin
    (try Unix.mkdir s.dir 0o700
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    s.dir_created <- true
  end;
  s.next_file <- s.next_file + 1;
  Filename.concat s.dir (Printf.sprintf "%06d.%s" s.next_file suffix)

(* -- accounting --------------------------------------------------------- *)

let timed s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  s.io_millis <- s.io_millis +. ((Unix.gettimeofday () -. t0) *. 1000.0);
  r

let note_spill s ~bytes =
  s.spill_runs <- s.spill_runs + 1;
  s.spilled_bytes <- s.spilled_bytes + bytes

let note_pq_bytes s bytes =
  if bytes > s.pq_peak_bytes then s.pq_peak_bytes <- bytes

let spill_runs s = s.spill_runs
let spilled_bytes s = s.spilled_bytes
let pq_peak_bytes s = s.pq_peak_bytes
let io_millis s = s.io_millis
