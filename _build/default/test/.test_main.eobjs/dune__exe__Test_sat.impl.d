test/test_sat.ml: Alcotest Array Jedd_sat List QCheck QCheck_alcotest Random
