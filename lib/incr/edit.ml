(* Program edits: see edit.mli for the tombstone semantics. *)

module P = Jedd_minijava.Program

type t =
  | Add_class of { superclass : int option }
  | Add_method of { cls : int; signature : int; n_vars : int; entry : bool }
  | Add_field
  | Add_alloc of { var : int; cls : int }
  | Add_assign of { src : int; dst : int }
  | Add_store of { src : int; base : int; field : int }
  | Add_load of { base : int; field : int; dst : int }
  | Add_callsite of { recv : int; signature : int; in_method : int }
  | Remove_assign of { src : int; dst : int }
  | Remove_store of { src : int; base : int; field : int }
  | Remove_load of { base : int; field : int; dst : int }
  | Remove_callsite of { callsite : int }
  | Remove_method of { meth : int }
  | Remove_class of { cls : int }

exception Invalid_edit of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_edit s)) fmt

let check what id n =
  if id < 0 || id >= n then invalid "%s %d out of range [0,%d)" what id n

let next_callsite_id (p : P.t) =
  List.fold_left (fun a (c : P.call_site) -> max a (c.P.cs_id + 1)) 0 p.P.calls

let is_addition = function
  | Add_class _ | Add_method _ | Add_field | Add_alloc _ | Add_assign _
  | Add_store _ | Add_load _ | Add_callsite _ ->
    true
  | _ -> false

let describe = function
  | Add_class { superclass } ->
    Printf.sprintf "add-class super=%s"
      (match superclass with None -> "none" | Some c -> string_of_int c)
  | Add_method { cls; signature; n_vars; entry } ->
    Printf.sprintf "add-method cls=%d sig=%d vars=%d%s" cls signature n_vars
      (if entry then " entry" else "")
  | Add_field -> "add-field"
  | Add_alloc { var; cls } -> Printf.sprintf "add-alloc var=%d cls=%d" var cls
  | Add_assign { src; dst } -> Printf.sprintf "add-assign %d->%d" src dst
  | Add_store { src; base; field } ->
    Printf.sprintf "add-store %d.%d=%d" base field src
  | Add_load { base; field; dst } ->
    Printf.sprintf "add-load %d=%d.%d" dst base field
  | Add_callsite { recv; signature; in_method } ->
    Printf.sprintf "add-callsite recv=%d sig=%d in=%d" recv signature in_method
  | Remove_assign { src; dst } -> Printf.sprintf "rm-assign %d->%d" src dst
  | Remove_store { src; base; field } ->
    Printf.sprintf "rm-store %d.%d=%d" base field src
  | Remove_load { base; field; dst } ->
    Printf.sprintf "rm-load %d=%d.%d" dst base field
  | Remove_callsite { callsite } -> Printf.sprintf "rm-callsite %d" callsite
  | Remove_method { meth } -> Printf.sprintf "rm-method %d" meth
  | Remove_class { cls } -> Printf.sprintf "rm-class %d" cls

let remove_one what eq l =
  let rec go acc = function
    | [] -> invalid "%s: fact not present" what
    | x :: rest when eq x -> List.rev_append acc rest
    | x :: rest -> go (x :: acc) rest
  in
  go [] l

let apply (p : P.t) edit : P.t =
  match edit with
  | Add_class { superclass } ->
    (match superclass with
    | Some s -> check "superclass" s p.P.n_classes
    | None -> ());
    let id = p.P.n_classes in
    {
      p with
      P.n_classes = id + 1;
      extend =
        (match superclass with
        | Some s -> p.P.extend @ [ (id, s) ]
        | None -> p.P.extend);
    }
  | Add_method { cls; signature; n_vars; entry } ->
    check "class" cls p.P.n_classes;
    check "signature" signature p.P.n_sigs;
    if n_vars < 0 then invalid "add-method: negative var count";
    if List.exists (fun (c, s, _) -> c = cls && s = signature) p.P.declares
    then invalid "add-method: class %d already declares signature %d" cls
        signature;
    let m = p.P.n_methods in
    {
      p with
      P.n_methods = m + 1;
      n_vars = p.P.n_vars + n_vars;
      declares = p.P.declares @ [ (cls, signature, m) ];
      method_class = Array.append p.P.method_class [| cls |];
      method_sig = Array.append p.P.method_sig [| signature |];
      var_method =
        Array.append p.P.var_method (Array.make n_vars m);
      entry_methods =
        (if entry then p.P.entry_methods @ [ m ] else p.P.entry_methods);
    }
  | Add_field -> { p with P.n_fields = p.P.n_fields + 1 }
  | Add_alloc { var; cls } ->
    check "var" var p.P.n_vars;
    check "class" cls p.P.n_classes;
    let h = p.P.n_heap in
    {
      p with
      P.n_heap = h + 1;
      heap_type = Array.append p.P.heap_type [| cls |];
      allocs = p.P.allocs @ [ (var, h) ];
    }
  | Add_assign { src; dst } ->
    check "src" src p.P.n_vars;
    check "dst" dst p.P.n_vars;
    { p with P.assigns = p.P.assigns @ [ (src, dst) ] }
  | Add_store { src; base; field } ->
    check "src" src p.P.n_vars;
    check "base" base p.P.n_vars;
    check "field" field p.P.n_fields;
    { p with P.stores = p.P.stores @ [ (src, base, field) ] }
  | Add_load { base; field; dst } ->
    check "base" base p.P.n_vars;
    check "field" field p.P.n_fields;
    check "dst" dst p.P.n_vars;
    { p with P.loads = p.P.loads @ [ (base, field, dst) ] }
  | Add_callsite { recv; signature; in_method } ->
    check "recv" recv p.P.n_vars;
    check "signature" signature p.P.n_sigs;
    check "method" in_method p.P.n_methods;
    let cs =
      {
        P.cs_id = next_callsite_id p;
        cs_recv = recv;
        cs_sig = signature;
        cs_in_method = in_method;
      }
    in
    { p with P.calls = p.P.calls @ [ cs ] }
  | Remove_assign { src; dst } ->
    {
      p with
      P.assigns =
        remove_one "rm-assign" (fun e -> e = (src, dst)) p.P.assigns;
    }
  | Remove_store { src; base; field } ->
    {
      p with
      P.stores =
        remove_one "rm-store" (fun e -> e = (src, base, field)) p.P.stores;
    }
  | Remove_load { base; field; dst } ->
    {
      p with
      P.loads =
        remove_one "rm-load" (fun e -> e = (base, field, dst)) p.P.loads;
    }
  | Remove_callsite { callsite } ->
    if not (List.exists (fun (c : P.call_site) -> c.P.cs_id = callsite) p.P.calls)
    then invalid "rm-callsite: no call site %d" callsite;
    {
      p with
      P.calls =
        List.filter (fun (c : P.call_site) -> c.P.cs_id <> callsite) p.P.calls;
    }
  | Remove_method { meth } ->
    check "method" meth p.P.n_methods;
    {
      p with
      P.declares = List.filter (fun (_, _, m) -> m <> meth) p.P.declares;
      calls =
        List.filter
          (fun (c : P.call_site) -> c.P.cs_in_method <> meth)
          p.P.calls;
      entry_methods = List.filter (fun m -> m <> meth) p.P.entry_methods;
    }
  | Remove_class { cls } ->
    check "class" cls p.P.n_classes;
    {
      p with
      P.extend =
        List.filter (fun (sub, sup) -> sub <> cls && sup <> cls) p.P.extend;
      declares = List.filter (fun (c, _, _) -> c <> cls) p.P.declares;
    }

(* Random valid edits for the differential tests and the bench: weighted
   towards statement/call-site additions, the common IDE operations. *)
let random ?(removals = true) rng (p : P.t) : t =
  let ri n = Random.State.int rng n in
  let var () = ri (max 1 p.P.n_vars) in
  let pick_weighted choices =
    let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
    let rec go n = function
      | [] -> assert false
      | (w, c) :: rest -> if n < w then c else go (n - w) rest
    in
    go (ri total) choices
  in
  let additions =
    [
      (3, fun () -> Add_assign { src = var (); dst = var () });
      ( 3,
        fun () ->
          Add_store
            { src = var (); base = var (); field = ri (max 1 p.P.n_fields) }
      );
      ( 3,
        fun () ->
          Add_load
            { base = var (); field = ri (max 1 p.P.n_fields); dst = var () }
      );
      ( 4,
        fun () ->
          Add_callsite
            {
              recv = var ();
              signature = ri (max 1 p.P.n_sigs);
              in_method = ri (max 1 p.P.n_methods);
            } );
      (2, fun () -> Add_alloc { var = var (); cls = ri (max 1 p.P.n_classes) });
      ( 1,
        fun () ->
          Add_class
            {
              superclass =
                (if p.P.n_classes > 0 && ri 2 = 0 then Some (ri p.P.n_classes)
                 else None);
            } );
      (1, fun () -> Add_field);
    ]
  in
  let removal_candidates =
    List.concat
      [
        (match p.P.assigns with
        | [] -> []
        | l ->
          [
            ( 1,
              fun () ->
                let src, dst = List.nth l (ri (List.length l)) in
                Remove_assign { src; dst } );
          ]);
        (match p.P.loads with
        | [] -> []
        | l ->
          [
            ( 1,
              fun () ->
                let base, field, dst = List.nth l (ri (List.length l)) in
                Remove_load { base; field; dst } );
          ]);
        (match p.P.calls with
        | [] -> []
        | l ->
          [
            ( 1,
              fun () ->
                let c = List.nth l (ri (List.length l)) in
                Remove_callsite { callsite = c.P.cs_id } );
          ]);
      ]
  in
  let choices =
    if removals then additions @ removal_candidates else additions
  in
  (pick_weighted choices) ()
