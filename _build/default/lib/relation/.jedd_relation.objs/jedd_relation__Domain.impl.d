lib/relation/domain.ml: Printf
