(* A generic monotone dataflow framework: explicit CFGs plus a worklist
   fixpoint solver.  Direction is handled by swapping the edge relation,
   so forward and backward analyses share the one engine. *)

module Graph = struct
  type t = {
    mutable n : int;
    mutable succ : int list array;
    mutable pred : int list array;
  }

  let create () = { n = 0; succ = Array.make 16 []; pred = Array.make 16 [] }

  let ensure g i =
    let cap = Array.length g.succ in
    if i >= cap then begin
      let cap' = max (i + 1) (2 * cap) in
      let grow a =
        let a' = Array.make cap' [] in
        Array.blit a 0 a' 0 cap;
        a'
      in
      g.succ <- grow g.succ;
      g.pred <- grow g.pred
    end

  let add_node g =
    let id = g.n in
    g.n <- id + 1;
    ensure g id;
    id

  let add_edge g a b =
    g.succ.(a) <- b :: g.succ.(a);
    g.pred.(b) <- a :: g.pred.(b)

  let size g = g.n
  let succs g i = g.succ.(i)
  let preds g i = g.pred.(i)
end

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Solver (L : LATTICE) = struct
  type result = { before : int -> L.t; after : int -> L.t }

  let run (g : Graph.t) (dir : direction) ~(init : int -> L.t)
      ~(transfer : int -> L.t -> L.t) : result =
    let n = Graph.size g in
    let input = Array.init n init in
    let output = Array.make n L.bottom in
    let pred_of, succ_of =
      match dir with
      | Forward -> (Graph.preds g, Graph.succs g)
      | Backward -> (Graph.succs g, Graph.preds g)
    in
    let queued = Array.make n true in
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i queue
    done;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let inp =
        List.fold_left
          (fun acc p -> L.join acc output.(p))
          (init i) (pred_of i)
      in
      input.(i) <- inp;
      let out = transfer i inp in
      if not (L.equal out output.(i)) then begin
        output.(i) <- out;
        List.iter
          (fun s ->
            if not queued.(s) then begin
              queued.(s) <- true;
              Queue.add s queue
            end)
          (succ_of i)
      end
    done;
    { before = (fun i -> input.(i)); after = (fun i -> output.(i)) }
end
