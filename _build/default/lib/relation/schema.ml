type entry = { attr : Attribute.t; phys : Physdom.t }
type t = entry list

let make entries =
  let seen_attr = Hashtbl.create 8 in
  let seen_phys = Hashtbl.create 8 in
  List.iter
    (fun { attr; phys } ->
      let aname = Attribute.name attr in
      if Hashtbl.mem seen_attr aname then
        invalid_arg
          (Printf.sprintf "Schema.make: duplicate attribute %s" aname);
      Hashtbl.add seen_attr aname ();
      let pname = Physdom.name phys in
      if Hashtbl.mem seen_phys pname then
        invalid_arg
          (Printf.sprintf
             "Schema.make: two attributes share physical domain %s" pname);
      Hashtbl.add seen_phys pname ();
      if not (Physdom.fits phys (Attribute.domain attr)) then
        invalid_arg
          (Printf.sprintf
             "Schema.make: physical domain %s too narrow for attribute %s"
             pname aname))
    entries;
  entries

let entries s = s
let attrs s = List.map (fun e -> e.attr) s
let arity = List.length
let mem s a = List.exists (fun e -> Attribute.equal e.attr a) s

let find s a =
  match List.find_opt (fun e -> Attribute.equal e.attr a) s with
  | Some e -> e
  | None -> raise Not_found

let phys_of s a = (find s a).phys

let same_attrs s1 s2 =
  let sort s = List.sort Attribute.compare (attrs s) in
  List.length s1 = List.length s2
  && List.for_all2 Attribute.equal (sort s1) (sort s2)

let same_layout s1 s2 =
  same_attrs s1 s2
  && List.for_all
       (fun e ->
         match List.find_opt (fun e2 -> Attribute.equal e2.attr e.attr) s2 with
         | Some e2 -> Physdom.equal e.phys e2.phys
         | None -> false)
       s1

let levels s =
  List.concat_map (fun e -> Array.to_list (Physdom.levels e.phys)) s
  |> List.sort_uniq compare |> Array.of_list

let pp ppf s =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf e ->
         Format.fprintf ppf "%s:%s" (Attribute.name e.attr)
           (Physdom.name e.phys)))
    s

let to_string s = Format.asprintf "%a" pp s
