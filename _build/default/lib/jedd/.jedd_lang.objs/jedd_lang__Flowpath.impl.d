lib/jedd/flowpath.ml: Array Constraints Hashtbl List Queue Tast
