(* End-to-end tests for the jeddd query server: a real Unix-socket
   server over a real analysis snapshot, exercised through the client
   library — queries, batching, per-request timeouts, error replies,
   and graceful shutdown. *)

module Json = Jedd_server.Json
module Client = Jedd_server.Client
module Server = Jedd_server.Server
module Suite = Jedd_analyses.Suite
module Workload = Jedd_minijava.Workload

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* -- JSON unit tests (no socket) ----------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "-42";
      "[1,2,[],{}]";
      {|{"a":1,"b":[true,null],"c":"x\ny"}|};
      {|"Aé"|};
    ]
  in
  List.iter
    (fun s ->
      let v = Json.of_string s in
      check Alcotest.string "reparse is stable" (Json.to_string v)
        (Json.to_string (Json.of_string (Json.to_string v))))
    cases;
  (* strictness *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed JSON %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* -- socket fixture ------------------------------------------------------ *)

let with_server f =
  let p = Workload.generate Workload.tiny in
  let inst, _ = Suite.run_combined p in
  let snap = Suite.snapshot inst in
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jeddd-test-%d.sock" (Unix.getpid ()))
  in
  let server = Server.create ~socket_path snap in
  let th = Thread.create Server.serve server in
  (* the listener is bound before create returns; connects just work *)
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () -> f socket_path)

let obj_get resp key =
  match Json.member key resp with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" key (Json.to_string resp)

let test_queries () =
  with_server (fun sock ->
      let c = Client.connect sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      Client.ping c;
      (* suffix lookup: "pt" resolves to "PointsTo.pt" *)
      let n_alias = Client.count c "pt" in
      let n_full = Client.count c "PointsTo.pt" in
      checki "alias and full name agree" n_full n_alias;
      checkb "points-to is non-empty" true (n_full > 0);
      (* membership agrees with extraction *)
      let resp =
        Client.request_ok c
          (Json.Obj
             [
               ("verb", Json.String "tuples");
               ("rel", Json.String "pt");
               ("limit", Json.Int 1);
             ])
      in
      (match obj_get resp "tuples" with
      | Json.List [ Json.List [ Json.Int v; Json.Int h ] ] ->
        let m =
          Client.request_ok c
            (Json.Obj
               [
                 ("verb", Json.String "member");
                 ("rel", Json.String "pt");
                 ("tuple", Json.List [ Json.Int v; Json.Int h ]);
               ])
        in
        checkb "extracted tuple is a member" true
          (obj_get m "member" = Json.Bool true);
        (* and pointsto v contains h *)
        let heaps = Client.pointsto c v in
        checkb "pointsto covers the tuple" true (List.mem h heaps)
      | other -> Alcotest.failf "unexpected tuples %s" (Json.to_string other));
      (* error replies keep the connection usable *)
      let e =
        Client.request c
          (Json.Obj
             [ ("verb", Json.String "count"); ("rel", Json.String "nope") ])
      in
      checkb "unknown relation is ok:false" true
        (obj_get e "ok" = Json.Bool false);
      let e2 =
        Client.request c (Json.Obj [ ("verb", Json.String "frobnicate") ])
      in
      checkb "unknown verb is ok:false" true (obj_get e2 "ok" = Json.Bool false);
      Client.ping c)

let test_batch_and_stats () =
  with_server (fun sock ->
      let c = Client.connect sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let resp =
        Client.request_ok c
          (Json.Obj
             [
               ("verb", Json.String "batch");
               ( "requests",
                 Json.List
                   [
                     Json.Obj
                       [ ("verb", Json.String "ping"); ("id", Json.Int 1) ];
                     Json.Obj
                       [
                         ("verb", Json.String "count");
                         ("rel", Json.String "pt");
                         ("id", Json.Int 2);
                       ];
                     Json.Obj
                       [
                         ("verb", Json.String "count");
                         ("rel", Json.String "nope");
                         ("id", Json.Int 3);
                       ];
                   ] );
             ])
      in
      (match obj_get resp "responses" with
      | Json.List [ r1; r2; r3 ] ->
        checkb "batch ids echo" true (obj_get r1 "id" = Json.Int 1);
        checkb "batch count ok" true (obj_get r2 "ok" = Json.Bool true);
        checkb "batch error isolated" true (obj_get r3 "ok" = Json.Bool false)
      | other -> Alcotest.failf "unexpected batch %s" (Json.to_string other));
      let stats = Client.request_ok c (Json.Obj [ ("verb", Json.String "stats") ]) in
      (match obj_get stats "requests" with
      | Json.Int n -> checkb "requests counted" true (n >= 1)
      | _ -> Alcotest.fail "stats.requests not an int");
      match obj_get stats "bdd" with
      | Json.Obj kvs ->
        checkb "bdd stats carry live_nodes" true
          (List.mem_assoc "live_nodes" kvs)
      | _ -> Alcotest.fail "stats.bdd not an object")

let test_timeout () =
  with_server (fun sock ->
      let c = Client.connect sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let resp =
        Client.request c
          (Json.Obj
             [
               ("verb", Json.String "sleep");
               ("ms", Json.Int 400);
               ("timeout_ms", Json.Int 30);
             ])
      in
      checkb "slow request times out" true (obj_get resp "ok" = Json.Bool false);
      check Alcotest.string "timeout error text" "timeout"
        (match obj_get resp "error" with Json.String s -> s | _ -> "?");
      (* the worker finishes the abandoned job and the server stays
         healthy for the next request on the same connection *)
      Client.ping c;
      let stats = Client.request_ok c (Json.Obj [ ("verb", Json.String "stats") ]) in
      match obj_get stats "timeouts" with
      | Json.Int n -> checkb "timeout counted" true (n >= 1)
      | _ -> Alcotest.fail "stats.timeouts not an int")

let test_concurrent_clients () =
  with_server (fun sock ->
      let expected = ref 0 in
      (let c = Client.connect sock in
       expected := Client.count c "pt";
       Client.close c);
      let results = Array.make 8 (-1) in
      let threads =
        Array.init 8 (fun i ->
            Thread.create
              (fun () ->
                let c = Client.connect sock in
                Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
                for _ = 1 to 5 do
                  results.(i) <- Client.count c "pt"
                done)
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r -> checki (Printf.sprintf "client %d sees the count" i) !expected r)
        results)

let test_shutdown () =
  with_server (fun sock ->
      let c = Client.connect sock in
      Client.shutdown c;
      Client.close c;
      (* the socket stops accepting (either refused or unlinked) *)
      let rec gone tries =
        if tries = 0 then false
        else
          match Client.connect sock with
          | exception _ -> true
          | c2 -> (
            (* accepted before teardown finished: the connection must
               be refused service *)
            match Client.request c2 (Json.Obj [ ("verb", Json.String "ping") ]) with
            | exception _ ->
              Client.close c2;
              true
            | resp ->
              Client.close c2;
              if Json.member "ok" resp = Some (Json.Bool false) then true
              else begin
                Thread.delay 0.05;
                gone (tries - 1)
              end)
      in
      checkb "server is down after shutdown" true (gone 40))

(* -- result-cache eviction (no socket) ----------------------------------- *)

let test_rescache_evict_suffix () =
  let module Rescache = Jedd_server.Rescache in
  let c = Rescache.create ~capacity:64 in
  Rescache.add c "count-pt#gen0" [ ("tuples", Json.Int 1) ];
  Rescache.add c "count-subtypes#gen0" [ ("tuples", Json.Int 2) ];
  Rescache.add c "count-pt#gen1" [ ("tuples", Json.Int 3) ];
  checki "three entries cached" 3 (Rescache.entries c);
  checki "retired generation evicted" 2
    (Rescache.evict_suffix c "#gen0");
  checki "one entry survives" 1 (Rescache.entries c);
  checkb "retired keys miss" true (Rescache.find c "count-pt#gen0" = None);
  checkb "live generation still hits" true
    (Rescache.find c "count-pt#gen1" <> None);
  checki "re-evicting is a no-op" 0 (Rescache.evict_suffix c "#gen0");
  (* eviction keeps the FIFO order queue consistent: capacity-driven
     eviction afterwards must not drop phantom keys *)
  checkb "evictions counted" true (Rescache.evictions c >= 2)

let suite =
  [
    Alcotest.test_case "json roundtrip and strictness" `Quick test_json_roundtrip;
    Alcotest.test_case "result-cache suffix eviction" `Quick
      test_rescache_evict_suffix;
    Alcotest.test_case "queries over a live socket" `Quick test_queries;
    Alcotest.test_case "batch and stats" `Quick test_batch_and_stats;
    Alcotest.test_case "per-request timeout" `Quick test_timeout;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "graceful shutdown" `Quick test_shutdown;
  ]
