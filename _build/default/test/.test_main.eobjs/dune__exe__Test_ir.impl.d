test/test_ir.ml: Alcotest Format Jedd_analyses Jedd_lang Jedd_minijava Jedd_relation List Printf Str String
