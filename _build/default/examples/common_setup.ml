(* Small shared helper for the examples: install a fact relation into a
   compiled Jedd program's field, at the field's assigned layout. *)

let set inst field tuples =
  let u = Jedd_lang.Interp.universe inst in
  let schema = Jedd_lang.Interp.schema_of_var inst field in
  let r = Jedd_relation.Relation.of_tuples u schema tuples in
  Jedd_lang.Interp.set_field inst field r;
  Jedd_relation.Relation.release r
