(** Natural-loop detection over [Jedd_dataflow.Graph] control-flow
    graphs: reachability, dominators (computed with the monotone
    worklist solver — the lattice is sets under intersection), back
    edges, natural loop bodies, and nesting depth.

    Works on both CFG flavours [Jedd_lang.Cfg] builds (typed-AST and
    lowered-IR); the frequency analysis ({!Freq}) runs it on every
    method. *)

type loop = {
  header : int;  (** the back edges' common target *)
  back_edges : (int * int) list;
      (** every [(tail, header)] back edge of this loop — loops sharing
          a header are merged, so multi-back-edge loops are one entry *)
  body : int list;  (** sorted node ids, header included *)
}

val reachable : Jedd_dataflow.Graph.t -> entry:int -> bool array
(** Nodes reachable from [entry] along forward edges.  Unreachable
    nodes take no part in loop detection and get depth 0. *)

val dominators : Jedd_dataflow.Graph.t -> entry:int -> bool array array
(** [d.(n).(m)] iff [m] dominates [n] (reflexive).  Rows of unreachable
    nodes are all-false. *)

val natural_loops : Jedd_dataflow.Graph.t -> entry:int -> loop list
(** All natural loops: one per distinct header, body = the union over
    that header's back edges [(t, h)] of [{h} ∪ {n reaching t without
    passing through h}].  Sorted by header id. *)

val nest_depth : Jedd_dataflow.Graph.t -> loop list -> int array
(** Per-node loop-nesting depth: the number of loop bodies containing
    the node (0 outside all loops). *)
