examples/quickstart.mli:
