examples/profiling_demo.ml: Jedd_analyses Jedd_lang Jedd_minijava Jedd_profiler Jedd_relation List Printf Unix
