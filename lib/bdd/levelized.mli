(** Levelized BDD dumps: the portable on-disk shape of a BDD shared by
    the serialization layer and both relation backends.

    A dump stores the nodes of one rooted, reduced BDD grouped by level,
    levels ascending, exactly like the node files of the out-of-core
    backend (Adiar's levelized representation): within a level, nodes
    are addressed by their index in the level's arrays, and a child
    reference is a {e uid} packing [(level, index)] — or one of the two
    negative terminal uids.  The encoding constants match
    [Jedd_extmem.Ebdd], so extmem node files convert to dumps by an
    array copy and the in-core conversions here are the only nontrivial
    ones.

    Dumps are plain data (int arrays): they carry no manager or store
    handles and can be written to disk, hashed, and read back in a
    different process. *)

type t = {
  blocks : (int * int array * int array) array;
      (** [(level, lo, hi)], strictly ascending by level. *)
  root : int;  (** uid of the root (a terminal for constant BDDs). *)
}

(** {2 Uid encoding} *)

val t_false : int
val t_true : int
val pack : int -> int -> int
(** [pack level index]. *)

val lev : int -> int
val loc : int -> int
val is_term : int -> bool

(** {2 Well-formedness} *)

exception Malformed of string
(** Raised by {!validate} and {!to_manager} on a structurally invalid
    dump: unordered or duplicate levels, a child reference to a missing
    node, a child at or above its parent's level, or [lo = hi]
    (violating reducedness). *)

val validate : t -> unit
val node_count : t -> int

val support : t -> int list
(** The levels that occur in the dump, ascending. *)

val map_levels : (int -> int) -> t -> t
(** Apply a {e strictly monotone} level renaming to every block and
    child uid.  Monotonicity keeps the dump levelized; it is checked and
    {!Malformed} is raised otherwise. *)

(** {2 In-core conversions} *)

val of_manager : Manager.t -> Manager.node -> t
(** Dump the BDD rooted at a node of the in-core manager.  Levels in the
    dump are the manager's {e current} levels. *)

val to_manager : Manager.t -> t -> Manager.node
(** Rebuild the dump bottom-up in the manager and return the root
    {e holding one external reference} (so an allocation-triggered
    collection can never sweep it); the caller owns that reference and
    must [delref] it once done.  Every level of the dump must be below
    [Manager.num_vars]. *)
