(** The relation-backend interface: everything the relational runtime
    ({!Universe}, {!Relation}) needs from a BDD engine, carved out as a
    first-class signature so the engine is pluggable per-universe.

    Three base implementations are provided:

    - {!Incore} — the default, backed by the shared hash-consed node
      store of [Jedd_bdd.Manager] with its fused kernels and operation
      caches;
    - {!Extmem} — the out-of-core levelized streaming engine of
      [Jedd_extmem.Ebdd] (Adiar-style, arXiv:2104.12101): BDDs as
      level-ordered node files, operations as priority-queue sweeps
      whose memory is bounded by a byte budget, spilling sorted runs to
      a per-universe temp directory;
    - {!Mtbdd_b} — the terminal-valued engine of [Jedd_mtbdd.Mtbdd]:
      relations carry a non-negative integer weight per tuple, boolean
      connectives become pointwise terminal arithmetic under the 0/1
      embedding (conjunction = multiply, disjunction = max), and the
      weighted entry points below expose the genuinely quantitative
      operations (sum-projection, scaling, thresholding).

    The relation layer is dispatch-routed over them through {!t} and
    {!node}: a universe carries one {!t} and every relation root is a
    {!node} of the matching implementation.

    In all cases the in-core manager remains the variable-order
    authority — domains and physical domains allocate their bit blocks
    through it, and the other engines address variables by level.
    Consequently extmem and mtbdd universes keep a fixed order (dynamic
    reordering is disabled: levels are baked into node files / the
    terminal-valued store). *)

(** Operations a backend must provide.  [state] is the engine instance
    (node store, caches, spill store); [node] the engine's BDD values.
    Levels are current manager levels; blocks are the finite-domain bit
    blocks of [Jedd_bdd.Fdd]. *)
module type BACKEND = sig
  type state
  type node

  val zero : state -> node
  val one : state -> node

  val addref : state -> node -> unit
  (** Pin a root across safe points.  No-op for engines whose values
      are ordinary GC'd data. *)

  val delref : state -> node -> unit

  val band : state -> node -> node -> node
  val bor : state -> node -> node -> node
  val bdiff : state -> node -> node -> node

  val cube : state -> (int * bool) list -> node
  (** Conjunction of literals, [(level, polarity)] pairs in any
      order. *)

  val biimp_vars : state -> int -> int -> node
  (** Bi-implication of the variables at two levels (the building block
      of attribute copy). *)

  val ithval : state -> Jedd_bdd.Fdd.block -> int -> node
  (** The block holds exactly the given value. *)

  val less_than : state -> Jedd_bdd.Fdd.block -> int -> node
  (** The block's value is strictly below the bound. *)

  val restrict : state -> node -> (int * bool) list -> node
  val exist : state -> node -> int list -> node

  val replace : state -> node -> (int * int) list -> node
  (** Rebuild with levels permuted by the given (source, target)
      pairs. *)

  val relprod_replace :
    state -> node -> node -> (int * int) list -> int list -> node
  (** [relprod_replace s f g pairs qlevels] is
      [exist (band f (replace g pairs)) qlevels] — the join/compose
      kernel.  Engines may fuse it (in-core) or compose the pieces
      out-of-core (extmem). *)

  val nodecount : state -> node -> int
  val satcount : state -> node -> over:int list -> int
  val shape : state -> node -> int array

  val iter_assignments :
    state -> node -> levels:int array -> (bool array -> unit) -> unit

  val equal : state -> node -> node -> bool
  val is_zero : state -> node -> bool

  val checkpoint : state -> unit
  (** A safe point: the engine may garbage-collect. *)

  val supports_reorder : bool

  val freeze : state -> unit
  (** Flip the engine into read-only serving mode (see
      [Jedd_bdd.Manager.freeze]).  Engines with no immutable-arena
      story ([Extmem]) raise [Invalid_argument]. *)

  val frozen : state -> bool
end

type extmem_state = {
  xmgr : Jedd_bdd.Manager.t;  (** variable-order authority *)
  xstore : Jedd_extmem.Store.t;  (** spill files and I/O counters *)
}

module Incore :
  BACKEND
    with type state = Jedd_bdd.Manager.t
     and type node = Jedd_bdd.Manager.node

module Extmem :
  BACKEND with type state = extmem_state and type node = Jedd_extmem.Ebdd.t

type mtbdd_state = {
  mmgr : Jedd_bdd.Manager.t;  (** variable-order authority *)
  mstore : Jedd_mtbdd.Mtbdd.t;  (** terminal-valued node store *)
}

module Mtbdd_b :
  BACKEND with type state = mtbdd_state and type node = Jedd_mtbdd.Mtbdd.node

(** {2 Dispatch layer} *)

type kind = [ `Incore | `Extmem | `Hybrid | `Mtbdd ]
(** [`Hybrid] holds both engines and picks one per operation,
    optimistic first: attempt in-core whenever the guaranteed
    allocation — importing external operands — fits in half the node
    table's remaining headroom.  An attempt that exhausts the table
    ([Jedd_bdd.Manager.Out_of_nodes]) transparently re-runs on the
    external engine, so hybrid universes never abort where pure extmem
    completes; it also arms a short backoff during which only sure fits
    (predicted result size ({!Predict}) plus import cost within half
    the headroom) run in-core and everything else streams, so repeated
    mispredictions degrade to the conservative prediction-gated regime
    instead of thrashing the table.  Roots migrate across engines
    through the levelized dump format.  Like [`Extmem], a hybrid
    backend is single-domain, keeps a fixed variable order, and cannot
    be frozen.

    [`Mtbdd] computes on the terminal-valued store; boolean operations
    use the 0/1 embedding and are bit-identical to the in-core engine
    after projection. *)

type t
(** A backend instance: which engine, plus its state. *)

type node =
  | In of Jedd_bdd.Manager.node
  | Ex of Jedd_extmem.Ebdd.t
  | Mt of Jedd_mtbdd.Mtbdd.node

val make : kind -> Jedd_bdd.Manager.t -> t
(** Build a backend over the given manager.  [`Extmem] and [`Hybrid]
    create a fresh spill store (unique temp directory, cleaned up on
    finalisation and at exit) whose budgets come from
    [JEDD_EXTMEM_PQ_BYTES] / [JEDD_EXTMEM_MEM_NODES].  [`Hybrid]
    additionally clears the manager's gc-on-exhaustion flag
    ({!Jedd_bdd.Manager.set_gc_on_exhaustion}): the fallback resumes
    the surrounding computation, so a failed in-core attempt must not
    recycle the caller's unreferenced in-flight intermediates. *)

val kind : t -> kind
val manager : t -> Jedd_bdd.Manager.t

val store : t -> Jedd_extmem.Store.t option
(** The spill store of an [`Extmem] backend ([None] for [`Incore]);
    source of the spill/I/O counters in [Universe.bdd_delta]. *)

val mt_store : t -> Jedd_mtbdd.Mtbdd.t option
(** The terminal-valued store of an [`Mtbdd] backend ([None]
    otherwise); source of the per-tag apply-cache and
    distinct-terminal counters in [Universe.bdd_delta]. *)

val cleanup : t -> unit
(** Release backend resources eagerly (removes the spill directory). *)

val set_pool : t -> Jedd_bdd.Par.pool option -> unit
(** Attach (or detach, with [None]) a work-stealing pool.  While a pool
    is attached, {!band} / {!bor} / {!bdiff} / {!exist} /
    {!relprod_replace} run on it via [Jedd_bdd.Par]; the manager must be
    in parallel mode for the whole attachment.  [Invalid_argument] on an
    [`Extmem] backend, which stays single-domain (its page cache and
    spill store are not thread-safe).  Normally driven by
    [Universe.enable_parallel] rather than called directly. *)

val pool : t -> Jedd_bdd.Par.pool option

val zero : t -> node
val one : t -> node
val addref : t -> node -> unit
val delref : t -> node -> unit
val band : t -> node -> node -> node
val bor : t -> node -> node -> node
val bdiff : t -> node -> node -> node
val cube : t -> (int * bool) list -> node
val biimp_vars : t -> int -> int -> node
val ithval : t -> Jedd_bdd.Fdd.block -> int -> node
val less_than : t -> Jedd_bdd.Fdd.block -> int -> node
val restrict : t -> node -> (int * bool) list -> node
val exist : t -> node -> int list -> node
val replace : t -> node -> (int * int) list -> node
val relprod_replace : t -> node -> node -> (int * int) list -> int list -> node
val nodecount : t -> node -> int
val satcount : t -> node -> over:int list -> int
val shape : t -> node -> int array

val iter_assignments :
  t -> node -> levels:int array -> (bool array -> unit) -> unit

val equal : t -> node -> node -> bool
val is_zero : t -> node -> bool
val checkpoint : t -> unit
val supports_reorder : t -> bool

val freeze : t -> unit
(** Freeze the backing engine read-only (one-way; see
    [Jedd_bdd.Manager.freeze]).  [Invalid_argument] on [`Extmem]. *)

val frozen : t -> bool

(** {2 Backend names}

    The single authority for backend-name parsing, shared by
    [JEDD_BACKEND], every [--backend] flag, and the version banners. *)

val known_backends : string list
(** In registration order:
    [["incore"; "extmem"; "hybrid"; "mtbdd"]]. *)

val kind_name : kind -> string

val kind_of_string : string -> kind
(** Raises [Invalid_argument] naming the known backends on anything
    else — unknown names are never silently defaulted. *)

(** {2 Levelized serialization}

    Both engines dump a root to the portable {!Jedd_bdd.Levelized.t}
    shape and rebuild one from it (the extmem node files already {e are}
    levelized; the in-core store converts).  Levels in a dump are
    current manager levels. *)

val export_levelized : t -> node -> Jedd_bdd.Levelized.t

val import_levelized : t -> Jedd_bdd.Levelized.t -> node
(** Validates the dump first ({!Jedd_bdd.Levelized.Malformed} on
    failure).  On the in-core backend the returned root carries one
    external reference owned by the caller — wrap it in a relation (which
    takes its own) and then {!delref} it.

    Both directions raise [Invalid_argument] on an [`Mtbdd] backend:
    terminal weights are not representable in the boolean node-file
    format. *)

(** {2 Weighted (terminal-valued) entry points}

    Only meaningful on an [`Mtbdd] backend — every function here raises
    [Invalid_argument] on any other kind, since no boolean engine can
    express them.  Weights are non-negative and saturate at
    {!wvalue_cap}. *)

val wvalue_cap : int

val wterminal : t -> int -> node
(** The constant diagram with the given weight everywhere. *)

val wadd : t -> node -> node -> node
val wmin : t -> node -> node -> node
val wmax : t -> node -> node -> node

val wmul : t -> node -> node -> node
(** Pointwise product — also the weight-preserving intersection with a
    0/1 mask. *)

val wscale : t -> node -> int -> node
(** Multiply every weight by a constant. *)

val wsum_exist : t -> node -> int list -> node
(** Quantify levels away summing weights per projected assignment — the
    counting projection (levels absent from a sub-diagram double it,
    like satcount). *)

val wthreshold : t -> node -> int -> node
(** Clamp to the 0/1 embedding: weights [>= k] become 1, others 0. *)

val iter_weighted :
  t -> node -> levels:int array -> (bool array -> int -> unit) -> unit
(** {!iter_assignments} with each assignment's weight. *)
