lib/bdd/zdd.ml: Array Hashtbl List Manager
