(* jedd-analyze: run the five interrelated whole-program analyses (§5,
   Figure 2) over a generated workload and report result sizes. *)

open Cmdliner
module Workload = Jedd_minijava.Workload
module Program = Jedd_minijava.Program
module Reference = Jedd_minijava.Reference
module Suite = Jedd_analyses.Suite

let run benchmark file verify reorder =
  let name, p =
    if file <> "" then (file, Jedd_minijava.Frontend.load_file file)
    else
      let profile =
        if benchmark = "tiny" then Workload.tiny
        else Workload.profile_named benchmark
      in
      (profile.Workload.name, Workload.generate profile)
  in
  Format.printf "workload %s: %a@." name Program.pp_stats p;
  let t0 = Sys.time () in
  let r = Suite.run_all ~reorder p in
  Printf.printf "pipeline completed in %.2f s\n" (Sys.time () -. t0);
  Printf.printf "  Hierarchy            : %d subtype pairs\n"
    (List.length r.Suite.subtypes);
  Printf.printf "  Points-to Analysis   : %d (var, heap) pairs\n"
    (List.length r.Suite.pt);
  Printf.printf "  Virtual Call Resol.  : %d resolved targets\n"
    (List.length r.Suite.resolved);
  Printf.printf "  Call Graph           : %d reachable methods\n"
    (List.length r.Suite.reachable);
  Printf.printf "  Side-effect Analysis : %d (method, heap, field) triples\n"
    (List.length r.Suite.side_effects);
  if verify then begin
    let ref_pt, _ = Reference.points_to p in
    let ref_targets = Reference.call_targets p ref_pt in
    let ref_reach = Reference.reachable p ref_targets in
    let ref_se = Reference.side_effects p ref_pt ref_targets in
    let ok =
      List.length r.Suite.pt = Reference.IPS.cardinal ref_pt
      && List.length r.Suite.call_edges = Reference.IPS.cardinal ref_targets
      && List.length r.Suite.reachable = Reference.IS.cardinal ref_reach
      && List.length r.Suite.side_effects = Reference.ITS.cardinal ref_se
    in
    Printf.printf "verification against reference implementations: %s\n"
      (if ok then "PASS" else "FAIL");
    if not ok then exit 1
  end

let benchmark_arg =
  Arg.(
    value
    & opt string "compress"
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Workload: tiny, javac, compress, javac-13, sablecc, jedit")

let file_arg =
  Arg.(
    value & opt string ""
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Analyse a hand-written .mjava program instead of a workload")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Check against reference analyses")

let reorder_arg =
  Arg.(
    value & flag
    & info [ "reorder" ]
        ~doc:
          "Enable dynamic variable-order optimization: a sifting pass over \
           the loaded facts plus an auto trigger at BDD safe points during \
           the points-to and call-graph solves")

let cmd =
  Cmd.v
    (Cmd.info "jedd-analyze"
       ~doc:"Run the five BDD-based whole-program analyses of Figure 2")
    Term.(const run $ benchmark_arg $ file_arg $ verify_arg $ reorder_arg)

let () = exit (Cmd.eval cmd)
