(* Synchronous client for the jeddd socket protocol: one request line
   out, one response line back, over a Unix or TCP socket.  Used by
   jeddq, the server tests, and the query-latency benchmarks. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

exception Server_error of string
(** Raised by {!request_ok} when the response carries [ok: false]. *)

exception Connection_refused of string
(** Connect (after any retries) could not reach the server: refused,
    no such socket, or unresolvable host.  Distinct from
    {!Server_error} so callers can exit with a dedicated code. *)

let of_fd fd =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
  }

let connect_once socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  of_fd fd

let resolve_inet host port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> raise (Connection_refused (Printf.sprintf "cannot resolve %s" host))
  | ai :: _ -> ai.Unix.ai_addr

let connect_tcp_once host port =
  let addr = resolve_inet host port in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd addr;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  of_fd fd

(* Retry with exponential backoff: [retries] extra attempts after the
   first, sleeping [delay], [2*delay], ... between them.  A connection
   that cannot be established at all surfaces as Connection_refused. *)
let with_retries ~retries ~delay what f =
  let rec go attempt delay =
    try f ()
    with
    | Unix.Unix_error ((ECONNREFUSED | ENOENT | ETIMEDOUT | EHOSTUNREACH), _, _)
    | Connection_refused _
    when attempt < retries
    ->
      Unix.sleepf delay;
      go (attempt + 1) (delay *. 2.)
    | Unix.Unix_error (e, _, _) ->
      raise
        (Connection_refused
           (Printf.sprintf "cannot connect to %s: %s" what
              (Unix.error_message e)))
  in
  go 0 delay

let connect ?(retries = 0) ?(retry_delay = 0.05) socket_path =
  with_retries ~retries ~delay:retry_delay socket_path (fun () ->
      connect_once socket_path)

let connect_tcp ?(retries = 0) ?(retry_delay = 0.05) host port =
  with_retries ~retries ~delay:retry_delay
    (Printf.sprintf "%s:%d" host port)
    (fun () -> connect_tcp_once host port)

let close c = try Unix.close c.fd with _ -> ()

let set_timeout c seconds =
  (* bounds every blocking read/write on the connection *)
  Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO seconds;
  Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO seconds

let request c (v : Json.t) : Json.t =
  output_string c.oc (Json.to_string v);
  output_char c.oc '\n';
  flush c.oc;
  match input_line c.ic with
  | exception End_of_file -> raise (Server_error "connection closed by server")
  | line -> Json.of_string line

(* Build a request object; [verb] first so dumps read naturally. *)
let req verb fields = Json.Obj (("verb", Json.String verb) :: fields)

let request_ok c v =
  let resp = request c v in
  match Json.member "ok" resp with
  | Some (Json.Bool true) -> resp
  | _ ->
    let msg =
      match Json.member "error" resp with
      | Some (Json.String m) -> m
      | _ -> "request failed"
    in
    raise (Server_error msg)

let ping c = ignore (request_ok c (req "ping" []))

let count c rel =
  match
    Json.member "tuples" (request_ok c (req "count" [ ("rel", Json.String rel) ]))
  with
  | Some (Json.Int n) -> n
  | _ -> raise (Server_error "malformed count response")

let pointsto c var =
  match
    Json.member "heaps" (request_ok c (req "pointsto" [ ("var", Json.Int var) ]))
  with
  | Some (Json.List hs) ->
    List.filter_map (function Json.Int h -> Some h | _ -> None) hs
  | _ -> raise (Server_error "malformed pointsto response")

let shutdown c = ignore (request_ok c (req "shutdown" []))
