(* Package version, threaded into every CLI's --version output. *)

let version = "0.5.0"

let banner =
  Printf.sprintf "jedd %s (backends: %s)" version
    (String.concat ", " Backend.known_backends)
