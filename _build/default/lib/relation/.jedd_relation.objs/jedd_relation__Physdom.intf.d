lib/relation/physdom.mli: Domain Jedd_bdd Universe
