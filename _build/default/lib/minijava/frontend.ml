exception Parse_error of string * int

(* -- tokens ------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tclass
  | Textends
  | Tmethod
  | Tnew
  | Tlbrace
  | Trbrace
  | Tlparen
  | Trparen
  | Teq
  | Tdot
  | Tsemi
  | Teof

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let is_id_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      let tok =
        match word with
        | "class" -> Tclass
        | "extends" -> Textends
        | "method" -> Tmethod
        | "new" -> Tnew
        | w -> Tid w
      in
      tokens := (tok, !line) :: !tokens
    end
    else begin
      let tok =
        match c with
        | '{' -> Tlbrace
        | '}' -> Trbrace
        | '(' -> Tlparen
        | ')' -> Trparen
        | '=' -> Teq
        | '.' -> Tdot
        | ';' -> Tsemi
        | c -> raise (Parse_error (Printf.sprintf "unexpected %C" c, !line))
      in
      tokens := (tok, !line) :: !tokens;
      incr i
    end
  done;
  tokens := (Teof, !line) :: !tokens;
  Array.of_list (List.rev !tokens)

(* -- raw syntax --------------------------------------------------------- *)

type rstmt =
  | Ralloc of string * string  (* var = new Class *)
  | Rassign of string * string  (* dst = src *)
  | Rstore of string * string * string  (* base.field = src *)
  | Rload of string * string * string  (* dst = base.field *)
  | Rcall of string * string  (* recv.sig() *)

type rmethod = { rm_name : string; rm_body : rstmt list }
type rclass = { rc_name : string; rc_super : string option; rc_methods : rmethod list }

type parser_state = { toks : (token * int) array; mutable k : int }

let peek st = fst st.toks.(st.k)
let peek_line st = snd st.toks.(st.k)
let advance st = if st.k < Array.length st.toks - 1 then st.k <- st.k + 1

let expect st tok what =
  if peek st = tok then advance st
  else raise (Parse_error ("expected " ^ what, peek_line st))

let expect_id st what =
  match peek st with
  | Tid s ->
    advance st;
    s
  | _ -> raise (Parse_error ("expected " ^ what, peek_line st))

let parse_stmt st =
  (* forms: v = new C ; | v = v ; | v = v . f ; | v . f = v ; | v . m ( ) ; *)
  let first = expect_id st "identifier" in
  match peek st with
  | Teq -> (
    advance st;
    match peek st with
    | Tnew ->
      advance st;
      let cls = expect_id st "class name" in
      expect st Tsemi ";";
      Ralloc (first, cls)
    | Tid _ -> (
      let second = expect_id st "identifier" in
      match peek st with
      | Tdot ->
        advance st;
        let field = expect_id st "field name" in
        expect st Tsemi ";";
        Rload (first, second, field)
      | _ ->
        expect st Tsemi ";";
        Rassign (first, second))
    | _ -> raise (Parse_error ("expected rhs of assignment", peek_line st)))
  | Tdot -> (
    advance st;
    let member = expect_id st "member name" in
    match peek st with
    | Tlparen ->
      advance st;
      expect st Trparen ")";
      expect st Tsemi ";";
      Rcall (first, member)
    | Teq ->
      advance st;
      let src = expect_id st "identifier" in
      expect st Tsemi ";";
      Rstore (first, member, src)
    | _ -> raise (Parse_error ("expected ( or = after member", peek_line st)))
  | _ -> raise (Parse_error ("expected = or . in statement", peek_line st))

let parse_method st =
  expect st Tmethod "method";
  let name = expect_id st "method name" in
  expect st Tlparen "(";
  expect st Trparen ")";
  expect st Tlbrace "{";
  let body = ref [] in
  while peek st <> Trbrace do
    body := parse_stmt st :: !body
  done;
  expect st Trbrace "}";
  { rm_name = name; rm_body = List.rev !body }

let parse_class st =
  expect st Tclass "class";
  let name = expect_id st "class name" in
  let super =
    if peek st = Textends then begin
      advance st;
      Some (expect_id st "superclass name")
    end
    else None
  in
  expect st Tlbrace "{";
  let methods = ref [] in
  while peek st <> Trbrace do
    methods := parse_method st :: !methods
  done;
  expect st Trbrace "}";
  { rc_name = name; rc_super = super; rc_methods = List.rev !methods }

(* -- elaboration to Program.t ------------------------------------------- *)

let parse src : Program.t =
  let st = { toks = tokenize src; k = 0 } in
  let classes = ref [] in
  while peek st <> Teof do
    classes := parse_class st :: !classes
  done;
  let classes = List.rev !classes in
  (* numbering *)
  let class_ids = Hashtbl.create 16 in
  List.iteri
    (fun i (c : rclass) ->
      if Hashtbl.mem class_ids c.rc_name then
        raise (Parse_error ("duplicate class " ^ c.rc_name, 0));
      Hashtbl.add class_ids c.rc_name i)
    classes;
  let class_id name =
    match Hashtbl.find_opt class_ids name with
    | Some i -> i
    | None -> raise (Parse_error ("unknown class " ^ name, 0))
  in
  let sig_ids = Hashtbl.create 16 in
  let sig_id name =
    match Hashtbl.find_opt sig_ids name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length sig_ids in
      Hashtbl.add sig_ids name i;
      i
  in
  let field_ids = Hashtbl.create 16 in
  let field_id name =
    match Hashtbl.find_opt field_ids name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length field_ids in
      Hashtbl.add field_ids name i;
      i
  in
  let extend =
    List.filter_map
      (fun (c : rclass) ->
        Option.map (fun s -> (class_id c.rc_name, class_id s)) c.rc_super)
      classes
  in
  (* methods *)
  let declares = ref [] in
  let method_class = ref [] in
  let method_sig = ref [] in
  let n_methods = ref 0 in
  let method_of = Hashtbl.create 32 in
  List.iter
    (fun (c : rclass) ->
      List.iter
        (fun (m : rmethod) ->
          let mid = !n_methods in
          incr n_methods;
          let sg = sig_id m.rm_name in
          declares := (class_id c.rc_name, sg, mid) :: !declares;
          method_class := class_id c.rc_name :: !method_class;
          method_sig := sg :: !method_sig;
          Hashtbl.add method_of (c.rc_name, m.rm_name) mid)
        c.rc_methods)
    classes;
  (* statements: variables are (method, name) *)
  let var_ids = Hashtbl.create 64 in
  let var_method_rev = ref [] in
  let n_vars = ref 0 in
  let var_id mid name =
    match Hashtbl.find_opt var_ids (mid, name) with
    | Some v -> v
    | None ->
      let v = !n_vars in
      incr n_vars;
      Hashtbl.add var_ids (mid, name) v;
      var_method_rev := mid :: !var_method_rev;
      v
  in
  let heap_type = ref [] in
  let n_heap = ref 0 in
  let allocs = ref [] and assigns = ref [] in
  let stores = ref [] and loads = ref [] in
  let calls = ref [] in
  let n_calls = ref 0 in
  List.iter
    (fun (c : rclass) ->
      List.iter
        (fun (m : rmethod) ->
          let mid = Hashtbl.find method_of (c.rc_name, m.rm_name) in
          List.iter
            (fun (s : rstmt) ->
              match s with
              | Ralloc (v, cls) ->
                let h = !n_heap in
                incr n_heap;
                heap_type := class_id cls :: !heap_type;
                allocs := (var_id mid v, h) :: !allocs
              | Rassign (dst, src) ->
                assigns := (var_id mid src, var_id mid dst) :: !assigns
              | Rstore (base, f, src) ->
                stores := (var_id mid src, var_id mid base, field_id f) :: !stores
              | Rload (dst, base, f) ->
                loads := (var_id mid base, field_id f, var_id mid dst) :: !loads
              | Rcall (recv, sg) ->
                let cs = !n_calls in
                incr n_calls;
                calls :=
                  {
                    Program.cs_id = cs;
                    cs_recv = var_id mid recv;
                    cs_sig = sig_id sg;
                    cs_in_method = mid;
                  }
                  :: !calls)
            m.rm_body)
        c.rc_methods)
    classes;
  let entry_methods =
    match Hashtbl.find_opt sig_ids "main" with
    | Some main_sig ->
      let sigs = Array.of_list (List.rev !method_sig) in
      let mains =
        List.filter
          (fun i -> sigs.(i) = main_sig)
          (List.init !n_methods Fun.id)
      in
      if mains = [] then List.init !n_methods Fun.id else mains
    | None -> List.init !n_methods Fun.id
  in
  {
    Program.n_classes = List.length classes;
    n_sigs = max 1 (Hashtbl.length sig_ids);
    n_methods = !n_methods;
    n_vars = max 1 !n_vars;
    n_heap = max 1 !n_heap;
    n_fields = max 1 (Hashtbl.length field_ids);
    extend;
    declares = List.rev !declares;
    method_class = Array.of_list (List.rev !method_class);
    method_sig = Array.of_list (List.rev !method_sig);
    var_method = Array.of_list (List.rev !var_method_rev);
    heap_type = Array.of_list (List.rev !heap_type);
    allocs = List.rev !allocs;
    assigns = List.rev !assigns;
    stores = List.rev !stores;
    loads = List.rev !loads;
    calls = List.rev !calls;
    entry_methods;
  }

let load_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse s
