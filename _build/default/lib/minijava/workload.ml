(* Deterministic synthetic-workload generator.

   The paper evaluates on javac, compress, sablecc and jedit through the
   Soot framework; those inputs are not redistributable, so this module
   generates whole programs with the same *structural* knobs — class
   count, hierarchy depth, override density, allocation/copy/field/call
   statement mix — at per-benchmark scales chosen to preserve the
   paper's relative benchmark sizes (compress small, jedit largest).
   Generation is seeded and reproducible. *)

type profile = {
  name : string;
  classes : int;
  sigs_per_class : int;  (* roughly; also controls overriding *)
  methods_scale : int;
  vars_per_method : int;
  heap_per_method : int;
  fields : int;
  assign_factor : int;  (* copies per method *)
  field_ops_per_method : int;
  calls_per_method : int;
  seed : int;
}

(* Scales follow the paper's Table 2 ordering: compress is the small
   SPEC benchmark, javac mid-sized, sablecc similar, jedit largest. *)
let profiles =
  [
    {
      name = "javac";
      classes = 90;
      sigs_per_class = 4;
      methods_scale = 3;
      vars_per_method = 6;
      heap_per_method = 2;
      fields = 40;
      assign_factor = 8;
      field_ops_per_method = 3;
      calls_per_method = 3;
      seed = 11;
    };
    {
      name = "compress";
      classes = 30;
      sigs_per_class = 3;
      methods_scale = 2;
      vars_per_method = 5;
      heap_per_method = 2;
      fields = 16;
      assign_factor = 6;
      field_ops_per_method = 2;
      calls_per_method = 2;
      seed = 22;
    };
    {
      name = "javac-13";
      classes = 110;
      sigs_per_class = 4;
      methods_scale = 3;
      vars_per_method = 6;
      heap_per_method = 2;
      fields = 48;
      assign_factor = 8;
      field_ops_per_method = 3;
      calls_per_method = 3;
      seed = 33;
    };
    {
      name = "sablecc";
      classes = 120;
      sigs_per_class = 3;
      methods_scale = 3;
      vars_per_method = 5;
      heap_per_method = 2;
      fields = 40;
      assign_factor = 7;
      field_ops_per_method = 2;
      calls_per_method = 3;
      seed = 44;
    };
    {
      name = "jedit";
      classes = 160;
      sigs_per_class = 4;
      methods_scale = 3;
      vars_per_method = 7;
      heap_per_method = 3;
      fields = 64;
      assign_factor = 9;
      field_ops_per_method = 3;
      calls_per_method = 4;
      seed = 55;
    };
  ]

let profile_named name =
  match List.find_opt (fun p -> p.name = name) profiles with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Workload.profile_named: %s" name)

let tiny =
  {
    name = "tiny";
    classes = 6;
    sigs_per_class = 2;
    methods_scale = 2;
    vars_per_method = 3;
    heap_per_method = 1;
    fields = 4;
    assign_factor = 3;
    field_ops_per_method = 1;
    calls_per_method = 1;
    seed = 7;
  }

let generate (p : profile) : Program.t =
  let st = Random.State.make [| p.seed; p.classes; 0x6a65 |] in
  let rand n = if n <= 0 then 0 else Random.State.int st n in
  let n_classes = p.classes in
  let n_sigs = max 2 (p.classes * p.sigs_per_class / 3) in
  (* hierarchy: a random forest rooted at class 0 *)
  let extend =
    List.init (n_classes - 1) (fun i ->
        let sub = i + 1 in
        (sub, rand sub))
  in
  (* method declarations: class 0 declares a base set of signatures so
     that resolution up the chain terminates; others override a random
     subset *)
  let declares = ref [] in
  let method_class = ref [] in
  let method_sig = ref [] in
  let n_methods = ref 0 in
  let declare cls sg =
    let m = !n_methods in
    incr n_methods;
    declares := (cls, sg, m) :: !declares;
    method_class := cls :: !method_class;
    method_sig := sg :: !method_sig;
    m
  in
  let base_sigs = min n_sigs (p.sigs_per_class * 2) in
  for sg = 0 to base_sigs - 1 do
    ignore (declare 0 sg)
  done;
  for cls = 1 to n_classes - 1 do
    let count = 1 + rand p.methods_scale in
    let seen = Hashtbl.create 8 in
    for _ = 1 to count do
      let sg = rand n_sigs in
      if not (Hashtbl.mem seen sg) then begin
        Hashtbl.add seen sg ();
        ignore (declare cls sg)
      end
    done
  done;
  let n_methods = !n_methods in
  let method_class = Array.of_list (List.rev !method_class) in
  let method_sig = Array.of_list (List.rev !method_sig) in
  (* variables and statements per method *)
  let n_vars = n_methods * p.vars_per_method in
  let var_method =
    Array.init n_vars (fun v -> v / p.vars_per_method)
  in
  let vars_of m =
    List.init p.vars_per_method (fun i -> (m * p.vars_per_method) + i)
  in
  let heap = ref [] in
  let heap_type = ref [] in
  let n_heap = ref 0 in
  let allocs = ref [] in
  let assigns = ref [] in
  let stores = ref [] in
  let loads = ref [] in
  let calls = ref [] in
  let n_calls = ref 0 in
  for m = 0 to n_methods - 1 do
    let vs = Array.of_list (vars_of m) in
    let var () = vs.(rand (Array.length vs)) in
    (* allocations *)
    let first_alloc_var = ref (-1) in
    for _ = 1 to p.heap_per_method do
      let h = !n_heap in
      incr n_heap;
      let t = rand n_classes in
      heap := h :: !heap;
      heap_type := t :: !heap_type;
      let av = var () in
      if !first_alloc_var < 0 then first_alloc_var := av;
      allocs := (av, h) :: !allocs
    done;
    (* copies — a mix of local and cross-method (parameter passing) *)
    for _ = 1 to p.assign_factor do
      let src = var () in
      let dst = if rand 4 = 0 then rand n_vars else var () in
      if src <> dst then assigns := (src, dst) :: !assigns
    done;
    (* field operations *)
    for _ = 1 to p.field_ops_per_method do
      let f = rand (max 1 p.fields) in
      if rand 2 = 0 then stores := (var (), var (), f) :: !stores
      else loads := (var (), f, var ()) :: !loads
    done;
    (* virtual call sites; make about half the receivers flow from an
       allocation so resolution has something to chew on *)
    for _ = 1 to p.calls_per_method do
      let cs = !n_calls in
      incr n_calls;
      let recv = var () in
      if rand 4 = 0 && !first_alloc_var >= 0 && !first_alloc_var <> recv then
        assigns := (!first_alloc_var, recv) :: !assigns;
      calls :=
        {
          Program.cs_id = cs;
          cs_recv = recv;
          cs_sig = rand n_sigs;
          cs_in_method = m;
        }
        :: !calls
    done
  done;
  {
    Program.n_classes;
    n_sigs;
    n_methods;
    n_vars;
    n_heap = !n_heap;
    n_fields = max 1 p.fields;
    extend;
    declares = List.rev !declares;
    method_class;
    method_sig;
    var_method;
    heap_type = Array.of_list (List.rev !heap_type);
    allocs = List.rev !allocs;
    assigns = List.rev !assigns;
    stores = List.rev !stores;
    loads = List.rev !loads;
    calls = List.rev !calls;
    (* entry points: the root class's base methods, like a main class
       plus the callbacks a driver invokes *)
    entry_methods = List.init (min base_sigs n_methods) (fun i -> i);
  }
