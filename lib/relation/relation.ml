module Fdd = Jedd_bdd.Fdd
module B = Backend

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type t = {
  u : Universe.t;
  sch : Schema.t;
  rt : B.node;
  lc : int Atomic.t;  (** the universe's live-root counter, captured so
                          [release] (a finaliser) never takes a lock *)
  mutable released : bool;
}

let backend r = Universe.backend r.u

(* -- live-root accounting (per universe) --------------------------------

   The table lookup is mutex-protected (relations are created from any
   domain once a universe runs analyses in parallel), but the counter
   itself is atomic and captured in the relation: [release] runs from GC
   finalisers, which may fire while this very lock is held, so its path
   must be lock-free. *)

let live_lock = Mutex.create ()
let live_counts : (int, int Atomic.t) Hashtbl.t = Hashtbl.create 8

let live_counter u =
  Mutex.lock live_lock;
  let r =
    match Hashtbl.find_opt live_counts (Universe.uid u) with
    | Some r -> r
    | None ->
      let r = Atomic.make 0 in
      Hashtbl.add live_counts (Universe.uid u) r;
      r
  in
  Mutex.unlock live_lock;
  r

let live_root_count u = Atomic.get (live_counter u)

let release r =
  if not r.released then begin
    r.released <- true;
    Atomic.decr r.lc;
    B.delref (backend r) r.rt
  end

let make u sch rt =
  B.addref (Universe.backend u) rt;
  let lc = live_counter u in
  let r = { u; sch; rt; lc; released = false } in
  Atomic.incr lc;
  (* The finaliser is the safety net of §4.2: eager releases come from
     [release], called by the interpreter's liveness analysis. *)
  Gc.finalise release r;
  r

let of_root u sch rt = make u sch rt

let universe r = r.u
let schema r = r.sch

let root r =
  if r.released then invalid_arg "Relation: use after release";
  r.rt

(* -- profiling ----------------------------------------------------------- *)

let now_ms () = Sys.time () *. 1000.0

let profiled u ~op ~label ~operands f =
  match Universe.profile_level u with
  | Universe.Off -> f ()
  | lvl ->
    let b = Universe.backend u in
    let snap = Universe.bdd_snapshot u in
    let t0 = now_ms () in
    let result = f () in
    let millis = now_ms () -. t0 in
    let bdd = Some (Universe.bdd_delta_since u snap) in
    let operand_nodes = List.map (fun (r : t) -> B.nodecount b r.rt) operands in
    let result_nodes = B.nodecount b result.rt in
    let result_tuples =
      B.satcount b result.rt ~over:(Array.to_list (Schema.levels result.sch))
    in
    let shapes =
      match lvl with
      | Universe.Shapes ->
        Some
          ( B.shape b result.rt,
            List.map (fun (r : t) -> B.shape b r.rt) operands )
      | _ -> None
    in
    Universe.emit_op u
      {
        op;
        label;
        millis;
        operand_nodes;
        result_nodes;
        result_tuples;
        shapes;
        bdd;
      };
    result

(* -- scratch physical domains ------------------------------------------- *)

let scratch_lock = Mutex.create ()
let scratch_pools : (int, Physdom.t list ref) Hashtbl.t = Hashtbl.create 8

(* The whole allocate-or-reuse step is one critical section so two
   domains cannot both miss and declare duplicate scratch physdoms. *)
let scratch u ~bits ~avoid =
  Mutex.lock scratch_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock scratch_lock)
    (fun () ->
      let pool =
        match Hashtbl.find_opt scratch_pools (Universe.uid u) with
        | Some p -> p
        | None ->
          let p = ref [] in
          Hashtbl.add scratch_pools (Universe.uid u) p;
          p
      in
      let usable p =
        Physdom.width p >= bits && not (List.exists (Physdom.equal p) avoid)
      in
      match List.find_opt usable !pool with
      | Some p -> p
      | None ->
        let p =
          Physdom.declare u ~name:(Universe.next_scratch_name u) ~bits
        in
        pool := p :: !pool;
        p)

(* -- layout changes (replace at the BDD level, §3.2.2) ------------------- *)

(* Move attributes between physical domains of possibly different widths.
   [moves] is a list of (source physdom, target physdom).  Relies on the
   runtime invariant that bits above an attribute's domain width are
   constrained to zero.

   [layout_parts] splits the change into the three pieces the backends
   consume separately: the source-side restriction (applied eagerly — it
   only shrinks the operand, and only when a move narrows), the raw
   level-permutation pairs, and the levels of new high bits of wider
   targets that must be constrained to zero after the move. *)
let layout_parts u rt moves =
  let b = Universe.backend u in
  let moves = List.filter (fun (s, d) -> not (Physdom.equal s d)) moves in
  if moves = [] then (rt, [], [])
  else begin
    (* 1. Drop dependence on over-wide source high bits (constant 0). *)
    let rt =
      List.fold_left
        (fun rt (src, dst) ->
          let ws = Physdom.width src and wd = Physdom.width dst in
          if ws > wd then begin
            let lv = Physdom.levels src in
            let highs = Array.to_list (Array.sub lv 0 (ws - wd)) in
            B.restrict b rt (List.map (fun l -> (l, false)) highs)
          end
          else rt)
        rt moves
    in
    (* 2. One bit permutation for all moves (low bits aligned). *)
    let pairs =
      List.concat_map
        (fun (src, dst) ->
          let ls = Physdom.levels src and ld = Physdom.levels dst in
          let ws = Array.length ls and wd = Array.length ld in
          let k = min ws wd in
          List.init k (fun i -> (ls.(ws - 1 - i), ld.(wd - 1 - i))))
        moves
    in
    (* 3. New high bits of wider targets, to be constrained to zero. *)
    let zero_levels =
      List.concat_map
        (fun (src, dst) ->
          let ws = Physdom.width src and wd = Physdom.width dst in
          if wd > ws then
            let lv = Physdom.levels dst in
            List.init (wd - ws) (fun i -> lv.(i))
          else [])
        moves
    in
    (rt, pairs, zero_levels)
  end

let zero_cube b levels = B.cube b (List.map (fun l -> (l, false)) levels)

let change_layout u rt moves =
  let b = Universe.backend u in
  let rt, pairs, zero_levels = layout_parts u rt moves in
  let rt = if pairs = [] then rt else B.replace b rt pairs in
  if zero_levels = [] then rt else B.band b rt (zero_cube b zero_levels)

(* Equality constraint between two physical domains holding the same
   domain's values (used by attribute copy). *)
let phys_equality u pa pb =
  let b = Universe.backend u in
  let la = Physdom.levels pa and lb = Physdom.levels pb in
  let wa = Array.length la and wb = Array.length lb in
  let k = min wa wb in
  let acc = ref (B.one b) in
  for i = 0 to k - 1 do
    let eq = B.biimp_vars b la.(wa - 1 - i) lb.(wb - 1 - i) in
    acc := B.band b !acc eq
  done;
  (* extra high bits of the wider side must be zero *)
  let force_zero levels extra =
    for i = 0 to extra - 1 do
      acc := B.band b !acc (B.cube b [ (levels.(i), false) ])
    done
  in
  if wa > wb then force_zero la (wa - wb);
  if wb > wa then force_zero lb (wb - wa);
  !acc

(* -- construction -------------------------------------------------------- *)

let empty u sch = make u sch (B.zero (Universe.backend u))

let full u sch =
  Universe.checkpoint u;
  let b = Universe.backend u in
  let rt =
    List.fold_left
      (fun acc (e : Schema.entry) ->
        B.band b acc
          (B.less_than b (Physdom.block e.phys)
             (Domain.size (Attribute.domain e.attr))))
      (B.one b) (Schema.entries sch)
  in
  make u sch rt

let tuple_root u sch objs =
  let b = Universe.backend u in
  let entries = Schema.entries sch in
  if List.length objs <> List.length entries then
    type_error "tuple arity %d does not match schema %s" (List.length objs)
      (Schema.to_string sch);
  List.fold_left2
    (fun acc (e : Schema.entry) v ->
      let d = Attribute.domain e.attr in
      if v < 0 || v >= Domain.size d then
        type_error "object %d out of range for domain %s" v (Domain.name d);
      B.band b acc (B.ithval b (Physdom.block e.phys) v))
    (B.one b) entries objs

let tuple u sch objs =
  Universe.checkpoint u;
  make u sch (tuple_root u sch objs)

let of_tuples u sch tuples =
  Universe.checkpoint u;
  let b = Universe.backend u in
  let rt =
    List.fold_left
      (fun acc objs -> B.bor b acc (tuple_root u sch objs))
      (B.zero b) tuples
  in
  make u sch rt

(* -- layout coercion ------------------------------------------------------ *)

let coerce ?(label = "") r target =
  if not (Schema.same_attrs r.sch target) then
    type_error "coerce: schemas %s and %s differ in attributes"
      (Schema.to_string r.sch) (Schema.to_string target);
  if Schema.same_layout r.sch target then begin
    (* No BDD work, but normalise the attribute order to the target's
       so extraction (iterators, printing) follows the declaration. *)
    let same_order =
      List.for_all2
        (fun (a : Schema.entry) (b : Schema.entry) ->
          Attribute.equal a.attr b.attr)
        (Schema.entries r.sch) (Schema.entries target)
    in
    if same_order then r else make r.u target (root r)
  end
  else begin
    Universe.checkpoint r.u;
    profiled r.u ~op:"replace" ~label ~operands:[ r ] (fun () ->
        let moves =
          List.filter_map
            (fun (e : Schema.entry) ->
              let e' = Schema.find target e.attr in
              if Physdom.equal e.phys e'.phys then None
              else Some (e.phys, e'.phys))
            (Schema.entries r.sch)
        in
        make r.u target (change_layout r.u (root r) moves))
  end

let replace ?(label = "") r assignment =
  let target =
    Schema.make
      (List.map
         (fun (e : Schema.entry) ->
           match
             List.find_opt (fun (a, _) -> Attribute.equal a e.attr) assignment
           with
           | Some (_, phys) -> { e with phys }
           | None -> e)
         (Schema.entries r.sch))
  in
  List.iter
    (fun (a, _) ->
      if not (Schema.mem r.sch a) then
        type_error "replace: attribute %s not in schema %s" (Attribute.name a)
          (Schema.to_string r.sch))
    assignment;
  coerce ~label r target

(* -- set operations -------------------------------------------------------- *)

let set_op name bdd_op ?(label = "") x y =
  if not (Schema.same_attrs x.sch y.sch) then
    type_error "%s: incompatible schemas %s and %s" name
      (Schema.to_string x.sch) (Schema.to_string y.sch);
  Universe.checkpoint x.u;
  let y = coerce ~label y x.sch in
  profiled x.u ~op:name ~label ~operands:[ x; y ] (fun () ->
      make x.u x.sch (bdd_op (Universe.backend x.u) (root x) (root y)))

let union ?label x y = set_op "union" B.bor ?label x y
let inter ?label x y = set_op "intersect" B.band ?label x y
let diff ?label x y = set_op "difference" B.bdiff ?label x y

let equal x y =
  if not (Schema.same_attrs x.sch y.sch) then
    type_error "equal: incompatible schemas %s and %s"
      (Schema.to_string x.sch) (Schema.to_string y.sch);
  let y = coerce y x.sch in
  B.equal (backend x) (root x) (root y)

let is_empty r = B.is_zero (backend r) (root r)

let size r =
  B.satcount (backend r) (root r) ~over:(Array.to_list (Schema.levels r.sch))

(* -- projection and attribute operations ----------------------------------- *)

let project_away ?(label = "") r attrs =
  List.iter
    (fun a ->
      if not (Schema.mem r.sch a) then
        type_error "project: attribute %s not in schema %s" (Attribute.name a)
          (Schema.to_string r.sch))
    attrs;
  Universe.checkpoint r.u;
  profiled r.u ~op:"project" ~label ~operands:[ r ] (fun () ->
      let b = backend r in
      let removed, kept =
        List.partition
          (fun (e : Schema.entry) ->
            List.exists (Attribute.equal e.attr) attrs)
          (Schema.entries r.sch)
      in
      let levels =
        List.concat_map
          (fun (e : Schema.entry) -> Array.to_list (Physdom.levels e.phys))
          removed
      in
      make r.u (Schema.make kept) (B.exist b (root r) levels))

let rename ?(label = "") r renames =
  ignore label;
  let entries =
    List.map
      (fun (e : Schema.entry) ->
        match
          List.find_opt (fun (a, _) -> Attribute.equal a e.attr) renames
        with
        | Some (_, b) ->
          if not (Domain.equal (Attribute.domain e.attr) (Attribute.domain b))
          then
            type_error "rename: %s and %s have different domains"
              (Attribute.name e.attr) (Attribute.name b);
          { e with attr = b }
        | None -> e)
      (Schema.entries r.sch)
  in
  List.iter
    (fun (a, _) ->
      if not (Schema.mem r.sch a) then
        type_error "rename: attribute %s not in schema %s" (Attribute.name a)
          (Schema.to_string r.sch))
    renames;
  (* No BDD work: only the attribute -> physical domain map changes. *)
  make r.u (Schema.make entries) (root r)

let copy ?(label = "") ?phys r a ~as_ =
  if not (Schema.mem r.sch a) then
    type_error "copy: attribute %s not in schema %s" (Attribute.name a)
      (Schema.to_string r.sch);
  if Schema.mem r.sch as_ then
    type_error "copy: attribute %s already in schema %s" (Attribute.name as_)
      (Schema.to_string r.sch);
  if not (Domain.equal (Attribute.domain a) (Attribute.domain as_)) then
    type_error "copy: %s and %s have different domains" (Attribute.name a)
      (Attribute.name as_);
  Universe.checkpoint r.u;
  profiled r.u ~op:"copy" ~label ~operands:[ r ] (fun () ->
      let src = Schema.phys_of r.sch a in
      let target =
        match phys with
        | Some p -> p
        | None ->
          scratch r.u
            ~bits:(Domain.bits (Attribute.domain a))
            ~avoid:(List.map (fun (e : Schema.entry) -> e.phys)
                      (Schema.entries r.sch))
      in
      let entries =
        Schema.entries r.sch @ [ { Schema.attr = as_; phys = target } ]
      in
      let rt = B.band (backend r) (root r) (phys_equality r.u src target) in
      make r.u (Schema.make entries) rt)

(* -- join and composition --------------------------------------------------- *)

(* Shared front half of join and compose: dynamic type checks, then
   relayout of the right operand so compared attributes share physical
   domains with the left and everything else is collision-free. *)
let align name x cmp_x y cmp_y =
  if List.length cmp_x <> List.length cmp_y then
    type_error "%s: attribute lists differ in length" name;
  let check_in sch a =
    if not (Schema.mem sch a) then
      type_error "%s: attribute %s not in schema %s" name (Attribute.name a)
        (Schema.to_string sch)
  in
  List.iter (check_in x.sch) cmp_x;
  List.iter (check_in y.sch) cmp_y;
  List.iter2
    (fun a b ->
      if not (Domain.equal (Attribute.domain a) (Attribute.domain b)) then
        type_error "%s: compared attributes %s and %s have different domains"
          name (Attribute.name a) (Attribute.name b))
    cmp_x cmp_y;
  let dup l =
    List.exists
      (fun a -> List.length (List.filter (Attribute.equal a) l) > 1)
      l
  in
  if dup cmp_x || dup cmp_y then
    type_error "%s: duplicate attribute in comparison list" name;
  (* Choose target physical domains for the right operand. *)
  let x_entries = Schema.entries x.sch in
  let y_entries = Schema.entries y.sch in
  let target_of_cmp b =
    let i =
      let rec idx n = function
        | [] -> assert false
        | a :: rest -> if Attribute.equal a b then n else idx (n + 1) rest
      in
      idx 0 cmp_y
    in
    Schema.phys_of x.sch (List.nth cmp_x i)
  in
  let reserved =
    List.map (fun (e : Schema.entry) -> e.phys) x_entries
  in
  (* pass 1: compared attributes and keepable others *)
  let chosen = ref [] in
  let choose (e : Schema.entry) =
    if List.exists (Attribute.equal e.attr) cmp_y then begin
      let t = target_of_cmp e.attr in
      chosen := (e.attr, t) :: !chosen;
      t
    end
    else if
      (not (List.exists (Physdom.equal e.phys) reserved))
      && not (List.exists (fun (_, p) -> Physdom.equal p e.phys) !chosen)
    then begin
      chosen := (e.attr, e.phys) :: !chosen;
      e.phys
    end
    else begin
      (* collision: move to a scratch domain *)
      let avoid =
        reserved
        @ List.map snd !chosen
        @ List.map (fun (e : Schema.entry) -> e.phys) y_entries
      in
      let t =
        scratch x.u ~bits:(Domain.bits (Attribute.domain e.attr)) ~avoid
      in
      chosen := (e.attr, t) :: !chosen;
      t
    end
  in
  let y_targets =
    List.map (fun (e : Schema.entry) -> (e, choose e)) y_entries
  in
  let moves =
    List.filter_map
      (fun ((e : Schema.entry), t) ->
        if Physdom.equal e.phys t then None else Some (e.phys, t))
      y_targets
  in
  (* Hot path: the aligned right operand is NOT materialised here.  The
     caller feeds the pre-restricted root plus the permutation pairs to
     the backend's fused product (relprod_replace), which
     conjoins/quantifies against the permuted operand in one recursion
     (§2.2.3's one-pass argument, extended to the re-layout itself). *)
  let y_pre, pairs, zero_levels = layout_parts x.u (root y) moves in
  let y_entries' =
    List.map
      (fun ((e : Schema.entry), t) -> { e with Schema.phys = t })
      y_targets
  in
  (y_pre, pairs, zero_levels, y_entries')

let result_disjointness name left_entries right_entries =
  List.iter
    (fun (e : Schema.entry) ->
      if
        List.exists
          (fun (e2 : Schema.entry) -> Attribute.equal e.attr e2.attr)
          right_entries
      then
        type_error "%s: attribute %s appears on both sides" name
          (Attribute.name e.attr))
    left_entries

(* The left operand absorbs the zero-constraint on any new high bits of
   the (unmaterialised) aligned right operand:
   [f /\ (perm(g) /\ Z)] = [(f /\ Z) /\ perm(g)], and conjoining a small
   cube into [f] is linear in [f]. *)
let absorb_zero_levels b x_root zero_levels =
  if zero_levels = [] then x_root
  else B.band b x_root (zero_cube b zero_levels)

let join ?(label = "") x cmp_x y cmp_y =
  Universe.checkpoint x.u;
  profiled x.u ~op:"join" ~label ~operands:[ x; y ] (fun () ->
      let y_pre, pairs, zero_levels, y_entries' =
        align "join" x cmp_x y cmp_y
      in
      let kept_right =
        List.filter
          (fun (e : Schema.entry) ->
            not (List.exists (Attribute.equal e.attr) cmp_y))
          y_entries'
      in
      result_disjointness "join" (Schema.entries x.sch) kept_right;
      let b = Universe.backend x.u in
      let xr = absorb_zero_levels b (root x) zero_levels in
      (* Fused conjunction-with-permutation: no aligned intermediate. *)
      let rt = B.relprod_replace b xr y_pre pairs [] in
      make x.u (Schema.make (Schema.entries x.sch @ kept_right)) rt)

let compose ?(label = "") x cmp_x y cmp_y =
  Universe.checkpoint x.u;
  profiled x.u ~op:"compose" ~label ~operands:[ x; y ] (fun () ->
      let y_pre, pairs, zero_levels, y_entries' =
        align "compose" x cmp_x y cmp_y
      in
      let b = Universe.backend x.u in
      let kept_left =
        List.filter
          (fun (e : Schema.entry) ->
            not (List.exists (Attribute.equal e.attr) cmp_x))
          (Schema.entries x.sch)
      in
      let kept_right =
        List.filter
          (fun (e : Schema.entry) ->
            not (List.exists (Attribute.equal e.attr) cmp_y))
          y_entries'
      in
      result_disjointness "compose" kept_left kept_right;
      let qlevels =
        List.concat_map
          (fun a -> Array.to_list (Physdom.levels (Schema.phys_of x.sch a)))
          cmp_x
      in
      (* The one-pass relational product the paper says makes composition
         cheaper than join-then-project (§2.2.3), further fused with the
         right operand's re-layout so no aligned intermediate is built. *)
      let xr = absorb_zero_levels b (root x) zero_levels in
      let rt = B.relprod_replace b xr y_pre pairs qlevels in
      make x.u (Schema.make (kept_left @ kept_right)) rt)

let select ?(label = "") r bindings =
  List.iter
    (fun (a, _) ->
      if not (Schema.mem r.sch a) then
        type_error "select: attribute %s not in schema %s" (Attribute.name a)
          (Schema.to_string r.sch))
    bindings;
  Universe.checkpoint r.u;
  profiled r.u ~op:"select" ~label ~operands:[ r ] (fun () ->
      let b = backend r in
      let constraint_bdd =
        List.fold_left
          (fun acc (a, v) ->
            let e = Schema.find r.sch a in
            let d = Attribute.domain a in
            if v < 0 || v >= Domain.size d then
              type_error "select: object %d out of range for domain %s" v
                (Domain.name d);
            B.band b acc (B.ithval b (Physdom.block e.phys) v))
          (B.one b) bindings
      in
      make r.u r.sch (B.band b (root r) constraint_bdd))

(* -- extraction -------------------------------------------------------------- *)

let iter_tuples r k =
  let b = backend r in
  let m = Universe.manager r.u in
  let levels = Schema.levels r.sch in
  let entries = Array.of_list (Schema.entries r.sch) in
  let tuple = Array.make (Array.length entries) 0 in
  B.iter_assignments b (root r) ~levels (fun values ->
      Array.iteri
        (fun i (e : Schema.entry) ->
          tuple.(i) <- Fdd.decode m (Physdom.block e.phys) ~levels values)
        entries;
      k tuple)

let tuples r =
  let acc = ref [] in
  iter_tuples r (fun t -> acc := Array.to_list t :: !acc);
  List.sort compare !acc

let iter_objects r k =
  match Schema.entries r.sch with
  | [ _ ] -> iter_tuples r (fun t -> k t.(0))
  | _ ->
    type_error "iter_objects: relation %s does not have exactly one attribute"
      (Schema.to_string r.sch)

let dup r = make r.u r.sch (root r)

(* Relations hold BDD roots through stable handles, and every operation
   derives levels/permutations from the current order at call time, so
   reordering between operations is always safe. *)
let reorder r = Universe.reorder ~trigger:"relation" r.u

let pp ppf r =
  let entries = Schema.entries r.sch in
  let header = List.map (fun (e : Schema.entry) -> Attribute.name e.attr) entries in
  let rows =
    List.map
      (fun tup ->
        List.map2
          (fun (e : Schema.entry) v -> Domain.print_obj (Attribute.domain e.attr) v)
          entries tup)
      (tuples r)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Format.fprintf ppf "%s%s" cell
          (String.make (w - String.length cell + 2) ' '))
      cells;
    Format.pp_print_newline ppf ()
  in
  print_row header;
  List.iter print_row rows

let to_string r = Format.asprintf "%a" pp r

(* -- weighted relations (mtbdd backend) ---------------------------------- *)

(* Per-tuple integer weights, carried as MTBDD terminal values.  Every
   function below needs the terminal-valued engine; on the boolean
   backends there is nowhere to keep a weight, so they are type errors
   rather than silently-lossy approximations. *)

let require_mtbdd name u =
  let k = Universe.backend_kind u in
  if k <> `Mtbdd then
    type_error "%s: requires an mtbdd universe (this one is %s)" name
      (B.kind_name k)

let of_weighted_tuples u sch wtuples =
  require_mtbdd "Relation.of_weighted_tuples" u;
  Universe.checkpoint u;
  let b = Universe.backend u in
  let rt =
    (* accumulate with addition so duplicate tuples sum their weights *)
    List.fold_left
      (fun acc (objs, w) ->
        if w < 0 then
          type_error "of_weighted_tuples: negative weight %d" w;
        B.wadd b acc (B.wscale b (tuple_root u sch objs) w))
      (B.zero b) wtuples
  in
  make u sch rt

let iter_weighted_tuples r k =
  require_mtbdd "Relation.iter_weighted_tuples" r.u;
  let b = backend r in
  let m = Universe.manager r.u in
  let levels = Schema.levels r.sch in
  let entries = Array.of_list (Schema.entries r.sch) in
  let tuple = Array.make (Array.length entries) 0 in
  B.iter_weighted b (root r) ~levels (fun values w ->
      Array.iteri
        (fun i (e : Schema.entry) ->
          tuple.(i) <- Fdd.decode m (Physdom.block e.phys) ~levels values)
        entries;
      k tuple w)

let weight_of_tuples r =
  let acc = ref [] in
  iter_weighted_tuples r (fun t w -> acc := (Array.to_list t, w) :: !acc);
  List.sort compare !acc

let fold_weighted r ~init ~f =
  let acc = ref init in
  iter_weighted_tuples r (fun t w -> acc := f !acc (Array.to_list t) w);
  !acc

(* Read the value of a constant (terminal) diagram: enumerate over no
   levels — the callback fires once with the terminal's weight, or not
   at all for the zero terminal. *)
let constant_weight b n =
  let w = ref 0 in
  B.iter_weighted b n ~levels:[||] (fun _ v -> w := v);
  !w

let total_weight r =
  require_mtbdd "Relation.total_weight" r.u;
  let b = backend r in
  constant_weight b
    (B.wsum_exist b (root r) (Array.to_list (Schema.levels r.sch)))

let weight_of r objs =
  require_mtbdd "Relation.weight_of" r.u;
  let b = backend r in
  let masked = B.wmul b (root r) (tuple_root r.u r.sch objs) in
  constant_weight b
    (B.wsum_exist b masked (Array.to_list (Schema.levels r.sch)))

let project_sum ?(label = "") r attrs =
  require_mtbdd "Relation.project_sum" r.u;
  List.iter
    (fun a ->
      if not (Schema.mem r.sch a) then
        type_error "project_sum: attribute %s not in schema %s"
          (Attribute.name a) (Schema.to_string r.sch))
    attrs;
  Universe.checkpoint r.u;
  profiled r.u ~op:"project_sum" ~label ~operands:[ r ] (fun () ->
      let b = backend r in
      let removed, kept =
        List.partition
          (fun (e : Schema.entry) ->
            List.exists (Attribute.equal e.attr) attrs)
          (Schema.entries r.sch)
      in
      let levels =
        List.concat_map
          (fun (e : Schema.entry) -> Array.to_list (Physdom.levels e.phys))
          removed
      in
      make r.u (Schema.make kept) (B.wsum_exist b (root r) levels))

let scale ?(label = "") r k =
  require_mtbdd "Relation.scale" r.u;
  if k < 0 then type_error "scale: negative factor %d" k;
  Universe.checkpoint r.u;
  profiled r.u ~op:"scale" ~label ~operands:[ r ] (fun () ->
      make r.u r.sch (B.wscale (backend r) (root r) k))

let threshold ?(label = "") r k =
  require_mtbdd "Relation.threshold" r.u;
  Universe.checkpoint r.u;
  profiled r.u ~op:"threshold" ~label ~operands:[ r ] (fun () ->
      make r.u r.sch (B.wthreshold (backend r) (root r) k))
