(* Shared cost formulas for static shape analysis and hybrid dispatch.
   Everything saturates at [cap] so arithmetic never wraps and "huge"
   compares stably against any threshold. *)

let cap = 1 lsl 52

let clamp n = if n < 0 then cap else min n cap

let pow2 n = if n >= 52 then cap else clamp (1 lsl n)

let mul a b =
  let a = clamp a and b = clamp b in
  if a = 0 || b = 0 then 0
  else if a > cap / b then cap
  else a * b

let add a b = clamp (clamp a + clamp b)

let unknown ~bits = pow2 bits

let apply ~left ~right = mul left right

let product ~left ~right ~result_bits = min (mul left right) (pow2 result_bits)

let project ~nodes ~result_bits = min (clamp nodes) (pow2 result_bits)

let replace ~nodes = clamp nodes
