lib/jedd/emit_java.ml: Ast Buffer Constraints Driver Encode Hashtbl List Printf String Tast
