type tag_delta = { tag : string; hits : int; misses : int }

type bdd_delta = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  per_tag : tag_delta list;
  gcs : int;
  gc_millis : float;
  grows : int;
  grow_millis : float;
}

type op_event = {
  op : string;
  label : string;
  millis : float;
  operand_nodes : int list;
  result_nodes : int;
  result_tuples : int;
  shapes : (int array * int array list) option;
  bdd : bdd_delta option;
}

(* Snapshot the manager's monotone counters; [bdd_delta_since] turns two
   snapshots into the per-operation delta the profiler records. *)
type bdd_snapshot = {
  snap_stats : Jedd_bdd.Manager.cache_stat list;
  snap_gcs : int;
  snap_gc_millis : float;
  snap_grows : int;
  snap_grow_millis : float;
}

let bdd_snapshot m =
  {
    snap_stats = Jedd_bdd.Manager.cache_stats m;
    snap_gcs = Jedd_bdd.Manager.gc_count m;
    snap_gc_millis = Jedd_bdd.Manager.gc_millis m;
    snap_grows = Jedd_bdd.Manager.grow_count m;
    snap_grow_millis = Jedd_bdd.Manager.grow_millis m;
  }

let bdd_delta_since m before =
  let after = bdd_snapshot m in
  let per_tag =
    List.map2
      (fun (b : Jedd_bdd.Manager.cache_stat)
           (a : Jedd_bdd.Manager.cache_stat) ->
        { tag = a.name; hits = a.hits - b.hits; misses = a.misses - b.misses })
      before.snap_stats after.snap_stats
    |> List.filter (fun d -> d.hits <> 0 || d.misses <> 0)
  in
  let sum f =
    List.fold_left2
      (fun acc (b : Jedd_bdd.Manager.cache_stat)
           (a : Jedd_bdd.Manager.cache_stat) -> acc + f a - f b)
      0 before.snap_stats after.snap_stats
  in
  {
    cache_hits = sum (fun (s : Jedd_bdd.Manager.cache_stat) -> s.hits);
    cache_misses = sum (fun (s : Jedd_bdd.Manager.cache_stat) -> s.misses);
    cache_evictions =
      sum (fun (s : Jedd_bdd.Manager.cache_stat) -> s.evictions);
    per_tag;
    gcs = after.snap_gcs - before.snap_gcs;
    gc_millis = after.snap_gc_millis -. before.snap_gc_millis;
    grows = after.snap_grows - before.snap_grows;
    grow_millis = after.snap_grow_millis -. before.snap_grow_millis;
  }

type profile_level = Off | Counts | Shapes

type t = {
  manager : Jedd_bdd.Manager.t;
  uid : int;
  mutable level : profile_level;
  mutable on_op : (op_event -> unit) option;
  mutable scratch_counter : int;
}

let counter = ref 0

let create ?(node_capacity = 1 lsl 16) () =
  incr counter;
  {
    manager = Jedd_bdd.Manager.create ~node_capacity ();
    uid = !counter;
    level = Off;
    on_op = None;
    scratch_counter = 0;
  }

let uid u = u.uid

let manager u = u.manager
let set_profile_level u level = u.level <- level
let profile_level u = u.level
let set_on_op u hook = u.on_op <- hook

let emit_op u event =
  match u.on_op with
  | Some hook when u.level <> Off -> hook event
  | _ -> ()

let next_scratch_name u =
  u.scratch_counter <- u.scratch_counter + 1;
  Printf.sprintf "__scratch%d" u.scratch_counter

let checkpoint u = Jedd_bdd.Manager.checkpoint u.manager
