(* Minimal HTTP/1.1 for the jeddd JSON protocol: an incremental request
   parser (fed from a nonblocking socket's read buffer), a response
   writer with keep-alive and Content-Length framing, and a tiny
   blocking client used by jeddq and the load generator.

   Deliberately hand-rolled and deliberately small: one verb surface
   (POST a protocol request object, GET /ping, GET /stats), no chunked
   encoding, no TLS.  Oversized or malformed headers reject the
   connection rather than limp along. *)

module Json = Jedd_server.Json

let max_header_bytes = 8192
let max_body_bytes = 8 * 1024 * 1024

type request = {
  meth : string;
  path : string;
  headers : (string * string) list; (* names lowercased *)
  body : string;
  keep_alive : bool;
}

type parse_result =
  | Complete of request * int (* bytes consumed from the buffer *)
  | Incomplete
  | Invalid of string

let header req name = List.assoc_opt name req.headers

(* Find "\r\n\r\n" in [s.[0..len)]; -1 if absent. *)
let find_header_end s len =
  let rec go i =
    if i + 3 >= len then -1
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then i
    else go (i + 1)
  in
  go 0

let parse_headers lines =
  List.map
    (fun line ->
      match String.index_opt line ':' with
      | None -> raise Exit
      | Some i ->
        ( String.lowercase_ascii (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
    lines

(* Parse one request from the front of [data] (a connection's read
   buffer).  Pipelined requests are handled by the caller looping until
   [Incomplete]. *)
let parse_request data =
  let len = String.length data in
  match find_header_end data len with
  | -1 ->
    if len > max_header_bytes then Invalid "headers exceed 8192 bytes"
    else Incomplete
  | hdr_end -> (
    if hdr_end > max_header_bytes then Invalid "headers exceed 8192 bytes"
    else
      let head = String.sub data 0 hdr_end in
      match String.split_on_char '\n' head with
      | [] -> Invalid "empty request"
      | req_line :: header_lines -> (
        let req_line = String.trim req_line in
        let header_lines =
          List.filter_map
            (fun l ->
              let l = String.trim l in
              if l = "" then None else Some l)
            header_lines
        in
        match String.split_on_char ' ' req_line with
        | [ meth; path; version ]
          when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          match parse_headers header_lines with
          | exception Exit -> Invalid "malformed header line"
          | headers ->
            let content_length =
              match List.assoc_opt "content-length" headers with
              | None -> 0
              | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 -> n
                | _ -> -1)
            in
            if content_length < 0 then Invalid "bad Content-Length"
            else if content_length > max_body_bytes then
              Invalid "body too large"
            else begin
              let body_start = hdr_end + 4 in
              if len - body_start < content_length then Incomplete
              else begin
                let body = String.sub data body_start content_length in
                let keep_alive =
                  match
                    Option.map String.lowercase_ascii
                      (List.assoc_opt "connection" headers)
                  with
                  | Some "close" -> false
                  | Some "keep-alive" -> true
                  | _ -> version = "HTTP/1.1" (* 1.1 default: persistent *)
                in
                Complete
                  ( { meth; path; headers; body; keep_alive },
                    body_start + content_length )
              end
            end)
        | _ -> Invalid "malformed request line"))

(* -- responses ----------------------------------------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let response ?(status = 200) ?(keep_alive = true) body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\nContent-Length: \
     %d\r\nConnection: %s\r\n\r\n%s"
    status (status_text status) (String.length body)
    (if keep_alive then "keep-alive" else "close")
    body

let error_response ?(keep_alive = false) status msg =
  response ~status ~keep_alive
    (Json.to_string
       (Json.Obj
          [ ("ok", Json.Bool false); ("error", Json.String msg) ]))

(* -- blocking client (jeddq, load generator) ----------------------------- *)

(* POST one protocol request to [path] over an established connection's
   channels; returns the response body.  Raises on a non-200 status so
   transport and protocol errors stay distinguishable. *)
let client_request ~ic ~oc ?(path = "/query") (v : Json.t) : Json.t =
  let body = Json.to_string v in
  output_string oc
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: jeddd\r\nContent-Type: \
        application/json\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body);
  flush oc;
  let status_line = input_line ic in
  let status =
    match String.split_on_char ' ' (String.trim status_line) with
    | _ :: code :: _ -> ( match int_of_string_opt code with
      | Some c -> c
      | None -> failwith "http: bad status line")
    | _ -> failwith "http: bad status line"
  in
  let content_length = ref (-1) in
  let rec read_headers () =
    let line = String.trim (input_line ic) in
    if line <> "" then begin
      (match String.index_opt line ':' with
      | Some i
        when String.lowercase_ascii (String.sub line 0 i) = "content-length"
        ->
        content_length :=
          Option.value ~default:(-1)
            (int_of_string_opt
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))))
      | _ -> ());
      read_headers ()
    end
  in
  read_headers ();
  if !content_length < 0 then failwith "http: missing Content-Length";
  let body = really_input_string ic !content_length in
  if status <> 200 then
    failwith (Printf.sprintf "http: status %d: %s" status body)
  else Json.of_string body
