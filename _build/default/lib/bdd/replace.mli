(** Variable replacement: rebuild a BDD with its variables permuted.

    This is BuDDy's [bdd_replace] / CUDD's [SwapVariables] — the
    operation the Jedd runtime uses to move an attribute from one
    physical domain to another (§3.2.2 of the paper). *)

type man = Manager.t
type node = Manager.node

type perm
(** A (partial) permutation of variable levels.  Levels not mentioned map
    to themselves. *)

val make_perm : man -> (int * int) list -> perm
(** [make_perm m pairs] builds the mapping sending each [(src, dst)].
    Sources must be distinct and no two sources may share a target;
    [Invalid_argument] otherwise.  A swap is expressed by listing both
    directions.  For a plain move (target not itself remapped), the
    caller must guarantee that the target variables do not occur in the
    BDD being replaced — exactly the discipline the Jedd runtime's
    physical-domain bookkeeping enforces. *)

val identity : man -> perm
val is_identity : perm -> bool

val apply_level : perm -> int -> int

val replace : man -> node -> perm -> node
(** [replace m f p] is the BDD containing, for every string of [f], the
    string with bits permuted by [p].  Correct for arbitrary injective
    maps (it reinserts variables at their new position with [ite]). *)
