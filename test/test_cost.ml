(* jeddcost: the interprocedural cost & shape analysis.

   Part 1 exercises the loop machinery on hand-built graphs AND on real
   [Cfg.build_ast] output (nested loops, multiple back edges,
   unreachable blocks after a return).  Part 2 checks the frequency
   analysis (fixed-point recognition, loop factors, call-graph
   propagation) and the shape estimates.  Part 3 is the acceptance
   differential: the weighted domain assignment and the hybrid backend
   must both leave analysis results bit-identical.  Part 4 snapshots the
   JL201/JL202 lints over the seeded-defect example. *)

module Driver = Jedd_lang.Driver
module Cfg = Jedd_lang.Cfg
module Tast = Jedd_lang.Tast
module G = Jedd_dataflow.Graph
module Loops = Jedd_cost.Loops
module Freq = Jedd_cost.Freq
module Shape = Jedd_cost.Shape
module Lint = Jedd_lint.Driver
module Diag = Jedd_lint.Diag
module Suite = Jedd_analyses.Suite
module Workload = Jedd_minijava.Workload

(* `dune runtest` runs with cwd = _build/default/test (deps copied in);
   `dune exec test/test_main.exe` (make cost-smoke) runs from the
   project root — resolve fixture paths against both. *)
let read_file path =
  let path =
    if Sys.file_exists path then path
    else
      let alt =
        match String.length path >= 3 && String.sub path 0 3 = "../" with
        | true -> String.sub path 3 (String.length path - 3)
        | false -> Filename.concat "test" path
      in
      if Sys.file_exists alt then alt else path
  in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile ~name src =
  match Driver.compile [ (name, src) ] with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)

let method_named (c : Driver.compiled) q =
  Hashtbl.find c.Driver.tprog.Tast.methods q

(* ---------------- part 1: loop detection ---------------- *)

let graph ~nodes ~edges =
  let g = G.create () in
  for _ = 1 to nodes do
    ignore (G.add_node g)
  done;
  List.iter (fun (a, b) -> G.add_edge g a b) edges;
  g

(* 0 -> 1 -> 2 -> 3 -> 2 (inner), 3 -> 4 -> 1 (outer), 1 -> 5 *)
let test_loops_nested () =
  let g =
    graph ~nodes:6
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 2); (3, 4); (4, 1); (1, 5) ]
  in
  let loops = Loops.natural_loops g ~entry:0 in
  Alcotest.(check (list int))
    "two loops, headers 1 and 2" [ 1; 2 ]
    (List.map (fun (l : Loops.loop) -> l.Loops.header) loops);
  let outer = List.nth loops 0 and inner = List.nth loops 1 in
  Alcotest.(check (list int)) "inner body" [ 2; 3 ] inner.Loops.body;
  Alcotest.(check (list int)) "outer body" [ 1; 2; 3; 4 ] outer.Loops.body;
  let depth = Loops.nest_depth g loops in
  Alcotest.(check (list int))
    "nesting depths" [ 0; 1; 2; 2; 1; 0 ]
    (Array.to_list depth)

(* one header, two distinct back edges: 2 -> 1 and 3 -> 1 *)
let test_loops_multiple_back_edges () =
  let g =
    graph ~nodes:5 ~edges:[ (0, 1); (1, 2); (2, 1); (1, 3); (3, 1); (1, 4) ]
  in
  match Loops.natural_loops g ~entry:0 with
  | [ l ] ->
    Alcotest.(check int) "header" 1 l.Loops.header;
    Alcotest.(check int) "two back edges" 2 (List.length l.Loops.back_edges);
    Alcotest.(check (list int)) "merged body" [ 1; 2; 3 ] l.Loops.body;
    Alcotest.(check (list int))
      "depth 1 across the merged body" [ 0; 1; 1; 1; 0 ]
      (Array.to_list (Loops.nest_depth g [ l ]))
  | ls -> Alcotest.failf "expected one merged loop, got %d" (List.length ls)

(* a cycle the entry cannot reach must produce no loop at all *)
let test_loops_unreachable_cycle () =
  let g = graph ~nodes:4 ~edges:[ (0, 1); (2, 3); (3, 2) ] in
  let r = Loops.reachable g ~entry:0 in
  Alcotest.(check (list bool))
    "reachability" [ true; true; false; false ]
    (Array.to_list r);
  Alcotest.(check int)
    "no loops detected" 0
    (List.length (Loops.natural_loops g ~entry:0));
  let dom = Loops.dominators g ~entry:0 in
  Alcotest.(check bool)
    "unreachable rows are all-false" true
    (Array.for_all (fun b -> not b) dom.(2))

let nested_src =
  "domain D 8;\n\
   physdom P;\n\
   attribute a : D;\n\
   class C {\n\
  \  <a:P> r;\n\
  \  public void m() {\n\
  \    <a> x = r;\n\
  \    while (x != 0B) {\n\
  \      while (x != 0B) {\n\
  \        x = x - r;\n\
  \      }\n\
  \      x = x | r;\n\
  \    }\n\
  \    print x;\n\
  \  }\n\
   }\n"

(* the same shapes through the real CFG builder *)
let test_cfg_nested_loops () =
  let c = compile ~name:"nested.jedd" nested_src in
  let cfg = Cfg.build_ast (method_named c "C.m") in
  let loops = Loops.natural_loops cfg.Cfg.agraph ~entry:cfg.Cfg.aentry in
  Alcotest.(check int) "two nested loops" 2 (List.length loops);
  let depth = Loops.nest_depth cfg.Cfg.agraph loops in
  let max_depth = Array.fold_left max 0 depth in
  Alcotest.(check int) "innermost depth 2" 2 max_depth;
  Alcotest.(check int) "entry outside all loops" 0 depth.(cfg.Cfg.aentry);
  Alcotest.(check int) "exit outside all loops" 0 depth.(cfg.Cfg.aexit)

let test_cfg_unreachable_after_return () =
  let c =
    compile ~name:"unreach.jedd"
      "domain D 8;\n\
       physdom P;\n\
       attribute a : D;\n\
       class C {\n\
      \  <a:P> r;\n\
      \  public void m() {\n\
      \    <a> x = r;\n\
      \    print x;\n\
      \    return;\n\
      \    do { x = x | r; } while (x != 0B);\n\
      \    print x;\n\
      \  }\n\
       }\n"
  in
  let cfg = Cfg.build_ast (method_named c "C.m") in
  let r = Loops.reachable cfg.Cfg.agraph ~entry:cfg.Cfg.aentry in
  let unreachable =
    Array.fold_left (fun n b -> if b then n else n + 1) 0 r
  in
  Alcotest.(check bool) "some nodes unreachable" true (unreachable > 0);
  (* the whole do-while sits behind the return: no loop is reported *)
  Alcotest.(check int) "dead loop not detected" 0
    (List.length (Loops.natural_loops cfg.Cfg.agraph ~entry:cfg.Cfg.aentry))

(* ---------------- part 2: frequency + shape ---------------- *)

let freq_src =
  "domain D 8;\n\
   physdom P;\n\
   attribute a : D;\n\
   class C {\n\
  \  <a:P> r;\n\
  \  <a> helper() {\n\
  \    return r | r;\n\
  \  }\n\
  \  public void main() {\n\
  \    <a> x = r;\n\
  \    do {\n\
  \      x = x - helper();\n\
  \    } while (x != 0B);\n\
  \    print x;\n\
  \  }\n\
   }\n"

let exprs_on_line (c : Driver.compiled) line =
  List.filter
    (fun (e : Tast.texpr) -> e.Tast.epos.Jedd_lang.Ast.line = line)
    c.Driver.tprog.Tast.all_exprs

let test_freq_fixpoint_weights () =
  let c = compile ~name:"freq.jedd" freq_src in
  let f = Freq.analyze c.Driver.tprog in
  (* the do-while compares relations: fixpoint factor 32, not 8 *)
  let body = exprs_on_line c 12 in
  Alcotest.(check bool) "body exprs found" true (body <> []);
  List.iter
    (fun (e : Tast.texpr) ->
      Alcotest.(check int) "body weight" 32 (Freq.weight f e.Tast.eid);
      Alcotest.(check int) "body depth" 1 (Freq.depth f e.Tast.eid);
      Alcotest.(check bool) "in fixpoint" true (Freq.in_fixpoint f e.Tast.eid))
    body;
  (* call-graph propagation: helper is only called from inside the loop *)
  Alcotest.(check int) "helper method weight" 32
    (Freq.method_weight f "C.helper");
  List.iter
    (fun (e : Tast.texpr) ->
      Alcotest.(check int) "helper body weight" 32 (Freq.weight f e.Tast.eid))
    (exprs_on_line c 7);
  (* straight-line code outside the loop stays at weight 1 *)
  List.iter
    (fun (e : Tast.texpr) ->
      Alcotest.(check int) "preamble weight" 1 (Freq.weight f e.Tast.eid);
      Alcotest.(check bool) "not in fixpoint" false
        (Freq.in_fixpoint f e.Tast.eid))
    (exprs_on_line c 10)

let test_freq_plain_loop_factor () =
  let c = compile ~name:"nested.jedd" nested_src in
  let f = Freq.analyze ~loop_factor:8 ~fixpoint_factor:32 c.Driver.tprog in
  (* both whiles compare x against 0B, so both count as fixed-point
     loops: the innermost statement weighs 32 * 32 *)
  List.iter
    (fun (e : Tast.texpr) ->
      Alcotest.(check int) "inner weight" 1024 (Freq.weight f e.Tast.eid);
      Alcotest.(check int) "inner depth" 2 (Freq.depth f e.Tast.eid))
    (exprs_on_line c 10)

let test_shape_join_estimate () =
  let c =
    compile ~name:"examples/cost_defects.jedd"
      (read_file "../examples/cost_defects.jedd")
  in
  let sh = Shape.analyze c.Driver.tprog c.Driver.assignment in
  let joins =
    List.filter
      (fun (e : Tast.texpr) ->
        match e.Tast.edesc with Tast.TJoin _ -> true | _ -> false)
      c.Driver.tprog.Tast.all_exprs
  in
  match joins with
  | [ j ] -> (
    match Shape.estimate sh j.Tast.eid with
    | Some est ->
      Alcotest.(check int) "three 16-bit attrs" 48 est.Shape.bits;
      Alcotest.(check bool) "predicted blowup" true
        (est.Shape.nodes >= 1 lsl 20)
    | None -> Alcotest.fail "join has no estimate")
  | js -> Alcotest.failf "expected one join, got %d" (List.length js)

let test_shape_hints_override () =
  let c =
    compile ~name:"examples/cost_defects.jedd"
      (read_file "../examples/cost_defects.jedd")
  in
  let join_label = "examples/cost_defects.jedd:39,32" in
  let hints l = if l = join_label then Some 17 else None in
  let sh = Shape.analyze ~hints c.Driver.tprog c.Driver.assignment in
  let j =
    List.find
      (fun (e : Tast.texpr) ->
        match e.Tast.edesc with Tast.TJoin _ -> true | _ -> false)
      c.Driver.tprog.Tast.all_exprs
  in
  (match Shape.estimate sh j.Tast.eid with
  | Some est -> Alcotest.(check int) "observed size wins" 17 est.Shape.nodes
  | None -> Alcotest.fail "join has no estimate");
  (* and the sharpened estimate silences JL202 *)
  let r = Lint.lint ~hints c in
  Alcotest.(check bool) "JL202 suppressed" false
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "JL202") r.Lint.diagnostics)

(* ---------------- part 3: acceptance differentials ---------------- *)

let results_equal tag (a : Suite.results) (b : Suite.results) =
  let check name f = Alcotest.(check (list (list int))) (tag ^ name) (f a) (f b) in
  check "/subtypes" (fun r -> r.Suite.subtypes);
  check "/pt" (fun r -> r.Suite.pt);
  check "/resolved" (fun r -> r.Suite.resolved);
  check "/call_edges" (fun r -> r.Suite.call_edges);
  check "/reachable" (fun r -> r.Suite.reachable);
  check "/side_effects" (fun r -> r.Suite.side_effects)

let test_weighted_assignment_differential () =
  let p = Workload.generate Workload.tiny in
  results_equal "weighted" (Suite.run_all p) (Suite.run_all ~optimize:true p)

let test_weighted_stats_reported () =
  let p = Workload.generate Workload.tiny in
  let c = Suite.compile_one ~optimize:true p "Points-to Analysis" in
  match c.Driver.weighted_stats with
  | None -> Alcotest.fail "weighted compile reported no weighted_stats"
  | Some w ->
    let open Jedd_lang.Encode in
    Alcotest.(check int) "kept + broken = sites" w.w_sites
      (w.w_kept + w.w_broken);
    Alcotest.(check bool) "solver ran" true (w.w_solves >= 1);
    (* the unweighted path stays the unweighted path *)
    Alcotest.(check bool) "unweighted has no stats" true
      ((Suite.compile_one p "Points-to Analysis").Driver.weighted_stats = None)

let test_hybrid_backend_differential () =
  let p = Workload.generate Workload.tiny in
  results_equal "hybrid"
    (Suite.run_all ~backend:`Incore p)
    (Suite.run_all ~backend:`Hybrid p)

(* Regression: under a cap tight enough that optimistic in-core
   attempts actually exhaust the table (compress at 3000 nodes — the
   pure in-core run aborts here), the fallback resumes the surrounding
   computation — the manager must raise [Out_of_nodes] without
   collecting (gc_on_exhaustion off) or the caller's unreferenced
   intermediates are recycled under it, which showed up as silently
   wrong relations (side-effect 7 vs 187 triples) before the contract
   existed.  The tiny profile never exhausts (checkpoint GC keeps it
   under any >= 1024 cap), so it cannot cover this path. *)
let test_hybrid_capped_differential () =
  let p = Workload.generate (Workload.profile_named "compress") in
  results_equal "hybrid-capped"
    (Suite.run_all p)
    (Suite.run_all ~backend:`Hybrid ~node_limit:3000 p)

(* ---------------- part 4: JL201/JL202 goldens ---------------- *)

let cost_defects () =
  compile ~name:"examples/cost_defects.jedd"
    (read_file "../examples/cost_defects.jedd")

let test_cost_defects_golden_json () =
  let r = Lint.lint (cost_defects ()) in
  let expected = String.trim (read_file "cost_defects.golden.json") in
  Alcotest.(check string) "--lint=json snapshot" expected (Lint.to_json r)

let test_cost_defects_categories () =
  let r = Lint.lint (cost_defects ()) in
  let codes = List.map (fun (d : Diag.t) -> d.Diag.code) r.Lint.diagnostics in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " reported") true (List.mem c codes))
    [ "JL007"; "JL201"; "JL202" ];
  (* JL202 is the only warning; JL201 stays informational so the five
     analyses' own forced fixpoint copies keep make lint green *)
  Alcotest.(check int) "exit code 1 (warning)" 1 (Lint.exit_code r);
  let jl201 =
    List.find (fun (d : Diag.t) -> d.Diag.code = "JL201") r.Lint.diagnostics
  in
  Alcotest.(check bool) "JL201 is info" true (jl201.Diag.severity = Diag.Info);
  Alcotest.(check bool) "JL201 carries the blocking chain" true
    (List.exists
       (fun n ->
         String.length n >= 15 && String.sub n 0 15 = "blocked because")
       jl201.Diag.notes)

let suite =
  [
    Alcotest.test_case "nested natural loops" `Quick test_loops_nested;
    Alcotest.test_case "multiple back edges merge" `Quick
      test_loops_multiple_back_edges;
    Alcotest.test_case "unreachable cycle ignored" `Quick
      test_loops_unreachable_cycle;
    Alcotest.test_case "cfg: nested while loops" `Quick test_cfg_nested_loops;
    Alcotest.test_case "cfg: code after return" `Quick
      test_cfg_unreachable_after_return;
    Alcotest.test_case "freq: fixpoint + call graph" `Quick
      test_freq_fixpoint_weights;
    Alcotest.test_case "freq: nesting multiplies" `Quick
      test_freq_plain_loop_factor;
    Alcotest.test_case "shape: join estimate" `Quick test_shape_join_estimate;
    Alcotest.test_case "shape: profiler hints override" `Quick
      test_shape_hints_override;
    Alcotest.test_case "weighted assignment differential" `Quick
      test_weighted_assignment_differential;
    Alcotest.test_case "weighted stats reported" `Quick
      test_weighted_stats_reported;
    Alcotest.test_case "hybrid backend differential" `Quick
      test_hybrid_backend_differential;
    Alcotest.test_case "hybrid capped differential (fallback resume)" `Quick
      test_hybrid_capped_differential;
    Alcotest.test_case "cost defects golden json" `Quick
      test_cost_defects_golden_json;
    Alcotest.test_case "cost defects categories" `Quick
      test_cost_defects_categories;
  ]
