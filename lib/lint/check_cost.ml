(* JL201/JL202: cost-model lints built on [Jedd_cost].

   JL201 marks forced replace sites (the JL007 verdict) that execute
   inside a recognised fixed-point loop: the weighted assignment
   objective cannot remove them — the unsat core is the blocking
   constraint chain — so they run once per solver iteration and
   dominate the §6.1 replace profile.  Informational, like the rest of
   the replace audit: fixed-point solvers legitimately pay for forced
   copies.

   JL202 warns about joins whose result layout is wide enough that the
   predicted BDD node count ([Jedd_cost.Shape], optionally sharpened by
   profiler hints) signals a blowup; programs that project attributes
   away before joining stay under the threshold. *)

open Jedd_lang
module JDriver = Jedd_lang.Driver
module Freq = Jedd_cost.Freq
module Shape = Jedd_cost.Shape

(* Result layouts narrower than this never warn: every workload the
   repo's own lint gate runs (tiny, shapes.mjava, the examples) stays
   well under 32 bits, while a genuinely large join — three 16-bit
   attributes, say — is over it. *)
let default_threshold_bits = 32

let default_threshold_nodes = 1 lsl 20

let check ?(threshold_bits = default_threshold_bits)
    ?(threshold_nodes = default_threshold_nodes) ?hints
    (compiled : JDriver.compiled)
    (audit : Check_replace.audit_entry list) : Diag.t list =
  let prog = compiled.JDriver.tprog in
  let freq = Freq.analyze prog in
  let shape = Shape.analyze ?hints prog compiled.JDriver.assignment in
  let jl201 =
    List.filter_map
      (fun (e : Check_replace.audit_entry) ->
        let eid = e.Check_replace.site.Lower.rs_eid in
        match e.Check_replace.verdict with
        | Check_replace.V_forced core when Freq.in_fixpoint freq eid ->
          let w = Freq.weight freq eid in
          Some
            (Diag.make
               ~notes:
                 (Printf.sprintf
                    "static weight %d (loop depth %d); the weighted \
                     assignment objective cannot eliminate this copy"
                    w (Freq.depth freq eid)
                 :: List.map (fun c -> "blocked because " ^ c) core)
               ~code:"JL201" ~severity:Diag.Info
               ~pos:e.Check_replace.site.Lower.rs_pos
               (Printf.sprintf
                  "forced replace (BDD copy) inside a fixed-point loop (in \
                   %s)"
                  e.Check_replace.site.Lower.rs_method))
        | _ -> None)
      audit
  in
  let jl202 =
    List.filter_map
      (fun (e : Tast.texpr) ->
        match e.Tast.edesc with
        | Tast.TJoin _ -> (
          match Shape.estimate shape e.Tast.eid with
          | Some est
            when est.Shape.bits >= threshold_bits
                 && est.Shape.nodes >= threshold_nodes ->
            Some
              (Diag.make
                 ~notes:
                   [
                     Printf.sprintf
                       "predicted %d BDD nodes over a %d-bit result layout"
                       est.Shape.nodes est.Shape.bits;
                     "project unused attributes away before the join, or \
                      split it over narrower intermediate relations";
                   ]
                 ~code:"JL202" ~severity:Diag.Warning ~pos:e.Tast.epos
                 (Printf.sprintf
                    "join result layout spans %d bits; predicted node count \
                     signals a blowup"
                    est.Shape.bits))
          | _ -> None)
        | _ -> None)
      prog.Tast.all_exprs
  in
  jl201 @ jl202
