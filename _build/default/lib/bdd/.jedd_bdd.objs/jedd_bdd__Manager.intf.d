lib/bdd/manager.mli:
