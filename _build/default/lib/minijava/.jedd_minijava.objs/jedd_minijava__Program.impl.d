lib/minijava/program.ml: Format Hashtbl List
