lib/relation/schema.ml: Array Attribute Format Hashtbl List Physdom Printf
