(** Position-carrying jeddlint diagnostics.

    Every checker emits values of {!t}; the {!Driver} sorts, renders and
    turns them into an exit code.  Codes are stable: tooling may match
    on them.

    {ul
    {- [JL001] use of a relation variable that may be unassigned}
    {- [JL002] dead relational store}
    {- [JL003] relation variable never read}
    {- [JL004] operation with a statically empty operand always yields
       an empty relation}
    {- [JL005] no-op union/difference with a statically empty operand}
    {- [JL006] emptiness test decided at compile time}
    {- [JL007] unavoidable replace, with the constraints forcing it}
    {- [JL008] replace chosen by the global assignment but avoidable}
    {- [JL009] redundant rename/projection chain}
    {- [JL100] register-discipline violation in lowered IR}} *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pos : Jedd_lang.Ast.pos;
  message : string;
  notes : string list;  (** secondary lines, e.g. the SAT core *)
}

val make :
  ?notes:string list ->
  code:string ->
  severity:severity ->
  pos:Jedd_lang.Ast.pos ->
  string ->
  t

val severity_name : severity -> string

val compare_diag : t -> t -> int
(** Source order (file, line, column), then code, then message. *)

val to_text : t -> string
(** ["file:line,col: warning: message \[JL002\]"] plus one indented
    ["note:"] line per note. *)

val json_string : string -> string
(** JSON-quote and escape a string. *)

val to_json : indent:string -> t -> string
(** A multi-line JSON object; stable field order, suitable for golden
    tests. *)
