lib/analyses/vcall.ml: Common Jedd_lang Jedd_minijava Jedd_relation List
