lib/analyses/suite.ml: Array Callgraph Common Hashtbl Hierarchy Jedd_lang Jedd_minijava List Pointsto Printf Sideeffect String Vcall
