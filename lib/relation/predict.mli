(** Node-count prediction for BDD operations: the cost formulas shared
    by the static shape analysis ([Jedd_cost.Shape]) and the hybrid
    backend's per-operation engine dispatch ({!Backend}).

    All predictions are saturating upper-bound heuristics in the style
    of Adiar's levelized cost predictors (arXiv:2104.12101): an apply is
    bounded by the product of its operand sizes, any relation is bounded
    by [2^bits] over its layout's total bit width, and quantification
    and substitution never grow beyond their input by more than the
    blowup the remaining levels admit.  Exact sizes are unknowable
    statically; the point is a monotone, cheap estimate that is
    comparable against a node-table headroom or a lint threshold. *)

val cap : int
(** Saturation bound for every estimate (2{^52}); [cap] means "too big
    to matter". *)

val pow2 : int -> int
(** [2^n], saturating at {!cap}. *)

val mul : int -> int -> int
(** Saturating product. *)

val add : int -> int -> int
(** Saturating sum. *)

val unknown : bits:int -> int
(** A relation about which nothing is known beyond its layout width:
    [min (pow2 bits) cap]. *)

val apply : left:int -> right:int -> int
(** Binary boolean combination (and/or/diff): the classic [n_l * n_r]
    worst case, saturating. *)

val product : left:int -> right:int -> result_bits:int -> int
(** Join/compose: the apply bound further capped by the result layout's
    capacity [2^result_bits]. *)

val project : nodes:int -> result_bits:int -> int
(** Existential quantification: never above the input, never above the
    remaining levels' capacity. *)

val replace : nodes:int -> int
(** Level substitution.  Monotone substitutions preserve node count;
    order-crossing ones can blow up, but Jedd's attribute moves are
    block moves that mostly preserve shape — we predict identity. *)
