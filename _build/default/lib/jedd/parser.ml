open Ast

exception Parse_error of string * Ast.pos

type state = { toks : (Lexer.token * pos) array; mutable k : int }

let peek st = fst st.toks.(st.k)
let peek_pos st = snd st.toks.(st.k)
let peek_at st n = fst st.toks.(min (st.k + n) (Array.length st.toks - 1))

let advance st = if st.k < Array.length st.toks - 1 then st.k <- st.k + 1

let next st =
  let t = st.toks.(st.k) in
  advance st;
  t

let error st msg =
  raise (Parse_error (msg, peek_pos st))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Lexer.describe tok)
         (Lexer.describe (peek st)))

let expect_ident st =
  match next st with
  | Lexer.IDENT s, _ -> s
  | t, p ->
    raise
      (Parse_error
         (Printf.sprintf "expected identifier but found %s" (Lexer.describe t), p))

let expect_int st =
  match next st with
  | Lexer.INT n, _ -> n
  | t, p ->
    raise
      (Parse_error
         (Printf.sprintf "expected integer but found %s" (Lexer.describe t), p))

(* -- types ---------------------------------------------------------------- *)

let parse_attr_phys st =
  let attr_name = expect_ident st in
  let phys_name =
    if peek st = Lexer.COLON then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  { attr_name; phys_name }

let parse_rel_type st =
  let type_pos = peek_pos st in
  expect st Lexer.LANGLE;
  let rec elems acc =
    let e = parse_attr_phys st in
    if peek st = Lexer.COMMA then begin
      advance st;
      elems (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let elems = elems [] in
  expect st Lexer.RANGLE;
  { elems; type_pos }

(* -- expressions ----------------------------------------------------------- *)

(* Is the parenthesis at the cursor a replacement prefix "(a=>...)"? *)
let starts_replacement st =
  peek st = Lexer.LPAREN
  && (match peek_at st 1 with Lexer.IDENT _ -> true | _ -> false)
  && peek_at st 2 = Lexer.ARROW

let parse_replacement st =
  let a = expect_ident st in
  expect st Lexer.ARROW;
  match peek st with
  | Lexer.IDENT b -> (
    advance st;
    match peek st with
    | Lexer.IDENT c ->
      advance st;
      Copy_to (a, b, c)
    | _ -> Rename_to (a, b))
  | _ -> Project_away a

let rec parse_expr st = parse_or st

and parse_or st =
  let rec loop left =
    if peek st = Lexer.PIPE then begin
      let pos = peek_pos st in
      advance st;
      let right = parse_and st in
      loop { desc = Binop (Union, left, right); pos }
    end
    else left
  in
  loop (parse_and st)

and parse_and st =
  let rec loop left =
    if peek st = Lexer.AMP then begin
      let pos = peek_pos st in
      advance st;
      let right = parse_add st in
      loop { desc = Binop (Inter, left, right); pos }
    end
    else left
  in
  loop (parse_add st)

and parse_add st =
  let rec loop left =
    if peek st = Lexer.MINUS then begin
      let pos = peek_pos st in
      advance st;
      let right = parse_join st in
      loop { desc = Binop (Diff, left, right); pos }
    end
    else left
  in
  loop (parse_join st)

and parse_attr_list st =
  expect st Lexer.LBRACE;
  let rec go acc =
    let a = expect_ident st in
    if peek st = Lexer.COMMA then begin
      advance st;
      go (a :: acc)
    end
    else List.rev (a :: acc)
  in
  let attrs = go [] in
  expect st Lexer.RBRACE;
  attrs

and parse_join st =
  let rec loop left =
    if peek st = Lexer.LBRACE then begin
      let pos = peek_pos st in
      let left_attrs = parse_attr_list st in
      let kind =
        match next st with
        | Lexer.JOIN_SYM, _ -> Join
        | Lexer.COMPOSE_SYM, _ -> Compose
        | t, p ->
          raise
            (Parse_error
               ( Printf.sprintf "expected >< or <> but found %s"
                   (Lexer.describe t),
                 p ))
      in
      let right = parse_unary st in
      let right_attrs = parse_attr_list st in
      loop
        { desc = JoinExpr (kind, left, left_attrs, right, right_attrs); pos }
    end
    else left
  in
  loop (parse_unary st)

and parse_unary st =
  if starts_replacement st then begin
    let pos = peek_pos st in
    expect st Lexer.LPAREN;
    let rec go acc =
      let r = parse_replacement st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (r :: acc)
      end
      else List.rev (r :: acc)
    in
    let replacements = go [] in
    expect st Lexer.RPAREN;
    let operand = parse_unary st in
    { desc = Replace (replacements, operand); pos }
  end
  else parse_primary st

and parse_primary st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.ZERO_B ->
    advance st;
    { desc = Empty; pos }
  | Lexer.ONE_B ->
    advance st;
    { desc = Full; pos }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.KW "new" ->
    advance st;
    expect st Lexer.LBRACE;
    let parse_piece () =
      let obj =
        match next st with
        | Lexer.IDENT s, _ -> Obj_var s
        | Lexer.INT n, _ -> Obj_int n
        | t, p ->
          raise
            (Parse_error
               ( Printf.sprintf
                   "expected object expression but found %s"
                   (Lexer.describe t),
                 p ))
      in
      expect st Lexer.ARROW;
      let ap = parse_attr_phys st in
      (obj, ap)
    in
    let rec pieces acc =
      let p = parse_piece () in
      if peek st = Lexer.COMMA then begin
        advance st;
        pieces (p :: acc)
      end
      else List.rev (p :: acc)
    in
    let ps = pieces [] in
    expect st Lexer.RBRACE;
    { desc = Literal ps; pos }
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args =
        if peek st = Lexer.RPAREN then []
        else begin
          let rec go acc =
            let a =
              match peek st with
              | Lexer.INT n ->
                advance st;
                Arg_obj (Obj_int n)
              | _ -> Arg_rel (parse_expr st)
            in
            if peek st = Lexer.COMMA then begin
              advance st;
              go (a :: acc)
            end
            else List.rev (a :: acc)
          in
          go []
        end
      in
      expect st Lexer.RPAREN;
      { desc = Call (name, args); pos }
    end
    else { desc = Var name; pos }
  | t -> error st (Printf.sprintf "unexpected %s in expression" (Lexer.describe t))

(* -- conditions ------------------------------------------------------------- *)

exception Backtrack

let rec parse_cond st = parse_cond_or st

and parse_cond_or st =
  let rec loop left =
    if peek st = Lexer.OR_OR then begin
      let cpos = peek_pos st in
      advance st;
      let right = parse_cond_and st in
      loop { cdesc = Or (left, right); cpos }
    end
    else left
  in
  loop (parse_cond_and st)

and parse_cond_and st =
  let rec loop left =
    if peek st = Lexer.AND_AND then begin
      let cpos = peek_pos st in
      advance st;
      let right = parse_cond_not st in
      loop { cdesc = And (left, right); cpos }
    end
    else left
  in
  loop (parse_cond_not st)

and parse_cond_not st =
  let cpos = peek_pos st in
  match peek st with
  | Lexer.BANG ->
    advance st;
    let c = parse_cond_not st in
    { cdesc = Not c; cpos }
  | Lexer.KW "true" ->
    advance st;
    { cdesc = Bool_lit true; cpos }
  | Lexer.KW "false" ->
    advance st;
    { cdesc = Bool_lit false; cpos }
  | Lexer.LPAREN -> (
    (* Could be a parenthesised condition or a relational expression
       comparison starting with '('.  Try the condition reading first,
       fall back to the comparison. *)
    let save = st.k in
    try
      advance st;
      let c = parse_cond st in
      if peek st <> Lexer.RPAREN then raise Backtrack;
      advance st;
      c
    with Backtrack | Parse_error _ ->
      st.k <- save;
      parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let cpos = peek_pos st in
  let left = parse_expr st in
  match next st with
  | Lexer.EQEQ, _ ->
    let right = parse_expr st in
    { cdesc = Cmp_eq (left, right); cpos }
  | Lexer.NEQ, _ ->
    let right = parse_expr st in
    { cdesc = Cmp_ne (left, right); cpos }
  | t, p ->
    raise
      (Parse_error
         ( Printf.sprintf "expected == or != but found %s" (Lexer.describe t),
           p ))

(* -- statements --------------------------------------------------------------- *)

let rec parse_stmt st =
  let spos = peek_pos st in
  match peek st with
  | Lexer.LANGLE ->
    (* local relation declaration *)
    let ty = parse_rel_type st in
    let name = expect_ident st in
    let init =
      if peek st = Lexer.EQ then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Lexer.SEMI;
    { sdesc = Decl (ty, name, init); spos }
  | Lexer.LBRACE ->
    advance st;
    let rec stmts acc =
      if peek st = Lexer.RBRACE then begin
        advance st;
        List.rev acc
      end
      else stmts (parse_stmt st :: acc)
    in
    { sdesc = Block (stmts []); spos }
  | Lexer.KW "if" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_cond st in
    expect st Lexer.RPAREN;
    let then_branch = parse_stmt st in
    let else_branch =
      if peek st = Lexer.KW "else" then begin
        advance st;
        Some (parse_stmt st)
      end
      else None
    in
    { sdesc = If (c, then_branch, else_branch); spos }
  | Lexer.KW "while" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_cond st in
    expect st Lexer.RPAREN;
    let body = parse_stmt st in
    { sdesc = While (c, body); spos }
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt st in
    (match next st with
    | Lexer.KW "while", _ -> ()
    | t, p ->
      raise
        (Parse_error
           (Printf.sprintf "expected while but found %s" (Lexer.describe t), p)));
    expect st Lexer.LPAREN;
    let c = parse_cond st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    { sdesc = Do_while (body, c); spos }
  | Lexer.KW "return" ->
    advance st;
    let e = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    { sdesc = Return e; spos }
  | Lexer.KW "print" ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.SEMI;
    { sdesc = Print e; spos }
  | Lexer.IDENT name -> (
    match peek_at st 1 with
    | Lexer.EQ ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      { sdesc = Assign (name, e); spos }
    | Lexer.PIPE_EQ | Lexer.AMP_EQ | Lexer.MINUS_EQ ->
      advance st;
      let op =
        match next st with
        | Lexer.PIPE_EQ, _ -> Union
        | Lexer.AMP_EQ, _ -> Inter
        | Lexer.MINUS_EQ, _ -> Diff
        | _ -> assert false
      in
      let e = parse_expr st in
      expect st Lexer.SEMI;
      { sdesc = Op_assign (op, name, e); spos }
    | _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      { sdesc = Expr_stmt e; spos })
  | t -> error st (Printf.sprintf "unexpected %s in statement" (Lexer.describe t))

(* -- declarations ---------------------------------------------------------------- *)

let skip_visibility st =
  match peek st with
  | Lexer.KW "public" | Lexer.KW "private" -> advance st
  | _ -> ()

let parse_params st =
  expect st Lexer.LPAREN;
  if peek st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let p =
        match peek st with
        | Lexer.LANGLE ->
          let ty = parse_rel_type st in
          let name = expect_ident st in
          Param_rel (ty, name)
        | Lexer.IDENT domain_name ->
          advance st;
          let name = expect_ident st in
          Param_obj (domain_name, name)
        | t ->
          error st
            (Printf.sprintf "unexpected %s in parameter list"
               (Lexer.describe t))
      in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (p :: acc)
      end
      else List.rev (p :: acc)
    in
    let params = go [] in
    expect st Lexer.RPAREN;
    params
  end

let parse_member st =
  let pos = peek_pos st in
  skip_visibility st;
  match peek st with
  | Lexer.KW "void" ->
    advance st;
    let name = expect_ident st in
    let params = parse_params st in
    expect st Lexer.LBRACE;
    let rec stmts acc =
      if peek st = Lexer.RBRACE then begin
        advance st;
        List.rev acc
      end
      else stmts (parse_stmt st :: acc)
    in
    `Method
      {
        meth_name = name;
        meth_params = params;
        meth_return = None;
        meth_body = stmts [];
        meth_pos = pos;
      }
  | Lexer.LANGLE -> (
    let ty = parse_rel_type st in
    let name = expect_ident st in
    match peek st with
    | Lexer.LPAREN ->
      let params = parse_params st in
      expect st Lexer.LBRACE;
      let rec stmts acc =
        if peek st = Lexer.RBRACE then begin
          advance st;
          List.rev acc
        end
        else stmts (parse_stmt st :: acc)
      in
      `Method
        {
          meth_name = name;
          meth_params = params;
          meth_return = Some ty;
          meth_body = stmts [];
          meth_pos = pos;
        }
    | _ ->
      let init =
        if peek st = Lexer.EQ then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Lexer.SEMI;
      `Field
        { field_type = ty; field_name = name; field_init = init; field_pos = pos })
  | t -> error st (Printf.sprintf "unexpected %s in class body" (Lexer.describe t))

let parse_decl st =
  let pos = peek_pos st in
  match peek st with
  | Lexer.KW "domain" ->
    advance st;
    let name = expect_ident st in
    let size = expect_int st in
    expect st Lexer.SEMI;
    Domain_decl (name, size, pos)
  | Lexer.KW "attribute" ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.COLON;
    let domain_name = expect_ident st in
    expect st Lexer.SEMI;
    Attribute_decl (name, domain_name, pos)
  | Lexer.KW "physdom" ->
    advance st;
    let name = expect_ident st in
    let bits =
      match peek st with
      | Lexer.INT n ->
        advance st;
        Some n
      | _ -> None
    in
    expect st Lexer.SEMI;
    Physdom_decl (name, bits, pos)
  | Lexer.KW "class" ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.LBRACE;
    let rec members fields methods =
      if peek st = Lexer.RBRACE then begin
        advance st;
        (List.rev fields, List.rev methods)
      end
      else
        match parse_member st with
        | `Field f -> members (f :: fields) methods
        | `Method m -> members fields (m :: methods)
    in
    let fields, methods = members [] [] in
    Class_decl { cls_name = name; fields; methods; cls_pos = pos }
  | t ->
    error st (Printf.sprintf "unexpected %s at top level" (Lexer.describe t))

let parse_program ~file src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; k = 0 } in
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc else go (parse_decl st :: acc)
  in
  go []

let parse_expr_string src =
  let toks = Array.of_list (Lexer.tokenize ~file:"<expr>" src) in
  let st = { toks; k = 0 } in
  let e = parse_expr st in
  if peek st <> Lexer.EOF then error st "trailing input after expression";
  e
