(* Reference (non-BDD) implementations of the five whole-program
   analyses, computed with ordinary sets and worklists.  These are the
   ground truth the BDD/Jedd analyses are tested against, and the
   "mostly implementing data structures" Java-style baseline the paper
   contrasts Jedd's compactness with (§5). *)

module IS = Set.Make (Int)
module IPS = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module ITS = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

(* transitive (reflexive) subtype relation: pairs (sub, super) *)
let hierarchy (p : Program.t) : IPS.t =
  let direct = Hashtbl.create 64 in
  List.iter (fun (sub, sup) -> Hashtbl.replace direct sub sup) p.extend;
  let acc = ref IPS.empty in
  for c = 0 to p.n_classes - 1 do
    acc := IPS.add (c, c) !acc;
    let rec up x =
      match Hashtbl.find_opt direct x with
      | Some sup ->
        acc := IPS.add (c, sup) !acc;
        up sup
      | None -> ()
    in
    up c
  done;
  !acc

(* flow-insensitive subset-based points-to with field sensitivity:
   returns var->heap pairs and (heap, field, heap) triples *)
let points_to (p : Program.t) : IPS.t * ITS.t =
  let pt = Array.make (max 1 p.n_vars) IS.empty in
  let fieldpt = ref ITS.empty in
  let changed = ref true in
  List.iter
    (fun (v, h) -> pt.(v) <- IS.add h pt.(v))
    p.allocs;
  while !changed do
    changed := false;
    let add_pt v hs =
      let before = pt.(v) in
      let after = IS.union before hs in
      if not (IS.equal before after) then begin
        pt.(v) <- after;
        changed := true
      end
    in
    List.iter (fun (src, dst) -> add_pt dst pt.(src)) p.assigns;
    List.iter
      (fun (src, base, f) ->
        IS.iter
          (fun hb ->
            IS.iter
              (fun h ->
                if not (ITS.mem (hb, f, h) !fieldpt) then begin
                  fieldpt := ITS.add (hb, f, h) !fieldpt;
                  changed := true
                end)
              pt.(src))
          pt.(base))
      p.stores;
    List.iter
      (fun (base, f, dst) ->
        IS.iter
          (fun hb ->
            let hs =
              ITS.fold
                (fun (hb', f', h) acc ->
                  if hb' = hb && f' = f then IS.add h acc else acc)
                !fieldpt IS.empty
            in
            add_pt dst hs)
          pt.(base))
      p.loads
  done;
  let pairs = ref IPS.empty in
  Array.iteri
    (fun v hs -> IS.iter (fun h -> pairs := IPS.add (v, h) !pairs) hs)
    pt;
  (!pairs, !fieldpt)

(* virtual call resolution given points-to: call site -> target methods *)
let call_targets (p : Program.t) (pt : IPS.t) : IPS.t =
  let result = ref IPS.empty in
  List.iter
    (fun (cs : Program.call_site) ->
      IPS.iter
        (fun (v, h) ->
          if v = cs.cs_recv then begin
            let rectype = p.heap_type.(h) in
            match
              Program.resolve_virtual p ~rectype ~signature:cs.cs_sig
            with
            | Some m -> result := IPS.add (cs.cs_id, m) !result
            | None -> ()
          end)
        pt)
    p.calls;
  !result

(* reachable methods from the entry points over the call graph *)
let reachable (p : Program.t) (targets : IPS.t) : IS.t =
  let site_in = Hashtbl.create 64 in
  List.iter
    (fun (cs : Program.call_site) ->
      Hashtbl.add site_in cs.cs_in_method cs.cs_id)
    p.calls;
  let reach = ref (IS.of_list p.entry_methods) in
  let changed = ref true in
  while !changed do
    changed := false;
    IS.iter
      (fun m ->
        List.iter
          (fun cs ->
            IPS.iter
              (fun (cs', target) ->
                if cs' = cs && not (IS.mem target !reach) then begin
                  reach := IS.add target !reach;
                  changed := true
                end)
              targets)
          (Hashtbl.find_all site_in m))
      !reach
  done;
  !reach

(* side effects: (method, heap, field) writes, transitively through the
   call graph *)
let side_effects (p : Program.t) (pt : IPS.t) (targets : IPS.t) : ITS.t =
  let direct = ref ITS.empty in
  List.iter
    (fun (src, base, f) ->
      ignore src;
      let m = p.var_method.(base) in
      IPS.iter
        (fun (v, hb) -> if v = base then direct := ITS.add (m, hb, f) !direct)
        pt)
    p.stores;
  let star = ref !direct in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (cs : Program.call_site) ->
        let caller = cs.cs_in_method in
        IPS.iter
          (fun (cs', callee) ->
            if cs' = cs.cs_id then
              ITS.iter
                (fun (m, h, f) ->
                  if m = callee && not (ITS.mem (caller, h, f) !star) then begin
                    star := ITS.add (caller, h, f) !star;
                    changed := true
                  end)
                !star)
          targets)
      p.calls
  done;
  !star
