lib/sat/dimacs.ml: Buffer List Printf Solver String
