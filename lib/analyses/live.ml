(* Live incremental analysis session: see live.mli for the contract.

   The update planner works on regenerated input-fact lists, not on the
   edit constructors: each analysis owns a group of input facts, and
   comparing the group before/after the edit decides the cheapest sound
   action.  The key soundness cases:

   - All five fixed points are monotone in their inputs, so when a
     group only *grows*, resuming semi-naively from the previous fixed
     point reaches exactly the from-scratch one (Incr.Fixpoint's
     iteration 0 re-fires every rule at full width against the changed
     inputs).

   - Virtual-call resolution is monotone in the *receiver triples*
     (each new triple is resolved independently on the worklist) but
     not in declaresMethod: a method added to a class can override the
     target an existing triple resolved to higher up the hierarchy.
     Growth of declares therefore resets [resolved] and re-resolves all
     triples (within the warm universe).  Growth of extend is safe: the
     edit model only adds extend edges for freshly allocated class ids,
     which no existing walk passes through.

   - Call graph and side effects are monotone in callEdge; when a vcall
     reset re-derives a callEdge set that is not a superset of the old
     one, they reset too (still within the warm universe). *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp
module Driver = Jedd_lang.Driver
module R = Jedd_relation.Relation
module Edit = Jedd_incr.Edit
module Fixpoint = Jedd_incr.Fixpoint

type mode = Incremental | Partial | Rebuild | Recompile

let mode_to_string = function
  | Incremental -> "incremental"
  | Partial -> "partial"
  | Rebuild -> "rebuild"
  | Recompile -> "recompile"

type stage_stats = {
  stage : string;
  action : string;
  iterations : int;
  delta_tuples : int;
  stage_millis : float;
}

type update_stats = {
  edit : string;
  mode : mode;
  millis : float;
  stages : stage_stats list;
}

(* input-fact groups, as sorted unique tuple lists *)
type facts = {
  f_extend : int list list;
  f_declares : int list list;
  f_allocs : int list list;
  f_assigns : int list list;
  f_stores : int list list;
  f_loads : int list list;
  f_varm : int list list;
  f_sites : int list list;
  f_entry : int list list;
}

let sorted l = List.sort_uniq compare l

let facts_of (p : P.t) =
  {
    f_extend = sorted (List.map (fun (a, b) -> [ a; b ]) p.P.extend);
    f_declares = sorted (List.map (fun (a, b, c) -> [ a; b; c ]) p.P.declares);
    f_allocs = sorted (List.map (fun (a, b) -> [ a; b ]) p.P.allocs);
    f_assigns = sorted (List.map (fun (a, b) -> [ a; b ]) p.P.assigns);
    f_stores = sorted (List.map (fun (a, b, c) -> [ a; b; c ]) p.P.stores);
    f_loads = sorted (List.map (fun (a, b, c) -> [ a; b; c ]) p.P.loads);
    f_varm =
      sorted (Array.to_list (Array.mapi (fun v m -> [ v; m ]) p.P.var_method));
    f_sites =
      sorted
        (List.map
           (fun (c : P.call_site) ->
             [ c.P.cs_id; c.P.cs_recv; c.P.cs_sig; c.P.cs_in_method ])
           p.P.calls);
    f_entry = sorted (List.map (fun m -> [ m ]) p.P.entry_methods);
  }

(* both lists sorted unique *)
let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
    let c = compare x y in
    if c = 0 then subset a' b'
    else if c > 0 then subset (x :: a') b'
    else false

let rec list_diff a b =
  (* a \ b, both sorted unique *)
  match (a, b) with
  | [], _ -> []
  | a, [] -> a
  | x :: a', y :: b' ->
    let c = compare x y in
    if c = 0 then list_diff a' b'
    else if c < 0 then x :: list_diff a' b
    else list_diff a b'

type t = {
  mutable p : P.t;
  mutable inst : Interp.t;
  mutable caps : int array;
  mutable f : facts;
  mutable pt : int list list;
  mutable rts : int list list;
  mutable call_edges : int list list;
  node_capacity : int;
  backend : Jedd_relation.Backend.kind option;
}

let caps_of (p : P.t) =
  let cap n = max 2 (Common.pad_for_headroom n) in
  [|
    cap p.P.n_classes;
    cap p.P.n_sigs;
    cap p.P.n_methods;
    cap p.P.n_vars;
    cap p.P.n_heap;
    cap p.P.n_fields;
    cap (Common.n_callsites p);
  |]

let fits caps (p : P.t) =
  p.P.n_classes <= caps.(0)
  && p.P.n_sigs <= caps.(1)
  && p.P.n_methods <= caps.(2)
  && p.P.n_vars <= caps.(3)
  && p.P.n_heap <= caps.(4)
  && p.P.n_fields <= caps.(5)
  && Common.n_callsites p <= caps.(6)

let now_ms () = Unix.gettimeofday () *. 1000.0

let stage_of name action t0 (st : Fixpoint.stats option) =
  {
    stage = name;
    action;
    iterations = (match st with Some s -> s.Fixpoint.iterations | None -> 0);
    delta_tuples =
      (match st with Some s -> Fixpoint.total_delta s | None -> 0);
    stage_millis = now_ms () -. t0;
  }

let skip name =
  {
    stage = name;
    action = "skip";
    iterations = 0;
    delta_tuples = 0;
    stage_millis = 0.0;
  }

(* The five solves in Figure 2 order, resuming from whatever the result
   fields currently hold (0B after a reset = cold). *)
let solve_all inst (p : P.t) ~action =
  let stage name f =
    let t0 = now_ms () in
    let st = f () in
    stage_of name action t0 (Some st)
  in
  let s1 =
    stage "hierarchy" (fun () ->
        Hierarchy.load_facts inst p;
        Hierarchy.solve inst)
  in
  let s2 =
    stage "pointsto" (fun () ->
        Pointsto.load_facts inst p;
        Pointsto.solve inst)
  in
  let pt = Pointsto.results inst in
  let rts = Suite.receiver_types p pt in
  let s3 =
    stage "vcall" (fun () ->
        Vcall.load_facts inst p;
        Vcall.solve_frontier inst rts)
  in
  let ce = Vcall.call_edges inst in
  let s4 =
    stage "callgraph" (fun () ->
        Callgraph.load_facts inst p ~call_edges:ce;
        Callgraph.solve inst)
  in
  let s5 =
    stage "sideeffect" (fun () ->
        Sideeffect.load_facts inst p ~pt ~call_edges:ce;
        Sideeffect.solve inst)
  in
  (pt, rts, ce, [ s1; s2; s3; s4; s5 ])

let instantiate ~node_capacity ?backend (p : P.t) =
  let src = Suite.combined_source ~headroom:true p in
  match Driver.compile [ ("Live.jedd", src) ] with
  | Ok c -> Driver.instantiate ~node_capacity ?backend c
  | Error e -> failwith ("live: " ^ Driver.error_to_string e)

let create ?(node_capacity = 1 lsl 16) ?backend (p : P.t) =
  let inst = instantiate ~node_capacity ?backend p in
  let pt, rts, call_edges, _ = solve_all inst p ~action:"cold" in
  {
    p;
    inst;
    caps = caps_of p;
    f = facts_of p;
    pt;
    rts;
    call_edges;
    node_capacity;
    backend;
  }

let program t = t.p
let inst t = t.inst

let results t : Suite.results =
  {
    Suite.subtypes = Hierarchy.results t.inst;
    pt = Pointsto.results t.inst;
    resolved = Vcall.results t.inst;
    call_edges = Vcall.call_edges t.inst;
    reachable = Callgraph.results t.inst;
    side_effects = Sideeffect.results t.inst;
  }

let reset_field inst field =
  let r = Common.empty_rel inst field in
  Interp.set_field inst field r;
  R.release r

let reset_all inst =
  List.iter (reset_field inst)
    [
      "Hierarchy.subtypes";
      "PointsTo.pt";
      "PointsTo.fieldpt";
      "VirtualCalls.resolved";
      "CallGraph.reachable";
      "CallGraph.reachableSites";
      "SideEffects.modSet";
    ]

let commit t p' f' pt rts ce =
  t.p <- p';
  t.f <- f';
  t.pt <- pt;
  t.rts <- rts;
  t.call_edges <- ce

let update t edit : update_stats =
  let p' = Edit.apply t.p edit in
  let t0 = now_ms () in
  let finish mode stages =
    { edit = Edit.describe edit; mode; millis = now_ms () -. t0; stages }
  in
  if not (fits t.caps p') then begin
    (* an id space outgrew the compiled bit widths: fresh universe *)
    let inst = instantiate ~node_capacity:t.node_capacity ?backend:t.backend p' in
    let pt, rts, ce, stages = solve_all inst p' ~action:"recompile" in
    (* reclaim the abandoned universe eagerly rather than waiting for
       its finaliser: parallel domains stop and an extmem spill
       directory is deleted the moment the swap happens *)
    Jedd_relation.Universe.cleanup (Interp.universe t.inst);
    t.inst <- inst;
    t.caps <- caps_of p';
    commit t p' (facts_of p') pt rts ce;
    finish Recompile stages
  end
  else begin
    let f' = facts_of p' in
    let f = t.f in
    let monotone =
      subset f.f_extend f'.f_extend
      && subset f.f_declares f'.f_declares
      && subset f.f_allocs f'.f_allocs
      && subset f.f_assigns f'.f_assigns
      && subset f.f_stores f'.f_stores
      && subset f.f_loads f'.f_loads
      && subset f.f_varm f'.f_varm
      && subset f.f_sites f'.f_sites
      && subset f.f_entry f'.f_entry
    in
    if not monotone then begin
      (* facts disappeared: reset every accumulator, cold solve in the
         same (cache-warm) universe *)
      reset_all t.inst;
      let pt, rts, ce, stages = solve_all t.inst p' ~action:"reset" in
      commit t p' f' pt rts ce;
      finish Rebuild stages
    end
    else begin
      let had_reset = ref false in
      let stages = ref [] in
      let push s = stages := s :: !stages in
      let ext_changed = f'.f_extend <> f.f_extend in
      let dec_changed = f'.f_declares <> f.f_declares in
      let pt_changed =
        f'.f_allocs <> f.f_allocs
        || f'.f_assigns <> f.f_assigns
        || f'.f_stores <> f.f_stores
        || f'.f_loads <> f.f_loads
      in
      let sites_changed = f'.f_sites <> f.f_sites in
      let entry_changed = f'.f_entry <> f.f_entry in
      let varm_changed = f'.f_varm <> f.f_varm in
      (if ext_changed then begin
         let t1 = now_ms () in
         Hierarchy.load_facts t.inst p';
         push (stage_of "hierarchy" "resume" t1 (Some (Hierarchy.solve t.inst)))
       end
       else push (skip "hierarchy"));
      let pt =
        if pt_changed then begin
          let t1 = now_ms () in
          Pointsto.load_facts t.inst p';
          let st = Pointsto.solve t.inst in
          push (stage_of "pointsto" "resume" t1 (Some st));
          Pointsto.results t.inst
        end
        else begin
          push (skip "pointsto");
          t.pt
        end
      in
      (* 3. virtual calls: new receiver triples ride the worklist; a
         declares change may re-target existing triples, so it resets *)
      let rts = Suite.receiver_types p' pt in
      let new_triples = list_diff rts t.rts in
      let vcall_ran =
        if dec_changed then begin
          had_reset := true;
          let t1 = now_ms () in
          reset_field t.inst "VirtualCalls.resolved";
          Vcall.load_facts t.inst p';
          let st = Vcall.solve_frontier t.inst rts in
          push (stage_of "vcall" "reset" t1 (Some st));
          true
        end
        else if new_triples <> [] || ext_changed then begin
          let t1 = now_ms () in
          if ext_changed then Vcall.load_facts t.inst p';
          let st = Vcall.solve_frontier t.inst new_triples in
          push (stage_of "vcall" "resume" t1 (Some st));
          true
        end
        else begin
          push (skip "vcall");
          false
        end
      in
      let ce = if vcall_ran then Vcall.call_edges t.inst else t.call_edges in
      let ce_grew = subset t.call_edges ce in
      (if ce <> t.call_edges || sites_changed || entry_changed then begin
         let t1 = now_ms () in
         Callgraph.load_facts t.inst p' ~call_edges:ce;
         if ce_grew then
           push (stage_of "callgraph" "resume" t1 (Some (Callgraph.solve t.inst)))
         else begin
           had_reset := true;
           reset_field t.inst "CallGraph.reachable";
           reset_field t.inst "CallGraph.reachableSites";
           push (stage_of "callgraph" "reset" t1 (Some (Callgraph.solve t.inst)))
         end
       end
       else push (skip "callgraph"));
      (if
         ce <> t.call_edges || sites_changed || varm_changed || pt_changed
         || pt != t.pt
       then begin
         let t1 = now_ms () in
         Sideeffect.load_facts t.inst p' ~pt ~call_edges:ce;
         if ce_grew then
           push
             (stage_of "sideeffect" "resume" t1 (Some (Sideeffect.solve t.inst)))
         else begin
           had_reset := true;
           reset_field t.inst "SideEffects.modSet";
           push
             (stage_of "sideeffect" "reset" t1 (Some (Sideeffect.solve t.inst)))
         end
       end
       else push (skip "sideeffect"));
      commit t p' f' pt rts ce;
      finish (if !had_reset then Partial else Incremental) (List.rev !stages)
    end
  end
