lib/bdd/ops.mli: Manager
