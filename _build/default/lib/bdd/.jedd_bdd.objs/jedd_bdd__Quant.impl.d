lib/bdd/quant.ml: Hashtbl List Manager Ops
