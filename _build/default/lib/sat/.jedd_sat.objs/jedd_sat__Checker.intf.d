lib/sat/checker.mli:
