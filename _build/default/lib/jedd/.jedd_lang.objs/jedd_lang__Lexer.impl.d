lib/jedd/lexer.ml: Ast List Printf String
