lib/minijava/workload.mli: Program
