lib/bdd/replace.mli: Manager
