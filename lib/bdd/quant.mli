(** Quantification over sets of variables, and the combined
    and-exists ("relational product") operation that Jedd compositions
    compile to.

    Variable sets are represented as positive cubes (conjunctions of the
    variables), as in BuDDy: build one with {!varset}. *)

type man = Manager.t
type node = Manager.node

val varset : man -> int list -> node
(** [varset m levels] builds the cube of the given variable levels. *)

val varset_levels : man -> node -> int list
(** Inverse of {!varset}: the levels mentioned in a cube, topmost first. *)

val exist : man -> node -> node -> node
(** [exist m f cube] existentially quantifies the variables of [cube]
    out of [f]. *)

val forall : man -> node -> node -> node
(** Universal quantification. *)

val relprod : man -> node -> node -> node -> node
(** [relprod m f g cube] computes [exist m (band m f g) cube] in one
    pass.  This is the primitive behind Jedd's composition ([<>]) and is
    measurably cheaper than join followed by projection — see the
    [ablation-compose] benchmark. *)

val support : man -> node -> node
(** The cube of all variables on which [f] depends. *)

val cube_from : man -> node -> int -> node
(** Advance a cube past variables above a level (identity on cubes whose
    top level is at or below it).  Exposed for {!Par}. *)

(** {2 Cache tags} — see the note in {!Ops}. *)

val tag_exist : int
val tag_relprod : int
