type t = {
  name : string;
  block : Jedd_bdd.Fdd.block;
  uid : int;
}

let counter = ref 0

let fresh name block =
  incr counter;
  { name; block; uid = !counter }

let declare u ~name ~bits =
  fresh name (Jedd_bdd.Fdd.extdomain_bits (Universe.manager u) bits)

let declare_interleaved u requests =
  let sizes = List.map (fun (_, bits) -> 1 lsl bits) requests in
  let blocks =
    Jedd_bdd.Fdd.extdomains_interleaved (Universe.manager u) sizes
  in
  List.map2 (fun (name, _) block -> fresh name block) requests blocks

let name p = p.name
let width p = Jedd_bdd.Fdd.width p.block
let block p = p.block
let levels p = Jedd_bdd.Fdd.levels p.block
let equal a b = a.uid = b.uid
let fits p d = Domain.bits d <= width p
