lib/jedd/liveness.ml: List Set String Tast
