(* Shared declarations for the five whole-program analyses (§5).

   Each analysis is a Jedd class; they share one set of domains,
   attributes and physical domains, so they can be compiled separately
   (rows 1–5 of Table 1) or concatenated into one program ("All 5
   combined").  Domain sizes depend on the analysed program, so the
   preamble is generated per program. *)

module P = Jedd_minijava.Program

(* Declaration order fixes the relative bit order of the physical
   domains; this default keeps the pairs the analyses copy between
   (V1/V2, H1/H2, the type domains) adjacent.  The reorder benchmark
   permutes it to manufacture a deliberately bad initial order. *)
let default_physdom_order =
  [ "T1"; "T2"; "T3"; "S1"; "M1"; "M2"; "V1"; "V2"; "H1"; "H2"; "F1"; "C1" ]

let preamble ?(physdom_order = default_physdom_order) (p : P.t) =
  let d name size = Printf.sprintf "domain %s %d;\n" name (max 2 size) in
  let a name dom = Printf.sprintf "attribute %s : %s;\n" name dom in
  String.concat ""
    ([
      d "Type" p.P.n_classes;
      d "Sig" p.P.n_sigs;
      d "Method" p.P.n_methods;
      d "Var" p.P.n_vars;
      d "Heap" p.P.n_heap;
      d "Field" p.P.n_fields;
      d "CallSite" (List.length p.P.calls);
      (* type-domain attributes *)
      a "type" "Type";
      a "tgttype" "Type";
      a "subtype" "Type";
      a "supertype" "Type";
      (* others *)
      a "signature" "Sig";
      a "method" "Method";
      a "srcmethod" "Method";
      a "var" "Var";
      a "src" "Var";
      a "dst" "Var";
      a "base" "Var";
      a "heap" "Heap";
      a "baseheap" "Heap";
      a "field" "Field";
      a "callsite" "CallSite";
    ]
    @ List.map (fun n -> Printf.sprintf "physdom %s;\n" n) physdom_order)

(* Build a relation for an instantiated program from fact tuples, at the
   layout of the given field, and install it. *)
let set_fact inst field tuples =
  let u = Jedd_lang.Interp.universe inst in
  let schema = Jedd_lang.Interp.schema_of_var inst field in
  let r = Jedd_relation.Relation.of_tuples u schema tuples in
  Jedd_lang.Interp.set_field inst field r;
  Jedd_relation.Relation.release r

let get_tuples inst field =
  Jedd_relation.Relation.tuples (Jedd_lang.Interp.get_field inst field)
