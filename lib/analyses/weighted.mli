(** Quantitative analyses on the terminal-valued ([`Mtbdd]) backend.

    The boolean Jedd classes of this directory run unmodified on an
    mtbdd universe (their fixpoints compute 0/1-weighted relations whose
    support is bit-identical to the in-core backend); these drivers then
    extract counting answers with the weighted relation surface.
    Everything here is differenced against recounting the boolean
    tuples — see {!recount_by_first} and the mtbdd test suite. *)

val recount_by_first : int list list -> (int * int) list
(** Group boolean tuples by their first component and count tuples per
    group, sorted — the hand-computed reference for the counting
    projections below. *)

(** {2 Allocation-count points-to}

    How many allocation sites may each variable point to: the counting
    projection [project_sum pt [heap]] of the §5 points-to analysis. *)

type alloc_counts = {
  ac_inst : Jedd_lang.Interp.t;  (** the mtbdd universe it ran in *)
  ac_pt : Jedd_relation.Relation.t;  (** points-to support, 0/1-weighted *)
  ac_counts : Jedd_relation.Relation.t;
      (** [<var>], weight = number of allocation sites *)
}

val run_alloc_counts :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?reorder:bool ->
  Jedd_minijava.Program.t ->
  alloc_counts
(** Compile and run the points-to class on a fresh [`Mtbdd] universe,
    then sum out the heap attribute.  [reorder] is accepted for driver
    symmetry but is a no-op (the mtbdd backend keeps a fixed order). *)

val alloc_counts_list : alloc_counts -> (int * int) list
(** [(var, count)] pairs, sorted by var. *)

(** {2 Call-frequency weighted call graph}

    Each resolved call edge carries a static execution frequency — the
    caller's saturating call-graph weight ({!Jedd_cost.Freq.graph_weights})
    times a per-site factor — and per-method hotness is the sum over the
    method's reachable incoming edges. *)

type call_freqs = {
  cf_inst : Jedd_lang.Interp.t;
  cf_edges : Jedd_relation.Relation.t;
      (** [<callsite, method>] restricted to reachable sites, weight =
          static call frequency *)
  cf_hot : Jedd_relation.Relation.t;
      (** [<method>], weight = summed reachable in-edge frequency *)
}

val edge_weights :
  ?site_factor:int ->
  Jedd_minijava.Program.t ->
  call_edges:int list list ->
  (int list * int) list
(** The per-edge frequencies alone: [(tuple, weight)] for every
    [callsite; method] edge, weights floored at 1 so the weighted
    relation's support is exactly the boolean [callEdge] set.
    [site_factor] (default 8) is the multiplier each call hop applies,
    mirroring [Freq]'s loop factor. *)

val run_call_freqs :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?site_factor:int ->
  Jedd_minijava.Program.t ->
  call_edges:int list list ->
  call_freqs
(** Compile and run the call-graph class on a fresh [`Mtbdd] universe
    with the given resolved edges (from [Vcall.call_edges] or
    [Suite.results]), lift the frequency-weighted edges, mask them to
    reachable call sites (pointwise product with the 0/1
    [reachableSites]), and sum out the call site. *)

val edge_freqs_list : call_freqs -> ((int * int) * int) list
(** [((callsite, method), frequency)], sorted. *)

val method_hotness_list : call_freqs -> (int * int) list
(** [(method, hotness)], sorted by method. *)
