(** Enumeration of satisfying assignments over a chosen set of bits —
    the primitive behind Jedd's relation iterators (§2.3). *)

type man = Manager.t
type node = Manager.node

val iter_assignments : man -> node -> levels:int array -> (bool array -> unit) -> unit
(** [iter_assignments m f ~levels k] calls [k] once for every assignment
    of the bits [levels] (which must be sorted ascending) satisfying [f].
    The callback receives values aligned with [levels]; the array is
    reused across calls, so copy it if you keep it.  Don't-care bits are
    expanded, so each concrete assignment is produced exactly once.
    [f] must not depend on variables outside [levels]
    ([Invalid_argument] otherwise). *)

val first_assignment : man -> node -> levels:int array -> bool array option
(** The lexicographically first satisfying assignment, if any. *)
