(** SAT encoding of the physical-domain-assignment problem — clause
    types 1–7 of §3.3.2 — solving, decoding, and the unsat-core-based
    error reporting of §3.3.3.

    Clause types, in the paper's numbering:
    + every attribute instance gets some physical domain;
    + no attribute instance gets two;
    + programmer-specified attributes get their specified domain;
    + conflict edges: distinct domains;
    + equality edges: equal domains;
    + every attribute has at least one active flow path;
    + an active flow path assigns its domain to everything on it. *)

exception Unreachable_attribute of string list
(** No flow path reaches these attributes (detected while building
    clause 6); the messages are ready to print. *)

exception Assignment_conflict of string
(** The SAT instance is unsatisfiable; the payload is the paper-style
    error message extracted from the unsatisfiable core. *)

type sat_stats = {
  sat_vars : int;
  sat_clauses : int;
  sat_literals : int;
  solve_seconds : float;
  paths_truncated : bool;
}

type assignment = {
  phys_of : Constraints.site -> string -> Tast.phys_info;
      (** physical domain of an attribute instance *)
  widths : (string * int) list;  (** computed physical-domain widths *)
  stats : sat_stats;
}

val solve :
  ?max_paths_per_class:int -> Tast.tprogram -> Constraints.t -> assignment
(** Runs the whole §3.3.2 pipeline.  Raises {!Unreachable_attribute} or
    {!Assignment_conflict} on the two failure modes of §3.3.3. *)

(** Outcome statistics of {!solve_weighted}. *)
type weighted_stats = {
  w_sites : int;  (** candidate replace sites (assignment-edge groups) *)
  w_kept : int;  (** sites forced equal — no replace emitted *)
  w_broken : int;  (** sites left broken — a replace remains *)
  w_cost : int;  (** total static weight of the broken sites *)
  w_solves : int;  (** CDCL invocations spent *)
}

val solve_weighted :
  ?max_paths_per_class:int ->
  ?budget:int ->
  weight:(int -> int) ->
  Tast.tprogram ->
  Constraints.t ->
  assignment * weighted_stats
(** Like {!solve}, but minimises the summed [weight] (keyed by wrapped
    expression id) of the assignment edges the model breaks, i.e. of
    the replace instructions the lowering will emit.  Greedy
    descending-weight probing — each wrap site's edges are promoted to
    hard equalities when still satisfiable, exactly the
    {!probe_wrap_equal} construction over a growing set — seeds a
    branch-and-bound refinement bounded by [budget] extra solver calls
    (default 64).  The unweighted solver is the degenerate case: with a
    constant [weight] this minimises the replace count, and with the
    result ignored it coincides with any {!solve} model.  Raises the
    same exceptions as {!solve} on infeasible programs, with the same
    unsat-core diagnosis. *)

(** Outcome of re-solving with a replace wrapper's assignment edges
    promoted to hard equalities, for the jeddlint replace audit. *)
type replace_probe =
  | Forced of string list
      (** unavoidable: a minimized unsat core, rendered as one message
          per conflicting constraint, explains why the copy must exist *)
  | Avoidable
      (** a satisfying assignment without this copy exists; the solver's
          global choice, not a hard conflict, introduced it *)

val probe_wrap_equal :
  ?max_paths_per_class:int ->
  Tast.tprogram ->
  Constraints.t ->
  eid:int ->
  replace_probe
(** Rebuild the clause-1–7 instance and additionally assert that every
    attribute of the dummy replace wrapper around expression [eid] keeps
    its input's physical domain — i.e. that the [IReplace] the
    assignment stage emitted there is unnecessary.  [Sat] means the copy
    was avoidable; [Unsat] yields a deletion-minimized core naming the
    constraints that force it (§3.3.3 machinery, aimed at one site). *)

val build_cnf :
  ?max_paths_per_class:int ->
  Tast.tprogram ->
  Constraints.t ->
  Jedd_sat.Solver.t * sat_stats
(** Encoding only (used by the Table 1 benchmark to report instance
    sizes without decoding). *)
