examples/quickstart.ml: Array Jedd_relation Printf
