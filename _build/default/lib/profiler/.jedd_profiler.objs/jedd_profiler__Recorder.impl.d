lib/profiler/recorder.ml: Hashtbl Jedd_relation List
