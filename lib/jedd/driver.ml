type compiled = {
  tprog : Tast.tprogram;
  graph : Constraints.t;
  assignment : Encode.assignment;
  constraint_stats : Constraints.stats;
  weighted_stats : Encode.weighted_stats option;
}

type error = { message : string; pos : Ast.pos option; phase : string }

let error_to_string e =
  match e.pos with
  | Some p -> Format.asprintf "%s error at %a: %s" e.phase Ast.pp_pos p e.message
  | None -> Printf.sprintf "%s error: %s" e.phase e.message

let compile ?max_paths_per_class ?weight sources =
  try
    let decls =
      List.concat_map
        (fun (file, src) -> Parser.parse_program ~file src)
        sources
    in
    let tprog = Typecheck.check decls in
    let graph = Constraints.build tprog in
    (* [weight] receives the typed program and returns an eid-keyed
       weight (callers plug in [Jedd_cost.Freq]; this module stays
       ignorant of the cost library) *)
    let assignment, weighted_stats =
      match weight with
      | None -> (Encode.solve ?max_paths_per_class tprog graph, None)
      | Some mk ->
        let asg, ws =
          Encode.solve_weighted ?max_paths_per_class ~weight:(mk tprog)
            tprog graph
        in
        (asg, Some ws)
    in
    Ok
      {
        tprog;
        graph;
        assignment;
        constraint_stats = Constraints.stats tprog graph;
        weighted_stats;
      }
  with
  | Lexer.Lex_error (msg, pos) -> Error { message = msg; pos = Some pos; phase = "parse" }
  | Parser.Parse_error (msg, pos) ->
    Error { message = msg; pos = Some pos; phase = "parse" }
  | Typecheck.Error (msg, pos) ->
    Error { message = msg; pos = Some pos; phase = "typecheck" }
  | Encode.Unreachable_attribute msgs ->
    Error { message = String.concat "\n" msgs; pos = None; phase = "assignment" }
  | Encode.Assignment_conflict msg ->
    Error { message = msg; pos = None; phase = "assignment" }

let compile_exn ?max_paths_per_class ?weight ~file src =
  match compile ?max_paths_per_class ?weight [ (file, src) ] with
  | Ok c -> c
  | Error e -> failwith (error_to_string e)

let instantiate ?node_capacity ?node_limit ?backend c =
  Interp.instantiate ?node_capacity ?node_limit ?backend c.tprog c.assignment
