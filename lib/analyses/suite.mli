(** Wiring of the five interrelated whole-program analyses, following
    the paper's Figure 2:

    {v
    Hierarchy ──> Virtual Call Resolution <── Points-to
                         │                        │
                         v                        v
                     Call Graph ──────────> Side Effects
    v}

    Each analysis is its own Jedd class (its source lives in the
    corresponding module); they exchange relations through the host,
    as the paper's modules exchange them through Soot. *)

val analyses : (string * string) list
(** The five (display name, Jedd class source) pairs, in Figure 2
    order. *)

val combined_source : ?headroom:bool -> Jedd_minijava.Program.t -> string
(** All five classes in one compilation unit ("All 5 combined" in
    Table 1), with the shared preamble sized to the program.
    [~headroom:true] pads the domain sizes so a live universe can absorb
    program edits without outgrowing its bit widths (results are
    unaffected: the analyses never complement a relation). *)

val source_for : Jedd_minijava.Program.t -> string -> string
(** One analysis with its preamble, by display name. *)

val compile_one :
  ?optimize:bool ->
  Jedd_minijava.Program.t ->
  string ->
  Jedd_lang.Driver.compiled
(** Compile one analysis; fails loudly on any jeddc error.
    [~optimize:true] solves the physical-domain assignment with the
    weighted objective (the jeddc [--optimize-domains] flag): the
    summed static execution-weight of the emitted replace instructions
    is minimised, so copies move out of fixed-point loops where the
    constraints allow.  Analysis results are unchanged either way. *)

type results = {
  subtypes : int list list;  (** (sub, super), strict transitive closure *)
  pt : int list list;  (** (variable, heap) *)
  resolved : int list list;  (** (call site, signature, type, method) *)
  call_edges : int list list;  (** (call site, method) *)
  reachable : int list list;  (** (method) *)
  side_effects : int list list;  (** (method, heap, field) *)
}

val receiver_types : Jedd_minijava.Program.t -> int list list -> int list list
(** Inter-analysis plumbing: (call site, receiver type, signature)
    triples derived from points-to results. *)

val run_all :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?backend:Jedd_relation.Backend.kind ->
  ?reorder:bool ->
  ?optimize:bool ->
  Jedd_minijava.Program.t ->
  results
(** Compile and run the full pipeline.  [~reorder:true] enables the
    variable-order optimizer for the points-to and call-graph solves
    (explicit pre-run pass + safe-point auto trigger).  [backend]
    selects the relation engine for every universe the pipeline creates
    (default: [JEDD_BACKEND] or in-core); [node_limit] caps each
    in-core node table, turning runaway solves into a catchable
    [Jedd_bdd.Manager.Out_of_nodes]. *)

val run_combined :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?backend:Jedd_relation.Backend.kind ->
  ?reorder:bool ->
  ?jobs:int ->
  ?headroom:bool ->
  ?naive:bool ->
  ?optimize:bool ->
  Jedd_minijava.Program.t ->
  Jedd_lang.Interp.t * results
(** The same pipeline compiled as ONE Jedd program in ONE universe
    ("All 5 combined"), returning the live instance alongside the
    results.  This is the form worth persisting: every result relation
    ([Hierarchy.subtypes], [PointsTo.pt], [VirtualCalls.resolved],
    [CallGraph.reachable], [SideEffects.modSet], ...) is a field of the
    shared instance.

    With [jobs > 1] (in-core backend only — ignored on extmem), the
    independent analyses of each pipeline stage run on separate OCaml 5
    domains sharing the universe: Hierarchy with Points-to, then Virtual
    Call Resolution, then Call Graph with Side Effects.  The manager is
    switched into parallel mode for the duration; results are identical
    to the sequential schedule.

    The fixed points run semi-naively (through {!Jedd_incr.Fixpoint});
    [~naive:true] switches to the original full-relation do-while loops
    (sequential only) — the differential suite checks the two agree
    tuple-for-tuple. *)

val snapshot :
  ?meta:(string * string) list -> Jedd_lang.Interp.t -> Jedd_store.Snapshot.t
(** Package an instance (typically from {!run_combined}) as a store
    snapshot: its declaration registries plus every field relation
    under its qualified name. *)
