(* Virtual call resolution: the Figure 4 algorithm lifted to call sites.
   Given the possible receiver types at each call site (from points-to)
   and the declares-method relation, walk up the class hierarchy to find
   each call's target method.

   Unlike the closure analyses this is not a plain monotone fixed point
   — work retires as it resolves — so it runs on Incr.Fixpoint's
   frontier-driven [worklist].  The frontier-at-a-time form also gives
   the incremental path its entry point: after an edit, only the *new*
   (callsite, receiver type, signature) triples are resolved, seeded
   into the same accumulator.  [resolve] keeps the original one-shot
   loop for the differential suite. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module Fixpoint = Jedd_incr.Fixpoint

let source =
  "class VirtualCalls {\n\
  \  <type, signature, method> declaresMethod;\n\
  \  <subtype, supertype:T3> extendV;\n\
  \  <callsite:C1, signature:S1, tgttype:T2, method:M1> resolved = 0B;\n\
  \  public <callsite:C1, signature:S1, tgttype:T2, method:M1> findTargets(\n\
  \      <callsite, tgttype, signature> frontier ) {\n\
  \    return frontier{tgttype, signature} >< declaresMethod{type, signature};\n\
  \  }\n\
  \  public <callsite:C1, tgttype:T2, signature:S1> stepUp(\n\
  \      <callsite, tgttype, signature> frontier,\n\
  \      <callsite:C1, signature:S1, tgttype:T2, method:M1> found ) {\n\
  \    <callsite:C1, tgttype:T2, signature:S1> rest = frontier - (method=>) found;\n\
  \    return (supertype=>tgttype) (rest{tgttype} <> extendV{subtype});\n\
  \  }\n\
  \  public void resolve( <callsite, tgttype, signature> receiverTypes ) {\n\
  \    <callsite:C1, tgttype:T2, signature:S1> toResolve = receiverTypes;\n\
  \    do {\n\
  \      <callsite:C1, signature:S1, tgttype:T2, method:M1> found =\n\
  \        toResolve{tgttype, signature} >< declaresMethod{type, signature};\n\
  \      resolved |= found;\n\
  \      toResolve -= (method=>) found;\n\
  \      toResolve = (supertype=>tgttype) (toResolve{tgttype} <> extendV{subtype});\n\
  \    } while (toResolve != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) =
  Common.set_fact inst "VirtualCalls.declaresMethod"
    (List.map (fun (c, s, m) -> [ c; s; m ]) p.P.declares);
  Common.set_fact inst "VirtualCalls.extendV"
    (List.map (fun (sub, sup) -> [ sub; sup ]) p.P.extend)

let frontier_schema inst =
  Interp.schema_of_var inst "VirtualCalls.resolve.receiverTypes"

(* Resolve the given (callsite, type, signature) triples into the
   [resolved] accumulator, leaving previously resolved triples alone:
   the full receiver set cold, only the newly appeared triples warm. *)
let solve_frontier ?on_iter inst receiver_types =
  let u = Interp.universe inst in
  let frontier = R.of_tuples u (frontier_schema inst) receiver_types in
  let acc0 = Interp.get_field inst "VirtualCalls.resolved" in
  let step ~frontier ~accs =
    Interp.set_field inst "VirtualCalls.resolved" accs.(0);
    let found =
      Common.call_rel inst "VirtualCalls.findTargets" [ Common.arg frontier ]
    in
    let next =
      Common.call_rel inst "VirtualCalls.stepUp"
        [ Common.arg frontier; Common.arg found ]
    in
    ([| found |], next)
  in
  let final, stats =
    Fixpoint.worklist ?on_iter ~accs:[| acc0 |] ~frontier ~step ()
  in
  R.release frontier;
  Interp.set_field inst "VirtualCalls.resolved" final.(0);
  R.release final.(0);
  stats

(* receiver types: (callsite, type, signature) triples *)
let run inst receiver_types = ignore (solve_frontier inst receiver_types)

let run_naive inst receiver_types =
  let u = Interp.universe inst in
  let r = R.of_tuples u (frontier_schema inst) receiver_types in
  ignore (Interp.call inst "VirtualCalls.resolve" [ Interp.VRel r ])

(* (callsite, signature, declaring type, method) *)
let results inst = Common.get_tuples inst "VirtualCalls.resolved"

(* (callsite, method) projection for the call-graph stage *)
let call_edges inst =
  List.sort_uniq compare
    (List.map (function
       | [ cs; _sig; _t; m ] -> [ cs; m ]
       | _ -> assert false)
       (results inst))
