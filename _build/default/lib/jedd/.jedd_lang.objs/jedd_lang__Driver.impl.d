lib/jedd/driver.ml: Ast Constraints Encode Format Interp Lexer List Parser Printf String Tast Typecheck
