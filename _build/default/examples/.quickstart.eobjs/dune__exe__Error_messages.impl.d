examples/error_messages.ml: Jedd_lang Printf
