type problem = { nvars : int; clauses : int list list }

let to_string { nvars; clauses } =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun lit -> Buffer.add_string buf (string_of_int lit ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let of_string text =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> failwith "Dimacs.of_string: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> failwith "Dimacs.of_string: malformed literal"
               | Some 0 ->
                 clauses := List.rev !current :: !clauses;
                 current := []
               | Some lit -> current := lit :: !current))
    lines;
  if !current <> [] then failwith "Dimacs.of_string: clause not terminated";
  { nvars = !nvars; clauses = List.rev !clauses }

let load_into solver { nvars; clauses } =
  while Solver.num_vars solver < nvars do
    ignore (Solver.new_var solver)
  done;
  List.map (Solver.add_clause solver) clauses
