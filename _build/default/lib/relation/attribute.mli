(** Attributes: named occurrences of a domain within a relation schema
    (§2.1).  Two attributes are the same only if they were declared by
    the same call — mirroring Jedd, where each attribute is a distinct
    Java class implementing [jedd.Attribute]. *)

type t

val declare : name:string -> domain:Domain.t -> t
val name : t -> string
val domain : t -> Domain.t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
