(* The multiplexing front end of jeddd-serve: one event-loop thread
   running select() over nonblocking sockets — a Unix-socket listener,
   a TCP listener and an HTTP listener, any subset enabled — feeding
   the worker pool (Pool) and flushing responses back in request order
   per connection.

   Flow of one request: the loop reads bytes into the connection's
   buffer, peels off a complete request (newline-framed JSON on
   Unix/TCP, Content-Length-framed HTTP on the HTTP port), allocates an
   ordered response slot, and submits the job.  A worker evaluates it
   through the shared Qeval (result cache + latency histograms) and
   pushes the outcome onto the completion queue, waking the loop
   through a self-pipe.  The loop renders the response into the slot
   and writes out the longest filled prefix of each connection's slot
   queue — so pipelined clients always see answers in send order.
   Deadlines are enforced by the loop itself: an overdue slot is
   answered with a timeout error and its job is flagged cancelled, so
   a worker that picks it up (or finishes it late) drops the result.

   select() caps the loop at FD_SETSIZE descriptors (~1024); the load
   generator defaults stay under that, and heavier fan-in belongs
   behind multiple processes. *)

(* Live updates: when created with a [live_config], the front end also
   accepts the "update" verb.  Edits are applied to the mutable shadow
   universe (Jedd_analyses.Live) on a dedicated updater thread, the
   re-solved universe is serialized and reloaded as a fresh frozen
   generation, a new worker pool is attached to it, and the generation
   pointer is swapped atomically — in-flight queries finish against the
   old generation, which is retired once its pool reaches quiescence
   ([Pool.stop] drains and joins).  The result cache is shared across
   generations (keys embed the universe hash) and the retired hash's
   entries are evicted at swap.  With a store configured, each new
   generation is published under its CAS ref — as a differential
   snapshot against the previous generation when that is smaller. *)

module Json = Jedd_server.Json
module Protocol = Jedd_server.Protocol
module Qeval = Jedd_server.Qeval
module Rescache = Jedd_server.Rescache
module Snapshot = Jedd_store.Snapshot
module Cas = Jedd_store.Cas
module Delta = Jedd_store.Delta
module Live = Jedd_analyses.Live
module Suite = Jedd_analyses.Suite
module Edit = Jedd_incr.Edit
module U = Jedd_relation.Universe

type config = {
  unix_path : string option;
  tcp : (string * int) option; (* bind address, port *)
  http : (string * int) option;
  workers : int;
  default_timeout_ms : int;
  cache_capacity : int;
  sweep_threshold : int;
}

let default_config =
  {
    unix_path = None;
    tcp = None;
    http = None;
    workers = 1;
    default_timeout_ms = 30_000;
    cache_capacity = 4096;
    sweep_threshold = 1 lsl 20;
  }

type slot = {
  mutable out : string option; (* rendered bytes, ready to flush *)
  deadline : float;
  cancelled : bool Atomic.t;
  render : Json.t -> string;
  close_conn : bool; (* close after flushing this response *)
}

type kind = Line | Http_conn

type conn = {
  fd : Unix.file_descr;
  id : int;
  kind : kind;
  mutable rdata : string; (* unconsumed input *)
  mutable wdata : string; (* rendered output not yet written *)
  slots : slot Queue.t; (* responses in request order *)
  mutable closing : bool; (* no more reads; flush and close *)
}

type stats = {
  mutable connections : int;
  mutable timeouts : int;
  mutable parse_errors : int;
}

(* One serving generation: a (usually frozen) snapshot universe, its
   evaluator, and the worker pool bound to it.  [hash] is the hex MD5
   of the snapshot bytes — the cache-key component. *)
type generation = {
  snap : Snapshot.t;
  hash : string;
  qeval : Qeval.t;
  gpool : Pool.t;
  gen_no : int;
}

type live_config = {
  session : Live.t;
  initial_bytes : string;  (** generation 0's full snapshot bytes *)
  publish : (Cas.t * string) option;  (** store + ref for new generations *)
}

type live_state = {
  session : Live.t;
  publish : (Cas.t * string) option;
  mutable last_bytes : string;  (* previous generation's snapshot bytes *)
  updates : (Json.t * (Protocol.outcome -> unit)) Queue.t;
  um : Mutex.t;
  uc : Condition.t;
  mutable ustop : bool;
  mutable uthread : Thread.t option;
}

type t = {
  config : config;
  mutable gen : generation;  (* swapped whole by the updater thread *)
  cache : Rescache.t option;  (* shared across generations *)
  live : live_state option;
  listeners : (Unix.file_descr * kind) list;
  tcp_fd : Unix.file_descr option;
  http_fd : Unix.file_descr option;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  completions : (int * slot * Json.t * bool) Queue.t; (* conn id, quit? *)
  cm : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable stopping : bool;
  stats : stats;
  started : float;
}

let max_line_buffer = 16 * 1024 * 1024

(* -- listeners ----------------------------------------------------------- *)

let listen_unix path =
  (if Sys.file_exists path then try Unix.unlink path with _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let listen_tcp host port =
  let addr =
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_PASSIVE ]
    with
    | ai :: _ -> ai.Unix.ai_addr
    | [] -> invalid_arg (Printf.sprintf "cannot resolve bind address %s" host)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> 0

(* -- construction -------------------------------------------------------- *)

let server_stats t () =
  let gen = t.gen in
  [
    ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
    ("generation", Json.Int gen.gen_no);
    ("requests", Json.Int (Pool.requests gen.gpool));
    ("errors", Json.Int (Pool.errors gen.gpool));
    ("timeouts", Json.Int t.stats.timeouts);
    ("parse_errors", Json.Int t.stats.parse_errors);
    ("connections", Json.Int t.stats.connections);
    ("queue_depth", Json.Int (Pool.queue_depth gen.gpool));
    ("active_connections", Json.Int (Hashtbl.length t.conns));
  ]
  @ Pool.stats_fields gen.gpool
  @ Qeval.stats_fields gen.qeval

let create ?(config = default_config) ?live ~universe_hash snap =
  if config.unix_path = None && config.tcp = None && config.http = None then
    invalid_arg "Serve.create: no listener configured";
  let stats_hook = ref (fun () -> []) in
  let world =
    { Protocol.snap; extra_stats = (fun () -> !stats_hook ()) }
  in
  let cache =
    if config.cache_capacity > 0 then
      Some (Rescache.create ~capacity:config.cache_capacity)
    else None
  in
  let qeval = Qeval.create ?cache ~cache_capacity:0 ~universe_hash world in
  let pool =
    Pool.create ~workers:config.workers
      ~sweep_threshold:config.sweep_threshold qeval
  in
  let unix_fd = Option.map listen_unix config.unix_path in
  let tcp_fd = Option.map (fun (h, p) -> listen_tcp h p) config.tcp in
  let http_fd = Option.map (fun (h, p) -> listen_tcp h p) config.http in
  let listeners =
    List.concat
      [
        (match unix_fd with Some fd -> [ (fd, Line) ] | None -> []);
        (match tcp_fd with Some fd -> [ (fd, Line) ] | None -> []);
        (match http_fd with Some fd -> [ (fd, Http_conn) ] | None -> []);
      ]
  in
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  let live_state =
    Option.map
      (fun (lc : live_config) ->
        {
          session = lc.session;
          publish = lc.publish;
          last_bytes = lc.initial_bytes;
          updates = Queue.create ();
          um = Mutex.create ();
          uc = Condition.create ();
          ustop = false;
          uthread = None;
        })
      live
  in
  let t =
    {
      config;
      gen = { snap; hash = universe_hash; qeval; gpool = pool; gen_no = 0 };
      cache;
      live = live_state;
      listeners;
      tcp_fd;
      http_fd;
      wake_rd;
      wake_wr;
      completions = Queue.create ();
      cm = Mutex.create ();
      conns = Hashtbl.create 64;
      next_conn = 0;
      stopping = false;
      stats = { connections = 0; timeouts = 0; parse_errors = 0 };
      started = Unix.gettimeofday ();
    }
  in
  stats_hook := (fun () -> server_stats t ());
  t

(* TCP/HTTP ports actually bound (useful with port 0 in tests). *)
let tcp_port t = Option.map bound_port t.tcp_fd
let http_port t = Option.map bound_port t.http_fd

let wake t = try ignore (Unix.write t.wake_wr (Bytes.of_string "x") 0 1) with _ -> ()

(* -- live updates -------------------------------------------------------- *)

let bad fmt = Format.kasprintf (fun s -> raise (Protocol.Bad_request s)) fmt

(* {"verb":"update", "edit":{"op":"add_assign","src":1,"dst":2}} *)
let edit_of_json request : Edit.t =
  let e =
    match Json.member "edit" request with
    | Some (Json.Obj _ as o) -> o
    | Some _ -> bad "\"edit\" must be an object"
    | None -> bad "missing \"edit\""
  in
  let int k =
    match Json.member k e with
    | Some (Json.Int v) -> v
    | Some _ -> bad "edit field %S must be an integer" k
    | None -> bad "edit is missing field %S" k
  in
  let opt_int k =
    match Json.member k e with
    | Some (Json.Int v) -> Some v
    | Some Json.Null | None -> None
    | Some _ -> bad "edit field %S must be an integer" k
  in
  let flag k default =
    match Json.member k e with
    | Some (Json.Bool b) -> b
    | None -> default
    | Some _ -> bad "edit field %S must be a boolean" k
  in
  match Json.member "op" e with
  | Some (Json.String op) -> (
    match op with
    | "add_class" -> Edit.Add_class { superclass = opt_int "superclass" }
    | "add_method" ->
      Edit.Add_method
        {
          cls = int "cls";
          signature = int "signature";
          n_vars = Option.value (opt_int "n_vars") ~default:2;
          entry = flag "entry" false;
        }
    | "add_field" -> Edit.Add_field
    | "add_alloc" -> Edit.Add_alloc { var = int "var"; cls = int "cls" }
    | "add_assign" -> Edit.Add_assign { src = int "src"; dst = int "dst" }
    | "add_store" ->
      Edit.Add_store { src = int "src"; base = int "base"; field = int "field" }
    | "add_load" ->
      Edit.Add_load { base = int "base"; field = int "field"; dst = int "dst" }
    | "add_callsite" ->
      Edit.Add_callsite
        { recv = int "recv"; signature = int "signature"; in_method = int "in_method" }
    | "remove_assign" -> Edit.Remove_assign { src = int "src"; dst = int "dst" }
    | "remove_store" ->
      Edit.Remove_store
        { src = int "src"; base = int "base"; field = int "field" }
    | "remove_load" ->
      Edit.Remove_load
        { base = int "base"; field = int "field"; dst = int "dst" }
    | "remove_callsite" -> Edit.Remove_callsite { callsite = int "callsite" }
    | "remove_method" -> Edit.Remove_method { meth = int "meth" }
    | "remove_class" -> Edit.Remove_class { cls = int "cls" }
    | op -> bad "unknown edit op %S" op)
  | Some _ -> bad "edit \"op\" must be a string"
  | None -> bad "edit is missing \"op\""

(* Publish the new generation's bytes under the configured CAS ref — as
   a delta against the previous generation when that is smaller. *)
let publish_generation ls ~gen_no ~edit bytes =
  match ls.publish with
  | None -> []
  | Some (cas, ref_name) ->
    (* the base must exist in the store for the chain to replay *)
    let base_hex = Cas.put cas ls.last_bytes in
    let d =
      Delta.diff
        ~meta:
          [
            ("jedd.generation", string_of_int gen_no);
            ("jedd.edit", Edit.describe edit);
          ]
        ~base:ls.last_bytes ~next:bytes ()
    in
    let dbytes = Delta.to_bytes d in
    let obj, kind =
      if String.length dbytes < String.length bytes then (dbytes, "delta")
      else (bytes, "snapshot")
    in
    let hex = Cas.put cas obj in
    Cas.tag cas ref_name hex;
    [
      ( "published",
        Json.Obj
          [
            ("ref", Json.String ref_name);
            ("object", Json.String hex);
            ("kind", Json.String kind);
            ("base", Json.String base_hex);
            ("bytes", Json.Int (String.length obj));
            ("changed_relations", Json.Int (List.length d.Delta.changed));
          ] );
    ]

(* Runs on the updater thread.  Applies the edit to the shadow
   universe, re-solves incrementally, loads the result as a fresh
   (frozen iff the current generation is) universe with its own worker
   pool, swaps the generation pointer, then retires the old pool at
   quiescence and evicts its cache entries. *)
let perform_update t ls request : Protocol.outcome =
  let id = Protocol.request_id request in
  try
    let t0 = Unix.gettimeofday () in
    let edit = edit_of_json request in
    let ustats = Live.update ls.session edit in
    let old = t.gen in
    let gen_no = old.gen_no + 1 in
    let snap_live =
      Suite.snapshot
        ~meta:
          [
            ("jedd.generation", string_of_int gen_no);
            ("jedd.edit", Edit.describe edit);
          ]
        (Live.inst ls.session)
    in
    let bytes = Snapshot.to_bytes snap_live in
    let hash = Digest.to_hex (Digest.string bytes) in
    let snap = Snapshot.of_bytes ~freeze:(U.frozen old.snap.Snapshot.u) bytes in
    let world =
      { Protocol.snap; extra_stats = (fun () -> server_stats t ()) }
    in
    let qeval =
      Qeval.create ?cache:t.cache ~cache_capacity:0 ~universe_hash:hash world
    in
    let gpool =
      Pool.create ~workers:t.config.workers
        ~sweep_threshold:t.config.sweep_threshold qeval
    in
    let published = publish_generation ls ~gen_no ~edit bytes in
    ls.last_bytes <- bytes;
    (* the swap: new submissions route to the new pool from here on *)
    t.gen <- { snap; hash; qeval; gpool; gen_no };
    (* retire the old generation: drain its queue, join its workers,
       then drop the last references so the old universe can be
       collected, and flush its answers from the shared cache *)
    Pool.stop old.gpool;
    let evicted =
      match t.cache with
      | Some c -> Rescache.evict_suffix c ("#" ^ old.hash)
      | None -> 0
    in
    let millis = (Unix.gettimeofday () -. t0) *. 1000. in
    Protocol.Reply
      (Protocol.ok id
         ([
            ("updated", Json.Bool true);
            ("edit", Json.String (Edit.describe edit));
            ("mode", Json.String (Live.mode_to_string ustats.Live.mode));
            ("generation", Json.Int gen_no);
            ("universe_hash", Json.String hash);
            ("solve_millis", Json.Float ustats.Live.millis);
            ("total_millis", Json.Float millis);
            ("evicted_cache_entries", Json.Int evicted);
            ( "stages",
              Json.List
                (List.map
                   (fun (s : Live.stage_stats) ->
                     Json.Obj
                       [
                         ("stage", Json.String s.Live.stage);
                         ("action", Json.String s.Live.action);
                         ("iterations", Json.Int s.Live.iterations);
                         ("delta_tuples", Json.Int s.Live.delta_tuples);
                         ("millis", Json.Float s.Live.stage_millis);
                       ])
                   ustats.Live.stages) );
          ]
         @ published))
  with
  | Protocol.Bad_request msg -> Protocol.Reply (Protocol.err id msg)
  | Edit.Invalid_edit msg ->
    Protocol.Reply (Protocol.err id (Printf.sprintf "invalid edit: %s" msg))
  | e ->
    Protocol.Reply
      (Protocol.err id
         (Printf.sprintf "update failed: %s" (Printexc.to_string e)))

let updater_loop t ls =
  let rec next () =
    Mutex.lock ls.um;
    let rec wait () =
      if ls.ustop then None
      else if Queue.is_empty ls.updates then begin
        Condition.wait ls.uc ls.um;
        wait ()
      end
      else Some (Queue.pop ls.updates)
    in
    let job = wait () in
    Mutex.unlock ls.um;
    match job with
    | None -> ()
    | Some (request, deliver) ->
      deliver (perform_update t ls request);
      next ()
  in
  next ()

let start_updater t =
  match t.live with
  | Some ls when ls.uthread = None ->
    ls.uthread <- Some (Thread.create (fun () -> updater_loop t ls) ())
  | _ -> ()

let stop_updater t =
  match t.live with
  | Some ls -> (
    Mutex.lock ls.um;
    ls.ustop <- true;
    Condition.broadcast ls.uc;
    Mutex.unlock ls.um;
    match ls.uthread with
    | Some th ->
      Thread.join th;
      ls.uthread <- None
    | None -> ())
  | None -> ()

(* -- request intake ------------------------------------------------------ *)

let timeout_of t request =
  match Json.member "timeout_ms" request with
  | Some (Json.Int ms) when ms > 0 -> float_of_int ms /. 1000.
  | _ -> float_of_int t.config.default_timeout_ms /. 1000.

let push_slot conn slot = Queue.push slot conn.slots

let immediate conn render v =
  push_slot conn
    {
      out = Some (render v);
      deadline = infinity;
      cancelled = Atomic.make true;
      render;
      close_conn = false;
    }

(* A generation swap stops the old pool after the pointer flips; a
   submit that raced the flip sees [false] and retries against the
   current pool. *)
let rec pool_submit t ~retries ~request ~cancelled ~deliver =
  let pool = t.gen.gpool in
  Pool.submit pool ~request ~cancelled ~deliver
  || (retries > 0 && not t.stopping
     && pool_submit t ~retries:(retries - 1) ~request ~cancelled ~deliver)

(* Submit one protocol request read from [conn]; the response lands in
   an ordered slot. *)
let submit t conn render ~close_conn request =
  let slot =
    {
      out = None;
      deadline = Unix.gettimeofday () +. timeout_of t request;
      cancelled = Atomic.make false;
      render;
      close_conn;
    }
  in
  push_slot conn slot;
  let id = conn.id in
  let deliver outcome =
    let resp, quit =
      match outcome with
      | Protocol.Reply r -> (r, false)
      | Protocol.Quit r -> (r, true)
    in
    Mutex.lock t.cm;
    Queue.push (id, slot, resp, quit) t.completions;
    Mutex.unlock t.cm;
    wake t
  in
  let is_update =
    match Json.member "verb" request with
    | Some (Json.String "update") -> true
    | _ -> false
  in
  if is_update then
    match t.live with
    | None ->
      slot.out <-
        Some
          (render
             (Protocol.err (Protocol.request_id request)
                "server is not running a live session (start jeddd with \
                 --live)"))
    | Some ls ->
      Mutex.lock ls.um;
      Queue.push (request, deliver) ls.updates;
      Condition.signal ls.uc;
      Mutex.unlock ls.um
  else if
    not (pool_submit t ~retries:4 ~request ~cancelled:slot.cancelled ~deliver)
  then
    slot.out <-
      Some
        (render
           (Protocol.err (Protocol.request_id request) "server is shutting down"))

let handle_json_line t conn line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
    t.stats.parse_errors <- t.stats.parse_errors + 1;
    immediate conn
      (fun v -> Json.to_string v ^ "\n")
      (Protocol.err Json.Null (Printf.sprintf "parse error: %s" msg))
  | Json.Obj _ as request ->
    submit t conn (fun v -> Json.to_string v ^ "\n") ~close_conn:false request
  | _ ->
    t.stats.parse_errors <- t.stats.parse_errors + 1;
    immediate conn
      (fun v -> Json.to_string v ^ "\n")
      (Protocol.err Json.Null "request must be a JSON object")

let rec drain_lines t conn =
  match String.index_opt conn.rdata '\n' with
  | None ->
    if String.length conn.rdata > max_line_buffer then conn.closing <- true
  | Some i ->
    let line = String.sub conn.rdata 0 i in
    conn.rdata <-
      String.sub conn.rdata (i + 1) (String.length conn.rdata - i - 1);
    let line = String.trim line in
    if line <> "" then handle_json_line t conn line;
    drain_lines t conn

let http_render keep_alive v = Http.response ~keep_alive (Json.to_string v)

let handle_http_request t conn (req : Http.request) =
  let close_conn = not req.keep_alive in
  let render = http_render req.keep_alive in
  match (req.meth, req.path) with
  | "POST", _ -> (
    match Json.of_string req.body with
    | exception Json.Parse_error msg ->
      t.stats.parse_errors <- t.stats.parse_errors + 1;
      push_slot conn
        {
          out = Some (Http.error_response ~keep_alive:req.keep_alive 400
                        (Printf.sprintf "parse error: %s" msg));
          deadline = infinity;
          cancelled = Atomic.make true;
          render;
          close_conn;
        }
    | Json.Obj _ as request -> submit t conn render ~close_conn request
    | _ ->
      t.stats.parse_errors <- t.stats.parse_errors + 1;
      push_slot conn
        {
          out = Some (Http.error_response ~keep_alive:req.keep_alive 400
                        "request must be a JSON object");
          deadline = infinity;
          cancelled = Atomic.make true;
          render;
          close_conn;
        })
  | "GET", "/ping" ->
    submit t conn render ~close_conn
      (Json.Obj [ ("verb", Json.String "ping") ])
  | "GET", "/stats" ->
    submit t conn render ~close_conn
      (Json.Obj [ ("verb", Json.String "stats") ])
  | "GET", _ ->
    push_slot conn
      {
        out = Some (Http.error_response ~keep_alive:req.keep_alive 404
                      (Printf.sprintf "no such path %s" req.path));
        deadline = infinity;
        cancelled = Atomic.make true;
        render;
        close_conn;
      }
  | _ ->
    push_slot conn
      {
        out = Some (Http.error_response ~keep_alive:req.keep_alive 405
                      (Printf.sprintf "method %s not allowed" req.meth));
        deadline = infinity;
        cancelled = Atomic.make true;
        render;
        close_conn;
      }

let rec drain_http t conn =
  if not conn.closing then
    match Http.parse_request conn.rdata with
    | Http.Incomplete -> ()
    | Http.Invalid msg ->
      t.stats.parse_errors <- t.stats.parse_errors + 1;
      conn.rdata <- "";
      (* reject and hang up: a framing error leaves the stream unusable *)
      push_slot conn
        {
          out =
            Some
              (Http.error_response
                 (if msg = "headers exceed 8192 bytes" then 431
                  else if msg = "body too large" then 413
                  else 400)
                 msg);
          deadline = infinity;
          cancelled = Atomic.make true;
          render = http_render false;
          close_conn = true;
        };
      conn.closing <- true
    | Http.Complete (req, consumed) ->
      conn.rdata <-
        String.sub conn.rdata consumed (String.length conn.rdata - consumed);
      handle_http_request t conn req;
      drain_http t conn

(* -- connection lifecycle ------------------------------------------------ *)

let close_conn t conn =
  (* cancel outstanding jobs so late results are dropped *)
  Queue.iter (fun s -> Atomic.set s.cancelled true) conn.slots;
  Hashtbl.remove t.conns conn.id;
  try Unix.close conn.fd with _ -> ()

let accept_new t (lfd, kind) =
  let rec go () =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception _ -> ()
    | fd, _ ->
      Unix.set_nonblock fd;
      (match kind with
      | Line | Http_conn -> (
        try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ()));
      t.next_conn <- t.next_conn + 1;
      t.stats.connections <- t.stats.connections + 1;
      let conn =
        {
          fd;
          id = t.next_conn;
          kind;
          rdata = "";
          wdata = "";
          slots = Queue.create ();
          closing = false;
        }
      in
      Hashtbl.replace t.conns conn.id conn;
      go ()
  in
  go ()

let read_conn t conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception _ -> conn.closing <- true
    | 0 -> conn.closing <- true
    | n ->
      conn.rdata <- conn.rdata ^ Bytes.sub_string buf 0 n;
      if n = Bytes.length buf then go ()
  in
  go ();
  (match conn.kind with
  | Line -> drain_lines t conn
  | Http_conn -> drain_http t conn)

(* Move the longest filled prefix of the slot queue into the write
   buffer; returns [true] if this connection should close once the
   buffer drains. *)
let promote_slots conn =
  let close = ref false in
  let rec go () =
    if (not !close) && not (Queue.is_empty conn.slots) then
      match (Queue.peek conn.slots).out with
      | None -> ()
      | Some bytes ->
        let s = Queue.pop conn.slots in
        conn.wdata <- conn.wdata ^ bytes;
        if s.close_conn then close := true else go ()
  in
  go ();
  !close

let flush_conn conn =
  if conn.wdata <> "" then begin
    let b = Bytes.of_string conn.wdata in
    match Unix.write conn.fd b 0 (Bytes.length b) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception _ -> conn.closing <- true
    | n -> conn.wdata <- String.sub conn.wdata n (String.length conn.wdata - n)
  end

let expire_slots t conn now =
  Queue.iter
    (fun s ->
      if s.out = None && now > s.deadline then begin
        Atomic.set s.cancelled true;
        t.stats.timeouts <- t.stats.timeouts + 1;
        s.out <- Some (s.render (Protocol.err Json.Null "timeout"))
      end)
    conn.slots

(* -- the loop ------------------------------------------------------------ *)

let drain_completions t =
  Mutex.lock t.cm;
  let pending = Queue.copy t.completions in
  Queue.clear t.completions;
  Mutex.unlock t.cm;
  Queue.iter
    (fun (conn_id, slot, resp, quit) ->
      (match Hashtbl.find_opt t.conns conn_id with
      | Some _ when not (Atomic.get slot.cancelled) ->
        slot.out <- Some (slot.render resp)
      | _ -> ());
      if quit then t.stopping <- true)
    pending

let stop t =
  t.stopping <- true;
  wake t

let run t =
  start_updater t;
  let drainbuf = Bytes.create 256 in
  let rec loop () =
    let conn_fds = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let read_fds =
      t.wake_rd
      :: (if t.stopping then [] else List.map fst t.listeners)
      @ List.filter_map
          (fun c -> if c.closing then None else Some c.fd)
          conn_fds
    in
    let write_fds =
      List.filter_map (fun c -> if c.wdata <> "" then Some c.fd else None)
        conn_fds
    in
    let now = Unix.gettimeofday () in
    let next_deadline =
      List.fold_left
        (fun acc c ->
          Queue.fold
            (fun acc s -> if s.out = None then Float.min acc s.deadline else acc)
            acc c.slots)
        (now +. 0.5) conn_fds
    in
    let timeout = Float.max 0.005 (Float.min 0.5 (next_deadline -. now)) in
    let readable, writable, _ =
      try Unix.select read_fds write_fds [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* self-pipe: completions are ready *)
    if List.mem t.wake_rd readable then begin
      (try
         while Unix.read t.wake_rd drainbuf 0 (Bytes.length drainbuf) > 0 do
           ()
         done
       with _ -> ());
      ()
    end;
    drain_completions t;
    (* new connections *)
    if not t.stopping then
      List.iter
        (fun (lfd, kind) ->
          if List.mem lfd readable then accept_new t (lfd, kind))
        t.listeners;
    (* input *)
    Hashtbl.iter
      (fun _ c -> if List.mem c.fd readable then read_conn t c)
      t.conns;
    (* deadlines *)
    let now = Unix.gettimeofday () in
    Hashtbl.iter (fun _ c -> expire_slots t c now) t.conns;
    (* output: promote ordered responses, then write what the kernel
       will take *)
    let to_close = ref [] in
    Hashtbl.iter
      (fun _ c ->
        let close_after = promote_slots c in
        if close_after then c.closing <- true;
        if c.wdata <> "" && (List.mem c.fd writable || not (List.mem c.fd write_fds))
        then flush_conn c;
        if c.closing && c.wdata = "" then to_close := c :: !to_close)
      t.conns;
    List.iter (fun c -> close_conn t c) !to_close;
    if t.stopping then begin
      (* stop accepting, flush what remains, then leave *)
      let unflushed =
        Hashtbl.fold
          (fun _ c acc -> acc || c.wdata <> "" || not (Queue.is_empty c.slots))
          t.conns false
      in
      if unflushed then loop ()
    end
    else loop ()
  in
  (try loop ()
   with e ->
     t.stopping <- true;
     stop_updater t;
     Pool.stop t.gen.gpool;
     raise e);
  List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) t.listeners;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  stop_updater t;
  Pool.stop t.gen.gpool;
  (try Unix.close t.wake_rd with _ -> ());
  (try Unix.close t.wake_wr with _ -> ());
  match t.config.unix_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ()
