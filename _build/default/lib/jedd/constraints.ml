open Tast

type site =
  | S_expr of int
  | S_wrap of int
  | S_var of var_key
  | S_return of string

type node = { site : site; attr : attr_info }

type t = {
  nodes : node array;
  node_index : (site * string, int) Hashtbl.t;
  equality : (int * int) list;
  assignment : (int * int) list;
  conflict : (int * int) list;
  specified : (int * phys_info) list;
  site_kind : site -> string;
  site_pos : site -> Ast.pos;
}

type builder = {
  mutable b_nodes : node list;  (* reversed *)
  mutable b_count : int;
  b_index : (site * string, int) Hashtbl.t;
  mutable b_equality : (int * int) list;
  mutable b_assignment : (int * int) list;
  mutable b_conflict : (int * int) list;
  mutable b_specified : (int * phys_info) list;
  expr_info : (int, texpr) Hashtbl.t;
  prog : tprogram;
}

let add_site b site (schema : attr_info list) =
  let ids =
    List.map
      (fun attr ->
        let id = b.b_count in
        b.b_count <- id + 1;
        b.b_nodes <- { site; attr } :: b.b_nodes;
        Hashtbl.add b.b_index (site, attr.a_name) id;
        id)
      schema
  in
  (* conflict edges: all pairs within the site *)
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
      List.iter (fun y -> b.b_conflict <- (x, y) :: b.b_conflict) rest;
      pairs rest
  in
  pairs ids;
  ids

let node_of b site attr_name =
  match Hashtbl.find_opt b.b_index (site, attr_name) with
  | Some id -> id
  | None ->
    invalid_arg
      (Printf.sprintf "Constraints: no node for attribute %s" attr_name)

let equality b site1 a1 site2 a2 =
  b.b_equality <- (node_of b site1 a1, node_of b site2 a2) :: b.b_equality

let assignment_edge b site1 a1 site2 a2 =
  b.b_assignment <- (node_of b site1 a1, node_of b site2 a2) :: b.b_assignment

let specify b site attr_name phys =
  b.b_specified <- (node_of b site attr_name, phys) :: b.b_specified

(* Wrap a consumed subexpression in its dummy replace: a new site with
   the same attribute set, linked by assignment edges.  Polymorphic
   constants produce no wrapper. *)
let wrap b (child : texpr) : site option =
  if child.is_poly then None
  else begin
    let w = S_wrap child.eid in
    ignore (add_site b w child.eschema);
    List.iter
      (fun a -> assignment_edge b (S_expr child.eid) a.a_name w a.a_name)
      child.eschema;
    Some w
  end

(* equality between a wrapper (if any) and a target site, attribute by
   attribute, with an optional name translation *)
let connect b wrapper target (pairs : (string * string) list) =
  match wrapper with
  | None -> ()
  | Some w -> List.iter (fun (wa, ta) -> equality b w wa target ta) pairs

let id_pairs schema = List.map (fun a -> (a.a_name, a.a_name)) schema

(* -- expression traversal -------------------------------------------------- *)

let rec visit_expr b (e : texpr) =
  Hashtbl.replace b.expr_info e.eid e;
  if not e.is_poly then ignore (add_site b (S_expr e.eid) e.eschema);
  List.iter (fun (a_name, p) -> specify b (S_expr e.eid) a_name p) e.espec;
  match e.edesc with
  | TEmpty | TFull -> ()
  | TVar (_, key) ->
    (* a use shares the variable's layout *)
    List.iter
      (fun a -> equality b (S_expr e.eid) a.a_name (S_var key) a.a_name)
      e.eschema
  | TLiteral _ -> ()
  | TBinop (_, l, r) ->
    visit_expr b l;
    visit_expr b r;
    let wl = wrap b l and wr = wrap b r in
    connect b wl (S_expr e.eid) (id_pairs e.eschema);
    connect b wr (S_expr e.eid) (id_pairs e.eschema)
  | TReplace (reps, c) ->
    visit_expr b c;
    let wc = wrap b c in
    (* Track, through the replacement sequence, which surviving result
       attribute carries which original attribute of [c].  Fresh copy
       targets carry nothing (they get their physical domain from the
       downstream constraints, with only conflict edges here). *)
    let mapping = List.map (fun a -> (Some a.a_name, a.a_name)) c.eschema in
    let apply mapping = function
      | TProj a -> List.filter (fun (_, cur) -> cur <> a.a_name) mapping
      | TRen (a, bt) ->
        List.map
          (fun (src, cur) -> if cur = a.a_name then (src, bt.a_name) else (src, cur))
          mapping
      | TCopy (a, bt, ct) ->
        List.concat_map
          (fun (src, cur) ->
            if cur = a.a_name then [ (src, bt.a_name); (None, ct.a_name) ]
            else [ (src, cur) ])
          mapping
    in
    let final = List.fold_left apply mapping reps in
    connect b wc (S_expr e.eid)
      (List.filter_map
         (fun (src, cur) -> Option.map (fun s -> (s, cur)) src)
         final)
  | TJoin (kind, l, la, r, ra) ->
    visit_expr b l;
    visit_expr b r;
    let wl = wrap b l and wr = wrap b r in
    (* compared attributes share a physical domain across the operands *)
    (match (wl, wr) with
    | Some wl, Some wr ->
      List.iter2 (fun a bt -> equality b wl a.a_name wr bt.a_name) la ra
    | _ -> ());
    let mem_l a = List.exists (fun x -> x.a_name = a.a_name) la in
    let mem_r a = List.exists (fun x -> x.a_name = a.a_name) ra in
    (match kind with
    | Ast.Join ->
      connect b wl (S_expr e.eid) (id_pairs l.eschema);
      connect b wr (S_expr e.eid)
        (List.filter_map
           (fun a -> if mem_r a then None else Some (a.a_name, a.a_name))
           r.eschema)
    | Ast.Compose ->
      connect b wl (S_expr e.eid)
        (List.filter_map
           (fun a -> if mem_l a then None else Some (a.a_name, a.a_name))
           l.eschema);
      connect b wr (S_expr e.eid)
        (List.filter_map
           (fun a -> if mem_r a then None else Some (a.a_name, a.a_name))
           r.eschema))
  | TCall (q, args) ->
    let m = Hashtbl.find b.prog.methods q in
    List.iter2
      (fun (arg : targ) (p : tparam) ->
        match (arg, p) with
        | Targ_rel t, Tparam_rel key ->
          visit_expr b t;
          let w = wrap b t in
          connect b w (S_var key) (id_pairs t.eschema)
        | Targ_obj _, _ -> ()
        | Targ_rel _, Tparam_obj _ -> assert false)
      args m.tm_params;
    match m.tm_return with
    | Some schema ->
      List.iter
        (fun a -> equality b (S_expr e.eid) a.a_name (S_return q) a.a_name)
        schema
    | None -> ()

let visit_consumed_by_var b (t : texpr) key =
  visit_expr b t;
  let w = wrap b t in
  connect b w (S_var key) (id_pairs t.eschema)

let rec visit_stmt b meth_q (s : tstmt) =
  match s with
  | TDecl (key, init, _) -> (
    match init with
    | Some t -> visit_consumed_by_var b t key
    | None -> ())
  | TAssign (key, _, t, _) | TOp_assign (_, key, _, t, _) ->
    visit_consumed_by_var b t key
  | TIf (c, th, el) ->
    visit_cond b c;
    visit_stmt b meth_q th;
    Option.iter (visit_stmt b meth_q) el
  | TWhile (c, body) ->
    visit_cond b c;
    visit_stmt b meth_q body
  | TDo_while (body, c) ->
    visit_stmt b meth_q body;
    visit_cond b c
  | TBlock stmts -> List.iter (visit_stmt b meth_q) stmts
  | TReturn (Some t, _) ->
    visit_expr b t;
    let w = wrap b t in
    if not t.is_poly then
      connect b w (S_return meth_q) (id_pairs t.eschema)
  | TReturn (None, _) -> ()
  | TExpr t -> visit_expr b t
  | TPrint t -> visit_expr b t

and visit_cond b (c : tcond) =
  match c with
  | TBool _ -> ()
  | TNot c -> visit_cond b c
  | TAnd (a, b') | TOr (a, b') ->
    visit_cond b a;
    visit_cond b b'
  | TCmp_eq (l, r) | TCmp_ne (l, r) ->
    visit_expr b l;
    visit_expr b r;
    let wl = wrap b l and wr = wrap b r in
    (* both operands must agree on layout to be compared *)
    (match (wl, wr) with
    | Some wl, Some wr ->
      List.iter (fun a -> equality b wl a.a_name wr a.a_name) l.eschema
    | _ -> ())

let build (prog : tprogram) : t =
  let b =
    {
      b_nodes = [];
      b_count = 0;
      b_index = Hashtbl.create 256;
      b_equality = [];
      b_assignment = [];
      b_conflict = [];
      b_specified = [];
      expr_info = Hashtbl.create 256;
      prog;
    }
  in
  (* variable sites first, with their declared specs *)
  Hashtbl.iter
    (fun key (v : var_info) ->
      ignore (add_site b (S_var key) v.v_schema);
      List.iter (fun (a_name, p) -> specify b (S_var key) a_name p) v.v_spec)
    prog.vars;
  (* return sites *)
  Hashtbl.iter
    (fun q (m : tmeth) ->
      match m.tm_return with
      | Some schema ->
        ignore (add_site b (S_return q) schema);
        List.iter
          (fun (a_name, p) -> specify b (S_return q) a_name p)
          m.tm_return_spec
      | None -> ())
    prog.methods;
  (* method bodies *)
  List.iter
    (fun q ->
      let m = Hashtbl.find prog.methods q in
      List.iter (visit_stmt b q) m.tm_body)
    prog.method_order;
  let nodes = Array.of_list (List.rev b.b_nodes) in
  let site_kind = function
    | S_expr eid -> (Hashtbl.find b.expr_info eid).ekind
    | S_wrap eid -> "Replace_of_" ^ (Hashtbl.find b.expr_info eid).ekind
    | S_var key -> "Variable_" ^ key
    | S_return q -> "Return_of_" ^ q
  in
  let site_pos = function
    | S_expr eid | S_wrap eid -> (Hashtbl.find b.expr_info eid).epos
    | S_var key -> (Hashtbl.find prog.vars key).v_pos
    | S_return q -> (Hashtbl.find prog.methods q).tm_pos
  in
  {
    nodes;
    node_index = b.b_index;
    equality = b.b_equality;
    assignment = b.b_assignment;
    conflict = b.b_conflict;
    specified = b.b_specified;
    site_kind;
    site_pos;
  }

let node_count g = Array.length g.nodes

let describe_node g i =
  let n = g.nodes.(i) in
  Format.asprintf "%s:%s at %a" (g.site_kind n.site) n.attr.a_name Ast.pp_pos
    (g.site_pos n.site)

type stats = {
  n_rel_exprs : int;
  n_attrs : int;
  n_physdoms : int;
  n_conflict : int;
  n_equality : int;
  n_assignment : int;
}

let stats (prog : tprogram) g =
  let rel_exprs = List.filter (fun e -> not e.is_poly) prog.all_exprs in
  {
    n_rel_exprs = List.length rel_exprs;
    n_attrs =
      List.fold_left (fun acc e -> acc + List.length e.eschema) 0 rel_exprs;
    n_physdoms = List.length prog.physdoms;
    n_conflict = List.length g.conflict;
    n_equality = List.length g.equality;
    n_assignment = List.length g.assignment;
  }
