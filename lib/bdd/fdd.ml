type man = Manager.t
type node = Manager.node

(* Bits are stable variable ids, MSB first.  Levels are looked up through
   the manager's current order at every use, so a dynamic reorder can
   never invalidate a block. *)
type block = { bits : int array }

let bits_for size =
  if size <= 0 then invalid_arg "Fdd.extdomain: size must be positive";
  let rec go n acc = if n >= size then acc else go (n * 2) (acc + 1) in
  max 1 (go 1 0)

let extdomain_bits m nbits =
  if nbits <= 0 then invalid_arg "Fdd.extdomain_bits: width must be positive";
  { bits = Array.init nbits (fun _ -> Manager.new_var m) }

let extdomain m size = extdomain_bits m (bits_for size)

let extdomains_interleaved ?(pad = false) m sizes =
  match sizes with
  | [] -> []
  | _ ->
    let widths = List.map bits_for sizes in
    let widths =
      if pad then
        let w = List.fold_left max 1 widths in
        List.map (fun _ -> w) widths
      else widths
    in
    let w = List.fold_left max 1 widths in
    let blocks = List.map (fun wd -> Array.make wd 0) widths in
    (* Round-robin over the significance ranks, MSB first; narrower
       blocks simply stop contributing bits once exhausted. *)
    for bit = 0 to w - 1 do
      List.iter2
        (fun bits wd -> if bit < wd then bits.(bit) <- Manager.new_var m)
        blocks widths
    done;
    List.map (fun bits -> { bits }) blocks

let width b = Array.length b.bits
let size b = 1 lsl width b
let vars b = Array.copy b.bits
let levels m b = Array.map (Manager.level_of_var m) b.bits

let ithvar m b v =
  if v < 0 || v >= size b then invalid_arg "Fdd.ithvar: value out of range";
  let w = width b in
  let assignment =
    List.init w (fun i ->
        (* bit i of the array is the (w-1-i)-th binary digit *)
        ( Manager.level_of_var m b.bits.(i),
          (v lsr (w - 1 - i)) land 1 = 1 ))
  in
  Ops.cube m assignment

let domain_cube m b =
  Quant.varset m
    (Array.to_list (Array.map (Manager.level_of_var m) b.bits))

let less_than_const m b k =
  if k <= 0 then Manager.zero
  else if k >= size b then Manager.one
  else begin
    (* Walk bits from least significant upwards, building "value < k"
       bottom-up: at each bit, if k's bit is 1 then choosing 0 wins
       outright on the suffix, else choosing 1 loses outright. *)
    let w = width b in
    (* Base case: the empty suffix is not strictly below the empty
       suffix of k. *)
    let acc = ref Manager.zero in
    (* Process deepest level first, whatever the current order is: mk
       needs children at strictly deeper levels. *)
    let order =
      Array.to_list
        (Array.mapi
           (fun i v -> (Manager.level_of_var m v, w - 1 - i))
           b.bits)
      |> List.sort (fun (l1, _) (l2, _) -> compare l2 l1)
    in
    List.iter
      (fun (lvl, bit_index) ->
        let kbit = (k lsr bit_index) land 1 in
        acc :=
          if kbit = 1 then Manager.mk m lvl Manager.one !acc
          else Manager.mk m lvl !acc Manager.zero)
      order;
    !acc
  end

let equality m b1 b2 =
  if width b1 <> width b2 then
    invalid_arg "Fdd.equality: blocks differ in width";
  let acc = ref Manager.one in
  for i = width b1 - 1 downto 0 do
    let v1 = Manager.level_of_var m b1.bits.(i) in
    let v2 = Manager.level_of_var m b2.bits.(i) in
    let bit_eq = Ops.bbiimp m (Manager.var m v1) (Manager.var m v2) in
    acc := Ops.band m !acc bit_eq
  done;
  !acc

let perm_pairs m b1 b2 =
  if width b1 <> width b2 then
    invalid_arg "Fdd.perm_pairs: blocks differ in width";
  Array.to_list
    (Array.mapi
       (fun i src ->
         ( Manager.level_of_var m src,
           Manager.level_of_var m b2.bits.(i) ))
       b1.bits)

let decode m b ~levels:lv values =
  let pos = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace pos l i) lv;
  let w = width b in
  let v = ref 0 in
  for i = 0 to w - 1 do
    let idx =
      match Hashtbl.find_opt pos (Manager.level_of_var m b.bits.(i)) with
      | Some idx -> idx
      | None -> invalid_arg "Fdd.decode: block level missing from ~levels"
    in
    if values.(idx) then v := !v lor (1 lsl (w - 1 - i))
  done;
  !v
