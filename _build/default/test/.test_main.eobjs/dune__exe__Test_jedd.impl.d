test/test_jedd.ml: Alcotest Hashtbl Jedd_lang Jedd_relation List Str String
