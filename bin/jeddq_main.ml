(* jeddq: command-line client for a running jeddd.

     jeddq -s SOCK ping | version | stats | relations | shutdown
     jeddq -s SOCK count REL
     jeddq -s SOCK member REL O1 O2 ...
     jeddq -s SOCK tuples REL [LIMIT]
     jeddq -s SOCK pointsto VAR
     jeddq -s SOCK resolve CALLSITE
     jeddq -s SOCK raw '{"verb": ...}'

   Every command prints the server's JSON response line verbatim, so
   scripts can pipe it on; the exit code is 0 iff the response carries
   "ok": true. *)

open Cmdliner
module Json = Jedd_server.Json
module Client = Jedd_server.Client

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let int_arg what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "jeddq: %s must be an integer, got %S" what s

let build_request args =
  match args with
  | [] -> fail "jeddq: no command (try: ping, count, pointsto, stats, ...)"
  | [ "raw"; text ] -> (
    match Json.of_string text with
    | v -> v
    | exception Json.Parse_error msg -> fail "jeddq: bad JSON: %s" msg)
  | "raw" :: _ -> fail "jeddq: raw takes exactly one JSON argument"
  | verb :: rest -> (
    let simple fields = Json.Obj (("verb", Json.String verb) :: fields) in
    match (verb, rest) with
    | ("ping" | "version" | "stats" | "relations" | "shutdown"), [] ->
      simple []
    | ("ping" | "version" | "stats" | "relations" | "shutdown"), _ ->
      fail "jeddq: %s takes no arguments" verb
    | "count", [ rel ] -> simple [ ("rel", Json.String rel) ]
    | "member", rel :: (_ :: _ as objs) ->
      simple
        [
          ("rel", Json.String rel);
          ( "tuple",
            Json.List (List.map (fun o -> Json.Int (int_arg "object" o)) objs)
          );
        ]
    | "tuples", [ rel ] -> simple [ ("rel", Json.String rel) ]
    | "tuples", [ rel; limit ] ->
      simple
        [
          ("rel", Json.String rel);
          ("limit", Json.Int (int_arg "limit" limit));
        ]
    | "pointsto", [ var ] -> simple [ ("var", Json.Int (int_arg "var" var)) ]
    | "resolve", [ cs ] ->
      simple [ ("callsite", Json.Int (int_arg "callsite" cs)) ]
    | _ -> fail "jeddq: bad arguments for %S" verb)

let run socket timeout_ms args =
  let request =
    match (build_request args, timeout_ms) with
    | Json.Obj kvs, Some ms -> Json.Obj (kvs @ [ ("timeout_ms", Json.Int ms) ])
    | v, _ -> v
  in
  let c =
    try Client.connect socket
    with Unix.Unix_error (e, _, _) ->
      fail "jeddq: cannot connect to %s: %s" socket (Unix.error_message e)
  in
  let resp =
    try Client.request c request
    with Client.Server_error msg | Json.Parse_error msg ->
      Client.close c;
      fail "jeddq: %s" msg
  in
  Client.close c;
  print_endline (Json.to_string resp);
  match Json.member "ok" resp with Some (Json.Bool true) -> 0 | _ -> 1

let socket_arg =
  Arg.(
    value & opt string "jeddd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix socket of the jeddd server")

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Per-request timeout enforced by the server")

let args_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"CMD"
         ~doc:"Command and its arguments")

let cmd =
  Cmd.v
    (Cmd.info "jeddq" ~version:Jedd_relation.Version.banner
       ~doc:"Query a running jeddd analysis server")
    Term.(const run $ socket_arg $ timeout_arg $ args_arg)

let () = exit (Cmd.eval' cmd)
