type t = {
  name : string;
  block : Jedd_bdd.Fdd.block;
  u : Universe.t;
  uid : int;
}

let counter = ref 0

let fresh u name block =
  incr counter;
  (* Registering with the universe's reorder engine makes the block a
     unit of reordering and a row of the profiler's attribution. *)
  Universe.register_block u ~name ~vars:(Jedd_bdd.Fdd.vars block);
  { name; block; u; uid = !counter }

let declare u ~name ~bits =
  fresh u name (Jedd_bdd.Fdd.extdomain_bits (Universe.manager u) bits)

let declare_interleaved ?pad u requests =
  let sizes = List.map (fun (_, bits) -> 1 lsl bits) requests in
  let blocks =
    Jedd_bdd.Fdd.extdomains_interleaved ?pad (Universe.manager u) sizes
  in
  List.map2 (fun (name, _) block -> fresh u name block) requests blocks

let name p = p.name
let width p = Jedd_bdd.Fdd.width p.block
let block p = p.block
let levels p = Jedd_bdd.Fdd.levels (Universe.manager p.u) p.block
let equal a b = a.uid = b.uid
let fits p d = Domain.bits d <= width p
