lib/minijava/workload.ml: Array Hashtbl List Printf Program Random
