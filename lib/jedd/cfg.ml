(* Control-flow graphs over the typed AST and the lowered IR, built on
   the generic [Jedd_dataflow] engine.

   The AST graph drives the §4.2 liveness analysis and the source-level
   jeddlint checkers; the IR graph drives the static refcount-discipline
   verifier.  Both stay faithful to how [Ir_interp] actually executes:
   short-circuit conditions become branching subgraphs, and the frees
   the interpreter synthesises after a relational comparison appear as
   explicit [IFree] nodes. *)

open Tast
module G = Jedd_dataflow.Graph

(* Statements carry no ids, but every occurrence is physically unique
   (the parser never shares nodes), so physical identity is a sound
   hash key. *)
module Stmt_tbl = Hashtbl.Make (struct
  type t = Tast.tstmt

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* -- typed-AST CFG --------------------------------------------------------- *)

type anode =
  | A_entry
  | A_exit
  | A_join  (* merge / no-op point *)
  | A_stmt of tstmt  (* an atomic statement occurrence *)
  | A_cond of tcond * Ast.pos  (* a full condition evaluation *)
  | A_branch of tcond * bool  (* refinement point on one outcome *)

type ast_cfg = {
  agraph : G.t;
  anodes : anode array;
  aentry : int;
  aexit : int;
  astmt_node : int Stmt_tbl.t;  (* atomic statement -> its node *)
  aif_nodes : (int * int) Stmt_tbl.t;  (* TIf -> (cond node, join node) *)
}

let rec cond_pos ~default (c : tcond) =
  match c with
  | TBool _ -> default
  | TNot c -> cond_pos ~default c
  | TAnd (a, _) | TOr (a, _) -> cond_pos ~default a
  | TCmp_eq (l, _) | TCmp_ne (l, _) -> l.epos

(* [dowhile_compat]: add an artificial entry->condition edge to each
   do-while, reproducing the historical liveness conservatism (the
   condition's uses are treated as live at loop entry even though the
   body always runs first).  Liveness wants it so kill sites stay
   exactly where [Lower] has always put them; the lint checkers build
   without it and get the precise first-iteration facts. *)
let build_ast ?(dowhile_compat = false) (m : tmeth) : ast_cfg =
  let g = G.create () in
  let kinds = ref [] in
  let add k =
    let id = G.add_node g in
    kinds := k :: !kinds;
    id
  in
  let edge = G.add_edge g in
  let astmt_node = Stmt_tbl.create 32 in
  let aif_nodes = Stmt_tbl.create 8 in
  let entry = add A_entry in
  let exit_ = add A_exit in
  let default = m.tm_pos in
  let rec stmt prev (s : tstmt) : int =
    match s with
    | TBlock ss -> List.fold_left stmt prev ss
    | TIf (c, th, el) ->
      let cn = add (A_cond (c, cond_pos ~default c)) in
      edge prev cn;
      let bt = add (A_branch (c, true)) and bf = add (A_branch (c, false)) in
      edge cn bt;
      edge cn bf;
      let t_end = stmt bt th in
      let e_end = match el with Some e -> stmt bf e | None -> bf in
      let j = add A_join in
      edge t_end j;
      edge e_end j;
      Stmt_tbl.replace aif_nodes s (cn, j);
      j
    | TWhile (c, body) ->
      let head = add A_join in
      edge prev head;
      let cn = add (A_cond (c, cond_pos ~default c)) in
      edge head cn;
      let bt = add (A_branch (c, true)) and bf = add (A_branch (c, false)) in
      edge cn bt;
      edge cn bf;
      let b_end = stmt bt body in
      edge b_end head;
      bf
    | TDo_while (body, c) ->
      let head = add A_join in
      edge prev head;
      let b_end = stmt head body in
      let cn = add (A_cond (c, cond_pos ~default c)) in
      edge b_end cn;
      if dowhile_compat then edge head cn;
      let bt = add (A_branch (c, true)) and bf = add (A_branch (c, false)) in
      edge cn bt;
      edge cn bf;
      edge bt head;
      bf
    | TReturn _ ->
      let n = add (A_stmt s) in
      edge prev n;
      edge n exit_;
      Stmt_tbl.replace astmt_node s n;
      (* unreachable continuation: keeps straight-line chaining simple *)
      add A_join
    | TDecl _ | TAssign _ | TOp_assign _ | TExpr _ | TPrint _ ->
      let n = add (A_stmt s) in
      edge prev n;
      Stmt_tbl.replace astmt_node s n;
      n
  in
  let last = List.fold_left stmt entry m.tm_body in
  edge last exit_;
  {
    agraph = g;
    anodes = Array.of_list (List.rev !kinds);
    aentry = entry;
    aexit = exit_;
    astmt_node;
    aif_nodes;
  }

(* -- lowered-IR CFG -------------------------------------------------------- *)

type inode =
  | I_entry
  | I_exit
  | I_join
  | I_instr of Ir.instr
  | I_cmp of Ir.reg * Ir.reg option
      (* a relational comparison reading its operand registers; the
         interpreter's synthesised frees follow as I_instr (IFree _) *)
  | I_ret of Ir.reg option  (* return consumes its register *)

type ir_cfg = {
  igraph : G.t;
  inodes : inode array;
  ientry : int;
  iexit : int;
}

let build_ir (m : Ir.cmethod) : ir_cfg =
  let g = G.create () in
  let kinds = ref [] in
  let add k =
    let id = G.add_node g in
    kinds := k :: !kinds;
    id
  in
  let edge = G.add_edge g in
  let entry = add I_entry in
  let exit_ = add I_exit in
  let chain prev is =
    List.fold_left
      (fun p i ->
        let n = add (I_instr i) in
        edge p n;
        n)
      prev is
  in
  (* conditions in continuation style: route the true/false outcomes to
     [t] / [f], mirroring [Ir_interp.eval_cond]'s short-circuiting and
     its free-after-compare of the operand registers *)
  let rec cond prev (c : Ir.ccond) ~t ~f =
    match c with
    | Ir.Cbool true -> edge prev t
    | Ir.Cbool false -> edge prev f
    | Ir.Cnot c -> cond prev c ~t:f ~f:t
    | Ir.Cand (a, b) ->
      let mid = add I_join in
      cond prev a ~t:mid ~f;
      cond mid b ~t ~f
    | Ir.Cor (a, b) ->
      let mid = add I_join in
      cond prev a ~t ~f:mid;
      cond mid b ~t ~f
    | Ir.Ceq (code, r, rhs) | Ir.Cne (code, r, rhs) ->
      let p = chain prev code in
      let p, r2 =
        match rhs with
        | Ir.Rhs_reg (code2, r2) -> (chain p code2, Some r2)
        | Ir.Rhs_empty | Ir.Rhs_full -> (p, None)
      in
      let cmp = add (I_cmp (r, r2)) in
      edge p cmp;
      let p =
        match r2 with
        | Some r2 -> chain cmp [ Ir.IFree r2 ]
        | None -> cmp
      in
      let p = chain p [ Ir.IFree r ] in
      edge p t;
      edge p f
  in
  let rec stmt prev (s : Ir.cstmt) : int =
    match s with
    | Ir.CExec is -> chain prev is
    | Ir.CBlock b -> List.fold_left stmt prev b
    | Ir.CIf (c, th, el) ->
      let bt = add I_join and bf = add I_join and j = add I_join in
      cond prev c ~t:bt ~f:bf;
      let t_end = List.fold_left stmt bt th in
      let e_end = List.fold_left stmt bf el in
      edge t_end j;
      edge e_end j;
      j
    | Ir.CWhile (c, body) ->
      let head = add I_join and bt = add I_join and bf = add I_join in
      edge prev head;
      cond head c ~t:bt ~f:bf;
      let b_end = List.fold_left stmt bt body in
      edge b_end head;
      bf
    | Ir.CDoWhile (body, c) ->
      let head = add I_join and bf = add I_join in
      edge prev head;
      let b_end = List.fold_left stmt head body in
      cond b_end c ~t:head ~f:bf;
      bf
    | Ir.CReturn (code, r) ->
      let p = chain prev code in
      let n = add (I_ret r) in
      edge p n;
      edge n exit_;
      add I_join
  in
  let last = List.fold_left stmt entry m.Ir.c_body in
  edge last exit_;
  {
    igraph = g;
    inodes = Array.of_list (List.rev !kinds);
    ientry = entry;
    iexit = exit_;
  }
