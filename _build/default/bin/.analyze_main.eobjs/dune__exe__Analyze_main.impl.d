bin/analyze_main.ml: Arg Cmd Cmdliner Format Jedd_analyses Jedd_minijava List Printf Sys Term
