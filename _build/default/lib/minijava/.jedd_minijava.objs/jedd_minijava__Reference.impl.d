lib/minijava/reference.ml: Array Hashtbl Int List Program Set
