(* Hand-coded BDD points-to analysis: the same algorithm as
   [Pointsto.source] written directly against the BDD package, with
   manual physical-domain management, manual replaces, and manual
   reference counting — the role the hand-written C++ implementation of
   [5] plays as the baseline of Table 2.

   Everything Jedd automates is done by hand here: the V1/V2/H1/H2/F
   variable blocks are fixed explicitly, every replace is written out,
   and reference counts are adjusted around each operation. *)

module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Rep = Jedd_bdd.Replace
module Fdd = Jedd_bdd.Fdd
module Count = Jedd_bdd.Count
module P = Jedd_minijava.Program

type t = {
  man : M.t;
  v1 : Fdd.block;
  v2 : Fdd.block;
  h1 : Fdd.block;
  h2 : Fdd.block;
  fd : Fdd.block;
  (* relations, manually tracked: *)
  mutable pt : M.node;  (* <V1, H1> *)
  mutable fieldpt : M.node;  (* <H2, F, H1> *)
  mutable alloc : M.node;  (* <V1, H1> *)
  mutable assign : M.node;  (* src:V1, dst:V2 *)
  mutable load : M.node;  (* base:V1, F, dst:V2 *)
  mutable store : M.node;  (* src:V1, base:V2, F *)
  v1_to_v2 : Rep.perm;
  v2_to_v1 : Rep.perm;
  h1_to_h2 : Rep.perm;
  v1_cube : M.node;
  v2_cube : M.node;
  h2f_cube : M.node;
}

let bits_for n =
  let rec go k acc = if k >= n then acc else go (k * 2) (acc + 1) in
  max 1 (go 1 0)

let create (p : P.t) : t =
  let man = M.create ~node_capacity:(1 lsl 16) () in
  let vb = bits_for (max 2 p.P.n_vars) in
  let hb = bits_for (max 2 p.P.n_heap) in
  let fb = bits_for (max 2 p.P.n_fields) in
  (* Allocate the variable blocks in the same relative order the Jedd
     runtime uses for its physical domains, so Table 2 compares the
     translation overhead and not two different variable orderings (the
     ordering itself is studied separately in [ablation-order]). *)
  let v1 = Fdd.extdomain_bits man vb in
  let v2 = Fdd.extdomain_bits man vb in
  let h1 = Fdd.extdomain_bits man hb in
  let h2 = Fdd.extdomain_bits man hb in
  let fd = Fdd.extdomain_bits man fb in
  let tuple2 b1 x b2 y = Ops.band man (Fdd.ithvar man b1 x) (Fdd.ithvar man b2 y) in
  let tuple3 b1 x b2 y b3 z = Ops.band man (tuple2 b1 x b2 y) (Fdd.ithvar man b3 z) in
  let union_of mk xs =
    List.fold_left (fun acc x -> Ops.bor man acc (mk x)) M.zero xs
  in
  let alloc = M.addref man (union_of (fun (v, h) -> tuple2 v1 v h1 h) p.P.allocs) in
  let assign =
    M.addref man (union_of (fun (s, d) -> tuple2 v1 s v2 d) p.P.assigns)
  in
  let load =
    M.addref man
      (union_of (fun (b, f, d) -> tuple3 v1 b fd f v2 d) p.P.loads)
  in
  let store =
    M.addref man
      (union_of (fun (s, b, f) -> tuple3 v1 s v2 b fd f) p.P.stores)
  in
  {
    man;
    v1;
    v2;
    h1;
    h2;
    fd;
    pt = M.addref man M.zero;
    fieldpt = M.addref man M.zero;
    alloc;
    assign;
    load;
    store;
    v1_to_v2 = Rep.make_perm man (Fdd.perm_pairs man v1 v2);
    v2_to_v1 = Rep.make_perm man (Fdd.perm_pairs man v2 v1);
    h1_to_h2 = Rep.make_perm man (Fdd.perm_pairs man h1 h2);
    v1_cube = M.addref man (Fdd.domain_cube man v1);
    v2_cube = M.addref man (Fdd.domain_cube man v2);
    h2f_cube =
      M.addref man
        (Ops.band man (Fdd.domain_cube man h2) (Fdd.domain_cube man fd));
  }

(* manually-managed update: new value referenced, old dereferenced *)
let set_pt t n =
  ignore (M.addref t.man n);
  M.delref t.man t.pt;
  t.pt <- n

let set_fieldpt t n =
  ignore (M.addref t.man n);
  M.delref t.man t.fieldpt;
  t.fieldpt <- n

(* [use_relprod:false] replaces every relational product with an
   explicit conjunction followed by quantification — the join-then-
   project strategy §2.2.3 says composition improves on.  Used by the
   [ablation-compose] benchmark. *)
let solve ?(use_relprod = true) (t : t) =
  let m = t.man in
  let relprod a b cube =
    if use_relprod then Quant.relprod m a b cube
    else Quant.exist m (Ops.band m a b) cube
  in
  set_pt t t.alloc;
  let continue_loop = ref true in
  while !continue_loop do
    M.checkpoint m;
    let old_pt = t.pt and old_fieldpt = t.fieldpt in
    (* copy rule: pt(dst, h) from assign(src:V1, dst:V2), pt(var:V1, h):
       relprod over V1, result in V2, replace back to V1 *)
    let moved = relprod t.assign t.pt t.v1_cube in
    let copy_new = Rep.replace m moved t.v2_to_v1 in
    set_pt t (Ops.bor m t.pt copy_new);
    (* store rule: store(src:V1, base:V2, f) x pt(src->h1) -> (base:V2, f, h1);
       then x ptB(base:V2 -> baseheap:H2) -> fieldpt(H2, f, H1) *)
    let st1 = relprod t.store t.pt t.v1_cube in
    let ptb =
      (* pt with var moved to V2 and heap to H2 *)
      Rep.replace m (Rep.replace m t.pt t.v1_to_v2) t.h1_to_h2
    in
    let st2 = relprod st1 ptb t.v2_cube in
    set_fieldpt t (Ops.bor m t.fieldpt st2);
    (* load rule: load(base:V1, f, dst:V2) x pt(base->baseheap H2 via ptb')
       -> (f, dst:V2, H2); x fieldpt(H2, f, H1) -> (dst:V2, H1) -> V1 *)
    let ptb' = Rep.replace m t.pt t.h1_to_h2 in
    (* ptb' is <V1, H2>; compose with load over V1 *)
    let ld1 = relprod t.load ptb' t.v1_cube in
    let ld2 = relprod ld1 t.fieldpt t.h2f_cube in
    let load_new = Rep.replace m ld2 t.v2_to_v1 in
    set_pt t (Ops.bor m t.pt load_new);
    continue_loop := not (t.pt = old_pt && t.fieldpt = old_fieldpt)
  done

(* The same solve with every relational product and union running on a
   work-stealing pool ([Jedd_bdd.Par]) — the points-to join/compose hot
   path of the parallel-speedup benchmark.  The iteration structure is
   identical to [solve], so by canonicity the pt/fieldpt roots match the
   sequential ones bit for bit, iteration by iteration.

   Reference discipline: this is the only registered domain, so a GC can
   only run at the [checkpoint] at the top of the loop — pool workers
   never collect — and at that point every live root ([pt], [fieldpt]
   and the input relations) carries a reference.  Raw intermediates are
   therefore safe within one iteration body, exactly as in [solve].

   Returns the pool's (forks, steals) so the scaling benchmark can tell
   a flat curve from a non-parallelised run; (0, 0) when [jobs <= 1]. *)
let solve_par ?(use_relprod = true) ?(jobs = Jedd_bdd.Par.default_jobs ())
    (t : t) =
  if jobs <= 1 then begin
    solve ~use_relprod t;
    (0, 0)
  end
  else begin
    let module Par = Jedd_bdd.Par in
    let m = t.man in
    M.enter_parallel m;
    let pool = Par.create ~jobs () in
    Fun.protect
      ~finally:(fun () ->
        Par.shutdown pool;
        M.exit_parallel m)
      (fun () ->
        M.stw_register m;
        Fun.protect ~finally:(fun () -> M.stw_unregister m) @@ fun () ->
        let relprod a b cube =
          if use_relprod then Par.relprod pool m a b cube
          else Par.exist pool m (Par.band pool m a b) cube
        in
        set_pt t t.alloc;
        let continue_loop = ref true in
        while !continue_loop do
          M.checkpoint m;
          let old_pt = t.pt and old_fieldpt = t.fieldpt in
          let moved = relprod t.assign t.pt t.v1_cube in
          let copy_new = Rep.replace m moved t.v2_to_v1 in
          set_pt t (Par.bor pool m t.pt copy_new);
          let st1 = relprod t.store t.pt t.v1_cube in
          let ptb =
            Rep.replace m (Rep.replace m t.pt t.v1_to_v2) t.h1_to_h2
          in
          let st2 = relprod st1 ptb t.v2_cube in
          set_fieldpt t (Par.bor pool m t.fieldpt st2);
          let ptb' = Rep.replace m t.pt t.h1_to_h2 in
          let ld1 = relprod t.load ptb' t.v1_cube in
          let ld2 = relprod ld1 t.fieldpt t.h2f_cube in
          let load_new = Rep.replace m ld2 t.v2_to_v1 in
          set_pt t (Par.bor pool m t.pt load_new);
          continue_loop := not (t.pt = old_pt && t.fieldpt = old_fieldpt)
        done;
        Par.stats pool)
  end

let pt_tuples (t : t) =
  let acc = ref [] in
  let levels =
    Array.of_list
      (List.sort_uniq compare
         (Array.to_list (Fdd.levels t.man t.v1)
         @ Array.to_list (Fdd.levels t.man t.h1)))
  in
  Jedd_bdd.Enum.iter_assignments t.man t.pt ~levels (fun values ->
      acc :=
        [
          Fdd.decode t.man t.v1 ~levels values;
          Fdd.decode t.man t.h1 ~levels values;
        ]
        :: !acc);
  List.sort compare !acc

let pt_node_count t = Count.nodecount t.man t.pt

(* accessors used by the benchmark harness's ablations *)
let manager t = t.man
let pt_rel t = t.pt
let assign_rel t = t.assign
let v1_cube_of t = t.v1_cube

let destroy (t : t) =
  List.iter (M.delref t.man)
    [ t.pt; t.fieldpt; t.alloc; t.assign; t.load; t.store; t.v1_cube;
      t.v2_cube; t.h2f_cube ]
