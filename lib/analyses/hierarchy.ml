(* Class-hierarchy analysis: the transitive closure of the direct
   superclass relation (the Hierarchy module of Figure 2). *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp

let source =
  "class Hierarchy {\n\
  \  <subtype:T1, supertype:T3> extendH;\n\
  \  <subtype:T1, supertype:T2> subtypes = 0B;\n\
  \  public void run() {\n\
  \    subtypes = extendH;\n\
  \    <subtype:T1, supertype:T2> delta;\n\
  \    do {\n\
  \      delta = subtypes{supertype} <> extendH{subtype};\n\
  \      delta -= subtypes;\n\
  \      subtypes |= delta;\n\
  \    } while (delta != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) =
  Common.set_fact inst "Hierarchy.extendH"
    (List.map (fun (sub, sup) -> [ sub; sup ]) p.P.extend)

let run inst =
  ignore (Interp.call inst "Hierarchy.run" [])

(* strict transitive closure as (sub, super) pairs, sub <> super *)
let results inst = Common.get_tuples inst "Hierarchy.subtypes"
