(** A Java-like whole-program intermediate representation — the
    substrate the five whole-program analyses of §5 consume, standing in
    for Soot's Jimple.

    Entities (classes, method signatures, concrete methods, variables,
    allocation sites, fields, call sites) are dense integers, which is
    also exactly the object-to-integer mapping Jedd domains require
    (§2.1). *)

type call_site = {
  cs_id : int;
  cs_recv : int;  (** receiver variable *)
  cs_sig : int;  (** invoked signature *)
  cs_in_method : int;  (** enclosing method *)
}

type t = {
  n_classes : int;
  n_sigs : int;
  n_methods : int;
  n_vars : int;
  n_heap : int;  (** allocation sites *)
  n_fields : int;
  extend : (int * int) list;  (** (subclass, direct superclass) *)
  declares : (int * int * int) list;  (** (class, signature, method) *)
  method_class : int array;  (** method -> declaring class *)
  method_sig : int array;
  var_method : int array;  (** variable -> enclosing method *)
  heap_type : int array;  (** allocation site -> dynamic type *)
  allocs : (int * int) list;  (** (variable, heap object) *)
  assigns : (int * int) list;  (** (source, destination) *)
  stores : (int * int * int) list;  (** (source, base, field) *)
  loads : (int * int * int) list;  (** (base, field, destination) *)
  calls : call_site list;
  entry_methods : int list;
}

val empty : t

val superclasses : t -> int -> int list
(** Proper superclasses, nearest first. *)

val resolve_virtual : t -> rectype:int -> signature:int -> int option
(** Sequential reference implementation of the Figure 4 walk: find the
    method a call with this receiver type and signature dispatches to. *)

val pp_stats : Format.formatter -> t -> unit
