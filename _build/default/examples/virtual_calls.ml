(* The complete Figure 4 walkthrough: compile the paper's virtual call
   resolution module with jeddc, run it on the paper's two-class
   example, and print the intermediate relations (a)-(g).

   Run with:  dune exec examples/virtual_calls.exe *)

module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation

(* The Jedd source of Figure 4, with `print` statements inserted at the
   points where the paper shows snapshots.  As §3.3.3 works out,
   [supertype] needs a physical domain of its own (T3). *)
let source =
  "domain Type 2;\n\
   domain Signature 2;\n\
   domain Method 2;\n\
   attribute type : Type;\n\
   attribute rectype : Type;\n\
   attribute tgttype : Type;\n\
   attribute subtype : Type;\n\
   attribute supertype : Type;\n\
   attribute signature : Signature;\n\
   attribute method : Method;\n\
   physdom T1;\n\
   physdom T2;\n\
   physdom T3;\n\
   physdom S1;\n\
   physdom M1;\n\
   class Resolver {\n\
   \  <type, signature, method> declaresMethod;\n\
   \  <rectype, signature, tgttype, method> answer = 0B;\n\
   \  public void resolve( <rectype, signature> receiverTypes, <subtype, supertype:T3> extend ) {\n\
   \    <rectype, signature, tgttype> toResolve = (rectype => rectype tgttype) receiverTypes;\n\
   \    print toResolve;\n\
   \    do {\n\
   \      <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =\n\
   \        toResolve{tgttype, signature} >< declaresMethod{type, signature};\n\
   \      print resolved;\n\
   \      answer |= resolved;\n\
   \      toResolve -= (method=>) resolved;\n\
   \      toResolve = (supertype=>tgttype) (toResolve{tgttype} <> extend{subtype});\n\
   \      print toResolve;\n\
   \    } while( toResolve != 0B );\n\
   \  }\n\
   }\n"

let () =
  print_endline "== jeddc: compiling the Figure 4 module ==";
  let compiled =
    match Driver.compile [ ("Figure4.jedd", source) ] with
    | Ok c -> c
    | Error e ->
      prerr_endline (Driver.error_to_string e);
      exit 1
  in
  let st = compiled.Driver.constraint_stats in
  Printf.printf
    "  %d relational expressions, %d attributes, %d physical domains\n"
    st.Jedd_lang.Constraints.n_rel_exprs st.Jedd_lang.Constraints.n_attrs
    st.Jedd_lang.Constraints.n_physdoms;
  Printf.printf
    "  constraints: %d conflict, %d equality, %d assignment\n"
    st.Jedd_lang.Constraints.n_conflict st.Jedd_lang.Constraints.n_equality
    st.Jedd_lang.Constraints.n_assignment;
  let s = compiled.Driver.assignment.Jedd_lang.Encode.stats in
  Printf.printf "  SAT: %d variables, %d clauses, %d literals (%.4f s)\n\n"
    s.Jedd_lang.Encode.sat_vars s.Jedd_lang.Encode.sat_clauses
    s.Jedd_lang.Encode.sat_literals s.Jedd_lang.Encode.solve_seconds;
  let inst = Driver.instantiate compiled in
  let u = Interp.universe inst in
  (* prints arrive as: toResolve (line 3), then per iteration resolved
     (line 6) and the stepped-up toResolve (line 10) *)
  let step = ref 0 in
  Interp.set_print_hook inst (fun text ->
      let label =
        if !step = 0 then "(b) toResolve after line 3"
        else if !step mod 2 = 1 then
          Printf.sprintf "resolved, iteration %d — Figure 4(%c)" ((!step + 1) / 2)
            (if !step = 1 then 'c' else 'g')
        else
          Printf.sprintf "toResolve after line 10, iteration %d%s" (!step / 2)
            (if !step = 2 then " — Figure 4(f)" else "")
      in
      incr step;
      Printf.printf "-- %s --\n%s\n" label text);
  (* Objects: Type A=0 B=1; Signature foo()=0 bar()=1; Method A.foo()=0
     B.bar()=1.  declaresMethod is the implementsMethod of Figure 3. *)
  Common_setup.set inst "Resolver.declaresMethod" [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ];
  print_endline "== running resolve() on Figure 4(a): {(B, foo()), (B, bar())} ==";
  let recv =
    R.of_tuples u
      (Interp.schema_of_var inst "Resolver.resolve.receiverTypes")
      [ [ 1; 0 ]; [ 1; 1 ] ]
  in
  let extend =
    R.of_tuples u
      (Interp.schema_of_var inst "Resolver.resolve.extend")
      [ [ 1; 0 ] ]
  in
  ignore (Interp.call inst "Resolver.resolve" [ Interp.VRel recv; Interp.VRel extend ]);
  print_endline "== final answer: targets of the two calls ==";
  print_string (R.to_string (Interp.get_field inst "Resolver.answer"));
  print_endline
    "\n(B, foo()) resolves to A.foo() and (B, bar()) to B.bar() — matching\n\
     Figures 4(c) and 4(g).  Object key: Type {0=A,1=B}, Signature\n\
     {0=foo(),1=bar()}, Method {0=A.foo(),1=B.bar()}."
