(* The lowered intermediate representation: the operation sequence
   jeddc's generated Java performs (§3.2 "code generation strategy").

   Expressions compile to straight-line three-address code over virtual
   registers; every physical-domain decision is explicit — layouts are
   spelled out on constants and literals, and [IReplace] appears exactly
   where the assignment stage kept a replace.  Statements stay
   structured (the host subset has no unstructured control flow).

   Register discipline: a register is written once and consumed once;
   [IFree] releases owned intermediates immediately after their
   consumption (§4.2 case 1), while registers loaded from variables
   borrow the container's handle and are never freed. *)

type reg = int

(* a concrete layout: attribute name -> physical domain name, ordered *)
type layout = (string * string) list

type operand = Op_int of int | Op_objparam of string

type instr =
  | ILoad of reg * Tast.var_key  (** borrow a variable's relation *)
  | IStore of Tast.var_key * reg  (** store (consumes the register) *)
  | IStoreUnion of Tast.var_key * reg  (** the |= / &= / -= family *)
  | IStoreInter of Tast.var_key * reg
  | IStoreDiff of Tast.var_key * reg
  | IConst of reg * bool * layout  (** 0B (false) / 1B (true) *)
  | ILiteral of reg * layout * operand list
  | IUnion of reg * reg * reg
  | IInter of reg * reg * reg
  | IDiff of reg * reg * reg
  | IProject of reg * reg * string list  (** attribute names removed *)
  | IRename of reg * reg * (string * string) list
  | ICopy of reg * reg * string * string * string
      (** dst, src, from-attr, new-attr, physdom of the new attr *)
  | IJoin of reg * reg * string list * reg * string list
  | ICompose of reg * reg * string list * reg * string list
  | IReplace of reg * reg * layout  (** coerce to the given layout *)
  | ICall of reg option * string * call_arg list
  | IFree of reg  (** release an owned intermediate *)
  | IKill of Tast.var_key  (** liveness: release a variable's handle *)
  | IPrint of reg

and call_arg = Carg_reg of reg | Carg_obj of operand

(* conditions compile to code computing two registers plus a comparison
   mode; 0B/1B comparands become emptiness/fullness tests *)
type ccond =
  | Cbool of bool
  | Cnot of ccond
  | Cand of ccond * ccond
  | Cor of ccond * ccond
  | Ceq of instr list * reg * cmp_rhs
  | Cne of instr list * reg * cmp_rhs

and cmp_rhs =
  | Rhs_reg of instr list * reg
  | Rhs_empty  (** compare against 0B *)
  | Rhs_full  (** compare against 1B *)

type cstmt =
  | CExec of instr list
  | CBlock of cstmt list
  | CIf of ccond * cstmt list * cstmt list
  | CWhile of ccond * cstmt list
  | CDoWhile of cstmt list * ccond
  | CReturn of instr list * reg option

type cmethod = {
  c_qualified : string;
  c_params : Tast.tparam list;
  c_body : cstmt list;
  c_nregs : int;
}

(* ------------------------------------------------------------------ *)

let pp_layout ppf layout =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, p) -> Format.fprintf ppf "%s:%s" a p))
    layout

let pp_operand ppf = function
  | Op_int n -> Format.pp_print_int ppf n
  | Op_objparam s -> Format.pp_print_string ppf s

let pp_instr ppf (i : instr) =
  let strings = String.concat ", " in
  match i with
  | ILoad (r, v) -> Format.fprintf ppf "r%d := load %s" r v
  | IStore (v, r) -> Format.fprintf ppf "store %s := r%d" v r
  | IStoreUnion (v, r) -> Format.fprintf ppf "store %s |= r%d" v r
  | IStoreInter (v, r) -> Format.fprintf ppf "store %s &= r%d" v r
  | IStoreDiff (v, r) -> Format.fprintf ppf "store %s -= r%d" v r
  | IConst (r, full, l) ->
    Format.fprintf ppf "r%d := %s %a" r (if full then "1B" else "0B") pp_layout l
  | ILiteral (r, l, objs) ->
    Format.fprintf ppf "r%d := new {%a} %a" r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_operand)
      objs pp_layout l
  | IUnion (d, a, b) -> Format.fprintf ppf "r%d := r%d | r%d" d a b
  | IInter (d, a, b) -> Format.fprintf ppf "r%d := r%d & r%d" d a b
  | IDiff (d, a, b) -> Format.fprintf ppf "r%d := r%d - r%d" d a b
  | IProject (d, s, attrs) ->
    Format.fprintf ppf "r%d := project r%d away {%s}" d s (strings attrs)
  | IRename (d, s, pairs) ->
    Format.fprintf ppf "r%d := rename r%d {%s}" d s
      (strings (List.map (fun (a, b) -> a ^ "=>" ^ b) pairs))
  | ICopy (d, s, a, c, p) ->
    Format.fprintf ppf "r%d := copy r%d %s as %s in %s" d s a c p
  | IJoin (d, a, la, b, lb) ->
    Format.fprintf ppf "r%d := r%d{%s} >< r%d{%s}" d a (strings la) b
      (strings lb)
  | ICompose (d, a, la, b, lb) ->
    Format.fprintf ppf "r%d := r%d{%s} <> r%d{%s}" d a (strings la) b
      (strings lb)
  | IReplace (d, s, l) ->
    Format.fprintf ppf "r%d := replace r%d %a" d s pp_layout l
  | ICall (Some d, q, _) -> Format.fprintf ppf "r%d := call %s" d q
  | ICall (None, q, _) -> Format.fprintf ppf "call %s" q
  | IFree r -> Format.fprintf ppf "free r%d" r
  | IKill v -> Format.fprintf ppf "kill %s" v
  | IPrint r -> Format.fprintf ppf "print r%d" r

let rec pp_cstmt ppf (s : cstmt) =
  let pp_block ppf b =
    List.iter (fun s -> Format.fprintf ppf "%a" pp_cstmt s) b
  in
  let pp_instrs ppf is =
    List.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) is
  in
  match s with
  | CExec is -> pp_instrs ppf is
  | CBlock b -> pp_block ppf b
  | CIf (_, th, el) ->
    Format.fprintf ppf "  if ... {@.%a  } else {@.%a  }@." pp_block th
      pp_block el
  | CWhile (_, body) ->
    Format.fprintf ppf "  while ... {@.%a  }@." pp_block body
  | CDoWhile (body, _) ->
    Format.fprintf ppf "  do {@.%a  } while ...@." pp_block body
  | CReturn (is, Some r) ->
    Format.fprintf ppf "%a  return r%d@." pp_instrs is r
  | CReturn (is, None) -> Format.fprintf ppf "%a  return@." pp_instrs is

let pp_method ppf (m : cmethod) =
  Format.fprintf ppf "method %s (%d registers):@." m.c_qualified m.c_nregs;
  List.iter (pp_cstmt ppf) m.c_body

(* instruction count, for code-size reporting *)
let rec stmt_size (s : cstmt) =
  match s with
  | CExec is -> List.length is
  | CBlock b -> List.fold_left (fun a s -> a + stmt_size s) 0 b
  | CIf (c, th, el) ->
    cond_size c
    + List.fold_left (fun a s -> a + stmt_size s) 0 th
    + List.fold_left (fun a s -> a + stmt_size s) 0 el
  | CWhile (c, body) | CDoWhile (body, c) ->
    cond_size c + List.fold_left (fun a s -> a + stmt_size s) 0 body
  | CReturn (is, _) -> List.length is

and cond_size (c : ccond) =
  match c with
  | Cbool _ -> 0
  | Cnot c -> cond_size c
  | Cand (a, b) | Cor (a, b) -> cond_size a + cond_size b
  | Ceq (is, _, rhs) | Cne (is, _, rhs) -> (
    List.length is
    + match rhs with Rhs_reg (is2, _) -> List.length is2 | _ -> 0)

let method_size m = List.fold_left (fun a s -> a + stmt_size s) 0 m.c_body

(* ------------------------------------------------------------------ *)
(* The §4.2 register/ownership discipline as an explicit state machine.

   [Lower] must write each register before it is read, consume owned
   intermediates exactly once, free them right after consumption, and
   never touch a register once its value is gone; [IKill] retires a
   variable's handle, after which only a plain store may revive it.

   The static verifier ([Jedd_lint.Refcount]) proves these rules over
   every path of the IR control-flow graph; the dynamic checker
   ([Ir_interp] under JEDD_CHECK_IR=1) asserts them on the actually
   executed path.  Both share the transition rules below, so the prover
   and the runtime can never drift apart. *)

module Discipline = struct
  module SS = Set.Make (String)

  type state =
    | Unborn  (* never written *)
    | Owned  (* holds a value this frame must free or consume *)
    | Borrowed  (* views a container's value; freeing it is a no-op *)
    | Dead  (* consumed or freed: the value is gone *)
    | Maybe_borrowed  (* borrowed on some paths, dead on others (join) *)
    | Conflict  (* owned on some paths only: any use is a leak or fault *)

  let state_to_string = function
    | Unborn -> "unborn"
    | Owned -> "owned"
    | Borrowed -> "borrowed"
    | Dead -> "dead"
    | Maybe_borrowed -> "maybe-borrowed"
    | Conflict -> "conflicted"

  let join_state a b =
    if a = b then a
    else
      match (a, b) with
      | Conflict, _ | _, Conflict | Owned, _ | _, Owned -> Conflict
      | (Borrowed | Maybe_borrowed), _ | _, (Borrowed | Maybe_borrowed) ->
        Maybe_borrowed
      | (Unborn | Dead), (Unborn | Dead) -> Dead

  (* a frame's abstract state: one state per register, plus the set of
     variables whose handle a liveness kill has retired *)
  type frame = { regs : state array; mutable killed : SS.t }

  let init nregs = { regs = Array.make (max 1 nregs) Unborn; killed = SS.empty }
  let copy fr = { regs = Array.copy fr.regs; killed = fr.killed }

  let equal_frame a b = a.regs = b.regs && SS.equal a.killed b.killed

  let join_frame a b =
    {
      regs =
        Array.init (Array.length a.regs) (fun i ->
            join_state a.regs.(i) b.regs.(i));
      killed = SS.union a.killed b.killed;
    }

  let read_error = function
    | Owned | Borrowed -> None
    | Unborn -> Some "read before being written"
    | Dead -> Some "read after being consumed or freed"
    | Maybe_borrowed -> Some "read but dead on some path"
    | Conflict -> Some "read in conflicting ownership states"

  let read fr r acc =
    match read_error fr.regs.(r) with
    | Some m -> Printf.sprintf "r%d %s" r m :: acc
    | None -> acc

  (* Apply one instruction's transitions.  Violations are returned and
     the frame is left in the best-effort post-state, so a checker can
     keep going and report everything at once. *)
  let step fr (i : instr) : string list =
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    let read r = errs := List.rev_append (read fr r []) !errs in
    let write ~owned r =
      (match fr.regs.(r) with
      | Owned -> err "r%d overwritten while still owning a value" r
      | Conflict -> err "r%d overwritten while it may still own a value" r
      | Unborn | Borrowed | Dead | Maybe_borrowed -> ());
      fr.regs.(r) <- (if owned then Owned else Borrowed)
    in
    let consume r =
      read r;
      fr.regs.(r) <- Dead
    in
    let free r =
      (match fr.regs.(r) with
      | Owned | Borrowed | Maybe_borrowed -> ()
      | Unborn -> err "r%d freed before being written" r
      | Dead -> err "r%d freed twice (or freed after being consumed)" r
      | Conflict -> err "r%d freed in conflicting ownership states" r);
      fr.regs.(r) <- Dead
    in
    let use_var key =
      if SS.mem key fr.killed then
        err "variable %s used after its liveness kill" key
    in
    let revive key = fr.killed <- SS.remove key fr.killed in
    (match i with
    | ILoad (r, key) ->
      use_var key;
      write ~owned:false r
    | IStore (key, r) ->
      consume r;
      revive key
    | IStoreUnion (key, r) | IStoreInter (key, r) | IStoreDiff (key, r) ->
      (* reads the variable's current value, then stores *)
      use_var key;
      consume r;
      revive key
    | IConst (r, _, _) | ILiteral (r, _, _) -> write ~owned:true r
    | IUnion (d, a, b) | IInter (d, a, b) | IDiff (d, a, b) ->
      read a;
      read b;
      write ~owned:true d
    | IProject (d, s, _) | IRename (d, s, _) | IReplace (d, s, _) ->
      read s;
      write ~owned:true d
    | ICopy (d, s, _, _, _) ->
      read s;
      write ~owned:true d
    | IJoin (d, a, _, b, _) | ICompose (d, a, _, b, _) ->
      read a;
      read b;
      write ~owned:true d
    | ICall (dest, _, args) ->
      List.iter
        (function Carg_reg r -> consume r | Carg_obj _ -> ())
        args;
      (match dest with Some d -> write ~owned:true d | None -> ())
    | IFree r -> free r
    | IKill key -> fr.killed <- SS.add key fr.killed
    | IPrint r -> read r);
    List.rev !errs

  (* a relational comparison reads its operands (the interpreter frees
     them afterwards with explicit IFree transitions) *)
  let compare_reads fr r1 r2 : string list =
    let acc = read fr r1 [] in
    let acc = match r2 with Some r -> read fr r acc | None -> acc in
    List.rev acc

  let consume_return fr r : string list =
    let acc = read fr r [] in
    fr.regs.(r) <- Dead;
    List.rev acc

  (* owned values reaching method exit are leaks: the runtime sweep
     would silently release them, hiding a Lower bug *)
  let leaks fr : string list =
    let out = ref [] in
    Array.iteri
      (fun i st ->
        match st with
        | Owned ->
          out := Printf.sprintf "r%d still owned at method exit (leak)" i :: !out
        | Conflict ->
          out :=
            Printf.sprintf "r%d owned on some paths at method exit (leak)" i
            :: !out
        | Unborn | Borrowed | Dead | Maybe_borrowed -> ())
      fr.regs;
    List.rev !out
end
