lib/bdd/enum.ml: Array Manager
