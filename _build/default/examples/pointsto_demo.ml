(* Points-to analysis in Jedd on a generated whole program, followed by
   the rest of the Figure 2 pipeline (virtual calls, call graph, side
   effects).

   Run with:  dune exec examples/pointsto_demo.exe *)

module Workload = Jedd_minijava.Workload
module Program = Jedd_minijava.Program
module Reference = Jedd_minijava.Reference
module Suite = Jedd_analyses.Suite

let () =
  let profile = Workload.profile_named "compress" in
  let p = Workload.generate profile in
  Format.printf "workload %s: %a@." profile.Workload.name Program.pp_stats p;
  let t0 = Sys.time () in
  let r = Suite.run_all p in
  let elapsed = Sys.time () -. t0 in
  Printf.printf "\nanalysis pipeline finished in %.2f s\n" elapsed;
  Printf.printf "  subtype pairs        : %d\n" (List.length r.Suite.subtypes);
  Printf.printf "  points-to pairs      : %d\n" (List.length r.Suite.pt);
  Printf.printf "  resolved call edges  : %d\n" (List.length r.Suite.call_edges);
  Printf.printf "  reachable methods    : %d / %d\n"
    (List.length r.Suite.reachable)
    p.Program.n_methods;
  Printf.printf "  side-effect triples  : %d\n"
    (List.length r.Suite.side_effects);
  (* cross-check against the reference implementation *)
  let ref_pt, _ = Reference.points_to p in
  let ok = List.length r.Suite.pt = Reference.IPS.cardinal ref_pt in
  Printf.printf "\npoints-to agrees with the reference implementation: %b\n" ok;
  (* show a few points-to facts *)
  print_endline "\nsample points-to facts (var -> heap):";
  List.iteri
    (fun i t ->
      if i < 8 then
        match t with
        | [ v; h ] -> Printf.printf "  v%d -> h%d (type %d)\n" v h p.Program.heap_type.(h)
        | _ -> ())
    r.Suite.pt
