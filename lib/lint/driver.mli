(** jeddlint: run every checker over a compiled program and render the
    results.

    The report is deterministic — diagnostics in source order, the
    replace audit in program order — so both renderings are suitable
    for golden tests and CI. *)

type report = {
  diagnostics : Diag.t list;  (** sorted by position, then code *)
  methods_verified : int;  (** methods the refcount verifier proved *)
  refcount_violations : int;
  replace_audit : Check_replace.audit_entry list;
}

val lint :
  ?replace_audit:bool ->
  ?max_paths_per_class:int ->
  ?hints:(string -> int option) ->
  Jedd_lang.Driver.compiled ->
  report
(** Run all checkers.  [replace_audit] (default [true]) controls the
    per-site SAT probes of JL007/JL008, the only non-linear part.
    [hints] feeds observed node counts (keyed by "file:line,col"
    profiler labels, see [Jedd_cost.Shape.hints_of_csv]) into the
    JL202 blowup predictor. *)

val exit_code : report -> int
(** 2 if any error, 1 if any warning, 0 otherwise — CI-friendly. *)

val to_text : report -> string

val to_json : report -> string
(** Stable multi-line JSON document: [diagnostics], [summary],
    [refcount] and [replace_audit] blocks. *)
