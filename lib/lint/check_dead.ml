(* JL002: dead relational stores — an assignment whose target dies
   immediately afterwards computed a value nobody will read.  Reuses the
   §4.2 liveness fixpoint: [Liveness.kills_after] lists exactly the
   variables whose last use is at a statement, so a store whose target
   is in its own kill set is dead.

   JL003: relation locals and parameters that are never read anywhere in
   their method.  Fields are excluded — they are the program's outputs
   and the host reads them after the run. *)

open Jedd_lang
open Tast
module S = Set.Make (String)

let short_name = Check_init.short_name

let rec expr_uses (e : texpr) acc =
  match e.edesc with
  | TVar ((Vlocal | Vparam), key) -> S.add key acc
  | TVar (Vfield, _) | TEmpty | TFull | TLiteral _ -> acc
  | TBinop (_, l, r) -> expr_uses l (expr_uses r acc)
  | TReplace (_, c) -> expr_uses c acc
  | TJoin (_, l, _, r, _) -> expr_uses l (expr_uses r acc)
  | TCall (_, args) ->
    List.fold_left
      (fun acc (a : targ) ->
        match a with Targ_rel te -> expr_uses te acc | Targ_obj _ -> acc)
      acc args

let rec cond_uses (c : tcond) acc =
  match c with
  | TBool _ -> acc
  | TNot c -> cond_uses c acc
  | TAnd (a, b) | TOr (a, b) -> cond_uses a (cond_uses b acc)
  | TCmp_eq (l, r) | TCmp_ne (l, r) -> expr_uses l (expr_uses r acc)

(* -- JL002 ----------------------------------------------------------------- *)

let dead_stores (m : tmeth) : Diag.t list =
  let live = Liveness.analyze m in
  let out = ref [] in
  let store_target (s : tstmt) =
    match s with
    | TDecl (key, Some _, pos) -> Some (key, pos, "initializer")
    | TAssign (key, (Vlocal | Vparam), _, pos) -> Some (key, pos, "assignment")
    | TOp_assign (_, key, (Vlocal | Vparam), _, pos) ->
      Some (key, pos, "update")
    | _ -> None
  in
  let rec walk (s : tstmt) =
    match s with
    | TBlock ss -> List.iter walk ss
    | TIf (_, th, el) ->
      walk th;
      Option.iter walk el
    | TWhile (_, body) | TDo_while (body, _) -> walk body
    | _ -> (
      match store_target s with
      | Some (key, pos, what) when List.mem key (Liveness.kills_after live s)
        ->
        out :=
          Diag.make ~code:"JL002" ~severity:Diag.Warning ~pos
            (Printf.sprintf
               "dead store: the %s of '%s' is never read (the variable dies \
                here)"
               what (short_name key))
          :: !out
      | _ -> ())
  in
  List.iter walk m.tm_body;
  !out

(* -- JL003 ----------------------------------------------------------------- *)

let never_read (prog : tprogram) : Diag.t list =
  (* one program-wide read set is enough: variable keys are globally
     unique ("Cls.meth.local") *)
  let reads = ref S.empty in
  let rec walk (s : tstmt) =
    match s with
    | TBlock ss -> List.iter walk ss
    | TIf (c, th, el) ->
      reads := cond_uses c !reads;
      walk th;
      Option.iter walk el
    | TWhile (c, body) | TDo_while (body, c) ->
      reads := cond_uses c !reads;
      walk body
    | TDecl (_, Some e, _) | TAssign (_, _, e, _) | TExpr e | TPrint e ->
      reads := expr_uses e !reads
    | TOp_assign (_, key, kind, e, _) ->
      reads := expr_uses e !reads;
      if kind = Vlocal || kind = Vparam then reads := S.add key !reads
    | TReturn (Some e, _) -> reads := expr_uses e !reads
    | TDecl (_, None, _) | TReturn (None, _) -> ()
  in
  List.iter
    (fun q -> List.iter walk (Hashtbl.find prog.methods q).tm_body)
    prog.method_order;
  Hashtbl.fold
    (fun key (vi : var_info) acc ->
      match vi.v_kind with
      | Vfield -> acc
      | Vlocal | Vparam ->
        if S.mem key !reads then acc
        else
          Diag.make ~code:"JL003" ~severity:Diag.Warning ~pos:vi.v_pos
            (Printf.sprintf "relation %s '%s' is never read"
               (match vi.v_kind with
               | Vparam -> "parameter"
               | _ -> "variable")
               (short_name key))
          :: acc)
    prog.vars []

let check (prog : tprogram) : Diag.t list =
  List.concat_map
    (fun q -> dead_stores (Hashtbl.find prog.methods q))
    prog.method_order
  @ never_read prog
