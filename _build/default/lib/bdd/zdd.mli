(** Zero-suppressed decision diagrams (Minato [18]).

    §4.1 of the paper reports work on a ZDD backend for Jedd, motivated
    by points-to sets being sparse.  This module implements the ZDD
    kernel — hash-consed nodes with the zero-suppression rule, the set
    operations, counting — plus conversions to and from BDDs over a
    fixed variable universe, so the [ablation-zdd] benchmark can compare
    representation sizes on real points-to relations.

    A ZDD represents a family of sets of variables; under the fixed
    universe [0 .. n-1], a set corresponds to the bit string with ones
    at its members, so the same relation encodings apply. *)

type t
(** A ZDD manager (separate node space from the BDD manager). *)

type node = int

val create : ?node_capacity:int -> unit -> t
val zero : node
(** The empty family. *)

val one : node
(** The family containing only the empty set. *)

val new_var : t -> int
val num_vars : t -> int

val singleton_var : t -> int -> node
(** The family [{ {v} }]. *)

val union : t -> node -> node -> node
val inter : t -> node -> node -> node
val diff : t -> node -> node -> node

val change : t -> node -> int -> node
(** Toggle variable [v] in every member set. *)

val subset1 : t -> node -> int -> node
(** Members containing [v], with [v] removed. *)

val subset0 : t -> node -> int -> node
(** Members not containing [v]. *)

val count : t -> node -> int
(** Number of member sets. *)

val nodecount : t -> node -> int

val of_assignments : t -> nvars:int -> bool array list -> node
(** Build the family of the given bit strings (over the fixed universe
    [0 .. nvars-1]). *)

val iter_sets : t -> node -> (int list -> unit) -> unit
(** Iterate member sets as sorted variable lists. *)

val of_bdd : ?over:int list -> Manager.t -> Manager.node -> t -> node
(** Convert a BDD into the equivalent ZDD family of satisfying
    assignments.  [over] fixes the universe (sorted BDD levels; ZDD
    variable [i] is [List.nth over i]); it defaults to all the
    manager's variables and must cover the BDD's support. *)
