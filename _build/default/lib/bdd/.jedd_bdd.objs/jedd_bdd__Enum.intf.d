lib/bdd/enum.mli: Manager
