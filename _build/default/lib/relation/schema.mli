(** Schemas: the ordered list of attributes of a relation together with
    the physical domain each attribute is currently stored in.

    The paper's static type of a relation is the attribute *set*; the
    physical-domain assignment is the extra run-time information the
    translator threads through generated code.  This module keeps both
    and enforces the well-formedness rules: no duplicate attribute, no
    two attributes sharing a physical domain, every physical domain wide
    enough for its attribute's domain. *)

type entry = { attr : Attribute.t; phys : Physdom.t }
type t

val make : entry list -> t
(** Raises [Invalid_argument] if an attribute or physical domain is
    duplicated, or a physical domain is too narrow for its attribute. *)

val entries : t -> entry list
(** In declaration order. *)

val attrs : t -> Attribute.t list
val arity : t -> int
val mem : t -> Attribute.t -> bool
val find : t -> Attribute.t -> entry
(** Raises [Not_found]. *)

val phys_of : t -> Attribute.t -> Physdom.t

val same_attrs : t -> t -> bool
(** Set equality of the attribute lists (ignoring order and physical
    domains) — the paper's notion of compatible schemas. *)

val same_layout : t -> t -> bool
(** Same attributes *and* the same physical domain for each — when BDD
    roots are directly comparable. *)

val levels : t -> int array
(** All BDD levels used by the schema's physical domains, sorted. *)

val pp : Format.formatter -> t -> unit
(** Prints [<attr:PD, ...>] in the paper's declaration syntax. *)

val to_string : t -> string
