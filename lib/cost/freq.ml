open Jedd_lang.Tast
module G = Jedd_dataflow.Graph
module Cfg = Jedd_lang.Cfg

let weight_cap = 1_000_000_000

let sat_mul a b =
  if a <= 0 || b <= 0 then 0
  else if a > weight_cap / b then weight_cap
  else a * b

(* -- expression walks ------------------------------------------------------ *)

let rec iter_expr f (e : texpr) =
  f e;
  match e.edesc with
  | TVar _ | TEmpty | TFull | TLiteral _ -> ()
  | TBinop (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | TReplace (_, a) -> iter_expr f a
  | TJoin (_, a, _, b, _) ->
    iter_expr f a;
    iter_expr f b
  | TCall (_, args) ->
    List.iter
      (function Targ_rel e -> iter_expr f e | Targ_obj _ -> ())
      args

let rec iter_cond f (c : tcond) =
  match c with
  | TCmp_eq (a, b) | TCmp_ne (a, b) ->
    iter_expr f a;
    iter_expr f b
  | TNot c -> iter_cond f c
  | TAnd (a, b) | TOr (a, b) ->
    iter_cond f a;
    iter_cond f b
  | TBool _ -> ()

let stmt_exprs (s : tstmt) =
  match s with
  | TDecl (_, e, _) | TReturn (e, _) -> Option.to_list e
  | TAssign (_, _, e, _) | TOp_assign (_, _, _, e, _) -> [ e ]
  | TExpr e | TPrint e -> [ e ]
  | TIf _ | TWhile _ | TDo_while _ | TBlock _ -> []

let rec cond_has_cmp = function
  | TCmp_eq _ | TCmp_ne _ -> true
  | TNot c -> cond_has_cmp c
  | TAnd (a, b) | TOr (a, b) -> cond_has_cmp a || cond_has_cmp b
  | TBool _ -> false

(* -- per-method local analysis --------------------------------------------- *)

type site = { w : int; d : int; fix : bool }

type local = {
  l_cfg : Cfg.ast_cfg;
  l_node_w : int array;  (* per-node product of enclosing loop factors *)
  l_depth : int array;
  l_fix : bool array;  (* node sits in a fixed-point loop *)
  l_calls : (string * int) list;  (* callee, local weight at the site *)
}

let analyze_method ~loop_factor ~fixpoint_factor (m : tmeth) : local =
  let cfg = Cfg.build_ast m in
  let g = cfg.Cfg.agraph in
  let n = G.size g in
  let loops = Loops.natural_loops g ~entry:cfg.Cfg.aentry in
  let depth = Loops.nest_depth g loops in
  let node_w = Array.make n 1 in
  let fix = Array.make n false in
  List.iter
    (fun (l : Loops.loop) ->
      let in_body = Array.make n false in
      List.iter (fun i -> in_body.(i) <- true) l.Loops.body;
      (* fixed-point loop: some condition in the body compares
         relations and can leave the body (the loop's exit test) *)
      let is_fix =
        List.exists
          (fun i ->
            match cfg.Cfg.anodes.(i) with
            | Cfg.A_cond (c, _) ->
              cond_has_cmp c
              && List.exists (fun s -> not in_body.(s)) (G.succs g i)
            | _ -> false)
          l.Loops.body
      in
      let f = if is_fix then fixpoint_factor else loop_factor in
      List.iter
        (fun i ->
          node_w.(i) <- sat_mul node_w.(i) f;
          if is_fix then fix.(i) <- true)
        l.Loops.body)
    loops;
  (* call sites, weighted by the node they execute at *)
  let calls = ref [] in
  let call_at node e =
    match e.edesc with
    | TCall (callee, _) -> calls := (callee, node_w.(node)) :: !calls
    | _ -> ()
  in
  let cond_node =
    (* while / do-while condition nodes are not in any side table; find
       them by physical identity in the node array *)
    let all = ref [] in
    Array.iteri
      (fun i k ->
        match k with Cfg.A_cond (c, _) -> all := (c, i) :: !all | _ -> ())
      cfg.Cfg.anodes;
    fun c -> List.find_opt (fun (c0, _) -> c0 == c) !all |> Option.map snd
  in
  let rec walk s =
    match s with
    | TBlock ss -> List.iter walk ss
    | TIf (c, th, el) ->
      (match Cfg.Stmt_tbl.find_opt cfg.Cfg.aif_nodes s with
      | Some (cn, _) -> iter_cond (call_at cn) c
      | None -> ());
      walk th;
      Option.iter walk el
    | TWhile (c, body) ->
      Option.iter (fun cn -> iter_cond (call_at cn) c) (cond_node c);
      walk body
    | TDo_while (body, c) ->
      Option.iter (fun cn -> iter_cond (call_at cn) c) (cond_node c);
      walk body
    | TDecl _ | TAssign _ | TOp_assign _ | TExpr _ | TPrint _ | TReturn _
      -> (
      match Cfg.Stmt_tbl.find_opt cfg.Cfg.astmt_node s with
      | Some n -> List.iter (iter_expr (call_at n)) (stmt_exprs s)
      | None -> ())
  in
  List.iter walk m.tm_body;
  { l_cfg = cfg; l_node_w = node_w; l_depth = depth; l_fix = fix;
    l_calls = !calls }

(* -- interprocedural propagation ------------------------------------------- *)

module W_lattice = struct
  type t = int

  let bottom = 0
  let join = max
  let equal = Int.equal
end

module W_solver = Jedd_dataflow.Solver (W_lattice)

(* The interprocedural half of the analysis, freed from the typed AST:
   saturating frequency propagation over any call multigraph whose nodes
   are dense integers.  Each edge routes through its own call-site node
   carrying the multiplicative factor, exactly like the named version
   below, so shared callees join with [max] and recursion saturates at
   [weight_cap]. *)
let graph_weights ~n ~entries ~edges =
  let cg = G.create () in
  (* method nodes first: ids 0..n-1 (G.add_node allocates densely) *)
  for _ = 1 to n do
    ignore (G.add_node cg)
  done;
  let cs_weight = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, f) ->
      if src >= 0 && src < n && dst >= 0 && dst < n then begin
        let c = G.add_node cg in
        Hashtbl.replace cs_weight c (max 1 f);
        G.add_edge cg src c;
        G.add_edge cg c dst
      end)
    edges;
  let entry = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then entry.(i) <- true) entries;
  let res =
    W_solver.run cg Jedd_dataflow.Forward
      ~init:(fun i -> if i < n && entry.(i) then 1 else 0)
      ~transfer:(fun i fact ->
        if i < n then if entry.(i) then max 1 fact else fact
        else sat_mul fact (Hashtbl.find cs_weight i))
  in
  Array.init n res.W_solver.after

type t = {
  sites : (int, site) Hashtbl.t;  (* eid -> final weight/depth/fixpoint *)
  meths : (string, int) Hashtbl.t;
}

let analyze ?(loop_factor = 8) ?(fixpoint_factor = 32) (p : tprogram) : t =
  let locals =
    List.filter_map
      (fun name ->
        Option.map
          (fun m -> (name, analyze_method ~loop_factor ~fixpoint_factor m, m))
          (Hashtbl.find_opt p.methods name))
      p.method_order
  in
  (* call graph: one node per method plus one per call site; a call
     site multiplies its caller's weight by the site's loop weight *)
  let cg = G.create () in
  let midx = Hashtbl.create 16 in
  List.iter
    (fun (name, _, _) -> Hashtbl.replace midx name (G.add_node cg))
    locals;
  let cs_weight = Hashtbl.create 16 in
  List.iter
    (fun (name, l, _) ->
      let im = Hashtbl.find midx name in
      List.iter
        (fun (callee, w) ->
          match Hashtbl.find_opt midx callee with
          | Some ic ->
            let c = G.add_node cg in
            Hashtbl.replace cs_weight c w;
            G.add_edge cg im c;
            G.add_edge cg c ic
          | None -> ())
        l.l_calls)
    locals;
  let res =
    W_solver.run cg Jedd_dataflow.Forward
      ~init:(fun i -> if Hashtbl.mem cs_weight i then 0 else 1)
      ~transfer:(fun i fact ->
        match Hashtbl.find_opt cs_weight i with
        | Some w -> sat_mul fact w
        | None -> max 1 fact)
  in
  let meths = Hashtbl.create 16 in
  List.iter
    (fun (name, _, _) ->
      Hashtbl.replace meths name
        (max 1 (res.W_solver.after (Hashtbl.find midx name))))
    locals;
  (* second pass: stamp every expression id with its node's weight
     scaled by the method weight *)
  let sites = Hashtbl.create 64 in
  List.iter
    (fun (name, l, m) ->
      let mw = Hashtbl.find meths name in
      let cfg = l.l_cfg in
      let record node e =
        let s =
          {
            w = sat_mul mw l.l_node_w.(node);
            d = l.l_depth.(node);
            fix = l.l_fix.(node);
          }
        in
        iter_expr (fun e -> Hashtbl.replace sites e.eid s) e
      in
      let record_cond node c = iter_cond (record node) c in
      let cond_node =
        let all = ref [] in
        Array.iteri
          (fun i k ->
            match k with
            | Cfg.A_cond (c, _) -> all := (c, i) :: !all
            | _ -> ())
          cfg.Cfg.anodes;
        fun c -> List.find_opt (fun (c0, _) -> c0 == c) !all |> Option.map snd
      in
      let rec walk s =
        match s with
        | TBlock ss -> List.iter walk ss
        | TIf (c, th, el) ->
          (match Cfg.Stmt_tbl.find_opt cfg.Cfg.aif_nodes s with
          | Some (cn, _) -> record_cond cn c
          | None -> ());
          walk th;
          Option.iter walk el
        | TWhile (c, body) ->
          Option.iter (fun cn -> record_cond cn c) (cond_node c);
          walk body
        | TDo_while (body, c) ->
          Option.iter (fun cn -> record_cond cn c) (cond_node c);
          walk body
        | TDecl _ | TAssign _ | TOp_assign _ | TExpr _ | TPrint _
        | TReturn _ -> (
          match Cfg.Stmt_tbl.find_opt cfg.Cfg.astmt_node s with
          | Some n -> List.iter (record n) (stmt_exprs s)
          | None -> ())
      in
      List.iter walk m.tm_body)
    locals;
  { sites; meths }

let method_weight t name =
  Option.value (Hashtbl.find_opt t.meths name) ~default:1

let site t eid = Hashtbl.find_opt t.sites eid
let weight t eid = match site t eid with Some s -> s.w | None -> 1
let depth t eid = match site t eid with Some s -> s.d | None -> 0
let in_fixpoint t eid = match site t eid with Some s -> s.fix | None -> false
