lib/jedd/encode.ml: Array Constraints Flowpath Hashtbl Jedd_sat List Option Printf String Sys Tast
