(* Reproduction of the paper's §3.3.3 error reporting: the unsat-core
   driven "Conflict between ... over physical domain T1" message, and
   the fix that makes the program compile — plus the same unsat-core
   machinery aimed at programs that DO compile: the jeddlint replace
   audit explains every surviving replace with a minimized core.

   Run with:  dune exec examples/error_messages.exe *)

module Driver = Jedd_lang.Driver

let preamble =
  "domain Type 8;\n\
   domain Signature 8;\n\
   attribute rectype : Type;\n\
   attribute tgttype : Type;\n\
   attribute subtype : Type;\n\
   attribute supertype : Type;\n\
   attribute signature : Signature;\n\
   physdom T1;\n\
   physdom T2;\n\
   physdom S1;\n"

(* The erroneous declarations of §3.3.3: the result of the compose needs
   physical domains for both rectype and supertype, but only T1 is
   available for the pair. *)
let broken =
  preamble
  ^ "class Test {\n\
     \  <rectype:T1, signature:S1, tgttype:T2> toResolve;\n\
     \  <supertype:T1, subtype:T2> extend;\n\
     \  public void go() {\n\
     \    <rectype, signature, supertype> result = toResolve {tgttype} <> extend {subtype};\n\
     \  }\n\
     }\n"

(* The paper's fix: assign supertype a fresh physical domain T3. *)
let fixed =
  preamble ^ "physdom T3;\n"
  ^ "class Test {\n\
     \  <rectype:T1, signature:S1, tgttype:T2> toResolve;\n\
     \  <supertype:T1, subtype:T2> extend;\n\
     \  public void go() {\n\
     \    <rectype, signature, supertype:T3> result = toResolve {tgttype} <> extend {subtype};\n\
     \  }\n\
     }\n"

(* A second failure mode: an attribute no specified physical domain can
   reach (detected while constructing clause 6). *)
let unreachable =
  preamble
  ^ "class Lonely {\n\
     \  <rectype> floating;\n\
     \  public void go() { floating = floating | floating; }\n\
     }\n"

let show title src =
  Printf.printf "== %s ==\n" title;
  (match Driver.compile [ ("Test.jedd", src) ] with
  | Ok c ->
    let s = c.Driver.assignment.Jedd_lang.Encode.stats in
    Printf.printf
      "compiled OK (SAT: %d vars, %d clauses, solved in %.4f s)\n"
      s.Jedd_lang.Encode.sat_vars s.Jedd_lang.Encode.sat_clauses
      s.Jedd_lang.Encode.solve_seconds
  | Error e -> Printf.printf "%s\n" (Driver.error_to_string e));
  print_newline ()

(* Two fields pinned to different physical domains: assigning one to
   the other compiles, but costs a BDD copy — jeddlint (JL007) reports
   the replace and the SAT core proving it unavoidable. *)
let forced_replace =
  preamble
  ^ "class Pins {\n\
     \  <rectype:T1> one;\n\
     \  <rectype:T2> two;\n\
     \  public void go() { two = one; }\n\
     }\n"

let show_lint title src =
  Printf.printf "== %s ==\n" title;
  (match Driver.compile [ ("Test.jedd", src) ] with
  | Ok c ->
    let report = Jedd_lint.Driver.lint c in
    print_endline (Jedd_lint.Driver.to_text report)
  | Error e -> Printf.printf "%s\n" (Driver.error_to_string e));
  print_newline ()

let () =
  show "the erroneous program of Section 3.3.3" broken;
  show "the paper's fix (supertype:T3)" fixed;
  show "unreachable-attribute failure mode" unreachable;
  show_lint "jeddlint: a forced replace, explained by its SAT core"
    forced_replace
