(* jeddd: the persistent analysis daemon.

   Obtains an analysis snapshot — warm from a snapshot file or the
   content-addressed store, or cold by running the combined Figure 2
   pipeline — then serves concurrent queries over a Unix socket in the
   jeddd line/JSON protocol (see lib/server/protocol.ml).  The whole
   point: the fixed-point computation happens at most once, queries
   thereafter are BDD lookups. *)

open Cmdliner
module Workload = Jedd_minijava.Workload
module Suite = Jedd_analyses.Suite
module Snapshot = Jedd_store.Snapshot
module Cas = Jedd_store.Cas

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let backend_of_string s =
  try Jedd_relation.Backend.kind_of_string s
  with Invalid_argument msg -> fail "jeddd: %s" msg

(* --jobs N, then JEDD_JOBS, then the recommended domain count. *)
let resolve_jobs jobs =
  let parse s =
    try Jedd_bdd.Par.jobs_of_string s
    with Invalid_argument msg -> fail "jeddd: %s" msg
  in
  match (jobs, Sys.getenv_opt "JEDD_JOBS") with
  | Some s, _ -> parse s
  | None, Some s -> parse s
  | None, None -> Jedd_bdd.Par.default_jobs ()

let load_or_compute ~snapshot_file ~store_dir ~store_name ~benchmark ~backend
    ~node_limit ~save ~tag ~jobs =
  let backend = Option.map backend_of_string backend in
  let t0 = Unix.gettimeofday () in
  let snap, origin =
    match (snapshot_file, store_dir, store_name) with
    | Some file, _, _ ->
      (Snapshot.load_file ?backend file, Printf.sprintf "snapshot %s" file)
    | None, Some dir, Some name -> (
      let cas = Cas.open_ dir in
      match Cas.resolve cas name with
      | None -> fail "jeddd: %S does not name a snapshot in store %s" name dir
      | Some digest -> (
        match Cas.get cas digest with
        | None -> fail "jeddd: store object %s is missing" digest
        | Some data ->
          ( Snapshot.of_bytes ?backend data,
            Printf.sprintf "store %s/%s" dir name )))
    | None, Some _, None -> fail "jeddd: --store needs --name"
    | None, None, Some _ -> fail "jeddd: --name needs --store"
    | None, None, None ->
      let profile =
        if benchmark = "tiny" then Workload.tiny
        else Workload.profile_named benchmark
      in
      let p = Workload.generate profile in
      let inst, _ = Suite.run_combined ?backend ?node_limit ~jobs p in
      ( Suite.snapshot ~meta:[ ("workload", benchmark) ] inst,
        Printf.sprintf "cold run of %s" benchmark )
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "jeddd: ready from %s in %.3f s (%d relations)\n%!" origin
    elapsed (List.length snap.Snapshot.relations);
  (match save with
  | Some path ->
    Snapshot.save_file path snap;
    Printf.printf "jeddd: saved snapshot to %s\n%!" path
  | None -> ());
  (match (tag, store_dir) with
  | Some name, Some dir ->
    let cas = Cas.open_ dir in
    let digest = Cas.put cas (Snapshot.to_bytes snap) in
    Cas.tag cas name digest;
    Printf.printf "jeddd: stored as %s (ref %s)\n%!" digest name
  | Some _, None -> fail "jeddd: --tag needs --store"
  | None, _ -> ());
  snap

let run socket snapshot_file store_dir store_name benchmark backend node_limit
    save tag jobs =
  let jobs = resolve_jobs jobs in
  let snap =
    try
      load_or_compute ~snapshot_file ~store_dir ~store_name ~benchmark
        ~backend ~node_limit ~save ~tag ~jobs
    with Snapshot.Corrupt msg -> fail "jeddd: corrupt snapshot: %s" msg
  in
  let server = Jedd_server.Server.create ~socket_path:socket snap in
  Printf.printf "jeddd: listening on %s (send {\"verb\":\"shutdown\"} to stop)\n%!"
    socket;
  Jedd_server.Server.serve server;
  Printf.printf "jeddd: stopped\n%!"

let socket_arg =
  Arg.(
    value & opt string "jeddd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:"Warm-start from a snapshot file written by --save or \
              jedd-analyze --save-snapshot")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Content-addressed snapshot store (with --name to load, \
              --tag to publish)")

let name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"REF"
        ~doc:"Ref name, digest, or unique digest prefix to load from --store")

let benchmark_arg =
  Arg.(
    value & opt string "compress"
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Workload for a cold run when no snapshot source is given")

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"NAME"
        ~doc:"Relation backend: $(b,incore) or $(b,extmem); falls back to \
              JEDD_BACKEND")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"In-core BDD node-table cap")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Also write the (loaded or computed) snapshot to FILE")

let tag_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tag" ] ~docv:"REF"
        ~doc:"Also publish the snapshot into --store under this ref name")

let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for a cold analysis run (1..64); falls back to JEDD_JOBS, \
           then to the recommended domain count.  Snapshot loads and query \
           serving are unaffected.")

let cmd =
  Cmd.v
    (Cmd.info "jeddd" ~version:Jedd_relation.Version.banner
       ~doc:
         "Persistent relation store daemon: load or compute an analysis \
          snapshot once, answer concurrent queries over a Unix socket")
    Term.(
      const run $ socket_arg $ snapshot_arg $ store_arg $ name_arg
      $ benchmark_arg $ backend_arg $ node_limit_arg $ save_arg $ tag_arg
      $ jobs_arg)

let () = exit (Cmd.eval cmd)
