module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Rep = Jedd_bdd.Replace
module Count = Jedd_bdd.Count
module Enum = Jedd_bdd.Enum
module Fdd = Jedd_bdd.Fdd
module Store = Jedd_extmem.Store
module E = Jedd_extmem.Ebdd
module Mtb = Jedd_mtbdd.Mtbdd

module type BACKEND = sig
  type state
  type node

  val zero : state -> node
  val one : state -> node
  val addref : state -> node -> unit
  val delref : state -> node -> unit
  val band : state -> node -> node -> node
  val bor : state -> node -> node -> node
  val bdiff : state -> node -> node -> node
  val cube : state -> (int * bool) list -> node
  val biimp_vars : state -> int -> int -> node
  val ithval : state -> Fdd.block -> int -> node
  val less_than : state -> Fdd.block -> int -> node
  val restrict : state -> node -> (int * bool) list -> node
  val exist : state -> node -> int list -> node
  val replace : state -> node -> (int * int) list -> node

  val relprod_replace :
    state -> node -> node -> (int * int) list -> int list -> node

  val nodecount : state -> node -> int
  val satcount : state -> node -> over:int list -> int
  val shape : state -> node -> int array

  val iter_assignments :
    state -> node -> levels:int array -> (bool array -> unit) -> unit

  val equal : state -> node -> node -> bool
  val is_zero : state -> node -> bool
  val checkpoint : state -> unit
  val supports_reorder : bool
  val freeze : state -> unit
  val frozen : state -> bool
end

module Incore = struct
  type state = M.t
  type node = M.node

  let zero (_ : state) = M.zero
  let one (_ : state) = M.one
  let addref m n = ignore (M.addref m n)
  let delref m n = M.delref m n
  let band = Ops.band
  let bor = Ops.bor
  let bdiff = Ops.bdiff
  let cube = Ops.cube
  let biimp_vars m l1 l2 = Ops.bbiimp m (M.var m l1) (M.var m l2)
  let ithval = Fdd.ithvar
  let less_than = Fdd.less_than_const
  let restrict = Ops.restrict

  let exist m n levels =
    if levels = [] then n else Quant.exist m n (Quant.varset m levels)

  let replace m n pairs = Rep.replace m n (Rep.make_perm m pairs)

  let relprod_replace m f g pairs qlevels =
    let perm = Rep.make_perm m pairs in
    let cube = if qlevels = [] then M.one else Quant.varset m qlevels in
    Rep.relprod_replace m f g perm cube

  let nodecount = Count.nodecount
  let satcount = Count.satcount
  let shape = Count.shape
  let iter_assignments = Enum.iter_assignments
  let equal (_ : state) a b = a = b
  let is_zero (_ : state) n = n = M.zero
  let checkpoint = M.checkpoint
  let supports_reorder = true
  let freeze = M.freeze
  let frozen = M.frozen
end

type extmem_state = { xmgr : M.t; xstore : Store.t }

module Extmem = struct
  type state = extmem_state
  type node = E.t

  let zero (_ : state) = E.tfalse
  let one (_ : state) = E.ttrue

  (* external nodes are ordinary GC'd values; files are reclaimed by
     finalisers *)
  let addref (_ : state) (_ : node) = ()
  let delref (_ : state) (_ : node) = ()
  let band s = E.band s.xstore
  let bor s = E.bor s.xstore
  let bdiff s = E.bdiff s.xstore
  let cube (_ : state) assignment = E.cube assignment
  let biimp_vars (_ : state) l1 l2 = E.biimp_levels l1 l2

  let block_levels s block = Fdd.levels s.xmgr block (* msb first *)

  let ithval s block v =
    let levels = block_levels s block in
    let w = Array.length levels in
    E.cube
      (List.init w (fun i -> (levels.(i), (v lsr (w - 1 - i)) land 1 = 1)))

  let less_than s block k =
    E.less_than_const (Array.to_list (block_levels s block)) k

  let restrict s n assignment = E.restrict s.xstore assignment n
  let exist s n levels = E.exist s.xstore levels n
  let replace s n pairs = E.replace s.xstore pairs n

  let relprod_replace s f g pairs qlevels =
    E.relprod_replace s.xstore f g pairs qlevels

  let nodecount (_ : state) n = E.nodecount n
  let satcount s n ~over = E.satcount s.xstore ~over n
  let shape s n = E.shape ~num_vars:(M.num_vars s.xmgr) n
  let iter_assignments s n ~levels k = E.iter_assignments s.xstore ~levels n k
  let equal (_ : state) a b = E.equal a b
  let is_zero (_ : state) n = E.equal n E.tfalse
  let checkpoint (_ : state) = ()
  let supports_reorder = false

  (* The spill store appends node files per operation; there is no
     read-only arena to pin, so serving must stay on the in-core
     backend. *)
  let freeze (_ : state) =
    invalid_arg "Backend.freeze: extmem backend cannot be frozen"

  let frozen (_ : state) = false
end

type mtbdd_state = { mmgr : M.t; mstore : Mtb.t }

(* Boolean relations in a terminal-valued store are the 0/1 embedding:
   conjunction is pointwise [Mul] (so intersecting with a 0/1 mask
   preserves weights instead of clamping them), disjunction is [Max],
   difference is [Diff], and quantification aggregates terminals with
   [Max].  Under that reading every BACKEND operation below is
   bit-identical to the in-core engine on 0/1 diagrams — the
   cross-backend differential tests lean on exactly this. *)
module Mtbdd_b = struct
  type state = mtbdd_state
  type node = Mtb.node

  let zero s = Mtb.zero s.mstore
  let one s = Mtb.one s.mstore
  let addref s n = Mtb.addref s.mstore n
  let delref s n = Mtb.delref s.mstore n
  let band s = Mtb.apply s.mstore Mtb.Mul
  let bor s = Mtb.apply s.mstore Mtb.Max
  let bdiff s = Mtb.apply s.mstore Mtb.Diff

  let cube s assignment =
    let sorted =
      List.sort (fun (a, _) (b, _) -> compare b a) assignment
    in
    List.fold_left
      (fun acc (lvl, sign) ->
        if sign then Mtb.mk s.mstore lvl (Mtb.zero s.mstore) acc
        else Mtb.mk s.mstore lvl acc (Mtb.zero s.mstore))
      (Mtb.one s.mstore) sorted

  let biimp_vars s l1 l2 =
    let st = s.mstore in
    let lo_l = Int.min l1 l2 and hi_l = Int.max l1 l2 in
    let eq_hi = Mtb.mk st hi_l (Mtb.zero st) (Mtb.one st) in
    let eq_lo = Mtb.mk st hi_l (Mtb.one st) (Mtb.zero st) in
    Mtb.mk st lo_l eq_lo eq_hi

  let block_levels s block = Fdd.levels s.mmgr block (* msb first *)

  let ithval s block v =
    let levels = block_levels s block in
    let w = Array.length levels in
    cube s
      (List.init w (fun i -> (levels.(i), (v lsr (w - 1 - i)) land 1 = 1)))

  let less_than s block k =
    (* build on the shared boolean manager and lift the 0/1 diagram *)
    let bn = M.addref s.mmgr (Fdd.less_than_const s.mmgr block k) in
    let r = Mtb.of_bool s.mstore s.mmgr bn in
    M.delref s.mmgr bn;
    r

  let restrict s n assignment = Mtb.restrict s.mstore n assignment
  let exist s n levels = Mtb.exist s.mstore Mtb.Max_agg n levels
  let replace s n pairs = Mtb.replace s.mstore n pairs

  let relprod_replace s f g pairs qlevels =
    Mtb.relprod_replace s.mstore f g pairs qlevels

  let nodecount s n = Mtb.nodecount s.mstore n
  let satcount s n ~over = Mtb.satcount s.mstore n ~over
  let shape s n = Mtb.shape s.mstore n ~num_vars:(M.num_vars s.mmgr)

  let iter_assignments s n ~levels k =
    Mtb.iter_assignments s.mstore n ~levels k

  let equal (_ : state) a b = a = b
  let is_zero s n = n = Mtb.zero s.mstore

  let checkpoint s =
    (* the boolean manager holds constructor scratch (less_than) *)
    Mtb.checkpoint s.mstore;
    M.checkpoint s.mmgr

  let supports_reorder = false

  (* terminal-valued stores have no read-only arena form *)
  let freeze (_ : state) =
    invalid_arg "Backend.freeze: mtbdd backend cannot be frozen"

  let frozen (_ : state) = false
end

(* dispatch layer *)

module Par = Jedd_bdd.Par
module Lv = Jedd_bdd.Levelized

type kind = [ `Incore | `Extmem | `Hybrid | `Mtbdd ]

type t = {
  knd : kind;
  mgr : M.t;
  ext : extmem_state option;
  mt : mtbdd_state option;
  (* when set (in-core only), conjunction/disjunction/quantification and
     the fused compose kernel run on the work-stealing pool; the extmem
     backend stays single-domain (its page cache and file store are not
     thread-safe, and it trades CPU for I/O anyway — see DESIGN.md) *)
  mutable pool : Par.pool option;
  (* hybrid only: number of upcoming operations for which optimistic
     in-core attempts are suppressed after a node-table exhaustion; see
     [hyb_prefer_incore] *)
  mutable hyb_backoff : int;
}

type node = In of M.node | Ex of E.t | Mt of Mtb.node

let make knd mgr =
  match knd with
  | `Incore ->
    { knd; mgr; ext = None; mt = None; pool = None; hyb_backoff = 0 }
  | `Mtbdd ->
    { knd; mgr; ext = None;
      mt = Some { mmgr = mgr; mstore = Mtb.create () };
      pool = None; hyb_backoff = 0 }
  | `Extmem | `Hybrid ->
    (* The hybrid fallback *resumes* the surrounding computation after
       catching [Out_of_nodes], so exhaustion must not collect: the
       caller's unreferenced intermediates (e.g. a fold accumulator in
       [Relation.of_tuples]) would be recycled under it and the
       resumed operation would export stale handles.  Garbage then
       waits for the next checkpoint, the designated safe point. *)
    if knd = `Hybrid then M.set_gc_on_exhaustion mgr false;
    { knd; mgr;
      ext = Some { xmgr = mgr; xstore = Store.create () };
      mt = None; pool = None; hyb_backoff = 0 }

let kind b = b.knd
let manager b = b.mgr
let store b = Option.map (fun s -> s.xstore) b.ext
let mt_store b = Option.map (fun s -> s.mstore) b.mt

let set_pool b p =
  (match (p, b.knd) with
  | Some _, `Extmem ->
    invalid_arg "Backend.set_pool: extmem backend is single-domain"
  | Some _, `Hybrid ->
    invalid_arg "Backend.set_pool: hybrid backend is single-domain"
  | Some _, `Mtbdd ->
    invalid_arg "Backend.set_pool: mtbdd backend is single-domain"
  | _ -> ());
  b.pool <- p

let pool b = b.pool

let cleanup b =
  match b.ext with None -> () | Some s -> Store.cleanup s.xstore

let ext b =
  match b.ext with
  | Some s -> s
  | None -> invalid_arg "Backend: extmem state on an in-core backend"

let mts b =
  match b.mt with
  | Some s -> s
  | None -> invalid_arg "Backend: mtbdd state on a non-mtbdd backend"

let in_node = function
  | In n -> n
  | Ex _ | Mt _ -> invalid_arg "Backend: foreign node passed to in-core backend"

let ex_node = function
  | Ex n -> n
  | In _ | Mt _ -> invalid_arg "Backend: foreign node passed to extmem backend"

let mt_node = function
  | Mt n -> n
  | In _ | Ex _ -> invalid_arg "Backend: foreign node passed to mtbdd backend"

(* -- hybrid engine choice (ROADMAP item 3) ------------------------------

   A hybrid backend holds both engines and picks one per operation.  The
   costs are asymmetric: a wrong in-core attempt wastes at most one table
   fill before [Manager.Out_of_nodes] aborts it (the operation then
   re-runs on the external engine, so a hybrid universe never aborts
   where pure extmem would complete), while a wrong extmem dispatch pays
   the full file-backed sweep — typically 1-2 orders of magnitude
   slower.  And the [Predict] bounds are saturating worst cases (operand
   products, bit-width caps) that real apply results undercut by orders
   of magnitude.  So dispatch is optimistic first: attempt in-core
   whenever the guaranteed allocation — importing external operands —
   fits in half the remaining headroom.  Only after an attempt has
   actually exhausted the table does the prediction gate engage: for the
   next [hyb_backoff_len] operations only sure fits (prediction plus
   import within half the headroom) run in-core, everything else
   streams.  A success costs nothing; repeated failures degrade to the
   conservative prediction-gated regime instead of thrashing the
   table. *)

let hyb_nodecount b = function
  | In n -> Incore.nodecount b.mgr n
  | Ex n -> E.nodecount n
  | Mt _ -> invalid_arg "Backend: mtbdd node passed to hybrid backend"

let hyb_headroom b =
  match M.node_limit b.mgr with
  | None -> max_int
  | Some limit -> max 0 (limit - M.live_nodes b.mgr)

let hyb_backoff_len = 16

(* keep half the headroom in reserve for the operation's intermediates *)
let hyb_prefer_incore b ~predicted ~import_nodes =
  let h = hyb_headroom b in
  h = max_int
  || Predict.add predicted import_nodes <= h / 2
  ||
  if b.hyb_backoff > 0 then begin
    b.hyb_backoff <- b.hyb_backoff - 1;
    false
  end
  else import_nodes <= h / 2

(* move a root across engines; the in-core root returned by [to_in]
   carries one external reference the caller must drop after the op *)
let hyb_to_ex b = function
  | Ex n -> n
  | In n ->
    let d = Lv.of_manager b.mgr n in
    E.import_blocks (Array.to_list d.Lv.blocks) d.Lv.root
  | Mt _ -> invalid_arg "Backend: mtbdd node passed to hybrid backend"

let hyb_to_in b = function
  | In n ->
    ignore (M.addref b.mgr n);
    n
  | Ex n ->
    let blocks, root = E.export_blocks (ext b).xstore n in
    Lv.to_manager b.mgr { Lv.blocks = Array.of_list blocks; root }
  | Mt _ -> invalid_arg "Backend: mtbdd node passed to hybrid backend"

let hyb_import_cost = function
  | In _ -> 0
  | Ex n -> E.nodecount n
  | Mt _ -> invalid_arg "Backend: mtbdd node passed to hybrid backend"

(* Run [fin] in-core over imported operands, falling back to [fex] on
   node-table exhaustion.  The temporary refs balance [hyb_to_in]'s
   addref/import after the op; the result itself is safe unreferenced —
   no safe point runs before the caller's addref.  Resuming after a
   failed attempt is sound only because the hybrid manager raises
   [Out_of_nodes] without collecting ([set_gc_on_exhaustion false] in
   [make]): the caller's unreferenced in-flight operands survive the
   failure intact, so the fallback exports live nodes. *)
let hyb_run b ~prefer_incore fin fex operands =
  if prefer_incore then begin
    let temps = ref [] in
    let attempt =
      try
        let ins =
          List.map
            (fun v ->
              let n = hyb_to_in b v in
              temps := n :: !temps;
              n)
            operands
        in
        Some (fin ins)
      with M.Out_of_nodes -> None
    in
    List.iter (M.delref b.mgr) !temps;
    match attempt with
    | Some r -> In r
    | None ->
      b.hyb_backoff <- hyb_backoff_len;
      Ex (fex (List.map (hyb_to_ex b) operands))
  end
  else Ex (fex (List.map (hyb_to_ex b) operands))

let hyb2 b ~predicted fin fex x y =
  let prefer_incore =
    hyb_prefer_incore b ~predicted
      ~import_nodes:(hyb_import_cost x + hyb_import_cost y)
  in
  hyb_run b ~prefer_incore
    (function [ a; c ] -> fin b.mgr a c | _ -> assert false)
    (function [ a; c ] -> fex (ext b) a c | _ -> assert false)
    [ x; y ]

let hyb1 b ~predicted fin fex x =
  let prefer_incore =
    hyb_prefer_incore b ~predicted ~import_nodes:(hyb_import_cost x)
  in
  hyb_run b ~prefer_incore
    (function [ a ] -> fin b.mgr a | _ -> assert false)
    (function [ a ] -> fex (ext b) a | _ -> assert false)
    [ x ]

(* constructors build tiny BDDs: prefer the in-core engine unless the
   table is nearly full, in which case the pure-data external form is
   free of allocation pressure *)
let hyb_constructor b fin fex =
  if hyb_headroom b > 1024 then
    try In (fin b.mgr) with M.Out_of_nodes -> Ex (fex (ext b))
  else Ex (fex (ext b))

let zero b =
  match b.knd with
  | `Incore | `Hybrid -> In (Incore.zero b.mgr)
  | `Extmem -> Ex (Extmem.zero (ext b))
  | `Mtbdd -> Mt (Mtbdd_b.zero (mts b))

let one b =
  match b.knd with
  | `Incore | `Hybrid -> In (Incore.one b.mgr)
  | `Extmem -> Ex (Extmem.one (ext b))
  | `Mtbdd -> Mt (Mtbdd_b.one (mts b))

let addref b n =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Incore.addref b.mgr (in_node n)
  | `Extmem, _ | `Hybrid, _ -> Extmem.addref (ext b) (ex_node n)
  | `Mtbdd, _ -> Mtbdd_b.addref (mts b) (mt_node n)

let delref b n =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Incore.delref b.mgr (in_node n)
  | `Extmem, _ | `Hybrid, _ -> Extmem.delref (ext b) (ex_node n)
  | `Mtbdd, _ -> Mtbdd_b.delref (mts b) (mt_node n)

let lift2 b fin fex fmt x y =
  match b.knd with
  | `Incore -> In (fin b.mgr (in_node x) (in_node y))
  | `Extmem | `Hybrid -> Ex (fex (ext b) (ex_node x) (ex_node y))
  | `Mtbdd -> Mt (fmt (mts b) (mt_node x) (mt_node y))

let lift2_par b fpar fin fex fmt x y =
  match (b.knd, b.pool) with
  | `Incore, Some p -> In (fpar p b.mgr (in_node x) (in_node y))
  | `Hybrid, _ ->
    let predicted =
      Predict.apply ~left:(hyb_nodecount b x) ~right:(hyb_nodecount b y)
    in
    hyb2 b ~predicted fin fex x y
  | _ -> lift2 b fin fex fmt x y

let band b = lift2_par b Par.band Incore.band Extmem.band Mtbdd_b.band
let bor b = lift2_par b Par.bor Incore.bor Extmem.bor Mtbdd_b.bor
let bdiff b = lift2_par b Par.bdiff Incore.bdiff Extmem.bdiff Mtbdd_b.bdiff

let cube b assignment =
  match b.knd with
  | `Incore -> In (Incore.cube b.mgr assignment)
  | `Extmem -> Ex (Extmem.cube (ext b) assignment)
  | `Mtbdd -> Mt (Mtbdd_b.cube (mts b) assignment)
  | `Hybrid ->
    hyb_constructor b
      (fun m -> Incore.cube m assignment)
      (fun s -> Extmem.cube s assignment)

let biimp_vars b l1 l2 =
  match b.knd with
  | `Incore -> In (Incore.biimp_vars b.mgr l1 l2)
  | `Extmem -> Ex (Extmem.biimp_vars (ext b) l1 l2)
  | `Mtbdd -> Mt (Mtbdd_b.biimp_vars (mts b) l1 l2)
  | `Hybrid ->
    hyb_constructor b
      (fun m -> Incore.biimp_vars m l1 l2)
      (fun s -> Extmem.biimp_vars s l1 l2)

let ithval b block v =
  match b.knd with
  | `Incore -> In (Incore.ithval b.mgr block v)
  | `Extmem -> Ex (Extmem.ithval (ext b) block v)
  | `Mtbdd -> Mt (Mtbdd_b.ithval (mts b) block v)
  | `Hybrid ->
    hyb_constructor b
      (fun m -> Incore.ithval m block v)
      (fun s -> Extmem.ithval s block v)

let less_than b block k =
  match b.knd with
  | `Incore -> In (Incore.less_than b.mgr block k)
  | `Extmem -> Ex (Extmem.less_than (ext b) block k)
  | `Mtbdd -> Mt (Mtbdd_b.less_than (mts b) block k)
  | `Hybrid ->
    hyb_constructor b
      (fun m -> Incore.less_than m block k)
      (fun s -> Extmem.less_than s block k)

let restrict b n assignment =
  match b.knd with
  | `Incore -> In (Incore.restrict b.mgr (in_node n) assignment)
  | `Extmem -> Ex (Extmem.restrict (ext b) (ex_node n) assignment)
  | `Mtbdd -> Mt (Mtbdd_b.restrict (mts b) (mt_node n) assignment)
  | `Hybrid ->
    hyb1 b
      ~predicted:(Predict.replace ~nodes:(hyb_nodecount b n))
      (fun m x -> Incore.restrict m x assignment)
      (fun s x -> Extmem.restrict s x assignment)
      n

let exist b n levels =
  match (b.knd, b.pool) with
  | `Incore, Some p when levels <> [] ->
    In (Par.exist p b.mgr (in_node n) (Quant.varset b.mgr levels))
  | `Incore, _ -> In (Incore.exist b.mgr (in_node n) levels)
  | `Extmem, _ -> Ex (Extmem.exist (ext b) (ex_node n) levels)
  | `Mtbdd, _ -> Mt (Mtbdd_b.exist (mts b) (mt_node n) levels)
  | `Hybrid, _ ->
    hyb1 b
      ~predicted:(Predict.replace ~nodes:(hyb_nodecount b n))
      (fun m x -> Incore.exist m x levels)
      (fun s x -> Extmem.exist s x levels)
      n

let replace b n pairs =
  match b.knd with
  | `Incore -> In (Incore.replace b.mgr (in_node n) pairs)
  | `Extmem -> Ex (Extmem.replace (ext b) (ex_node n) pairs)
  | `Mtbdd -> Mt (Mtbdd_b.replace (mts b) (mt_node n) pairs)
  | `Hybrid ->
    hyb1 b
      ~predicted:(Predict.replace ~nodes:(hyb_nodecount b n))
      (fun m x -> Incore.replace m x pairs)
      (fun s x -> Extmem.replace s x pairs)
      n

let relprod_replace b f g pairs qlevels =
  match (b.knd, b.pool) with
  | `Incore, Some p ->
    let perm = Rep.make_perm b.mgr pairs in
    let cube =
      if qlevels = [] then M.one else Quant.varset b.mgr qlevels
    in
    In (Par.relprod_replace p b.mgr (in_node f) (in_node g) perm cube)
  | `Incore, None ->
    In (Incore.relprod_replace b.mgr (in_node f) (in_node g) pairs qlevels)
  | `Extmem, _ ->
    Ex (Extmem.relprod_replace (ext b) (ex_node f) (ex_node g) pairs qlevels)
  | `Mtbdd, _ ->
    Mt (Mtbdd_b.relprod_replace (mts b) (mt_node f) (mt_node g) pairs qlevels)
  | `Hybrid, _ ->
    let predicted =
      Predict.product
        ~left:(hyb_nodecount b f)
        ~right:(hyb_nodecount b g)
        ~result_bits:(M.num_vars b.mgr)
    in
    hyb2 b ~predicted
      (fun m x y -> Incore.relprod_replace m x y pairs qlevels)
      (fun s x y -> Extmem.relprod_replace s x y pairs qlevels)
      f g

let nodecount b n =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Incore.nodecount b.mgr (in_node n)
  | `Extmem, _ | `Hybrid, _ -> Extmem.nodecount (ext b) (ex_node n)
  | `Mtbdd, _ -> Mtbdd_b.nodecount (mts b) (mt_node n)

let satcount b n ~over =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Incore.satcount b.mgr (in_node n) ~over
  | `Extmem, _ | `Hybrid, _ -> Extmem.satcount (ext b) (ex_node n) ~over
  | `Mtbdd, _ -> Mtbdd_b.satcount (mts b) (mt_node n) ~over

let shape b n =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Incore.shape b.mgr (in_node n)
  | `Extmem, _ | `Hybrid, _ -> Extmem.shape (ext b) (ex_node n)
  | `Mtbdd, _ -> Mtbdd_b.shape (mts b) (mt_node n)

let iter_assignments b n ~levels k =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ ->
    Incore.iter_assignments b.mgr (in_node n) ~levels k
  | `Extmem, _ | `Hybrid, _ ->
    Extmem.iter_assignments (ext b) (ex_node n) ~levels k
  | `Mtbdd, _ -> Mtbdd_b.iter_assignments (mts b) (mt_node n) ~levels k

let equal b x y =
  match (b.knd, x, y) with
  | `Incore, _, _ | `Hybrid, In _, In _ ->
    Incore.equal b.mgr (in_node x) (in_node y)
  | `Extmem, _, _ -> Extmem.equal (ext b) (ex_node x) (ex_node y)
  | `Mtbdd, _, _ -> Mtbdd_b.equal (mts b) (mt_node x) (mt_node y)
  | `Hybrid, _, _ ->
    (* mixed-engine comparison: export the in-core side (pure, no
       allocation) and compare levelized forms structurally *)
    E.equal (hyb_to_ex b x) (hyb_to_ex b y)

let is_zero b n =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Incore.is_zero b.mgr (in_node n)
  | `Extmem, _ | `Hybrid, _ -> Extmem.is_zero (ext b) (ex_node n)
  | `Mtbdd, _ -> Mtbdd_b.is_zero (mts b) (mt_node n)

let checkpoint b =
  match b.knd with
  | `Incore | `Hybrid -> Incore.checkpoint b.mgr
  | `Extmem -> Extmem.checkpoint (ext b)
  | `Mtbdd -> Mtbdd_b.checkpoint (mts b)

let supports_reorder b =
  match b.knd with
  | `Incore -> Incore.supports_reorder
  (* hybrid roots may live as levelized node files, and mtbdd stores
     bake manager levels into their own node table: levels are fixed *)
  | `Extmem | `Hybrid -> Extmem.supports_reorder
  | `Mtbdd -> Mtbdd_b.supports_reorder

let freeze b =
  match b.knd with
  | `Incore -> Incore.freeze b.mgr
  | `Extmem -> Extmem.freeze (ext b)
  | `Mtbdd -> Mtbdd_b.freeze (mts b)
  | `Hybrid ->
    invalid_arg "Backend.freeze: hybrid backend cannot be frozen"

let frozen b =
  match b.knd with
  | `Incore | `Hybrid -> Incore.frozen b.mgr
  | `Extmem -> Extmem.frozen (ext b)
  | `Mtbdd -> Mtbdd_b.frozen (mts b)

(* -- backend names ------------------------------------------------------ *)

let known_backends = [ "incore"; "extmem"; "hybrid"; "mtbdd" ]

let kind_name = function
  | `Incore -> "incore"
  | `Extmem -> "extmem"
  | `Hybrid -> "hybrid"
  | `Mtbdd -> "mtbdd"

let kind_of_string s =
  match s with
  | "incore" -> `Incore
  | "extmem" -> `Extmem
  | "hybrid" -> `Hybrid
  | "mtbdd" -> `Mtbdd
  | _ ->
    invalid_arg
      (Printf.sprintf "unknown backend %S (known backends: %s)" s
         (String.concat ", " known_backends))

(* -- levelized serialization ------------------------------------------- *)

let export_levelized b n =
  match (b.knd, n) with
  | `Incore, _ | `Hybrid, In _ -> Lv.of_manager b.mgr (in_node n)
  | `Mtbdd, _ ->
    invalid_arg
      "Backend.export_levelized: mtbdd relations carry terminal weights \
       not representable in the boolean node-file format"
  | (`Extmem | `Hybrid), _ ->
    let blocks, root = E.export_blocks (ext b).xstore (ex_node n) in
    { Lv.blocks = Array.of_list blocks; root }

let import_levelized b (d : Lv.t) =
  Lv.validate d;
  match b.knd with
  | `Incore -> In (Lv.to_manager b.mgr d)
  | `Mtbdd ->
    invalid_arg
      "Backend.import_levelized: mtbdd relations carry terminal weights \
       not representable in the boolean node-file format"
  | `Extmem | `Hybrid ->
    (* hybrid imports to the allocation-free external form; ops pull
       roots in-core later if the headroom allows *)
    Array.iter
      (fun (l, _, _) ->
        if l >= M.num_vars b.mgr then
          raise
            (Lv.Malformed
               (Printf.sprintf "dump level %d outside manager order (%d vars)"
                  l (M.num_vars b.mgr))))
      d.Lv.blocks;
    Ex (E.import_blocks (Array.to_list d.Lv.blocks) d.Lv.root)

(* -- weighted (terminal-valued) entry points ---------------------------- *)

(* All of these require an [`Mtbdd] backend ([Invalid_argument]
   otherwise): they are the only operations whose semantics cannot be
   expressed through the boolean BACKEND signature. *)

let wmt b = (mts b).mstore
let wterminal b v = Mt (Mtb.terminal (wmt b) v)
let wvalue_cap = Mtb.value_cap

let wapply b op x y = Mt (Mtb.apply (wmt b) op (mt_node x) (mt_node y))
let wadd b = wapply b Mtb.Add
let wmin b = wapply b Mtb.Min
let wmax b = wapply b Mtb.Max
let wmul b = wapply b Mtb.Mul

let wscale b x k =
  Mt (Mtb.apply (wmt b) Mtb.Mul (mt_node x) (Mtb.terminal (wmt b) k))

(* Sum-aggregated quantification: project levels away adding up the
   per-assignment weights — the counting projection. *)
let wsum_exist b x levels = Mt (Mtb.exist (wmt b) Mtb.Sum (mt_node x) levels)
let wthreshold b x k = Mt (Mtb.threshold (wmt b) (mt_node x) k)

let iter_weighted b n ~levels k =
  Mtb.iter_weighted (wmt b) (mt_node n) ~levels k
