examples/profiling_demo.mli:
