(* Differential tests for the external-memory backend.

   Part 1 drives the levelized streaming BDD engine (Jedd_extmem.Ebdd)
   in lockstep with the in-core manager over randomized formula storms
   — every operation is performed on both representations and the
   results compared tuple-for-tuple and by satcount.  The storm runs
   twice: once with roomy budgets (everything stays in memory) and once
   with tiny budgets that force priority-queue runs, arc files and node
   files onto disk, so the spill machinery is exercised by the same
   assertions.

   Part 2 (added with the relation-backend wiring) runs randomized
   relational programs and the full analysis suite on both backends. *)

module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Count = Jedd_bdd.Count
module Enum = Jedd_bdd.Enum
module Replace = Jedd_bdd.Replace
module Store = Jedd_extmem.Store
module E = Jedd_extmem.Ebdd

let nbits = 8
let formula_bits = 6 (* keep levels 6,7 free as replace targets *)
let all_levels = Array.init nbits (fun i -> i)
let all_levels_l = Array.to_list all_levels

let bits_to_int vals =
  Array.fold_left (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0 vals

let tuples_incore m f =
  let out = ref [] in
  Enum.iter_assignments m f ~levels:all_levels (fun vals ->
      out := bits_to_int vals :: !out);
  List.sort compare !out

let tuples_ext st f =
  let out = ref [] in
  E.iter_assignments st ~levels:all_levels f (fun vals ->
      out := bits_to_int vals :: !out);
  List.sort compare !out

(* random formulas, built simultaneously on both engines *)
let rec gen m st rand depth =
  if depth = 0 then
    match Random.State.int rand 6 with
    | 0 -> (M.one, E.ttrue)
    | 1 -> (M.zero, E.tfalse)
    | 2 | 3 ->
      let l = Random.State.int rand formula_bits in
      (M.var m l, E.ithvar l)
    | _ ->
      let l = Random.State.int rand formula_bits in
      (M.nvar m l, E.nithvar l)
  else
    match Random.State.int rand 9 with
    | 0 | 1 ->
      let a, ea = gen m st rand (depth - 1) and b, eb = gen m st rand (depth - 1) in
      (Ops.band m a b, E.band st ea eb)
    | 2 | 3 ->
      let a, ea = gen m st rand (depth - 1) and b, eb = gen m st rand (depth - 1) in
      (Ops.bor m a b, E.bor st ea eb)
    | 4 ->
      let a, ea = gen m st rand (depth - 1) and b, eb = gen m st rand (depth - 1) in
      (Ops.bdiff m a b, E.bdiff st ea eb)
    | 5 ->
      let a, ea = gen m st rand (depth - 1) and b, eb = gen m st rand (depth - 1) in
      (Ops.bxor m a b, E.bxor st ea eb)
    | 6 ->
      let a, ea = gen m st rand (depth - 1) and b, eb = gen m st rand (depth - 1) in
      (Ops.bbiimp m a b, E.bbiimp st ea eb)
    | 7 ->
      let a, ea = gen m st rand (depth - 1) in
      (Ops.bnot m a, E.bnot st ea)
    | _ ->
      let c, ec = gen m st rand (depth - 1)
      and t, et = gen m st rand (depth - 1)
      and e, ee = gen m st rand (depth - 1) in
      (Ops.ite m c t e, E.ite st ec et ee)

let random_subset rand n =
  let s = List.filter (fun _ -> Random.State.bool rand) (List.init n Fun.id) in
  if s = [] then [ Random.State.int rand n ] else s

(* a random transform: quantification, cofactor or replace *)
let transform m st rand (f, ef) =
  match Random.State.int rand 4 with
  | 0 ->
    let levels = random_subset rand formula_bits in
    ( Quant.exist m f (Quant.varset m levels),
      E.exist st levels ef )
  | 1 ->
    let asg =
      List.map (fun l -> (l, Random.State.bool rand)) (random_subset rand formula_bits)
    in
    (Ops.restrict m f asg, E.restrict st asg ef)
  | 2 ->
    (* order-preserving move: shift the whole formula band up by two,
       into the reserved target levels — the monotone fast path *)
    let pairs = List.init formula_bits (fun l -> (l, l + 2)) in
    ( Replace.replace m f (Replace.make_perm m pairs),
      E.replace st pairs ef )
  | _ ->
    (* a cycle on a small subset: non-order-preserving, exercises the
       temporary-level fallback *)
    let s = List.sort_uniq compare (random_subset rand formula_bits) in
    if List.length s < 2 then (f, ef)
    else
      let rot = List.tl s @ [ List.hd s ] in
      let pairs = List.combine s rot in
      ( Replace.replace m f (Replace.make_perm m pairs),
        E.replace st pairs ef )

let check_same m st what f ef =
  Alcotest.(check (list int))
    (what ^ ": tuple set")
    (tuples_incore m f) (tuples_ext st ef);
  Alcotest.(check int)
    (what ^ ": satcount")
    (Count.satcount m f ~over:all_levels_l)
    (E.satcount st ~over:all_levels_l ef)

let storm ~rounds ~seed st () =
  let rand = Random.State.make [| seed |] in
  let m = M.create ~node_capacity:(1 lsl 16) () in
  for _ = 1 to nbits do
    ignore (M.new_var m)
  done;
  let prev = ref None in
  for round = 1 to rounds do
    let f, ef = gen m st rand (2 + Random.State.int rand 3) in
    let f, ef =
      if Random.State.bool rand then transform m st rand (f, ef) else (f, ef)
    in
    let f, ef =
      if Random.State.int rand 4 = 0 then transform m st rand (f, ef)
      else (f, ef)
    in
    check_same m st (Printf.sprintf "storm round %d" round) f ef;
    (* digest-based equality must coincide with the in-core manager's
       canonical node equality *)
    (match !prev with
    | Some (g, eg) ->
      Alcotest.(check bool)
        (Printf.sprintf "storm round %d: equality agrees" round)
        (f = g) (E.equal ef eg)
    | None -> ());
    prev := Some (f, ef)
  done

let test_storm_memory () =
  let st = Store.create ~pq_budget_bytes:(4 lsl 20) ~mem_node_threshold:(1 lsl 16) () in
  storm ~rounds:120 ~seed:42 st ();
  Alcotest.(check int) "no spills with roomy budgets" 0 (Store.spill_runs st);
  Store.cleanup st

let test_storm_spilling () =
  let st = Store.create ~pq_budget_bytes:512 ~mem_node_threshold:8 () in
  storm ~rounds:120 ~seed:43 st ();
  Alcotest.(check bool) "tiny budgets forced spills" true (Store.spilled_bytes st > 0);
  Store.cleanup st

let test_builders () =
  let st = Store.create () in
  (* less_than_const over ascending msb-first levels: satcount = k *)
  let levels = [ 0; 1; 2; 3; 4 ] in
  for k = 0 to 32 do
    let f = E.less_than_const levels k in
    Alcotest.(check int)
      (Printf.sprintf "less_than_const %d" k)
      k
      (E.satcount st ~over:levels f)
  done;
  (* bi-implication: exactly the two agreeing assignments *)
  let b = E.biimp_levels 1 4 in
  Alcotest.(check int) "biimp satcount" 2 (E.satcount st ~over:[ 1; 4 ] b);
  (* cube: one assignment *)
  let c = E.cube [ (3, true); (0, false); (5, true) ] in
  Alcotest.(check int) "cube satcount" 1 (E.satcount st ~over:[ 0; 3; 5 ] c);
  Store.cleanup st

(* ------------------------------------------------------------------ *)
(* Part 2: the relation runtime on both backends.                      *)

module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Attr = Jedd_relation.Attribute
module Phys = Jedd_relation.Physdom
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation
module Backend = Jedd_relation.Backend
module Workload = Jedd_minijava.Workload
module Suite = Jedd_analyses.Suite

(* One side of the lockstep harness: a universe on the given backend
   with four 3-bit physical domains and the two schema families the
   storm shuffles relations between. *)
type side = {
  u : U.t;
  p : Phys.t array;
  xsch : Schema.t;  (* {a@P0, b@P1} *)
  ysch : Schema.t;  (* {b@P2, c@P3} *)
}

let side ~dom_a ~dom_b ~a ~b ~c kind =
  ignore dom_a;
  ignore dom_b;
  let u = U.create ~backend:kind () in
  let p =
    Array.init 4 (fun i -> Phys.declare u ~name:(Printf.sprintf "P%d" i) ~bits:3)
  in
  let xsch =
    Schema.make [ { Schema.attr = a; phys = p.(0) }; { Schema.attr = b; phys = p.(1) } ]
  in
  let ysch =
    Schema.make [ { Schema.attr = b; phys = p.(2) }; { Schema.attr = c; phys = p.(3) } ]
  in
  { u; p; xsch; ysch }

let random_tuples rand ~size_a ~size_b =
  List.init
    (Random.State.int rand 12)
    (fun _ -> [ Random.State.int rand size_a; Random.State.int rand size_b ])

(* Run the same randomized relational program on the in-core backend and
   one other backend ([`Extmem] by default, [`Mtbdd] for the projected
   differential), comparing tuple sets and sizes after every operation. *)
let relational_storm ?(other = `Extmem) ~rounds ~seed () =
  let rand = Random.State.make [| seed |] in
  let dom_a = Dom.declare ~name:"DA" ~size:8 () in
  let dom_b = Dom.declare ~name:"DB" ~size:5 () in
  (* non-power-of-two *)
  let a = Attr.declare ~name:"a" ~domain:dom_a in
  let b = Attr.declare ~name:"b" ~domain:dom_a in
  let c = Attr.declare ~name:"c" ~domain:dom_b in
  let si = side ~dom_a ~dom_b ~a ~b ~c `Incore in
  let se = side ~dom_a ~dom_b ~a ~b ~c other in
  let fresh_x tuples = (R.of_tuples si.u si.xsch tuples, R.of_tuples se.u se.xsch tuples) in
  let fresh_y tuples = (R.of_tuples si.u si.ysch tuples, R.of_tuples se.u se.ysch tuples) in
  let xs = ref [ fresh_x (random_tuples rand ~size_a:8 ~size_b:8) ] in
  let ys = ref [ fresh_y (random_tuples rand ~size_a:8 ~size_b:5) ] in
  let pick l = List.nth l (Random.State.int rand (List.length l)) in
  let check what (ri, re) =
    Alcotest.(check (list (list int)))
      (what ^ ": tuples") (R.tuples ri) (R.tuples re);
    Alcotest.(check int) (what ^ ": size") (R.size ri) (R.size re);
    Alcotest.(check bool) (what ^ ": emptiness") (R.is_empty ri) (R.is_empty re)
  in
  for round = 1 to rounds do
    let what = Printf.sprintf "round %d" round in
    let result =
      match Random.State.int rand 9 with
      | 0 ->
        let x1i, x1e = pick !xs and x2i, x2e = pick !xs in
        (R.union x1i x2i, R.union x1e x2e)
      | 1 ->
        let x1i, x1e = pick !xs and x2i, x2e = pick !xs in
        (R.inter x1i x2i, R.inter x1e x2e)
      | 2 ->
        let x1i, x1e = pick !xs and x2i, x2e = pick !xs in
        (R.diff x1i x2i, R.diff x1e x2e)
      | 3 ->
        (* join on b, then drop c and restore the canonical layout *)
        let xi, xe = pick !xs and yi, ye = pick !ys in
        let ji = R.join xi [ b ] yi [ b ] and je = R.join xe [ b ] ye [ b ] in
        ( R.coerce (R.project_away ji [ c ]) si.xsch,
          R.coerce (R.project_away je [ c ]) se.xsch )
      | 4 ->
        (* compose over b: {a,c}; c keeps b's role via rename *)
        let xi, xe = pick !xs and yi, ye = pick !ys in
        let ci = R.compose xi [ a ] yi [ b ]
        and ce = R.compose xe [ a ] ye [ b ] in
        check (what ^ " compose") (ci, ce);
        let yi2, ye2 = pick !ys in
        ignore (yi2, ye2);
        pick !xs
      | 5 ->
        let xi, xe = pick !xs in
        let v = Random.State.int rand 8 in
        (R.select xi [ (a, v) ], R.select xe [ (a, v) ])
      | 6 ->
        (* copy a into a scratch column, then forget it again *)
        let xi, xe = pick !xs in
        let d = Attr.declare ~name:(Printf.sprintf "d%d" round) ~domain:dom_a in
        ( R.project_away (R.copy ~phys:si.p.(2) xi a ~as_:d) [ d ],
          R.project_away (R.copy ~phys:se.p.(2) xe a ~as_:d) [ d ] )
      | 7 ->
        (* move a to another physical domain and back: replace both ways *)
        let xi, xe = pick !xs in
        ( R.coerce (R.replace xi [ (a, si.p.(3)) ]) si.xsch,
          R.coerce (R.replace xe [ (a, se.p.(3)) ]) se.xsch )
      | _ -> fresh_x (random_tuples rand ~size_a:8 ~size_b:8)
    in
    check what result;
    xs := result :: (if List.length !xs > 6 then List.tl !xs else !xs);
    if Random.State.int rand 3 = 0 then
      ys := fresh_y (random_tuples rand ~size_a:8 ~size_b:5) :: List.tl !ys
  done;
  (si, se)

let test_relational_storm () =
  let _ = relational_storm ~rounds:150 ~seed:7 () in
  ()

let test_relational_storm_mtbdd () =
  (* same storm, third backend: the terminal-valued engine's boolean
     projection must track the in-core tuple sets operation for
     operation *)
  let _ = relational_storm ~other:`Mtbdd ~rounds:150 ~seed:7 () in
  ()

let test_relational_storm_spilling () =
  (* Tiny budgets force the extmem side of the same storm through the
     spill machinery; the profiler must surface the traffic. *)
  Unix.putenv "JEDD_EXTMEM_PQ_BYTES" "512";
  Unix.putenv "JEDD_EXTMEM_MEM_NODES" "8";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "JEDD_EXTMEM_PQ_BYTES" "";
      Unix.putenv "JEDD_EXTMEM_MEM_NODES" "")
    (fun () ->
      let rec_ = Jedd_profiler.Recorder.create () in
      let si, se = relational_storm ~rounds:60 ~seed:8 () in
      ignore si;
      (* replay a profiled operation on the extmem side *)
      Jedd_profiler.Recorder.attach rec_ se.u ~level:U.Counts;
      let r1 = R.of_tuples se.u se.xsch [ [ 1; 2 ]; [ 3; 4 ] ] in
      let r2 = R.of_tuples se.u se.xsch [ [ 1; 2 ]; [ 5; 1 ] ] in
      let _ = R.union r1 r2 in
      Jedd_profiler.Recorder.detach se.u;
      let st =
        match Backend.store (U.backend se.u) with
        | Some st -> st
        | None -> Alcotest.fail "extmem universe has no spill store"
      in
      Alcotest.(check bool) "storm spilled" true (Store.spilled_bytes st > 0);
      let html = Jedd_profiler.Report.to_html rec_ in
      Alcotest.(check bool) "report has external-memory section" true
        (let re = Str.regexp_string "External memory" in
         try
           ignore (Str.search_forward re html 0);
           true
         with Not_found -> false);
      let csv = Jedd_profiler.Report.to_csv rec_ in
      Alcotest.(check bool) "csv has spill columns" true
        (let re = Str.regexp_string "spilled_bytes" in
         try
           ignore (Str.search_forward re csv 0);
           true
         with Not_found -> false))

let test_suite_differential () =
  let p = Workload.generate Workload.tiny in
  let ri = Suite.run_all ~backend:`Incore p in
  (* the extmem run also proves the pipeline fits a tight in-core node
     budget: the manager only hosts variables and finite-domain blocks *)
  let re = Suite.run_all ~backend:`Extmem ~node_limit:4096 p in
  (* third column of the matrix: the mtbdd backend, whose 0/1-weighted
     results project to the same tuple sets *)
  let rm = Suite.run_all ~backend:`Mtbdd p in
  let check name f =
    Alcotest.(check (list (list int))) name (f ri) (f re);
    Alcotest.(check (list (list int))) (name ^ " (mtbdd)") (f ri) (f rm)
  in
  check "subtypes" (fun r -> r.Suite.subtypes);
  check "pt" (fun r -> r.Suite.pt);
  check "resolved" (fun r -> r.Suite.resolved);
  check "call_edges" (fun r -> r.Suite.call_edges);
  check "reachable" (fun r -> r.Suite.reachable);
  check "side_effects" (fun r -> r.Suite.side_effects)

let test_out_of_nodes () =
  let m = M.create ~node_capacity:1024 ~node_limit:1024 () in
  for _ = 1 to 24 do
    ignore (M.new_var m)
  done;
  let rand = Random.State.make [| 11 |] in
  let random_cube () =
    let levels = Array.init 24 Fun.id in
    for i = 23 downto 1 do
      let j = Random.State.int rand (i + 1) in
      let t = levels.(i) in
      levels.(i) <- levels.(j);
      levels.(j) <- t
    done;
    Ops.cube m
      (List.init 8 (fun i -> (levels.(i), Random.State.bool rand)))
  in
  let raised = ref false in
  (try
     let acc = ref (M.addref m M.zero) in
     for _ = 1 to 5000 do
       let acc' = M.addref m (Ops.bor m !acc (random_cube ())) in
       M.delref m !acc;
       acc := acc'
     done
   with M.Out_of_nodes -> raised := true);
  Alcotest.(check bool) "budget exceeded raises" true !raised;
  (* the manager survives: roots, refcounts and fresh work are fine *)
  let x = Ops.band m (M.var m 0) (M.var m 1) in
  Alcotest.(check int) "manager usable after Out_of_nodes" 1
    (Count.satcount m x ~over:[ 0; 1 ])

let test_store_cleanup () =
  let st = Store.create ~pq_budget_bytes:512 ~mem_node_threshold:8 () in
  (* force real files into the store's directory *)
  storm ~rounds:10 ~seed:44 st ();
  let dir = Store.dir st in
  Alcotest.(check bool) "spill directory exists" true (Sys.file_exists dir);
  Store.cleanup st;
  Alcotest.(check bool) "spill directory removed" false (Sys.file_exists dir)

let suite =
  [
    Alcotest.test_case "ebdd storm (in memory)" `Quick test_storm_memory;
    Alcotest.test_case "ebdd storm (spilling)" `Quick test_storm_spilling;
    Alcotest.test_case "canonical builders" `Quick test_builders;
    Alcotest.test_case "store cleanup" `Quick test_store_cleanup;
    Alcotest.test_case "cross-backend relational storm" `Quick
      test_relational_storm;
    Alcotest.test_case "cross-backend relational storm (mtbdd)" `Quick
      test_relational_storm_mtbdd;
    Alcotest.test_case "cross-backend storm (spilling) + profiler" `Quick
      test_relational_storm_spilling;
    Alcotest.test_case "full pipeline differential" `Quick
      test_suite_differential;
    Alcotest.test_case "node limit raises Out_of_nodes" `Quick
      test_out_of_nodes;
  ]
