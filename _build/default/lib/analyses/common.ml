(* Shared declarations for the five whole-program analyses (§5).

   Each analysis is a Jedd class; they share one set of domains,
   attributes and physical domains, so they can be compiled separately
   (rows 1–5 of Table 1) or concatenated into one program ("All 5
   combined").  Domain sizes depend on the analysed program, so the
   preamble is generated per program. *)

module P = Jedd_minijava.Program

let preamble (p : P.t) =
  let d name size = Printf.sprintf "domain %s %d;\n" name (max 2 size) in
  let a name dom = Printf.sprintf "attribute %s : %s;\n" name dom in
  String.concat ""
    [
      d "Type" p.P.n_classes;
      d "Sig" p.P.n_sigs;
      d "Method" p.P.n_methods;
      d "Var" p.P.n_vars;
      d "Heap" p.P.n_heap;
      d "Field" p.P.n_fields;
      d "CallSite" (List.length p.P.calls);
      (* type-domain attributes *)
      a "type" "Type";
      a "tgttype" "Type";
      a "subtype" "Type";
      a "supertype" "Type";
      (* others *)
      a "signature" "Sig";
      a "method" "Method";
      a "srcmethod" "Method";
      a "var" "Var";
      a "src" "Var";
      a "dst" "Var";
      a "base" "Var";
      a "heap" "Heap";
      a "baseheap" "Heap";
      a "field" "Field";
      a "callsite" "CallSite";
      (* physical domains; relative bit order is declaration order *)
      "physdom T1;\n";
      "physdom T2;\n";
      "physdom T3;\n";
      "physdom S1;\n";
      "physdom M1;\n";
      "physdom M2;\n";
      "physdom V1;\n";
      "physdom V2;\n";
      "physdom H1;\n";
      "physdom H2;\n";
      "physdom F1;\n";
      "physdom C1;\n";
    ]

(* Build a relation for an instantiated program from fact tuples, at the
   layout of the given field, and install it. *)
let set_fact inst field tuples =
  let u = Jedd_lang.Interp.universe inst in
  let schema = Jedd_lang.Interp.schema_of_var inst field in
  let r = Jedd_relation.Relation.of_tuples u schema tuples in
  Jedd_lang.Interp.set_field inst field r;
  Jedd_relation.Relation.release r

let get_tuples inst field =
  Jedd_relation.Relation.tuples (Jedd_lang.Interp.get_field inst field)
