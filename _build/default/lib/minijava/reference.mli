(** Reference (non-BDD) implementations of the five whole-program
    analyses, with ordinary sets and worklists.

    These are the ground truth the Jedd/BDD analyses are differentially
    tested against, and they double as the "conventional implementation"
    in the §5 compactness comparison. *)

module IS : Set.S with type elt = int
module IPS : Set.S with type elt = int * int
module ITS : Set.S with type elt = int * int * int

val hierarchy : Program.t -> IPS.t
(** Reflexive-transitive subtype pairs (sub, super). *)

val points_to : Program.t -> IPS.t * ITS.t
(** Flow-insensitive, field-sensitive subset-based points-to:
    (variable, heap) pairs and (base heap, field, heap) triples. *)

val call_targets : Program.t -> IPS.t -> IPS.t
(** Virtual call resolution under the given points-to:
    (call site, target method) pairs. *)

val reachable : Program.t -> IPS.t -> IS.t
(** Methods reachable from the entry points over resolved calls. *)

val side_effects : Program.t -> IPS.t -> IPS.t -> ITS.t
(** (method, heap, field) write effects, transitive over the call
    graph. *)
