(* A content-addressed snapshot store on the local filesystem:

     <root>/objects/<md5-hex>.snap   immutable snapshot blobs
     <root>/refs/<name>              mutable names -> hex digests

   Objects are keyed by the MD5 of their full file contents, so
   identical snapshots dedupe to one blob and a name update is a
   one-line ref write.  All writes go through a temp file + rename in
   the same directory, so a crashed writer can never leave a partial
   object or ref behind. *)

type t = { root : string }

exception Corrupt_object of string

let ( / ) = Filename.concat

let ensure_dir d =
  if not (Sys.file_exists d) then Unix.mkdir d 0o755
  else if not (Sys.is_directory d) then
    invalid_arg (Printf.sprintf "Cas: %s exists and is not a directory" d)

let open_ root =
  ensure_dir root;
  ensure_dir (root / "objects");
  ensure_dir (root / "refs");
  { root }

let object_path t hex = t.root / "objects" / (hex ^ ".snap")
let ref_path t name = t.root / "refs" / name

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       name

let check_name name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Cas: invalid ref name %S" name)

let atomic_write path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".cas" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

let put t data =
  let hex = Digest.to_hex (Digest.string data) in
  let path = object_path t hex in
  if not (Sys.file_exists path) then atomic_write path data;
  hex

let tag t name hex =
  check_name name;
  atomic_write (ref_path t name) (hex ^ "\n")

let read_ref t name =
  check_name name;
  let path = ref_path t name in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Some (String.trim line)
  end

let objects t =
  Sys.readdir (t.root / "objects")
  |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".snap" f)
  |> List.sort compare

let refs t =
  Sys.readdir (t.root / "refs")
  |> Array.to_list |> List.sort compare
  |> List.filter_map (fun name ->
         Option.map (fun hex -> (name, hex)) (read_ref t name))

(* [resolve] accepts a ref name, a full hex digest, or an unambiguous
   digest prefix (>= 4 chars), and returns the object path. *)
let resolve t key =
  let by_ref =
    if valid_name key then
      Option.bind (read_ref t key) (fun hex ->
          if Sys.file_exists (object_path t hex) then Some (object_path t hex)
          else None)
    else None
  in
  match by_ref with
  | Some p -> Some p
  | None ->
    if String.length key >= 4 then begin
      let matches =
        List.filter
          (fun hex -> String.starts_with ~prefix:key hex)
          (objects t)
      in
      match matches with [ hex ] -> Some (object_path t hex) | _ -> None
    end
    else None

let get t key =
  match resolve t key with
  | None -> None
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    (* Objects are named by their content digest; a mismatch means the
       blob was damaged on disk and must not be served. *)
    (match Filename.chop_suffix_opt ~suffix:".snap" (Filename.basename path) with
    | Some expected ->
      let found = Digest.to_hex (Digest.string data) in
      if found <> expected then
        raise
          (Corrupt_object
             (Printf.sprintf
                "Cas: object %s is damaged: name says digest %s, contents \
                 hash to %s"
                path expected found))
    | None -> ());
    Some data
