test/test_tools.ml: Alcotest Format Jedd_bdd Jedd_lang Jedd_profiler Jedd_relation List String
