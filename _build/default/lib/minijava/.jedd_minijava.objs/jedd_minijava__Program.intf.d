lib/minijava/program.mli: Format
