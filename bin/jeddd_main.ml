(* jeddd: the persistent analysis daemon.

   Obtains an analysis snapshot — warm from a snapshot file or the
   content-addressed store, or cold by running the combined Figure 2
   pipeline — freezes the universe into a read-only arena (unless
   --no-freeze), then serves concurrent queries in the jeddd line/JSON
   protocol (see lib/server/protocol.ml) over any combination of a
   Unix socket, a TCP port (--tcp) and an HTTP/1.1 port (--http),
   with --workers query domains sharing the frozen node store.  The
   whole point: the fixed-point computation happens at most once,
   queries thereafter are BDD lookups. *)

open Cmdliner
module Workload = Jedd_minijava.Workload
module Suite = Jedd_analyses.Suite
module Snapshot = Jedd_store.Snapshot
module Cas = Jedd_store.Cas

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let backend_of_string s =
  try Jedd_relation.Backend.kind_of_string s
  with Invalid_argument msg -> fail "jeddd: %s" msg

(* --jobs N, then JEDD_JOBS, then the recommended domain count. *)
let resolve_jobs jobs =
  let parse s =
    try Jedd_bdd.Par.jobs_of_string s
    with Invalid_argument msg -> fail "jeddd: %s" msg
  in
  match (jobs, Sys.getenv_opt "JEDD_JOBS") with
  | Some s, _ -> parse s
  | None, Some s -> parse s
  | None, None -> Jedd_bdd.Par.default_jobs ()

(* Returns the snapshot plus its universe hash (the MD5 of the snapshot
   bytes) — the cache key component that makes result-cache entries
   snapshot-specific.  [freeze_at_load] lands a warm load directly in
   frozen mode; it is requested only when no --save/--tag follows
   (those re-serialize, which is cleaner before the final compaction). *)
let load_or_compute ~snapshot_file ~store_dir ~store_name ~benchmark ~backend
    ~node_limit ~save ~tag ~jobs ~freeze_at_load =
  let backend = Option.map backend_of_string backend in
  let t0 = Unix.gettimeofday () in
  let snap, origin, hash =
    match (snapshot_file, store_dir, store_name) with
    | Some file, _, _ ->
      ( Snapshot.load_file ?backend ~freeze:freeze_at_load file,
        Printf.sprintf "snapshot %s" file,
        Digest.to_hex (Digest.file file) )
    | None, Some dir, Some name ->
      let cas = Cas.open_ dir in
      if Cas.resolve cas name = None then
        fail "jeddd: %S does not name a snapshot in store %s" name dir;
      (* the ref may point at a differential snapshot: replay the chain *)
      let data = Jedd_store.Delta.load_chain cas name in
      ( Snapshot.of_bytes ?backend ~freeze:freeze_at_load data,
        Printf.sprintf "store %s/%s" dir name,
        Digest.to_hex (Digest.string data) )
    | None, Some _, None -> fail "jeddd: --store needs --name"
    | None, None, Some _ -> fail "jeddd: --name needs --store"
    | None, None, None ->
      let profile =
        if benchmark = "tiny" then Workload.tiny
        else Workload.profile_named benchmark
      in
      let p = Workload.generate profile in
      let inst, _ = Suite.run_combined ?backend ?node_limit ~jobs p in
      let snap = Suite.snapshot ~meta:[ ("workload", benchmark) ] inst in
      ( snap,
        Printf.sprintf "cold run of %s" benchmark,
        Digest.to_hex (Digest.string (Snapshot.to_bytes snap)) )
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "jeddd: ready from %s in %.3f s (%d relations)\n%!" origin
    elapsed (List.length snap.Snapshot.relations);
  (match save with
  | Some path ->
    Snapshot.save_file path snap;
    Printf.printf "jeddd: saved snapshot to %s\n%!" path
  | None -> ());
  (match (tag, store_dir) with
  | Some name, Some dir ->
    let cas = Cas.open_ dir in
    let digest = Cas.put cas (Snapshot.to_bytes snap) in
    Cas.tag cas name digest;
    Printf.printf "jeddd: stored as %s (ref %s)\n%!" digest name
  | Some _, None -> fail "jeddd: --tag needs --store"
  | None, _ -> ());
  (snap, hash)

let parse_hostport ~what ~default_host s =
  match String.rindex_opt s ':' with
  | None -> (
    match int_of_string_opt s with
    | Some p when p >= 0 && p < 65536 -> (default_host, p)
    | _ -> fail "jeddd: %s must be HOST:PORT or PORT, got %S" what s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      ((if host = "" then default_host else host), p)
    | _ -> fail "jeddd: %s has a bad port in %S" what s)

(* --live: run the combined analysis cold through a Live session (the
   mutable shadow universe), then serve a frozen copy of it.  The
   daemon then accepts the "update" verb: each edit is re-solved
   incrementally on the shadow and swapped in as a new frozen
   generation; with --store/--tag, each generation is published under
   the ref as a differential snapshot. *)
let make_live ~benchmark ~want_freeze ~save ~tag ~store_dir =
  let profile =
    if benchmark = "tiny" then Workload.tiny
    else Workload.profile_named benchmark
  in
  let p = Workload.generate profile in
  let t0 = Unix.gettimeofday () in
  let session = Jedd_analyses.Live.create p in
  let snap_live =
    Suite.snapshot
      ~meta:[ ("workload", benchmark); ("jedd.generation", "0") ]
      (Jedd_analyses.Live.inst session)
  in
  let bytes = Snapshot.to_bytes snap_live in
  let hash = Digest.to_hex (Digest.string bytes) in
  Printf.printf "jeddd: live session ready from cold run of %s in %.3f s\n%!"
    benchmark
    (Unix.gettimeofday () -. t0);
  (match save with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    Printf.printf "jeddd: saved snapshot to %s\n%!" path
  | None -> ());
  let publish =
    match (tag, store_dir) with
    | Some name, Some dir ->
      let cas = Cas.open_ dir in
      let digest = Cas.put cas bytes in
      Cas.tag cas name digest;
      Printf.printf "jeddd: stored as %s (ref %s)\n%!" digest name;
      Some (cas, name)
    | Some _, None -> fail "jeddd: --tag needs --store"
    | None, _ -> None
  in
  let snap = Snapshot.of_bytes ~freeze:want_freeze bytes in
  ( Some { Jedd_serve.Serve.session; initial_bytes = bytes; publish },
    (snap, hash) )

let run socket no_socket tcp http workers no_freeze sweep_threshold
    cache_capacity snapshot_file store_dir store_name benchmark backend
    node_limit save tag jobs live =
  let jobs = resolve_jobs jobs in
  if workers < 1 then fail "jeddd: --workers must be >= 1";
  let backend_name =
    match backend with Some b -> Some b | None -> Sys.getenv_opt "JEDD_BACKEND"
  in
  (* serving revolves around levelized snapshots, which the
     terminal-valued backend cannot export or import *)
  if backend_name = Some "mtbdd" then
    fail
      "jeddd: the mtbdd backend has no levelized snapshot format; use \
       jedd-analyze --backend=mtbdd (or bench json10) for weighted runs";
  (* only the in-core backend has an immutable arena to freeze into;
     extmem, hybrid and mtbdd all raise on [Universe.freeze] *)
  let is_incore =
    match backend_name with None | Some "incore" -> true | Some _ -> false
  in
  let want_freeze = (not no_freeze) && is_incore in
  let workers =
    if workers > 1 && not want_freeze then begin
      Printf.eprintf
        "jeddd: multi-worker serving needs a frozen in-core universe; \
         falling back to --workers 1\n%!";
      1
    end
    else workers
  in
  let freeze_at_load = want_freeze && save = None && tag = None in
  if live && (snapshot_file <> None || store_name <> None) then
    fail
      "jeddd: --live re-solves edits, so it needs the program and always \
       runs a cold analysis; drop --snapshot/--name";
  if live && not is_incore then
    fail "jeddd: --live needs the in-core backend";
  let live_cfg, (snap, universe_hash) =
    try
      if live then make_live ~benchmark ~want_freeze ~save ~tag ~store_dir
      else
        ( None,
          load_or_compute ~snapshot_file ~store_dir ~store_name ~benchmark
            ~backend ~node_limit ~save ~tag ~jobs ~freeze_at_load )
    with
    | Snapshot.Corrupt msg -> fail "jeddd: corrupt snapshot: %s" msg
    | Cas.Corrupt_object msg -> fail "jeddd: %s" msg
  in
  if want_freeze && not (Jedd_relation.Universe.frozen snap.Snapshot.u) then
    Jedd_relation.Universe.freeze snap.Snapshot.u;
  if Jedd_relation.Universe.frozen snap.Snapshot.u then
    Printf.printf "jeddd: universe frozen (%d nodes pinned, hash %s)\n%!"
      (Jedd_bdd.Manager.frozen_live_nodes
         (Jedd_relation.Universe.manager snap.Snapshot.u))
      universe_hash;
  let config =
    {
      Jedd_serve.Serve.unix_path = (if no_socket then None else Some socket);
      tcp =
        Option.map (parse_hostport ~what:"--tcp" ~default_host:"0.0.0.0") tcp;
      http =
        Option.map (parse_hostport ~what:"--http" ~default_host:"0.0.0.0") http;
      workers;
      default_timeout_ms = 30_000;
      cache_capacity;
      sweep_threshold;
    }
  in
  let server =
    Jedd_serve.Serve.create ~config ?live:live_cfg ~universe_hash snap
  in
  List.iter print_string
    (List.concat
       [
         (if no_socket then [] else [ Printf.sprintf "jeddd: listening on %s\n" socket ]);
         (match config.tcp with
         | Some (h, _) ->
           [ Printf.sprintf "jeddd: listening on tcp %s:%d\n" h
               (Option.value ~default:0 (Jedd_serve.Serve.tcp_port server)) ]
         | None -> []);
         (match config.http with
         | Some (h, _) ->
           [ Printf.sprintf "jeddd: listening on http %s:%d\n" h
               (Option.value ~default:0 (Jedd_serve.Serve.http_port server)) ]
         | None -> []);
       ]);
  Printf.printf
    "jeddd: %d worker%s (send {\"verb\":\"shutdown\"} to stop)\n%!" workers
    (if workers = 1 then "" else "s");
  if live then
    Printf.printf
      "jeddd: live updates enabled (send {\"verb\":\"update\", \
       \"edit\":{\"op\":...}})\n%!";
  Jedd_serve.Serve.run server;
  Printf.printf "jeddd: stopped\n%!"

let socket_arg =
  Arg.(
    value & opt string "jeddd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on")

let no_socket_arg =
  Arg.(
    value & flag
    & info [ "no-socket" ]
        ~doc:"Do not listen on the Unix socket (TCP/HTTP only)")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "Also serve the line/JSON protocol on a TCP port (PORT alone \
           binds 0.0.0.0; port 0 picks a free port)")

let http_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "http" ] ~docv:"HOST:PORT"
        ~doc:
          "Also serve HTTP/1.1 (POST /query with a protocol request body, \
           GET /ping, GET /stats)")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Query worker domains sharing the frozen universe (requires the \
           in-core backend and freezing)")

let no_freeze_arg =
  Arg.(
    value & flag
    & info [ "no-freeze" ]
        ~doc:
          "Keep the universe mutable (refcounted GC, reorder verb enabled); \
           forces --workers 1")

let sweep_threshold_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "sweep-threshold" ] ~docv:"NODES"
        ~doc:
          "Frozen mode: reclaim query scratch once this many nodes \
           accumulate beyond the pinned arena (0 disables sweeping)")

let cache_capacity_arg =
  Arg.(
    value & opt int 4096
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Result-cache entries across all relations (0 disables)")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:"Warm-start from a snapshot file written by --save or \
              jedd-analyze --save-snapshot")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Content-addressed snapshot store (with --name to load, \
              --tag to publish)")

let name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"REF"
        ~doc:"Ref name, digest, or unique digest prefix to load from --store")

let benchmark_arg =
  Arg.(
    value & opt string "compress"
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Workload for a cold run when no snapshot source is given")

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"NAME"
        ~doc:"Relation backend: $(b,incore), $(b,extmem), $(b,hybrid) or \
              $(b,mtbdd); falls back to JEDD_BACKEND.  Only $(b,incore) \
              supports frozen multi-worker serving")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"In-core BDD node-table cap")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Also write the (loaded or computed) snapshot to FILE")

let tag_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tag" ] ~docv:"REF"
        ~doc:"Also publish the snapshot into --store under this ref name")

let live_arg =
  Arg.(
    value & flag
    & info [ "live" ]
        ~doc:
          "Keep a mutable shadow of the analysis and accept the \
           $(b,update) verb: program edits are re-solved incrementally \
           and swapped in as new frozen generations without restarting. \
           Implies a cold analysis run of --benchmark (in-core only); \
           with --store and --tag, every generation is published under \
           the ref, as a differential snapshot when smaller.")

let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for a cold analysis run (1..64); falls back to JEDD_JOBS, \
           then to the recommended domain count.  Snapshot loads and query \
           serving are unaffected.")

let cmd =
  Cmd.v
    (Cmd.info "jeddd" ~version:Jedd_relation.Version.banner
       ~doc:
         "Persistent relation store daemon: load or compute an analysis \
          snapshot once, freeze it read-only, answer concurrent queries \
          over Unix socket, TCP and HTTP with a pool of worker domains")
    Term.(
      const run $ socket_arg $ no_socket_arg $ tcp_arg $ http_arg
      $ workers_arg $ no_freeze_arg $ sweep_threshold_arg $ cache_capacity_arg
      $ snapshot_arg $ store_arg $ name_arg $ benchmark_arg $ backend_arg
      $ node_limit_arg $ save_arg $ tag_arg $ jobs_arg $ live_arg)

let () = exit (Cmd.eval cmd)
