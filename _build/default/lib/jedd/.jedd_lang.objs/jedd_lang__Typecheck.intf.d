lib/jedd/typecheck.mli: Ast Tast
