lib/relation/universe.ml: Jedd_bdd Printf
