(** Physical domains: named blocks of BDD variables that attributes are
    assigned to (§2.1, §3.2.1).  The relative bit ordering of physical
    domains is fixed by declaration order, or interleaved on request —
    the ordering lever the paper's §3.3.1 discusses. *)

type t

val declare : Universe.t -> name:string -> bits:int -> t
(** Allocate a physical domain of the given width at the bottom of the
    current variable order. *)

val declare_interleaved :
  ?pad:bool -> Universe.t -> (string * int) list -> t list
(** Allocate several physical domains with their bits interleaved.
    Each keeps its requested width (narrower domains stop contributing
    bits, MSB-aligned); [~pad:true] restores the old behaviour of
    widening every domain to the widest request. *)

val name : t -> string
val width : t -> int
val block : t -> Jedd_bdd.Fdd.block

val levels : t -> int array
(** Current variable levels of the domain's block, MSB first.  Computed
    from the manager's live order — do not cache across operations that
    may reorder. *)

val equal : t -> t -> bool

val fits : t -> Domain.t -> bool
(** Can this physical domain hold every object of the domain? *)
