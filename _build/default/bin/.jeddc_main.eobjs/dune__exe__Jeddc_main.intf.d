bin/jeddc_main.mli:
