lib/analyses/pointsto_baseline.ml: Array Jedd_bdd Jedd_minijava List
