lib/relation/universe.mli: Jedd_bdd
