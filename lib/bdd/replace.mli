(** Variable replacement: rebuild a BDD with its variables permuted —
    and the fused kernels that combine a permutation with conjunction
    and/or existential quantification in a single recursion.

    Plain {!replace} is BuDDy's [bdd_replace] / CUDD's [SwapVariables] —
    the operation the Jedd runtime uses to move an attribute from one
    physical domain to another (§3.2.2 of the paper).

    The fused kernels exist because the runtime's hottest pattern is
    "re-layout one operand, then conjoin (and possibly quantify)": a
    join is [f /\ perm(g)] and a composition is
    [exist cube (f /\ perm(g))].  Materialising [perm(g)] costs a full
    BDD construction and the memory traffic of an intermediate the very
    next operation consumes and discards — the §4 profile shows replace
    among the top costs.  {!relprod_replace} performs the whole pattern
    in one recursion (the analogue of BuDDy's [appex] extended with a
    permutation), and {!replace_exist} fuses projection with re-layout. *)

type man = Manager.t
type node = Manager.node

type perm
(** A (partial) permutation of variable levels.  Levels not mentioned map
    to themselves.  Permutations are interned: building the same mapping
    twice returns the same value, which keeps fused-kernel cache keys
    stable across top-level calls. *)

val make_perm : man -> (int * int) list -> perm
(** [make_perm m pairs] builds the mapping sending each [(src, dst)].
    Sources must be distinct and no two sources may share a target;
    [Invalid_argument] otherwise.  A swap is expressed by listing both
    directions.  For a plain move (target not itself remapped), the
    caller must guarantee that the target variables do not occur in the
    BDD being replaced — exactly the discipline the Jedd runtime's
    physical-domain bookkeeping enforces. *)

val identity : man -> perm
val is_identity : perm -> bool

val apply_level : perm -> int -> int

val replace : man -> node -> perm -> node
(** [replace m f p] is the BDD containing, for every string of [f], the
    string with bits permuted by [p].  Correct for arbitrary injective
    maps (it reinserts variables at their new position with [ite]). *)

(** {2 Fused kernels} *)

val relprod_replace : man -> node -> node -> perm -> node -> node
(** [relprod_replace m f g p cube] computes
    [Quant.exist m (Ops.band m f (replace m g p)) cube] without ever
    materialising [replace m g p].  With a terminal [cube] it degenerates
    to the fused conjunction [Ops.band m f (replace m g p)] — the join
    kernel.  [cube] is expressed in the shared (post-permutation)
    variable space.

    The single-recursion path requires [p] to be order-preserving along
    every edge of [g]'s DAG (checked in one memoised traversal); a
    non-order-preserving permutation falls back to the unfused pipeline,
    so the function is total and always equivalent to the pipeline. *)

val replace_exist : man -> node -> perm -> node -> node
(** [replace_exist m f p cube] computes
    [replace m (Quant.exist m f cube) p] in one recursion.  [cube] is
    expressed in [f]'s original (pre-permutation) variable space.  Same
    order-preservation requirement and fallback as {!relprod_replace}. *)

val fused_stats : unit -> int * int
(** [(fused, fallbacks)]: how many top-level fused-kernel calls ran the
    single-recursion path vs. fell back to the materialising pipeline.
    Global, monotone; for tests and benchmark reporting. *)

(** {2 Internals exposed for the parallel engine}

    {!Par} mirrors the fused recursions with fork/join parallelism and
    falls into these sequential kernels below its cutoff; it needs the
    permutation accessors and key packing to share the same cache
    entries. *)

val perm_id : perm -> int
val perm_map_len : perm -> int
val pack_key : int -> node -> int
val cube_from : man -> node -> int -> node
val order_preserving_on : man -> perm -> node -> bool
val fused_relprod : man -> node -> node -> perm -> node -> node
val fused_replace_exist : man -> node -> perm -> node -> node

val tag_relprod_replace : int
val tag_replace_exist : int
