lib/jedd/interp.ml: Ast Constraints Encode Format Hashtbl Jedd_relation List Liveness Option String Tast
