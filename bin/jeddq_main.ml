(* jeddq: command-line client for a running jeddd.

     jeddq -s SOCK ping | version | stats | relations | shutdown
     jeddq -s SOCK count REL
     jeddq -s SOCK member REL O1 O2 ...
     jeddq -s SOCK tuples REL [LIMIT]
     jeddq -s SOCK pointsto VAR
     jeddq -s SOCK resolve CALLSITE
     jeddq -s SOCK raw '{"verb": ...}'

   Transports: the default Unix socket (-s), --tcp HOST:PORT (line
   protocol over TCP), or --http HOST:PORT (POST /query).  --retries N
   retries a refused connection with exponential backoff; --timeout
   bounds every socket read/write on the client side.

   Every command prints the server's JSON response line verbatim, so
   scripts can pipe it on.  Exit codes: 0 for an ok:true response, 1
   for ok:false, 2 for usage/protocol errors, 3 when the server cannot
   be reached at all. *)

open Cmdliner
module Json = Jedd_server.Json
module Client = Jedd_server.Client
module Http = Jedd_serve.Http

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* Distinct code for "nothing is listening": scripts (and the load
   generator's warm-up) branch on it. *)
let fail_refused fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 3) fmt

let parse_hostport ~what s =
  match String.rindex_opt s ':' with
  | None -> (
    match int_of_string_opt s with
    | Some p when p >= 0 && p < 65536 -> ("127.0.0.1", p)
    | _ -> fail "jeddq: %s must be HOST:PORT or PORT, got %S" what s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      ((if host = "" then "127.0.0.1" else host), p)
    | _ -> fail "jeddq: %s has a bad port in %S" what s)

let int_arg what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "jeddq: %s must be an integer, got %S" what s

let build_request args =
  match args with
  | [] -> fail "jeddq: no command (try: ping, count, pointsto, stats, ...)"
  | [ "raw"; text ] -> (
    match Json.of_string text with
    | v -> v
    | exception Json.Parse_error msg -> fail "jeddq: bad JSON: %s" msg)
  | "raw" :: _ -> fail "jeddq: raw takes exactly one JSON argument"
  | verb :: rest -> (
    let simple fields = Json.Obj (("verb", Json.String verb) :: fields) in
    match (verb, rest) with
    | ("ping" | "version" | "stats" | "relations" | "shutdown"), [] ->
      simple []
    | ("ping" | "version" | "stats" | "relations" | "shutdown"), _ ->
      fail "jeddq: %s takes no arguments" verb
    | "count", [ rel ] -> simple [ ("rel", Json.String rel) ]
    | "member", rel :: (_ :: _ as objs) ->
      simple
        [
          ("rel", Json.String rel);
          ( "tuple",
            Json.List (List.map (fun o -> Json.Int (int_arg "object" o)) objs)
          );
        ]
    | "tuples", [ rel ] -> simple [ ("rel", Json.String rel) ]
    | "tuples", [ rel; limit ] ->
      simple
        [
          ("rel", Json.String rel);
          ("limit", Json.Int (int_arg "limit" limit));
        ]
    | "pointsto", [ var ] -> simple [ ("var", Json.Int (int_arg "var" var)) ]
    | "resolve", [ cs ] ->
      simple [ ("callsite", Json.Int (int_arg "callsite" cs)) ]
    | _ -> fail "jeddq: bad arguments for %S" verb)

let run socket tcp http timeout_ms timeout retries args =
  let request =
    match (build_request args, timeout_ms) with
    | Json.Obj kvs, Some ms -> Json.Obj (kvs @ [ ("timeout_ms", Json.Int ms) ])
    | v, _ -> v
  in
  let connect () =
    match (tcp, http) with
    | Some _, Some _ -> fail "jeddq: --tcp and --http are mutually exclusive"
    | Some spec, None ->
      let host, port = parse_hostport ~what:"--tcp" spec in
      (Client.connect_tcp ~retries host port, false)
    | None, Some spec ->
      let host, port = parse_hostport ~what:"--http" spec in
      (Client.connect_tcp ~retries host port, true)
    | None, None -> (Client.connect ~retries socket, false)
  in
  let c, is_http =
    try connect () with
    | Client.Connection_refused msg -> fail_refused "jeddq: %s" msg
    | Unix.Unix_error (e, _, _) ->
      fail_refused "jeddq: cannot connect to %s: %s" socket
        (Unix.error_message e)
  in
  Option.iter (Client.set_timeout c) timeout;
  let resp =
    try
      if is_http then Http.client_request ~ic:c.Client.ic ~oc:c.Client.oc request
      else Client.request c request
    with
    | Client.Server_error msg | Json.Parse_error msg | Failure msg ->
      Client.close c;
      fail "jeddq: %s" msg
    | Unix.Unix_error (e, _, _) ->
      Client.close c;
      fail "jeddq: request failed: %s" (Unix.error_message e)
    | End_of_file | Sys_error _ ->
      Client.close c;
      fail "jeddq: request failed: timed out or connection lost"
  in
  Client.close c;
  print_endline (Json.to_string resp);
  match Json.member "ok" resp with Some (Json.Bool true) -> 0 | _ -> 1

let socket_arg =
  Arg.(
    value & opt string "jeddd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix socket of the jeddd server")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Connect over TCP instead of the Unix socket")

let http_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "http" ] ~docv:"HOST:PORT"
        ~doc:"Connect over HTTP/1.1 (POST /query) instead of the Unix socket")

let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:"Per-request timeout enforced by the server")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Client-side bound on every socket read/write")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a refused connection up to N times with exponential \
           backoff (50ms, 100ms, ...)")

let args_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"CMD"
         ~doc:"Command and its arguments")

let cmd =
  Cmd.v
    (Cmd.info "jeddq" ~version:Jedd_relation.Version.banner
       ~doc:"Query a running jeddd analysis server")
    Term.(
      const run $ socket_arg $ tcp_arg $ http_arg $ timeout_ms_arg
      $ timeout_arg $ retries_arg $ args_arg)

let () = exit (Cmd.eval' cmd)
