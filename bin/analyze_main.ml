(* jedd-analyze: run the five interrelated whole-program analyses (§5,
   Figure 2) over a generated workload and report result sizes. *)

open Cmdliner
module Workload = Jedd_minijava.Workload
module Program = Jedd_minijava.Program
module Reference = Jedd_minijava.Reference
module Suite = Jedd_analyses.Suite

let backend_of_string = function
  | "incore" -> `Incore
  | "extmem" -> `Extmem
  | s ->
    Printf.eprintf "jedd-analyze: unknown backend %S (incore|extmem)\n" s;
    exit 2

let lint_suite p =
  (* lint each of the Figure 2 analyses as jeddc --lint would *)
  let worst = ref 0 in
  List.iter
    (fun (name, _) ->
      let compiled = Suite.compile_one p name in
      let report = Jedd_lint.Driver.lint compiled in
      Printf.printf "== %s ==\n%s\n" name (Jedd_lint.Driver.to_text report);
      worst := max !worst (Jedd_lint.Driver.exit_code report))
    Suite.analyses;
  exit !worst

let run benchmark file verify reorder backend node_limit lint =
  let name, p =
    if file <> "" then (file, Jedd_minijava.Frontend.load_file file)
    else
      let profile =
        if benchmark = "tiny" then Workload.tiny
        else Workload.profile_named benchmark
      in
      (profile.Workload.name, Workload.generate profile)
  in
  if lint then lint_suite p;
  let backend =
    match (backend, Sys.getenv_opt "JEDD_BACKEND") with
    | Some b, _ -> Some (backend_of_string b)
    | None, Some b -> Some (backend_of_string b)
    | None, None -> None
  in
  (match backend with
  | Some `Extmem -> Format.printf "backend: extmem (out-of-core streaming)@."
  | _ -> ());
  Format.printf "workload %s: %a@." name Program.pp_stats p;
  let t0 = Sys.time () in
  let r =
    try Suite.run_all ?backend ?node_limit ~reorder p
    with Jedd_bdd.Manager.Out_of_nodes ->
      Printf.eprintf
        "jedd-analyze: analysis exceeded the in-core memory budget (%s \
         nodes); retry with --backend=extmem to stream BDDs through \
         bounded memory, or raise --node-limit.\n"
        (match node_limit with Some n -> string_of_int n | None -> "?");
      exit 3
  in
  Printf.printf "pipeline completed in %.2f s\n" (Sys.time () -. t0);
  Printf.printf "  Hierarchy            : %d subtype pairs\n"
    (List.length r.Suite.subtypes);
  Printf.printf "  Points-to Analysis   : %d (var, heap) pairs\n"
    (List.length r.Suite.pt);
  Printf.printf "  Virtual Call Resol.  : %d resolved targets\n"
    (List.length r.Suite.resolved);
  Printf.printf "  Call Graph           : %d reachable methods\n"
    (List.length r.Suite.reachable);
  Printf.printf "  Side-effect Analysis : %d (method, heap, field) triples\n"
    (List.length r.Suite.side_effects);
  if verify then begin
    let ref_pt, _ = Reference.points_to p in
    let ref_targets = Reference.call_targets p ref_pt in
    let ref_reach = Reference.reachable p ref_targets in
    let ref_se = Reference.side_effects p ref_pt ref_targets in
    let ok =
      List.length r.Suite.pt = Reference.IPS.cardinal ref_pt
      && List.length r.Suite.call_edges = Reference.IPS.cardinal ref_targets
      && List.length r.Suite.reachable = Reference.IS.cardinal ref_reach
      && List.length r.Suite.side_effects = Reference.ITS.cardinal ref_se
    in
    Printf.printf "verification against reference implementations: %s\n"
      (if ok then "PASS" else "FAIL");
    if not ok then exit 1
  end

let benchmark_arg =
  Arg.(
    value
    & opt string "compress"
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Workload: tiny, javac, compress, javac-13, sablecc, jedit")

let file_arg =
  Arg.(
    value & opt string ""
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Analyse a hand-written .mjava program instead of a workload")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Check against reference analyses")

let reorder_arg =
  Arg.(
    value & flag
    & info [ "reorder" ]
        ~doc:
          "Enable dynamic variable-order optimization: a sifting pass over \
           the loaded facts plus an auto trigger at BDD safe points during \
           the points-to and call-graph solves")

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "Relation backend: $(b,incore) (default; hash-consed shared node \
           table) or $(b,extmem) (out-of-core streaming BDDs: levelized \
           node files + priority-queue sweeps under the \
           JEDD_EXTMEM_PQ_BYTES / JEDD_EXTMEM_MEM_NODES byte budgets).  \
           Falls back to the JEDD_BACKEND environment variable.")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N"
        ~doc:
          "Cap each in-core BDD node table at N nodes; exceeding the cap \
           aborts the pipeline with a clean message suggesting \
           --backend=extmem")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the jeddlint checkers over each of the five analyses instead \
           of executing them; exits with the worst per-analysis lint code")

let cmd =
  Cmd.v
    (Cmd.info "jedd-analyze"
       ~doc:"Run the five BDD-based whole-program analyses of Figure 2")
    Term.(
      const run $ benchmark_arg $ file_arg $ verify_arg $ reorder_arg
      $ backend_arg $ node_limit_arg $ lint_arg)

let () = exit (Cmd.eval cmd)
