(* Side-effect analysis: which (heap object, field) pairs each method may
   write, directly or through the methods it (transitively) calls — the
   analysis §5 quotes as 803 NCLOC of Java vs 124 lines of Jedd. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp

let source =
  "class SideEffects {\n\
  \  <src:V1, base:V2, field:F1> storeS;\n\
  \  <var:V2, srcmethod:M2> varMethod;\n\
  \  <var:V2, baseheap:H2> ptB;\n\
  \  <callsite:C1, method:M1> callEdgeS;\n\
  \  <callsite:C1, srcmethod:M2> siteInS;\n\
  \  <srcmethod:M2, baseheap:H2, field:F1> modSet = 0B;\n\
  \  public void run() {\n\
  \    // direct effects: store base.f = src, base may point to baseheap,\n\
  \    // in the method owning base\n\
  \    <base:V2, field:F1> st = (src=>) storeS;\n\
  \    <base:V2, field:F1, baseheap:H2> st2 = st{base} >< ptB{var};\n\
  \    modSet = st2{base} <> varMethod{var};\n\
  \    // caller-of relation: callee method -> calling method\n\
  \    <method:M1, srcmethod:M2> callerOf = callEdgeS{callsite} <> siteInS{callsite};\n\
  \    // propagate callee effects to callers\n\
  \    <srcmethod:M2, baseheap:H2, field:F1> delta = modSet;\n\
  \    do {\n\
  \      <method:M1, baseheap:H2, field:F1> calleeFx = (srcmethod=>method) delta;\n\
  \      delta = callerOf{method} <> calleeFx{method};\n\
  \      delta -= modSet;\n\
  \      modSet |= delta;\n\
  \    } while (delta != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) ~pt ~call_edges =
  Common.set_fact inst "SideEffects.storeS"
    (List.map (fun (s, b, f) -> [ s; b; f ]) p.P.stores);
  Common.set_fact inst "SideEffects.varMethod"
    (Array.to_list (Array.mapi (fun v m -> [ v; m ]) p.P.var_method));
  Common.set_fact inst "SideEffects.ptB" pt;
  Common.set_fact inst "SideEffects.callEdgeS" call_edges;
  Common.set_fact inst "SideEffects.siteInS"
    (List.map
       (fun (cs : P.call_site) -> [ cs.P.cs_id; cs.P.cs_in_method ])
       p.P.calls)

let run inst = ignore (Interp.call inst "SideEffects.run" [])

(* (method, heap, field) triples *)
let results inst = Common.get_tuples inst "SideEffects.modSet"
