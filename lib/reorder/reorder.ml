module M = Jedd_bdd.Manager

type blk = { bname : string; bvars : int array }

type event = {
  trigger : string;
  strategy : string;
  swaps : int;
  aborts : int;
  nodes_before : int;
  nodes_after : int;
  millis : float;
}

type t = {
  man : M.t;
  mutable blocks : blk list; (* insertion order, newest last *)
  mutable max_growth : float;
  mutable events : event list; (* newest first *)
  mutable auto_fired : int;
}

(* 1.2 is the classic sifting growth bound (BuDDy's bddmaxgrowth,
   CUDD's DD_MAX_REORDER_GROWTH): walking a group in a direction that
   inflates the table past best*1.2 is abandoned early, which is what
   keeps a sifting pass near-linear in practice. *)
let create man =
  { man; blocks = []; max_growth = 1.2; events = []; auto_fired = 0 }

let manager t = t.man
let events t = List.rev t.events
let auto_fired t = t.auto_fired

let set_max_growth t g =
  if g < 1.0 then invalid_arg "Reorder.set_max_growth: bound below 1.0";
  t.max_growth <- g

let register_block t ~name ~vars =
  if Array.length vars > 0 then
    t.blocks <- t.blocks @ [ { bname = name; bvars = Array.copy vars } ]

let check_invariants t = M.check_invariants t.man

(* -- Observability ------------------------------------------------------- *)

let level_histogram t =
  let m = t.man in
  let h = Array.make (max 1 (M.num_vars m)) 0 in
  M.iter_live m (fun n ->
      let l = M.level m n in
      if l < Array.length h then h.(l) <- h.(l) + 1);
  h

let block_attribution t =
  let m = t.man in
  let h = level_histogram t in
  let assigned = Array.make (Array.length h) false in
  let rows =
    List.map
      (fun b ->
        let total =
          Array.fold_left
            (fun acc v ->
              let l = M.level_of_var m v in
              if l < Array.length h then begin
                assigned.(l) <- true;
                acc + h.(l)
              end
              else acc)
            0 b.bvars
        in
        (b.bname, total))
      t.blocks
  in
  let unassigned = ref 0 in
  Array.iteri
    (fun l c -> if not assigned.(l) then unassigned := !unassigned + c)
    h;
  if !unassigned > 0 then rows @ [ ("(unassigned)", !unassigned) ] else rows

(* -- Event-recording wrapper --------------------------------------------- *)

(* Every public transform runs inside this bracket: it opens the
   manager's reorder session (per-level index), collects before/after so
   node counts compare live populations, records an event and accounts
   the pass on the manager's monotone counters. *)
let with_reorder t ~trigger ~strategy f =
  let m = t.man in
  (* In parallel mode a reorder is a stop-the-world phase: the exclusive
     bracket parks every registered domain and drains apply regions
     before the first swap ([swap_adjacent] itself stays sequential).
     Sequential mode: [exclusive] is just [f ()]. *)
  M.exclusive m @@ fun () ->
  M.reorder_begin m;
  Fun.protect
    ~finally:(fun () -> M.reorder_end m)
    (fun () ->
      M.gc m;
      let nodes_before = M.live_nodes m in
      let swaps0 = M.swap_count m in
      let t0 = Sys.time () in
      let aborts = f () in
      M.gc m;
      let nodes_after = M.live_nodes m in
      let millis = (Sys.time () -. t0) *. 1000.0 in
      t.events <-
        {
          trigger;
          strategy;
          swaps = M.swap_count m - swaps0;
          aborts;
          nodes_before;
          nodes_after;
          millis;
        }
        :: t.events;
      M.record_reorder m ~millis ~aborts)

(* -- Block groups -------------------------------------------------------- *)

(* Reordering moves whole physical-domain blocks, not single bits: the
   relational encodings (equality ladders, interleaved key pairs) depend
   on the internal bit order of a block, and per-bit sifting both breaks
   them apart and squares the search space.  A {e group} is the merged
   level span of overlapping registered blocks (overlap = currently
   interleaved, so the interleaving is preserved as a unit); levels
   belonging to no block become singleton groups.  The result is a
   partition of [0, nvars) into contiguous spans, returned as a width
   array in level order. *)
let build_groups t =
  let m = t.man in
  let n = M.num_vars m in
  let ivals =
    List.map
      (fun b ->
        let lvls = Array.map (M.level_of_var m) b.bvars in
        ( Array.fold_left min max_int lvls,
          Array.fold_left max (-1) lvls ))
      t.blocks
  in
  let ivals = List.sort compare ivals in
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] ivals
  in
  let merged = List.rev merged in
  let widths = ref [] in
  let pos = ref 0 in
  List.iter
    (fun (lo, hi) ->
      while !pos < lo do
        widths := 1 :: !widths;
        incr pos
      done;
      widths := (hi - lo + 1) :: !widths;
      pos := hi + 1)
    merged;
  while !pos < n do
    widths := 1 :: !widths;
    incr pos
  done;
  Array.of_list (List.rev !widths)

(* Exchange two adjacent groups, A of width [wa] starting at level [a]
   and B of width [wb] right below it, by bubbling each B level up
   through A: wa*wb adjacent swaps. *)
let swap_groups m a wa wb =
  for j = 0 to wb - 1 do
    for s = a + wa + j - 1 downto a + j do
      M.swap_adjacent m s
    done
  done

let start_of widths i =
  let s = ref 0 in
  for j = 0 to i - 1 do
    s := !s + widths.(j)
  done;
  !s

(* Collect, then count: sizes compared during search must be live
   populations, not live-plus-garbage. *)
let live_size m =
  M.gc m;
  M.live_nodes m

(* -- Rudell sifting over groups ------------------------------------------ *)

let sift ?(trigger = "manual") t =
  with_reorder t ~trigger ~strategy:"sift" (fun () ->
      let m = t.man in
      let widths = build_groups t in
      let ng = Array.length widths in
      if ng < 2 then 0
      else begin
        let ids = Array.init ng (fun i -> i) in
        let move_down i =
          swap_groups m (start_of widths i) widths.(i) widths.(i + 1);
          let w = widths.(i) in
          widths.(i) <- widths.(i + 1);
          widths.(i + 1) <- w;
          let d = ids.(i) in
          ids.(i) <- ids.(i + 1);
          ids.(i + 1) <- d
        in
        let move_up i = move_down (i - 1) in
        (* Sift heavy groups first: rank by initial node contribution. *)
        let h = level_histogram t in
        let contrib = Array.make ng 0 in
        for i = 0 to ng - 1 do
          let a = start_of widths i in
          for l = a to a + widths.(i) - 1 do
            if l < Array.length h then contrib.(i) <- contrib.(i) + h.(l)
          done
        done;
        let order = Array.init ng (fun i -> i) in
        Array.sort (fun a b -> compare contrib.(b) contrib.(a)) order;
        (* Moving even a feather-weight group still rewrites every heavy
           rank it bubbles through, so groups that cannot matter (under
           ~1.5% of the live population) are not walked at all. *)
        let total = Array.fold_left ( + ) 0 contrib in
        let skip_below = total / 64 in
        let aborts = ref 0 in
        Array.iter
          (fun g ->
            if contrib.(g) <= skip_below then ()
            else
            let p = ref 0 in
            Array.iteri (fun j id -> if id = g then p := j) ids;
            let best = ref (live_size m) in
            let best_p = ref !p in
            let step move upd limit =
              let go = ref true in
              while !go && !p <> limit do
                move !p;
                p := upd !p;
                let s = live_size m in
                if s < !best then begin
                  best := s;
                  best_p := !p
                end
                else if
                  float_of_int s > t.max_growth *. float_of_int !best
                then begin
                  incr aborts;
                  go := false
                end
              done
            in
            let down () = step move_down (fun p -> p + 1) (ng - 1) in
            let up () = step move_up (fun p -> p - 1) 0 in
            (* walk toward the nearer end first, then sweep back *)
            if ng - 1 - !p <= !p then begin
              down ();
              up ()
            end
            else begin
              up ();
              down ()
            end;
            while !p < !best_p do
              move_down !p;
              incr p
            done;
            while !p > !best_p do
              move_up !p;
              decr p
            done)
          order;
        !aborts
      end)

(* -- Windowed permutation search ----------------------------------------- *)

(* Exhaustive search of every permutation of [k] consecutive groups,
   slid across the order.  The cyclic adjacent-swap sequences visit all
   k! states and return to the start, so landing on the winner is a
   replayed prefix. *)
let window ?(trigger = "manual") t k =
  if k <> 2 && k <> 3 then invalid_arg "Reorder.window: k must be 2 or 3";
  with_reorder t ~trigger ~strategy:(Printf.sprintf "window%d" k)
    (fun () ->
      let m = t.man in
      let widths = build_groups t in
      let ng = Array.length widths in
      if ng < k then 0
      else begin
        let gswap i =
          swap_groups m (start_of widths i) widths.(i) widths.(i + 1);
          let w = widths.(i) in
          widths.(i) <- widths.(i + 1);
          widths.(i + 1) <- w
        in
        let seq = if k = 2 then [| 0; 0 |] else [| 0; 1; 0; 1; 0; 1 |] in
        let ns = Array.length seq in
        for i = 0 to ng - k do
          let best = ref (live_size m) in
          let best_state = ref 0 in
          for j = 0 to ns - 2 do
            gswap (i + seq.(j));
            let s = live_size m in
            if s < !best then begin
              best := s;
              best_state := j + 1
            end
          done;
          (* currently in state ns-1; cycle round to the best state *)
          if !best_state <> ns - 1 then begin
            gswap (i + seq.(ns - 1));
            for j = 0 to !best_state - 1 do
              gswap (i + seq.(j))
            done
          end
        done;
        0
      end)

(* -- Interleave / de-interleave transforms ------------------------------- *)

let move_var_to m v target =
  let l = M.level_of_var m v in
  if l < target then
    for s = l to target - 1 do
      M.swap_adjacent m s
    done
  else if l > target then
    for s = l - 1 downto target do
      M.swap_adjacent m s
    done

(* Place the sequence contiguously from the topmost level any of its
   variables currently occupies.  Placing top-down never disturbs the
   already-placed prefix: every unplaced variable still sits strictly
   below it. *)
let apply_var_sequence m seq =
  let start =
    Array.fold_left
      (fun acc v -> min acc (M.level_of_var m v))
      max_int seq
  in
  Array.iteri (fun k v -> move_var_to m v (start + k)) seq

let find_block t name =
  match List.find_opt (fun b -> b.bname = name) t.blocks with
  | Some b -> b
  | None -> invalid_arg ("Reorder: unregistered block " ^ name)

let interleave ?(trigger = "manual") t na nb =
  let a = find_block t na and b = find_block t nb in
  with_reorder t ~trigger ~strategy:"interleave" (fun () ->
      let wa = Array.length a.bvars and wb = Array.length b.bvars in
      (* MSB-aligned round-robin, matching Fdd.extdomains_interleaved. *)
      let seq = ref [] in
      for bit = 0 to max wa wb - 1 do
        if bit < wa then seq := a.bvars.(bit) :: !seq;
        if bit < wb then seq := b.bvars.(bit) :: !seq
      done;
      apply_var_sequence t.man (Array.of_list (List.rev !seq));
      0)

let deinterleave ?(trigger = "manual") t na nb =
  let a = find_block t na and b = find_block t nb in
  with_reorder t ~trigger ~strategy:"deinterleave" (fun () ->
      apply_var_sequence t.man (Array.append a.bvars b.bvars);
      0)

(* -- Random swaps (test harness) ----------------------------------------- *)

let random_swaps ?(seed = 0) t n =
  let m = t.man in
  let nv = M.num_vars m in
  if nv >= 2 && n > 0 then begin
    let st = Random.State.make [| seed |] in
    with_reorder t ~trigger:"manual" ~strategy:"random" (fun () ->
        for _ = 1 to n do
          M.swap_adjacent m (Random.State.int st (nv - 1))
        done;
        0)
  end

(* -- Auto trigger -------------------------------------------------------- *)

(* Fired by [Manager.checkpoint] at a safe point once the allocated-node
   population crosses the armed threshold.  Allocated counts garbage,
   and between collections garbage dominates, so the hook first GCs and
   only sifts if the *live* population has really crossed [threshold].
   Either way it re-arms at live + max(threshold, live): at least
   [threshold] fresh allocations must happen before the hook runs again,
   so a workload that genuinely needs the nodes does not thrash in
   gc/reorder loops, and a converged order stops paying. *)
let install_auto t ~threshold =
  let m = t.man in
  M.set_reorder_threshold m threshold;
  M.set_reorder_hook m
    (Some
       (fun () ->
         M.gc m;
         if M.live_nodes m >= threshold then begin
           t.auto_fired <- t.auto_fired + 1;
           sift ~trigger:"auto-threshold" t
         end;
         let live = M.live_nodes m in
         M.set_reorder_threshold m (live + max threshold live)))

let disable_auto t =
  let m = t.man in
  M.set_reorder_threshold m 0;
  M.set_reorder_hook m None
