(** Interprocedural frequency analysis: a static execution-weight for
    every relational expression in a typed program.

    Per method, the typed-AST CFG ([Jedd_lang.Cfg.build_ast]) is run
    through {!Loops}: each natural loop multiplies the weight of its
    body nodes by [loop_factor], or by [fixpoint_factor] when the loop
    is recognised as a fixed-point loop (its body contains a condition
    with a relational comparison and a successor outside the body —
    the [while (old != current)] shape of §5's worklist solvers).
    Method weights then propagate over the call graph with the
    monotone worklist solver: the lattice is saturating integers under
    [max], call-site nodes multiply the caller's weight by the site's
    local loop weight, and recursion saturates at {!weight_cap}.

    The resulting per-expression weights drive the weighted
    domain-assignment objective ([Encode.solve_weighted]) and the
    JL201 cost lint. *)

type t

val weight_cap : int
(** Saturation bound for all weight arithmetic (10^9). *)

val sat_mul : int -> int -> int
(** Multiplication saturating at {!weight_cap} (0 absorbs). *)

val graph_weights :
  n:int -> entries:int list -> edges:(int * int * int) list -> int array
(** The interprocedural propagation alone, over an arbitrary call
    multigraph on dense integer nodes [0..n-1]: every entry starts at
    weight 1, an edge [(caller, callee, factor)] carries
    [caller_weight * factor] (saturating, [factor] floored at 1) to the
    callee, joins are [max], recursion saturates at {!weight_cap}.
    Returns the per-node weights; nodes unreachable from the entries get
    0.  Out-of-range endpoints are ignored.  This is the engine behind
    {!analyze}'s method weights, exposed for weighing call graphs that
    do not come from a Jedd program (e.g. the analysed subject program's
    own call graph in the weighted call-graph analysis). *)

val analyze :
  ?loop_factor:int -> ?fixpoint_factor:int -> Jedd_lang.Tast.tprogram -> t
(** Run the analysis.  [loop_factor] (default 8) scales plain loop
    bodies, [fixpoint_factor] (default 32) scales fixed-point loop
    bodies; nesting multiplies. *)

val method_weight : t -> string -> int
(** Call-graph weight of a qualified method name ([>= 1]; 1 for
    unknown names). *)

val weight : t -> int -> int
(** Static execution-weight of an expression id: the method weight
    times the product of the factors of every enclosing loop.  1 for
    ids the analysis never saw. *)

val depth : t -> int -> int
(** Loop-nesting depth of an expression id (0 outside all loops). *)

val in_fixpoint : t -> int -> bool
(** Whether the expression id sits inside a recognised fixed-point
    loop. *)
