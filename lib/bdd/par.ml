(* Work-stealing parallel BDD operations over OCaml 5 domains.

   The pool follows the HermesBDD recipe: recursive apply forks its two
   cofactor sub-problems near the top of the DAG and falls into the
   plain sequential kernels ({!Ops}, {!Quant}, {!Replace}) below a depth
   cutoff, where task granularity would no longer pay for itself.  Tasks
   live in per-worker deques — owners push and pop LIFO at the tail
   (locality), thieves steal FIFO from the head (big, old tasks).  A
   [join] on an unfinished task does not block: the joiner claims the
   task itself or helps by stealing others, so the pool never needs more
   workers than domains.

   The pool relies on the manager being in parallel mode
   ({!Manager.enter_parallel}): [mk] hash-conses through striped bucket
   locks and every domain memoises through its own cache, so the same
   sequential recursions are safe from all workers.  Results are
   bit-identical to the sequential engine because hash-consing keeps
   BDDs canonical. *)

type man = Manager.t
type node = Manager.node

(* -- Tasks and deques ---------------------------------------------------- *)

(* state: 0 = pending (in a deque), 1 = claimed/running, 2 = done,
   3 = raised.  [res]/[exn] are published before the state moves to 2/3;
   the Atomic write/read pair orders them. *)
type task = {
  state : int Atomic.t;
  work : unit -> int;
  mutable res : int;
  mutable exn : exn option;
}

type deque = {
  dlock : Mutex.t;
  mutable buf : task option array;
  mutable head : int; (* steal end *)
  mutable tail : int; (* owner end *)
}

let deque_make () =
  { dlock = Mutex.create (); buf = Array.make 64 None; head = 0; tail = 0 }

let deque_push dq t =
  Mutex.lock dq.dlock;
  let cap = Array.length dq.buf in
  if dq.tail = cap then begin
    let live = dq.tail - dq.head in
    if live * 2 <= cap then begin
      (* plenty of dead space at the front: compact in place *)
      Array.blit dq.buf dq.head dq.buf 0 live;
      Array.fill dq.buf live (cap - live) None
    end
    else begin
      let buf = Array.make (cap * 2) None in
      Array.blit dq.buf dq.head buf 0 live;
      dq.buf <- buf
    end;
    dq.head <- 0;
    dq.tail <- live
  end;
  dq.buf.(dq.tail) <- Some t;
  dq.tail <- dq.tail + 1;
  Mutex.unlock dq.dlock

let deque_pop dq =
  Mutex.lock dq.dlock;
  let r =
    if dq.tail > dq.head then begin
      dq.tail <- dq.tail - 1;
      let t = dq.buf.(dq.tail) in
      dq.buf.(dq.tail) <- None;
      t
    end
    else None
  in
  Mutex.unlock dq.dlock;
  r

let deque_steal dq =
  Mutex.lock dq.dlock;
  let r =
    if dq.tail > dq.head then begin
      let t = dq.buf.(dq.head) in
      dq.buf.(dq.head) <- None;
      dq.head <- dq.head + 1;
      t
    end
    else None
  in
  Mutex.unlock dq.dlock;
  r

(* -- Pool ---------------------------------------------------------------- *)

type pool = {
  puid : int;
  jobs : int;
  cutoff : int;
  deques : deque array;
  mutable domains : unit Domain.t array;
  run_lock : Mutex.t; (* serialises top-level [run] calls *)
  gate_lock : Mutex.t;
  gate_cond : Condition.t;
  active : bool Atomic.t;
  stop : bool Atomic.t;
  mutable cur_mgr : man option; (* manager of the run in flight *)
  mutable working : int; (* workers inside the current run *)
  steals : int Atomic.t;
  forks : int Atomic.t;
}

let next_puid = ref 0

(* Which deque the current domain owns, per pool. *)
let wid_key : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let set_wid pool id =
  let cell = Domain.DLS.get wid_key in
  cell := (pool.puid, id) :: List.remove_assoc pool.puid !cell

let clear_wid pool =
  let cell = Domain.DLS.get wid_key in
  cell := List.remove_assoc pool.puid !cell

let my_wid pool =
  match List.assoc_opt pool.puid !(Domain.DLS.get wid_key) with
  | Some id -> id
  | None -> invalid_arg "Par: fork/join outside a pool run"

let exec_task (t : task) =
  (try t.res <- t.work ()
   with e ->
     t.exn <- Some e;
     Atomic.set t.state 3);
  if t.exn = None then Atomic.set t.state 2

(* Scan every other deque once, starting after our own. *)
let try_steal pool me =
  let n = Array.length pool.deques in
  let rec go i =
    if i >= n then None
    else
      let v = (me + i) mod n in
      match deque_steal pool.deques.(v) with
      | Some t ->
        Atomic.incr pool.steals;
        Some t
      | None -> go (i + 1)
  in
  go 1

(* The gate handshake: a worker may only enter a run while it is active,
   and it announces itself in [pool.working] under the gate lock before
   touching anything — [run] does not finish until [working] drops back
   to zero, so a worker can never keep stealing into the next run (or
   after the manager left parallel mode).  Workers join the apply region
   the run's caller already holds ([region_join]), so a pending
   stop-the-world phase can never deadlock a late worker against the
   coordinator. *)
let rec worker_loop pool id =
  Mutex.lock pool.gate_lock;
  while not (Atomic.get pool.active || Atomic.get pool.stop) do
    Condition.wait pool.gate_cond pool.gate_lock
  done;
  if Atomic.get pool.stop then Mutex.unlock pool.gate_lock
  else begin
    let m = pool.cur_mgr in
    pool.working <- pool.working + 1;
    Mutex.unlock pool.gate_lock;
    (match m with Some m -> Manager.region_join m | None -> ());
    set_wid pool id;
    while Atomic.get pool.active do
      match deque_pop pool.deques.(id) with
      | Some t -> if Atomic.compare_and_set t.state 0 1 then exec_task t
      | None -> (
        match try_steal pool id with
        | Some t -> if Atomic.compare_and_set t.state 0 1 then exec_task t
        | None -> Domain.cpu_relax ())
    done;
    clear_wid pool;
    (match m with Some m -> Manager.region_end m | None -> ());
    Mutex.lock pool.gate_lock;
    pool.working <- pool.working - 1;
    Condition.broadcast pool.gate_cond;
    Mutex.unlock pool.gate_lock;
    worker_loop pool id
  end

let create ?(cutoff = 6) ~jobs () =
  if jobs < 1 || jobs > 64 then invalid_arg "Par.create: jobs must be in 1..64";
  incr next_puid;
  let pool =
    {
      puid = !next_puid;
      jobs;
      cutoff;
      deques = Array.init jobs (fun _ -> deque_make ());
      domains = [||];
      run_lock = Mutex.create ();
      gate_lock = Mutex.create ();
      gate_cond = Condition.create ();
      active = Atomic.make false;
      stop = Atomic.make false;
      cur_mgr = None;
      working = 0;
      steals = Atomic.make 0;
      forks = Atomic.make 0;
    }
  in
  pool.domains <-
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let jobs pool = pool.jobs
let stats pool = (Atomic.get pool.forks, Atomic.get pool.steals)

let shutdown pool =
  Mutex.lock pool.gate_lock;
  Atomic.set pool.stop true;
  Condition.broadcast pool.gate_cond;
  Mutex.unlock pool.gate_lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

(* [run pool m f] executes [f] with the pool's workers helping: the
   calling domain becomes worker 0.  Top-level runs are serialised (one
   parallel apply at a time per pool); the manager must already be in
   parallel mode. *)
let run pool m f =
  if not (Manager.in_parallel m) then
    invalid_arg "Par.run: manager not in parallel mode";
  Mutex.lock pool.run_lock;
  (* The caller's region spans the whole run and outlives every worker's
     [region_join]; this acquisition is the one that waits out any
     pending stop-the-world phase. *)
  Manager.region_begin m;
  set_wid pool 0;
  Mutex.lock pool.gate_lock;
  pool.cur_mgr <- Some m;
  Atomic.set pool.active true;
  Condition.broadcast pool.gate_cond;
  Mutex.unlock pool.gate_lock;
  let finish () =
    (* when [f] returns every forked task has been joined, so workers
       are only scanning empty deques: deactivate, then wait for each
       one to leave the run before tearing the region down *)
    Atomic.set pool.active false;
    Mutex.lock pool.gate_lock;
    while pool.working > 0 do
      Condition.wait pool.gate_cond pool.gate_lock
    done;
    pool.cur_mgr <- None;
    Mutex.unlock pool.gate_lock;
    clear_wid pool;
    Manager.region_end m;
    Mutex.unlock pool.run_lock
  in
  Fun.protect ~finally:finish f

let fork pool work =
  let me = my_wid pool in
  let t = { state = Atomic.make 0; work; res = 0; exn = None } in
  deque_push pool.deques.(me) t;
  Atomic.incr pool.forks;
  t

let rec join pool t =
  match Atomic.get t.state with
  | 2 -> t.res
  | 3 -> (match t.exn with Some e -> raise e | None -> assert false)
  | 0 when Atomic.compare_and_set t.state 0 1 ->
    (* nobody picked it up yet: run it ourselves *)
    exec_task t;
    join pool t
  | _ ->
    (* someone is running it; help by draining other work *)
    let me = my_wid pool in
    (match deque_pop pool.deques.(me) with
    | Some t' -> if Atomic.compare_and_set t'.state 0 1 then exec_task t'
    | None -> (
      match try_steal pool me with
      | Some t' -> if Atomic.compare_and_set t'.state 0 1 then exec_task t'
      | None -> Domain.cpu_relax ()));
    join pool t

(* -- Parallel recursions ------------------------------------------------- *)

(* Each mirrors its sequential kernel exactly — same terminal cases, same
   operand normalisation, same cache tags — and forks the two cofactor
   sub-problems while [depth < cutoff].  Below the cutoff the sequential
   kernel runs the whole subtree (memoising through the calling domain's
   cache), so a sub-result computed on one worker is reused by that
   worker's later sequential descents. *)

let zero = Manager.zero
let one = Manager.one

let rec pband pool m depth f g =
  if f = g then f
  else if f = zero || g = zero then zero
  else if f = one then g
  else if g = one then f
  else if depth >= pool.cutoff then Ops.band m f g
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = Manager.cache_lookup m Ops.tag_and f g 0 in
    if r >= 0 then r
    else begin
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let t1 = fork pool (fun () -> pband pool m (depth + 1) f1 g1) in
      let r0 = pband pool m (depth + 1) f0 g0 in
      let r1 = join pool t1 in
      let r = Manager.mk m lvl r0 r1 in
      Manager.cache_store m Ops.tag_and f g 0 r;
      r
    end
  end

let rec pbor pool m depth f g =
  if f = g then f
  else if f = one || g = one then one
  else if f = zero then g
  else if g = zero then f
  else if depth >= pool.cutoff then Ops.bor m f g
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = Manager.cache_lookup m Ops.tag_or f g 0 in
    if r >= 0 then r
    else begin
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let t1 = fork pool (fun () -> pbor pool m (depth + 1) f1 g1) in
      let r0 = pbor pool m (depth + 1) f0 g0 in
      let r1 = join pool t1 in
      let r = Manager.mk m lvl r0 r1 in
      Manager.cache_store m Ops.tag_or f g 0 r;
      r
    end
  end

let rec pbdiff pool m depth f g =
  if f = g || f = zero || g = one then zero
  else if g = zero then f
  else if f = one then Ops.bnot m g
  else if depth >= pool.cutoff then Ops.bdiff m f g
  else begin
    let r = Manager.cache_lookup m Ops.tag_diff f g 0 in
    if r >= 0 then r
    else begin
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let t1 = fork pool (fun () -> pbdiff pool m (depth + 1) f1 g1) in
      let r0 = pbdiff pool m (depth + 1) f0 g0 in
      let r1 = join pool t1 in
      let r = Manager.mk m lvl r0 r1 in
      Manager.cache_store m Ops.tag_diff f g 0 r;
      r
    end
  end

let rec pbxor pool m depth f g =
  if f = g then zero
  else if f = zero then g
  else if g = zero then f
  else if f = one then Ops.bnot m g
  else if g = one then Ops.bnot m f
  else if depth >= pool.cutoff then Ops.bxor m f g
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = Manager.cache_lookup m Ops.tag_xor f g 0 in
    if r >= 0 then r
    else begin
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let t1 = fork pool (fun () -> pbxor pool m (depth + 1) f1 g1) in
      let r0 = pbxor pool m (depth + 1) f0 g0 in
      let r1 = join pool t1 in
      let r = Manager.mk m lvl r0 r1 in
      Manager.cache_store m Ops.tag_xor f g 0 r;
      r
    end
  end

let rec pexist pool m depth f cube =
  if Manager.is_terminal f then f
  else begin
    let lvl = Manager.level m f in
    let cube = Quant.cube_from m cube lvl in
    if Manager.is_terminal cube then f
    else if depth >= pool.cutoff then Quant.exist m f cube
    else begin
      let r = Manager.cache_lookup m Quant.tag_exist f cube 0 in
      if r >= 0 then r
      else begin
        let t1 =
          fork pool (fun () -> pexist pool m (depth + 1) (Manager.high m f) cube)
        in
        let r0 = pexist pool m (depth + 1) (Manager.low m f) cube in
        let r1 = join pool t1 in
        let r =
          if Manager.level m cube = lvl then Ops.bor m r0 r1
          else Manager.mk m lvl r0 r1
        in
        Manager.cache_store m Quant.tag_exist f cube 0 r;
        r
      end
    end
  end

let rec prelprod pool m depth f g cube =
  if f = zero || g = zero then zero
  else if Manager.is_terminal f && Manager.is_terminal g then one
  else if depth >= pool.cutoff then Quant.relprod m f g cube
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let lf = Manager.level m f and lg = Manager.level m g in
    let lvl = min lf lg in
    let cube = Quant.cube_from m cube lvl in
    if Manager.is_terminal cube then pband pool m depth f g
    else begin
      let r = Manager.cache_lookup m Quant.tag_relprod f g cube in
      if r >= 0 then r
      else begin
        let f0, f1 =
          if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
        in
        let g0, g1 =
          if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
        in
        let t1 = fork pool (fun () -> prelprod pool m (depth + 1) f1 g1 cube) in
        let r0 = prelprod pool m (depth + 1) f0 g0 cube in
        let r1 = join pool t1 in
        let r =
          if Manager.level m cube = lvl then Ops.bor m r0 r1
          else Manager.mk m lvl r0 r1
        in
        Manager.cache_store m Quant.tag_relprod f g cube r;
        r
      end
    end
  end

(* Parallel mirror of {!Replace.fused_relprod}.  The sequential kernel
   short-circuits [bor one _]; forking both sides loses that cut but not
   correctness (hash-consing keeps the result identical). *)
let rec pfused_relprod pool m depth f g p cube =
  if f = zero || g = zero then zero
  else if Manager.is_terminal f && Manager.is_terminal g then one
  else if g = one && Manager.is_terminal cube then f
  else if
    f = one && Manager.is_terminal cube
    && Manager.level m g >= Replace.perm_map_len p
  then g
  else if depth >= pool.cutoff then Replace.fused_relprod m f g p cube
  else begin
    let lf = Manager.level m f in
    let lg =
      if Manager.is_terminal g then Manager.terminal_level
      else Replace.apply_level p (Manager.level m g)
    in
    let lvl = if lf < lg then lf else lg in
    let cube = Replace.cube_from m cube lvl in
    let key_c = Replace.pack_key (Replace.perm_id p) cube in
    let r = Manager.cache_lookup m Replace.tag_relprod_replace f g key_c in
    if r >= 0 then r
    else begin
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let t1 =
        fork pool (fun () -> pfused_relprod pool m (depth + 1) f1 g1 p cube)
      in
      let r0 = pfused_relprod pool m (depth + 1) f0 g0 p cube in
      let r1 = join pool t1 in
      let r =
        if (not (Manager.is_terminal cube)) && Manager.level m cube = lvl then
          Ops.bor m r0 r1
        else Manager.mk m lvl r0 r1
      in
      Manager.cache_store m Replace.tag_relprod_replace f g key_c r;
      r
    end
  end

let rec pfused_replace_exist pool m depth f p cube =
  if Manager.is_terminal f then f
  else if
    Manager.is_terminal cube && Manager.level m f >= Replace.perm_map_len p
  then f
  else if depth >= pool.cutoff then Replace.fused_replace_exist m f p cube
  else begin
    let lvl = Manager.level m f in
    let cube = Replace.cube_from m cube lvl in
    let key_c = Replace.pack_key (Replace.perm_id p) cube in
    let r = Manager.cache_lookup m Replace.tag_replace_exist f key_c 0 in
    if r >= 0 then r
    else begin
      let t1 =
        fork pool (fun () ->
            pfused_replace_exist pool m (depth + 1) (Manager.high m f) p cube)
      in
      let r0 = pfused_replace_exist pool m (depth + 1) (Manager.low m f) p cube in
      let r1 = join pool t1 in
      let r =
        if (not (Manager.is_terminal cube)) && Manager.level m cube = lvl then
          Ops.bor m r0 r1
        else Manager.mk m (Replace.apply_level p lvl) r0 r1
      in
      Manager.cache_store m Replace.tag_replace_exist f key_c 0 r;
      r
    end
  end

(* -- Top-level entry points --------------------------------------------- *)

let band pool m f g = run pool m (fun () -> pband pool m 0 f g)
let bor pool m f g = run pool m (fun () -> pbor pool m 0 f g)
let bdiff pool m f g = run pool m (fun () -> pbdiff pool m 0 f g)
let bxor pool m f g = run pool m (fun () -> pbxor pool m 0 f g)
let exist pool m f cube = run pool m (fun () -> pexist pool m 0 f cube)

let relprod pool m f g cube =
  run pool m (fun () -> prelprod pool m 0 f g cube)

(* Fused kernels: same dispatch as the sequential top levels
   ({!Replace.relprod_replace} / {!Replace.replace_exist}), with the
   fused recursion parallelised.  The materialising fallback stays
   sequential — it is rare and already an admission of defeat. *)
let relprod_replace pool m f g p cube =
  if Replace.is_identity p then
    if Manager.is_terminal cube then band pool m f g
    else relprod pool m f g cube
  else if Replace.order_preserving_on m p g then
    run pool m (fun () -> pfused_relprod pool m 0 f g p cube)
  else
    let g' = Replace.replace m g p in
    if Manager.is_terminal cube then band pool m f g'
    else relprod pool m f g' cube

let replace_exist pool m f p cube =
  if Replace.is_identity p then exist pool m f cube
  else if Replace.order_preserving_on m p f then
    run pool m (fun () -> pfused_replace_exist pool m 0 f p cube)
  else Replace.replace m (exist pool m f cube) p

(* -- Job-count parsing --------------------------------------------------- *)

let default_jobs () = max 1 (min 64 (Domain.recommended_domain_count ()))

let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 && n <= 64 -> n
  | Some n ->
    invalid_arg
      (Printf.sprintf "invalid job count %d (expected 1 <= jobs <= 64)" n)
  | None ->
    invalid_arg
      (Printf.sprintf "invalid job count %S (expected an integer, 1..64)" s)
