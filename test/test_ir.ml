(* Tests for the lowered IR (§3.2 code generation): lowering structure,
   and differential execution — the register machine and the
   tree-walking interpreter must produce identical relations on the same
   programs and inputs. *)

module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp
module Ir = Jedd_lang.Ir
module Lower = Jedd_lang.Lower
module Ir_interp = Jedd_lang.Ir_interp
module R = Jedd_relation.Relation

let preamble =
  "domain Type 8;\n\
   domain Signature 8;\n\
   domain Method 8;\n\
   attribute type : Type;\n\
   attribute rectype : Type;\n\
   attribute tgttype : Type;\n\
   attribute subtype : Type;\n\
   attribute supertype : Type;\n\
   attribute signature : Signature;\n\
   attribute method : Method;\n\
   physdom T1;\nphysdom T2;\nphysdom T3;\nphysdom S1;\nphysdom M1;\n"

let compile src =
  match Driver.compile [ ("t.jedd", src) ] with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)

let figure4 =
  preamble
  ^ "class Resolver {\n\
     \  <type, signature, method> declaresMethod;\n\
     \  <rectype, signature, tgttype, method> answer = 0B;\n\
     \  public void resolve( <rectype, signature> receiverTypes, <subtype, supertype:T3> extend ) {\n\
     \    <rectype, signature, tgttype> toResolve = (rectype => rectype tgttype) receiverTypes;\n\
     \    do {\n\
     \      <rectype:T1, signature:S1, tgttype:T2, method:M1> resolved =\n\
     \        toResolve{tgttype, signature} >< declaresMethod{type, signature};\n\
     \      answer |= resolved;\n\
     \      toResolve -= (method=>) resolved;\n\
     \      toResolve = (supertype=>tgttype) (toResolve{tgttype} <> extend{subtype});\n\
     \    } while( toResolve != 0B );\n\
     \  }\n\
     }\n"

(* run a program + scenario through both engines, compare every field *)
let differential src ~fields ~scenario =
  let c = compile src in
  (* tree interpreter *)
  let inst1 = Driver.instantiate c in
  scenario inst1 (fun q args -> ignore (Interp.call inst1 q args));
  let res1 = List.map (fun f -> R.tuples (Interp.get_field inst1 f)) fields in
  (* IR engine on a fresh instance *)
  let inst2 = Driver.instantiate c in
  let ir = Ir_interp.create c inst2 in
  scenario inst2 (fun q args -> ignore (Ir_interp.call ir q args));
  let res2 = List.map (fun f -> R.tuples (Interp.get_field inst2 f)) fields in
  List.iter2
    (fun (f : string) (t1, t2) ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "field %s agrees" f)
        t1 t2)
    fields
    (List.combine res1 res2)

let test_lowering_structure () =
  let c = compile figure4 in
  let m = Lower.lower_method c "Resolver.resolve" in
  Alcotest.(check bool) "allocated registers" true (m.Ir.c_nregs > 5);
  Alcotest.(check bool) "body nonempty" true (Ir.method_size m > 10);
  let text = Format.asprintf "%a" Ir.pp_method m in
  Alcotest.(check bool) "has a join" true
    (Str.string_match (Str.regexp ".*><.*") (String.map (fun c -> if c = '\n' then ' ' else c) text) 0);
  Alcotest.(check bool) "has frees" true
    (Str.string_match (Str.regexp ".*free r.*") (String.map (fun c -> if c = '\n' then ' ' else c) text) 0)

let test_replace_sites_lowered () =
  (* a field-to-field assignment across layouts must lower to IReplace *)
  let src =
    "domain Type 8;\nattribute type : Type;\nphysdom TA;\nphysdom TB;\n\
     class Rep { <type:TA> a; <type:TB> b; public void go() { b = a; } }\n"
  in
  let c = compile src in
  let m = Lower.lower_method c "Rep.go" in
  let has_replace = ref false in
  let rec scan (s : Ir.cstmt) =
    match s with
    | Ir.CExec is ->
      List.iter (function Ir.IReplace _ -> has_replace := true | _ -> ()) is
    | Ir.CBlock b -> List.iter scan b
    | Ir.CIf (_, th, el) ->
      List.iter scan th;
      List.iter scan el
    | Ir.CWhile (_, b) | Ir.CDoWhile (b, _) -> List.iter scan b
    | Ir.CReturn (is, _) ->
      List.iter (function Ir.IReplace _ -> has_replace := true | _ -> ()) is
  in
  List.iter scan m.Ir.c_body;
  Alcotest.(check bool) "IReplace present" true !has_replace

let test_figure4_differential () =
  differential figure4 ~fields:[ "Resolver.answer" ] ~scenario:(fun inst call ->
      let u = Interp.universe inst in
      let set f tuples =
        let r = R.of_tuples u (Interp.schema_of_var inst f) tuples in
        Interp.set_field inst f r;
        R.release r
      in
      set "Resolver.declaresMethod" [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ];
      let recv =
        R.of_tuples u
          (Interp.schema_of_var inst "Resolver.resolve.receiverTypes")
          [ [ 1; 0 ]; [ 1; 1 ] ]
      in
      let extend =
        R.of_tuples u
          (Interp.schema_of_var inst "Resolver.resolve.extend")
          [ [ 1; 0 ] ]
      in
      call "Resolver.resolve" [ Interp.VRel recv; Interp.VRel extend ])

let test_figure4_ir_result_correct () =
  let c = compile figure4 in
  let inst = Driver.instantiate c in
  let ir = Ir_interp.create c inst in
  let u = Interp.universe inst in
  let set f tuples =
    let r = R.of_tuples u (Interp.schema_of_var inst f) tuples in
    Interp.set_field inst f r;
    R.release r
  in
  set "Resolver.declaresMethod" [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ];
  let recv =
    R.of_tuples u
      (Interp.schema_of_var inst "Resolver.resolve.receiverTypes")
      [ [ 1; 0 ]; [ 1; 1 ] ]
  in
  let extend =
    R.of_tuples u
      (Interp.schema_of_var inst "Resolver.resolve.extend")
      [ [ 1; 0 ] ]
  in
  ignore (Ir_interp.call ir "Resolver.resolve" [ Interp.VRel recv; Interp.VRel extend ]);
  Alcotest.(check (list (list int)))
    "IR engine resolves the calls"
    [ [ 1; 0; 0; 0 ]; [ 1; 1; 1; 1 ] ]
    (R.tuples (Interp.get_field inst "Resolver.answer"))

let test_calls_differential () =
  let src =
    preamble
    ^ "class C {\n\
       \  <type:T1> f;\n\
       \  <type> get() { return f; }\n\
       \  public void bump( Type t ) { f |= new { t=>type }; }\n\
       \  public void m( Type t ) { bump(t); f = get() | f; }\n\
       }\n"
  in
  differential src ~fields:[ "C.f" ] ~scenario:(fun _inst call ->
      call "C.m" [ Interp.VObj 3 ];
      call "C.m" [ Interp.VObj 6 ])

let test_control_flow_differential () =
  let src =
    preamble
    ^ "class C {\n\
       \  <type:T1> acc;\n\
       \  public void m( <type> seed, <subtype, supertype:T2> succ ) {\n\
       \    <type> frontier = seed;\n\
       \    while (frontier != 0B) {\n\
       \      acc |= frontier;\n\
       \      frontier = (supertype=>type) (frontier{type} <> succ{subtype});\n\
       \      frontier -= acc;\n\
       \    }\n\
       \    if (acc == 0B) { acc = seed; } else { acc = acc | acc; }\n\
       \  }\n\
       }\n"
  in
  differential src ~fields:[ "C.acc" ] ~scenario:(fun inst call ->
      let u = Interp.universe inst in
      let seed =
        R.of_tuples u (Interp.schema_of_var inst "C.m.seed") [ [ 0 ] ]
      in
      let succ =
        R.of_tuples u
          (Interp.schema_of_var inst "C.m.succ")
          [ [ 0; 1 ]; [ 1; 2 ]; [ 5; 6 ] ]
      in
      call "C.m" [ Interp.VRel seed; Interp.VRel succ ])

let test_pointsto_via_ir () =
  (* the Points-to analysis, executed entirely by the IR engine, must
     match the reference implementation *)
  let p = Jedd_minijava.Workload.generate Jedd_minijava.Workload.tiny in
  let src = Jedd_analyses.Suite.source_for p "Points-to Analysis" in
  let c = compile src in
  let inst = Driver.instantiate c in
  let ir = Ir_interp.create c inst in
  Jedd_analyses.Pointsto.load_facts inst p;
  ignore (Ir_interp.call ir "PointsTo.runNaive" []);
  let got = R.tuples (Interp.get_field inst "PointsTo.pt") in
  let ref_pt, _ = Jedd_minijava.Reference.points_to p in
  Alcotest.(check (list (list int)))
    "IR-run points-to matches reference"
    (Jedd_minijava.Reference.IPS.elements ref_pt
    |> List.map (fun (a, b) -> [ a; b ]))
    got

let test_no_leaks_via_ir () =
  (* after a full IR run, live handles = the instance's fields only *)
  let src =
    preamble
    ^ "class C {\n\
       \  <type:T1> f;\n\
       \  public void m( <type> x ) {\n\
       \    <type> a = x | x;\n\
       \    <type> b = a & x;\n\
       \    f = (a | b) - (a & b);\n\
       \    do { f = f | f; } while (false);\n\
       \  }\n\
       }\n"
  in
  let c = compile src in
  let inst = Driver.instantiate c in
  let ir = Ir_interp.create c inst in
  let u = Interp.universe inst in
  let before = Jedd_relation.Relation.live_root_count u in
  let x = R.of_tuples u (Interp.schema_of_var inst "C.m.x") [ [ 1 ]; [ 4 ] ] in
  ignore (Ir_interp.call ir "C.m" [ Interp.VRel x ]);
  (* x's handle was transferred to the callee and released there *)
  Alcotest.(check int) "no leaked handles" before
    (Jedd_relation.Relation.live_root_count u)

let suite =
  [
    Alcotest.test_case "lowering structure" `Quick test_lowering_structure;
    Alcotest.test_case "replace sites lowered" `Quick
      test_replace_sites_lowered;
    Alcotest.test_case "Figure 4 differential" `Quick
      test_figure4_differential;
    Alcotest.test_case "Figure 4 via IR is correct" `Quick
      test_figure4_ir_result_correct;
    Alcotest.test_case "calls differential" `Quick test_calls_differential;
    Alcotest.test_case "control flow differential" `Quick
      test_control_flow_differential;
    Alcotest.test_case "points-to via IR" `Quick test_pointsto_via_ir;
    Alcotest.test_case "no leaks via IR" `Quick test_no_leaks_via_ir;
  ]
