(** The profiler (§4.3): records every relational operation the runtime
    executes — time taken, node counts and (optionally) per-level shapes
    of the operand and result BDDs.

    The paper writes events into an SQL database browsed through CGI
    scripts; this recorder keeps them in memory and {!Report} renders the
    same three views (overview, per-operation, per-execution shape) as a
    static HTML file, plus CSV and SQL dumps. *)

type t

type row = {
  seq : int;  (** execution order *)
  event : Jedd_relation.Universe.op_event;
}

(** Aggregate per (operation, label) pair — the paper's overview view,
    extended with the BDD-layer costs (operation-cache activity and GC
    time) attributed to the operation. *)
type summary = {
  op : string;
  label : string;
  executions : int;
  total_millis : float;
  max_result_nodes : int;
  total_result_tuples : int;
  cache_hits : int;
  cache_misses : int;
  gcs : int;
  gc_millis : float;
  reorders : int;  (** variable-reorder passes during the operation *)
  reorder_swaps : int;  (** adjacent level swaps performed *)
  reorder_millis : float;
  spill_runs : int;  (** extmem backend: sorted runs written to disk *)
  spilled_bytes : int;  (** extmem backend: bytes spilled *)
  io_millis : float;  (** extmem backend: time inside spill-file I/O *)
  mt_cache_hits : int;  (** mtbdd backend: terminal-apply cache hits *)
  mt_cache_misses : int;
  mt_terminals : int;
      (** mtbdd backend: high-water mark of distinct terminal values
          observed across the executions (a gauge) *)
}

val create : unit -> t

val attach :
  t -> Jedd_relation.Universe.t -> level:Jedd_relation.Universe.profile_level -> unit
(** Subscribe this recorder to a universe's operation stream. *)

val detach : Jedd_relation.Universe.t -> unit

val record : t -> Jedd_relation.Universe.op_event -> unit
(** Record an event directly (used by the interpreter for events that do
    not originate in the relation runtime, e.g. iteration). *)

val rows : t -> row list
(** All recorded events, oldest first. *)

val summaries : t -> summary list
(** Sorted by total time, most expensive first. *)

val total_operations : t -> int
val clear : t -> unit

val runtime_stats : Jedd_relation.Universe.t -> (string * float) list
(** Lifetime BDD-layer counters of a universe as flat (name, value)
    pairs — cache hits/misses/evictions, GC and growth work, reorder
    passes/swaps, the extmem spill/I-O counters (zero on in-core), the
    mtbdd terminal-store counters ([mt_cache_*], [mt_distinct_terminals],
    [mt_live_nodes]; zero on boolean backends), and the
    [parallelism_stats] section.  Integer counters are widened to
    floats; [backend] is 0 in-core, 1 extmem, 2 hybrid, 3 mtbdd.
    Shared by the jeddd [stats] verb and the bench JSON reports. *)

val parallelism_stats : Jedd_relation.Universe.t -> (string * float) list
(** Just the parallelism section: pool width and fork/steal traffic,
    domains used, stop-the-world sections, barrier waits, allocation
    chunk refills, and — while parallel mode is active — the per-domain
    operation-cache slot counters ([slot<i>_cache_hits], ...). *)
