(* Semi-naive fixed-point engine: see fixpoint.mli for the contract. *)

module R = Jedd_relation.Relation

type stats = {
  iterations : int;
  delta_sizes : int array array;
  millis : float;
}

let total_delta st =
  Array.fold_left
    (fun acc row -> Array.fold_left ( + ) acc row)
    0 st.delta_sizes

let now_ms () = Unix.gettimeofday () *. 1000.0

let solve ?on_iter ~accs ~seed ~step () =
  let n = Array.length accs in
  if Array.length seed <> n then
    invalid_arg "Fixpoint.solve: seed/accs length mismatch";
  let t0 = now_ms () in
  let acc = Array.map R.dup accs in
  (* iteration 0: full-width step over the current accumulators plus the
     re-derived non-recursive seed — the naive first iteration cold, the
     input-change re-fire warm *)
  let cand0 = step ~deltas:acc ~accs:acc in
  if Array.length cand0 <> n then
    invalid_arg "Fixpoint.solve: step arity mismatch";
  let deltas =
    Array.init n (fun i ->
        let u = R.union seed.(i) cand0.(i) in
        R.release cand0.(i);
        let d = R.diff u acc.(i) in
        R.release u;
        d)
  in
  let sizes = ref [] in
  let iters = ref 0 in
  let record () =
    let s = Array.map R.size deltas in
    sizes := s :: !sizes;
    (match on_iter with Some f -> f ~iter:!iters ~sizes:s | None -> ());
    incr iters;
    Array.exists (fun x -> x > 0) s
  in
  let absorb () =
    Array.iteri
      (fun i d ->
        let u = R.union acc.(i) d in
        R.release acc.(i);
        acc.(i) <- u)
      deltas
  in
  let live = ref (record ()) in
  absorb ();
  while !live do
    let cand = step ~deltas ~accs:acc in
    if Array.length cand <> n then
      invalid_arg "Fixpoint.solve: step arity mismatch";
    Array.iteri
      (fun i c ->
        let d = R.diff c acc.(i) in
        R.release c;
        R.release deltas.(i);
        deltas.(i) <- d)
      cand;
    live := record ();
    absorb ()
  done;
  Array.iter R.release deltas;
  let st =
    {
      iterations = !iters;
      delta_sizes = Array.of_list (List.rev !sizes);
      millis = now_ms () -. t0;
    }
  in
  (acc, st)

let worklist ?on_iter ~accs ~frontier ~step () =
  let t0 = now_ms () in
  let acc = Array.map R.dup accs in
  let fr = ref (R.dup frontier) in
  let sizes = ref [] in
  let iters = ref 0 in
  while not (R.is_empty !fr) do
    let s = [| R.size !fr |] in
    sizes := s :: !sizes;
    (match on_iter with Some f -> f ~iter:!iters ~sizes:s | None -> ());
    incr iters;
    let cands, next = step ~frontier:!fr ~accs:acc in
    if Array.length cands <> Array.length acc then
      invalid_arg "Fixpoint.worklist: step arity mismatch";
    Array.iteri
      (fun i c ->
        let u = R.union acc.(i) c in
        R.release c;
        R.release acc.(i);
        acc.(i) <- u)
      cands;
    R.release !fr;
    fr := next
  done;
  R.release !fr;
  let st =
    {
      iterations = !iters;
      delta_sizes = Array.of_list (List.rev !sizes);
      millis = now_ms () -. t0;
    }
  in
  (acc, st)
