test/test_zdd.ml: Alcotest Array Fun Jedd_bdd List QCheck QCheck_alcotest Random Set
