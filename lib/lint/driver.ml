open Jedd_lang
module JDriver = Jedd_lang.Driver

type report = {
  diagnostics : Diag.t list;
  methods_verified : int;
  refcount_violations : int;
  replace_audit : Check_replace.audit_entry list;
}

let lint ?(replace_audit = true) ?max_paths_per_class ?hints
    (compiled : JDriver.compiled) : report =
  let prog = compiled.JDriver.tprog in
  let methods, prov = Lower.lower_program_ex compiled in
  let source_diags =
    Check_init.check prog @ Check_dead.check prog @ Check_empty.check prog
  in
  let chain_diags =
    List.concat_map
      (fun q ->
        match
          (Hashtbl.find_opt methods q, Hashtbl.find_opt prov.Lower.pp_methods q)
        with
        | Some m, Some mp -> Check_chains.check_method prog q m mp
        | _ -> [])
      prog.Tast.method_order
  in
  let audit, replace_diags =
    if replace_audit then
      Check_replace.audit ?max_paths_per_class compiled prov
    else ([], [])
  in
  let cost_diags = Check_cost.check ?hints compiled audit in
  let refcount_diags, methods_verified, refcount_violations =
    Refcount.check prog methods
  in
  {
    diagnostics =
      List.stable_sort Diag.compare_diag
        (source_diags @ chain_diags @ replace_diags @ cost_diags
       @ refcount_diags);
    methods_verified;
    refcount_violations;
    replace_audit = audit;
  }

let count sev r =
  List.length (List.filter (fun (d : Diag.t) -> d.Diag.severity = sev) r.diagnostics)

let exit_code r =
  if count Diag.Error r > 0 then 2 else if count Diag.Warning r > 0 then 1 else 0

let summary_line r =
  let forced =
    List.length
      (List.filter
         (fun (e : Check_replace.audit_entry) ->
           match e.Check_replace.verdict with
           | Check_replace.V_forced _ -> true
           | Check_replace.V_chosen -> false)
         r.replace_audit)
  in
  Printf.sprintf
    "jeddlint: %d error(s), %d warning(s), %d info(s); %d method(s) \
     refcount-verified (%d violation(s)); %d replace site(s) (%d forced, %d \
     avoidable)"
    (count Diag.Error r) (count Diag.Warning r) (count Diag.Info r)
    r.methods_verified r.refcount_violations
    (List.length r.replace_audit)
    forced
    (List.length r.replace_audit - forced)

let to_text r =
  String.concat "\n"
    (List.map Diag.to_text r.diagnostics @ [ summary_line r ])

let to_json r =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"diagnostics\": [\n";
  add
    (String.concat ",\n"
       (List.map (Diag.to_json ~indent:"    ") r.diagnostics));
  if r.diagnostics <> [] then add "\n";
  add "  ],\n";
  add
    (Printf.sprintf
       "  \"summary\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d },\n"
       (count Diag.Error r) (count Diag.Warning r) (count Diag.Info r));
  add
    (Printf.sprintf
       "  \"refcount\": { \"methods_verified\": %d, \"violations\": %d },\n"
       r.methods_verified r.refcount_violations);
  add "  \"replace_audit\": [\n";
  add
    (String.concat ",\n"
       (List.map
          (fun (e : Check_replace.audit_entry) ->
            let s = e.Check_replace.site in
            let p = s.Lower.rs_pos in
            let verdict, core =
              match e.Check_replace.verdict with
              | Check_replace.V_forced c -> ("forced", c)
              | Check_replace.V_chosen -> ("avoidable", [])
            in
            Printf.sprintf
              "    { \"method\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \
               \"from\": %s, \"to\": %s, \"verdict\": %s, \"core\": [%s] }"
              (Diag.json_string s.Lower.rs_method)
              (Diag.json_string p.Ast.file)
              p.Ast.line p.Ast.col
              (Diag.json_string (Check_replace.layout_to_string s.Lower.rs_from))
              (Diag.json_string (Check_replace.layout_to_string s.Lower.rs_to))
              (Diag.json_string verdict)
              (String.concat ", " (List.map Diag.json_string core)))
          r.replace_audit));
  if r.replace_audit <> [] then add "\n";
  add "  ]\n";
  add "}";
  Buffer.contents buf
