(* JL001: definite-assignment analysis of relation variables.

   A declaration without an initializer lowers to an implicit empty
   store, so reading such a variable before any real assignment is
   well-defined at runtime — and almost always a bug.  We run a forward
   may-be-unassigned analysis over the source CFG (no do-while
   compatibility edge: first-iteration facts are what matter here) and
   flag every read that some path reaches with the variable still only
   implicitly initialized. *)

open Jedd_lang
open Tast
module S = Set.Make (String)

let short_name key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

(* local/param reads, each with the position of the reading expression *)
let rec uses_with_pos (e : texpr) acc =
  match e.edesc with
  | TVar ((Vlocal | Vparam), key) -> (key, e.epos) :: acc
  | TVar (Vfield, _) | TEmpty | TFull | TLiteral _ -> acc
  | TBinop (_, l, r) -> uses_with_pos l (uses_with_pos r acc)
  | TReplace (_, c) -> uses_with_pos c acc
  | TJoin (_, l, _, r, _) -> uses_with_pos l (uses_with_pos r acc)
  | TCall (_, args) ->
    List.fold_left
      (fun acc (a : targ) ->
        match a with Targ_rel te -> uses_with_pos te acc | Targ_obj _ -> acc)
      acc args

let rec cond_uses_with_pos (c : tcond) acc =
  match c with
  | TBool _ -> acc
  | TNot c -> cond_uses_with_pos c acc
  | TAnd (a, b) | TOr (a, b) -> cond_uses_with_pos a (cond_uses_with_pos b acc)
  | TCmp_eq (l, r) | TCmp_ne (l, r) -> uses_with_pos l (uses_with_pos r acc)

(* reads performed by an atomic statement, and its effect on the
   may-unassigned set *)
let stmt_reads (s : tstmt) : (var_key * Ast.pos) list =
  match s with
  | TDecl (_, Some e, _) -> uses_with_pos e []
  | TDecl (_, None, _) -> []
  | TAssign (_, _, e, _) -> uses_with_pos e []
  | TOp_assign (_, key, kind, e, pos) ->
    let u = uses_with_pos e [] in
    if kind = Vlocal || kind = Vparam then (key, pos) :: u else u
  | TExpr e | TPrint e -> uses_with_pos e []
  | TReturn (Some e, _) -> uses_with_pos e []
  | TReturn (None, _) -> []
  | TIf _ | TWhile _ | TDo_while _ | TBlock _ -> []

let stmt_effect (s : tstmt) (unassigned : S.t) : S.t =
  match s with
  | TDecl (key, None, _) -> S.add key unassigned
  | TDecl (key, Some _, _) -> S.remove key unassigned
  | TAssign (key, (Vlocal | Vparam), _, _) -> S.remove key unassigned
  (* a compound assignment counts as the first real assignment too:
     report the read once, then stop cascading *)
  | TOp_assign (_, key, (Vlocal | Vparam), _, _) -> S.remove key unassigned
  | _ -> unassigned

module Solver = Jedd_dataflow.Solver (struct
  type t = S.t

  let bottom = S.empty
  let join = S.union
  let equal = S.equal
end)

let check_method (prog : tprogram) (m : tmeth) : Diag.t list =
  let cfg = Cfg.build_ast m in
  let transfer n (inp : S.t) =
    match cfg.Cfg.anodes.(n) with
    | Cfg.A_stmt s -> stmt_effect s inp
    | _ -> inp
  in
  let res =
    Solver.run cfg.Cfg.agraph Jedd_dataflow.Forward
      ~init:(fun _ -> S.empty)
      ~transfer
  in
  let out = ref [] in
  let seen = Hashtbl.create 8 in
  let report unassigned (key, pos) =
    if S.mem key unassigned && not (Hashtbl.mem seen (key, pos)) then begin
      Hashtbl.add seen (key, pos) ();
      let notes =
        match Hashtbl.find_opt prog.vars key with
        | Some vi ->
          [
            Format.asprintf "declared without an initializer at %a" Ast.pp_pos
              vi.v_pos;
          ]
        | None -> []
      in
      out :=
        Diag.make ~notes ~code:"JL001" ~severity:Diag.Warning ~pos
          (Printf.sprintf
             "relation variable '%s' may be read before it is assigned"
             (short_name key))
        :: !out
    end
  in
  Array.iteri
    (fun n node ->
      let inp = res.Solver.before n in
      match node with
      | Cfg.A_stmt s -> List.iter (report inp) (stmt_reads s)
      | Cfg.A_cond (c, _) -> List.iter (report inp) (cond_uses_with_pos c [])
      | _ -> ())
    cfg.Cfg.anodes;
  !out

let check (prog : tprogram) : Diag.t list =
  List.concat_map
    (fun q -> check_method prog (Hashtbl.find prog.methods q))
    prog.method_order
