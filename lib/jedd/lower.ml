(* Lowering: typed AST + physical-domain assignment -> IR (§3.2).

   All the decisions the paper's code generator makes become explicit
   here: which layout each constant/literal is materialised at, where a
   replace is inserted (exactly the assignment-edge breaks the SAT
   solution kept), when intermediates are freed (immediately after
   consumption), and where variables die (the §4.2 liveness analysis'
   kill sites). *)

open Tast
open Ir

(* Provenance the lint subsystem feeds on: where each kept replace came
   from (for the §3.3.3-style SAT-core audit) and which source position
   each result register was materialised at (for attributing IR-level
   diagnostics back to the program text). *)
type replace_site = {
  rs_method : string;  (* qualified method *)
  rs_eid : int;  (* the coerced subexpression's node id *)
  rs_pos : Ast.pos;
  rs_from : layout;  (* layout the subexpression computes *)
  rs_to : layout;  (* layout its consumer requires *)
}

type method_provenance = {
  mp_reg_pos : (reg, Ast.pos) Hashtbl.t;
  mp_replaces : replace_site list;  (* in lowering order *)
}

type program_provenance = {
  pp_methods : (string, method_provenance) Hashtbl.t;
  pp_replaces : replace_site list;  (* program order *)
}

type st = {
  compiled : Driver.compiled;
  meth_q : string;  (* qualified name of the method being lowered *)
  mutable next_reg : int;
  mutable code : instr list;  (* reversed *)
  reg_pos : (reg, Ast.pos) Hashtbl.t;
  mutable replaces : replace_site list;  (* reversed *)
}

let emit st i = st.code <- i :: st.code

let fresh st =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  r

let take_code st =
  let c = List.rev st.code in
  st.code <- [];
  c

let layout_at st site (schema : attr_info list) : layout =
  List.map
    (fun (a : attr_info) ->
      (a.a_name, (st.compiled.Driver.assignment.Encode.phys_of site a.a_name).p_name))
    schema

let var_layout st key =
  let v = Hashtbl.find st.compiled.Driver.tprog.vars key in
  layout_at st (Constraints.S_var key) v.v_schema

(* result: register plus whether the lowering owns it *)
let rec lower_expr st (e : texpr) : reg * bool =
  let ((r, _) as result) = lower_expr_raw st e in
  Hashtbl.replace st.reg_pos r e.epos;
  result

and lower_expr_raw st (e : texpr) : reg * bool =
  let site = Constraints.S_expr e.eid in
  match e.edesc with
  | TEmpty | TFull ->
    invalid_arg "Lower: 0B/1B lowered without an expected layout"
  | TVar (_, key) ->
    let r = fresh st in
    emit st (ILoad (r, key));
    (r, false)
  | TLiteral pieces ->
    let r = fresh st in
    let objs =
      List.map
        (fun (o, _) ->
          match o with
          | Tobj_int n -> Op_int n
          | Tobj_var (name, _) -> Op_objparam name)
        pieces
    in
    emit st (ILiteral (r, layout_at st site e.eschema, objs));
    (r, true)
  | TBinop (op, l, r_) ->
    let la = lower_consumed st l ~fallback:(lazy (layout_at st site e.eschema)) in
    let rb =
      lower_consumed st r_ ~fallback:(lazy (layout_at st site e.eschema))
    in
    let d = fresh st in
    emit st
      (match op with
      | Ast.Union -> IUnion (d, fst la, fst rb)
      | Ast.Inter -> IInter (d, fst la, fst rb)
      | Ast.Diff -> IDiff (d, fst la, fst rb));
    free_if st la;
    free_if st rb;
    (d, true)
  | TReplace (reps, c) ->
    let src = lower_consumed st c ~fallback:(lazy (assert false)) in
    let current = ref src in
    List.iter
      (fun rep ->
        let d = fresh st in
        (match rep with
        | TProj a -> emit st (IProject (d, fst !current, [ a.a_name ]))
        | TRen (a, b) -> emit st (IRename (d, fst !current, [ (a.a_name, b.a_name) ]))
        | TCopy (a, b, c') ->
          let phys_c =
            (st.compiled.Driver.assignment.Encode.phys_of site c'.a_name).p_name
          in
          if a.a_name = b.a_name then
            emit st (ICopy (d, fst !current, a.a_name, c'.a_name, phys_c))
          else begin
            let mid = fresh st in
            emit st (ICopy (mid, fst !current, a.a_name, c'.a_name, phys_c));
            emit st (IRename (d, mid, [ (a.a_name, b.a_name) ]));
            emit st (IFree mid)
          end);
        free_if st !current;
        current := (d, true))
      reps;
    !current
  | TJoin (kind, l, la, r_, ra) ->
    let a = lower_consumed st l ~fallback:(lazy (assert false)) in
    let b = lower_consumed st r_ ~fallback:(lazy (assert false)) in
    let d = fresh st in
    let lnames = List.map (fun x -> x.a_name) la in
    let rnames = List.map (fun x -> x.a_name) ra in
    emit st
      (match kind with
      | Ast.Join -> IJoin (d, fst a, lnames, fst b, rnames)
      | Ast.Compose -> ICompose (d, fst a, lnames, fst b, rnames));
    free_if st a;
    free_if st b;
    (d, true)
  | TCall (q, args) ->
    let m = Hashtbl.find st.compiled.Driver.tprog.methods q in
    let cargs =
      List.map2
        (fun (a : targ) (p : tparam) ->
          match (a, p) with
          | Targ_obj (Tobj_int n), _ -> Carg_obj (Op_int n)
          | Targ_obj (Tobj_var (name, _)), _ -> Carg_obj (Op_objparam name)
          | Targ_rel t, Tparam_rel key ->
            let r =
              lower_consumed st t ~fallback:(lazy (var_layout st key))
            in
            (* ownership transfers to the callee; the interpreter dups
               borrowed registers at the call *)
            Carg_reg (fst r)
          | Targ_rel _, Tparam_obj _ -> assert false)
        args m.tm_params
    in
    let d = fresh st in
    emit st (ICall (Some d, q, cargs));
    (d, true)

and free_if st (r, owned) = if owned then emit st (IFree r)

(* consume a subexpression through its dummy-replace wrapper *)
and lower_consumed st (child : texpr) ~fallback : reg * bool =
  if child.is_poly then begin
    let r = fresh st in
    emit st (IConst (r, child.edesc = TFull, Lazy.force fallback));
    Hashtbl.replace st.reg_pos r child.epos;
    (r, true)
  end
  else begin
    let (r, owned) = lower_expr st child in
    let own_layout = layout_at st (Constraints.S_expr child.eid) child.eschema in
    let want = layout_at st (Constraints.S_wrap child.eid) child.eschema in
    if List.sort compare own_layout = List.sort compare want then (r, owned)
    else begin
      let d = fresh st in
      emit st (IReplace (d, r, want));
      if owned then emit st (IFree r);
      Hashtbl.replace st.reg_pos d child.epos;
      st.replaces <-
        {
          rs_method = st.meth_q;
          rs_eid = child.eid;
          rs_pos = child.epos;
          rs_from = own_layout;
          rs_to = want;
        }
        :: st.replaces;
      (d, true)
    end
  end

let lower_cond st (c : tcond) : ccond =
  let rec go (c : tcond) =
    match c with
    | TBool b -> Cbool b
    | TNot c -> Cnot (go c)
    | TAnd (a, b) -> Cand (go a, go b)
    | TOr (a, b) -> Cor (go a, go b)
    | TCmp_eq (l, r) | TCmp_ne (l, r) ->
      (* comparison operands are freed by the interpreter after
         comparing (it tracks register ownership) *)
      let l, r = if l.is_poly then (r, l) else (l, r) in
      let lr = lower_consumed st l ~fallback:(lazy (assert false)) in
      let lcode = take_code st in
      let rhs =
        if r.is_poly then
          match r.edesc with
          | TEmpty -> Rhs_empty
          | TFull -> Rhs_full
          | _ -> assert false
        else begin
          let rr = lower_consumed st r ~fallback:(lazy (assert false)) in
          Rhs_reg (take_code st, fst rr)
        end
      in
      (match c with
      | TCmp_eq _ -> Ceq (lcode, fst lr, rhs)
      | _ -> Cne (lcode, fst lr, rhs))
  in
  go c

let rec lower_stmt st liveness (s : tstmt) : cstmt =
  let kills () = List.map (fun k -> IKill k) (Liveness.kills_after liveness s) in
  match s with
  | TDecl (key, init, _) ->
    (match init with
    | None ->
      let r = fresh st in
      emit st (IConst (r, false, var_layout st key));
      emit st (IStore (key, r))
    | Some te ->
      let r = lower_consumed st te ~fallback:(lazy (var_layout st key)) in
      emit st (IStore (key, fst r)));
    CExec (take_code st @ kills ())
  | TAssign (key, _, te, _) ->
    let r = lower_consumed st te ~fallback:(lazy (var_layout st key)) in
    emit st (IStore (key, fst r));
    CExec (take_code st @ kills ())
  | TOp_assign (op, key, _, te, _) ->
    let r = lower_consumed st te ~fallback:(lazy (var_layout st key)) in
    emit st
      (match op with
      | Ast.Union -> IStoreUnion (key, fst r)
      | Ast.Inter -> IStoreInter (key, fst r)
      | Ast.Diff -> IStoreDiff (key, fst r));
    CExec (take_code st @ kills ())
  | TIf (c, th, el) ->
    let cc = lower_cond st c in
    let th' = [ lower_stmt st liveness th ] in
    let el' =
      match el with Some el -> [ lower_stmt st liveness el ] | None -> []
    in
    let k = kills () in
    if k = [] then CIf (cc, th', el')
    else CIf (cc, th' @ [ CExec k ], el' @ [ CExec k ])
  | TWhile (c, body) ->
    let cc = lower_cond st c in
    CWhile (cc, [ lower_stmt st liveness body ])
  | TDo_while (body, c) ->
    let body' = lower_stmt st liveness body in
    let cc = lower_cond st c in
    CDoWhile ([ body' ], cc)
  | TBlock stmts -> (
    let lowered = List.map (lower_stmt st liveness) stmts in
    match kills () with
    | [] -> CBlock lowered
    | k -> CBlock (lowered @ [ CExec k ]))
  | TReturn (None, _) -> CReturn ([], None)
  | TReturn (Some te, _) ->
    let meth = Hashtbl.find st.compiled.Driver.tprog.methods st.meth_q in
    let fallback =
      lazy
        (match meth.tm_return with
        | Some schema -> layout_at st (Constraints.S_return st.meth_q) schema
        | None -> invalid_arg "Lower: return value in a void method")
    in
    let r = lower_consumed st te ~fallback in
    CReturn (take_code st, Some (fst r))
  | TExpr te ->
    (match te.edesc with
    | TCall (q, args) ->
      let m = Hashtbl.find st.compiled.Driver.tprog.methods q in
      let cargs =
        List.map2
          (fun (a : targ) (p : tparam) ->
            match (a, p) with
            | Targ_obj (Tobj_int n), _ -> Carg_obj (Op_int n)
            | Targ_obj (Tobj_var (name, _)), _ -> Carg_obj (Op_objparam name)
            | Targ_rel t, Tparam_rel key ->
              let r =
                lower_consumed st t ~fallback:(lazy (var_layout st key))
              in
              Carg_reg (fst r)
            | Targ_rel _, Tparam_obj _ -> assert false)
          args m.tm_params
      in
      emit st (ICall (None, q, cargs))
    | _ ->
      if not te.is_poly then begin
        let r = lower_expr st te in
        free_if st r
      end);
    CExec (take_code st @ kills ())
  | TPrint te ->
    if not te.is_poly then begin
      let r = lower_expr st te in
      emit st (IPrint (fst r));
      free_if st r
    end;
    CExec (take_code st @ kills ())

let lower_method_ex (compiled : Driver.compiled) q : cmethod * method_provenance
    =
  let m = Hashtbl.find compiled.Driver.tprog.methods q in
  let st =
    {
      compiled;
      meth_q = q;
      next_reg = 0;
      code = [];
      reg_pos = Hashtbl.create 32;
      replaces = [];
    }
  in
  let liveness = Liveness.analyze m in
  let body = List.map (lower_stmt st liveness) m.tm_body in
  assert (st.code = []);
  ( {
      c_qualified = q;
      c_params = m.tm_params;
      c_body = body;
      c_nregs = st.next_reg;
    },
    { mp_reg_pos = st.reg_pos; mp_replaces = List.rev st.replaces } )

let lower_method compiled q = fst (lower_method_ex compiled q)

let lower_program_ex (compiled : Driver.compiled) :
    (string, cmethod) Hashtbl.t * program_provenance =
  let out = Hashtbl.create 16 in
  let pp_methods = Hashtbl.create 16 in
  let replaces = ref [] in
  List.iter
    (fun q ->
      let meth, mp = lower_method_ex compiled q in
      Hashtbl.replace out q meth;
      Hashtbl.replace pp_methods q mp;
      replaces := List.rev_append mp.mp_replaces !replaces)
    compiled.Driver.tprog.method_order;
  (out, { pp_methods; pp_replaces = List.rev !replaces })

let lower_program (compiled : Driver.compiled) : (string, cmethod) Hashtbl.t =
  fst (lower_program_ex compiled)
