open Tast

type ctx = {
  compiled : Driver.compiled;
  buf : Buffer.t;
  mutable indent : int;
  mutable tmp : int;
}

let phys ctx site attr_name =
  (ctx.compiled.Driver.assignment.Encode.phys_of site attr_name).p_name

let layout ctx site (schema : attr_info list) =
  "<"
  ^ String.concat ", "
      (List.map (fun a -> a.a_name ^ ":" ^ phys ctx site a.a_name) schema)
  ^ ">"

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (ctx.indent * 4) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fresh ctx =
  ctx.tmp <- ctx.tmp + 1;
  Printf.sprintf "tmp%d" ctx.tmp

let var_java key = String.map (fun c -> if c = '.' then '_' else c) key

let attr_list attrs =
  "new Attribute[] { "
  ^ String.concat ", " (List.map (fun a -> a.a_name ^ ".v()") attrs)
  ^ " }"

(* Emit the expression bottom-up into statements, returning the Java
   expression holding the result.  A replace is emitted at every
   consumption point where the wrapper's assigned layout differs from
   the subexpression's own — exactly the replaces §3.3.2 decided on. *)
let rec emit_expr ctx (e : texpr) : string =
  let site = Constraints.S_expr e.eid in
  match e.edesc with
  | TEmpty -> "Jedd.v().falseBDD()"
  | TFull -> "Jedd.v().trueBDD()"
  | TVar (_, key) -> var_java key ^ ".get()"
  | TLiteral pieces ->
    let objs =
      String.concat ", "
        (List.map
           (fun (o, a) ->
             (match o with
             | Tobj_var (n, _) -> n
             | Tobj_int k -> string_of_int k)
             ^ " => " ^ a.a_name ^ ":" ^ phys ctx site a.a_name)
           pieces)
    in
    Printf.sprintf "Jedd.v().literal(new Object[] { %s })" objs
  | TBinop (op, l, r) ->
    let jl = emit_consumed ctx l in
    let jr = emit_consumed ctx r in
    let name =
      match op with
      | Ast.Union -> "union"
      | Ast.Inter -> "intersect"
      | Ast.Diff -> "minus"
    in
    Printf.sprintf "Jedd.v().%s(%s, %s)" name jl jr
  | TReplace (reps, c) ->
    let jc = emit_consumed ctx c in
    List.fold_left
      (fun acc rep ->
        match rep with
        | TProj a ->
          Printf.sprintf "Jedd.v().project(%s, %s.v())" acc a.a_name
        | TRen (a, b) ->
          Printf.sprintf "Jedd.v().rename(%s, %s.v(), %s.v())" acc a.a_name
            b.a_name
        | TCopy (a, b, c') ->
          Printf.sprintf "Jedd.v().copy(%s, %s.v(), %s.v(), %s.v(), %s)" acc
            a.a_name b.a_name c'.a_name
            (phys ctx site c'.a_name))
      jc reps
  | TJoin (kind, l, la, r, ra) ->
    let jl = emit_consumed ctx l in
    let jr = emit_consumed ctx r in
    let name = match kind with Ast.Join -> "join" | Ast.Compose -> "compose" in
    Printf.sprintf "Jedd.v().%s(%s, %s, %s, %s)" name jl (attr_list la) jr
      (attr_list ra)
  | TCall (q, args) ->
    let jargs =
      List.map
        (fun (a : targ) ->
          match a with
          | Targ_rel t -> emit_consumed ctx t
          | Targ_obj (Tobj_var (n, _)) -> n
          | Targ_obj (Tobj_int k) -> string_of_int k)
        args
    in
    Printf.sprintf "%s(%s)"
      (var_java q)
      (String.concat ", " jargs)

and emit_consumed ctx (child : texpr) : string =
  let inner = emit_expr ctx child in
  if child.is_poly then inner
  else begin
    let own =
      List.map
        (fun a -> phys ctx (Constraints.S_expr child.eid) a.a_name)
        child.eschema
    in
    let want =
      List.map
        (fun a -> phys ctx (Constraints.S_wrap child.eid) a.a_name)
        child.eschema
    in
    if own = want then inner
    else begin
      (* materialise the replace the assignment stage kept *)
      let tmp = fresh ctx in
      line ctx "final Object %s = Jedd.v().replace(%s, /* -> %s */);" tmp inner
        (layout ctx (Constraints.S_wrap child.eid) child.eschema);
      tmp
    end
  end

let rec emit_stmt ctx (s : tstmt) =
  match s with
  | TDecl (key, init, _) ->
    let v = Hashtbl.find ctx.compiled.Driver.tprog.vars key in
    let j =
      match init with
      | Some t -> emit_consumed ctx t
      | None -> "Jedd.v().falseBDD()"
    in
    line ctx "final RelationContainer %s = new RelationContainer(\"%s\");"
      (var_java key)
      (layout ctx (Constraints.S_var key) v.v_schema);
    line ctx "%s.eq(%s);" (var_java key) j
  | TAssign (key, _, t, _) ->
    let j = emit_consumed ctx t in
    line ctx "%s.eq(%s);" (var_java key) j
  | TOp_assign (op, key, _, t, _) ->
    let j = emit_consumed ctx t in
    let name =
      match op with
      | Ast.Union -> "eqUnion"
      | Ast.Inter -> "eqIntersect"
      | Ast.Diff -> "eqMinus"
    in
    line ctx "%s.%s(%s);" (var_java key) name j
  | TIf (c, th, el) ->
    line ctx "if (%s) {" (emit_cond ctx c);
    ctx.indent <- ctx.indent + 1;
    emit_stmt ctx th;
    ctx.indent <- ctx.indent - 1;
    (match el with
    | Some el ->
      line ctx "} else {";
      ctx.indent <- ctx.indent + 1;
      emit_stmt ctx el;
      ctx.indent <- ctx.indent - 1
    | None -> ());
    line ctx "}"
  | TWhile (c, body) ->
    line ctx "while (%s) {" (emit_cond ctx c);
    ctx.indent <- ctx.indent + 1;
    emit_stmt ctx body;
    ctx.indent <- ctx.indent - 1;
    line ctx "}"
  | TDo_while (body, c) ->
    line ctx "do {";
    ctx.indent <- ctx.indent + 1;
    emit_stmt ctx body;
    ctx.indent <- ctx.indent - 1;
    line ctx "} while (%s);" (emit_cond ctx c)
  | TBlock stmts ->
    line ctx "{";
    ctx.indent <- ctx.indent + 1;
    List.iter (emit_stmt ctx) stmts;
    ctx.indent <- ctx.indent - 1;
    line ctx "}"
  | TReturn (None, _) -> line ctx "return;"
  | TReturn (Some t, _) -> line ctx "return %s;" (emit_consumed ctx t)
  | TExpr t -> line ctx "%s;" (emit_expr ctx t)
  | TPrint t -> line ctx "System.out.println(%s.toString());" (emit_expr ctx t)

and emit_cond ctx (c : tcond) : string =
  match c with
  | TBool b -> string_of_bool b
  | TNot c -> "!(" ^ emit_cond ctx c ^ ")"
  | TAnd (a, b) -> emit_cond ctx a ^ " && " ^ emit_cond ctx b
  | TOr (a, b) -> emit_cond ctx a ^ " || " ^ emit_cond ctx b
  | TCmp_eq (l, r) ->
    Printf.sprintf "Jedd.v().equals(%s, %s)" (emit_expr ctx l)
      (emit_expr ctx r)
  | TCmp_ne (l, r) ->
    Printf.sprintf "!Jedd.v().equals(%s, %s)" (emit_expr ctx l)
      (emit_expr ctx r)

let emit_method_into ctx q =
  let m = Hashtbl.find ctx.compiled.Driver.tprog.methods q in
  let params =
    String.concat ", "
      (List.map
         (fun (p : tparam) ->
           match p with
           | Tparam_rel key -> "final RelationContainer " ^ var_java key
           | Tparam_obj (name, d) -> "final " ^ d.d_name ^ " " ^ name)
         m.tm_params)
  in
  let ret =
    match m.tm_return with None -> "void" | Some _ -> "RelationContainer"
  in
  line ctx "public %s %s(%s) {" ret
    (var_java
       (match String.rindex_opt q '.' with
       | Some i -> String.sub q (i + 1) (String.length q - i - 1)
       | None -> q))
    params;
  ctx.indent <- ctx.indent + 1;
  List.iter (emit_stmt ctx) m.tm_body;
  ctx.indent <- ctx.indent - 1;
  line ctx "}"

let emit_method compiled q =
  let ctx = { compiled; buf = Buffer.create 2048; indent = 0; tmp = 0 } in
  emit_method_into ctx q;
  Buffer.contents ctx.buf

let emit_program compiled =
  let ctx = { compiled; buf = Buffer.create 8192; indent = 0; tmp = 0 } in
  line ctx "// Generated by jeddc (OCaml reproduction). Do not edit.";
  line ctx "import jedd.internal.Jedd;";
  line ctx "import jedd.internal.RelationContainer;";
  line ctx "import jedd.Attribute;";
  line ctx "";
  List.iter
    (fun cls ->
      line ctx "public class %s {" cls;
      ctx.indent <- ctx.indent + 1;
      (* fields *)
      Hashtbl.iter
        (fun key (v : var_info) ->
          if
            v.v_kind = Vfield
            && String.length key > String.length cls
            && String.sub key 0 (String.length cls + 1) = cls ^ "."
          then
            line ctx
              "private final RelationContainer %s = new RelationContainer(\"%s\");"
              (var_java key)
              (layout ctx (Constraints.S_var key) v.v_schema))
        compiled.Driver.tprog.vars;
      line ctx "";
      (* methods *)
      List.iter
        (fun q ->
          if
            String.length q > String.length cls
            && String.sub q 0 (String.length cls + 1) = cls ^ "."
            && not (String.contains q '<')
          then begin
            emit_method_into ctx q;
            line ctx ""
          end)
        compiled.Driver.tprog.method_order;
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      line ctx "")
    compiled.Driver.tprog.classes;
  Buffer.contents ctx.buf
