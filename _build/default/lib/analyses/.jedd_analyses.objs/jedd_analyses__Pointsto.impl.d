lib/analyses/pointsto.ml: Common Jedd_lang Jedd_minijava List
