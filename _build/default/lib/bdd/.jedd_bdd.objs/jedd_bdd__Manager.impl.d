lib/bdd/manager.ml: Array Bytes
