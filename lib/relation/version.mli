(** The package version and the banner the CLIs print for [--version]. *)

val version : string

val banner : string
(** ["jedd VERSION (backends: incore, extmem)"]. *)
