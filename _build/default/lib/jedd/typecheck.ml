open Tast

exception Error of string * Ast.pos

let err pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type env = {
  domains : (string, domain_info) Hashtbl.t;
  attrs : (string, attr_info) Hashtbl.t;
  physdoms : (string, phys_info) Hashtbl.t;
  vars : (var_key, var_info) Hashtbl.t;
  methods : (string, tmeth) Hashtbl.t;
  mutable method_order : string list;
  (* method signatures collected before bodies are checked, so calls can
     be resolved in any order (and recursively) *)
  sigs : (string, sig_info) Hashtbl.t;
  mutable next_eid : int;
  mutable exprs : texpr list;
}

and sig_info = {
  s_params : sig_param list;
  s_return : attr_info list option;
  s_return_spec : (string * phys_info) list;
}

and sig_param =
  | Sig_rel of attr_info list * var_key
  | Sig_obj of domain_info * string

let fresh_eid env =
  let id = env.next_eid in
  env.next_eid <- id + 1;
  id

let register env e =
  env.exprs <- e :: env.exprs;
  e

let find_domain env name pos =
  match Hashtbl.find_opt env.domains name with
  | Some d -> d
  | None -> err pos "unknown domain %s" name

let find_attr env name pos =
  match Hashtbl.find_opt env.attrs name with
  | Some a -> a
  | None -> err pos "unknown attribute %s" name

let find_phys env name pos =
  match Hashtbl.find_opt env.physdoms name with
  | Some p -> p
  | None -> err pos "unknown physical domain %s" name

let attr_mem a schema = List.exists (fun b -> b.a_name = a.a_name) schema
let attr_remove a schema = List.filter (fun b -> b.a_name <> a.a_name) schema

let schema_equal s1 s2 =
  List.length s1 = List.length s2 && List.for_all (fun a -> attr_mem a s2) s1

(* Resolve a source rel_type <a:P, b, ...> to a schema + spec map. *)
let resolve_rel_type env (rt : Ast.rel_type) =
  let seen = Hashtbl.create 8 in
  let schema, spec =
    List.fold_left
      (fun (schema, spec) (ap : Ast.attr_phys) ->
        if Hashtbl.mem seen ap.attr_name then
          err rt.type_pos "duplicate attribute %s in relation type" ap.attr_name;
        Hashtbl.add seen ap.attr_name ();
        let a = find_attr env ap.attr_name rt.type_pos in
        let spec =
          match ap.phys_name with
          | Some p -> (ap.attr_name, find_phys env p rt.type_pos) :: spec
          | None -> spec
        in
        (a :: schema, spec))
      ([], []) rt.elems
  in
  (List.rev schema, List.rev spec)

(* -- expression checking -------------------------------------------------- *)

type scope = {
  cls : string;
  meth : string option;
  mutable locals : (string * var_info) list;  (* innermost first *)
  obj_params : (string * domain_info) list;
}

let lookup_var env scope name =
  match List.assoc_opt name scope.locals with
  | Some v -> Some v
  | None -> (
    (* field of the enclosing class, then of any class (single global
       program namespace, as in the paper's whole-program analyses) *)
    match Hashtbl.find_opt env.vars (scope.cls ^ "." ^ name) with
    | Some v -> Some v
    | None ->
      Hashtbl.fold
        (fun _ v acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if
              v.v_kind = Vfield
              && String.length v.v_key > String.length name
              && String.sub v.v_key
                   (String.length v.v_key - String.length name - 1)
                   (String.length name + 1)
                 = "." ^ name
            then Some v
            else acc)
        env.vars None)

let resolve_obj _env scope pos (o : Ast.obj_expr) : obj_ref =
  match o with
  | Ast.Obj_int n -> Tobj_int n
  | Ast.Obj_var name -> (
    match List.assoc_opt name scope.obj_params with
    | Some d -> Tobj_var (name, d)
    | None -> err pos "unknown object %s (not an object parameter)" name)

let rec check_expr env scope (e : Ast.expr) : texpr =
  let pos = e.pos in
  match e.desc with
  | Ast.Empty ->
    register env
      {
        eid = fresh_eid env;
        ekind = "Constant_0B";
        epos = pos;
        eschema = [];
        is_poly = true;
        espec = [];
        edesc = TEmpty;
      }
  | Ast.Full ->
    register env
      {
        eid = fresh_eid env;
        ekind = "Constant_1B";
        epos = pos;
        eschema = [];
        is_poly = true;
        espec = [];
        edesc = TFull;
      }
  | Ast.Var name -> (
    match lookup_var env scope name with
    | Some v ->
      register env
        {
          eid = fresh_eid env;
          ekind = "Variable_use";
          epos = pos;
          eschema = v.v_schema;
          is_poly = false;
          espec = [];
          edesc = TVar (v.v_kind, v.v_key);
        }
    | None -> err pos "unknown relation variable %s" name)
  | Ast.Literal pieces ->
    (* [Literal] rule: distinct attributes; objects from matching
       domains. *)
    let seen = Hashtbl.create 8 in
    let tpieces =
      List.map
        (fun (o, (ap : Ast.attr_phys)) ->
          if Hashtbl.mem seen ap.attr_name then
            err pos "duplicate attribute %s in relation literal" ap.attr_name;
          Hashtbl.add seen ap.attr_name ();
          let a = find_attr env ap.attr_name pos in
          let o = resolve_obj env scope pos o in
          (match o with
          | Tobj_var (oname, d) ->
            if d.d_name <> a.a_domain.d_name then
              err pos "object %s of domain %s stored in attribute %s of domain %s"
                oname d.d_name a.a_name a.a_domain.d_name
          | Tobj_int n ->
            if n < 0 || n >= a.a_domain.d_size then
              err pos "object %d out of range for domain %s" n a.a_domain.d_name);
          (o, a, ap.phys_name))
        pieces
    in
    let espec =
      List.filter_map
        (fun (_, a, phys) ->
          match phys with
          | Some p -> Some (a.a_name, find_phys env p pos)
          | None -> None)
        tpieces
    in
    register env
      {
        eid = fresh_eid env;
        ekind = "Literal_expression";
        epos = pos;
        eschema = List.map (fun (_, a, _) -> a) tpieces;
        is_poly = false;
        espec;
        edesc = TLiteral (List.map (fun (o, a, _) -> (o, a)) tpieces);
      }
  | Ast.Binop (op, l, r) ->
    (* [SetOp] rule: both operands share the schema.  0B/1B operands are
       allowed only where the rules allow them (assignment/compare), so
       reject them here. *)
    let tl = check_expr env scope l in
    let tr = check_expr env scope r in
    if tl.is_poly || tr.is_poly then
      err pos "0B/1B may only appear in assignments and comparisons";
    if not (schema_equal tl.eschema tr.eschema) then
      err pos "set operation on incompatible schemas %s and %s"
        (schema_to_string tl.eschema)
        (schema_to_string tr.eschema);
    let kind =
      match op with
      | Ast.Union -> "Union_expression"
      | Ast.Inter -> "Intersect_expression"
      | Ast.Diff -> "Difference_expression"
    in
    register env
      {
        eid = fresh_eid env;
        ekind = kind;
        epos = pos;
        eschema = tl.eschema;
        is_poly = false;
        espec = [];
        edesc = TBinop (op, tl, tr);
      }
  | Ast.Replace (replacements, operand) ->
    let t = check_expr env scope operand in
    if t.is_poly then
      err pos "0B/1B may not be the operand of an attribute operation";
    (* apply sequentially, checking each rule *)
    let schema, treps =
      List.fold_left
        (fun (schema, treps) (r : Ast.replacement) ->
          match r with
          | Ast.Project_away name ->
            (* [Project] *)
            let a = find_attr env name pos in
            if not (attr_mem a schema) then
              err pos "projected attribute %s not in schema %s" name
                (schema_to_string schema);
            (attr_remove a schema, TProj a :: treps)
          | Ast.Rename_to (from_name, to_name) ->
            (* [Rename]: a in T, b not in T *)
            let a = find_attr env from_name pos in
            let b = find_attr env to_name pos in
            if not (attr_mem a schema) then
              err pos "renamed attribute %s not in schema %s" from_name
                (schema_to_string schema);
            if attr_mem b (attr_remove a schema) then
              err pos "rename target %s already in schema %s" to_name
                (schema_to_string schema);
            if a.a_domain.d_name <> b.a_domain.d_name then
              err pos "rename between different domains (%s -> %s)"
                a.a_domain.d_name b.a_domain.d_name;
            (b :: attr_remove a schema, TRen (a, b) :: treps)
          | Ast.Copy_to (from_name, b_name, c_name) ->
            (* [Copy]: a in T; b,c not in T \ {a}; b <> c *)
            let a = find_attr env from_name pos in
            let b = find_attr env b_name pos in
            let c = find_attr env c_name pos in
            if not (attr_mem a schema) then
              err pos "copied attribute %s not in schema %s" from_name
                (schema_to_string schema);
            let rest = attr_remove a schema in
            if attr_mem b rest then
              err pos "copy target %s already in schema" b_name;
            if attr_mem c rest then
              err pos "copy target %s already in schema" c_name;
            if b.a_name = c.a_name then
              err pos "copy targets must be distinct (got %s twice)" b_name;
            if
              a.a_domain.d_name <> b.a_domain.d_name
              || a.a_domain.d_name <> c.a_domain.d_name
            then err pos "copy between different domains";
            (b :: c :: rest, TCopy (a, b, c) :: treps))
        (t.eschema, []) replacements
    in
    register env
      {
        eid = fresh_eid env;
        ekind = "Replace_expression";
        epos = pos;
        eschema = schema;
        is_poly = false;
        espec = [];
        edesc = TReplace (List.rev treps, t);
      }
  | Ast.JoinExpr (kind, l, lattrs, r, rattrs) ->
    let tl = check_expr env scope l in
    let tr = check_expr env scope r in
    if tl.is_poly || tr.is_poly then
      err pos "0B/1B may not be joined or composed";
    if List.length lattrs <> List.length rattrs then
      err pos "join/compose attribute lists differ in length";
    let resolve_list t names =
      List.map
        (fun name ->
          let a = find_attr env name pos in
          if not (attr_mem a t.eschema) then
            err pos "compared attribute %s not in schema %s" name
              (schema_to_string t.eschema);
          a)
        names
    in
    let la = resolve_list tl lattrs in
    let ra = resolve_list tr rattrs in
    let distinct l =
      List.length (List.sort_uniq compare (List.map (fun a -> a.a_name) l))
      = List.length l
    in
    if not (distinct la && distinct ra) then
      err pos "duplicate attribute in comparison list";
    List.iter2
      (fun a b ->
        if a.a_domain.d_name <> b.a_domain.d_name then
          err pos "compared attributes %s and %s have different domains"
            a.a_name b.a_name)
      la ra;
    let l_remaining, result_schema, kind_name =
      match kind with
      | Ast.Join ->
        (* [Join]: T ∩ (U \ {b}) = ∅ *)
        let u' = List.fold_left (fun u a -> attr_remove a u) tr.eschema ra in
        (tl.eschema, tl.eschema @ u', "Join_expression")
      | Ast.Compose ->
        (* [Compose]: (T \ {a}) ∩ (U \ {b}) = ∅ *)
        let t' = List.fold_left (fun t a -> attr_remove a t) tl.eschema la in
        let u' = List.fold_left (fun u a -> attr_remove a u) tr.eschema ra in
        (t', t' @ u', "Compose_expression")
    in
    let u' =
      List.fold_left (fun u a -> attr_remove a u) tr.eschema ra
    in
    List.iter
      (fun a ->
        if attr_mem a u' then
          err pos "attribute %s appears on both sides of the %s" a.a_name
            (match kind with Ast.Join -> "join" | Ast.Compose -> "composition"))
      l_remaining;
    register env
      {
        eid = fresh_eid env;
        ekind = kind_name;
        epos = pos;
        eschema = result_schema;
        is_poly = false;
        espec = [];
        edesc = TJoin (kind, tl, la, tr, ra);
      }
  | Ast.Call (name, args) -> (
    (* resolve within the class first, then globally *)
    let qualified =
      let local = scope.cls ^ "." ^ name in
      if Hashtbl.mem env.sigs local then Some local
      else
        Hashtbl.fold
          (fun q _ acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if
                String.length q > String.length name
                && String.sub q
                     (String.length q - String.length name - 1)
                     (String.length name + 1)
                   = "." ^ name
              then Some q
              else acc)
          env.sigs None
    in
    match qualified with
    | None -> err pos "unknown method %s" name
    | Some q ->
      let s = Hashtbl.find env.sigs q in
      if List.length args <> List.length s.s_params then
        err pos "method %s expects %d arguments, got %d" q
          (List.length s.s_params) (List.length args);
      let targs =
        List.map2
          (fun (arg : Ast.arg) sp ->
            match (arg, sp) with
            | Ast.Arg_rel { desc = Ast.Var v; pos = apos }, Sig_obj (d, _)
              -> (
              (* an identifier argument against an object parameter is an
                 object variable *)
              match List.assoc_opt v scope.obj_params with
              | Some d' when d'.d_name = d.d_name -> Targ_obj (Tobj_var (v, d'))
              | Some d' ->
                err apos "object %s has domain %s but %s is expected" v
                  d'.d_name d.d_name
              | None -> err apos "unknown object %s" v)
            | Ast.Arg_obj o, Sig_obj (d, _) -> (
              let o = resolve_obj env scope pos o in
              match o with
              | Tobj_int n when n < 0 || n >= d.d_size ->
                err pos "object %d out of range for domain %s" n d.d_name
              | _ -> Targ_obj o)
            | Ast.Arg_rel e, Sig_rel (schema, _) ->
              let t = check_expr env scope e in
              if (not t.is_poly) && not (schema_equal t.eschema schema) then
                err e.pos "argument schema %s does not match parameter %s"
                  (schema_to_string t.eschema)
                  (schema_to_string schema);
              Targ_rel t
            | Ast.Arg_obj _, Sig_rel _ ->
              err pos "relation expected but object given"
            | Ast.Arg_rel e, Sig_obj (d, _) ->
              err e.pos "object of domain %s expected but relation given"
                d.d_name)
          args s.s_params
      in
      register env
        {
          eid = fresh_eid env;
          ekind = "Call_expression";
          epos = pos;
          eschema = (match s.s_return with Some sch -> sch | None -> []);
          is_poly = false;
          espec = [];
          edesc = TCall (q, targs);
        })

(* -- statements ------------------------------------------------------------ *)

let rec check_cond env scope (c : Ast.cond) : tcond =
  match c.cdesc with
  | Ast.Bool_lit b -> TBool b
  | Ast.Not c -> TNot (check_cond env scope c)
  | Ast.And (a, b) -> TAnd (check_cond env scope a, check_cond env scope b)
  | Ast.Or (a, b) -> TOr (check_cond env scope a, check_cond env scope b)
  | Ast.Cmp_eq (l, r) | Ast.Cmp_ne (l, r) ->
    (* [Compare] rule: same schema, or one side 0B/1B *)
    let tl = check_expr env scope l in
    let tr = check_expr env scope r in
    if
      (not tl.is_poly) && (not tr.is_poly)
      && not (schema_equal tl.eschema tr.eschema)
    then
      err c.cpos "comparison of incompatible schemas %s and %s"
        (schema_to_string tl.eschema)
        (schema_to_string tr.eschema);
    if tl.is_poly && tr.is_poly then
      err c.cpos "comparing two relation constants is always trivial";
    (match c.cdesc with
    | Ast.Cmp_eq _ -> TCmp_eq (tl, tr)
    | _ -> TCmp_ne (tl, tr))

let check_assign_compat pos (v : var_info) (t : texpr) =
  (* [Assign] rule *)
  if (not t.is_poly) && not (schema_equal v.v_schema t.eschema) then
    err pos "assignment of %s to variable %s of type %s"
      (schema_to_string t.eschema)
      v.v_key
      (schema_to_string v.v_schema)

let rec check_stmt env scope (s : Ast.stmt) : tstmt =
  match s.sdesc with
  | Ast.Decl (rt, name, init) ->
    if List.mem_assoc name scope.locals then
      err s.spos "duplicate local variable %s" name;
    let schema, spec = resolve_rel_type env rt in
    let meth = match scope.meth with Some m -> m | None -> "<init>" in
    let key = scope.cls ^ "." ^ meth ^ "." ^ name in
    let v =
      {
        v_key = key;
        v_kind = Vlocal;
        v_schema = schema;
        v_spec = spec;
        v_pos = s.spos;
      }
    in
    Hashtbl.replace env.vars key v;
    let tinit =
      Option.map
        (fun e ->
          let t = check_expr env scope e in
          check_assign_compat s.spos v t;
          t)
        init
    in
    scope.locals <- (name, v) :: scope.locals;
    TDecl (key, tinit, s.spos)
  | Ast.Assign (name, e) -> (
    match lookup_var env scope name with
    | None -> err s.spos "unknown relation variable %s" name
    | Some v ->
      let t = check_expr env scope e in
      check_assign_compat s.spos v t;
      TAssign (v.v_key, v.v_kind, t, s.spos))
  | Ast.Op_assign (op, name, e) -> (
    match lookup_var env scope name with
    | None -> err s.spos "unknown relation variable %s" name
    | Some v ->
      let t = check_expr env scope e in
      check_assign_compat s.spos v t;
      TOp_assign (op, v.v_key, v.v_kind, t, s.spos))
  | Ast.If (c, th, el) ->
    let tc = check_cond env scope c in
    let tth = check_stmt env (branch_scope scope) th in
    let tel = Option.map (check_stmt env (branch_scope scope)) el in
    TIf (tc, tth, tel)
  | Ast.While (c, body) ->
    TWhile (check_cond env scope c, check_stmt env (branch_scope scope) body)
  | Ast.Do_while (body, c) ->
    TDo_while (check_stmt env (branch_scope scope) body, check_cond env scope c)
  | Ast.Block stmts ->
    let inner = branch_scope scope in
    TBlock (List.map (check_stmt env inner) stmts)
  | Ast.Return e -> TReturn (Option.map (check_expr env scope) e, s.spos)
  | Ast.Expr_stmt e -> TExpr (check_expr env scope e)
  | Ast.Print e -> TPrint (check_expr env scope e)

and branch_scope scope = { scope with locals = scope.locals }

(* -- program ---------------------------------------------------------------- *)

let check (program : Ast.program) : tprogram =
  let env =
    {
      domains = Hashtbl.create 16;
      attrs = Hashtbl.create 16;
      physdoms = Hashtbl.create 16;
      vars = Hashtbl.create 64;
      methods = Hashtbl.create 16;
      method_order = [];
      sigs = Hashtbl.create 16;
      next_eid = 0;
      exprs = [];
    }
  in
  (* pass 1: global declarations *)
  List.iter
    (fun (d : Ast.decl) ->
      match d with
      | Ast.Domain_decl (name, size, pos) ->
        if Hashtbl.mem env.domains name then err pos "duplicate domain %s" name;
        if size <= 0 then err pos "domain %s must have positive size" name;
        Hashtbl.add env.domains name { d_name = name; d_size = size }
      | Ast.Attribute_decl (name, domain_name, pos) ->
        if Hashtbl.mem env.attrs name then err pos "duplicate attribute %s" name;
        let dom = find_domain env domain_name pos in
        Hashtbl.add env.attrs name { a_name = name; a_domain = dom }
      | Ast.Physdom_decl (name, bits, pos) ->
        if Hashtbl.mem env.physdoms name then
          err pos "duplicate physical domain %s" name;
        Hashtbl.add env.physdoms name { p_name = name; p_min_bits = bits }
      | Ast.Class_decl _ -> ())
    program;
  let classes =
    List.filter_map
      (function Ast.Class_decl c -> Some c | _ -> None)
      program
  in
  (* pass 2: fields and method signatures *)
  List.iter
    (fun (c : Ast.cls) ->
      List.iter
        (fun (f : Ast.field) ->
          let schema, spec = resolve_rel_type env f.field_type in
          let key = c.cls_name ^ "." ^ f.field_name in
          if Hashtbl.mem env.vars key then
            err f.field_pos "duplicate field %s" key;
          Hashtbl.add env.vars key
            {
              v_key = key;
              v_kind = Vfield;
              v_schema = schema;
              v_spec = spec;
              v_pos = f.field_pos;
            })
        c.fields;
      List.iter
        (fun (m : Ast.meth) ->
          let q = c.cls_name ^ "." ^ m.meth_name in
          if Hashtbl.mem env.sigs q then err m.meth_pos "duplicate method %s" q;
          let params =
            List.map
              (fun (p : Ast.param) ->
                match p with
                | Ast.Param_rel (rt, name) ->
                  let schema, spec = resolve_rel_type env rt in
                  let key = q ^ "." ^ name in
                  Hashtbl.add env.vars key
                    {
                      v_key = key;
                      v_kind = Vparam;
                      v_schema = schema;
                      v_spec = spec;
                      v_pos = m.meth_pos;
                    };
                  Sig_rel (schema, key)
                | Ast.Param_obj (domain_name, name) ->
                  Sig_obj (find_domain env domain_name m.meth_pos, name))
              m.meth_params
          in
          let s_return, s_return_spec =
            match m.meth_return with
            | None -> (None, [])
            | Some rt ->
              let schema, spec = resolve_rel_type env rt in
              (Some schema, spec)
          in
          Hashtbl.add env.sigs q { s_params = params; s_return; s_return_spec })
        c.methods)
    classes;
  (* pass 3: field initialisers and method bodies *)
  List.iter
    (fun (c : Ast.cls) ->
      List.iter
        (fun (f : Ast.field) ->
          match f.field_init with
          | None -> ()
          | Some e ->
            let scope =
              { cls = c.cls_name; meth = None; locals = []; obj_params = [] }
            in
            let t = check_expr env scope e in
            let v = Hashtbl.find env.vars (c.cls_name ^ "." ^ f.field_name) in
            check_assign_compat f.field_pos v t;
            (* record as an implicit initialiser method *)
            let q = c.cls_name ^ ".<init:" ^ f.field_name ^ ">" in
            let m =
              {
                tm_qualified = q;
                tm_params = [];
                tm_return = None;
                tm_return_spec = [];
                tm_body = [ TAssign (v.v_key, Vfield, t, f.field_pos) ];
                tm_pos = f.field_pos;
              }
            in
            Hashtbl.add env.methods q m;
            env.method_order <- q :: env.method_order)
        c.fields;
      List.iter
        (fun (m : Ast.meth) ->
          let q = c.cls_name ^ "." ^ m.meth_name in
          let s = Hashtbl.find env.sigs q in
          let obj_params =
            List.filter_map
              (function Sig_obj (d, name) -> Some (name, d) | _ -> None)
              s.s_params
          in
          let rel_param_locals =
            List.filter_map
              (function
                | Sig_rel (_, key) ->
                  let v = Hashtbl.find env.vars key in
                  (* visible under its source name *)
                  let name =
                    let parts = String.split_on_char '.' key in
                    List.nth parts (List.length parts - 1)
                  in
                  Some (name, v)
                | _ -> None)
              s.s_params
          in
          let scope =
            {
              cls = c.cls_name;
              meth = Some m.meth_name;
              locals = rel_param_locals;
              obj_params;
            }
          in
          let body = List.map (check_stmt env scope) m.meth_body in
          let tm =
            {
              tm_qualified = q;
              tm_params =
                List.map
                  (function
                    | Sig_rel (_, key) -> Tparam_rel key
                    | Sig_obj (d, name) -> Tparam_obj (name, d))
                  s.s_params;
              tm_return = s.s_return;
              tm_return_spec = s.s_return_spec;
              tm_body = body;
              tm_pos = m.meth_pos;
            }
          in
          Hashtbl.add env.methods q tm;
          env.method_order <- q :: env.method_order)
        c.methods)
    classes;
  (* declaration order matters: the relative bit ordering of physical
     domains follows their declaration (§3.2.1) *)
  let in_decl_order f =
    List.filter_map f program
  in
  {
    domains =
      in_decl_order (function
        | Ast.Domain_decl (n, _, _) -> Some (Hashtbl.find env.domains n)
        | _ -> None);
    attrs =
      in_decl_order (function
        | Ast.Attribute_decl (n, _, _) -> Some (Hashtbl.find env.attrs n)
        | _ -> None);
    physdoms =
      in_decl_order (function
        | Ast.Physdom_decl (n, _, _) -> Some (Hashtbl.find env.physdoms n)
        | _ -> None);
    vars = env.vars;
    methods = env.methods;
    method_order = List.rev env.method_order;
    classes = List.map (fun (c : Ast.cls) -> c.cls_name) classes;
    all_exprs = List.rev env.exprs;
    n_exprs = env.next_eid;
  }
