lib/jedd/ast.mli: Format
