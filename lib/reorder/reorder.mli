(** Dynamic variable-order optimization over physical-domain blocks.

    The engine sits directly above {!Jedd_bdd.Manager}'s adjacent
    level-swap primitive and moves whole {!Jedd_bdd.Fdd} blocks as
    units: Rudell sifting, windowed permutation search, and an
    interleave/de-interleave transform between two blocks (the layout
    lever §3.3.1 of the paper identifies as decisive).  Passes can run
    explicitly or from the manager's safe-point auto trigger; every pass
    is recorded as an {!event} for the profiler. *)

type t
(** A reorder engine bound to one manager. *)

(** One completed reorder pass. *)
type event = {
  trigger : string; (** ["manual"], ["auto-threshold"], caller-supplied *)
  strategy : string; (** ["sift"], ["window2"], ["interleave"], ... *)
  swaps : int; (** adjacent level swaps performed *)
  aborts : int; (** sifting moves stopped by the max-growth bound *)
  nodes_before : int; (** live nodes entering the pass (post-GC) *)
  nodes_after : int; (** live nodes leaving the pass (post-GC) *)
  millis : float;
}

val create : Jedd_bdd.Manager.t -> t
val manager : t -> Jedd_bdd.Manager.t

val register_block : t -> name:string -> vars:int array -> unit
(** Declare a physical-domain block (stable variable ids, MSB first) so
    the engine moves it as a unit.  Blocks whose level spans currently
    overlap are treated as one interleaved group.  Levels belonging to
    no registered block are sifted as single bits. *)

val set_max_growth : t -> float -> unit
(** Abort bound for sifting: a direction run stops once the live-node
    count exceeds this factor of the best size seen (default 1.2, the
    classic BuDDy/CUDD bound).  Raises [Invalid_argument] below 1.0. *)

val sift : ?trigger:string -> t -> unit
(** One Rudell sifting pass: each group in turn (heaviest first) is
    moved across the whole order and parked at its best position.
    Groups contributing under ~1.5% of the live nodes are left where
    they are — moving them cannot pay for the ranks they would rewrite
    on the way. *)

val window : ?trigger:string -> t -> int -> unit
(** Sliding exhaustive search over [k] consecutive groups, [k] = 2 or 3.
    Cheaper than sifting; catches locally bad adjacencies. *)

val interleave : ?trigger:string -> t -> string -> string -> unit
(** [interleave t a b] rewrites the order so the two named blocks' bits
    alternate, MSB-aligned — the layout that keeps equality and
    attribute-copy BDDs linear. *)

val deinterleave : ?trigger:string -> t -> string -> string -> unit
(** Inverse transform: the two named blocks become contiguous, first
    [a]'s bits then [b]'s. *)

val random_swaps : ?seed:int -> t -> int -> unit
(** Scramble the order with [n] seeded random adjacent swaps — test
    harness for semantics-preservation properties. *)

val install_auto : t -> threshold:int -> unit
(** Arm the manager's safe-point trigger.  When the allocated-node count
    reaches the armed threshold at a {!Jedd_bdd.Manager.checkpoint}, the
    hook collects garbage and, if the {e live} population has reached
    [threshold], runs a sifting pass (trigger ["auto-threshold"]).  It
    then re-arms at [live + max threshold live], so at least [threshold]
    fresh allocations separate consecutive firings and a converged order
    stops paying. *)

val disable_auto : t -> unit

val events : t -> event list
(** All recorded passes, oldest first. *)

val auto_fired : t -> int
(** How many times the safe-point trigger fired. *)

val level_histogram : t -> int array
(** Live-node count per level of the current order (externally reachable
    nodes only; index = level). *)

val block_attribution : t -> (string * int) list
(** Live nodes attributed to each registered block's current levels, in
    registration order, plus an [("(unassigned)", n)] row for levels
    outside every block when non-empty. *)

val check_invariants : t -> string list
(** Delegate to {!Jedd_bdd.Manager.check_invariants}. *)
