open Jedd_lang.Tast
module Ast = Jedd_lang.Ast
module C = Jedd_lang.Constraints
module E = Jedd_lang.Encode
module Predict = Jedd_relation.Predict

type estimate = { bits : int; nodes : int }

type t = { tbl : (int, estimate) Hashtbl.t }

let label_of_pos pos = Format.asprintf "%a" Ast.pp_pos pos

let analyze ?(hints = fun _ -> None) (p : tprogram) (asg : E.assignment) : t
    =
  let width_of name =
    Option.value (List.assoc_opt name asg.E.widths) ~default:0
  in
  let bits_of (e : texpr) =
    List.fold_left
      (fun acc (a : attr_info) ->
        let ph = asg.E.phys_of (C.S_expr e.eid) a.a_name in
        acc + width_of ph.p_name)
      0 e.eschema
  in
  let tbl = Hashtbl.create 64 in
  let rec est (e : texpr) : estimate =
    match Hashtbl.find_opt tbl e.eid with
    | Some r -> r
    | None ->
      let bits = bits_of e in
      let formula =
        match e.edesc with
        | TEmpty | TFull -> 1 (* a terminal *)
        | TVar _ | TCall _ -> Predict.unknown ~bits
        | TLiteral tuple -> (* one path: a node per bound bit *)
          ignore tuple;
          Predict.add bits 2
        | TBinop (op, a, b) -> (
          let na = (est a).nodes and nb = (est b).nodes in
          match op with
          | Ast.Union -> Predict.add na nb
          | Ast.Inter -> min na nb
          | Ast.Diff -> na)
        | TReplace (reps, a) ->
          let na = (est a).nodes in
          (* copies duplicate an attribute's levels; projections and
             renames never grow past the input or the result layout *)
          let copied =
            List.exists (function TCopy _ -> true | _ -> false) reps
          in
          let base = if copied then Predict.mul na 2 else na in
          Predict.project ~nodes:base ~result_bits:bits
        | TJoin (_, a, _, b, _) ->
          Predict.product ~left:(est a).nodes ~right:(est b).nodes
            ~result_bits:bits
      in
      let nodes =
        match hints (label_of_pos e.epos) with
        | Some observed -> observed
        | None -> formula
      in
      let r = { bits; nodes } in
      Hashtbl.replace tbl e.eid r;
      r
  in
  List.iter (fun e -> ignore (est e)) p.all_exprs;
  { tbl }

let estimate t eid = Hashtbl.find_opt t.tbl eid

(* -- profiler CSV replay --------------------------------------------------- *)

(* Split one CSV line into fields, honouring the double quotes
   [Report.to_csv] puts around the label and operand columns. *)
let split_csv_line line =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let in_quotes = ref false in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> in_quotes := not !in_quotes
      | ',' when not !in_quotes ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    line;
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

let hints_of_csv path =
  let table = Hashtbl.create 64 in
  (try
     let ic = open_in path in
     (try
        let header = split_csv_line (input_line ic) in
        let index name =
          let rec go i = function
            | [] -> None
            | h :: t -> if h = name then Some i else go (i + 1) t
          in
          go 0 header
        in
        match (index "label", index "result_nodes") with
        | Some li, Some ni ->
          (try
             while true do
               let fields = split_csv_line (input_line ic) in
               match (List.nth_opt fields li, List.nth_opt fields ni) with
               | Some label, Some nodes -> (
                 match int_of_string_opt (String.trim nodes) with
                 | Some n ->
                   let prev =
                     Option.value
                       (Hashtbl.find_opt table label)
                       ~default:0
                   in
                   Hashtbl.replace table label (max prev n)
                 | None -> ())
               | _ -> ()
             done
           with End_of_file -> ())
        | _ -> ()
      with End_of_file -> ());
     close_in ic
   with Sys_error _ -> ());
  fun label -> Hashtbl.find_opt table label
