(** Domains: named finite sets of objects, mapped to integers.

    In the paper a domain is a Java class implementing [jedd.Domain],
    declaring its maximum size and converting objects to integers and
    back (§2.1).  Here objects are the integers themselves; a printer
    turns them back into human-readable names. *)

type t

val declare : name:string -> size:int -> ?printer:(int -> string) -> unit -> t
(** [declare ~name ~size ()] makes a domain of [size] objects numbered
    [0 .. size-1].  The default printer shows ["name#i"]. *)

val name : t -> string
val size : t -> int
val print_obj : t -> int -> string

val bits : t -> int
(** Minimum physical-domain width able to hold this domain. *)

val equal : t -> t -> bool
