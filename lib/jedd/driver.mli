(** The jeddc pipeline (Figure 1): parse → semantic analysis →
    physical-domain assignment → ready-to-run program.

    Sources may be split over several compilation units (e.g. the five
    analyses of §5 compiled together — "All 5 combined" in Table 1):
    they are concatenated into one program sharing declarations. *)

type compiled = {
  tprog : Tast.tprogram;
  graph : Constraints.t;
  assignment : Encode.assignment;
  constraint_stats : Constraints.stats;
  weighted_stats : Encode.weighted_stats option;
      (** present when the weighted objective ran *)
}

type error = {
  message : string;
  pos : Ast.pos option;
  phase : string;  (** "parse", "typecheck", "assignment" *)
}

val compile :
  ?max_paths_per_class:int ->
  ?weight:(Tast.tprogram -> int -> int) ->
  (string * string) list ->
  (compiled, error) result
(** [compile [(filename, source); ...]].  The physical-domain assignment
    is completed automatically from whatever the programmer specified;
    failures carry the §3.3.3 error messages.  When [weight] is given
    the assignment instead minimises the summed weight of the replace
    instructions it emits ([Encode.solve_weighted]); the function maps
    the typed program to an expression-id weighting, so callers can
    plug in [Jedd_cost.Freq.analyze] without this module depending on
    the cost library. *)

val compile_exn :
  ?max_paths_per_class:int ->
  ?weight:(Tast.tprogram -> int -> int) ->
  file:string ->
  string ->
  compiled

val instantiate :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?backend:Jedd_relation.Backend.kind ->
  compiled ->
  Interp.t
(** Set up a runnable instance (universe + fields initialised). *)

val error_to_string : error -> string
