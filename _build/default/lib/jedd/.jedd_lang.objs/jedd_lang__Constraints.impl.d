lib/jedd/constraints.ml: Array Ast Format Hashtbl List Option Printf Tast
