(** Finite-domain blocks: groups of consecutive (or interleaved) BDD
    variables encoding bounded integers, after BuDDy's [fdd] interface.
    Jedd physical domains are realised as one block each (§3.2.1).

    A block stores stable {e variable ids}; every operation translates to
    current levels through the manager at call time, so blocks survive
    dynamic reordering without invalidation. *)

type man = Manager.t
type node = Manager.node

type block
(** A block of BDD variables representing integers in [0, size). *)

val extdomain : man -> int -> block
(** [extdomain m size] allocates a block wide enough for values
    [0 .. size-1], with its bits consecutive at the bottom of the current
    variable order. *)

val extdomain_bits : man -> int -> block
(** Allocate a block of exactly the given bit width. *)

val extdomains_interleaved : ?pad:bool -> man -> int list -> block list
(** Allocate several blocks with their bits interleaved — the layout
    that makes equality/join BDDs linear-sized, which the paper's
    points-to work depends on.  Blocks keep their requested widths,
    aligned at the most significant bit; narrower blocks stop
    contributing to the interleave once exhausted.  [~pad:true] restores
    the old behaviour of widening every block to the widest request. *)

val size : block -> int
(** Number of representable values, [2^width]. *)

val width : block -> int

val vars : block -> int array
(** The block's stable variable ids, most significant bit first. *)

val levels : man -> block -> int array
(** The block's current variable levels, most significant bit first.
    Valid only until the next reorder — never cache across operations
    that may trigger one. *)

val ithvar : man -> block -> int -> node
(** [ithvar m b v] is the cube asserting that the block holds value [v]. *)

val domain_cube : man -> block -> node
(** The varset cube of the block's variables (for quantification). *)

val less_than_const : man -> block -> int -> node
(** [less_than_const m b k] is the BDD asserting the block's value is
    strictly below [k] — how the runtime encodes the "full relation" 1B
    for domains whose size is not a power of two. *)

val equality : man -> block -> block -> node
(** BDD asserting two equally wide blocks hold the same value — the
    building-block of Jedd's attribute-copy operation. *)

val perm_pairs : man -> block -> block -> (int * int) list
(** Current level pairs moving a value from the first block to the second
    (feed to {!Replace.make_perm}).  Recompute after any reorder. *)

val decode : man -> block -> levels:int array -> bool array -> int
(** Reassemble an integer from an assignment produced by
    {!Enum.iter_assignments} over [levels] (which must contain the
    block's current levels). *)
