(** Hash-consed ROBDD node store with reference counting and mark/sweep GC.

    This module is the bottom layer of the BDD package: it owns the node
    arrays, the unique table, the shared operation cache and the garbage
    collector.  Nodes are dense integer handles into flat arrays, exactly
    as in BuDDy and CUDD.  The two terminals are the constants {!zero}
    (node 0) and {!one} (node 1).

    Garbage collection runs only at safe points (between top-level
    operations, see {!Ops}); in the middle of a recursive operation the
    store grows instead, so intermediate nodes can never be collected out
    from under a computation. *)

type t
(** A BDD manager.  All nodes live inside one manager; handles from
    different managers must never be mixed (checked only by invariants,
    not by the type system, as in the C packages). *)

type node = int
(** A node handle.  [0] is the false terminal, [1] the true terminal. *)

val zero : node
val one : node

val terminal_level : int
(** Pseudo-level of the two terminals; strictly greater than any variable
    level. *)

exception Out_of_nodes
(** Raised by node allocation when the node table is full, a last-ditch
    collection recovered nothing, and the configured node budget forbids
    growing.  The manager itself remains consistent — external roots and
    their refcounts are untouched and the operation caches have been
    retired — but the operation in flight is abandoned; catch it at an
    operation boundary, release what you can, and retry (typically on
    the out-of-core backend). *)

val create :
  ?node_capacity:int ->
  ?cache_bits:int ->
  ?cache_ways:int ->
  ?node_limit:int ->
  unit ->
  t
(** [create ()] makes an empty manager with no variables.
    [node_capacity] is the initial node-array capacity (default 1 lsl 15),
    [cache_bits] the log2 of the total operation-cache entry count
    (default 14), and [cache_ways] the set associativity (default 4; 1
    recovers a direct-mapped cache).  [node_limit] caps the node-table
    capacity: doublings that would overshoot it are refused and
    allocation raises {!Out_of_nodes} instead (default: unlimited). *)

val set_node_limit : t -> int option -> unit
(** Install, change or remove ([None]) the node budget at runtime. *)

val node_limit : t -> int option

val set_gc_on_exhaustion : t -> bool -> unit
(** Whether hitting the node budget may garbage-collect before raising
    {!Out_of_nodes} (default [true]).  Clear it when the handler
    {e resumes} the surrounding computation instead of abandoning it
    (the hybrid backend's per-operation out-of-core fallback): a
    collection at the point of exhaustion recycles the caller's
    unreferenced in-flight intermediates, so a resumed computation
    would read stale handles.  With the flag off, garbage is reclaimed
    only at the next checkpoint. *)

val uid : t -> int
(** A process-unique id for this manager, for keying external memo
    tables that span managers. *)

val new_var : t -> int
(** Allocate a fresh variable at the bottom of the current order and
    return its {e variable id}.  Ids are stable across reordering; the
    {e level} (position in the current order, 0 = topmost) of a variable
    starts out equal to its id and diverges once levels are swapped.
    Use {!level_of_var} / {!var_at_level} to translate. *)

val num_vars : t -> int
(** Number of variables allocated so far. *)

val level_of_var : t -> int -> int
(** Current level of a variable id ([Invalid_argument] if out of
    range).  Identity until the first reorder. *)

val var_at_level : t -> int -> int
(** Variable id sitting at a level ([Invalid_argument] if out of
    range).  Inverse of {!level_of_var}. *)

val level : t -> node -> int
(** Level of a node ({!terminal_level} for terminals). *)

val low : t -> node -> node
val high : t -> node -> node

val is_terminal : node -> bool

val mk : t -> int -> node -> node -> node
(** [mk m lvl lo hi] returns the unique node [(lvl, lo, hi)], applying the
    redundancy rule ([lo == hi] returns [lo]).  [lvl] must be strictly
    smaller than the levels of [lo] and [hi]. *)

val var : t -> int -> node
(** [var m lvl] is the BDD of the single variable at [lvl]. *)

val nvar : t -> int -> node
(** [nvar m lvl] is the negation of the single variable at [lvl]. *)

val addref : t -> node -> node
(** Increment the external reference count; returns the node for
    convenience. *)

val delref : t -> node -> unit
(** Decrement the external reference count.  The node is reclaimed at the
    next garbage collection once the count reaches zero. *)

val refcount : t -> node -> int

val gc : t -> unit
(** Force a mark/sweep collection from externally referenced nodes.
    Invalidates all operation-cache entries (by generation bump, not by a
    wipe — see {!clear_caches}). *)

val checkpoint : t -> unit
(** Safe-point hook called by top-level operations: runs a GC when the
    store is nearly full.  Never call this from inside a recursive
    operation. *)

val live_nodes : t -> int
(** Number of allocated (live or garbage, not yet swept) nodes, terminals
    included. *)

val peak_nodes : t -> int
(** High-water mark of {!live_nodes} over the manager's lifetime. *)

val gc_count : t -> int
(** Number of collections performed so far. *)

val gc_millis : t -> float
(** Total CPU milliseconds spent inside {!gc}. *)

val grow_count : t -> int
(** Number of node-table doublings performed so far. *)

val grow_millis : t -> float
(** Total CPU milliseconds spent growing and re-hashing the node table. *)

(** {2 Operation caches}

    One shared N-way set-associative cache used by all algorithm modules.
    Keys are small tuples of node handles plus an operation tag; a miss
    returns [-1].  Entries are generation-stamped: invalidation
    ({!clear_caches}, and every {!gc}) bumps the generation in O(1)
    instead of wiping the array, and table growth preserves node handles
    so it does not touch the cache at all. *)

val register_tag : string -> int
(** Allocate a fresh operation tag with a human-readable name.  Called at
    module-initialisation time by the algorithm modules; the registry is
    global, so tags mean the same thing in every manager.  At most 64
    tags may be registered. *)

val tag_name : int -> string
(** Name a registered tag ([Invalid_argument] for unregistered ids). *)

val cache_lookup : t -> int -> node -> node -> node -> node
(** [cache_lookup m tag a b c] probes the set for [(tag, a, b, c)];
    returns the cached result or [-1].  Hits are promoted toward the
    front of their set. *)

val cache_store : t -> int -> node -> node -> node -> node -> unit
(** [cache_store m tag a b c result] inserts at the front of the set,
    evicting the entry in the last way if the set is full. *)

val clear_caches : t -> unit
(** Invalidate every cache entry by bumping the generation stamp.
    Statistics counters are {e not} reset; they count monotonically over
    the manager's lifetime. *)

(** Per-tag cache statistics, as reported by {!cache_stats}. *)
type cache_stat = {
  tag : int;
  name : string;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
}

val cache_stats : t -> cache_stat list
(** One entry per registered tag, in tag order.  All counters are
    monotone over the manager's lifetime (GC and growth never reset
    them). *)

val cache_totals : t -> int * int * int
(** [(hits, misses, evictions)] summed over all tags. *)

val cache_config : t -> int * int
(** [(total_entries, ways)] of the operation cache. *)

val iter_live : t -> (node -> unit) -> unit
(** Iterate over all currently allocated non-terminal nodes (marks from
    external references first, so only externally reachable nodes are
    visited). *)

(** {2 Dynamic variable reordering}

    The manager exposes one in-place primitive — {!swap_adjacent},
    exchanging two adjacent levels of the order over the unique table —
    on top of which {!Jedd_reorder} builds sifting and window search.
    Every existing handle keeps denoting the same boolean function over
    {e variable ids} across a swap, so external references, refcounts
    and relation-layer state survive reordering untouched; only
    level-dependent memos are invalidated (generation bump +
    {!order_gen}). *)

val swap_adjacent : t -> int -> unit
(** [swap_adjacent m l] exchanges levels [l] and [l+1] of the variable
    order, in place.  O(size of the two ranks).  Bumps {!order_gen} and
    invalidates the operation cache. *)

val order_gen : t -> int
(** Generation counter bumped by every {!swap_adjacent}; memo tables
    keyed on levels must include it in their stamps. *)

val swap_count : t -> int
(** Total adjacent swaps performed over the manager's lifetime. *)

val reorder_begin : t -> unit
(** Open a reorder session: builds a per-level node index that
    {!swap_adjacent} keeps up to date, amortising many swaps.  Idempotent.
    {!gc} rebuilds the index, so collecting mid-session is fine. *)

val reorder_end : t -> unit
(** Close the reorder session and drop the per-level index. *)

val reorder_count : t -> int
(** Number of completed reorder passes (recorded by the reorder engine
    via {!record_reorder}). *)

val reorder_millis : t -> float
(** Total wall milliseconds spent inside reorder passes. *)

val reorder_aborts : t -> int
(** Total sifting moves aborted by the max-growth bound. *)

val record_reorder : t -> millis:float -> aborts:int -> unit
(** Account one finished reorder pass (called by the reorder engine). *)

val set_reorder_hook : t -> (unit -> unit) option -> unit
(** Install the auto-reorder callback fired by {!checkpoint} when the
    allocated-node count reaches the threshold.  The hook runs at a safe
    point; re-entry is guarded ({!in_reorder}). *)

val set_reorder_threshold : t -> int -> unit
(** Node-count threshold arming the auto trigger; [0] (the default)
    disables it. *)

val reorder_threshold : t -> int
val in_reorder : t -> bool

val check_invariants : t -> string list
(** Structural audit: variable/level maps are inverse bijections, the
    free list is consistent, every allocated node respects the order
    invariant and sits exactly once in its unique-table bucket.  Returns
    human-readable violations; [[]] means consistent.  O(nodes ×
    bucket length) — meant for tests and bench smoke gates. *)

(** {2 Scratch marking}

    A per-manager visited set for traversals (node counting, shapes,
    export).  Only one traversal may be in flight at a time. *)

val visited_clear : t -> unit
val visited_mem : t -> node -> bool
val visited_add : t -> node -> unit

(** {2 Parallel mode (OCaml 5 domains)}

    Between {!enter_parallel} and {!exit_parallel} the manager is safe to
    use from several domains at once: [mk] hash-conses through lock-striped
    unique-table buckets and per-domain allocation chunks, every domain
    memoises through its own generation-stamped operation cache, and
    refcount traffic is serialised through striped locks.  GC and
    reordering become stop-the-world phases: run them through {!exclusive}
    (or let {!checkpoint} trigger them), with every long-lived worker
    domain either {!stw_register}ed — parking at its next {!checkpoint} —
    or confining its table access to {!region_begin}/{!region_end}
    windows, which the coordinator drains before proceeding.

    Sequential mode is the default and pays only an option match per
    operation; results are bit-identical between modes because
    hash-consing keeps BDDs canonical. *)

val enter_parallel : t -> unit
(** Flip the manager into parallel mode.  Must be called at quiescence
    (no other domain touching the manager).  Calls nest. *)

val exit_parallel : t -> unit
(** Leave parallel mode (at quiescence, after joining all workers):
    chunk-held nodes return to the free list, per-domain cache statistics
    fold into the base counters, and the plain sequential paths resume. *)

val with_parallel : t -> (unit -> 'a) -> 'a
(** [with_parallel m f] brackets [f] with {!enter_parallel} /
    {!exit_parallel}. *)

val in_parallel : t -> bool

val exclusive : t -> (unit -> 'a) -> 'a
(** [exclusive m f] runs [f] with the world stopped: registered domains
    are parked at their checkpoints, apply regions have drained, and no
    other domain touches the store until [f] returns.  Reentrant from
    the coordinating domain; equivalent to [f ()] in sequential mode. *)

val stw_register : t -> unit
(** Declare the calling domain a long-lived worker on this manager: it
    promises to call {!checkpoint} regularly and parks there while a
    stop-the-world phase runs.  No-op in sequential mode. *)

val stw_unregister : t -> unit
(** Retract {!stw_register} (must be called before the domain stops
    touching the manager, or coordinators would wait for it forever). *)

val region_begin : t -> unit
(** Open a bounded window of table access for a domain that is not
    {!stw_register}ed (e.g. a task-pool worker inside one parallel
    apply).  Blocks while a stop-the-world phase is pending. *)

val region_join : t -> unit
(** Open a region {e without} waiting out a pending stop-the-world
    phase.  Sound only when the caller guarantees another region is
    already open and outlives this one (pool workers joining the region
    their run's caller holds). *)

val region_end : t -> unit
(** Close the window opened by {!region_begin} or {!region_join}. *)

(** Cumulative parallel-execution counters (survive {!exit_parallel}). *)
type par_stats = {
  par_active : bool;
  par_domains : int;  (** peak count of domains that claimed a slot *)
  par_stw_sections : int;  (** stop-the-world phases run *)
  par_barrier_waits : int;  (** times a domain parked at the barrier *)
  par_chunk_refills : int;  (** allocation-chunk refills served *)
  par_registered : int;  (** currently registered worker domains *)
}

val par_stats : t -> par_stats

val slot_cache_stats : t -> (int * int * int * int * int) array
(** Per-domain cache counters of the live parallel window:
    [(slot, hits, misses, stores, evictions)] summed over tags; [[||]]
    outside parallel mode. *)

(** {2 Frozen (read-only serving) mode}

    {!freeze} turns the manager into an immutable arena for the query
    server: a final mark/sweep compacts the live node set, then the
    mutating entry points are fenced off.  On a frozen manager
    {!addref} / {!delref} return without touching memory (the query
    path is ref-count-free), {!gc} and {!checkpoint} are no-ops (no
    collections, no auto-reorder triggers, no cache-generation bumps
    between queries), and {!new_var} / {!swap_adjacent} raise
    {!Frozen}.  Queries may still hash-cons scratch nodes; a
    coordinator reclaims them at quiescence with {!frozen_sweep}.
    Freezing is one-way and composes with parallel mode: the serve
    pool freezes first, then {!enter_parallel} for multi-domain
    reads. *)

exception Frozen of string
(** Raised by mutating entry points ({!new_var}, {!swap_adjacent},
    relation-layer writes) on a frozen manager. *)

val freeze : t -> unit
(** Compact the live node set and flip the manager read-only.  Must be
    called at sequential quiescence (outside parallel mode);
    idempotent.  One-way: there is no thaw. *)

val frozen : t -> bool

val frozen_sweep : t -> unit
(** Reclaim query scratch: collect every node unreachable from the
    pinned pre-freeze roots.  The caller must guarantee quiescence (no
    query in flight on any domain).  [Invalid_argument] if the manager
    is not frozen. *)

val frozen_live_nodes : t -> int
(** Node count right after {!freeze} (the pinned arena size). *)

val frozen_sweep_count : t -> int
(** Number of {!frozen_sweep} passes performed. *)
