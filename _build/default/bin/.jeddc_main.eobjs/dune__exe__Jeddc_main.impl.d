bin/jeddc_main.ml: Arg Cmd Cmdliner Format Hashtbl Jedd_lang List Printf Term
