test/test_main.ml: Alcotest Test_analyses Test_bdd Test_ir Test_jedd Test_relation Test_sat Test_tools Test_zdd
