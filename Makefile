.PHONY: all check test smoke release bench-json clean

all:
	dune build

# The full gate: build, unit/property tests, and the seconds-scale
# benchmark smoke run.  The smoke includes the reorder round-trip on a
# deliberately bad declaration order and exits non-zero on any manager
# invariant violation after reordering.
check:
	dune build
	dune runtest
	dune build @bench-smoke

test:
	dune runtest

smoke:
	dune build @bench-smoke

# Optimised binaries (-O3 -unsafe -noassert); see the root `dune` file.
release:
	dune build --profile release

# Regenerate the machine-readable benchmark summaries committed at the
# repo root (BENCH_pr1.json, BENCH_pr2.json).
bench-json:
	dune exec --profile release bench/main.exe -- json
	dune exec --profile release bench/main.exe -- json2

clean:
	dune clean
