lib/jedd/interp.mli: Encode Jedd_relation Tast
