(* Property and adversarial-input tests for the protocol JSON codec
   (lib/server/json.ml): print/parse round-trips over random values,
   escape handling, the nesting-depth cap, truncated documents, and
   numbers at the edges of what int/float can hold. *)

module Json = Jedd_server.Json

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* -- random value generator --------------------------------------------- *)

(* Strings over the full byte range except that we keep them valid as
   OCaml strings (any byte is); the printer escapes controls and
   quotes, and bytes >= 0x20 pass through verbatim, so round-trips are
   byte-faithful. *)
let string_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 12))

(* Finite floats only: nan/inf deliberately print as null (JSON has no
   tokens for them), which is a lossy and separately-tested path. *)
let float_gen =
  QCheck.Gen.(
    oneof
      [
        map float_of_int (int_range (-1000) 1000);
        float_range (-1e15) 1e15;
        oneofl [ 0.5; -0.5; 1e-9; 1.7976931348623157e308; 5e-324 ];
      ])

let value_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun f -> Json.Float f) float_gen;
              map (fun s -> Json.String s) string_gen;
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map
                  (fun l -> Json.List l)
                  (list_size (0 -- 4) (self (n / 2))) );
              ( 1,
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (0 -- 4)
                     (pair string_gen (self (n / 2)))) );
            ]))

let arbitrary_value =
  QCheck.make value_gen ~print:(fun v -> Json.to_string v)

(* -- properties ---------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"of_string (to_string v) = v"
    arbitrary_value (fun v -> Json.of_string (Json.to_string v) = v)

(* A second decode of a re-encoded document is a fixpoint even for
   documents we did not produce (e.g. with \u escapes or odd spacing). *)
let prop_reprint_stable =
  QCheck.Test.make ~count:500 ~name:"to_string is a fixpoint under reparse"
    arbitrary_value (fun v ->
      let s = Json.to_string v in
      Json.to_string (Json.of_string s) = s)

(* Every proper prefix of a serialized container is rejected: the
   parser never silently accepts a truncated request. *)
let prop_truncation_rejected =
  QCheck.Test.make ~count:200 ~name:"all proper prefixes fail to parse"
    arbitrary_value (fun v ->
      let s = Json.to_string (Json.List [ v ]) in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        match Json.of_string (String.sub s 0 n) with
        | _ -> ok := false
        | exception Json.Parse_error _ -> ()
      done;
      !ok)

(* -- directed edge cases ------------------------------------------------- *)

let test_escapes () =
  let cases =
    [
      ("\"a\\nb\"", Json.String "a\nb");
      ("\"a\\tb\\rc\"", Json.String "a\tb\rc");
      ("\"\\\"\\\\\\/\"", Json.String "\"\\/");
      ("\"\\u0041\"", Json.String "A");
      ("\"\\u00e9\"", Json.String "\xc3\xa9");
      ("\"\\u20ac\"", Json.String "\xe2\x82\xac");
      ("\"\\u0000\"", Json.String "\000");
    ]
  in
  List.iter
    (fun (s, expect) ->
      checkb (Printf.sprintf "parse %s" s) true (Json.of_string s = expect))
    cases;
  (* control characters must come back out escaped *)
  check Alcotest.string "controls re-escape" "\"\\u0001\\n\""
    (Json.to_string (Json.String "\001\n"));
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted bad escape %S" s)
    [ "\"\\x41\""; "\"\\u12\""; "\"\\u12zz\""; "\"\\"; "\"\\u\"" ]

let nested n =
  String.concat "" (List.init n (fun _ -> "["))
  ^ "0"
  ^ String.concat "" (List.init n (fun _ -> "]"))

let test_depth_cap () =
  (* just under the cap parses; just over raises *)
  (match Json.of_string (nested 511) with
  | _ -> ()
  | exception Json.Parse_error m ->
    Alcotest.failf "511 levels rejected: %s" m);
  (match Json.of_string (nested 513) with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "513 levels accepted");
  (* mixed object/array nesting counts too, and over-deep input must
     raise rather than blow the stack *)
  let deep_mixed =
    String.concat "" (List.init 5000 (fun _ -> "{\"a\":["))
  in
  match Json.of_string deep_mixed with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "unterminated 10000-deep input accepted"

let test_huge_numbers () =
  (* ints beyond 63 bits degrade to Float, not to a parse error *)
  (match Json.of_string "123456789012345678901234567890" with
  | Json.Float _ -> ()
  | v -> Alcotest.failf "got %s" (Json.to_string v));
  (match Json.of_string "1e308" with
  | Json.Float f -> checkb "1e308 finite" true (Float.is_finite f)
  | v -> Alcotest.failf "got %s" (Json.to_string v));
  (* overflow to infinity still parses; printing it degrades to null *)
  (match Json.of_string "1e400" with
  | Json.Float f ->
    checkb "1e400 is inf" true (f = Float.infinity);
    check Alcotest.string "inf prints as null" "null"
      (Json.to_string (Json.Float f))
  | v -> Alcotest.failf "got %s" (Json.to_string v));
  check Alcotest.string "nan prints as null" "null"
    (Json.to_string (Json.Float Float.nan));
  checkb "max_int survives" true
    (Json.of_string (string_of_int max_int) = Json.Int max_int);
  checkb "min_int survives" true
    (Json.of_string (string_of_int min_int) = Json.Int min_int);
  (* malformed number spellings are rejected *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted bad number %S" s)
    [ "1e"; "--3"; "1.2.3"; "+5"; "-"; "0x10" ]

let suite =
  [
    Alcotest.test_case "escape handling" `Quick test_escapes;
    Alcotest.test_case "nesting depth cap" `Quick test_depth_cap;
    Alcotest.test_case "huge and malformed numbers" `Quick test_huge_numbers;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~verbose:false)
      [ prop_roundtrip; prop_reprint_stable; prop_truncation_rejected ]
