lib/sat/solver.mli:
