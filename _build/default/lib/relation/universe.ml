type op_event = {
  op : string;
  label : string;
  millis : float;
  operand_nodes : int list;
  result_nodes : int;
  result_tuples : int;
  shapes : (int array * int array list) option;
}

type profile_level = Off | Counts | Shapes

type t = {
  manager : Jedd_bdd.Manager.t;
  uid : int;
  mutable level : profile_level;
  mutable on_op : (op_event -> unit) option;
  mutable scratch_counter : int;
}

let counter = ref 0

let create ?(node_capacity = 1 lsl 16) () =
  incr counter;
  {
    manager = Jedd_bdd.Manager.create ~node_capacity ();
    uid = !counter;
    level = Off;
    on_op = None;
    scratch_counter = 0;
  }

let uid u = u.uid

let manager u = u.manager
let set_profile_level u level = u.level <- level
let profile_level u = u.level
let set_on_op u hook = u.on_op <- hook

let emit_op u event =
  match u.on_op with
  | Some hook when u.level <> Off -> hook event
  | _ -> ()

let next_scratch_name u =
  u.scratch_counter <- u.scratch_counter + 1;
  Printf.sprintf "__scratch%d" u.scratch_counter

let checkpoint u = Jedd_bdd.Manager.checkpoint u.manager
