(* The jeddd load generator: many concurrent synchronous clients
   hammering one server, with closed-loop (send, wait, repeat) or
   open-loop (paced to a target rate, lateness absorbed by the
   connection) arrival processes.  Each client is a thread owning one
   connection over the chosen transport; latencies are recorded
   per-request in microseconds and the harness reports wall-clock
   throughput plus p50/p95/p99 over the merged sample.

   Kept under bench/ rather than lib/ on purpose: it is measurement
   harness, not product — but `bench load` (the CI smoke) and `bench
   json7` (BENCH_pr7.json) both drive it, so its numbers are the PR's
   acceptance evidence.

   The serve front end multiplexes with select(), so keep
   [clients] comfortably under FD_SETSIZE (~1024) per server. *)

module Json = Jedd_server.Json
module Client = Jedd_server.Client
module Http = Jedd_serve.Http

type transport =
  | Unix_sock of string
  | Tcp of string * int
  | Http_t of string * int

type spec = {
  transport : transport;
  clients : int;
  requests_per_client : int;
  (* open-loop pacing: target requests/second per client; None = closed
     loop (next request leaves as soon as the previous answer lands) *)
  rate_per_client : float option;
  (* request factory: client index -> sequence number -> request *)
  make_request : int -> int -> Json.t;
}

type result = {
  sent : int;
  ok : int;
  app_errors : int; (* ok:false responses *)
  transport_errors : int; (* connect/read/write failures *)
  wall_s : float;
  lat_us : int array; (* sorted, one entry per completed request *)
}

let percentile_us r q =
  let n = Array.length r.lat_us in
  if n = 0 then 0
  else r.lat_us.(min (n - 1) (int_of_float (q *. float_of_int n)))

let throughput_rps r =
  if r.wall_s <= 0.0 then 0.0 else float_of_int r.ok /. r.wall_s

type client_state = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_app_errors : int;
  mutable c_transport_errors : int;
  mutable c_lat : int list;
}

let connect transport =
  match transport with
  | Unix_sock path -> (Client.connect ~retries:5 path, false)
  | Tcp (host, port) -> (Client.connect_tcp ~retries:5 host port, false)
  | Http_t (host, port) -> (Client.connect_tcp ~retries:5 host port, true)

let run spec =
  if spec.clients < 1 || spec.requests_per_client < 1 then
    invalid_arg "Loadgen.run: clients and requests_per_client must be >= 1";
  let states =
    Array.init spec.clients (fun _ ->
        {
          c_sent = 0;
          c_ok = 0;
          c_app_errors = 0;
          c_transport_errors = 0;
          c_lat = [];
        })
  in
  let barrier = Mutex.create () in
  let ready = ref 0 in
  let go = Condition.create () in
  let started = ref false in
  let client_body i =
    let st = states.(i) in
    match connect spec.transport with
    | exception _ ->
      (* the whole client's quota counts as transport errors: a refused
         connection must never silently shrink the workload *)
      st.c_transport_errors <- spec.requests_per_client;
      Mutex.lock barrier;
      incr ready;
      Condition.broadcast go;
      Mutex.unlock barrier
    | c, is_http ->
      Client.set_timeout c 30.0;
      (* wait for every connection to be up, so the timed window
         measures steady state, not connect storms *)
      Mutex.lock barrier;
      incr ready;
      Condition.broadcast go;
      while not !started do
        Condition.wait go barrier
      done;
      Mutex.unlock barrier;
      let interval =
        match spec.rate_per_client with
        | Some r when r > 0.0 -> Some (1.0 /. r)
        | _ -> None
      in
      let t0 = Unix.gettimeofday () in
      (try
         for j = 0 to spec.requests_per_client - 1 do
           (match interval with
           | Some dt ->
             (* open loop: fire at t0 + j*dt, never earlier *)
             let due = t0 +. (float_of_int j *. dt) in
             let now = Unix.gettimeofday () in
             if due > now then Unix.sleepf (due -. now)
           | None -> ());
           let request = spec.make_request i j in
           st.c_sent <- st.c_sent + 1;
           let q0 = Unix.gettimeofday () in
           let resp =
             if is_http then
               Http.client_request ~ic:c.Client.ic ~oc:c.Client.oc request
             else Client.request c request
           in
           let dt_us =
             int_of_float ((Unix.gettimeofday () -. q0) *. 1e6)
           in
           st.c_lat <- dt_us :: st.c_lat;
           (match Json.member "ok" resp with
           | Some (Json.Bool true) -> st.c_ok <- st.c_ok + 1
           | _ -> st.c_app_errors <- st.c_app_errors + 1)
         done
       with _ ->
         st.c_transport_errors <-
           st.c_transport_errors
           + (spec.requests_per_client - st.c_sent)
           + 1);
      Client.close c
  in
  let threads =
    List.init spec.clients (fun i -> Thread.create client_body i)
  in
  (* release the herd once every connection is established *)
  Mutex.lock barrier;
  while !ready < spec.clients do
    Condition.wait go barrier
  done;
  started := true;
  Condition.broadcast go;
  Mutex.unlock barrier;
  let w0 = Unix.gettimeofday () in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. w0 in
  let lat =
    Array.of_list
      (Array.fold_left (fun acc st -> List.rev_append st.c_lat acc) [] states)
  in
  Array.sort compare lat;
  {
    sent = Array.fold_left (fun a st -> a + st.c_sent) 0 states;
    ok = Array.fold_left (fun a st -> a + st.c_ok) 0 states;
    app_errors = Array.fold_left (fun a st -> a + st.c_app_errors) 0 states;
    transport_errors =
      Array.fold_left (fun a st -> a + st.c_transport_errors) 0 states;
    wall_s;
    lat_us = lat;
  }
