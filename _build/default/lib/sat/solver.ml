(* Conflict-driven clause learning, after MiniSat, with a resolution
   trace for unsat-core extraction.

   Internal literal encoding: variable [v] (0-based) gives literals
   [2v] (positive) and [2v+1] (negative).  The external interface uses
   DIMACS-style integers (1-based, sign for polarity). *)

type clause = {
  id : int; (* original-clause id, or -1 for learned *)
  mutable lits : int array;
  antecedents : int list; (* clause-db indices resolved to learn this *)
}

type t = {
  mutable nvars : int;
  mutable clauses : clause array; (* clause database, dense *)
  mutable nclauses_db : int;
  mutable n_original : int; (* ids handed out, incl. skipped tautologies *)
  mutable n_literals : int;
  (* per-variable state *)
  mutable assign : int array; (* -1 unassigned / 0 false / 1 true *)
  mutable var_level : int array;
  mutable reason : int array; (* clause-db index or -1 *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable heap_pos : int array; (* -1 when not in heap *)
  mutable heap : int array;
  mutable heap_size : int;
  (* watch lists, indexed by literal code *)
  mutable watches : int list array;
  (* trail *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_head : int;
  mutable trail_lim : int list; (* decision-level boundaries, most recent first *)
  mutable var_inc : float;
  (* results *)
  mutable status : result option;
  mutable core : int list;
  mutable empty_clause : bool;
  mutable proof_log : int list list; (* learned clauses, reversed, DIMACS *)
  (* stats *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
}

and result = Sat | Unsat

let var_decay = 1.0 /. 0.95

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 { id = -2; lits = [||]; antecedents = [] };
    nclauses_db = 0;
    n_original = 0;
    n_literals = 0;
    assign = Array.make 16 (-1);
    var_level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    heap = Array.make 16 0;
    heap_size = 0;
    watches = Array.make 32 [];
    trail = Array.make 16 0;
    trail_size = 0;
    trail_head = 0;
    trail_lim = [];
    var_inc = 1.0;
    status = None;
    core = [];
    empty_clause = false;
    proof_log = [];
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
  }

let num_vars s = s.nvars
let num_clauses s = s.n_original
let num_literals s = s.n_literals
let conflicts s = s.n_conflicts
let decisions s = s.n_decisions
let propagations s = s.n_propagations

(* -- growable arrays ---------------------------------------------------- *)

let ensure_var_capacity s =
  let cap = Array.length s.assign in
  if s.nvars >= cap then begin
    let ncap = cap * 2 in
    let extend a fill =
      let a' = Array.make ncap fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    s.assign <- extend s.assign (-1);
    s.var_level <- extend s.var_level 0;
    s.reason <- extend s.reason (-1);
    s.activity <- extend s.activity 0.0;
    s.phase <- extend s.phase false;
    s.heap_pos <- extend s.heap_pos (-1);
    s.heap <- extend s.heap 0;
    let w' = Array.make (ncap * 2) [] in
    Array.blit s.watches 0 w' 0 (Array.length s.watches);
    s.watches <- w';
    let t' = Array.make ncap 0 in
    Array.blit s.trail 0 t' 0 (Array.length s.trail);
    s.trail <- t'
  end

(* -- VSIDS heap --------------------------------------------------------- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0
  end;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then heap_down s 0;
  v

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let decay_activities s = s.var_inc <- s.var_inc *. var_decay

(* -- basic literal machinery -------------------------------------------- *)

let var_of lit = lit lsr 1
let neg lit = lit lxor 1

let lit_value s lit =
  let a = s.assign.(var_of lit) in
  if a < 0 then -1 else a lxor (lit land 1)

let decision_level s = List.length s.trail_lim

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  ensure_var_capacity s;
  heap_insert s v;
  v + 1

(* -- clause database ----------------------------------------------------- *)

let push_clause s c =
  if s.nclauses_db >= Array.length s.clauses then begin
    let a = Array.make (Array.length s.clauses * 2) c in
    Array.blit s.clauses 0 a 0 s.nclauses_db;
    s.clauses <- a
  end;
  s.clauses.(s.nclauses_db) <- c;
  s.nclauses_db <- s.nclauses_db + 1;
  s.nclauses_db - 1

let watch s lit ci = s.watches.(lit) <- ci :: s.watches.(lit)

let enqueue s lit reason_ci =
  let v = var_of lit in
  s.assign.(v) <- 1 - (lit land 1);
  s.var_level.(v) <- decision_level s;
  s.reason.(v) <- reason_ci;
  s.phase.(v) <- lit land 1 = 0;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

(* -- unsat-core extraction (from a level-0 conflict) --------------------- *)

let extract_core s confl_ci =
  let core = Hashtbl.create 64 in
  let seen_clause = Hashtbl.create 256 in
  let seen_var = Array.make (max 1 s.nvars) false in
  let rec visit_clause ci =
    if ci >= 0 && not (Hashtbl.mem seen_clause ci) then begin
      Hashtbl.add seen_clause ci ();
      let c = s.clauses.(ci) in
      if c.id >= 0 then Hashtbl.replace core c.id ()
      else List.iter visit_clause c.antecedents;
      Array.iter
        (fun q ->
          let v = var_of q in
          if not seen_var.(v) then begin
            seen_var.(v) <- true;
            if s.reason.(v) >= 0 then visit_clause s.reason.(v)
          end)
        c.lits
    end
  in
  visit_clause confl_ci;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) core [])

(* internal lit from DIMACS int *)
let lit_of_dimacs d =
  if d = 0 then invalid_arg "Solver.add_clause: zero literal";
  let v = abs d - 1 in
  if d > 0 then 2 * v else (2 * v) + 1

let add_clause s dimacs_lits =
  let id = s.n_original in
  s.n_original <- id + 1;
  let lits = List.map lit_of_dimacs dimacs_lits in
  List.iter
    (fun l ->
      while var_of l >= s.nvars do
        ignore (new_var s)
      done)
    lits;
  s.n_literals <- s.n_literals + List.length lits;
  let lits = List.sort_uniq compare lits in
  let tautology = List.exists (fun l -> List.mem (neg l) lits) lits in
  if tautology then id
  else begin
    (* Remove literals already false at level 0; they can never help.
       This simplification must be recorded for core soundness: a literal
       false at level 0 has a level-0 reason clause, which we fold into
       this clause's antecedents.  To keep original clauses pristine we
       skip the simplification instead — correctness is unaffected, the
       watch machinery handles false literals. *)
    match lits with
    | [] ->
      s.empty_clause <- true;
      s.status <- Some Unsat;
      s.proof_log <- [ [] ];
      s.core <- [ id ];
      id
    | [ l ] ->
      let ci = push_clause s { id; lits = [| l; l |]; antecedents = [] } in
      (* Unit clause: assert at level 0 (if consistent). *)
      (match lit_value s l with
      | 1 -> ()
      | 0 ->
        (* Immediate level-0 conflict with earlier units. *)
        s.status <- Some Unsat;
        s.proof_log <- [ [] ];
      s.proof_log <- [ [] ];
        s.core <- extract_core s ci
      | _ -> enqueue s l ci);
      id
    | l0 :: l1 :: _ ->
      let arr = Array.of_list lits in
      let ci = push_clause s { id; lits = arr; antecedents = [] } in
      watch s l0 ci;
      watch s l1 ci;
      id
  end

(* -- propagation --------------------------------------------------------- *)

exception Conflict of int

let propagate s =
  try
    while s.trail_head < s.trail_size do
      let p = s.trail.(s.trail_head) in
      s.trail_head <- s.trail_head + 1;
      s.n_propagations <- s.n_propagations + 1;
      let false_lit = neg p in
      let ws = s.watches.(false_lit) in
      s.watches.(false_lit) <- [];
      let rec scan = function
        | [] -> ()
        | ci :: rest -> (
          let c = s.clauses.(ci) in
          let lits = c.lits in
          if lits.(0) = false_lit then begin
            lits.(0) <- lits.(1);
            lits.(1) <- false_lit
          end;
          if lit_value s lits.(0) = 1 then begin
            (* already satisfied: keep watching false_lit *)
            s.watches.(false_lit) <- ci :: s.watches.(false_lit);
            scan rest
          end
          else
            (* look for a new watch *)
            let n = Array.length lits in
            let rec find k =
              if k >= n then -1
              else if lit_value s lits.(k) <> 0 then k
              else find (k + 1)
            in
            match find 2 with
            | k when k >= 0 ->
              lits.(1) <- lits.(k);
              lits.(k) <- false_lit;
              watch s lits.(1) ci;
              scan rest
            | _ ->
              s.watches.(false_lit) <- ci :: s.watches.(false_lit);
              if lit_value s lits.(0) = 0 then begin
                (* conflict: restore remaining watches, then raise *)
                List.iter
                  (fun ci' ->
                    s.watches.(false_lit) <- ci' :: s.watches.(false_lit))
                  rest;
                s.trail_head <- s.trail_size;
                raise (Conflict ci)
              end
              else begin
                enqueue s lits.(0) ci;
                scan rest
              end)
      in
      scan ws
    done;
    -1
  with Conflict ci -> ci

(* -- conflict analysis ---------------------------------------------------- *)

let analyze s confl_ci =
  let seen = Array.make s.nvars false in
  let learnt = ref [] in
  let antecedents = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl_ci in
  let index = ref s.trail_size in
  let continue = ref true in
  while !continue do
    antecedents := !confl :: !antecedents;
    let c = s.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not seen.(v)) && s.var_level.(v) > 0 then begin
            seen.(v) <- true;
            bump_var s v;
            if s.var_level.(v) >= decision_level s then incr counter
            else learnt := q :: !learnt
          end
        end)
      c.lits;
    (* pick next literal to resolve on *)
    let rec next () =
      decr index;
      let q = s.trail.(!index) in
      if seen.(var_of q) then q else next ()
    in
    let q = next () in
    seen.(var_of q) <- false;
    decr counter;
    if !counter = 0 then begin
      p := neg q;
      continue := false
    end
    else begin
      p := q;
      confl := s.reason.(var_of q)
    end
  done;
  let learnt_lits = !p :: !learnt in
  (* Backjump level: highest level among the non-asserting literals. *)
  let bj_level =
    List.fold_left
      (fun acc q -> max acc s.var_level.(var_of q))
      0 !learnt
  in
  (learnt_lits, bj_level, !antecedents)

let backtrack s level =
  let rec strip_lims lims n =
    (* keep [level] boundaries *)
    if n <= level then lims
    else
      match lims with
      | [] -> []
      | boundary :: rest ->
        (* undo assignments above this boundary *)
        while s.trail_size > boundary do
          s.trail_size <- s.trail_size - 1;
          let v = var_of s.trail.(s.trail_size) in
          s.assign.(v) <- -1;
          s.reason.(v) <- -1;
          heap_insert s v
        done;
        strip_lims rest (n - 1)
  in
  s.trail_lim <- strip_lims s.trail_lim (decision_level s);
  s.trail_head <- s.trail_size

(* -- search --------------------------------------------------------------- *)

(* Luby sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  (* find k with i <= 2^k - 1 *)
  let rec size k = if (1 lsl k) - 1 >= i then k else size (k + 1) in
  let k = size 1 in
  if i = (1 lsl k) - 1 then 1 lsl (k - 1)
  else luby (i - ((1 lsl (k - 1)) - 1))

let pick_branch_var s =
  let rec go () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assign.(v) < 0 then v else go ()
  in
  go ()

let dimacs_of_lit lit =
  let v = var_of lit + 1 in
  if lit land 1 = 0 then v else -v

let learn_clause s lits antecedents =
  s.proof_log <- List.map dimacs_of_lit lits :: s.proof_log;
  match lits with
  | [] -> assert false
  | [ l ] ->
    backtrack s 0;
    let ci = push_clause s { id = -1; lits = [| l; l |]; antecedents } in
    if lit_value s l = 0 then (
      (* level-0 conflict right away *)
      Some ci)
    else begin
      if lit_value s l < 0 then enqueue s l ci;
      None
    end
  | first :: _ ->
    let arr = Array.of_list lits in
    (* watched literals: the asserting literal and one literal of the
       backjump level *)
    let ci = push_clause s { id = -1; lits = arr; antecedents } in
    (* ensure arr.(1) has max level among non-asserting *)
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if s.var_level.(var_of arr.(k)) > s.var_level.(var_of arr.(!best)) then
        best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    watch s arr.(0) ci;
    watch s arr.(1) ci;
    enqueue s first ci;
    None

let solve s =
  match s.status with
  | Some r -> r
  | None ->
    let result = ref None in
    let restart_count = ref 0 in
    let conflicts_until_restart = ref (100 * luby 1) in
    (* top-level propagation of unit clauses *)
    (while !result = None do
       let confl = propagate s in
       if confl >= 0 then begin
         s.n_conflicts <- s.n_conflicts + 1;
         if decision_level s = 0 then begin
           s.core <- extract_core s confl;
           result := Some Unsat
         end
         else begin
           let lits, bj, antecedents = analyze s confl in
           backtrack s bj;
           (match learn_clause s lits antecedents with
           | Some conflicting_ci ->
             s.core <- extract_core s conflicting_ci;
             result := Some Unsat
           | None -> ());
           decay_activities s
         end
       end
       else if s.n_conflicts >= !conflicts_until_restart then begin
         incr restart_count;
         conflicts_until_restart :=
           s.n_conflicts + (100 * luby (!restart_count + 1));
         backtrack s 0
       end
       else begin
         match pick_branch_var s with
         | -1 -> result := Some Sat
         | v ->
           s.n_decisions <- s.n_decisions + 1;
           s.trail_lim <- s.trail_size :: s.trail_lim;
           let lit = if s.phase.(v) then 2 * v else (2 * v) + 1 in
           enqueue s lit (-1)
       end
     done);
    let r = match !result with Some r -> r | None -> assert false in
    if r = Unsat then s.proof_log <- [] :: s.proof_log;
    s.status <- Some r;
    r

let value s v =
  match s.status with
  | Some Sat ->
    let a = s.assign.(v - 1) in
    a = 1
  | _ -> invalid_arg "Solver.value: no model available"

let unsat_core s =
  match s.status with
  | Some Unsat -> s.core
  | _ -> invalid_arg "Solver.unsat_core: instance not proven unsatisfiable"

let proof s =
  match s.status with
  | Some Unsat -> List.rev s.proof_log
  | _ -> invalid_arg "Solver.proof: instance not proven unsatisfiable"

let minimize_core ~rebuild core =
  let rec shrink kept candidates =
    match candidates with
    | [] -> List.sort compare kept
    | c :: rest ->
      let subset = kept @ rest in
      let s, id_map = rebuild subset in
      (match solve s with
      | Unsat ->
        (* still unsat without [c]: drop it, and restrict to the new
           (possibly smaller) core *)
        let new_core = List.map id_map (unsat_core s) in
        let new_core_set = List.sort_uniq compare new_core in
        let keep x = List.mem x new_core_set in
        shrink (List.filter keep kept) (List.filter keep rest)
      | Sat -> shrink (c :: kept) rest)
  in
  shrink [] core
