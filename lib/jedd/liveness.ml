(* Liveness of relation variables (§4.2), as a backward may-live
   problem on the [Cfg] control-flow graph, solved by the generic
   [Jedd_dataflow] worklist engine.

   Kill sites are derived from the fixpoint: an atomic statement kills
   the variables it touches that are dead afterwards; an [if] kills its
   condition-only variables after the whole statement (Lower copies the
   kill into both branches).  The do-while compatibility edge keeps the
   historical conservatism — condition uses count as live at loop entry
   — so kill sites land exactly where they always have. *)

open Tast
module S = Set.Make (String)

type t = {
  ids : int Cfg.Stmt_tbl.t;  (* statement occurrence -> dense id *)
  kills : (int, var_key list) Hashtbl.t;  (* statement id -> kill set *)
}

let kills_after t s =
  match Cfg.Stmt_tbl.find_opt t.ids s with
  | None -> []
  | Some id -> (
    match Hashtbl.find_opt t.kills id with Some ks -> ks | None -> [])

let total_kill_sites t = Hashtbl.length t.kills

(* variables (locals and parameters, by key) an expression reads *)
let rec expr_uses (e : texpr) acc =
  match e.edesc with
  | TVar ((Vlocal | Vparam), key) -> S.add key acc
  | TVar (Vfield, _) | TEmpty | TFull | TLiteral _ -> acc
  | TBinop (_, l, r) -> expr_uses l (expr_uses r acc)
  | TReplace (_, c) -> expr_uses c acc
  | TJoin (_, l, _, r, _) -> expr_uses l (expr_uses r acc)
  | TCall (_, args) ->
    List.fold_left
      (fun acc (a : targ) ->
        match a with Targ_rel te -> expr_uses te acc | Targ_obj _ -> acc)
      acc args

let rec cond_uses (c : tcond) acc =
  match c with
  | TBool _ -> acc
  | TNot c -> cond_uses c acc
  | TAnd (a, b) | TOr (a, b) -> cond_uses a (cond_uses b acc)
  | TCmp_eq (l, r) | TCmp_ne (l, r) -> expr_uses l (expr_uses r acc)

(* uses and definitions of an atomic statement *)
let uses_defs (s : tstmt) : S.t * S.t =
  match s with
  | TDecl (key, init, _) ->
    let used =
      match init with Some e -> expr_uses e S.empty | None -> S.empty
    in
    (used, S.singleton key)
  | TAssign (key, kind, e, _) ->
    let defined =
      if kind = Vlocal || kind = Vparam then S.singleton key else S.empty
    in
    (expr_uses e S.empty, defined)
  | TOp_assign (_, key, kind, e, _) ->
    (* reads and writes the variable *)
    let u = expr_uses e S.empty in
    ((if kind = Vlocal || kind = Vparam then S.add key u else u), S.empty)
  | TExpr e | TPrint e -> (expr_uses e S.empty, S.empty)
  | TReturn (e, _) ->
    ((match e with Some e -> expr_uses e S.empty | None -> S.empty), S.empty)
  | TIf _ | TWhile _ | TDo_while _ | TBlock _ -> (S.empty, S.empty)

module Live = Jedd_dataflow.Solver (struct
  type t = S.t

  let bottom = S.empty
  let join = S.union
  let equal = S.equal
end)

let analyze (m : tmeth) : t =
  let cfg = Cfg.build_ast ~dowhile_compat:true m in
  let transfer n (out : S.t) =
    match cfg.Cfg.anodes.(n) with
    | Cfg.A_stmt (TReturn _ as s) ->
      (* frame teardown releases everything anyway *)
      fst (uses_defs s)
    | Cfg.A_stmt s ->
      let used, defined = uses_defs s in
      S.union used (S.diff out defined)
    | Cfg.A_cond (c, _) -> S.union (cond_uses c S.empty) out
    | Cfg.A_entry | Cfg.A_exit | Cfg.A_join | Cfg.A_branch _ -> out
  in
  let res =
    Live.run cfg.Cfg.agraph Jedd_dataflow.Backward
      ~init:(fun _ -> S.empty)
      ~transfer
  in
  (* derive kill sites from the fixpoint; [before] is the live-out *)
  let t = { ids = Cfg.Stmt_tbl.create 32; kills = Hashtbl.create 32 } in
  let record s id keys =
    if keys <> [] then begin
      Cfg.Stmt_tbl.replace t.ids s id;
      Hashtbl.replace t.kills id keys
    end
  in
  let rec walk (s : tstmt) =
    match s with
    | TBlock ss -> List.iter walk ss
    | TIf (c, th, el) ->
      walk th;
      Option.iter walk el;
      let cn, j = Cfg.Stmt_tbl.find cfg.Cfg.aif_nodes s in
      let live_out = res.Live.before j in
      let branches = res.Live.before cn in
      let used_c = cond_uses c S.empty in
      (* condition-only variables die after the whole statement *)
      record s cn (S.elements (S.diff used_c (S.union live_out branches)))
    | TWhile (_, body) | TDo_while (body, _) -> walk body
    | TReturn _ -> ()
    | TDecl _ | TAssign _ | TOp_assign _ | TExpr _ | TPrint _ ->
      let n = Cfg.Stmt_tbl.find cfg.Cfg.astmt_node s in
      let live_out = res.Live.before n in
      let used, defined = uses_defs s in
      record s n (S.elements (S.diff (S.union used defined) live_out))
  in
  List.iter walk m.tm_body;
  t
