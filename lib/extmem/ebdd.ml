(* Levelized external-memory BDDs, after Sølvsten & van de Pol's Adiar
   (arXiv:2104.12101): a BDD is a file of nodes grouped by level, sorted
   canonically within each level, and operations are streaming sweeps
   instead of recursions over a shared node table.

   A binary operation runs in two phases:

   - a {e top-down} time-forward-processing sweep: requests [(uf, ug)]
     travel through a priority queue ordered by (level, uf, ug), so all
     requests for the same pair meet at its level and are resolved once.
     Each resolved request becomes one unreduced output node; arcs to
     terminal children go straight into the reduction queue, arcs to
     node children are recorded grouped by the child's level;
   - a {e bottom-up} reduce sweep: per level, child uids arrive through
     the reduction queue, the ROBDD suppress/merge rules are applied,
     survivors are sorted by [(lo, hi)] (which makes the representation
     canonical: structural equality is semantic equality), and the
     reduced uids are forwarded to the parents recorded in phase one.

   Memory is bounded by the priority-queue byte budget (queues spill
   sorted runs through {!Pq}) plus the width of the widest level: one
   level of each operand is held in memory at a time, a documented
   simplification over Adiar's fully-streamed level files.  Node files
   and arc files larger than the store's node threshold live on disk
   under the store's temp directory.

   Uids pack (level, local index) into one int, so a node file needs no
   global renumbering and uid order is exactly (level, local) order.
   Terminals are the negative uids [t_false] and [t_true]. *)

let shift = 40
let mask = (1 lsl shift) - 1
let t_false = -2
let t_true = -1
let pack l i = (l lsl shift) lor i
let lev u = if u < 0 then max_int else u lsr shift
let loc u = u land mask
let is_term u = u < 0

type seg =
  | SMem of int array * int array  (* lo, hi *)
  | SDisk of int * int  (* byte offset in [path], node count *)

type nodefile = {
  path : string option;
  blocks : (int * seg) array;  (* ascending level *)
  root : int;
  ncount : int;
  dig : string;  (* chained digest of all levels; O(1) equality *)
}

type t = Term of bool | N of nodefile

let tfalse = Term false
let ttrue = Term true
let root_uid = function Term b -> (if b then t_true else t_false) | N nf -> nf.root
let nodecount = function Term _ -> 0 | N nf -> nf.ncount

let seg_count = function SMem (lo, _) -> Array.length lo | SDisk (_, n) -> n

let support_levels = function
  | Term _ -> []
  | N nf -> Array.to_list (Array.map fst nf.blocks)

let max_level = function
  | Term _ -> -1
  | N nf -> fst nf.blocks.(Array.length nf.blocks - 1)

let level_digest l lo hi =
  Digest.bytes (Marshal.to_bytes (l, lo, hi) [ Marshal.No_sharing ])

let chain_digest levds root total =
  let levds = List.sort (fun (a, _) (b, _) -> compare a b) levds in
  Digest.string
    (String.concat "" (List.map snd levds)
    ^ Printf.sprintf ":%d:%d" root total)

(* -- reading node files ------------------------------------------------- *)

let seg_arrays st nf ic seg =
  match seg with
  | SMem (lo, hi) -> (lo, hi)
  | SDisk (off, _) ->
    let c =
      match !ic with
      | Some c -> c
      | None ->
        let c = open_in_bin (Option.get nf.path) in
        ic := Some c;
        c
    in
    Store.timed st (fun () ->
        seek_in c off;
        (Marshal.from_channel c : int array * int array))

let iter_blocks st nf f =
  let ic = ref None in
  Array.iter
    (fun (l, seg) ->
      let lo, hi = seg_arrays st nf ic seg in
      f l lo hi)
    nf.blocks;
  match !ic with Some c -> close_in c | None -> ()

(* Forward-only per-level access for the sweeps: operand levels are
   visited in ascending order, and one level's arrays are held in
   memory at a time. *)
type cursor = {
  cnf : nodefile;
  cic : in_channel option ref;
  mutable cbi : int;
  mutable cl : int;
  mutable clo : int array;
  mutable chi : int array;
}

let cursor_make nf =
  { cnf = nf; cic = ref None; cbi = -1; cl = min_int; clo = [||]; chi = [||] }

let cursor_children st cur u =
  let l = lev u in
  if cur.cl <> l then begin
    let i = ref (cur.cbi + 1) in
    while fst cur.cnf.blocks.(!i) <> l do
      incr i
    done;
    let lo, hi = seg_arrays st cur.cnf cur.cic (snd cur.cnf.blocks.(!i)) in
    cur.clo <- lo;
    cur.chi <- hi;
    cur.cbi <- !i;
    cur.cl <- l
  end;
  (cur.clo.(loc u), cur.chi.(loc u))

let cursor_close cur =
  match !(cur.cic) with
  | Some c ->
    close_in c;
    cur.cic := None
  | None -> ()

(* -- growable int buffer ------------------------------------------------ *)

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 256 0; len = 0 }

  let push3 b x y z =
    if b.len + 3 > Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.a.(b.len + 1) <- y;
    b.a.(b.len + 2) <- z;
    b.len <- b.len + 3

  let clear b = b.len <- 0
end

(* -- arcs grouped by child level ---------------------------------------- *)

(* Internal arcs (child_local, parent_uid, bit) are appended while the
   top-down sweep processes the child's level — levels complete in
   ascending order, and the reduce sweep consumes them descending, so
   the whole structure is a stack of per-level segments backed by one
   sequential file once it outgrows its in-memory budget. *)
type arcseg = AMem of int array | ADisk of int * int  (* offset, int len *)

type arcs = {
  ast : Store.t;
  mutable asegs : (int * arcseg) list;  (* head = highest completed level *)
  mutable acur_level : int;
  acur : Ibuf.t;
  mutable afile : (string * out_channel) option;
  mutable aic : in_channel option;
  mutable amem : int;  (* ints held across AMem segments *)
  abudget : int;
}

let arcs_create st =
  {
    ast = st;
    asegs = [];
    acur_level = -1;
    acur = Ibuf.create ();
    afile = None;
    aic = None;
    amem = 0;
    abudget = 3 * Store.mem_node_threshold st;
  }

let arcs_finish_level a =
  if a.acur.Ibuf.len > 0 then begin
    let arr = Array.sub a.acur.Ibuf.a 0 a.acur.Ibuf.len in
    let seg =
      if a.amem + Array.length arr <= a.abudget then begin
        a.amem <- a.amem + Array.length arr;
        AMem arr
      end
      else begin
        let _, oc =
          match a.afile with
          | Some f -> f
          | None ->
            let p = Store.fresh_path a.ast "arcs" in
            let oc = open_out_bin p in
            a.afile <- Some (p, oc);
            (p, oc)
        in
        let off = pos_out oc in
        Store.timed a.ast (fun () ->
            Marshal.to_channel oc arr [ Marshal.No_sharing ]);
        Store.note_spill a.ast ~bytes:(pos_out oc - off);
        ADisk (off, Array.length arr)
      end
    in
    a.asegs <- (a.acur_level, seg) :: a.asegs;
    Ibuf.clear a.acur
  end

let arcs_append a level child_local parent bit =
  if level <> a.acur_level then begin
    arcs_finish_level a;
    a.acur_level <- level
  end;
  Ibuf.push3 a.acur child_local parent bit

let arcs_finalize a =
  arcs_finish_level a;
  match a.afile with
  | Some (p, oc) ->
    close_out oc;
    a.aic <- Some (open_in_bin p)
  | None -> ()

let arcs_iter_level a l f =
  match a.asegs with
  | (l', seg) :: rest when l' = l ->
    a.asegs <- rest;
    let arr =
      match seg with
      | AMem arr -> arr
      | ADisk (off, _) ->
        let ic = Option.get a.aic in
        Store.timed a.ast (fun () ->
            seek_in ic off;
            (Marshal.from_channel ic : int array))
    in
    let n = Array.length arr / 3 in
    for i = 0 to n - 1 do
      f arr.(3 * i) arr.((3 * i) + 1) arr.((3 * i) + 2)
    done
  | _ -> ()

let arcs_destroy a =
  (match a.aic with Some ic -> (try close_in ic with _ -> ()) | None -> ());
  (match a.afile with
  | Some (p, oc) ->
    (try close_out oc with _ -> ());
    (try Sys.remove p with Sys_error _ -> ())
  | None -> ());
  a.asegs <- []

(* -- building node files ------------------------------------------------ *)

type builder = {
  bst : Store.t;
  mutable bsegs : (int * seg) list;
  mutable bdigs : (int * string) list;
  mutable bfile : (string * out_channel) option;
  mutable bmem : int;  (* nodes held in SMem segments *)
  mutable btotal : int;
}

let builder_create st =
  { bst = st; bsegs = []; bdigs = []; bfile = None; bmem = 0; btotal = 0 }

let builder_add b l lo hi =
  let n = Array.length lo in
  b.btotal <- b.btotal + n;
  b.bdigs <- (l, level_digest l lo hi) :: b.bdigs;
  let seg =
    if b.bfile = None && b.bmem + n <= Store.mem_node_threshold b.bst then begin
      b.bmem <- b.bmem + n;
      SMem (lo, hi)
    end
    else begin
      let _, oc =
        match b.bfile with
        | Some f -> f
        | None ->
          let p = Store.fresh_path b.bst "bdd" in
          let oc = open_out_bin p in
          b.bfile <- Some (p, oc);
          (p, oc)
      in
      let off = pos_out oc in
      Store.timed b.bst (fun () ->
          Marshal.to_channel oc (lo, hi) [ Marshal.No_sharing ]);
      Store.note_spill b.bst ~bytes:(pos_out oc - off);
      SDisk (off, n)
    end
  in
  b.bsegs <- (l, seg) :: b.bsegs

let builder_finish b root =
  (match b.bfile with Some (_, oc) -> close_out oc | None -> ());
  let blocks =
    Array.of_list
      (List.sort (fun (a, _) (c, _) -> compare a c) b.bsegs)
  in
  let nf =
    {
      path = Option.map fst b.bfile;
      blocks;
      root;
      ncount = b.btotal;
      dig = chain_digest b.bdigs root b.btotal;
    }
  in
  (match nf.path with
  | Some p ->
    Gc.finalise (fun _ -> try Sys.remove p with Sys_error _ -> ()) nf
  | None -> ());
  nf

(* Hand-built in-memory node files (single-node-per-level chains and the
   two-level bi-implication) share the same digest scheme so they
   compare equal to sweep-built results. *)
let make_mem_nodefile blocks root =
  let blocks = List.sort (fun (a, _, _) (b, _, _) -> compare a b) blocks in
  let total = List.fold_left (fun n (_, lo, _) -> n + Array.length lo) 0 blocks in
  let digs = List.map (fun (l, lo, hi) -> (l, level_digest l lo hi)) blocks in
  N
    {
      path = None;
      blocks =
        Array.of_list (List.map (fun (l, lo, hi) -> (l, SMem (lo, hi))) blocks);
      root;
      ncount = total;
      dig = chain_digest digs root total;
    }

(* Serialization hooks: a node file in and out of plain (level, lo, hi)
   blocks, the portable levelized-dump shape shared with the in-core
   backend.  Terminal BDDs have no blocks, only a terminal root uid. *)
let export_blocks st = function
  | Term b -> ([], if b then t_true else t_false)
  | N nf ->
    let acc = ref [] in
    iter_blocks st nf (fun l lo hi -> acc := (l, Array.copy lo, Array.copy hi) :: !acc);
    (List.rev !acc, nf.root)

let import_blocks blocks root =
  match blocks with
  | [] -> Term (root = t_true)
  | _ -> make_mem_nodefile blocks root

(* -- the shared bottom-up reduce ---------------------------------------- *)

(* [rpq] records are [| -parent_level; parent_local; bit; child_uid |]:
   keyed so that a min-pop order visits parents from the deepest level
   up, exactly the order the reduce sweep wants.  Terminal children were
   pushed during the top-down sweep; node children are forwarded here as
   each level finishes reducing. *)
let reduce st ~counts ~arcs ~rpq ~root =
  let result =
    if is_term root then Term (root = t_true)
    else begin
      arcs_finalize arcs;
      let b = builder_create st in
      let final = ref t_false in
      let rc = Array.make 4 0 in
      for l = Array.length counts - 1 downto 0 do
        let n = counts.(l) in
        if n > 0 then begin
          let lo = Array.make n min_int and hi = Array.make n min_int in
          let continue = ref true in
          while !continue && Pq.peek rpq rc do
            if rc.(0) = -l then begin
              ignore (Pq.pop rpq rc);
              if rc.(2) = 0 then lo.(rc.(1)) <- rc.(3)
              else hi.(rc.(1)) <- rc.(3)
            end
            else continue := false
          done;
          let red = Array.make n 0 in
          let sv = Array.make n 0 and ns = ref 0 in
          for i = 0 to n - 1 do
            assert (lo.(i) <> min_int && hi.(i) <> min_int);
            if lo.(i) = hi.(i) then red.(i) <- lo.(i)  (* suppressed *)
            else begin
              sv.(!ns) <- i;
              incr ns
            end
          done;
          let sv = Array.sub sv 0 !ns in
          Array.sort
            (fun i j ->
              let c = compare lo.(i) lo.(j) in
              if c <> 0 then c else compare hi.(i) hi.(j))
            sv;
          let olo = Array.make !ns 0 and ohi = Array.make !ns 0 in
          let m = ref 0 in
          Array.iter
            (fun i ->
              if !m > 0 && lo.(i) = olo.(!m - 1) && hi.(i) = ohi.(!m - 1) then
                red.(i) <- pack l (!m - 1)  (* merged duplicate *)
              else begin
                olo.(!m) <- lo.(i);
                ohi.(!m) <- hi.(i);
                red.(i) <- pack l !m;
                incr m
              end)
            sv;
          if !m > 0 then
            builder_add b l (Array.sub olo 0 !m) (Array.sub ohi 0 !m);
          arcs_iter_level arcs l (fun child_local parent bit ->
              rc.(0) <- -(parent lsr shift);
              rc.(1) <- parent land mask;
              rc.(2) <- bit;
              rc.(3) <- red.(child_local);
              Pq.push rpq rc);
          if l = lev root then final := red.(loc root)
        end
      done;
      if is_term !final then Term (!final = t_true)
      else N (builder_finish b !final)
    end
  in
  arcs_destroy arcs;
  Pq.destroy rpq;
  result

(* -- apply -------------------------------------------------------------- *)

type op = And | Or | Diff | Xor | Biimp

let op_eval op a b =
  match op with
  | And -> a && b
  | Or -> a || b
  | Diff -> a && not b
  | Xor -> a <> b
  | Biimp -> a = b

(* Terminal resolution for a child pair: [Some t] when the result is a
   terminal no matter what lies below, [None] when the sweep must
   continue.  A pair with one terminal side continues as a copy (or
   complement, for Diff/Xor/Biimp) of the other side. *)
let op_resolve op a b =
  if is_term a && is_term b then
    Some (if op_eval op (a = t_true) (b = t_true) then t_true else t_false)
  else
    match op with
    | And -> if a = t_false || b = t_false then Some t_false else None
    | Or -> if a = t_true || b = t_true then Some t_true else None
    | Diff ->
      if a = t_false || b = t_true then Some t_false else None
    | Xor | Biimp -> None

let apply st op f g =
  let sweep () =
    let uf = root_uid f and ug = root_uid g in
    match op_resolve op uf ug with
    | Some t -> Term (t = t_true)
    | None ->
      let nlev = 1 + max (max_level f) (max_level g) in
      let counts = Array.make nlev 0 in
      let pq = Pq.create st ~arity:5 and rpq = Pq.create st ~arity:4 in
      let arcs = arcs_create st in
      let cf = match f with N nf -> Some (cursor_make nf) | Term _ -> None
      and cg = match g with N nf -> Some (cursor_make nf) | Term _ -> None in
      let children side u =
        match side with
        | Some c -> cursor_children st c u
        | None -> assert false  (* terminal operands are never descended *)
      in
      let rc5 = Array.make 5 0 and rc4 = Array.make 4 0 in
      let root_id = ref t_false in
      rc5.(0) <- min (lev uf) (lev ug);
      rc5.(1) <- uf;
      rc5.(2) <- ug;
      rc5.(3) <- -1;
      rc5.(4) <- 0;
      Pq.push pq rc5;
      while Pq.pop pq rc5 do
        let l = rc5.(0) and a = rc5.(1) and b = rc5.(2) in
        let id = pack l counts.(l) in
        counts.(l) <- counts.(l) + 1;
        let emit_parent parent bit =
          if parent = -1 then root_id := id
          else arcs_append arcs l (loc id) parent bit
        in
        emit_parent rc5.(3) rc5.(4);
        let dup = ref true in
        while !dup && Pq.peek pq rc5 do
          if rc5.(0) = l && rc5.(1) = a && rc5.(2) = b then begin
            ignore (Pq.pop pq rc5);
            emit_parent rc5.(3) rc5.(4)
          end
          else dup := false
        done;
        let a0, a1 = if lev a = l then children cf a else (a, a) in
        let b0, b1 = if lev b = l then children cg b else (b, b) in
        let child bit x y =
          match op_resolve op x y with
          | Some t ->
            rc4.(0) <- -l;
            rc4.(1) <- loc id;
            rc4.(2) <- bit;
            rc4.(3) <- t;
            Pq.push rpq rc4
          | None ->
            rc5.(0) <- min (lev x) (lev y);
            rc5.(1) <- x;
            rc5.(2) <- y;
            rc5.(3) <- id;
            rc5.(4) <- bit;
            Pq.push pq rc5
        in
        child 0 a0 b0;
        child 1 a1 b1
      done;
      (match cf with Some c -> cursor_close c | None -> ());
      (match cg with Some c -> cursor_close c | None -> ());
      Pq.destroy pq;
      reduce st ~counts ~arcs ~rpq ~root:!root_id
  in
  match (f, g) with
  | Term a, Term b -> Term (op_eval op a b)
  | Term a, _ -> (
    match (op, a) with
    | And, false -> tfalse
    | And, true -> g
    | Or, true -> ttrue
    | Or, false -> g
    | Diff, false -> tfalse
    | (Diff | Xor | Biimp), _ -> sweep ())
  | _, Term b -> (
    match (op, b) with
    | And, false -> tfalse
    | And, true -> f
    | Or, true -> ttrue
    | Or, false -> f
    | Diff, true -> tfalse
    | Diff, false -> f
    | Xor, false -> f
    | (Xor | Biimp), _ -> sweep ())
  | N _, N _ -> sweep ()

let band st f g = apply st And f g
let bor st f g = apply st Or f g
let bdiff st f g = apply st Diff f g
let bxor st f g = apply st Xor f g
let bbiimp st f g = apply st Biimp f g
let bnot st f = apply st Diff ttrue f
let ite st c t e = bor st (band st c t) (band st (bnot st c) e)

(* -- existential quantification of one level ---------------------------- *)

(* A request is an OR-set of one or two uids, encoded as an ordered pair
   (a <= b; a singleton is (u, u)).  Pairs only ever form at the
   quantified level's children, so below [q] request sets stay at size
   two and above [q] they are singletons — the invariant that keeps the
   sweep linear (arXiv:2104.12101 §4.3). *)
let exist_level st q f =
  match f with
  | Term _ -> f
  | N nf when not (Array.exists (fun (l, _) -> l = q) nf.blocks) -> f
  | N nf ->
    let nlev = 1 + fst nf.blocks.(Array.length nf.blocks - 1) in
    let counts = Array.make nlev 0 in
    let pq = Pq.create st ~arity:5 and rpq = Pq.create st ~arity:4 in
    let arcs = arcs_create st in
    let cur = cursor_make nf in
    let rc5 = Array.make 5 0 and rc4 = Array.make 4 0 in
    let root_ref = ref t_false in
    (* route a normalized OR-set to a parent slot *)
    let route a b parent bit =
      if a = t_true || b = t_true then
        if parent = -1 then root_ref := t_true
        else begin
          rc4.(0) <- -(parent lsr shift);
          rc4.(1) <- parent land mask;
          rc4.(2) <- bit;
          rc4.(3) <- t_true;
          Pq.push rpq rc4
        end
      else
        let a, b =
          if a = t_false then (b, b)
          else if b = t_false then (a, a)
          else if a <= b then (a, b)
          else (b, a)
        in
        if a = t_false then
          if parent = -1 then root_ref := t_false
          else begin
            rc4.(0) <- -(parent lsr shift);
            rc4.(1) <- parent land mask;
            rc4.(2) <- bit;
            rc4.(3) <- t_false;
            Pq.push rpq rc4
          end
        else begin
          rc5.(0) <- min (lev a) (lev b);
          rc5.(1) <- a;
          rc5.(2) <- b;
          rc5.(3) <- parent;
          rc5.(4) <- bit;
          Pq.push pq rc5
        end
    in
    route nf.root nf.root (-1) 0;
    while Pq.pop pq rc5 do
      let l = rc5.(0) and a = rc5.(1) and b = rc5.(2) in
      if l = q then begin
        (* quantified level: no node; forward OR of the children to
           every waiting parent slot individually.  Requests here are
           always singletons: pairs only form strictly below [q]. *)
        assert (b = a);
        let a0, a1 = cursor_children st cur a in
        route a0 a1 rc5.(3) rc5.(4);
        let dup = ref true in
        while !dup && Pq.peek pq rc5 do
          if rc5.(0) = l && rc5.(1) = a && rc5.(2) = b then begin
            ignore (Pq.pop pq rc5);
            route a0 a1 rc5.(3) rc5.(4)
          end
          else dup := false
        done
      end
      else begin
        let id = pack l counts.(l) in
        counts.(l) <- counts.(l) + 1;
        let emit_parent parent bit =
          if parent = -1 then root_ref := id
          else arcs_append arcs l (loc id) parent bit
        in
        emit_parent rc5.(3) rc5.(4);
        let dup = ref true in
        while !dup && Pq.peek pq rc5 do
          if rc5.(0) = l && rc5.(1) = a && rc5.(2) = b then begin
            ignore (Pq.pop pq rc5);
            emit_parent rc5.(3) rc5.(4)
          end
          else dup := false
        done;
        let a0, a1 = if lev a = l then cursor_children st cur a else (a, a) in
        let b0, b1 = if lev b = l then cursor_children st cur b else (b, b) in
        route a0 b0 id 0;
        route a1 b1 id 1
      end
    done;
    cursor_close cur;
    Pq.destroy pq;
    reduce st ~counts ~arcs ~rpq ~root:!root_ref

let exist st levels f =
  List.fold_left
    (fun f q -> exist_level st q f)
    f
    (List.sort (fun a b -> compare b a) levels)

(* -- restrict (cofactor by a partial assignment) ------------------------ *)

let restrict st assignment f =
  match f with
  | Term _ -> f
  | N _ when assignment = [] -> f
  | N nf ->
    let nlev = 1 + fst nf.blocks.(Array.length nf.blocks - 1) in
    let fixed = Array.make nlev (-1) in
    List.iter
      (fun (l, b) -> if l < nlev then fixed.(l) <- (if b then 1 else 0))
      assignment;
    if
      not
        (Array.exists (fun (l, _) -> fixed.(l) >= 0) nf.blocks)
    then f
    else begin
      let counts = Array.make nlev 0 in
      let pq = Pq.create st ~arity:3 and rpq = Pq.create st ~arity:4 in
      let arcs = arcs_create st in
      let cur = cursor_make nf in
      let rc3 = Array.make 3 0 and rc4 = Array.make 4 0 in
      let root_ref = ref t_false in
      let route u parent bit =
        if is_term u then
          if parent = -1 then root_ref := u
          else begin
            rc4.(0) <- -(parent lsr shift);
            rc4.(1) <- parent land mask;
            rc4.(2) <- bit;
            rc4.(3) <- u;
            Pq.push rpq rc4
          end
        else begin
          rc3.(0) <- u;
          rc3.(1) <- parent;
          rc3.(2) <- bit;
          Pq.push pq rc3
        end
      in
      route nf.root (-1) 0;
      while Pq.pop pq rc3 do
        let u = rc3.(0) in
        let l = lev u in
        let u0, u1 = cursor_children st cur u in
        if fixed.(l) >= 0 then begin
          let chosen = if fixed.(l) = 1 then u1 else u0 in
          route chosen rc3.(1) rc3.(2);
          let dup = ref true in
          while !dup && Pq.peek pq rc3 do
            if rc3.(0) = u then begin
              ignore (Pq.pop pq rc3);
              route chosen rc3.(1) rc3.(2)
            end
            else dup := false
          done
        end
        else begin
          let id = pack l counts.(l) in
          counts.(l) <- counts.(l) + 1;
          let emit_parent parent bit =
            if parent = -1 then root_ref := id
            else arcs_append arcs l (loc id) parent bit
          in
          emit_parent rc3.(1) rc3.(2);
          let dup = ref true in
          while !dup && Pq.peek pq rc3 do
            if rc3.(0) = u then begin
              ignore (Pq.pop pq rc3);
              emit_parent rc3.(1) rc3.(2)
            end
            else dup := false
          done;
          route u0 id 0;
          route u1 id 1
        end
      done;
      cursor_close cur;
      Pq.destroy pq;
      reduce st ~counts ~arcs ~rpq ~root:!root_ref
    end

(* -- small canonical builders ------------------------------------------- *)

(* single-node-per-level chain, built bottom-up from (level, pick lo/hi
   as a function of the child) specs; used by cubes and comparators *)
let ithvar l =
  make_mem_nodefile [ (l, [| t_false |], [| t_true |]) ] (pack l 0)

let nithvar l =
  make_mem_nodefile [ (l, [| t_true |], [| t_false |]) ] (pack l 0)

let cube assignment =
  (* conjunction of literals; levels in any order *)
  match assignment with
  | [] -> ttrue
  | _ ->
    let assignment =
      List.sort (fun (a, _) (b, _) -> compare b a) assignment
    in
    let cur, blocks =
      List.fold_left
        (fun (cur, blocks) (l, b) ->
          let lo, hi = if b then (t_false, cur) else (cur, t_false) in
          (pack l 0, (l, [| lo |], [| hi |]) :: blocks))
        (t_true, []) assignment
    in
    make_mem_nodefile blocks cur

(* [levels] most significant bit first and ascending (the layout the
   interleaved-domain allocator produces); asserts the value is
   strictly below [k] *)
let less_than_const levels k =
  let w = List.length levels in
  if k <= 0 then tfalse
  else if k >= 1 lsl w then ttrue
  else begin
    let levels = Array.of_list levels in
    for i = 1 to w - 1 do
      if levels.(i) <= levels.(i - 1) then
        invalid_arg "Ebdd.less_than_const: levels must ascend msb-first"
    done;
    let cur = ref t_false and blocks = ref [] in
    for i = w - 1 downto 0 do
      let ki = (k lsr (w - 1 - i)) land 1 in
      let lo, hi = if ki = 1 then (t_true, !cur) else (!cur, t_false) in
      if lo = hi then ()  (* redundant test, skip the level *)
      else begin
        blocks := (levels.(i), [| lo |], [| hi |]) :: !blocks;
        cur := pack levels.(i) 0
      end
    done;
    if is_term !cur then Term (!cur = t_true)
    else make_mem_nodefile !blocks !cur
  end

(* the three-node bi-implication l1 <-> l2 (l1 < l2) *)
let biimp_levels l1 l2 =
  if l1 = l2 then ttrue
  else begin
    let l1, l2 = if l1 < l2 then (l1, l2) else (l2, l1) in
    (* level l2, sorted by (lo, hi): local 0 = (F,T) "is 1",
       local 1 = (T,F) "is 0" *)
    make_mem_nodefile
      [
        (l2, [| t_false; t_true |], [| t_true; t_false |]);
        (l1, [| pack l2 1 |], [| pack l2 0 |]);
      ]
      (pack l1 0)
  end

(* -- replace ------------------------------------------------------------ *)

let replace st pairs f =
  match f with
  | Term _ -> f
  | N nf ->
    let map l = match List.assoc_opt l pairs with Some d -> d | None -> l in
    let monotone =
      let prev = ref min_int and ok = ref true in
      Array.iter
        (fun (l, _) ->
          let m = map l in
          if m <= !prev then ok := false;
          prev := m)
        nf.blocks;
      !ok
    in
    if Array.for_all (fun (l, _) -> map l = l) nf.blocks then f
    else if monotone then begin
      (* order-preserving: stream the blocks through a relabel *)
      let b = builder_create st in
      let remap u = if is_term u then u else pack (map (lev u)) (loc u) in
      iter_blocks st nf (fun l lo hi ->
          builder_add b (map l) (Array.map remap lo) (Array.map remap hi));
      N (builder_finish b (remap nf.root))
    end
    else begin
      (* Non-order-preserving permutation (e.g. a scratch-domain swap):
         route every moved level through a fresh temporary level above
         everything else, one (and f biimp; exists) step per pair, then
         pull each temporary down to its destination the same way.
         Slow but total; the monotone fast path covers the runtime's
         interleaved-domain moves. *)
      let base =
        1
        + List.fold_left
            (fun m (s, d) -> max m (max s d))
            (max_level f) pairs
      in
      let r = ref f in
      List.iteri
        (fun i (s, _) ->
          let tmp = base + i in
          r := exist_level st s (band st !r (biimp_levels s tmp)))
        pairs;
      List.iteri
        (fun i (_, d) ->
          let tmp = base + i in
          r := exist_level st tmp (band st !r (biimp_levels d tmp)))
        pairs;
      !r
    end

(* -- fused-shape conveniences (compositional out-of-core versions) ------ *)

let relprod st f g qlevels = exist st qlevels (band st f g)

let relprod_replace st f g pairs qlevels =
  exist st qlevels (band st f (replace st pairs g))

let replace_exist st f pairs qlevels = replace st pairs (exist st qlevels f)

(* -- counting ----------------------------------------------------------- *)

(* Streaming path-count: counts flow top-down through a frontier table
   keyed by uid; memory is one entry per node on the current level cut,
   freed as each level streams past. *)
let satcount st ~over f =
  let over_a = Array.of_list (List.sort_uniq compare over) in
  let k = Array.length over_a in
  (* number of [over] levels strictly below [l] *)
  let idx l =
    let lo = ref 0 and hi = ref k in
    while !lo < !hi do
      let m = (!lo + !hi) / 2 in
      if over_a.(m) < l then lo := m + 1 else hi := m
    done;
    !lo
  in
  let mem l =
    let i = idx l in
    i < k && over_a.(i) = l
  in
  match f with
  | Term false -> 0
  | Term true -> 1 lsl k
  | N nf ->
    Array.iter
      (fun (l, _) ->
        if not (mem l) then
          invalid_arg "Ebdd.satcount: node depends on a level outside ~over")
      nf.blocks;
    let tbl = Hashtbl.create 1024 in
    let add u c =
      match Hashtbl.find_opt tbl u with
      | Some c' -> Hashtbl.replace tbl u (c' + c)
      | None -> Hashtbl.add tbl u c
    in
    add nf.root (1 lsl idx (lev nf.root));
    let acc = ref 0 in
    iter_blocks st nf (fun l lo hi ->
        let il = idx l in
        for i = 0 to Array.length lo - 1 do
          let u = pack l i in
          let c = match Hashtbl.find_opt tbl u with Some c -> c | None -> 0 in
          Hashtbl.remove tbl u;
          let follow child =
            if child = t_true then
              acc := !acc + (c lsl (k - il - 1))
            else if child <> t_false then
              add child (c lsl (idx (lev child) - il - 1))
          in
          follow lo.(i);
          follow hi.(i)
        done);
    !acc

let shape ~num_vars f =
  let a = Array.make num_vars 0 in
  (match f with
  | Term _ -> ()
  | N nf ->
    Array.iter
      (fun (l, seg) -> if l < num_vars then a.(l) <- seg_count seg)
      nf.blocks);
  a

(* -- enumeration -------------------------------------------------------- *)

(* Depth-first expansion over an explicit level list, mirroring the
   in-core [Enum.iter_assignments] contract.  Enumeration materialises
   each visited level's arrays once (results are read out at the end of
   an analysis, when relations are small). *)
let iter_assignments st ~levels f k =
  let nlevels = Array.length levels in
  match f with
  | Term false -> ()
  | Term true ->
    let vals = Array.make nlevels false in
    let rec expand i =
      if i = nlevels then k vals
      else begin
        vals.(i) <- false;
        expand (i + 1);
        vals.(i) <- true;
        expand (i + 1)
      end
    in
    expand 0
  | N nf ->
    let in_levels l = Array.exists (fun l' -> l' = l) levels in
    Array.iter
      (fun (l, _) ->
        if not (in_levels l) then
          invalid_arg
            "Ebdd.iter_assignments: node depends on a level outside ~levels")
      nf.blocks;
    let cache = Hashtbl.create 64 in
    iter_blocks st nf (fun l lo hi -> Hashtbl.add cache l (lo, hi));
    let vals = Array.make nlevels false in
    let rec go i u =
      if u = t_false then ()
      else if i = nlevels then k vals
      else begin
        let l = levels.(i) in
        if (not (is_term u)) && lev u = l then begin
          let lo, hi = Hashtbl.find cache l in
          let j = loc u in
          vals.(i) <- false;
          go (i + 1) lo.(j);
          vals.(i) <- true;
          go (i + 1) hi.(j)
        end
        else begin
          (* don't-care level: expand both values *)
          vals.(i) <- false;
          go (i + 1) u;
          vals.(i) <- true;
          go (i + 1) u
        end
      end
    in
    go 0 nf.root

exception Found

let first_assignment st ~levels f =
  let out = ref None in
  (try
     iter_assignments st ~levels f (fun vals ->
         out := Some (Array.copy vals);
         raise Found)
   with Found -> ());
  !out

(* -- equality ----------------------------------------------------------- *)

(* Canonical form makes this O(1): two reduced level files denote the
   same function iff they are bit-identical, which the chained level
   digest certifies. *)
let equal a b =
  match (a, b) with
  | Term x, Term y -> x = y
  | N x, N y -> x.root = y.root && x.ncount = y.ncount && x.dig = y.dig
  | _ -> false
