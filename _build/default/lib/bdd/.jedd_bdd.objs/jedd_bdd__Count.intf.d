lib/bdd/count.mli: Manager
