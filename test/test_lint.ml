(* jeddlint: golden-file diagnostic tests over seeded-defect programs,
   clean-run assertions over known-good sources, and both halves of the
   refcount-discipline checker (the static verifier and the
   JEDD_CHECK_IR runtime shadow) on a deliberately corrupted IR
   fixture. *)

module Driver = Jedd_lang.Driver
module Ir = Jedd_lang.Ir
module Ir_interp = Jedd_lang.Ir_interp
module Lint = Jedd_lint.Driver
module Diag = Jedd_lint.Diag
module Refcount = Jedd_lint.Refcount
module Suite = Jedd_analyses.Suite
module Workload = Jedd_minijava.Workload

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile ~name src =
  match Driver.compile [ (name, src) ] with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile: %s" (Driver.error_to_string e)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ---------------- golden snapshot over the seeded defects ---------------- *)

let defects () =
  compile ~name:"examples/lint_defects.jedd"
    (read_file "../examples/lint_defects.jedd")

let test_defects_golden_json () =
  let r = Lint.lint (defects ()) in
  let expected = String.trim (read_file "lint_defects.golden.json") in
  Alcotest.(check string) "--lint=json snapshot" expected (Lint.to_json r)

let test_defects_categories () =
  let r = Lint.lint (defects ()) in
  let codes = List.map (fun (d : Diag.t) -> d.Diag.code) r.Lint.diagnostics in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " reported") true (List.mem c codes))
    [ "JL001"; "JL002"; "JL003"; "JL004"; "JL005"; "JL006"; "JL007"; "JL009" ];
  (* warnings but no errors: CI exit code 1 *)
  Alcotest.(check int) "exit code" 1 (Lint.exit_code r);
  (* the forced replace carries a non-empty SAT core *)
  let forced =
    List.filter
      (fun (e : Jedd_lint.Check_replace.audit_entry) ->
        match e.Jedd_lint.Check_replace.verdict with
        | Jedd_lint.Check_replace.V_forced core -> core <> []
        | Jedd_lint.Check_replace.V_chosen -> false)
      r.Lint.replace_audit
  in
  Alcotest.(check int) "one forced replace with a core" 1 (List.length forced)

(* ---------------- clean runs ---------------- *)

let test_clean_figure4 () =
  let r = Lint.lint (compile ~name:"fig4.jedd" Test_ir.figure4) in
  Alcotest.(check int) "exit code 0" 0 (Lint.exit_code r);
  Alcotest.(check int) "no refcount violations" 0 r.Lint.refcount_violations;
  Alcotest.(check bool) "methods verified" true (r.Lint.methods_verified >= 2)

let assert_suite_clean p tag =
  List.iter
    (fun (name, _) ->
      let r = Lint.lint (Suite.compile_one p name) in
      Alcotest.(check int) (tag ^ "/" ^ name ^ " exit code") 0 (Lint.exit_code r);
      Alcotest.(check int)
        (tag ^ "/" ^ name ^ " refcount violations")
        0 r.Lint.refcount_violations)
    Suite.analyses

let test_suite_clean_tiny () =
  assert_suite_clean (Workload.generate Workload.tiny) "tiny"

let test_suite_clean_shapes () =
  assert_suite_clean
    (Jedd_minijava.Frontend.load_file "../examples/shapes.mjava")
    "shapes"

(* ---------------- the corrupted IR fixture ---------------- *)

(* double-free, read of a never-written register, and an owned value
   leaked past method exit — all in four instructions *)
let corrupt_method : Ir.cmethod =
  {
    Ir.c_qualified = "Bad.m";
    c_params = [];
    c_nregs = 3;
    c_body =
      [
        Ir.CExec
          [
            Ir.IConst (0, false, [ ("a", "P1") ]);
            Ir.IFree 0;
            Ir.IFree 0;
            Ir.IConst (1, true, [ ("a", "P1") ]);
            Ir.IPrint 2;
          ];
      ];
  }

let test_static_verifier_rejects_corrupt_ir () =
  let errs = Refcount.verify_method corrupt_method in
  let all = String.concat "; " errs in
  Alcotest.(check bool) "violations found" true (errs <> []);
  Alcotest.(check bool) "double free detected" true (contains all "freed twice");
  Alcotest.(check bool)
    "read-before-write detected" true
    (contains all "read before being written");
  Alcotest.(check bool) "leak detected" true (contains all "leak")

let test_dynamic_check_rejects_corrupt_ir () =
  let c = defects () in
  let inst = Driver.instantiate c in
  let ir = Ir_interp.create c inst in
  Ir_interp.set_print_hook ir (fun _ -> ());
  Ir_interp.set_check ir true;
  Hashtbl.replace (Ir_interp.methods ir) "Bad.m" corrupt_method;
  match Ir_interp.call ir "Bad.m" [] with
  | _ -> Alcotest.fail "corrupted method executed without an Ir_error"
  | exception Ir_interp.Ir_error msg ->
    Alcotest.(check bool) "names the violation" true (contains msg "freed twice")

let test_dynamic_check_clean_run () =
  (* JEDD_CHECK_IR=1 shadows every executed instruction; a correct
     lowering must run to completion without tripping it *)
  Unix.putenv "JEDD_CHECK_IR" "1";
  let c = defects () in
  let inst = Driver.instantiate c in
  let ir = Ir_interp.create c inst in
  Unix.putenv "JEDD_CHECK_IR" "0";
  Ir_interp.set_print_hook ir (fun _ -> ());
  (match Ir_interp.call ir "Defects.run" [] with
  | Some _ -> Alcotest.fail "void method returned a value"
  | None -> ());
  Alcotest.(check pass) "checked run completed" () ()

let suite =
  [
    Alcotest.test_case "defects golden json" `Quick test_defects_golden_json;
    Alcotest.test_case "defects categories + core" `Quick
      test_defects_categories;
    Alcotest.test_case "figure4 is lint-clean" `Quick test_clean_figure4;
    Alcotest.test_case "analysis suite is lint-clean (tiny)" `Quick
      test_suite_clean_tiny;
    Alcotest.test_case "analysis suite is lint-clean (shapes.mjava)" `Quick
      test_suite_clean_shapes;
    Alcotest.test_case "static verifier rejects corrupt IR" `Quick
      test_static_verifier_rejects_corrupt_ir;
    Alcotest.test_case "JEDD_CHECK_IR rejects corrupt IR" `Quick
      test_dynamic_check_rejects_corrupt_ir;
    Alcotest.test_case "JEDD_CHECK_IR passes a clean run" `Quick
      test_dynamic_check_clean_run;
  ]
