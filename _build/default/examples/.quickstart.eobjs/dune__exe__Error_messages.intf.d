examples/error_messages.mli:
