(* Typed abstract syntax: the output of the Figure 6 type checker and
   the input of the physical-domain-assignment stage.

   Attributes, domains and physical domains are resolved to interned
   records; every relational expression node carries a unique id so the
   constraint stage (Figure 7) can talk about (expression, attribute)
   pairs, and a [kind] string used verbatim in error messages
   ("Compose_expression", "Join_expression", ... — §3.3.3). *)

type domain_info = { d_name : string; d_size : int }

type attr_info = { a_name : string; a_domain : domain_info }

type phys_info = { p_name : string; p_min_bits : int option }

(* A variable as a constraint-graph node: fields are per class, locals
   and parameters per method. *)
type var_key = string (* "Cls.field" or "Cls.meth.local" *)

type vkind = Vlocal | Vparam | Vfield

type set_op = Ast.set_op
type join_kind = Ast.join_kind

type obj_ref = Tobj_var of string * domain_info | Tobj_int of int

type texpr = {
  eid : int;
  ekind : string;
  epos : Ast.pos;
  eschema : attr_info list;  (** empty for the polymorphic 0B/1B *)
  is_poly : bool;
  espec : (string * phys_info) list;  (** attr name -> specified physdom *)
  edesc : tdesc;
}

and tdesc =
  | TVar of vkind * var_key
  | TEmpty
  | TFull
  | TLiteral of (obj_ref * attr_info) list
  | TBinop of set_op * texpr * texpr
  | TReplace of treplacement list * texpr
  | TJoin of join_kind * texpr * attr_info list * texpr * attr_info list
  | TCall of string * targ list  (** fully qualified "Cls.meth" *)

and treplacement =
  | TProj of attr_info
  | TRen of attr_info * attr_info
  | TCopy of attr_info * attr_info * attr_info  (** a => b c *)

and targ = Targ_rel of texpr | Targ_obj of obj_ref

type tcond =
  | TCmp_eq of texpr * texpr
  | TCmp_ne of texpr * texpr
  | TNot of tcond
  | TAnd of tcond * tcond
  | TOr of tcond * tcond
  | TBool of bool

type tstmt =
  | TDecl of var_key * texpr option * Ast.pos
  | TAssign of var_key * vkind * texpr * Ast.pos
  | TOp_assign of set_op * var_key * vkind * texpr * Ast.pos
  | TIf of tcond * tstmt * tstmt option
  | TWhile of tcond * tstmt
  | TDo_while of tstmt * tcond
  | TBlock of tstmt list
  | TReturn of texpr option * Ast.pos
  | TExpr of texpr
  | TPrint of texpr

type var_info = {
  v_key : var_key;
  v_kind : vkind;
  v_schema : attr_info list;
  v_spec : (string * phys_info) list;
  v_pos : Ast.pos;
}

type tparam = Tparam_rel of var_key | Tparam_obj of string * domain_info

type tmeth = {
  tm_qualified : string;  (** "Cls.meth" *)
  tm_params : tparam list;
  tm_return : attr_info list option;
  tm_return_spec : (string * phys_info) list;
  tm_body : tstmt list;
  tm_pos : Ast.pos;
}

type tprogram = {
  domains : domain_info list;
  attrs : attr_info list;
  physdoms : phys_info list;
  vars : (var_key, var_info) Hashtbl.t;
  methods : (string, tmeth) Hashtbl.t;
  method_order : string list;
  classes : string list;
  (* every relational expression node, for the constraint stage *)
  all_exprs : texpr list;
  n_exprs : int;
}

let schema_to_string schema =
  "<" ^ String.concat ", " (List.map (fun a -> a.a_name) schema) ^ ">"
