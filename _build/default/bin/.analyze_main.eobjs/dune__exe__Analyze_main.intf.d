bin/analyze_main.mli:
