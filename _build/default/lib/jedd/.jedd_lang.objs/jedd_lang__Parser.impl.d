lib/jedd/parser.ml: Array Ast Lexer List Printf
