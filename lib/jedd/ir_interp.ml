(* IR execution engine: runs the lowered code of [Lower] against the
   relation runtime.  This is the closest analogue of the paper's
   generated Java running on the JVM: every operation, layout, replace,
   free and kill is already explicit in the instruction stream, so this
   interpreter is a thin register machine.

   The tree-walking [Interp] and this engine must agree observationally;
   the test suite runs both on the same programs and compares results. *)

open Ir
module R = Jedd_relation.Relation
module Schema = Jedd_relation.Schema

exception Ir_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Ir_error s)) fmt

type t = {
  inst : Interp.t;
  methods : (string, cmethod) Hashtbl.t;
  mutable print_hook : string -> unit;
  mutable check : bool;
      (* shadow the register-discipline state machine on every executed
         instruction (JEDD_CHECK_IR=1); shares [Ir.Discipline] with the
         static verifier so runtime and prover enforce the same rules *)
}

let check_from_env () =
  match Sys.getenv_opt "JEDD_CHECK_IR" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let create compiled inst =
  {
    inst;
    methods = Lower.lower_program compiled;
    print_hook = print_string;
    check = check_from_env ();
  }

let set_print_hook t hook = t.print_hook <- hook
let set_check t b = t.check <- b
let instance t = t.inst
let methods t = t.methods

type frame = {
  regs : R.t option array;
  owned : bool array;
  locals : (Tast.var_key, R.t ref) Hashtbl.t;
  objs : (string, int) Hashtbl.t;
  disc : Discipline.frame option;  (* shadow state when checking *)
  meth : string;  (* for check-failure messages *)
}

let disc_fail frame what errs =
  fail "JEDD_CHECK_IR: %s in %s: %s" what frame.meth (String.concat "; " errs)

exception Return_value of R.t option

let schema_of_layout t (layout : layout) =
  Schema.make
    (List.map
       (fun (attr_name, phys_name) ->
         {
           Schema.attr = Interp.attribute t.inst attr_name;
           phys = Interp.physdom t.inst phys_name;
         })
       layout)

let reg_value frame r =
  match frame.regs.(r) with
  | Some v -> v
  | None -> fail "register r%d read before being written" r

(* consume a register: the caller takes the value; ownership moves out
   (a borrowed register yields a dup so the consumer can free safely) *)
let consume_reg frame r =
  let v = reg_value frame r in
  let owned = frame.owned.(r) in
  frame.regs.(r) <- None;
  frame.owned.(r) <- false;
  if owned then v else R.dup v

let set_reg frame r v ~owned =
  frame.regs.(r) <- Some v;
  frame.owned.(r) <- owned

let resolve_operand frame = function
  | Op_int n -> n
  | Op_objparam name -> (
    match Hashtbl.find_opt frame.objs name with
    | Some v -> v
    | None -> fail "object parameter %s unbound" name)

let read_var t frame key =
  match Hashtbl.find_opt frame.locals key with
  | Some slot -> !slot
  | None -> Interp.get_field t.inst key

let store_var t frame key value =
  (* [value] is owned by this function and is handed to the storage *)
  let coerce_to_var v =
    let target = Interp.schema_of_var t.inst key in
    let coerced = R.coerce v target in
    if coerced == v then v else (R.release v; coerced)
  in
  match Hashtbl.find_opt frame.locals key with
  | Some slot ->
    let final = coerce_to_var value in
    let old = !slot in
    slot := final;
    R.release old
  | None ->
    if Interp.is_field t.inst key then begin
      Interp.set_field t.inst key value;
      R.release value
    end
    else
      (* first store to a local: this is its declaration *)
      Hashtbl.replace frame.locals key (ref (coerce_to_var value))

let rec exec_instr t frame (i : instr) : unit =
  (match frame.disc with
  | Some d -> (
    match Discipline.step d i with
    | [] -> ()
    | errs ->
      disc_fail frame
        (Format.asprintf "discipline violation at [%a]" pp_instr i)
        errs)
  | None -> ());
  match i with
  | ILoad (r, key) -> set_reg frame r (read_var t frame key) ~owned:false
  | IStore (key, r) -> store_var t frame key (consume_reg frame r)
  | IStoreUnion (key, r) | IStoreInter (key, r) | IStoreDiff (key, r) ->
    let rhs = consume_reg frame r in
    let cur = read_var t frame key in
    let op =
      match i with
      | IStoreUnion _ -> R.union
      | IStoreInter _ -> R.inter
      | _ -> R.diff
    in
    let result = op cur rhs in
    R.release rhs;
    store_var t frame key result
  | IConst (r, full, layout) ->
    let sch = schema_of_layout t layout in
    let u = Interp.universe t.inst in
    set_reg frame r (if full then R.full u sch else R.empty u sch) ~owned:true
  | ILiteral (r, layout, operands) ->
    let sch = schema_of_layout t layout in
    let objs = List.map (resolve_operand frame) operands in
    set_reg frame r (R.tuple (Interp.universe t.inst) sch objs) ~owned:true
  | IUnion (d, a, b) | IInter (d, a, b) | IDiff (d, a, b) ->
    let va = reg_value frame a and vb = reg_value frame b in
    let op =
      match i with
      | IUnion _ -> R.union
      | IInter _ -> R.inter
      | _ -> R.diff
    in
    set_reg frame d (op va vb) ~owned:true
  | IProject (d, s, attrs) ->
    set_reg frame d
      (R.project_away (reg_value frame s)
         (List.map (Interp.attribute t.inst) attrs))
      ~owned:true
  | IRename (d, s, pairs) ->
    set_reg frame d
      (R.rename (reg_value frame s)
         (List.map
            (fun (a, b) -> (Interp.attribute t.inst a, Interp.attribute t.inst b))
            pairs))
      ~owned:true
  | ICopy (d, s, a, c, phys) ->
    set_reg frame d
      (R.copy
         ~phys:(Interp.physdom t.inst phys)
         (reg_value frame s) (Interp.attribute t.inst a)
         ~as_:(Interp.attribute t.inst c))
      ~owned:true
  | IJoin (d, a, la, b, lb) ->
    set_reg frame d
      (R.join (reg_value frame a)
         (List.map (Interp.attribute t.inst) la)
         (reg_value frame b)
         (List.map (Interp.attribute t.inst) lb))
      ~owned:true
  | ICompose (d, a, la, b, lb) ->
    set_reg frame d
      (R.compose (reg_value frame a)
         (List.map (Interp.attribute t.inst) la)
         (reg_value frame b)
         (List.map (Interp.attribute t.inst) lb))
      ~owned:true
  | IReplace (d, s, layout) ->
    let target = schema_of_layout t layout in
    let v = reg_value frame s in
    let coerced = R.coerce v target in
    set_reg frame d (if coerced == v then R.dup v else coerced) ~owned:true
  | ICall (dest, q, args) -> (
    let values =
      List.map
        (fun (a : call_arg) ->
          match a with
          | Carg_reg r -> Interp.VRel (consume_reg frame r)
          | Carg_obj o -> Interp.VObj (resolve_operand frame o))
        args
    in
    match (call t q values, dest) with
    | Some r, Some d -> set_reg frame d r ~owned:true
    | Some r, None -> R.release r
    | None, Some _ -> fail "void method %s used for its value" q
    | None, None -> ())
  | IFree r ->
    (match frame.regs.(r) with
    | Some v when frame.owned.(r) -> R.release v
    | _ -> ());
    frame.regs.(r) <- None;
    frame.owned.(r) <- false
  | IKill key -> (
    match Hashtbl.find_opt frame.locals key with
    | Some slot -> R.release !slot
    | None -> ())
  | IPrint r -> t.print_hook (R.to_string (reg_value frame r))

and eval_cond t frame (c : ccond) : bool =
  match c with
  | Cbool b -> b
  | Cnot c -> not (eval_cond t frame c)
  | Cand (a, b) -> eval_cond t frame a && eval_cond t frame b
  | Cor (a, b) -> eval_cond t frame a || eval_cond t frame b
  | Ceq (code, r, rhs) | Cne (code, r, rhs) ->
    List.iter (exec_instr t frame) code;
    let check_cmp r2 =
      match frame.disc with
      | Some d -> (
        match Discipline.compare_reads d r r2 with
        | [] -> ()
        | errs -> disc_fail frame "discipline violation at comparison" errs)
      | None -> ()
    in
    let result =
      match rhs with
      | Rhs_empty ->
        check_cmp None;
        R.is_empty (reg_value frame r)
      | Rhs_full ->
        check_cmp None;
        let v = reg_value frame r in
        let full = R.full (Interp.universe t.inst) (R.schema v) in
        let e = R.equal v full in
        R.release full;
        e
      | Rhs_reg (code2, r2) ->
        List.iter (exec_instr t frame) code2;
        check_cmp (Some r2);
        let e = R.equal (reg_value frame r) (reg_value frame r2) in
        exec_instr t frame (IFree r2);
        e
    in
    exec_instr t frame (IFree r);
    (match c with Ceq _ -> result | _ -> not result)

and exec_stmt t frame (s : cstmt) : unit =
  match s with
  | CExec instrs -> List.iter (exec_instr t frame) instrs
  | CBlock stmts -> List.iter (exec_stmt t frame) stmts
  | CIf (c, th, el) ->
    if eval_cond t frame c then List.iter (exec_stmt t frame) th
    else List.iter (exec_stmt t frame) el
  | CWhile (c, body) ->
    while eval_cond t frame c do
      List.iter (exec_stmt t frame) body
    done
  | CDoWhile (body, c) ->
    let continue_loop = ref true in
    while !continue_loop do
      List.iter (exec_stmt t frame) body;
      continue_loop := eval_cond t frame c
    done
  | CReturn (code, r) ->
    List.iter (exec_instr t frame) code;
    (match (frame.disc, r) with
    | Some d, Some r -> (
      match Discipline.consume_return d r with
      | [] -> ()
      | errs -> disc_fail frame "discipline violation at return" errs)
    | _ -> ());
    raise
      (Return_value (match r with Some r -> Some (consume_reg frame r) | None -> None))

and call t q (args : Interp.value list) : R.t option =
  let m =
    match Hashtbl.find_opt t.methods q with
    | Some m -> m
    | None -> fail "unknown method %s" q
  in
  let frame =
    {
      regs = Array.make (max 1 m.c_nregs) None;
      owned = Array.make (max 1 m.c_nregs) false;
      locals = Hashtbl.create 8;
      objs = Hashtbl.create 4;
      disc = (if t.check then Some (Discipline.init m.c_nregs) else None);
      meth = q;
    }
  in
  List.iter2
    (fun (p : Tast.tparam) (v : Interp.value) ->
      match (p, v) with
      | Tast.Tparam_rel key, Interp.VRel r ->
        let target = Interp.schema_of_var t.inst key in
        let coerced = R.coerce r target in
        let final = if coerced == r then r else (R.release r; coerced) in
        Hashtbl.replace frame.locals key (ref final)
      | Tast.Tparam_obj (name, _), Interp.VObj n ->
        Hashtbl.replace frame.objs name n
      | _ -> fail "argument kind mismatch calling %s" q)
    m.c_params args;
  let result =
    try
      List.iter (exec_stmt t frame) m.c_body;
      None
    with Return_value r -> r
  in
  (* frame teardown: locals die; stray owned registers are swept *)
  (match frame.disc with
  | Some d -> (
    match Discipline.leaks d with
    | [] -> ()
    | errs -> disc_fail frame "leak at method exit" errs)
  | None -> ());
  Hashtbl.iter (fun _ slot -> R.release !slot) frame.locals;
  Array.iteri
    (fun i v ->
      match v with Some v when frame.owned.(i) -> R.release v | _ -> ())
    frame.regs;
  result
