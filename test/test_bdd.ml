(* Tests for the ROBDD substrate: algebraic laws, canonicity,
   quantification, replace, counting, enumeration, fdd blocks, GC. *)

module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Replace = Jedd_bdd.Replace
module Count = Jedd_bdd.Count
module Enum = Jedd_bdd.Enum
module Fdd = Jedd_bdd.Fdd

let with_man ?(nvars = 8) f =
  let m = M.create ~node_capacity:2048 () in
  let vars = Array.init nvars (fun _ -> M.new_var m) in
  f m (Array.map (M.var m) vars)

(* Evaluate a BDD under a full assignment — the semantic reference all
   property tests compare against. *)
let eval m f assignment =
  let rec go f =
    if f = M.zero then false
    else if f = M.one then true
    else
      let lvl = M.level m f in
      if assignment.(lvl) then go (M.high m f) else go (M.low m f)
  in
  go f

let all_assignments n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> (code lsr i) land 1 = 1))

(* A small random BDD expression generator for property tests. *)
type expr =
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Const of bool

let rec gen_expr nvars depth rand =
  if depth = 0 then
    if rand 5 = 0 then Const (rand 2 = 0) else Var (rand nvars)
  else
    match rand 5 with
    | 0 -> Var (rand nvars)
    | 1 -> Not (gen_expr nvars (depth - 1) rand)
    | 2 -> And (gen_expr nvars (depth - 1) rand, gen_expr nvars (depth - 1) rand)
    | 3 -> Or (gen_expr nvars (depth - 1) rand, gen_expr nvars (depth - 1) rand)
    | _ -> Xor (gen_expr nvars (depth - 1) rand, gen_expr nvars (depth - 1) rand)

let rec build m expr =
  match expr with
  | Var i -> M.var m i
  | Not e -> Ops.bnot m (build m e)
  | And (a, b) -> Ops.band m (build m a) (build m b)
  | Or (a, b) -> Ops.bor m (build m a) (build m b)
  | Xor (a, b) -> Ops.bxor m (build m a) (build m b)
  | Const true -> M.one
  | Const false -> M.zero

let rec eval_expr expr assignment =
  match expr with
  | Var i -> assignment.(i)
  | Not e -> not (eval_expr e assignment)
  | And (a, b) -> eval_expr a assignment && eval_expr b assignment
  | Or (a, b) -> eval_expr a assignment || eval_expr b assignment
  | Xor (a, b) -> eval_expr a assignment <> eval_expr b assignment
  | Const b -> b

let expr_gen nvars =
  QCheck.Gen.(
    int_bound 6 >>= fun depth st ->
    gen_expr nvars depth (fun n -> int_bound (n - 1) st))

let arbitrary_expr nvars =
  QCheck.make (expr_gen nvars) ~print:(fun _ -> "<expr>")

(* ------------------------------------------------------------------ *)

let test_terminals () =
  with_man (fun m vars ->
      ignore vars;
      Alcotest.(check bool) "zero is terminal" true (M.is_terminal M.zero);
      Alcotest.(check bool) "one is terminal" true (M.is_terminal M.one);
      Alcotest.(check int) "not zero" M.one (Ops.bnot m M.zero);
      Alcotest.(check int) "not one" M.zero (Ops.bnot m M.one))

let test_hash_consing () =
  with_man (fun m vars ->
      let a = Ops.band m vars.(0) vars.(1) in
      let b = Ops.band m vars.(1) vars.(0) in
      Alcotest.(check int) "AND is canonical" a b;
      let c = Ops.bnot m (Ops.bnot m a) in
      Alcotest.(check int) "double negation is physical identity" a c)

let test_redundancy_rule () =
  with_man (fun m vars ->
      ignore vars;
      Alcotest.(check int) "mk with equal children collapses" M.one
        (M.mk m 0 M.one M.one))

let test_boolean_laws () =
  with_man (fun m vars ->
      let x = vars.(0) and y = vars.(1) and z = vars.(2) in
      Alcotest.(check int) "x & !x = 0" M.zero (Ops.band m x (Ops.bnot m x));
      Alcotest.(check int) "x | !x = 1" M.one (Ops.bor m x (Ops.bnot m x));
      Alcotest.(check int) "de morgan"
        (Ops.bnot m (Ops.band m x y))
        (Ops.bor m (Ops.bnot m x) (Ops.bnot m y));
      Alcotest.(check int) "distribution"
        (Ops.band m x (Ops.bor m y z))
        (Ops.bor m (Ops.band m x y) (Ops.band m x z));
      Alcotest.(check int) "xor via and/or"
        (Ops.bxor m x y)
        (Ops.bor m
           (Ops.band m x (Ops.bnot m y))
           (Ops.band m (Ops.bnot m x) y));
      Alcotest.(check int) "diff = and-not"
        (Ops.bdiff m x y)
        (Ops.band m x (Ops.bnot m y)))

let test_ite () =
  with_man (fun m vars ->
      let f = vars.(0) and g = vars.(1) and h = vars.(2) in
      Alcotest.(check int) "ite decomposition"
        (Ops.ite m f g h)
        (Ops.bor m (Ops.band m f g) (Ops.band m (Ops.bnot m f) h));
      Alcotest.(check int) "ite true branch" g (Ops.ite m M.one g h);
      Alcotest.(check int) "ite false branch" h (Ops.ite m M.zero g h))

let test_cube_restrict () =
  with_man (fun m vars ->
      let f = Ops.band m vars.(0) (Ops.bor m vars.(1) vars.(2)) in
      let r = Ops.restrict m f [ (0, true); (1, false) ] in
      Alcotest.(check int) "restrict x0=1,x1=0 leaves x2" vars.(2) r;
      let c = Ops.cube m [ (0, true); (2, false) ] in
      Alcotest.(check int) "cube evaluates correctly"
        (Ops.band m vars.(0) (Ops.bnot m vars.(2)))
        c)

let test_exist () =
  with_man (fun m vars ->
      let f = Ops.band m vars.(0) vars.(1) in
      let cube = Quant.varset m [ 0 ] in
      Alcotest.(check int) "exists x0. x0&x1 = x1" vars.(1)
        (Quant.exist m f cube);
      Alcotest.(check int) "forall x0. x0&x1 = 0" M.zero
        (Quant.forall m f cube);
      let g = Ops.bor m vars.(0) vars.(1) in
      Alcotest.(check int) "exists x0. x0|x1 = 1" M.one
        (Quant.exist m g cube))

let test_relprod_equals_and_exist () =
  with_man (fun m vars ->
      let f = Ops.bor m (Ops.band m vars.(0) vars.(1)) vars.(2) in
      let g = Ops.bor m (Ops.band m vars.(1) vars.(3)) (Ops.bnot m vars.(0)) in
      let cube = Quant.varset m [ 1; 3 ] in
      Alcotest.(check int) "relprod = exist of and"
        (Quant.exist m (Ops.band m f g) cube)
        (Quant.relprod m f g cube))

let test_replace_swap () =
  with_man (fun m vars ->
      (* f = x0 & !x1; swapping 0<->1 gives !x0 & x1 *)
      let f = Ops.band m vars.(0) (Ops.bnot m vars.(1)) in
      let p = Replace.make_perm m [ (0, 1); (1, 0) ] in
      let expected = Ops.band m (Ops.bnot m vars.(0)) vars.(1) in
      Alcotest.(check int) "swap x0<->x1" expected (Replace.replace m f p))

let test_replace_move () =
  with_man (fun m vars ->
      let f = Ops.band m vars.(0) vars.(1) in
      let p = Replace.make_perm m [ (0, 4); (1, 5) ] in
      let expected = Ops.band m vars.(4) vars.(5) in
      Alcotest.(check int) "move {0,1} -> {4,5}" expected
        (Replace.replace m f p))

let test_replace_reorder () =
  with_man (fun m vars ->
      let f = Ops.bor m vars.(0) (Ops.band m vars.(3) vars.(5)) in
      let p = Replace.make_perm m [ (0, 5); (5, 0) ] in
      let expected = Ops.bor m vars.(5) (Ops.band m vars.(3) vars.(0)) in
      Alcotest.(check int) "swap distant levels" expected
        (Replace.replace m f p))

let test_satcount () =
  with_man (fun m vars ->
      let f = Ops.bor m vars.(0) vars.(1) in
      Alcotest.(check int) "count x0|x1 over 2 vars" 3
        (Count.satcount m f ~over:[ 0; 1 ]);
      Alcotest.(check int) "count x0|x1 over 3 vars" 6
        (Count.satcount m f ~over:[ 0; 1; 2 ]);
      Alcotest.(check int) "count 1 over 3 vars" 8
        (Count.satcount m M.one ~over:[ 0; 1; 2 ]);
      Alcotest.(check int) "count 0" 0 (Count.satcount m M.zero ~over:[ 0 ]);
      Alcotest.check_raises "depends outside over"
        (Invalid_argument
           "Count.satcount: BDD depends on a variable outside ~over")
        (fun () -> ignore (Count.satcount m f ~over:[ 0 ])))

let test_nodecount_shape () =
  with_man (fun m vars ->
      let f = Ops.band m vars.(0) (Ops.band m vars.(1) vars.(2)) in
      Alcotest.(check int) "chain of 3" 3 (Count.nodecount m f);
      let shape = Count.shape m f in
      Alcotest.(check (array int)) "one node per level"
        [| 1; 1; 1; 0; 0; 0; 0; 0 |]
        shape)

let test_enum () =
  with_man (fun m vars ->
      let f = Ops.bor m (Ops.band m vars.(0) vars.(1)) (Ops.bnot m vars.(0)) in
      let collected = ref [] in
      Enum.iter_assignments m f ~levels:[| 0; 1 |] (fun values ->
          collected := Array.to_list values :: !collected);
      let sorted = List.sort compare !collected in
      Alcotest.(check (list (list bool)))
        "assignments of (x0&x1)|!x0"
        [ [ false; false ]; [ false; true ]; [ true; true ] ]
        sorted)

let test_enum_dont_care () =
  with_man (fun m vars ->
      let f = vars.(1) in
      let count = ref 0 in
      Enum.iter_assignments m f ~levels:[| 0; 1; 2 |] (fun _ -> incr count);
      Alcotest.(check int) "don't-cares expanded" 4 !count)

let test_fdd_basics () =
  let m = M.create () in
  let b = Fdd.extdomain m 10 in
  Alcotest.(check int) "10 values need 4 bits" 4 (Fdd.width b);
  let v3 = Fdd.ithvar m b 3 in
  let v7 = Fdd.ithvar m b 7 in
  Alcotest.(check bool) "distinct values disjoint" true
    (Ops.band m v3 v7 = M.zero);
  let union = Ops.bor m v3 v7 in
  Alcotest.(check int) "two tuples" 2
    (Count.satcount m union ~over:(Array.to_list (Fdd.levels m b)))

let test_fdd_equality_and_move () =
  let m = M.create () in
  let b1 = Fdd.extdomain m 8 in
  let b2 = Fdd.extdomain m 8 in
  let eq = Fdd.equality m b1 b2 in
  Alcotest.(check int) "equality relation has 8 tuples" 8
    (Count.satcount m eq
       ~over:
         (Array.to_list (Fdd.levels m b1) @ Array.to_list (Fdd.levels m b2)));
  let v5 = Fdd.ithvar m b1 5 in
  let moved = Replace.replace m v5 (Replace.make_perm m (Fdd.perm_pairs m b1 b2)) in
  Alcotest.(check int) "moved value decodes as 5" 5
    (let lv = Fdd.levels m b2 in
     match Enum.first_assignment m moved ~levels:lv with
     | Some values -> Fdd.decode m b2 ~levels:lv values
     | None -> -1)

let test_fdd_interleaved () =
  let m = M.create () in
  match Fdd.extdomains_interleaved m [ 16; 16 ] with
  | [ b1; b2 ] ->
    let l1 = Fdd.levels m b1 and l2 = Fdd.levels m b2 in
    Alcotest.(check (array int)) "b1 levels" [| 0; 2; 4; 6 |] l1;
    Alcotest.(check (array int)) "b2 levels" [| 1; 3; 5; 7 |] l2;
    let eq = Fdd.equality m b1 b2 in
    Alcotest.(check bool) "equality BDD is small" true
      (Count.nodecount m eq <= 3 * 4)
  | _ -> Alcotest.fail "expected two blocks"

let test_gc_keeps_referenced () =
  let m = M.create ~node_capacity:1024 () in
  let v = Array.init 6 (fun _ -> M.new_var m) in
  let f = ref M.one in
  for i = 0 to 5 do
    f := Ops.band m !f (M.var m v.(i))
  done;
  let f = M.addref m !f in
  let before = Count.nodecount m f in
  for i = 0 to 100 do
    ignore (Ops.bxor m (M.var m v.(i mod 6)) (M.var m v.((i + 1) mod 6)))
  done;
  M.gc m;
  Alcotest.(check int) "referenced BDD survives GC" before
    (Count.nodecount m f);
  Alcotest.(check int) "still the full cube" 1
    (Count.satcount m f ~over:(List.init 6 (fun i -> i)))

let test_gc_collects_garbage () =
  let m = M.create ~node_capacity:1024 () in
  let v = Array.init 6 (fun _ -> M.new_var m) in
  for i = 0 to 200 do
    ignore
      (Ops.band m
         (M.var m v.(i mod 6))
         (Ops.bor m (M.var m v.((i + 1) mod 6)) (M.var m v.((i + 2) mod 6))))
  done;
  let live_before = M.live_nodes m in
  M.gc m;
  Alcotest.(check bool) "GC reclaims unreferenced nodes" true
    (M.live_nodes m < live_before)

let test_growth () =
  let m = M.create ~node_capacity:1024 () in
  let nv = 14 in
  let v = Array.init nv (fun _ -> M.new_var m) in
  let f = ref M.zero in
  for i = 0 to nv - 1 do
    f := Ops.bxor m !f (M.var m v.(i))
  done;
  let g = ref M.one in
  for i = 0 to nv - 2 do
    g := Ops.bor m !g (Ops.band m (M.var m v.(i)) (M.var m v.(i + 1)))
  done;
  Alcotest.(check bool) "survived growth" true (M.live_nodes m > 0);
  Alcotest.(check int) "xor chain counts half the space"
    (1 lsl (nv - 1))
    (Count.satcount m !f ~over:(List.init nv (fun i -> i)))

(* ---------------- operation cache and fused kernels ---------------- *)

let total_activity stats =
  List.fold_left
    (fun acc (s : M.cache_stat) -> acc + s.hits + s.misses + s.stores)
    0 stats

let test_cache_stats_api () =
  let m = M.create ~node_capacity:1024 () in
  let v = Array.init 4 (fun _ -> M.new_var m) in
  let entries, ways = M.cache_config m in
  Alcotest.(check bool) "sane geometry" true (entries >= ways && ways >= 1);
  ignore (Ops.band m (M.var m v.(0)) (M.var m v.(1)));
  let stats = M.cache_stats m in
  Alcotest.(check bool) "tags are named" true
    (List.for_all (fun (s : M.cache_stat) -> s.name <> "") stats);
  Alcotest.(check bool) "activity recorded" true (total_activity stats > 0);
  let and_stat =
    List.find (fun (s : M.cache_stat) -> s.name = "and") stats
  in
  Alcotest.(check bool) "and kernel stored its result" true
    (and_stat.stores > 0)

let test_cache_stats_monotone_across_gc () =
  let m = M.create ~node_capacity:1024 () in
  let v = Array.init 6 (fun _ -> M.new_var m) in
  ignore (Ops.band m (M.var m v.(0)) (Ops.bor m (M.var m v.(1)) (M.var m v.(2))));
  let before = M.cache_stats m in
  M.gc m;
  (* GC invalidates entries (generation bump) but must never reset the
     statistics counters. *)
  let after = M.cache_stats m in
  List.iter2
    (fun (b : M.cache_stat) (a : M.cache_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "tag %s monotone across gc" b.name)
        true
        (a.hits >= b.hits && a.misses >= b.misses && a.stores >= b.stores
        && a.evictions >= b.evictions))
    before after;
  ignore (Ops.band m (M.var m v.(3)) (M.var m v.(4)));
  Alcotest.(check bool) "counters keep counting after gc" true
    (total_activity (M.cache_stats m) > total_activity after)

let test_cache_survives_grow () =
  let m = M.create ~node_capacity:1024 () in
  let v = Array.init 4 (fun _ -> M.new_var m) in
  let f = Ops.bor m (M.var m v.(0)) (M.var m v.(1)) in
  let g = Ops.bor m (M.var m v.(2)) (M.var m v.(3)) in
  let r1 = Ops.band m f g in
  let hits_before =
    (List.find (fun (s : M.cache_stat) -> s.name = "and") (M.cache_stats m))
      .hits
  in
  (* Force node-table growth with cache-neutral allocations (Ops.cube
     builds through mk only): ithvar cubes are all distinct. *)
  let b = Fdd.extdomain_bits m 11 in
  for value = 0 to 1500 do
    ignore (Fdd.ithvar m b value)
  done;
  Alcotest.(check bool) "the table grew" true (M.grow_count m > 0);
  let r2 = Ops.band m f g in
  Alcotest.(check int) "same result after growth" r1 r2;
  let hits_after =
    (List.find (fun (s : M.cache_stat) -> s.name = "and") (M.cache_stats m))
      .hits
  in
  Alcotest.(check bool) "entry survived growth: repeat lookup hits" true
    (hits_after > hits_before)

let test_cache_gc_invalidates_entries () =
  let m = M.create ~node_capacity:1024 () in
  let v = Array.init 4 (fun _ -> M.new_var m) in
  let f = M.addref m (Ops.bor m (M.var m v.(0)) (M.var m v.(1))) in
  let g = M.addref m (Ops.bor m (M.var m v.(2)) (M.var m v.(3))) in
  ignore (Ops.band m f g);
  let stat () =
    List.find (fun (s : M.cache_stat) -> s.name = "and") (M.cache_stats m)
  in
  let before = stat () in
  M.gc m;
  ignore (Ops.band m f g);
  let after = stat () in
  Alcotest.(check bool) "entry invalidated by gc: recomputed" true
    (after.misses > before.misses);
  ignore (Ops.band m f g);
  let again = stat () in
  Alcotest.(check bool) "and cached again after recompute" true
    (again.hits > after.hits)

let test_relprod_replace_block_move () =
  (* f over {0,1,4,5}; g over {2,3}; move g's block {2,3} onto {0,1}
     (order-preserving): the fused path must run, not the fallback. *)
  with_man ~nvars:6 (fun m vars ->
      let f =
        Ops.band m
          (Ops.bor m vars.(0) vars.(4))
          (Ops.bor m vars.(1) vars.(5))
      in
      let g = Ops.band m vars.(2) (Ops.bnot m vars.(3)) in
      let p = Replace.make_perm m [ (2, 0); (3, 1) ] in
      let cube = Quant.varset m [ 0; 1 ] in
      let fused_before, _ = Replace.fused_stats () in
      let got = Replace.relprod_replace m f g p cube in
      let fused_after, _ = Replace.fused_stats () in
      let expected = Quant.relprod m f (Replace.replace m g p) cube in
      Alcotest.(check int) "fused relprod_replace = pipeline" expected got;
      Alcotest.(check bool) "single-recursion path taken" true
        (fused_after > fused_before);
      (* terminal cube degenerates to the fused conjunction *)
      let got_band = Replace.relprod_replace m f g p M.one in
      let expected_band = Ops.band m f (Replace.replace m g p) in
      Alcotest.(check int) "fused band_replace = pipeline" expected_band
        got_band)

let test_relprod_replace_fallback () =
  (* Swapping two distant variables both present in g is not
     order-preserving along g's edges: the kernel must fall back and
     still agree with the pipeline. *)
  with_man ~nvars:6 (fun m vars ->
      let f = Ops.bor m vars.(1) vars.(4) in
      let g = Ops.band m vars.(0) (Ops.bor m vars.(2) vars.(5)) in
      let p = Replace.make_perm m [ (0, 5); (5, 0) ] in
      let cube = Quant.varset m [ 2 ] in
      let _, fallback_before = Replace.fused_stats () in
      let got = Replace.relprod_replace m f g p cube in
      let _, fallback_after = Replace.fused_stats () in
      let expected = Quant.relprod m f (Replace.replace m g p) cube in
      Alcotest.(check int) "fallback relprod_replace = pipeline" expected got;
      Alcotest.(check bool) "fallback path taken" true
        (fallback_after > fallback_before))

let test_replace_exist_block_move () =
  with_man ~nvars:6 (fun m vars ->
      let f =
        Ops.band m
          (Ops.bor m vars.(0) vars.(2))
          (Ops.bor m vars.(3) (Ops.bnot m vars.(5)))
      in
      let p = Replace.make_perm m [ (2, 4) ] in
      let cube = Quant.varset m [ 0; 3 ] in
      let got = Replace.replace_exist m f p cube in
      let expected = Replace.replace m (Quant.exist m f cube) p in
      Alcotest.(check int) "fused replace_exist = pipeline" expected got)

(* ---------------- property-based tests ---------------------------- *)

let nvars_prop = 5

let prop_build_matches_semantics =
  QCheck.Test.make ~count:300 ~name:"BDD agrees with boolean semantics"
    (arbitrary_expr nvars_prop) (fun expr ->
      with_man ~nvars:nvars_prop (fun m _ ->
          let f = build m expr in
          List.for_all
            (fun assignment -> eval m f assignment = eval_expr expr assignment)
            (all_assignments nvars_prop)))

let prop_canonicity =
  QCheck.Test.make ~count:300
    ~name:"semantically equal expressions build the same node"
    (QCheck.pair (arbitrary_expr nvars_prop) (arbitrary_expr nvars_prop))
    (fun (e1, e2) ->
      with_man ~nvars:nvars_prop (fun m _ ->
          let f1 = build m e1 and f2 = build m e2 in
          let sem_equal =
            List.for_all
              (fun a -> eval_expr e1 a = eval_expr e2 a)
              (all_assignments nvars_prop)
          in
          (f1 = f2) = sem_equal))

let prop_satcount_matches_enumeration =
  QCheck.Test.make ~count:200 ~name:"satcount = brute-force count"
    (arbitrary_expr nvars_prop) (fun expr ->
      with_man ~nvars:nvars_prop (fun m _ ->
          let f = build m expr in
          let brute =
            List.length
              (List.filter (eval_expr expr) (all_assignments nvars_prop))
          in
          Count.satcount m f ~over:(List.init nvars_prop (fun i -> i)) = brute))

let prop_exist_semantics =
  QCheck.Test.make ~count:200 ~name:"exists quantification semantics"
    (QCheck.pair (arbitrary_expr nvars_prop)
       (QCheck.int_bound (nvars_prop - 1)))
    (fun (expr, qvar) ->
      with_man ~nvars:nvars_prop (fun m _ ->
          let f = build m expr in
          let ex = Quant.exist m f (Quant.varset m [ qvar ]) in
          List.for_all
            (fun a ->
              let a0 = Array.copy a and a1 = Array.copy a in
              a0.(qvar) <- false;
              a1.(qvar) <- true;
              eval m ex a = (eval m f a0 || eval m f a1))
            (all_assignments nvars_prop)))

let prop_relprod_matches =
  QCheck.Test.make ~count:150 ~name:"relprod = exist(and)"
    (QCheck.triple (arbitrary_expr nvars_prop) (arbitrary_expr nvars_prop)
       (QCheck.int_bound (nvars_prop - 1)))
    (fun (e1, e2, qvar) ->
      with_man ~nvars:nvars_prop (fun m _ ->
          let f = build m e1 and g = build m e2 in
          let cube = Quant.varset m [ qvar; (qvar + 1) mod nvars_prop ] in
          Quant.relprod m f g cube = Quant.exist m (Ops.band m f g) cube))

let prop_replace_roundtrip =
  QCheck.Test.make ~count:150 ~name:"replace there-and-back is identity"
    (arbitrary_expr 3) (fun expr ->
      with_man ~nvars:6 (fun m _ ->
          let f = build m expr in
          let fwd = Replace.make_perm m [ (0, 3); (1, 4); (2, 5) ] in
          let bwd = Replace.make_perm m [ (3, 0); (4, 1); (5, 2) ] in
          Replace.replace m (Replace.replace m f fwd) bwd = f))

let prop_enum_complete =
  QCheck.Test.make ~count:150
    ~name:"enumeration is complete and duplicate-free"
    (arbitrary_expr nvars_prop) (fun expr ->
      with_man ~nvars:nvars_prop (fun m _ ->
          let f = build m expr in
          let seen = Hashtbl.create 64 in
          let ok = ref true in
          Enum.iter_assignments m f
            ~levels:(Array.init nvars_prop (fun i -> i))
            (fun values ->
              let key = Array.to_list values in
              if Hashtbl.mem seen key then ok := false;
              Hashtbl.add seen key ());
          !ok
          && List.for_all
               (fun a ->
                 let key =
                   Array.to_list (Array.init nvars_prop (fun i -> a.(i)))
                 in
                 Hashtbl.mem seen key = eval_expr expr a)
               (all_assignments nvars_prop)))

(* Random (partial) permutations over [n] levels: draw a full random
   permutation of the levels, then keep a random subset of its pairs.
   Sources and targets stay distinct by construction; the result ranges
   from identity through order-preserving block moves to distant swaps
   (which must take the kernels' fallback path). *)
let gen_perm_pairs n =
  QCheck.Gen.(
    list_repeat n (int_bound 1_000_000) >>= fun keys ->
    int_bound ((1 lsl n) - 1) >>= fun mask ->
    let targets =
      List.combine keys (List.init n (fun i -> i))
      |> List.sort compare |> List.map snd
    in
    return
      (List.concat
         (List.mapi
            (fun s t -> if mask land (1 lsl s) <> 0 then [ (s, t) ] else [])
            targets)))

let levels_of_mask n mask =
  List.filter (fun l -> mask land (1 lsl l) <> 0) (List.init n (fun i -> i))

let show_pairs pairs =
  String.concat ";"
    (List.map (fun (s, d) -> Printf.sprintf "%d->%d" s d) pairs)

let nvars_fused = 6

let arbitrary_fused_binop_case =
  QCheck.make
    ~print:(fun (_, _, pairs, mask) ->
      Printf.sprintf "<expr,expr> perm=[%s] cube_mask=%d" (show_pairs pairs)
        mask)
    QCheck.Gen.(
      expr_gen nvars_fused >>= fun e1 ->
      expr_gen nvars_fused >>= fun e2 ->
      gen_perm_pairs nvars_fused >>= fun pairs ->
      int_bound ((1 lsl nvars_fused) - 1) >>= fun mask ->
      return (e1, e2, pairs, mask))

let arbitrary_fused_unop_case =
  QCheck.make
    ~print:(fun (_, pairs, mask) ->
      Printf.sprintf "<expr> perm=[%s] cube_mask=%d" (show_pairs pairs) mask)
    QCheck.Gen.(
      expr_gen nvars_fused >>= fun e ->
      gen_perm_pairs nvars_fused >>= fun pairs ->
      int_bound ((1 lsl nvars_fused) - 1) >>= fun mask ->
      return (e, pairs, mask))

let prop_relprod_replace_equiv =
  QCheck.Test.make ~count:400
    ~name:"relprod_replace = relprod against materialised replace"
    arbitrary_fused_binop_case (fun (e1, e2, pairs, mask) ->
      with_man ~nvars:nvars_fused (fun m _ ->
          let f = build m e1 and g = build m e2 in
          let p = Replace.make_perm m pairs in
          let cube = Quant.varset m (levels_of_mask nvars_fused mask) in
          Replace.relprod_replace m f g p cube
          = Quant.relprod m f (Replace.replace m g p) cube))

let prop_replace_exist_equiv =
  QCheck.Test.make ~count:400
    ~name:"replace_exist = replace after exist"
    arbitrary_fused_unop_case (fun (e, pairs, mask) ->
      with_man ~nvars:nvars_fused (fun m _ ->
          let f = build m e in
          let p = Replace.make_perm m pairs in
          let cube = Quant.varset m (levels_of_mask nvars_fused mask) in
          Replace.replace_exist m f p cube
          = Replace.replace m (Quant.exist m f cube) p))

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~verbose:false)
    [
      prop_build_matches_semantics;
      prop_canonicity;
      prop_satcount_matches_enumeration;
      prop_exist_semantics;
      prop_relprod_matches;
      prop_replace_roundtrip;
      prop_enum_complete;
      prop_relprod_replace_equiv;
      prop_replace_exist_equiv;
    ]

let suite =
  [
    Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "redundancy rule" `Quick test_redundancy_rule;
    Alcotest.test_case "boolean laws" `Quick test_boolean_laws;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "cube and restrict" `Quick test_cube_restrict;
    Alcotest.test_case "exist/forall" `Quick test_exist;
    Alcotest.test_case "relprod" `Quick test_relprod_equals_and_exist;
    Alcotest.test_case "replace swap" `Quick test_replace_swap;
    Alcotest.test_case "replace move" `Quick test_replace_move;
    Alcotest.test_case "replace distant swap" `Quick test_replace_reorder;
    Alcotest.test_case "satcount" `Quick test_satcount;
    Alcotest.test_case "nodecount and shape" `Quick test_nodecount_shape;
    Alcotest.test_case "enumeration" `Quick test_enum;
    Alcotest.test_case "enumeration don't-cares" `Quick test_enum_dont_care;
    Alcotest.test_case "fdd basics" `Quick test_fdd_basics;
    Alcotest.test_case "fdd equality and move" `Quick test_fdd_equality_and_move;
    Alcotest.test_case "fdd interleaved" `Quick test_fdd_interleaved;
    Alcotest.test_case "gc keeps referenced" `Quick test_gc_keeps_referenced;
    Alcotest.test_case "gc collects garbage" `Quick test_gc_collects_garbage;
    Alcotest.test_case "table growth" `Quick test_growth;
    Alcotest.test_case "cache stats api" `Quick test_cache_stats_api;
    Alcotest.test_case "cache stats monotone across gc" `Quick
      test_cache_stats_monotone_across_gc;
    Alcotest.test_case "cache survives grow" `Quick test_cache_survives_grow;
    Alcotest.test_case "gc invalidates cache entries" `Quick
      test_cache_gc_invalidates_entries;
    Alcotest.test_case "relprod_replace fused path" `Quick
      test_relprod_replace_block_move;
    Alcotest.test_case "relprod_replace fallback path" `Quick
      test_relprod_replace_fallback;
    Alcotest.test_case "replace_exist fused path" `Quick
      test_replace_exist_block_move;
  ]
  @ qcheck_cases
