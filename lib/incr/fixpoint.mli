(** Generic semi-naive fixed-point combinators over relations.

    A Datalog-style recursive definition [acc = seed ∪ step(acc)] with
    monotone [step] has a unique least fixed point; since relations are
    canonical BDDs, evaluating it naively (iterate on the full
    accumulator) or semi-naively (iterate only on the newly derived
    delta, the standard BDD-Datalog trick) yields bit-identical results.
    These combinators drive the semi-naive schedule and record
    per-iteration delta sizes, so every analysis loop in
    [Jedd_analyses] shares one engine — and the same engine restarts a
    *warm* accumulator after an input change (incremental re-solve).

    Ownership: inputs are borrowed (never released); every relation
    handed to [step] is borrowed by the callback; relations returned by
    [step] are owned by the combinator; the final accumulator array is
    owned by the caller. *)

module R = Jedd_relation.Relation

type stats = {
  iterations : int;
  delta_sizes : int array array;
      (** [delta_sizes.(i)] = tuple count of each delta (or of the
          worklist frontier) at iteration [i]. *)
  millis : float;
}

val total_delta : stats -> int
(** Sum of every recorded delta size — the work the run actually did. *)

val solve :
  ?on_iter:(iter:int -> sizes:int array -> unit) ->
  accs:R.t array ->
  seed:R.t array ->
  step:(deltas:R.t array -> accs:R.t array -> R.t array) ->
  unit ->
  R.t array * stats
(** [solve ~accs ~seed ~step ()] computes the least fixed point
    containing [accs] of [x = x ∪ seed ∪ step(x)], semi-naively.

    Iteration 0 derives [delta.(i) = (seed.(i) ∪ step(accs).(i)) −
    accs.(i)]: with empty accumulators this is exactly the first naive
    iteration (a cold solve); with [accs] holding a previous fixed
    point whose *inputs* have since grown, the full-width step re-fires
    every rule against the changed inputs, so the warm resume reaches
    the same fixed point as a cold solve from scratch.  Subsequent
    iterations are pure delta steps: [delta' = step(delta) − acc].

    [step ~deltas ~accs] must return one candidate relation per
    accumulator, where occurrences of a recursive relation in rule
    bodies are replaced by its delta (one delta-variant per occurrence,
    unioned); [accs] always already absorbs [deltas]. *)

val worklist :
  ?on_iter:(iter:int -> sizes:int array -> unit) ->
  accs:R.t array ->
  frontier:R.t ->
  step:(frontier:R.t -> accs:R.t array -> R.t array * R.t) ->
  unit ->
  R.t array * stats
(** [worklist ~accs ~frontier ~step ()] runs a frontier-driven loop for
    algorithms that are not plain monotone closures (virtual-call
    resolution walks *up* the hierarchy, retiring work as it resolves):
    while the frontier is non-empty, [step ~frontier ~accs] returns
    (candidates to union into the accumulators, the next frontier).
    Stats record the frontier size per iteration. *)
