(* A small JSON value type with a strict parser and printer — the wire
   format of the jeddd protocol.  Hand-rolled because the repository
   deliberately depends only on the OCaml platform basics; covers the
   full JSON grammar except that numbers with a fractional or exponent
   part become [Float] and everything else [Int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* -- printing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no nan/inf tokens; emit null rather than invalid output *)
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* -- parsing ------------------------------------------------------------ *)

type state = { s : string; mutable p : int; mutable depth : int }

let max_depth = 512
(* Nesting cap: without it adversarial input like ["[[[[..."] overflows
   the parser's stack; 512 is far beyond anything the protocol emits. *)

let peek st = if st.p < String.length st.s then Some st.s.[st.p] else None

let skip_ws st =
  while
    st.p < String.length st.s
    && (match st.s.[st.p] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.p <- st.p + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.p <- st.p + 1
  | Some c' -> parse_error "expected %C at offset %d, found %C" c st.p c'
  | None -> parse_error "expected %C at offset %d, found end of input" c st.p

let literal st word value =
  if
    st.p + String.length word <= String.length st.s
    && String.sub st.s st.p (String.length word) = word
  then begin
    st.p <- st.p + String.length word;
    value
  end
  else parse_error "bad literal at offset %d" st.p

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.p >= String.length st.s then parse_error "unterminated string";
    let c = st.s.[st.p] in
    st.p <- st.p + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.p >= String.length st.s then parse_error "unterminated escape";
       let e = st.s.[st.p] in
       st.p <- st.p + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.p + 4 > String.length st.s then parse_error "bad \\u escape";
         let hex = String.sub st.s st.p 4 in
         st.p <- st.p + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> parse_error "bad \\u escape %S" hex
         in
         (* encode as UTF-8 (no surrogate-pair handling; the protocol
            only carries names and numbers) *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end
       | c -> parse_error "bad escape \\%C" c);
      go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.p in
  let is_num c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while st.p < String.length st.s && is_num st.s.[st.p] do
    st.p <- st.p + 1
  done;
  let text = String.sub st.s start (st.p - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error "bad number %S at offset %d" text start)

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then
    parse_error "nesting deeper than %d at offset %d" max_depth st.p

let leave st = st.depth <- st.depth - 1

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
    enter st;
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      leave st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          items (v :: acc)
        | Some ']' ->
          expect st ']';
          List.rev (v :: acc)
        | _ -> parse_error "expected ',' or ']' at offset %d" st.p
      in
      let l = items [] in
      leave st;
      List l
    end
  | Some '{' ->
    enter st;
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      leave st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect st '}';
          List.rev ((k, v) :: acc)
        | _ -> parse_error "expected ',' or '}' at offset %d" st.p
      in
      let kvs = members [] in
      leave st;
      Obj kvs
    end
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number st
  | Some c -> parse_error "unexpected %C at offset %d" c st.p

let of_string s =
  let st = { s; p = 0; depth = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.p <> String.length s then
    parse_error "trailing input at offset %d" st.p;
  v

(* -- accessors ----------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
