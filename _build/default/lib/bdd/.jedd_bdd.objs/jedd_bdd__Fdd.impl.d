lib/bdd/fdd.ml: Array Hashtbl List Manager Ops Quant
