(* JL004/JL005/JL006: constant propagation of statically-known
   emptiness/fullness.

   A forward analysis maps each local/parameter to Emp (provably 0B),
   Ful (provably 1B) or Unk, refining on emptiness tests along branch
   edges.  Fields stay Unk — any call can rewrite them.  The facts flag
   joins and intersections whose result is guaranteed empty (JL004),
   no-op unions and differences (JL005), and emptiness tests whose
   outcome is already decided at compile time (JL006). *)

open Jedd_lang
open Tast
module M = Map.Make (String)

type av = Emp | Ful | Unk

let join_av a b = if a = b then a else Unk

(* None = unreachable *)
type fact = av M.t option

let join_fact a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b ->
    Some
      (M.merge
         (fun _ x y ->
           match (x, y) with Some x, Some y -> Some (join_av x y) | _ -> None)
         a b)

let equal_fact a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> M.equal ( = ) a b
  | _ -> false

let lookup env key = match M.find_opt key env with Some v -> v | None -> Unk

let av_binop (op : Ast.set_op) a b =
  match (op, a, b) with
  | Ast.Union, Emp, x | Ast.Union, x, Emp -> x
  | Ast.Union, Ful, _ | Ast.Union, _, Ful -> Ful
  | Ast.Inter, Emp, _ | Ast.Inter, _, Emp -> Emp
  | Ast.Inter, Ful, Ful -> Ful
  | Ast.Diff, Emp, _ -> Emp
  | Ast.Diff, x, Emp -> x
  | Ast.Diff, _, Ful -> Emp
  | _ -> Unk

let rec aeval env (e : texpr) : av =
  match e.edesc with
  | TEmpty -> Emp
  | TFull -> Ful
  | TLiteral _ | TCall _ -> Unk
  | TVar ((Vlocal | Vparam), key) -> lookup env key
  | TVar (Vfield, _) -> Unk
  | TBinop (op, l, r) -> av_binop op (aeval env l) (aeval env r)
  | TJoin (_, l, _, r, _) ->
    if aeval env l = Emp || aeval env r = Emp then Emp else Unk
  | TReplace (reps, c) -> (
    match aeval env c with
    | Emp -> Emp
    | Ful ->
      (* projection and renaming preserve fullness; an attribute copy
         builds a diagonal, which is not full *)
      if List.for_all (function TCopy _ -> false | _ -> true) reps then Ful
      else Unk
    | Unk -> Unk)

(* decide a comparison, assuming nonempty attribute domains *)
let decide_cmp env l r : bool option =
  match (aeval env l, aeval env r) with
  | Emp, Emp | Ful, Ful -> Some true
  | Emp, Ful | Ful, Emp -> Some false
  | _ -> None

let rec decide env (c : tcond) : bool option =
  match c with
  | TBool b -> Some b
  | TNot c -> Option.map not (decide env c)
  | TAnd (a, b) -> (
    match (decide env a, decide env b) with
    | Some false, _ | _, Some false -> Some false
    | Some true, Some true -> Some true
    | _ -> None)
  | TOr (a, b) -> (
    match (decide env a, decide env b) with
    | Some true, _ | _, Some true -> Some true
    | Some false, Some false -> Some false
    | _ -> None)
  | TCmp_eq (l, r) -> decide_cmp env l r
  | TCmp_ne (l, r) -> Option.map not (decide_cmp env l r)

let set env key v = M.add key v env

(* propagate what holds when [c] took outcome [b] *)
let rec refine env (c : tcond) (b : bool) : av M.t =
  match (c, b) with
  | TNot c, b -> refine env c (not b)
  | TAnd (x, y), true -> refine (refine env x true) y true
  | TOr (x, y), false -> refine (refine env x false) y false
  | TCmp_eq (l, r), true | TCmp_ne (l, r), false ->
    refine_eq (refine_eq env l r) r l
  | _ -> env

and refine_eq env (l : texpr) (r : texpr) : av M.t =
  match l.edesc with
  | TVar ((Vlocal | Vparam), key) -> (
    match aeval env r with Unk -> env | v -> set env key v)
  | _ -> env

let stmt_effect env (s : tstmt) : av M.t =
  match s with
  | TDecl (key, None, _) -> set env key Emp  (* implicit 0B *)
  | TDecl (key, Some e, _) -> set env key (aeval env e)
  | TAssign (key, (Vlocal | Vparam), e, _) -> set env key (aeval env e)
  | TOp_assign (op, key, (Vlocal | Vparam), e, _) ->
    set env key (av_binop op (lookup env key) (aeval env e))
  | _ -> env

module Solver = Jedd_dataflow.Solver (struct
  type t = fact

  let bottom = None
  let join = join_fact
  let equal = equal_fact
end)

let check_method (m : tmeth) : Diag.t list =
  let cfg = Cfg.build_ast m in
  let transfer n (inp : fact) =
    match inp with
    | None -> None
    | Some env -> (
      match cfg.Cfg.anodes.(n) with
      | Cfg.A_stmt s -> Some (stmt_effect env s)
      | Cfg.A_branch (c, b) -> (
        match decide env c with
        | Some d when d <> b -> None  (* this branch can never be taken *)
        | _ -> Some (refine env c b))
      | _ -> Some env)
  in
  let res =
    Solver.run cfg.Cfg.agraph Jedd_dataflow.Forward
      ~init:(fun n -> if n = cfg.Cfg.aentry then Some M.empty else None)
      ~transfer
  in
  let out = ref [] in
  let add ?notes ~code ~severity ~pos msg =
    out := Diag.make ?notes ~code ~severity ~pos msg :: !out
  in
  let rec scan_expr env (e : texpr) =
    (match e.edesc with
    | TJoin (_, l, _, r, _) ->
      if aeval env l = Emp || aeval env r = Emp then
        add ~code:"JL004" ~severity:Diag.Warning ~pos:e.epos
          (Printf.sprintf
             "%s with a statically empty operand always yields an empty \
              relation"
             (if e.ekind = "Compose_expression" then "composition" else "join"))
    | TBinop (Ast.Inter, l, r) ->
      if aeval env l = Emp || aeval env r = Emp then
        add ~code:"JL004" ~severity:Diag.Warning ~pos:e.epos
          "intersection with a statically empty operand always yields an \
           empty relation"
    | TBinop (Ast.Diff, l, r) ->
      if aeval env l = Emp then
        add ~code:"JL004" ~severity:Diag.Warning ~pos:e.epos
          "difference whose left operand is statically empty always yields \
           an empty relation"
      else if aeval env r = Emp then
        add ~code:"JL005" ~severity:Diag.Info ~pos:e.epos
          "subtracting a statically empty relation is a no-op"
    | TBinop (Ast.Union, l, r) ->
      if aeval env l = Emp || aeval env r = Emp then
        add ~code:"JL005" ~severity:Diag.Info ~pos:e.epos
          "union with a statically empty relation is a no-op"
    | _ -> ());
    match e.edesc with
    | TBinop (_, l, r) ->
      scan_expr env l;
      scan_expr env r
    | TReplace (_, c) -> scan_expr env c
    | TJoin (_, l, _, r, _) ->
      scan_expr env l;
      scan_expr env r
    | TCall (_, args) ->
      List.iter
        (function Targ_rel te -> scan_expr env te | Targ_obj _ -> ())
        args
    | TVar _ | TEmpty | TFull | TLiteral _ -> ()
  in
  let scan_stmt env (s : tstmt) =
    match s with
    | TDecl (_, Some e, _)
    | TAssign (_, _, e, _)
    | TOp_assign (_, _, _, e, _)
    | TExpr e | TPrint e
    | TReturn (Some e, _) -> scan_expr env e
    | _ -> ()
  in
  let rec scan_cond env (c : tcond) =
    match c with
    | TBool _ -> ()
    | TNot c -> scan_cond env c
    | TAnd (a, b) | TOr (a, b) ->
      scan_cond env a;
      scan_cond env b
    | TCmp_eq (l, r) | TCmp_ne (l, r) -> (
      scan_expr env l;
      scan_expr env r;
      let verdict =
        match (c, decide_cmp env l r) with
        | TCmp_ne _, Some b -> Some (not b)
        | _, d -> d
      in
      match verdict with
      | Some b ->
        add ~code:"JL006" ~severity:Diag.Warning ~pos:l.epos
          (Printf.sprintf "this emptiness test is always %b" b)
      | None -> ())
  in
  Array.iteri
    (fun n node ->
      match res.Solver.before n with
      | None -> ()  (* unreachable *)
      | Some env -> (
        match node with
        | Cfg.A_stmt s -> scan_stmt env s
        | Cfg.A_cond (c, _) -> scan_cond env c
        | _ -> ()))
    cfg.Cfg.anodes;
  !out

let check (prog : tprogram) : Diag.t list =
  List.concat_map
    (fun q -> check_method (Hashtbl.find prog.methods q))
    prog.method_order
