(* Tests for the dynamic variable-order subsystem: the manager's
   adjacent-swap primitive, the structural invariant checker, and the
   engine's transforms (random swaps, sifting, interleave round-trip,
   window search, auto trigger) — all proved semantics-preserving
   against the pre-reorder state. *)

module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Count = Jedd_bdd.Count
module Fdd = Jedd_bdd.Fdd
module Re = Jedd_reorder.Reorder
module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Phys = Jedd_relation.Physdom
module Attr = Jedd_relation.Attribute
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation
module Suite = Jedd_analyses.Suite
module Workload = Jedd_minijava.Workload

let check_clean what m =
  match M.check_invariants m with
  | [] -> ()
  | errs -> Alcotest.failf "%s: %s" what (String.concat "; " errs)

(* Evaluate under an assignment indexed by stable VARIABLE id — the
   semantic reference that is meaningful on both sides of a reorder. *)
let eval_vars m f assignment =
  let rec go f =
    if f = M.zero then false
    else if f = M.one then true
    else
      let v = M.var_at_level m (M.level m f) in
      if assignment.(v) then go (M.high m f) else go (M.low m f)
  in
  go f

let all_assignments n =
  List.init (1 lsl n) (fun code ->
      Array.init n (fun i -> (code lsr i) land 1 = 1))

(* A random function over [nvars] variables, built from seeded value
   cubes so different seeds give different shapes. *)
let random_function m vars seed =
  let st = Random.State.make [| seed |] in
  let f = ref M.zero in
  for _ = 0 to 10 do
    let cube = ref M.one in
    Array.iter
      (fun v ->
        match Random.State.int st 3 with
        | 0 -> cube := Ops.band m !cube (M.var m (M.level_of_var m v))
        | 1 -> cube := Ops.band m !cube (Ops.bnot m (M.var m (M.level_of_var m v)))
        | _ -> ())
      vars;
    f := Ops.bor m !f !cube
  done;
  !f

(* ------------------------------------------------------------------ *)

let test_swap_preserves_semantics () =
  let nvars = 6 in
  for seed = 0 to 9 do
    let m = M.create ~node_capacity:1024 () in
    let vars = Array.init nvars (fun _ -> M.new_var m) in
    let f = M.addref m (random_function m vars seed) in
    let reference =
      List.map (fun a -> eval_vars m f a) (all_assignments nvars)
    in
    let st = Random.State.make [| seed + 100 |] in
    for _ = 1 to 50 do
      M.swap_adjacent m (Random.State.int st (nvars - 1))
    done;
    check_clean "after random swaps" m;
    let after =
      List.map (fun a -> eval_vars m f a) (all_assignments nvars)
    in
    if reference <> after then
      Alcotest.failf "seed %d: function changed under swaps" seed
  done

let test_swap_involutive () =
  let m = M.create ~node_capacity:1024 () in
  let vars = Array.init 5 (fun _ -> M.new_var m) in
  let f = M.addref m (random_function m vars 7) in
  let nodes_before = Count.nodecount m f in
  M.swap_adjacent m 2;
  M.swap_adjacent m 2;
  for v = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "var %d back at its level" v)
      v (M.level_of_var m vars.(v))
  done;
  Alcotest.(check int) "same canonical size" nodes_before
    (Count.nodecount m f);
  check_clean "after double swap" m

let test_swap_keeps_handles_and_refcounts () =
  let m = M.create ~node_capacity:1024 () in
  let vars = Array.init 6 (fun _ -> M.new_var m) in
  let f = M.addref m (random_function m vars 3) in
  let g = M.addref m (M.addref m (random_function m vars 4)) in
  let rc_f = M.refcount m f and rc_g = M.refcount m g in
  M.swap_adjacent m 0;
  M.swap_adjacent m 3;
  Alcotest.(check int) "f refcount survives" rc_f (M.refcount m f);
  Alcotest.(check int) "g refcount survives" rc_g (M.refcount m g);
  (* a GC after the swaps must not collect either root *)
  M.gc m;
  check_clean "after swaps + gc" m;
  Alcotest.(check bool) "f still evaluable" true
    (let a = Array.make 6 true in
     eval_vars m f a || not (eval_vars m f a))

let test_sift_preserves_relation () =
  let u = U.create () in
  let d = Dom.declare ~name:"D" ~size:16 () in
  let p1 = Phys.declare u ~name:"P1" ~bits:4 in
  let p2 = Phys.declare u ~name:"P2" ~bits:4 in
  let sch =
    Schema.make
      [
        { Schema.attr = Attr.declare ~name:"a" ~domain:d; phys = p1 };
        { Schema.attr = Attr.declare ~name:"b" ~domain:d; phys = p2 };
      ]
  in
  let tuples = [ [ 0; 3 ]; [ 1; 1 ]; [ 5; 12 ]; [ 7; 7 ]; [ 15; 0 ] ] in
  let r = R.of_tuples u sch tuples in
  U.reorder u;
  check_clean "after sift" (U.manager u);
  Alcotest.(check (list (list int))) "tuples preserved" tuples (R.tuples r);
  let events = Re.events (U.reorder_engine u) in
  Alcotest.(check bool) "sift pass recorded" true
    (List.exists (fun (e : Re.event) -> e.strategy = "sift") events)

let test_interleave_round_trip () =
  let u = U.create () in
  let m = U.manager u in
  let d = Dom.declare ~name:"D" ~size:256 () in
  (* Contiguous declaration: the equality BDD is exponential in width. *)
  let p1 = Phys.declare u ~name:"A" ~bits:8 in
  let p2 = Phys.declare u ~name:"B" ~bits:8 in
  let eq = M.addref m (Fdd.equality m (Phys.block p1) (Phys.block p2)) in
  let sat () =
    Count.satcount m eq
      ~over:
        (Array.to_list (Phys.levels p1) @ Array.to_list (Phys.levels p2))
  in
  let contiguous_nodes = Count.nodecount m eq in
  let sat_before = sat () in
  Alcotest.(check int) "equality has 256 models" 256 sat_before;
  let engine = U.reorder_engine u in
  Re.interleave engine "A" "B";
  check_clean "after interleave" m;
  let interleaved_nodes = Count.nodecount m eq in
  Alcotest.(check bool)
    (Printf.sprintf "interleaving shrinks equality (%d -> %d)"
       contiguous_nodes interleaved_nodes)
    true
    (interleaved_nodes < contiguous_nodes);
  Alcotest.(check bool) "interleaved equality is linear" true
    (interleaved_nodes <= 3 * 8);
  Alcotest.(check int) "models preserved" sat_before (sat ());
  Re.deinterleave engine "A" "B";
  check_clean "after deinterleave" m;
  Alcotest.(check int) "models preserved after round trip" sat_before (sat ());
  Alcotest.(check int) "contiguous size restored" contiguous_nodes
    (Count.nodecount m eq);
  ignore d

let test_window_preserves_semantics () =
  let u = U.create () in
  let m = U.manager u in
  let d = Dom.declare ~name:"D" ~size:8 () in
  let p1 = Phys.declare u ~name:"W1" ~bits:3 in
  let p2 = Phys.declare u ~name:"W2" ~bits:3 in
  let p3 = Phys.declare u ~name:"W3" ~bits:3 in
  let sch =
    Schema.make
      [
        { Schema.attr = Attr.declare ~name:"x" ~domain:d; phys = p1 };
        { Schema.attr = Attr.declare ~name:"y" ~domain:d; phys = p2 };
        { Schema.attr = Attr.declare ~name:"z" ~domain:d; phys = p3 };
      ]
  in
  let tuples = [ [ 0; 1; 2 ]; [ 3; 3; 3 ]; [ 7; 0; 5 ] ] in
  let r = R.of_tuples u sch tuples in
  let engine = U.reorder_engine u in
  Re.window engine 2;
  Re.window engine 3;
  check_clean "after window search" m;
  Alcotest.(check (list (list int))) "tuples preserved" tuples (R.tuples r)

let test_heterogeneous_interleaved () =
  let u = U.create () in
  let ps = Phys.declare_interleaved u [ ("WIDE", 5); ("NARROW", 2) ] in
  (match ps with
  | [ wide; narrow ] ->
    Alcotest.(check int) "wide keeps 5 bits" 5 (Phys.width wide);
    Alcotest.(check int) "narrow keeps 2 bits" 2 (Phys.width narrow);
    (* MSB-aligned round-robin: wide gets levels 0,2,4,5,6. *)
    Alcotest.(check (array int))
      "wide levels" [| 0; 2; 4; 5; 6 |] (Phys.levels wide);
    Alcotest.(check (array int)) "narrow levels" [| 1; 3 |]
      (Phys.levels narrow)
  | _ -> Alcotest.fail "expected two physdoms");
  let u2 = U.create () in
  match Phys.declare_interleaved ~pad:true u2 [ ("W", 5); ("N", 2) ] with
  | [ w; n ] ->
    Alcotest.(check int) "pad widens wide" 5 (Phys.width w);
    Alcotest.(check int) "pad widens narrow" 5 (Phys.width n)
  | _ -> Alcotest.fail "expected two physdoms"

let test_auto_trigger () =
  let m = M.create ~node_capacity:4096 () in
  let vars = Array.init 8 (fun _ -> M.new_var m) in
  let engine = Re.create m in
  Re.register_block engine ~name:"blk" ~vars;
  Re.install_auto engine ~threshold:16;
  let f = M.addref m (random_function m vars 11) in
  M.checkpoint m;
  Alcotest.(check bool) "trigger fired" true (Re.auto_fired engine > 0);
  Alcotest.(check bool) "pass recorded on manager" true
    (M.reorder_count m > 0);
  check_clean "after auto reorder" m;
  Re.disable_auto engine;
  let fired = Re.auto_fired engine in
  M.checkpoint m;
  Alcotest.(check int) "disabled trigger stays quiet" fired
    (Re.auto_fired engine);
  ignore f

let test_observability () =
  let u = U.create () in
  let d = Dom.declare ~name:"D" ~size:16 () in
  let p1 = Phys.declare u ~name:"P1" ~bits:4 in
  let p2 = Phys.declare u ~name:"P2" ~bits:4 in
  let sch =
    Schema.make
      [
        { Schema.attr = Attr.declare ~name:"a" ~domain:d; phys = p1 };
        { Schema.attr = Attr.declare ~name:"b" ~domain:d; phys = p2 };
      ]
  in
  let r = R.of_tuples u sch [ [ 1; 2 ]; [ 3; 4 ]; [ 9; 9 ] ] in
  let engine = U.reorder_engine u in
  let h = Re.level_histogram engine in
  Alcotest.(check bool) "histogram sees live nodes" true
    (Array.fold_left ( + ) 0 h > 0);
  let attribution = Re.block_attribution engine in
  Alcotest.(check bool) "both blocks attributed" true
    (List.mem_assoc "P1" attribution && List.mem_assoc "P2" attribution);
  ignore r

let test_suite_fixed_point_stable () =
  let p = Workload.generate Workload.tiny in
  let plain = Suite.run_all p in
  let reordered = Suite.run_all ~reorder:true p in
  Alcotest.(check (list (list int)))
    "points-to fixed point equal" plain.Suite.pt reordered.Suite.pt;
  Alcotest.(check (list (list int)))
    "reachable methods equal" plain.Suite.reachable reordered.Suite.reachable;
  Alcotest.(check (list (list int)))
    "side effects equal" plain.Suite.side_effects
    reordered.Suite.side_effects

let suite =
  [
    Alcotest.test_case "random swaps preserve semantics" `Quick
      test_swap_preserves_semantics;
    Alcotest.test_case "adjacent swap is involutive" `Quick
      test_swap_involutive;
    Alcotest.test_case "handles and refcounts survive swaps" `Quick
      test_swap_keeps_handles_and_refcounts;
    Alcotest.test_case "sifting preserves relation tuples" `Quick
      test_sift_preserves_relation;
    Alcotest.test_case "interleave round trip" `Quick
      test_interleave_round_trip;
    Alcotest.test_case "window search preserves semantics" `Quick
      test_window_preserves_semantics;
    Alcotest.test_case "heterogeneous interleaved widths" `Quick
      test_heterogeneous_interleaved;
    Alcotest.test_case "auto trigger at safe points" `Quick
      test_auto_trigger;
    Alcotest.test_case "histogram and block attribution" `Quick
      test_observability;
    Alcotest.test_case "analysis fixed point stable under reorder" `Quick
      test_suite_fixed_point_stable;
  ]
