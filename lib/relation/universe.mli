(** The universe: one BDD backend plus the registries of domains,
    attributes and physical domains a Jedd program runs against.

    Corresponds to the global state of the paper's Jedd runtime library:
    the BDD package instance behind JNI, the [jedd.Domain],
    [jedd.Attribute] and [jedd.PhysicalDomain] implementations, and the
    profiler hook.

    Every universe carries an in-core [Jedd_bdd.Manager] — the variable
    order and finite-domain blocks always live there — but the engine
    that stores and combines relation BDDs is pluggable ({!Backend}):
    the default [`Incore] backend computes on the manager itself, while
    [`Extmem] streams levelized node files through bounded-memory sweeps
    and can run analyses whose BDDs exceed main memory. *)

type t

(** Per-tag operation-cache activity during one relational operation. *)
type tag_delta = { tag : string; hits : int; misses : int }

(** What one relational operation cost at the BDD layer: operation-cache
    activity (total and per tag, only tags with activity listed), GC /
    node-table-resize work, and — on the external-memory backend — the
    spill traffic of the operation's sweeps. *)
type bdd_delta = {
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  per_tag : tag_delta list;
  gcs : int;
  gc_millis : float;
  grows : int;
  grow_millis : float;
  reorders : int;  (** reorder passes completed during the operation *)
  reorder_swaps : int;  (** adjacent level swaps performed *)
  reorder_millis : float;
  spill_runs : int;  (** sorted priority-queue runs written to disk *)
  spilled_bytes : int;  (** bytes of runs, arc files and node files *)
  pq_peak_bytes : int;
      (** high-water mark of in-memory priority-queue bytes so far
          (a watermark, not a per-operation difference) *)
  io_millis : float;  (** wall milliseconds inside spill-file I/O *)
  mt_cache_hits : int;
      (** terminal-valued apply-cache activity, on the mtbdd backend *)
  mt_cache_misses : int;
  mt_per_tag : tag_delta list;
      (** per-kernel mtbdd cache activity (mt-apply-add, mt-exist-sum, ...) *)
  mt_terminals : int;
      (** distinct terminal values live in the store after the operation
          (a gauge, not a per-operation difference) *)
}

(** What an operation reports to the profiler hook. *)
type op_event = {
  op : string;  (** operation name: "join", "compose", "replace", ... *)
  label : string;  (** source position or user label *)
  millis : float;
  operand_nodes : int list;  (** BDD node count of each operand *)
  result_nodes : int;
  result_tuples : int;  (** [size()] of the result relation *)
  shapes : (int array * int array list) option;
      (** result shape and operand shapes, when shape profiling is on *)
  bdd : bdd_delta option;
      (** BDD-layer costs of this operation, when profiling is on *)
}

type bdd_snapshot
(** Opaque snapshot of the monotone cache/GC/spill counters. *)

val bdd_snapshot : t -> bdd_snapshot
val bdd_delta_since : t -> bdd_snapshot -> bdd_delta

type profile_level = Off | Counts | Shapes

val create :
  ?node_capacity:int -> ?node_limit:int -> ?backend:Backend.kind -> unit -> t
(** [create ()] makes a universe over a fresh manager.  [backend]
    selects the relation engine; when omitted it is read from the
    [JEDD_BACKEND] environment variable (["incore"] or ["extmem"],
    default in-core).  [node_limit] caps the manager's node table —
    exceeding it raises [Jedd_bdd.Manager.Out_of_nodes]
    ({!set_node_limit} adjusts it later). *)

val manager : t -> Jedd_bdd.Manager.t
(** The in-core manager: variable-order authority for both backends. *)

val backend : t -> Backend.t
val backend_kind : t -> Backend.kind

val set_node_limit : t -> int option -> unit
(** Install or remove the in-core node budget at runtime. *)

val reorder_engine : t -> Jedd_reorder.Reorder.t
(** The universe's variable-order optimizer.  Physical domains register
    their blocks with it on declaration ({!Physdom.declare}). *)

val register_block : t -> name:string -> vars:int array -> unit
(** Register a block of variables with the reorder engine so it is moved
    as a unit.  Called by {!Physdom}; exposed for direct Fdd users. *)

val reorder : ?trigger:string -> t -> unit
(** Run one sifting pass over the registered blocks now (e.g. between
    fixpoint phases).  [trigger] defaults to ["explicit"] and is
    recorded in the pass event.  A no-op on an [`Extmem] universe:
    levels are baked into its node files, so the order is fixed. *)

val set_auto_reorder : t -> int option -> unit
(** [set_auto_reorder u (Some n)] arms the safe-point trigger: a sifting
    pass fires at the next {!checkpoint} once [n] allocated nodes are
    reached, re-arming itself above the surviving population.  [None]
    disarms it.  A no-op on an [`Extmem] universe. *)

val uid : t -> int
(** A unique id per universe, used to key per-universe side tables. *)

val set_profile_level : t -> profile_level -> unit
val profile_level : t -> profile_level

val set_on_op : t -> (op_event -> unit) option -> unit
val emit_op : t -> op_event -> unit
(** Used by the relation operations to publish profile events. *)

val next_scratch_name : t -> string
(** Fresh name generator for scratch physical domains the runtime
    allocates when it must separate colliding attributes on the fly. *)

val checkpoint : t -> unit
(** Give the backend a safe point to garbage-collect. *)

val freeze : t -> unit
(** Flip the universe into read-only serving mode: disarms the
    auto-reorder trigger and freezes the backend
    ([Jedd_bdd.Manager.freeze] — compaction, then no refcount traffic,
    GC or reordering; mutation raises [Jedd_bdd.Manager.Frozen]).
    One-way; idempotent.  [Invalid_argument] while parallelism is
    enabled or on an [`Extmem] universe. *)

val frozen : t -> bool

(** {2 Parallel execution}

    With parallelism enabled, relation joins, compositions, unions,
    differences and projections run on a work-stealing pool of OCaml 5
    domains ([Jedd_bdd.Par]) against the shared node store; results are
    bit-identical to sequential runs.  The manager is switched into
    parallel mode for the whole enablement window, so GC and dynamic
    reordering become stop-the-world phases at safe points. *)

val enable_parallel : ?jobs:int -> t -> unit
(** Switch the universe's relational operations onto a pool of [jobs]
    domains (default [Jedd_bdd.Par.default_jobs ()], i.e. the
    recommended domain count).  [Invalid_argument] on an [`Extmem]
    universe (that backend is single-domain) or if already enabled. *)

val disable_parallel : t -> unit
(** Shut the pool down and return to sequential mode.  Idempotent. *)

val jobs : t -> int
(** Current parallel width: [1] when parallelism is off. *)

val with_parallel : ?jobs:int -> t -> (unit -> 'a) -> 'a
(** [with_parallel u f] runs [f] with parallelism enabled, disabling it
    afterwards even on exceptions. *)

val cleanup : t -> unit
(** Release backend resources eagerly — disables parallelism and removes
    an [`Extmem] universe's spill directory (also done by finalisers and
    at exit). *)
