module U = Jedd_relation.Universe

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let shape_svg shape =
  let n = Array.length shape in
  let maxc = Array.fold_left max 1 shape in
  let bar_w = 6 and height = 80 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg width=\"%d\" height=\"%d\" style=\"background:#f8f8f8\">"
       (n * bar_w) height);
  Array.iteri
    (fun i c ->
      if c > 0 then
        let h = max 1 (c * (height - 4) / maxc) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
              fill=\"#4477aa\"><title>level %d: %d nodes</title></rect>"
             (i * bar_w) (height - h) (bar_w - 1) h i c))
    shape;
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

(* Variable-order section: the live-node histogram over the current
   order, node attribution per physical-domain block, and the log of
   reorder passes — the §3.3.1 ordering lever made observable. *)
let order_html engine =
  let module R = Jedd_reorder.Reorder in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "<h2>Variable order</h2>";
  out "<h3>Live nodes per level</h3>%s"
    (shape_svg (R.level_histogram engine));
  out
    "<h3>Per-block attribution</h3><table><tr><th class=l>block</th>\
     <th>live nodes</th></tr>";
  List.iter
    (fun (name, nodes) ->
      out "<tr><td class=l>%s</td><td>%d</td></tr>" (escape_html name) nodes)
    (R.block_attribution engine);
  out "</table>";
  let events = R.events engine in
  out "<h3>Reorder passes</h3>";
  if events = [] then out "<p>none</p>"
  else begin
    out
      "<table><tr><th class=l>trigger</th><th class=l>strategy</th>\
       <th>swaps</th><th>aborts</th><th>nodes before</th><th>nodes \
       after</th><th>ms</th></tr>";
    List.iter
      (fun (e : R.event) ->
        out
          "<tr><td class=l>%s</td><td class=l>%s</td><td>%d</td><td>%d</td>\
           <td>%d</td><td>%d</td><td>%.3f</td></tr>"
          (escape_html e.trigger) (escape_html e.strategy) e.swaps e.aborts
          e.nodes_before e.nodes_after e.millis)
      events;
    out "</table>"
  end;
  Buffer.contents buf

(* Parallelism section: the counters of [Recorder.parallelism_stats]
   rendered as a name/value table — pool width, fork/steal traffic,
   stop-the-world phases, barrier waits, chunk refills and any live
   per-domain cache slots. *)
let parallelism_html u =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "<h2>Parallelism</h2><table><tr><th class=l>counter</th>\
       <th>value</th></tr>";
  List.iter
    (fun (name, v) ->
      let s =
        if Float.is_integer v then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.3f" v
      in
      out "<tr><td class=l>%s</td><td>%s</td></tr>" (escape_html name) s)
    (Recorder.parallelism_stats u);
  out "</table>";
  Buffer.contents buf

let parallelism_csv u =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "counter,value\n";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s,%g\n" name v))
    (Recorder.parallelism_stats u);
  Buffer.contents buf

let anchor op label =
  let clean s =
    String.map (fun c -> if c = ' ' || c = ':' || c = ',' then '_' else c) s
  in
  Printf.sprintf "op_%s_%s" (clean op) (clean label)

let to_html ?engine ?universe rec_ =
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>Jedd \
     profile</title><style>body{font-family:sans-serif;margin:2em} \
     table{border-collapse:collapse} td,th{border:1px solid \
     #ccc;padding:4px 10px;text-align:right} th{background:#eee} \
     td.l,th.l{text-align:left}</style></head><body>";
  out "<h1>Jedd profiler report</h1>";
  out "<p>%d operations recorded.</p>" (Recorder.total_operations rec_);
  (* Overview: the paper's top-level profile view, plus the BDD-layer
     cache behaviour attributed to each relational operation. *)
  let summaries = Recorder.summaries rec_ in
  (* The terminal-store columns appear only when some operation ran on
     the mtbdd backend — boolean-only profiles keep the original table. *)
  let has_mt =
    List.exists
      (fun (s : Recorder.summary) ->
        s.mt_cache_hits + s.mt_cache_misses + s.mt_terminals > 0)
      summaries
  in
  out "<h2>Overview</h2><table><tr><th class=l>operation</th><th \
       class=l>label</th><th>executions</th><th>total ms</th><th>max \
       result nodes</th><th>cache hits</th><th>cache misses</th><th>hit \
       rate</th><th>GCs</th><th>GC ms</th><th>reorders</th><th>swap \
       count</th><th>reorder ms</th>%s</tr>"
    (if has_mt then
       "<th>terminal cache hits</th><th>terminal cache misses</th>\
        <th>terminal hit rate</th><th>distinct terminals</th>"
     else "");
  let hit_rate hits misses =
    if hits + misses = 0 then "-"
    else
      Printf.sprintf "%.1f%%"
        (100.0 *. float_of_int hits /. float_of_int (hits + misses))
  in
  List.iter
    (fun (s : Recorder.summary) ->
      out
        "<tr><td class=l><a href=\"#%s\">%s</a></td><td \
         class=l>%s</td><td>%d</td><td>%.3f</td><td>%d</td><td>%d</td>\
         <td>%d</td><td>%s</td><td>%d</td><td>%.3f</td><td>%d</td>\
         <td>%d</td><td>%.3f</td>%s</tr>"
        (anchor s.op s.label) (escape_html s.op) (escape_html s.label)
        s.executions s.total_millis s.max_result_nodes s.cache_hits
        s.cache_misses
        (hit_rate s.cache_hits s.cache_misses)
        s.gcs s.gc_millis s.reorders s.reorder_swaps s.reorder_millis
        (if has_mt then
           Printf.sprintf "<td>%d</td><td>%d</td><td>%s</td><td>%d</td>"
             s.mt_cache_hits s.mt_cache_misses
             (hit_rate s.mt_cache_hits s.mt_cache_misses)
             s.mt_terminals
         else ""))
    summaries;
  out "</table>";
  (* Drill-down: one section per operation. *)
  List.iter
    (fun (s : Recorder.summary) ->
      out "<h2 id=\"%s\">%s %s</h2>" (anchor s.op s.label) (escape_html s.op)
        (escape_html s.label);
      out
        "<table><tr><th>#</th><th>ms</th><th>operand nodes</th><th>result \
         nodes</th><th>result tuples</th><th class=l>cache (per \
         kernel)</th><th class=l>shape</th></tr>";
      List.iter
        (fun (r : Recorder.row) ->
          let e = r.event in
          if e.U.op = s.op && e.U.label = s.label then
            out
              "<tr><td>%d</td><td>%.3f</td><td>%s</td><td>%d</td><td>%d</td>\
               <td class=l>%s</td><td class=l>%s</td></tr>"
              r.seq e.U.millis
              (String.concat ", " (List.map string_of_int e.U.operand_nodes))
              e.U.result_nodes e.U.result_tuples
              (match e.U.bdd with
              | Some d ->
                (* boolean tags first, then the mt-* terminal kernels *)
                String.concat ", "
                  (List.map
                     (fun (t : U.tag_delta) ->
                       Printf.sprintf "%s %d/%d" (escape_html t.tag) t.hits
                         (t.hits + t.misses))
                     (d.U.per_tag @ d.U.mt_per_tag))
                ^ (if d.U.gcs > 0 then
                     Printf.sprintf " (%d GC, %.2f ms)" d.U.gcs d.U.gc_millis
                   else "")
                ^
                if d.U.mt_terminals > 0 then
                  Printf.sprintf " [%d terminals]" d.U.mt_terminals
                else ""
              | None -> "")
              (match e.U.shapes with
              | Some (result_shape, _) -> shape_svg result_shape
              | None -> ""))
        (Recorder.rows rec_);
      out "</table>")
    summaries;
  (* External memory: spill traffic of the out-of-core backend, one row
     per (operation, label) with any disk activity.  Absent entirely for
     pure in-core runs. *)
  let pq_peak =
    List.fold_left
      (fun acc (r : Recorder.row) ->
        match r.event.U.bdd with
        | Some d -> max acc d.U.pq_peak_bytes
        | None -> acc)
      0 (Recorder.rows rec_)
  in
  let spilling =
    List.filter
      (fun (s : Recorder.summary) ->
        s.spill_runs > 0 || s.spilled_bytes > 0 || s.io_millis > 0.0)
      summaries
  in
  if spilling <> [] || pq_peak > 0 then begin
    out "<h2>External memory</h2>";
    out
      "<p>Priority-queue peak: %d bytes in memory.  Totals: %d sorted runs,        %d bytes spilled, %.3f ms in spill-file I/O.</p>"
      pq_peak
      (List.fold_left (fun a (s : Recorder.summary) -> a + s.spill_runs) 0 spilling)
      (List.fold_left (fun a (s : Recorder.summary) -> a + s.spilled_bytes) 0 spilling)
      (List.fold_left (fun a (s : Recorder.summary) -> a +. s.io_millis) 0.0 spilling);
    if spilling <> [] then begin
      out
        "<table><tr><th class=l>operation</th><th class=l>label</th>\
         <th>spill runs</th><th>spilled bytes</th><th>I/O ms</th></tr>";
      List.iter
        (fun (s : Recorder.summary) ->
          out
            "<tr><td class=l>%s</td><td class=l>%s</td><td>%d</td>\
             <td>%d</td><td>%.3f</td></tr>"
            (escape_html s.op) (escape_html s.label) s.spill_runs
            s.spilled_bytes s.io_millis)
        spilling;
      out "</table>"
    end
  end;
  (match universe with
  | Some u -> Buffer.add_string buf (parallelism_html u)
  | None -> ());
  (match engine with
  | Some e -> Buffer.add_string buf (order_html e)
  | None -> ());
  out "</body></html>";
  Buffer.contents buf

let to_csv rec_ =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "seq,op,label,millis,operand_nodes,result_nodes,result_tuples,\
     cache_hits,cache_misses,gcs,gc_millis,reorders,reorder_swaps,\
     reorder_millis,spill_runs,spilled_bytes,pq_peak_bytes,io_millis,\
     mt_cache_hits,mt_cache_misses,mt_distinct_terminals\n";
  List.iter
    (fun (r : Recorder.row) ->
      let e = r.event in
      let hits, misses, gcs, gc_ms, reorders, rswaps, r_ms =
        match e.U.bdd with
        | Some d ->
          ( d.U.cache_hits,
            d.U.cache_misses,
            d.U.gcs,
            d.U.gc_millis,
            d.U.reorders,
            d.U.reorder_swaps,
            d.U.reorder_millis )
        | None -> (0, 0, 0, 0.0, 0, 0, 0.0)
      in
      let sruns, sbytes, pq_peak, io_ms =
        match e.U.bdd with
        | Some d ->
          (d.U.spill_runs, d.U.spilled_bytes, d.U.pq_peak_bytes, d.U.io_millis)
        | None -> (0, 0, 0, 0.0)
      in
      let mt_hits, mt_misses, mt_terms =
        match e.U.bdd with
        | Some d -> (d.U.mt_cache_hits, d.U.mt_cache_misses, d.U.mt_terminals)
        | None -> (0, 0, 0)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%d,%s,\"%s\",%.4f,\"%s\",%d,%d,%d,%d,%d,%.4f,%d,%d,%.4f,%d,%d,%d,%.4f,%d,%d,%d\n"
           r.seq e.U.op e.U.label e.U.millis
           (String.concat ";" (List.map string_of_int e.U.operand_nodes))
           e.U.result_nodes e.U.result_tuples hits misses gcs gc_ms reorders
           rswaps r_ms sruns sbytes pq_peak io_ms mt_hits mt_misses mt_terms))
    (Recorder.rows rec_);
  Buffer.contents buf

let escape_sql s =
  String.concat "''" (String.split_on_char '\'' s)

let to_sql rec_ =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "CREATE TABLE IF NOT EXISTS jedd_ops (seq INTEGER PRIMARY KEY, op TEXT, \
     label TEXT, millis REAL, operand_nodes TEXT, result_nodes INTEGER, \
     result_tuples INTEGER, cache_hits INTEGER, cache_misses INTEGER, \
     gcs INTEGER, gc_millis REAL, reorders INTEGER, reorder_swaps INTEGER, \
     reorder_millis REAL);\n";
  List.iter
    (fun (r : Recorder.row) ->
      let e = r.event in
      let hits, misses, gcs, gc_ms, reorders, rswaps, r_ms =
        match e.U.bdd with
        | Some d ->
          ( d.U.cache_hits,
            d.U.cache_misses,
            d.U.gcs,
            d.U.gc_millis,
            d.U.reorders,
            d.U.reorder_swaps,
            d.U.reorder_millis )
        | None -> (0, 0, 0, 0.0, 0, 0, 0.0)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "INSERT INTO jedd_ops VALUES (%d, '%s', '%s', %.4f, '%s', %d, %d, \
            %d, %d, %d, %.4f, %d, %d, %.4f);\n"
           r.seq (escape_sql e.U.op) (escape_sql e.U.label) e.U.millis
           (String.concat ";" (List.map string_of_int e.U.operand_nodes))
           e.U.result_nodes e.U.result_tuples hits misses gcs gc_ms reorders
           rswaps r_ms))
    (Recorder.rows rec_);
  Buffer.contents buf

let write_files ?engine ?universe rec_ ~dir ~prefix =
  let write ext content =
    let path = Filename.concat dir (prefix ^ "." ^ ext) in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  [ write "html" (to_html ?engine ?universe rec_); write "csv" (to_csv rec_);
    write "sql" (to_sql rec_) ]
  @
  match universe with
  | Some u -> [ write "parallelism.csv" (parallelism_csv u) ]
  | None -> []
