module G = Jedd_dataflow.Graph

type loop = {
  header : int;
  back_edges : (int * int) list;
  body : int list;
}

let reachable g ~entry =
  let n = G.size g in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (G.succs g i)
    end
  in
  if n > 0 then go entry;
  seen

(* Dominators as a forward dataflow problem on the monotone solver: the
   lattice is node sets ordered by reverse inclusion, [All] (= the full
   set) at the bottom, join = intersection, transfer n S = S ∪ {n}.
   The fixpoint at a reachable node is exactly its dominator set. *)
module IS = Set.Make (Int)

module Dom_lattice = struct
  type t = All | S of IS.t

  let bottom = All

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | S a, S b -> S (IS.inter a b)

  let equal a b =
    match (a, b) with
    | All, All -> true
    | S a, S b -> IS.equal a b
    | _ -> false
end

module Dom_solver = Jedd_dataflow.Solver (Dom_lattice)

let dominators g ~entry =
  let n = G.size g in
  let res =
    Dom_solver.run g Jedd_dataflow.Forward
      ~init:(fun i ->
        if i = entry then Dom_lattice.S IS.empty else Dom_lattice.All)
      ~transfer:(fun i fact ->
        match fact with
        | Dom_lattice.All -> Dom_lattice.All
        | Dom_lattice.S s -> Dom_lattice.S (IS.add i s))
  in
  let live = reachable g ~entry in
  Array.init n (fun i ->
      let row = Array.make n false in
      (if live.(i) then
         match res.Dom_solver.after i with
         | Dom_lattice.S s -> IS.iter (fun m -> row.(m) <- true) s
         | Dom_lattice.All -> ());
      row)

let natural_loops g ~entry =
  let n = G.size g in
  let live = reachable g ~entry in
  let dom = dominators g ~entry in
  (* back edge: t -> h with h dominating t (both reachable) *)
  let back = ref [] in
  for t = 0 to n - 1 do
    if live.(t) then
      List.iter (fun h -> if live.(h) && dom.(t).(h) then back := (t, h) :: !back) (G.succs g t)
  done;
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (t, h) ->
      Hashtbl.replace by_header h (t :: (Option.value (Hashtbl.find_opt by_header h) ~default:[])))
    !back;
  let headers = List.sort_uniq compare (Hashtbl.fold (fun h _ acc -> h :: acc) by_header []) in
  List.map
    (fun h ->
      let tails = List.sort_uniq compare (Hashtbl.find by_header h) in
      (* body: h plus everything reaching a tail without passing h,
         found by reverse search from the tails stopping at h *)
      let in_body = Array.make n false in
      in_body.(h) <- true;
      let rec up i =
        if not in_body.(i) then begin
          in_body.(i) <- true;
          List.iter up (G.preds g i)
        end
      in
      List.iter up tails;
      let body = ref [] in
      for i = n - 1 downto 0 do
        if in_body.(i) then body := i :: !body
      done;
      {
        header = h;
        back_edges = List.map (fun t -> (t, h)) tails;
        body = !body;
      })
    headers

let nest_depth g loops =
  let depth = Array.make (G.size g) 0 in
  List.iter
    (fun l -> List.iter (fun i -> depth.(i) <- depth.(i) + 1) l.body)
    loops;
  depth
