(* Tests for the async serving front end (lib/serve): HTTP/1.1 framing
   edge cases against the parser directly, then end-to-end checks over
   real sockets — the three transports answer bit-identically at any
   worker count, a frozen universe rejects mutation cleanly, the
   result cache warms up, and pipelined HTTP requests come back in
   order. *)

module Json = Jedd_server.Json
module Client = Jedd_server.Client
module Serve = Jedd_serve.Serve
module Http = Jedd_serve.Http
module Snapshot = Jedd_store.Snapshot
module Cas = Jedd_store.Cas
module Delta = Jedd_store.Delta
module Suite = Jedd_analyses.Suite
module Live = Jedd_analyses.Live
module Workload = Jedd_minijava.Workload

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* -- HTTP framing (no socket) -------------------------------------------- *)

let post body =
  Printf.sprintf
    "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
    (String.length body) body

let test_http_parse () =
  (match Http.parse_request (post "{\"verb\":\"ping\"}") with
  | Http.Complete (r, consumed) ->
    check Alcotest.string "method" "POST" r.Http.meth;
    check Alcotest.string "path" "/query" r.Http.path;
    check Alcotest.string "body" "{\"verb\":\"ping\"}" r.Http.body;
    checkb "1.1 defaults to keep-alive" true r.Http.keep_alive;
    checki "whole request consumed" (String.length (post "{\"verb\":\"ping\"}"))
      consumed
  | _ -> Alcotest.fail "complete request did not parse");
  (* header values are trimmed, names lowercased *)
  (match
     Http.parse_request "GET /ping HTTP/1.1\r\nX-Weird:   spaced \r\n\r\n"
   with
  | Http.Complete (r, _) ->
    check
      Alcotest.(option string)
      "header access" (Some "spaced") (Http.header r "x-weird")
  | _ -> Alcotest.fail "GET did not parse");
  (* explicit Connection handling, and the 1.0 default *)
  (match Http.parse_request (post "x" ^ "") with
  | Http.Complete (r, _) -> checkb "keep-alive" true r.Http.keep_alive
  | _ -> Alcotest.fail "parse");
  (match
     Http.parse_request
       "POST / HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
   with
  | Http.Complete (r, _) -> checkb "close honoured" false r.Http.keep_alive
  | _ -> Alcotest.fail "parse");
  (match Http.parse_request "GET / HTTP/1.0\r\n\r\n" with
  | Http.Complete (r, _) -> checkb "1.0 defaults to close" false r.Http.keep_alive
  | _ -> Alcotest.fail "parse")

let test_http_partial_and_pipelined () =
  let full = post "{\"verb\":\"ping\"}" in
  (* every proper prefix is Incomplete, never Invalid and never a
     short Complete *)
  for n = 0 to String.length full - 1 do
    match Http.parse_request (String.sub full 0 n) with
    | Http.Incomplete -> ()
    | Http.Complete _ -> Alcotest.failf "prefix %d parsed as complete" n
    | Http.Invalid m -> Alcotest.failf "prefix %d invalid: %s" n m
  done;
  (* two pipelined requests: the first parse consumes exactly the
     first request, the remainder parses as the second *)
  let second = post "{\"verb\":\"version\"}" in
  let data = full ^ second in
  match Http.parse_request data with
  | Http.Complete (r1, consumed) ->
    check Alcotest.string "first body" "{\"verb\":\"ping\"}" r1.Http.body;
    let rest = String.sub data consumed (String.length data - consumed) in
    (match Http.parse_request rest with
    | Http.Complete (r2, consumed2) ->
      check Alcotest.string "second body" "{\"verb\":\"version\"}" r2.Http.body;
      checki "nothing left over" (String.length rest) consumed2
    | _ -> Alcotest.fail "second pipelined request did not parse")
  | _ -> Alcotest.fail "first pipelined request did not parse"

let test_http_rejects () =
  let invalid s =
    match Http.parse_request s with
    | Http.Invalid _ -> ()
    | Http.Complete _ -> Alcotest.failf "accepted %S" s
    | Http.Incomplete -> Alcotest.failf "%S treated as incomplete" s
  in
  invalid "NONSENSE\r\n\r\n";
  invalid "GET / HTTP/2.0\r\n\r\n";
  invalid "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
  invalid "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n";
  invalid "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
  (* oversized headers are rejected even before the blank line shows up *)
  invalid ("GET / HTTP/1.1\r\nX-Pad: " ^ String.make 9000 'a');
  invalid ("GET / HTTP/1.1\r\nX-Pad: " ^ String.make 9000 'a' ^ "\r\n\r\n")

(* -- live-server fixture -------------------------------------------------- *)

let fixture_counter = ref 0

(* Serialize the tiny-workload snapshot and reload it — the reload is
   what jeddd does, and ~freeze lands the universe read-only. *)
let with_serve ?(workers = 2) ?(frozen = true) f =
  let p = Workload.generate Workload.tiny in
  let inst, _ = Suite.run_combined p in
  let bytes = Snapshot.to_bytes (Suite.snapshot inst) in
  let snap = Snapshot.of_bytes ~freeze:frozen bytes in
  let hash = Digest.to_hex (Digest.string bytes) in
  incr fixture_counter;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jedd-serve-test-%d-%d.sock" (Unix.getpid ())
         !fixture_counter)
  in
  if Sys.file_exists sock then Sys.remove sock;
  let config =
    {
      Serve.default_config with
      unix_path = Some sock;
      tcp = Some ("127.0.0.1", 0);
      http = Some ("127.0.0.1", 0);
      workers;
    }
  in
  let server = Serve.create ~config ~universe_hash:hash snap in
  let th = Thread.create Serve.run server in
  let tcp_port = Option.get (Serve.tcp_port server) in
  let http_port = Option.get (Serve.http_port server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f ~sock ~tcp_port ~http_port)

let q verb fields = Json.Obj (("verb", Json.String verb) :: fields)

let probe_queries =
  [
    q "ping" [];
    q "relations" [];
    q "count" [ ("rel", Json.String "PointsTo.pt") ];
    q "tuples" [ ("rel", Json.String "PointsTo.pt"); ("limit", Json.Int 5) ];
  ]

(* Responses (as strings) to the probe queries over each transport. *)
let probe_all ~sock ~tcp_port ~http_port =
  let over connect is_http =
    let c = connect () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    List.map
      (fun query ->
        Json.to_string
          (if is_http then
             Http.client_request ~ic:c.Client.ic ~oc:c.Client.oc query
           else Client.request c query))
      probe_queries
  in
  [
    over (fun () -> Client.connect ~retries:10 sock) false;
    over (fun () -> Client.connect_tcp ~retries:10 "127.0.0.1" tcp_port) false;
    over
      (fun () -> Client.connect_tcp ~retries:10 "127.0.0.1" http_port)
      true;
  ]

(* -- end-to-end ----------------------------------------------------------- *)

let test_differential () =
  let single =
    with_serve ~workers:1 (fun ~sock ~tcp_port ~http_port ->
        probe_all ~sock ~tcp_port ~http_port)
  in
  let multi =
    with_serve ~workers:2 (fun ~sock ~tcp_port ~http_port ->
        probe_all ~sock ~tcp_port ~http_port)
  in
  let reference = List.hd single in
  List.iteri
    (fun i rs ->
      checkb
        (Printf.sprintf "single-worker transport %d matches unix" i)
        true (rs = reference))
    single;
  List.iteri
    (fun i rs ->
      checkb
        (Printf.sprintf "two-worker transport %d matches single-worker" i)
        true (rs = reference))
    multi

let test_frozen_rejects_mutation () =
  with_serve ~workers:2 (fun ~sock ~tcp_port:_ ~http_port:_ ->
      let c = Client.connect ~retries:10 sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let resp = Client.request c (q "reorder" []) in
      (match Json.member "ok" resp with
      | Some (Json.Bool false) -> ()
      | _ -> Alcotest.failf "reorder on a frozen universe succeeded: %s"
               (Json.to_string resp));
      match Json.member "error" resp with
      | Some (Json.String msg) ->
        checkb "error names the frozen state" true
          (let lower = String.lowercase_ascii msg in
           let rec find i =
             i + 6 <= String.length lower
             && (String.sub lower i 6 = "frozen" || find (i + 1))
           in
           find 0)
      | _ -> Alcotest.fail "no error message");
  (* and an unfrozen server accepts the same verb *)
  with_serve ~workers:1 ~frozen:false (fun ~sock ~tcp_port:_ ~http_port:_ ->
      let c = Client.connect ~retries:10 sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let resp = Client.request c (q "reorder" []) in
      match Json.member "ok" resp with
      | Some (Json.Bool true) -> ()
      | _ ->
        Alcotest.failf "reorder on an unfrozen universe failed: %s"
          (Json.to_string resp))

let test_cache_and_stats () =
  with_serve ~workers:2 (fun ~sock ~tcp_port:_ ~http_port:_ ->
      let c = Client.connect ~retries:10 sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let query = q "count" [ ("rel", Json.String "PointsTo.pt") ] in
      let r1 = Client.request c query in
      let r2 = Client.request c query in
      checkb "repeat answers agree" true
        (Json.to_string r1 = Json.to_string r2);
      let stats = Client.request c (q "stats" []) in
      let get path obj =
        match Json.member path obj with
        | Some v -> v
        | None ->
          Alcotest.failf "stats lacks %S: %s" path (Json.to_string stats)
      in
      (match get "result_cache" stats with
      | Json.Obj _ as rc -> (
        match Json.member "hits" rc with
        | Some (Json.Int h) -> checkb "cache hit recorded" true (h >= 1)
        | _ -> Alcotest.fail "result_cache lacks hits")
      | _ -> Alcotest.fail "result_cache is not an object");
      (match get "latency" stats with
      | Json.Obj kvs -> checkb "per-verb latency present" true (kvs <> [])
      | _ -> Alcotest.fail "latency is not an object");
      (match get "workers" stats with
      | Json.Int w -> checki "worker count reported" 2 w
      | _ -> Alcotest.fail "workers is not an int");
      match get "frozen" stats with
      | Json.Bool b -> checkb "frozen reported" true b
      | _ -> Alcotest.fail "frozen is not a bool")

(* Two POSTs written back-to-back before reading anything: the server
   must answer both, in order, on the one connection. *)
let test_http_pipelining_live () =
  with_serve ~workers:2 (fun ~sock:_ ~tcp_port:_ ~http_port ->
      let c = Client.connect_tcp ~retries:10 "127.0.0.1" http_port in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let body1 = Json.to_string (q "ping" []) in
      let body2 =
        Json.to_string (q "count" [ ("rel", Json.String "PointsTo.pt") ])
      in
      let raw body =
        Printf.sprintf
          "POST /query HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
          (String.length body) body
      in
      output_string c.Client.oc (raw body1 ^ raw body2);
      flush c.Client.oc;
      let read_response () =
        let status = input_line c.Client.ic in
        let code =
          match String.split_on_char ' ' (String.trim status) with
          | _ :: code :: _ -> int_of_string code
          | _ -> Alcotest.failf "bad status line %S" status
        in
        let content_length = ref 0 in
        let rec headers () =
          let line = String.trim (input_line c.Client.ic) in
          if line <> "" then begin
            (match String.index_opt line ':' with
            | Some i
              when String.lowercase_ascii (String.sub line 0 i)
                   = "content-length" ->
              content_length :=
                int_of_string
                  (String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)))
            | _ -> ());
            headers ()
          end
        in
        headers ();
        let body = really_input_string c.Client.ic !content_length in
        (code, Json.of_string body)
      in
      let code1, resp1 = read_response () in
      let code2, resp2 = read_response () in
      checki "first response 200" 200 code1;
      checki "second response 200" 200 code2;
      checkb "first is the ping reply" true
        (Json.member "pong" resp1 <> None
        || Json.member "ok" resp1 = Some (Json.Bool true));
      (match Json.member "tuples" resp2 with
      | Some (Json.Int n) -> checkb "second is the count reply" true (n > 0)
      | _ ->
        Alcotest.failf "second reply is not a count: %s"
          (Json.to_string resp2)))

let test_http_oversized_header_live () =
  with_serve ~workers:1 (fun ~sock:_ ~tcp_port:_ ~http_port ->
      let c = Client.connect_tcp ~retries:10 "127.0.0.1" http_port in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      output_string c.Client.oc
        ("GET / HTTP/1.1\r\nX-Pad: " ^ String.make 10000 'a');
      flush c.Client.oc;
      let status = input_line c.Client.ic in
      checkb "431 for oversized headers" true
        (match String.split_on_char ' ' (String.trim status) with
        | _ :: code :: _ -> code = "431"
        | _ -> false))

(* -- live updates and generation swaps ------------------------------------ *)

(* A serving stack around a mutable Live session: frozen generation-0
   copy of the shadow universe, a CAS store publishing under ref
   "live", and the updater thread enabled. *)
let with_live_serve ?(workers = 2) f =
  let p = Workload.generate Workload.tiny in
  let session = Live.create p in
  let bytes = Snapshot.to_bytes (Suite.snapshot (Live.inst session)) in
  let hash = Digest.to_hex (Digest.string bytes) in
  let snap = Snapshot.of_bytes ~freeze:true bytes in
  let root = Filename.temp_file "jedd_cas" "" in
  Sys.remove root;
  let cas = Cas.open_ root in
  Cas.tag cas "live" (Cas.put cas bytes);
  incr fixture_counter;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jedd-serve-live-%d-%d.sock" (Unix.getpid ())
         !fixture_counter)
  in
  if Sys.file_exists sock then Sys.remove sock;
  let config = { Serve.default_config with unix_path = Some sock; workers } in
  let live_cfg =
    { Serve.session; initial_bytes = bytes; publish = Some (cas, "live") }
  in
  let server = Serve.create ~config ~live:live_cfg ~universe_hash:hash snap in
  let th = Thread.create Serve.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop server;
      Thread.join th;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f ~sock ~cas ~session)

let int_member what key obj =
  match Json.member key obj with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "%s: no integer %S in %s" what key (Json.to_string obj)

let test_live_update_swaps_generation () =
  with_live_serve (fun ~sock ~cas ~session ->
      let c = Client.connect ~retries:10 sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let count () =
        int_member "count" "tuples"
          (Client.request c (q "count" [ ("rel", Json.String "PointsTo.pt") ]))
      in
      let generation () =
        int_member "stats" "generation" (Client.request c (q "stats" []))
      in
      checki "starts at generation 0" 0 (generation ());
      let before = count () in
      (* a fresh allocation must add at least one points-to tuple *)
      let update edit_fields =
        Client.request c
          (Json.Obj
             [
               ("verb", Json.String "update");
               ("edit", Json.Obj edit_fields);
               ("timeout_ms", Json.Int 120_000);
             ])
      in
      let resp =
        update
          [
            ("op", Json.String "add_alloc");
            ("var", Json.Int 0);
            ("cls", Json.Int 0);
          ]
      in
      checkb "update succeeded" true
        (Json.member "ok" resp = Some (Json.Bool true));
      checki "reply names generation 1" 1 (int_member "update" "generation" resp);
      (match Json.member "mode" resp with
      | Some (Json.String m) ->
        checkb "additions stay incremental" true (m = "incremental")
      | _ -> Alcotest.fail "update reply lacks mode");
      checki "queries see the new generation" 1 (generation ());
      checkb "points-to grew" true (count () > before);
      (* answers match a from-scratch solve of the edited program *)
      let _, fresh = Suite.run_combined (Live.program session) in
      checki "tuple count matches from-scratch" (List.length fresh.Suite.pt)
        (count ());
      (* the new generation was published under the CAS ref (delta or
         full), and replaying the chain reproduces the served bytes *)
      (match Json.member "published" resp with
      | Some (Json.Obj _ as pub) -> (
        match (Json.member "ref" pub, Json.member "object" pub) with
        | Some (Json.String "live"), Some (Json.String obj_hex) ->
          checkb "ref points at the published object" true
            (Cas.read_ref cas "live" = Some obj_hex);
          let replayed = Delta.load_chain cas "live" in
          (match Json.member "universe_hash" resp with
          | Some (Json.String h) ->
            check Alcotest.string "chain replays to the served snapshot" h
              (Digest.to_hex (Digest.string replayed))
          | _ -> Alcotest.fail "update reply lacks universe_hash")
        | _ -> Alcotest.failf "bad published payload: %s" (Json.to_string pub))
      | _ -> Alcotest.fail "update reply lacks published");
      (* a second update moves to generation 2 and keeps serving *)
      let resp2 =
        update
          [
            ("op", Json.String "add_assign");
            ("src", Json.Int 0);
            ("dst", Json.Int 1);
          ]
      in
      checkb "second update succeeded" true
        (Json.member "ok" resp2 = Some (Json.Bool true));
      checki "generation 2" 2 (int_member "update" "generation" resp2);
      checkb "still answering" true (count () > 0);
      (* invalid edits are rejected without killing the session *)
      let bad =
        update
          [
            ("op", Json.String "add_alloc");
            ("var", Json.Int 999_999);
            ("cls", Json.Int 0);
          ]
      in
      checkb "invalid edit rejected" true
        (Json.member "ok" bad = Some (Json.Bool false));
      checki "generation unchanged after rejection" 2 (generation ()))

let test_update_without_live_session () =
  with_serve ~workers:1 (fun ~sock ~tcp_port:_ ~http_port:_ ->
      let c = Client.connect ~retries:10 sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let resp =
        Client.request c
          (q "update"
             [ ("edit", Json.Obj [ ("op", Json.String "add_field") ]) ])
      in
      checkb "update refused" true
        (Json.member "ok" resp = Some (Json.Bool false));
      match Json.member "error" resp with
      | Some (Json.String msg) ->
        checkb "error mentions --live" true
          (let needle = "--live" in
           let nl = String.length needle and hl = String.length msg in
           let rec go i =
             i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
           in
           go 0)
      | _ -> Alcotest.fail "no error message")

let suite =
  [
    Alcotest.test_case "http framing: complete requests" `Quick
      test_http_parse;
    Alcotest.test_case "http framing: partial and pipelined" `Quick
      test_http_partial_and_pipelined;
    Alcotest.test_case "http framing: rejects" `Quick test_http_rejects;
    Alcotest.test_case "three transports, bit-identical answers" `Quick
      test_differential;
    Alcotest.test_case "frozen universe rejects mutation" `Quick
      test_frozen_rejects_mutation;
    Alcotest.test_case "result cache and stats shape" `Quick
      test_cache_and_stats;
    Alcotest.test_case "live http pipelining" `Quick
      test_http_pipelining_live;
    Alcotest.test_case "live http oversized header -> 431" `Quick
      test_http_oversized_header_live;
    Alcotest.test_case "update verb swaps generations" `Quick
      test_live_update_swaps_generation;
    Alcotest.test_case "update without --live is refused" `Quick
      test_update_without_live_session;
  ]
