(* The jeddd request protocol: newline-delimited JSON objects.

   Request:  {"verb": "...", "id": any?, "timeout_ms": int?, ...args}
   Response: {"id": <echoed>, "ok": true, ...result}
           | {"id": <echoed>, "ok": false, "error": "..."}

   Verbs:
     ping                                   liveness probe
     version                                package version + backends
     relations                              catalogue of named relations
     count     rel                          tuple count
     member    rel tuple:[o..]              tuple membership
     tuples    rel select? project? limit?  extraction with select/project
     pointsto  var:int                      heaps of PointsTo.pt at var
     resolve   callsite:int                 targets from VirtualCalls.resolved
     stats                                  server + BDD-layer counters
     reorder                                sift the variable order now
     batch     requests:[req..]             evaluate in order, one round trip
     sleep     ms:int                       hold the worker (timeout testing)
     shutdown                               stop the server after replying
     update    edit:{op,...}                apply a program edit and swap in
                                            the re-solved generation (only
                                            on jeddd --live; handled by the
                                            Jedd_serve front end, not here)

   Relation names are snapshot names ("PointsTo.pt"); an unambiguous
   "pt" works too (Snapshot.find_relation).  This module is the pure
   evaluator over a loaded snapshot; sockets, queueing, and timeouts
   live in Server. *)

module R = Jedd_relation.Relation
module Schema = Jedd_relation.Schema
module Attr = Jedd_relation.Attribute
module Dom = Jedd_relation.Domain
module Snapshot = Jedd_store.Snapshot

type world = {
  snap : Snapshot.t;
  extra_stats : unit -> (string * Json.t) list;
      (** Server-side counters, appended to the [stats] payload. *)
}

type outcome = Reply of Json.t | Quit of Json.t

exception Bad_request of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_request s)) fmt

(* -- helpers ------------------------------------------------------------ *)

let get_rel w req =
  match Json.member "rel" req with
  | Some (Json.String name) -> (
    match Snapshot.find_relation w.snap name with
    | Some r -> r
    | None -> bad "unknown relation %S" name)
  | Some _ -> bad "\"rel\" must be a string"
  | None -> bad "missing \"rel\""

let named_rel w name =
  match Snapshot.find_relation w.snap name with
  | Some r -> r
  | None -> bad "relation %S is not in this snapshot" name

let attr_by_name r name =
  let entries = Schema.entries (R.schema r) in
  match
    List.find_opt (fun (e : Schema.entry) -> Attr.name e.attr = name) entries
  with
  | Some e -> e.attr
  | None ->
    bad "relation has no attribute %S (has: %s)" name
      (String.concat ", "
         (List.map (fun (e : Schema.entry) -> Attr.name e.attr) entries))

let int_field req key =
  match Json.member key req with
  | Some (Json.Int v) -> v
  | Some _ -> bad "%S must be an integer" key
  | None -> bad "missing %S" key

let int_list = function
  | Json.List l ->
    List.map
      (function Json.Int v -> v | _ -> bad "tuple elements must be integers")
      l
  | _ -> bad "expected an array of integers"

(* select bindings: {"attr": obj, ...} *)
let bindings_of r = function
  | Json.Obj kvs ->
    List.map
      (fun (name, v) ->
        match v with
        | Json.Int obj -> (attr_by_name r name, obj)
        | _ -> bad "select value for %S must be an integer" name)
      kvs
  | _ -> bad "\"select\" must be an object of attribute -> object"

let schema_attrs r =
  List.map (fun (e : Schema.entry) -> e.attr) (Schema.entries (R.schema r))

(* Apply select then project, releasing every intermediate eagerly.
   Returns a relation the caller must release unless it is [r] itself. *)
let refine r ~select ~project =
  let selected =
    match select with None -> r | Some bindings -> R.select r bindings
  in
  match project with
  | None -> selected
  | Some keep ->
    let away =
      List.filter
        (fun a -> not (List.exists (Attr.equal a) keep))
        (schema_attrs selected)
    in
    if away = [] then selected
    else begin
      let projected = R.project_away selected away in
      if selected != r then R.release selected;
      projected
    end

let rows_of ?limit r =
  let limit = Option.value limit ~default:max_int in
  if limit < 0 then bad "\"limit\" must be non-negative";
  let acc = ref [] in
  let n = ref 0 in
  (try
     R.iter_tuples r (fun t ->
         if !n >= limit then raise Exit;
         incr n;
         acc := Json.List (List.map (fun v -> Json.Int v) (Array.to_list t)) :: !acc)
   with Exit -> ());
  List.rev !acc

let attr_names r =
  List.map
    (fun (e : Schema.entry) -> Json.String (Attr.name e.attr))
    (Schema.entries (R.schema r))

(* -- verbs -------------------------------------------------------------- *)

let do_relations w =
  Json.Obj
    [
      ( "relations",
        Json.List
          (List.map
             (fun (name, r) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ( "attrs",
                     Json.List
                       (List.map
                          (fun (e : Schema.entry) ->
                            let d = Attr.domain e.attr in
                            Json.Obj
                              [
                                ("name", Json.String (Attr.name e.attr));
                                ("domain", Json.String (Dom.name d));
                                ("size", Json.Int (Dom.size d));
                              ])
                          (Schema.entries (R.schema r))) );
                   ("tuples", Json.Int (R.size r));
                 ])
             w.snap.Snapshot.relations) );
    ]

let do_member w req =
  let r = get_rel w req in
  let tuple =
    match Json.member "tuple" req with
    | Some v -> int_list v
    | None -> bad "missing \"tuple\""
  in
  let entries = Schema.entries (R.schema r) in
  if List.length tuple <> List.length entries then
    bad "tuple arity %d does not match relation arity %d" (List.length tuple)
      (List.length entries);
  let bindings = List.map2 (fun (e : Schema.entry) v -> (e.attr, v)) entries tuple in
  let sel = R.select r bindings in
  let present = not (R.is_empty sel) in
  R.release sel;
  Json.Obj [ ("member", Json.Bool present) ]

let do_tuples w req =
  let r = get_rel w req in
  let select = Option.map (bindings_of r) (Json.member "select" req) in
  let project =
    match Json.member "project" req with
    | None -> None
    | Some (Json.List l) ->
      Some
        (List.map
           (function
             | Json.String name -> attr_by_name r name
             | _ -> bad "\"project\" entries must be attribute names")
           l)
    | Some _ -> bad "\"project\" must be an array of attribute names"
  in
  let limit =
    match Json.member "limit" req with
    | None -> None
    | Some (Json.Int n) -> Some n
    | Some _ -> bad "\"limit\" must be an integer"
  in
  let refined = refine r ~select ~project in
  let total = R.size refined in
  let rows = rows_of ?limit refined in
  let attrs = attr_names refined in
  if refined != r then R.release refined;
  Json.Obj
    [
      ("attrs", Json.List attrs);
      ("tuples", Json.List rows);
      ("total", Json.Int total);
      ("truncated", Json.Bool (List.length rows < total));
    ]

let do_pointsto w req =
  let var = int_field req "var" in
  let pt = named_rel w "PointsTo.pt" in
  let heap_attr = attr_by_name pt "heap" in
  let refined =
    refine pt ~select:(Some [ (attr_by_name pt "var", var) ])
      ~project:(Some [ heap_attr ])
  in
  let heaps = ref [] in
  R.iter_tuples refined (fun t -> heaps := Json.Int t.(0) :: !heaps);
  if refined != pt then R.release refined;
  Json.Obj [ ("var", Json.Int var); ("heaps", Json.List (List.rev !heaps)) ]

let do_resolve w req =
  let cs = int_field req "callsite" in
  let resolved = named_rel w "VirtualCalls.resolved" in
  let refined =
    refine resolved
      ~select:(Some [ (attr_by_name resolved "callsite", cs) ])
      ~project:None
  in
  let entries = Schema.entries (R.schema refined) in
  let targets = ref [] in
  R.iter_tuples refined (fun t ->
      let row =
        List.map2
          (fun (e : Schema.entry) v -> (Attr.name e.attr, Json.Int v))
          entries (Array.to_list t)
      in
      targets :=
        Json.Obj (List.filter (fun (k, _) -> k <> "callsite") row) :: !targets);
  if refined != resolved then R.release refined;
  Json.Obj
    [ ("callsite", Json.Int cs); ("targets", Json.List (List.rev !targets)) ]

let do_stats w =
  let bdd =
    List.map
      (fun (k, v) ->
        ( k,
          if Float.is_integer v then Json.Int (int_of_float v)
          else Json.Float v ))
      (Jedd_profiler.Recorder.runtime_stats w.snap.Snapshot.u)
  in
  Json.Obj
    (w.extra_stats ()
    @ [
        ("relations", Json.Int (List.length w.snap.Snapshot.relations));
        ("bdd", Json.Obj bdd);
      ])

(* -- dispatch ------------------------------------------------------------ *)

let ok id fields = Json.Obj ((("id", id) :: ("ok", Json.Bool true) :: fields))

let err id msg =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool false); ("error", Json.String msg) ]

let request_id req = Option.value (Json.member "id" req) ~default:Json.Null

let rec eval w req : outcome =
  let id = request_id req in
  let verb =
    match Json.member "verb" req with
    | Some (Json.String v) -> v
    | _ -> ""
  in
  try
    match verb with
    | "" -> Reply (err id "missing \"verb\"")
    | "ping" -> Reply (ok id [ ("pong", Json.Bool true) ])
    | "version" ->
      Reply
        (ok id
           [
             ("version", Json.String Jedd_relation.Version.version);
             ( "backends",
               Json.List
                 (List.map
                    (fun b -> Json.String b)
                    Jedd_relation.Backend.known_backends) );
           ])
    | "relations" -> Reply (ok id (obj_fields (do_relations w)))
    | "count" ->
      let r = get_rel w req in
      Reply (ok id [ ("tuples", Json.Int (R.size r)) ])
    | "member" -> Reply (ok id (obj_fields (do_member w req)))
    | "tuples" -> Reply (ok id (obj_fields (do_tuples w req)))
    | "pointsto" -> Reply (ok id (obj_fields (do_pointsto w req)))
    | "resolve" -> Reply (ok id (obj_fields (do_resolve w req)))
    | "stats" -> Reply (ok id (obj_fields (do_stats w)))
    | "reorder" ->
      (* the protocol's one mutating verb; on a frozen (read-only
         serving) universe it fails cleanly with Manager.Frozen *)
      Jedd_relation.Universe.reorder ~trigger:"server" w.snap.Snapshot.u;
      Reply (ok id [ ("reordered", Json.Bool true) ])
    | "batch" -> (
      match Json.member "requests" req with
      | Some (Json.List reqs) ->
        (* a shutdown inside a batch stops the server after the whole
           batch's responses are flushed *)
        let quit = ref false in
        let responses =
          List.map
            (fun sub ->
              match eval w sub with
              | Reply r -> r
              | Quit r ->
                quit := true;
                r)
            reqs
        in
        let body = ok id [ ("responses", Json.List responses) ] in
        if !quit then Quit body else Reply body
      | _ -> Reply (err id "batch: missing \"requests\" array"))
    | "sleep" ->
      (* occupies the single worker for real, like a long BDD op would;
         exists so timeout behaviour is testable deterministically *)
      let ms = min (int_field req "ms") 10_000 in
      Unix.sleepf (float_of_int ms /. 1000.);
      Reply (ok id [ ("slept_ms", Json.Int ms) ])
    | "shutdown" -> Quit (ok id [ ("stopping", Json.Bool true) ])
    | v -> Reply (err id (Printf.sprintf "unknown verb %S" v))
  with
  | Bad_request msg -> Reply (err id msg)
  | R.Type_error msg -> Reply (err id msg)
  | Invalid_argument msg -> Reply (err id msg)
  | Jedd_bdd.Manager.Frozen msg -> Reply (err id msg)

and obj_fields = function Json.Obj kvs -> kvs | v -> [ ("result", v) ]
