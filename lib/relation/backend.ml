module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Rep = Jedd_bdd.Replace
module Count = Jedd_bdd.Count
module Enum = Jedd_bdd.Enum
module Fdd = Jedd_bdd.Fdd
module Store = Jedd_extmem.Store
module E = Jedd_extmem.Ebdd

module type BACKEND = sig
  type state
  type node

  val zero : state -> node
  val one : state -> node
  val addref : state -> node -> unit
  val delref : state -> node -> unit
  val band : state -> node -> node -> node
  val bor : state -> node -> node -> node
  val bdiff : state -> node -> node -> node
  val cube : state -> (int * bool) list -> node
  val biimp_vars : state -> int -> int -> node
  val ithval : state -> Fdd.block -> int -> node
  val less_than : state -> Fdd.block -> int -> node
  val restrict : state -> node -> (int * bool) list -> node
  val exist : state -> node -> int list -> node
  val replace : state -> node -> (int * int) list -> node

  val relprod_replace :
    state -> node -> node -> (int * int) list -> int list -> node

  val nodecount : state -> node -> int
  val satcount : state -> node -> over:int list -> int
  val shape : state -> node -> int array

  val iter_assignments :
    state -> node -> levels:int array -> (bool array -> unit) -> unit

  val equal : state -> node -> node -> bool
  val is_zero : state -> node -> bool
  val checkpoint : state -> unit
  val supports_reorder : bool
  val freeze : state -> unit
  val frozen : state -> bool
end

module Incore = struct
  type state = M.t
  type node = M.node

  let zero (_ : state) = M.zero
  let one (_ : state) = M.one
  let addref m n = ignore (M.addref m n)
  let delref m n = M.delref m n
  let band = Ops.band
  let bor = Ops.bor
  let bdiff = Ops.bdiff
  let cube = Ops.cube
  let biimp_vars m l1 l2 = Ops.bbiimp m (M.var m l1) (M.var m l2)
  let ithval = Fdd.ithvar
  let less_than = Fdd.less_than_const
  let restrict = Ops.restrict

  let exist m n levels =
    if levels = [] then n else Quant.exist m n (Quant.varset m levels)

  let replace m n pairs = Rep.replace m n (Rep.make_perm m pairs)

  let relprod_replace m f g pairs qlevels =
    let perm = Rep.make_perm m pairs in
    let cube = if qlevels = [] then M.one else Quant.varset m qlevels in
    Rep.relprod_replace m f g perm cube

  let nodecount = Count.nodecount
  let satcount = Count.satcount
  let shape = Count.shape
  let iter_assignments = Enum.iter_assignments
  let equal (_ : state) a b = a = b
  let is_zero (_ : state) n = n = M.zero
  let checkpoint = M.checkpoint
  let supports_reorder = true
  let freeze = M.freeze
  let frozen = M.frozen
end

type extmem_state = { xmgr : M.t; xstore : Store.t }

module Extmem = struct
  type state = extmem_state
  type node = E.t

  let zero (_ : state) = E.tfalse
  let one (_ : state) = E.ttrue

  (* external nodes are ordinary GC'd values; files are reclaimed by
     finalisers *)
  let addref (_ : state) (_ : node) = ()
  let delref (_ : state) (_ : node) = ()
  let band s = E.band s.xstore
  let bor s = E.bor s.xstore
  let bdiff s = E.bdiff s.xstore
  let cube (_ : state) assignment = E.cube assignment
  let biimp_vars (_ : state) l1 l2 = E.biimp_levels l1 l2

  let block_levels s block = Fdd.levels s.xmgr block (* msb first *)

  let ithval s block v =
    let levels = block_levels s block in
    let w = Array.length levels in
    E.cube
      (List.init w (fun i -> (levels.(i), (v lsr (w - 1 - i)) land 1 = 1)))

  let less_than s block k =
    E.less_than_const (Array.to_list (block_levels s block)) k

  let restrict s n assignment = E.restrict s.xstore assignment n
  let exist s n levels = E.exist s.xstore levels n
  let replace s n pairs = E.replace s.xstore pairs n

  let relprod_replace s f g pairs qlevels =
    E.relprod_replace s.xstore f g pairs qlevels

  let nodecount (_ : state) n = E.nodecount n
  let satcount s n ~over = E.satcount s.xstore ~over n
  let shape s n = E.shape ~num_vars:(M.num_vars s.xmgr) n
  let iter_assignments s n ~levels k = E.iter_assignments s.xstore ~levels n k
  let equal (_ : state) a b = E.equal a b
  let is_zero (_ : state) n = E.equal n E.tfalse
  let checkpoint (_ : state) = ()
  let supports_reorder = false

  (* The spill store appends node files per operation; there is no
     read-only arena to pin, so serving must stay on the in-core
     backend. *)
  let freeze (_ : state) =
    invalid_arg "Backend.freeze: extmem backend cannot be frozen"

  let frozen (_ : state) = false
end

(* dispatch layer *)

module Par = Jedd_bdd.Par

type kind = [ `Incore | `Extmem ]

type t = {
  knd : kind;
  mgr : M.t;
  ext : extmem_state option;
  (* when set (in-core only), conjunction/disjunction/quantification and
     the fused compose kernel run on the work-stealing pool; the extmem
     backend stays single-domain (its page cache and file store are not
     thread-safe, and it trades CPU for I/O anyway — see DESIGN.md) *)
  mutable pool : Par.pool option;
}

type node = In of M.node | Ex of E.t

let make knd mgr =
  match knd with
  | `Incore -> { knd; mgr; ext = None; pool = None }
  | `Extmem ->
    { knd; mgr; ext = Some { xmgr = mgr; xstore = Store.create () }; pool = None }

let kind b = b.knd
let manager b = b.mgr
let store b = Option.map (fun s -> s.xstore) b.ext

let set_pool b p =
  (match (p, b.knd) with
  | Some _, `Extmem ->
    invalid_arg "Backend.set_pool: extmem backend is single-domain"
  | _ -> ());
  b.pool <- p

let pool b = b.pool

let cleanup b =
  match b.ext with None -> () | Some s -> Store.cleanup s.xstore

let ext b =
  match b.ext with
  | Some s -> s
  | None -> invalid_arg "Backend: extmem state on an in-core backend"

let in_node = function
  | In n -> n
  | Ex _ -> invalid_arg "Backend: extmem node passed to in-core backend"

let ex_node = function
  | Ex n -> n
  | In _ -> invalid_arg "Backend: in-core node passed to extmem backend"

let zero b =
  match b.knd with
  | `Incore -> In (Incore.zero b.mgr)
  | `Extmem -> Ex (Extmem.zero (ext b))

let one b =
  match b.knd with
  | `Incore -> In (Incore.one b.mgr)
  | `Extmem -> Ex (Extmem.one (ext b))

let addref b n =
  match b.knd with
  | `Incore -> Incore.addref b.mgr (in_node n)
  | `Extmem -> Extmem.addref (ext b) (ex_node n)

let delref b n =
  match b.knd with
  | `Incore -> Incore.delref b.mgr (in_node n)
  | `Extmem -> Extmem.delref (ext b) (ex_node n)

let lift2 b fin fex x y =
  match b.knd with
  | `Incore -> In (fin b.mgr (in_node x) (in_node y))
  | `Extmem -> Ex (fex (ext b) (ex_node x) (ex_node y))

let lift2_par b fpar fin fex x y =
  match (b.knd, b.pool) with
  | `Incore, Some p -> In (fpar p b.mgr (in_node x) (in_node y))
  | _ -> lift2 b fin fex x y

let band b = lift2_par b Par.band Incore.band Extmem.band
let bor b = lift2_par b Par.bor Incore.bor Extmem.bor
let bdiff b = lift2_par b Par.bdiff Incore.bdiff Extmem.bdiff

let cube b assignment =
  match b.knd with
  | `Incore -> In (Incore.cube b.mgr assignment)
  | `Extmem -> Ex (Extmem.cube (ext b) assignment)

let biimp_vars b l1 l2 =
  match b.knd with
  | `Incore -> In (Incore.biimp_vars b.mgr l1 l2)
  | `Extmem -> Ex (Extmem.biimp_vars (ext b) l1 l2)

let ithval b block v =
  match b.knd with
  | `Incore -> In (Incore.ithval b.mgr block v)
  | `Extmem -> Ex (Extmem.ithval (ext b) block v)

let less_than b block k =
  match b.knd with
  | `Incore -> In (Incore.less_than b.mgr block k)
  | `Extmem -> Ex (Extmem.less_than (ext b) block k)

let restrict b n assignment =
  match b.knd with
  | `Incore -> In (Incore.restrict b.mgr (in_node n) assignment)
  | `Extmem -> Ex (Extmem.restrict (ext b) (ex_node n) assignment)

let exist b n levels =
  match (b.knd, b.pool) with
  | `Incore, Some p when levels <> [] ->
    In (Par.exist p b.mgr (in_node n) (Quant.varset b.mgr levels))
  | `Incore, _ -> In (Incore.exist b.mgr (in_node n) levels)
  | `Extmem, _ -> Ex (Extmem.exist (ext b) (ex_node n) levels)

let replace b n pairs =
  match b.knd with
  | `Incore -> In (Incore.replace b.mgr (in_node n) pairs)
  | `Extmem -> Ex (Extmem.replace (ext b) (ex_node n) pairs)

let relprod_replace b f g pairs qlevels =
  match (b.knd, b.pool) with
  | `Incore, Some p ->
    let perm = Rep.make_perm b.mgr pairs in
    let cube =
      if qlevels = [] then M.one else Quant.varset b.mgr qlevels
    in
    In (Par.relprod_replace p b.mgr (in_node f) (in_node g) perm cube)
  | `Incore, None ->
    In (Incore.relprod_replace b.mgr (in_node f) (in_node g) pairs qlevels)
  | `Extmem, _ ->
    Ex (Extmem.relprod_replace (ext b) (ex_node f) (ex_node g) pairs qlevels)

let nodecount b n =
  match b.knd with
  | `Incore -> Incore.nodecount b.mgr (in_node n)
  | `Extmem -> Extmem.nodecount (ext b) (ex_node n)

let satcount b n ~over =
  match b.knd with
  | `Incore -> Incore.satcount b.mgr (in_node n) ~over
  | `Extmem -> Extmem.satcount (ext b) (ex_node n) ~over

let shape b n =
  match b.knd with
  | `Incore -> Incore.shape b.mgr (in_node n)
  | `Extmem -> Extmem.shape (ext b) (ex_node n)

let iter_assignments b n ~levels k =
  match b.knd with
  | `Incore -> Incore.iter_assignments b.mgr (in_node n) ~levels k
  | `Extmem -> Extmem.iter_assignments (ext b) (ex_node n) ~levels k

let equal b x y =
  match b.knd with
  | `Incore -> Incore.equal b.mgr (in_node x) (in_node y)
  | `Extmem -> Extmem.equal (ext b) (ex_node x) (ex_node y)

let is_zero b n =
  match b.knd with
  | `Incore -> Incore.is_zero b.mgr (in_node n)
  | `Extmem -> Extmem.is_zero (ext b) (ex_node n)

let checkpoint b =
  match b.knd with
  | `Incore -> Incore.checkpoint b.mgr
  | `Extmem -> Extmem.checkpoint (ext b)

let supports_reorder b =
  match b.knd with
  | `Incore -> Incore.supports_reorder
  | `Extmem -> Extmem.supports_reorder

let freeze b =
  match b.knd with
  | `Incore -> Incore.freeze b.mgr
  | `Extmem -> Extmem.freeze (ext b)

let frozen b =
  match b.knd with
  | `Incore -> Incore.frozen b.mgr
  | `Extmem -> Extmem.frozen (ext b)

(* -- backend names ------------------------------------------------------ *)

let known_backends = [ "incore"; "extmem" ]
let kind_name = function `Incore -> "incore" | `Extmem -> "extmem"

let kind_of_string s =
  match s with
  | "incore" -> `Incore
  | "extmem" -> `Extmem
  | _ ->
    invalid_arg
      (Printf.sprintf "unknown backend %S (known backends: %s)" s
         (String.concat ", " known_backends))

(* -- levelized serialization ------------------------------------------- *)

module Lv = Jedd_bdd.Levelized

let export_levelized b n =
  match b.knd with
  | `Incore -> Lv.of_manager b.mgr (in_node n)
  | `Extmem ->
    let blocks, root = E.export_blocks (ext b).xstore (ex_node n) in
    { Lv.blocks = Array.of_list blocks; root }

let import_levelized b (d : Lv.t) =
  Lv.validate d;
  match b.knd with
  | `Incore -> In (Lv.to_manager b.mgr d)
  | `Extmem ->
    Array.iter
      (fun (l, _, _) ->
        if l >= M.num_vars b.mgr then
          raise
            (Lv.Malformed
               (Printf.sprintf "dump level %d outside manager order (%d vars)"
                  l (M.num_vars b.mgr))))
      d.Lv.blocks;
    Ex (E.import_blocks (Array.to_list d.Lv.blocks) d.Lv.root)
