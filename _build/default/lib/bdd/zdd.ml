(* Zero-suppressed decision diagrams.  Node layout mirrors the BDD
   manager but the reduction rule differs: a node whose high child is
   the empty family is redundant (zero-suppression).  This module is
   used for representation-size studies, not in the hot path, so a
   Hashtbl-based hash-cons keeps it simple. *)

type node = int

let zero = 0
let one = 1
let terminal_var = max_int lsr 1

type t = {
  mutable nvars : int;
  unique : (int * int * int, int) Hashtbl.t;
  mutable var_ : int array;
  mutable lo_ : int array;
  mutable hi_ : int array;
  mutable next : int;
  memo_bin : (int * int * int, int) Hashtbl.t;  (* op, f, g *)
  memo_un : (int * int * int, int) Hashtbl.t;  (* op, f, v *)
}

let op_union = 0
let op_inter = 1
let op_diff = 2
let op_change = 3
let op_sub0 = 4
let op_sub1 = 5

let create ?(node_capacity = 4096) () =
  let t =
    {
      nvars = 0;
      unique = Hashtbl.create node_capacity;
      var_ = Array.make node_capacity terminal_var;
      lo_ = Array.make node_capacity 0;
      hi_ = Array.make node_capacity 0;
      next = 2;
      memo_bin = Hashtbl.create node_capacity;
      memo_un = Hashtbl.create node_capacity;
    }
  in
  t

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  v

let num_vars t = t.nvars
let var t n = t.var_.(n)
let lo t n = t.lo_.(n)
let hi t n = t.hi_.(n)

let mk t v l h =
  if h = zero then l
  else
    match Hashtbl.find_opt t.unique (v, l, h) with
    | Some n -> n
    | None ->
      if t.next >= Array.length t.var_ then begin
        let cap = Array.length t.var_ * 2 in
        let grow a fill =
          let a' = Array.make cap fill in
          Array.blit a 0 a' 0 (Array.length a);
          a'
        in
        t.var_ <- grow t.var_ terminal_var;
        t.lo_ <- grow t.lo_ 0;
        t.hi_ <- grow t.hi_ 0
      end;
      let n = t.next in
      t.next <- n + 1;
      t.var_.(n) <- v;
      t.lo_.(n) <- l;
      t.hi_.(n) <- h;
      Hashtbl.add t.unique (v, l, h) n;
      n

let singleton_var t v = mk t v zero one

let rec union t f g =
  if f = g || g = zero then f
  else if f = zero then g
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    match Hashtbl.find_opt t.memo_bin (op_union, f, g) with
    | Some r -> r
    | None ->
      let vf = var t f and vg = var t g in
      let r =
        if vf = vg then mk t vf (union t (lo t f) (lo t g)) (union t (hi t f) (hi t g))
        else if vf < vg then mk t vf (union t (lo t f) g) (hi t f)
        else mk t vg (union t f (lo t g)) (hi t g)
      in
      Hashtbl.add t.memo_bin (op_union, f, g) r;
      r
  end

let rec inter t f g =
  if f = zero || g = zero then zero
  else if f = g then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    match Hashtbl.find_opt t.memo_bin (op_inter, f, g) with
    | Some r -> r
    | None ->
      let vf = var t f and vg = var t g in
      let r =
        if vf = vg then mk t vf (inter t (lo t f) (lo t g)) (inter t (hi t f) (hi t g))
        else if vf < vg then inter t (lo t f) g
        else inter t f (lo t g)
      in
      Hashtbl.add t.memo_bin (op_inter, f, g) r;
      r
  end

let rec diff t f g =
  if f = zero || f = g then zero
  else if g = zero then f
  else
    match Hashtbl.find_opt t.memo_bin (op_diff, f, g) with
    | Some r -> r
    | None ->
      let vf = var t f and vg = var t g in
      let r =
        if vf = vg then mk t vf (diff t (lo t f) (lo t g)) (diff t (hi t f) (hi t g))
        else if vf < vg then mk t vf (diff t (lo t f) g) (hi t f)
        else diff t f (lo t g)
      in
      Hashtbl.add t.memo_bin (op_diff, f, g) r;
      r

let rec change t f v =
  if f = zero then zero
  else
    match Hashtbl.find_opt t.memo_un (op_change, f, v) with
    | Some r -> r
    | None ->
      let vf = var t f in
      let r =
        if vf > v then mk t v zero f
        else if vf = v then mk t v (hi t f) (lo t f)
        else mk t vf (change t (lo t f) v) (change t (hi t f) v)
      in
      Hashtbl.add t.memo_un (op_change, f, v) r;
      r

let rec subset1 t f v =
  if f = zero || f = one then zero
  else
    match Hashtbl.find_opt t.memo_un (op_sub1, f, v) with
    | Some r -> r
    | None ->
      let vf = var t f in
      let r =
        if vf > v then zero
        else if vf = v then hi t f
        else mk t vf (subset1 t (lo t f) v) (subset1 t (hi t f) v)
      in
      Hashtbl.add t.memo_un (op_sub1, f, v) r;
      r

let rec subset0 t f v =
  if f = zero || f = one then f
  else
    match Hashtbl.find_opt t.memo_un (op_sub0, f, v) with
    | Some r -> r
    | None ->
      let vf = var t f in
      let r =
        if vf > v then f
        else if vf = v then lo t f
        else mk t vf (subset0 t (lo t f) v) (subset0 t (hi t f) v)
      in
      Hashtbl.add t.memo_un (op_sub0, f, v) r;
      r

let count t f =
  let memo = Hashtbl.create 256 in
  let rec go f =
    if f = zero then 0
    else if f = one then 1
    else
      match Hashtbl.find_opt memo f with
      | Some c -> c
      | None ->
        let c = go (lo t f) + go (hi t f) in
        Hashtbl.add memo f c;
        c
  in
  go f

let nodecount t f =
  let seen = Hashtbl.create 256 in
  let rec go f =
    if f > one && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      go (lo t f);
      go (hi t f)
    end
  in
  go f;
  Hashtbl.length seen

let of_assignments t ~nvars assignments =
  while num_vars t < nvars do
    ignore (new_var t)
  done;
  List.fold_left
    (fun acc bits ->
      let set = ref one in
      for v = nvars - 1 downto 0 do
        if bits.(v) then set := mk t v zero !set
      done;
      union t acc !set)
    zero assignments

let iter_sets t f k =
  let rec go f acc =
    if f = one then k (List.rev acc)
    else if f <> zero then begin
      go (lo t f) acc;
      go (hi t f) (var t f :: acc)
    end
  in
  go f []

let of_bdd ?over bman broot t =
  let universe =
    match over with
    | Some levels -> Array.of_list (List.sort_uniq compare levels)
    | None -> Array.init (Manager.num_vars bman) (fun i -> i)
  in
  let n = Array.length universe in
  while num_vars t < n do
    ignore (new_var t)
  done;
  let memo = Hashtbl.create 1024 in
  (* z(f, i): family of assignments of universe ranks i..n-1 satisfying
     the BDD f (whose top level is >= universe.(i)). *)
  let rec z f i =
    if i = n then
      if Manager.is_terminal f then if f = Manager.one then one else zero
      else invalid_arg "Zdd.of_bdd: BDD depends on a level outside ~over"
    else
      match Hashtbl.find_opt memo (f, i) with
      | Some r -> r
      | None ->
        let lf = Manager.level bman f in
        let r =
          if lf > universe.(i) then begin
            (* variable absent from the BDD: both values satisfy *)
            let sub = z f (i + 1) in
            mk t i sub sub
          end
          else if lf = universe.(i) then
            mk t i (z (Manager.low bman f) (i + 1))
              (z (Manager.high bman f) (i + 1))
          else invalid_arg "Zdd.of_bdd: BDD depends on a level outside ~over"
        in
        Hashtbl.add memo (f, i) r;
        r
  in
  z broot 0
