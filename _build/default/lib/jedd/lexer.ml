type token =
  | IDENT of string
  | INT of int
  | ZERO_B
  | ONE_B
  | KW of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LANGLE
  | RANGLE
  | COMMA
  | SEMI
  | COLON
  | ARROW
  | JOIN_SYM
  | COMPOSE_SYM
  | PIPE
  | AMP
  | MINUS
  | BANG
  | EQ
  | EQEQ
  | NEQ
  | PIPE_EQ
  | AMP_EQ
  | MINUS_EQ
  | AND_AND
  | OR_OR
  | EOF

exception Lex_error of string * Ast.pos

let keywords =
  [
    "domain"; "attribute"; "physdom"; "class"; "public"; "private"; "void";
    "if"; "else"; "while"; "do"; "return"; "new"; "true"; "false"; "print";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~file src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let pos () = { Ast.file; line = !line; col = !col } in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit tok p = tokens := (tok, p) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated comment", p))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      (* 0B / 1B constants *)
      if !i < n && src.[!i] = 'B' && !i - start = 1 then begin
        let tok = if src.[start] = '0' then ZERO_B else ONE_B in
        if src.[start] <> '0' && src.[start] <> '1' then
          raise (Lex_error ("only 0B and 1B are relation constants", p));
        advance ();
        emit tok p
      end
      else
        emit (INT (int_of_string (String.sub src start (!i - start)))) p
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) p else emit (IDENT word) p
    end
    else begin
      let two =
        match peek 1 with
        | Some c2 -> Some (String.init 2 (fun k -> if k = 0 then c else c2))
        | None -> None
      in
      let emit2 tok =
        advance ();
        advance ();
        emit tok p
      in
      match two with
      | Some "=>" -> emit2 ARROW
      | Some "><" -> emit2 JOIN_SYM
      | Some "<>" -> emit2 COMPOSE_SYM
      | Some "==" -> emit2 EQEQ
      | Some "!=" -> emit2 NEQ
      | Some "|=" -> emit2 PIPE_EQ
      | Some "&=" -> emit2 AMP_EQ
      | Some "-=" -> emit2 MINUS_EQ
      | Some "&&" -> emit2 AND_AND
      | Some "||" -> emit2 OR_OR
      | _ -> (
        let emit1 tok =
          advance ();
          emit tok p
        in
        match c with
        | '{' -> emit1 LBRACE
        | '}' -> emit1 RBRACE
        | '(' -> emit1 LPAREN
        | ')' -> emit1 RPAREN
        | '<' -> emit1 LANGLE
        | '>' -> emit1 RANGLE
        | ',' -> emit1 COMMA
        | ';' -> emit1 SEMI
        | ':' -> emit1 COLON
        | '|' -> emit1 PIPE
        | '&' -> emit1 AMP
        | '-' -> emit1 MINUS
        | '!' -> emit1 BANG
        | '=' -> emit1 EQ
        | c ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, p)))
    end
  done;
  emit EOF (pos ());
  List.rev !tokens

let describe = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT k -> Printf.sprintf "integer %d" k
  | ZERO_B -> "0B"
  | ONE_B -> "1B"
  | KW k -> Printf.sprintf "keyword %s" k
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LANGLE -> "<"
  | RANGLE -> ">"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | ARROW -> "=>"
  | JOIN_SYM -> "><"
  | COMPOSE_SYM -> "<>"
  | PIPE -> "|"
  | AMP -> "&"
  | MINUS -> "-"
  | BANG -> "!"
  | EQ -> "="
  | EQEQ -> "=="
  | NEQ -> "!="
  | PIPE_EQ -> "|="
  | AMP_EQ -> "&="
  | MINUS_EQ -> "-="
  | AND_AND -> "&&"
  | OR_OR -> "||"
  | EOF -> "end of input"
