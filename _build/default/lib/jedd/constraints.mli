(** Construction of the physical-domain-assignment constraint graph
    (§3.3.2, Figure 7).

    Every relational expression, variable, method-return slot, and dummy
    replace wrapper is a {e site} owning one graph node per attribute.
    Edges:
    - {b conflict} (implicit, within a site): all attributes of one
      expression must get distinct physical domains;
    - {b equality}: attributes an operation forces into the same
      physical domain;
    - {b assignment}: the input/output pairs of the dummy replace
      wrapped around every consumed subexpression — the edges the
      partitioning is allowed to break (each break = one real replace).

    The paper wraps every subexpression in a dummy replace; we key that
    wrapper by the (unique) consumed expression's id. *)

type site =
  | S_expr of int  (** a typed expression node (eid) *)
  | S_wrap of int  (** the dummy replace around the expression [eid] *)
  | S_var of Tast.var_key
  | S_return of string  (** method's return slot *)

type node = { site : site; attr : Tast.attr_info }

type t = {
  nodes : node array;
  node_index : (site * string, int) Hashtbl.t;
  equality : (int * int) list;  (** node index pairs *)
  assignment : (int * int) list;
  conflict : (int * int) list;  (** expanded pairwise within sites *)
  specified : (int * Tast.phys_info) list;
  site_kind : site -> string;  (** "Join_expression", "Variable", ... *)
  site_pos : site -> Ast.pos;
}

val build : Tast.tprogram -> t

val node_count : t -> int

val describe_node : t -> int -> string
(** ["Join_expression:rectype at F.jedd:4,25"] — the §3.3.3 format. *)

(** Statistics for the paper's Table 1. *)
type stats = {
  n_rel_exprs : int;
  n_attrs : int;  (** attribute instances over all expressions *)
  n_physdoms : int;
  n_conflict : int;
  n_equality : int;
  n_assignment : int;
}

val stats : Tast.tprogram -> t -> stats
