(** Work-stealing parallel BDD operations over OCaml 5 domains.

    A {!pool} owns [jobs - 1] worker domains; the domain calling a
    top-level operation participates as worker 0.  Recursive apply forks
    its two cofactor sub-problems into per-worker deques while the
    recursion is within [cutoff] levels of the root and falls into the
    plain sequential kernels below, memoising under the {e same} cache
    tags so sequential and parallel runs share result vocabulary.
    Joins never block: a joiner claims the task itself or helps by
    stealing others.

    The manager must be in parallel mode ({!Manager.enter_parallel})
    whenever a pool operation runs.  Results are bit-identical to the
    sequential kernels — hash-consing keeps BDDs canonical — which the
    differential test suite checks across job counts. *)

type man = Manager.t
type node = Manager.node
type pool

val create : ?cutoff:int -> jobs:int -> unit -> pool
(** [create ~jobs ()] spawns [jobs - 1] worker domains (so [jobs = 1]
    spawns none and every operation degenerates to the sequential
    kernel plus bookkeeping).  [cutoff] is the fork depth bound
    (default 6: at most [2^6] top-of-DAG forks per operation plus
    whatever the recursion re-forks).  [Invalid_argument] unless
    [1 <= jobs <= 64]. *)

val shutdown : pool -> unit
(** Stop and join the worker domains.  Call at quiescence (no run in
    flight). *)

val jobs : pool -> int

val stats : pool -> int * int
(** [(forks, steals)] since pool creation. *)

val run : pool -> man -> (unit -> 'a) -> 'a
(** [run pool m f] executes [f] with the workers helping: use it to
    wrap a custom parallel recursion built from {!fork}/{!join}.
    Top-level runs on one pool are serialised.  Opens an apply region on
    [m] spanning the run, so stop-the-world phases (GC, reordering) wait
    for it. *)

type task

val fork : pool -> (unit -> int) -> task
(** Push a sub-problem onto the calling worker's deque.  Only valid
    inside {!run} (on the calling domain or from within another task). *)

val join : pool -> task -> int
(** Wait for a task's result, executing it directly if nobody has
    claimed it and helping with other tasks otherwise.  Re-raises the
    task's exception if it raised. *)

(** {2 Parallel operations}

    Drop-in parallel counterparts of {!Ops.band} / {!Ops.bor} /
    {!Ops.bdiff} / {!Ops.bxor}, {!Quant.exist} / {!Quant.relprod} and
    the fused {!Replace.relprod_replace} / {!Replace.replace_exist}.
    Each wraps itself in {!run}. *)

val band : pool -> man -> node -> node -> node
val bor : pool -> man -> node -> node -> node
val bdiff : pool -> man -> node -> node -> node
val bxor : pool -> man -> node -> node -> node
val exist : pool -> man -> node -> node -> node
val relprod : pool -> man -> node -> node -> node -> node
val relprod_replace : pool -> man -> node -> node -> Replace.perm -> node -> node
val replace_exist : pool -> man -> node -> Replace.perm -> node -> node

(** {2 Job-count plumbing} *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], clamped to [1..64]. *)

val jobs_of_string : string -> int
(** Parse a [--jobs] / [JEDD_JOBS] value; [Invalid_argument] with a
    clean message (same style as [Backend.kind_of_string]) unless it is
    an integer in [1..64]. *)
