(* Differential tests for the multi-core engine: the parallel kernels
   must produce results identical to the sequential ones (same handles
   within one manager — hash-consing keeps BDDs canonical — and the same
   relations across managers), under every job count, and the manager
   must stay structurally consistent through interleaved GC, reordering
   and parallel apply. *)

module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module Quant = Jedd_bdd.Quant
module Replace = Jedd_bdd.Replace
module Count = Jedd_bdd.Count
module Par = Jedd_bdd.Par

(* -- Random expression workload (cf. Test_bdd) -------------------------- *)

type expr =
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Diff of expr * expr

let rec gen_expr nvars depth st =
  if depth = 0 then Var (Random.State.int st nvars)
  else
    match Random.State.int st 6 with
    | 0 -> Var (Random.State.int st nvars)
    | 1 -> Not (gen_expr nvars (depth - 1) st)
    | 2 -> And (gen_expr nvars (depth - 1) st, gen_expr nvars (depth - 1) st)
    | 3 -> Or (gen_expr nvars (depth - 1) st, gen_expr nvars (depth - 1) st)
    | 4 -> Xor (gen_expr nvars (depth - 1) st, gen_expr nvars (depth - 1) st)
    | _ -> Diff (gen_expr nvars (depth - 1) st, gen_expr nvars (depth - 1) st)

let rec build m = function
  | Var i -> M.var m i
  | Not e -> Ops.bnot m (build m e)
  | And (a, b) -> Ops.band m (build m a) (build m b)
  | Or (a, b) -> Ops.bor m (build m a) (build m b)
  | Xor (a, b) -> Ops.bxor m (build m a) (build m b)
  | Diff (a, b) -> Ops.bdiff m (build m a) (build m b)

(* In parallel mode a GC may run whenever this domain parks (entering a
   pool operation, or at [checkpoint]), so every intermediate held across
   a top-level operation must carry an external reference — the same
   discipline the relation layer follows.  [build_par] returns a node
   with one reference owned by the caller. *)
let rec build_par pool m e =
  let bin op a b =
    let ra = build_par pool m a in
    let rb = build_par pool m b in
    let r = M.addref m (op pool m ra rb) in
    M.delref m ra;
    M.delref m rb;
    r
  in
  match e with
  | Var i -> M.addref m (M.var m i)
  | Not e ->
    let ra = build_par pool m e in
    let r = M.addref m (Ops.bnot m ra) in
    M.delref m ra;
    r
  | And (a, b) -> bin Par.band a b
  | Or (a, b) -> bin Par.bor a b
  | Xor (a, b) -> bin Par.bxor a b
  | Diff (a, b) -> bin Par.bdiff a b

let no_violations what m =
  Alcotest.(check (list string)) what [] (M.check_invariants m)

(* -- Same-manager differential: parallel result = sequential handle ----- *)

let test_binops_differential () =
  List.iter
    (fun jobs ->
      let m = M.create ~node_capacity:4096 () in
      let nvars = 10 in
      for _ = 1 to nvars do
        ignore (M.new_var m)
      done;
      let st = Random.State.make [| 42; jobs |] in
      let exprs = List.init 25 (fun _ -> gen_expr nvars 6 st) in
      let seq = List.map (fun e -> M.addref m (build m e)) exprs in
      M.enter_parallel m;
      let pool = Par.create ~jobs () in
      let par = List.map (fun e -> build_par pool m e) exprs in
      List.iter2
        (fun s p ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: canonical handle" jobs)
            s p)
        seq par;
      Par.shutdown pool;
      M.exit_parallel m;
      no_violations (Printf.sprintf "invariants after jobs=%d" jobs) m)
    [ 1; 2; 3; 4 ]

let test_quant_differential () =
  let m = M.create ~node_capacity:4096 () in
  let nvars = 12 in
  for _ = 1 to nvars do
    ignore (M.new_var m)
  done;
  let st = Random.State.make [| 7 |] in
  let pairs =
    List.init 15 (fun _ -> (gen_expr nvars 6 st, gen_expr nvars 6 st))
  in
  let cube = Quant.varset m [ 1; 4; 7; 10 ] in
  let seq =
    List.map
      (fun (ea, eb) ->
        let a = M.addref m (build m ea) and b = M.addref m (build m eb) in
        let ex = M.addref m (Quant.exist m a cube) in
        let rp = M.addref m (Quant.relprod m a b cube) in
        (a, b, ex, rp))
      pairs
  in
  M.enter_parallel m;
  let pool = Par.create ~jobs:4 () in
  List.iter
    (fun (a, b, ex, rp) ->
      Alcotest.(check int) "exist" ex (Par.exist pool m a cube);
      Alcotest.(check int) "relprod" rp (Par.relprod pool m a b cube))
    seq;
  Par.shutdown pool;
  M.exit_parallel m;
  no_violations "invariants after quant" m

let test_fused_differential () =
  let m = M.create ~node_capacity:8192 () in
  let nvars = 12 in
  for _ = 1 to nvars do
    ignore (M.new_var m)
  done;
  let st = Random.State.make [| 19 |] in
  (* an order-preserving shift of the low half onto the high half *)
  let perm = Replace.make_perm m [ (0, 6); (1, 7); (2, 8) ] in
  let cube = Quant.varset m [ 6; 7; 8 ] in
  let pairs =
    List.init 15 (fun _ -> (gen_expr 6 5 st, gen_expr 6 5 st))
  in
  let seq =
    List.map
      (fun (ea, eb) ->
        let a = M.addref m (build m ea) and b = M.addref m (build m eb) in
        let rr = M.addref m (Replace.relprod_replace m a b perm cube) in
        let re = M.addref m (Replace.replace_exist m b perm M.one) in
        (a, b, rr, re))
      pairs
  in
  M.enter_parallel m;
  let pool = Par.create ~jobs:4 () in
  List.iter
    (fun (a, b, rr, re) ->
      Alcotest.(check int)
        "relprod_replace" rr
        (Par.relprod_replace pool m a b perm cube);
      Alcotest.(check int)
        "replace_exist" re
        (Par.replace_exist pool m b perm M.one))
    seq;
  Par.shutdown pool;
  M.exit_parallel m;
  no_violations "invariants after fused" m

(* -- Cross-manager differential: satcount and tuple enumeration --------- *)

let test_cross_manager () =
  let nvars = 10 in
  let st_seed = [| 3; 14; 15 |] in
  let run_engine jobs =
    let m = M.create ~node_capacity:4096 () in
    for _ = 1 to nvars do
      ignore (M.new_var m)
    done;
    let st = Random.State.make st_seed in
    let exprs = List.init 20 (fun _ -> gen_expr nvars 6 st) in
    let roots =
      if jobs = 0 then List.map (fun e -> M.addref m (build m e)) exprs
      else begin
        M.enter_parallel m;
        let pool = Par.create ~jobs () in
        let rs = List.map (fun e -> M.addref m (build_par pool m e)) exprs in
        Par.shutdown pool;
        M.exit_parallel m;
        rs
      end
    in
    let over = List.init nvars (fun i -> i) in
    let counts = List.map (fun r -> Count.satcount m r ~over) roots in
    let shapes = List.map (fun r -> Count.shape m r) roots in
    (counts, shapes)
  in
  let seq_counts, seq_shapes = run_engine 0 in
  List.iter
    (fun jobs ->
      let counts, shapes = run_engine jobs in
      Alcotest.(check (list int))
        (Printf.sprintf "satcounts at jobs=%d" jobs)
        seq_counts counts;
      List.iter2
        (fun a b ->
          Alcotest.(check (array int))
            (Printf.sprintf "shape at jobs=%d" jobs)
            a b)
        seq_shapes shapes)
    [ 1; 2; 4 ]

(* -- Invariants with chunks outstanding --------------------------------- *)

let test_invariants_during_parallel () =
  let m = M.create ~node_capacity:2048 () in
  for _ = 1 to 8 do
    ignore (M.new_var m)
  done;
  M.enter_parallel m;
  let pool = Par.create ~jobs:2 () in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 10 do
    ignore (build_par pool m (gen_expr 8 5 st))
  done;
  (* chunks are outstanding; the audit must still balance the books *)
  Alcotest.(check (list string))
    "invariants inside parallel mode" []
    (M.exclusive m (fun () -> M.check_invariants m));
  Alcotest.(check bool) "parallel mode active" true (M.in_parallel m);
  let stats = M.par_stats m in
  Alcotest.(check bool) "some chunk refills" true (stats.M.par_chunk_refills > 0);
  Par.shutdown pool;
  M.exit_parallel m;
  no_violations "invariants after exit" m;
  Alcotest.(check bool) "mode off" false (M.in_parallel m)

(* -- Randomized stress: GC + auto-reorder + parallel apply -------------- *)

let test_stress () =
  let m = M.create ~node_capacity:2048 () in
  let nvars = 12 in
  for _ = 1 to nvars do
    ignore (M.new_var m)
  done;
  let eng = Jedd_reorder.Reorder.create m in
  Jedd_reorder.Reorder.install_auto eng ~threshold:4000;
  M.enter_parallel m;
  M.stw_register m;
  let pool = Par.create ~jobs:3 () in
  (* two registered domains grinding sequential op streams, parking at
     checkpoints; the main domain mixes pool ops with explicit GCs *)
  let worker seed =
    Domain.spawn (fun () ->
        M.stw_register m;
        Fun.protect
          ~finally:(fun () -> M.stw_unregister m)
          (fun () ->
            let st = Random.State.make [| seed |] in
            for _ = 1 to 120 do
              let r = M.addref m (build m (gen_expr nvars 5 st)) in
              M.checkpoint m;
              M.delref m r
            done))
  in
  let d1 = worker 101 and d2 = worker 202 in
  let st = Random.State.make [| 77 |] in
  let kept = ref [] in
  for i = 1 to 60 do
    let e1 = gen_expr nvars 5 st and e2 = gen_expr nvars 5 st in
    let a = build_par pool m e1 in
    let b = build_par pool m e2 in
    let r = Par.band pool m a b in
    ignore (M.addref m r);
    kept := (e1, e2, r) :: !kept;
    if i mod 15 = 0 then M.gc m;
    M.checkpoint m
  done;
  Domain.join d1;
  Domain.join d2;
  Par.shutdown pool;
  M.stw_unregister m;
  M.exit_parallel m;
  (* now single-domain again: re-verify every kept result against a
     fresh sequential computation (reordering may have moved levels, so
     compare through the canonical store, not against stale handles) *)
  List.iter
    (fun (e1, e2, r) ->
      let expect = Ops.band m (build m e1) (build m e2) in
      Alcotest.(check int) "stress result survives" expect r)
    !kept;
  no_violations "invariants after stress" m;
  let stats = M.par_stats m in
  Alcotest.(check bool) "domains participated" true (stats.M.par_domains >= 3)

(* -- jobs parsing -------------------------------------------------------- *)

let test_jobs_of_string () =
  Alcotest.(check int) "plain" 4 (Par.jobs_of_string "4");
  Alcotest.(check int) "trimmed" 2 (Par.jobs_of_string " 2 ");
  Alcotest.(check bool) "default sane" true (Par.default_jobs () >= 1);
  let rejects s =
    match Par.jobs_of_string s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message mentions input for %S" s)
        true
        (String.length msg > 0)
  in
  List.iter rejects [ "0"; "-3"; "65"; "many"; "" ]

let suite =
  [
    Alcotest.test_case "binops differential (jobs 1-4)" `Quick
      test_binops_differential;
    Alcotest.test_case "exist/relprod differential" `Quick
      test_quant_differential;
    Alcotest.test_case "fused kernels differential" `Quick
      test_fused_differential;
    Alcotest.test_case "cross-manager satcount/shape" `Quick
      test_cross_manager;
    Alcotest.test_case "invariants with live chunks" `Quick
      test_invariants_during_parallel;
    Alcotest.test_case "stress: gc + reorder + parallel apply" `Slow
      test_stress;
    Alcotest.test_case "jobs_of_string" `Quick test_jobs_of_string;
  ]
