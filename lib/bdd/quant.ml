type man = Manager.t
type node = Manager.node

let tag_exist = Manager.register_tag "exist"
let tag_relprod = Manager.register_tag "relprod"

let zero = Manager.zero
let one = Manager.one

let varset m levels =
  let sorted = List.sort_uniq compare levels in
  List.fold_left
    (fun acc lvl -> Manager.mk m lvl zero acc)
    one (List.rev sorted)

let varset_levels m cube =
  let rec go acc c =
    if Manager.is_terminal c then List.rev acc
    else go (Manager.level m c :: acc) (Manager.high m c)
  in
  go [] cube

(* Advance the cube past variables above [lvl]: those cannot occur in the
   sub-BDD we are recursing into.  (Quantifying a variable that does not
   occur is the identity.) *)
let rec cube_from m cube lvl =
  if Manager.is_terminal cube || Manager.level m cube >= lvl then cube
  else cube_from m (Manager.high m cube) lvl

let rec exist m f cube =
  if Manager.is_terminal f then f
  else
    let lvl = Manager.level m f in
    let cube = cube_from m cube lvl in
    if Manager.is_terminal cube then f
    else
      let r = Manager.cache_lookup m tag_exist f cube 0 in
      if r >= 0 then r
      else
        let r0 = exist m (Manager.low m f) cube in
        let r1 = exist m (Manager.high m f) cube in
        let r =
          if Manager.level m cube = lvl then Ops.bor m r0 r1
          else Manager.mk m lvl r0 r1
        in
        Manager.cache_store m tag_exist f cube 0 r;
        r

let forall m f cube = Ops.bnot m (exist m (Ops.bnot m f) cube)

let rec relprod m f g cube =
  if f = zero || g = zero then zero
  else if Manager.is_terminal f && Manager.is_terminal g then one
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let lf = Manager.level m f and lg = Manager.level m g in
    let lvl = min lf lg in
    let cube = cube_from m cube lvl in
    if Manager.is_terminal cube then Ops.band m f g
    else
      let r = Manager.cache_lookup m tag_relprod f g cube in
      if r >= 0 then r
      else
        let f0, f1 =
          if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
        in
        let g0, g1 =
          if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
        in
        let r0 = relprod m f0 g0 cube in
        let r1 = relprod m f1 g1 cube in
        let r =
          if Manager.level m cube = lvl then Ops.bor m r0 r1
          else Manager.mk m lvl r0 r1
        in
        Manager.cache_store m tag_relprod f g cube r;
        r
  end

let support m f =
  let tbl = Hashtbl.create 256 in
  let levels = Hashtbl.create 64 in
  let rec go f =
    if (not (Manager.is_terminal f)) && not (Hashtbl.mem tbl f) then begin
      Hashtbl.add tbl f ();
      Hashtbl.replace levels (Manager.level m f) ();
      go (Manager.low m f);
      go (Manager.high m f)
    end
  in
  go f;
  varset m (Hashtbl.fold (fun l () acc -> l :: acc) levels [])
