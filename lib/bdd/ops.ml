type man = Manager.t
type node = Manager.node

(* Cache tags, allocated from the registry in {!Manager} so the shared
   cache can attribute per-tag hit/miss statistics by name. *)
let tag_not = Manager.register_tag "not"
let tag_and = Manager.register_tag "and"
let tag_or = Manager.register_tag "or"
let tag_xor = Manager.register_tag "xor"
let tag_diff = Manager.register_tag "diff"
let tag_ite = Manager.register_tag "ite"

let zero = Manager.zero
let one = Manager.one

let rec bnot m f =
  if f = zero then one
  else if f = one then zero
  else
    let r = Manager.cache_lookup m tag_not f 0 0 in
    if r >= 0 then r
    else
      let lvl = Manager.level m f in
      let r =
        Manager.mk m lvl (bnot m (Manager.low m f)) (bnot m (Manager.high m f))
      in
      Manager.cache_store m tag_not f 0 0 r;
      r

(* The four fundamental binary connectives share one recursion shape;
   specialising by hand keeps the terminal cases branch-light, which
   matters since this is the hottest code in the whole system. *)

let rec band m f g =
  if f = g then f
  else if f = zero || g = zero then zero
  else if f = one then g
  else if g = one then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = Manager.cache_lookup m tag_and f g 0 in
    if r >= 0 then r
    else
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let r = Manager.mk m lvl (band m f0 g0) (band m f1 g1) in
      Manager.cache_store m tag_and f g 0 r;
      r
  end

let rec bor m f g =
  if f = g then f
  else if f = one || g = one then one
  else if f = zero then g
  else if g = zero then f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = Manager.cache_lookup m tag_or f g 0 in
    if r >= 0 then r
    else
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let r = Manager.mk m lvl (bor m f0 g0) (bor m f1 g1) in
      Manager.cache_store m tag_or f g 0 r;
      r
  end

let rec bxor m f g =
  if f = g then zero
  else if f = zero then g
  else if g = zero then f
  else if f = one then bnot m g
  else if g = one then bnot m f
  else begin
    let f, g = if f < g then (f, g) else (g, f) in
    let r = Manager.cache_lookup m tag_xor f g 0 in
    if r >= 0 then r
    else
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let r = Manager.mk m lvl (bxor m f0 g0) (bxor m f1 g1) in
      Manager.cache_store m tag_xor f g 0 r;
      r
  end

let rec bdiff m f g =
  if f = g || f = zero || g = one then zero
  else if g = zero then f
  else if f = one then bnot m g
  else begin
    let r = Manager.cache_lookup m tag_diff f g 0 in
    if r >= 0 then r
    else
      let lf = Manager.level m f and lg = Manager.level m g in
      let lvl = min lf lg in
      let f0, f1 =
        if lf = lvl then (Manager.low m f, Manager.high m f) else (f, f)
      in
      let g0, g1 =
        if lg = lvl then (Manager.low m g, Manager.high m g) else (g, g)
      in
      let r = Manager.mk m lvl (bdiff m f0 g0) (bdiff m f1 g1) in
      Manager.cache_store m tag_diff f g 0 r;
      r
  end

let bnand m f g = bnot m (band m f g)
let bnor m f g = bnot m (bor m f g)
let bimp m f g = bor m (bnot m f) g
let bbiimp m f g = bnot m (bxor m f g)

let rec ite m f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else if g = zero && h = one then bnot m f
  else begin
    let r = Manager.cache_lookup m tag_ite f g h in
    if r >= 0 then r
    else
      let lf = Manager.level m f
      and lg = Manager.level m g
      and lh = Manager.level m h in
      let lvl = min lf (min lg lh) in
      let split x lx = if lx = lvl then (Manager.low m x, Manager.high m x) else (x, x) in
      let f0, f1 = split f lf in
      let g0, g1 = split g lg in
      let h0, h1 = split h lh in
      let r = Manager.mk m lvl (ite m f0 g0 h0) (ite m f1 g1 h1) in
      Manager.cache_store m tag_ite f g h r;
      r
  end

let cube m assignment =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare b a) assignment
    (* deepest level first, so we build bottom-up *)
  in
  List.fold_left
    (fun acc (lvl, polarity) ->
      if polarity then Manager.mk m lvl zero acc else Manager.mk m lvl acc zero)
    one sorted

let restrict m f assignment =
  (* Small assignments only; a sorted-list walk is clearer than a cache. *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) assignment in
  let tbl = Hashtbl.create 64 in
  let rec go f assigns =
    match assigns with
    | [] -> f
    | (lvl, polarity) :: rest ->
      if Manager.is_terminal f then f
      else
        let lf = Manager.level m f in
        if lf > lvl then go f rest
        else
          match Hashtbl.find_opt tbl (f, lvl) with
          | Some r -> r
          | None ->
            let r =
              if lf = lvl then go (if polarity then Manager.high m f else Manager.low m f) rest
              else
                Manager.mk m lf (go (Manager.low m f) assigns)
                  (go (Manager.high m f) assigns)
            in
            Hashtbl.add tbl (f, lvl) r;
            r
  in
  go f sorted
