lib/analyses/common.ml: Jedd_lang Jedd_minijava Jedd_relation List Printf String
