examples/common_setup.ml: Jedd_lang Jedd_relation
