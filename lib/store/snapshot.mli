(** Whole-universe snapshots: persistent, backend-portable captures of
    an analysis run — declarations, variable order, and every named
    relation as a shared-structure levelized BDD dump — with format
    versioning, an MD5 checksum over the body, and hard rejection of
    anything that fails to round-trip.  See [snapshot.ml] for the file
    layout. *)

type t = {
  u : Jedd_relation.Universe.t;
  meta : (string * string) list;
      (** Caller key/values; [to_bytes] appends [jedd.version] and
          [jedd.backend]. *)
  domains : (string * Jedd_relation.Domain.t) list;
  attrs : (string * Jedd_relation.Attribute.t) list;
  physdoms : (string * Jedd_relation.Physdom.t) list;
      (** In declaration order — this fixes variable allocation. *)
  relations : (string * Jedd_relation.Relation.t) list;
}

exception Corrupt of string
(** Raised by every loading entry point on bad magic, version skew,
    length/checksum mismatch, truncation, dangling names, malformed
    dumps, or a tuple-count mismatch after reconstruction. *)

val format_version : int

val to_bytes : t -> string
(** Serialize.  Raises [Invalid_argument] if a relation's support or
    schema escapes the declared physical domains (scratch domains are
    not persisted). *)

(** {2 Framing internals}

    Used by {!Delta} to splice snapshot payloads byte-for-byte; most
    callers want [to_bytes] / [of_bytes]. *)

val payload_of_bytes : string -> string
(** Verify the framing (magic, version, length, checksum) of snapshot
    file bytes and return the raw payload.  Raises [Corrupt]. *)

val bytes_of_payload : string -> string
(** Wrap a payload in the checksummed file framing (the inverse of
    [payload_of_bytes]). *)

val of_bytes :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?backend:Jedd_relation.Backend.kind ->
  ?freeze:bool ->
  string ->
  t
(** Rebuild a fresh universe (any backend — snapshots are
    backend-portable) and every relation.  Each relation's tuple count
    is re-verified against the recorded one.  [~freeze:true] lands the
    rebuilt universe directly in read-only serving mode
    ([Jedd_relation.Universe.freeze], in-core backend only): the final
    act of loading compacts the node store and fences off mutation. *)

val save_file : string -> t -> unit
(** Atomic (temp file + rename). *)

val load_file :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?backend:Jedd_relation.Backend.kind ->
  ?freeze:bool ->
  string ->
  t

val meta_value : t -> string -> string option

val find_relation : t -> string -> Jedd_relation.Relation.t option
(** Exact name, or an unambiguous ["Class."]-stripped suffix (["pt"]
    finds ["PointsTo.pt"]). *)
