(** Independent validation of unsatisfiability results, after Zhang &
    Malik's resolution-based checker (the paper's reference [30], the
    same work that gave zChaff its unsat-core extraction).

    The solver can log every clause it learns, in order; this module
    re-derives each one by {e reverse unit propagation} (RUP) against
    the original clauses plus the previously validated learned clauses —
    a check that is sound even though it trusts nothing about the
    solver's internals — and finally confirms the empty clause.  The
    checker deliberately shares no code with the solver: it uses its own
    naive unit propagation. *)

type proof = int list list
(** Learned clauses in derivation order (DIMACS literals), ending with
    the empty clause [[]]. *)

val check_rup : nvars:int -> int list list -> proof -> bool
(** [check_rup ~nvars originals proof] validates every proof step by
    RUP and requires the final step to be the empty clause.  Returns
    [false] on the first failing step. *)

val check_core : nvars:int -> int list list -> bool
(** Validate an extracted unsatisfiable core by an independent,
    saturation-style check: exhaustive resolution with subsumption on
    small cores, falling back to brute-force enumeration when the core
    mentions few variables.  Intended for the small cores the
    physical-domain diagnosis produces. *)
