lib/relation/attribute.mli: Domain Format
