(* Call-graph construction: reachable methods from the entry points over
   the resolved call edges (the Call Graph module of Figure 2).

   Reachability is a monotone fixed point over two mutually recursive
   accumulators (reachable methods, reachable call sites), driven
   semi-naively through Incr.Fixpoint.  [runNaive] keeps the paper's
   original loop for the differential suite. *)

module P = Jedd_minijava.Program
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module Fixpoint = Jedd_incr.Fixpoint

let source =
  "class CallGraph {\n\
  \  <callsite:C1, method:M1> callEdge;\n\
  \  <callsite:C1, srcmethod:M2> siteIn;\n\
  \  <method:M1> entry;\n\
  \  <method:M1> reachable = 0B;\n\
  \  <callsite:C1> reachableSites = 0B;\n\
  \  public <method:M1> seedCG() {\n\
  \    return entry;\n\
  \  }\n\
  \  public <callsite:C1> stepSites( <method:M1> dreach ) {\n\
  \    return siteIn{srcmethod} <> ((method=>srcmethod) dreach){srcmethod};\n\
  \  }\n\
  \  public <method:M1> stepReach( <callsite:C1> dsites ) {\n\
  \    return callEdge{callsite} <> dsites{callsite};\n\
  \  }\n\
  \  public void runNaive() {\n\
  \    reachable = entry;\n\
  \    <method:M1> delta = entry;\n\
  \    do {\n\
  \      <callsite:C1> sites = siteIn{srcmethod} <> ((method=>srcmethod) delta){srcmethod};\n\
  \      reachableSites |= sites;\n\
  \      <method:M1> tgts = callEdge{callsite} <> reachableSites{callsite};\n\
  \      delta = tgts - reachable;\n\
  \      reachable |= delta;\n\
  \    } while (delta != 0B);\n\
  \  }\n\
  }\n"

let load_facts inst (p : P.t) ~call_edges =
  Common.set_fact inst "CallGraph.callEdge" call_edges;
  Common.set_fact inst "CallGraph.siteIn"
    (List.map
       (fun (cs : P.call_site) -> [ cs.P.cs_id; cs.P.cs_in_method ])
       p.P.calls);
  Common.set_fact inst "CallGraph.entry"
    (List.map (fun m -> [ m ]) p.P.entry_methods)

(* Semi-naive solve from the current reachable/reachableSites state:
   cold from 0B, a warm resume after callEdge/siteIn/entry have grown. *)
let solve ?on_iter inst =
  let reach0 = Interp.get_field inst "CallGraph.reachable" in
  let sites0 = Interp.get_field inst "CallGraph.reachableSites" in
  let seed_reach = Common.call_rel inst "CallGraph.seedCG" [] in
  let seed_sites = Common.empty_rel inst "CallGraph.reachableSites" in
  let step ~deltas ~accs =
    Interp.set_field inst "CallGraph.reachable" accs.(0);
    Interp.set_field inst "CallGraph.reachableSites" accs.(1);
    let csites =
      Common.call_rel inst "CallGraph.stepSites" [ Common.arg deltas.(0) ]
    in
    let creach =
      Common.call_rel inst "CallGraph.stepReach" [ Common.arg deltas.(1) ]
    in
    [| creach; csites |]
  in
  let final, stats =
    Fixpoint.solve ?on_iter ~accs:[| reach0; sites0 |]
      ~seed:[| seed_reach; seed_sites |] ~step ()
  in
  R.release seed_reach;
  R.release seed_sites;
  Interp.set_field inst "CallGraph.reachable" final.(0);
  Interp.set_field inst "CallGraph.reachableSites" final.(1);
  Array.iter R.release final;
  stats

let run ?(reorder = false) inst =
  Pointsto.with_reorder reorder inst (fun () -> ignore (solve inst))

let run_naive ?(reorder = false) inst =
  Pointsto.with_reorder reorder inst (fun () ->
      ignore (Interp.call inst "CallGraph.runNaive" []))

let results inst = Common.get_tuples inst "CallGraph.reachable"
