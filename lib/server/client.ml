(* Synchronous client for the jeddd socket protocol: one request line
   out, one response line back.  Used by jeddq, the server tests, and
   the query-latency benchmark. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

exception Server_error of string
(** Raised by {!request_ok} when the response carries [ok: false]. *)

let connect socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
  }

let close c = try Unix.close c.fd with _ -> ()

let request c (v : Json.t) : Json.t =
  output_string c.oc (Json.to_string v);
  output_char c.oc '\n';
  flush c.oc;
  match input_line c.ic with
  | exception End_of_file -> raise (Server_error "connection closed by server")
  | line -> Json.of_string line

(* Build a request object; [verb] first so dumps read naturally. *)
let req verb fields = Json.Obj (("verb", Json.String verb) :: fields)

let request_ok c v =
  let resp = request c v in
  match Json.member "ok" resp with
  | Some (Json.Bool true) -> resp
  | _ ->
    let msg =
      match Json.member "error" resp with
      | Some (Json.String m) -> m
      | _ -> "request failed"
    in
    raise (Server_error msg)

let ping c = ignore (request_ok c (req "ping" []))

let count c rel =
  match
    Json.member "tuples" (request_ok c (req "count" [ ("rel", Json.String rel) ]))
  with
  | Some (Json.Int n) -> n
  | _ -> raise (Server_error "malformed count response")

let pointsto c var =
  match
    Json.member "heaps" (request_ok c (req "pointsto" [ ("var", Json.Int var) ]))
  with
  | Some (Json.List hs) ->
    List.filter_map (function Json.Int h -> Some h | _ -> None) hs
  | _ -> raise (Server_error "malformed pointsto response")

let shutdown c = ignore (request_ok c (req "shutdown" []))
