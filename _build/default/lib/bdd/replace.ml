type man = Manager.t
type node = Manager.node

type perm = { map : (int, int) Hashtbl.t; ident : bool }

let make_perm _m pairs =
  let pairs = List.filter (fun (s, d) -> s <> d) pairs in
  let map = Hashtbl.create 16 in
  let targets = Hashtbl.create 16 in
  List.iter
    (fun (src, dst) ->
      if Hashtbl.mem map src then
        invalid_arg "Replace.make_perm: duplicate source level";
      if Hashtbl.mem targets dst then
        invalid_arg "Replace.make_perm: non-injective permutation";
      Hashtbl.add map src dst;
      Hashtbl.add targets dst ())
    pairs;
  { map; ident = pairs = [] }

let identity _m = { map = Hashtbl.create 1; ident = true }
let is_identity p = p.ident || Hashtbl.length p.map = 0

let apply_level p lvl =
  match Hashtbl.find_opt p.map lvl with Some l -> l | None -> lvl

let replace m f p =
  if is_identity p then f
  else begin
    let memo = Hashtbl.create 1024 in
    let rec go f =
      if Manager.is_terminal f then f
      else
        match Hashtbl.find_opt memo f with
        | Some r -> r
        | None ->
          let r0 = go (Manager.low m f) in
          let r1 = go (Manager.high m f) in
          let lvl = apply_level p (Manager.level m f) in
          (* [ite] reinserts the variable at its new position even when
             the permutation is not order-preserving. *)
          let r = Ops.ite m (Manager.var m lvl) r1 r0 in
          Hashtbl.add memo f r;
          r
    in
    go f
  end
