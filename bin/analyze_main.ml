(* jedd-analyze: run the five interrelated whole-program analyses (§5,
   Figure 2) over a generated workload and report result sizes. *)

open Cmdliner
module Workload = Jedd_minijava.Workload
module Program = Jedd_minijava.Program
module Reference = Jedd_minijava.Reference
module Suite = Jedd_analyses.Suite

let backend_of_string s =
  try Jedd_relation.Backend.kind_of_string s
  with Invalid_argument msg ->
    Printf.eprintf "jedd-analyze: %s\n" msg;
    exit 2

(* --jobs N, then JEDD_JOBS, then the recommended domain count. *)
let resolve_jobs jobs =
  let parse s =
    try Jedd_bdd.Par.jobs_of_string s
    with Invalid_argument msg ->
      Printf.eprintf "jedd-analyze: %s\n" msg;
      exit 2
  in
  match (jobs, Sys.getenv_opt "JEDD_JOBS") with
  | Some s, _ -> parse s
  | None, Some s -> parse s
  | None, None -> Jedd_bdd.Par.default_jobs ()

let lint_suite p =
  (* lint each of the Figure 2 analyses as jeddc --lint would *)
  let worst = ref 0 in
  List.iter
    (fun (name, _) ->
      let compiled = Suite.compile_one p name in
      let report = Jedd_lint.Driver.lint compiled in
      Printf.printf "== %s ==\n%s\n" name (Jedd_lint.Driver.to_text report);
      worst := max !worst (Jedd_lint.Driver.exit_code report))
    Suite.analyses;
  exit !worst

(* Print the Table 1-style result-size summary shared by the run_all
   and run_combined paths. *)
let print_results (r : Suite.results) =
  Printf.printf "  Hierarchy            : %d subtype pairs\n"
    (List.length r.Suite.subtypes);
  Printf.printf "  Points-to Analysis   : %d (var, heap) pairs\n"
    (List.length r.Suite.pt);
  Printf.printf "  Virtual Call Resol.  : %d resolved targets\n"
    (List.length r.Suite.resolved);
  Printf.printf "  Call Graph           : %d reachable methods\n"
    (List.length r.Suite.reachable);
  Printf.printf "  Side-effect Analysis : %d (method, heap, field) triples\n"
    (List.length r.Suite.side_effects)

let run benchmark file verify reorder backend node_limit lint save_snapshot
    serve optimize jobs =
  let jobs = resolve_jobs jobs in
  let name, p =
    if file <> "" then (file, Jedd_minijava.Frontend.load_file file)
    else
      let profile =
        if benchmark = "tiny" then Workload.tiny
        else Workload.profile_named benchmark
      in
      (profile.Workload.name, Workload.generate profile)
  in
  if lint then lint_suite p;
  let backend =
    match (backend, Sys.getenv_opt "JEDD_BACKEND") with
    | Some b, _ -> Some (backend_of_string b)
    | None, Some b -> Some (backend_of_string b)
    | None, None -> None
  in
  (match backend with
  | Some `Extmem -> Format.printf "backend: extmem (out-of-core streaming)@."
  | Some `Hybrid ->
    Format.printf
      "backend: hybrid (per-operation incore/extmem dispatch from predicted \
       node counts)@."
  | Some `Mtbdd ->
    Format.printf
      "backend: mtbdd (terminal-valued BDDs; boolean analyses run as \
       0/1-weighted relations)@."
  | _ -> ());
  Format.printf "workload %s: %a@." name Program.pp_stats p;
  (* Stage-level parallelism lives in [Suite.run_combined]; the extmem
     and hybrid backends are single-domain, so parallel requests fall
     back there. *)
  let parallel =
    jobs > 1 && (backend = None || backend = Some `Incore)
  in
  if parallel then Format.printf "parallel: %d domains@." jobs;
  let t0 = Unix.gettimeofday () in
  let needs_instance = save_snapshot <> None || serve <> None in
  let oom () =
    Printf.eprintf
      "jedd-analyze: analysis exceeded the in-core memory budget (%s \
       nodes); retry with --backend=extmem to stream BDDs through \
       bounded memory, or raise --node-limit.\n"
      (match node_limit with Some n -> string_of_int n | None -> "?");
    exit 3
  in
  let inst, r =
    (* snapshotting and serving need the live combined instance; the
       plain report path keeps the historical per-analysis universes *)
    try
      if needs_instance || parallel then
        let inst, r =
          Suite.run_combined ?backend ?node_limit ~reorder ~jobs ~optimize p
        in
        (Some inst, r)
      else (None, Suite.run_all ?backend ?node_limit ~reorder ~optimize p)
    with Jedd_bdd.Manager.Out_of_nodes -> oom ()
  in
  Printf.printf "pipeline completed in %.2f s\n" (Unix.gettimeofday () -. t0);
  print_results r;
  let snap =
    Option.map
      (fun inst -> Suite.snapshot ~meta:[ ("workload", name) ] inst)
      inst
  in
  (match (save_snapshot, snap) with
  | Some path, Some snap ->
    Jedd_store.Snapshot.save_file path snap;
    Printf.printf "snapshot saved to %s (%d relations)\n" path
      (List.length snap.Jedd_store.Snapshot.relations)
  | _ -> ());
  (match (serve, snap) with
  | Some socket_path, Some snap ->
    let server = Jedd_server.Server.create ~socket_path snap in
    Printf.printf "jeddd: serving %s on %s (send {\"verb\":\"shutdown\"} to stop)\n%!"
      name socket_path;
    Jedd_server.Server.serve server
  | _ -> ());
  if verify then begin
    let ref_pt, _ = Reference.points_to p in
    let ref_targets = Reference.call_targets p ref_pt in
    let ref_reach = Reference.reachable p ref_targets in
    let ref_se = Reference.side_effects p ref_pt ref_targets in
    let ok =
      List.length r.Suite.pt = Reference.IPS.cardinal ref_pt
      && List.length r.Suite.call_edges = Reference.IPS.cardinal ref_targets
      && List.length r.Suite.reachable = Reference.IS.cardinal ref_reach
      && List.length r.Suite.side_effects = Reference.ITS.cardinal ref_se
    in
    Printf.printf "verification against reference implementations: %s\n"
      (if ok then "PASS" else "FAIL");
    if not ok then exit 1
  end

let benchmark_arg =
  Arg.(
    value
    & opt string "compress"
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Workload: tiny, javac, compress, javac-13, sablecc, jedit")

let file_arg =
  Arg.(
    value & opt string ""
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:"Analyse a hand-written .mjava program instead of a workload")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Check against reference analyses")

let reorder_arg =
  Arg.(
    value & flag
    & info [ "reorder" ]
        ~doc:
          "Enable dynamic variable-order optimization: a sifting pass over \
           the loaded facts plus an auto trigger at BDD safe points during \
           the points-to and call-graph solves")

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "Relation backend: $(b,incore) (default; hash-consed shared node \
           table), $(b,extmem) (out-of-core streaming BDDs: levelized \
           node files + priority-queue sweeps under the \
           JEDD_EXTMEM_PQ_BYTES / JEDD_EXTMEM_MEM_NODES byte budgets), \
           $(b,hybrid) (per-operation incore/extmem dispatch from \
           predicted node counts), or $(b,mtbdd) (terminal-valued BDDs: \
           boolean analyses run unchanged as 0/1-weighted relations and \
           support counting projections).  Falls back to the JEDD_BACKEND \
           environment variable.")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N"
        ~doc:
          "Cap each in-core BDD node table at N nodes; exceeding the cap \
           aborts the pipeline with a clean message suggesting \
           --backend=extmem")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the jeddlint checkers over each of the five analyses instead \
           of executing them; exits with the worst per-analysis lint code")

let save_snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-snapshot" ] ~docv:"FILE"
        ~doc:
          "After the pipeline completes, persist the combined analysis \
           universe (checksummed binary snapshot, both backends) to FILE; \
           jeddd can warm-start from it without recomputing")

let serve_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"SOCKET"
        ~doc:
          "After the pipeline completes, serve the results over a Unix \
           socket speaking the jeddd line/JSON protocol (query with jeddq)")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize-domains" ]
        ~doc:
          "Solve each physical-domain assignment with the weighted \
           objective: the static cost analysis weights every candidate \
           replace site by loop nesting and call-graph frequency, and the \
           SAT solve minimises the summed weight of the copies it keeps.  \
           Results are bit-identical; dynamic replace executions drop.")

let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the BDD engine and the analysis stages on $(docv) domains \
           (1..64).  Falls back to the JEDD_JOBS environment variable, then \
           to the machine's recommended domain count.  Results are \
           bit-identical to --jobs=1; the extmem backend is single-domain \
           and ignores this.")

let cmd =
  Cmd.v
    (Cmd.info "jedd-analyze" ~version:Jedd_relation.Version.banner
       ~doc:"Run the five BDD-based whole-program analyses of Figure 2")
    Term.(
      const run $ benchmark_arg $ file_arg $ verify_arg $ reorder_arg
      $ backend_arg $ node_limit_arg $ lint_arg $ save_snapshot_arg
      $ serve_arg $ optimize_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
