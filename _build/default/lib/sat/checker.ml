(* Independent unsatisfiability checking: reverse unit propagation over
   a plain clause list, no watched literals, no sharing with Solver. *)

type proof = int list list

(* Unit propagation to a fixpoint under the given assumptions.
   [clauses] is a plain list; assignment is a map var -> bool.
   Returns [`Conflict] if some clause is falsified, [`Stable] otherwise. *)
let propagate ~nvars clauses assumptions =
  let value = Array.make (nvars + 1) 0 (* 0 unknown / 1 true / -1 false *) in
  let assign lit =
    let v = abs lit in
    value.(v) <- (if lit > 0 then 1 else -1)
  in
  List.iter assign assumptions;
  let conflict = ref false in
  let changed = ref true in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun lit ->
              let v = value.(abs lit) in
              if v = 0 then unassigned := lit :: !unassigned
              else if (lit > 0 && v = 1) || (lit < 0 && v = -1) then
                satisfied := true)
            clause;
          if not !satisfied then
            match !unassigned with
            | [] -> conflict := true
            | [ unit_lit ] ->
              assign unit_lit;
              changed := true
            | _ -> ()
        end)
      clauses
  done;
  if !conflict then `Conflict else `Stable

(* A clause C has the RUP property w.r.t. a clause set F if unit
   propagation on F under the negation of C's literals conflicts. *)
let rup ~nvars clauses clause =
  let negated = List.map (fun l -> -l) clause in
  propagate ~nvars clauses negated = `Conflict

let check_rup ~nvars originals proof =
  (* normalise: the solver deduplicates literals internally, and the
     naive propagation here must see the same unit clauses it saw *)
  let originals = List.map (List.sort_uniq compare) originals in
  let rec go derived = function
    | [] -> false (* proof must end with the empty clause *)
    | step :: rest ->
      if not (rup ~nvars (originals @ List.rev derived) step) then false
      else if step = [] then true
      else go (step :: derived) rest
  in
  go [] proof

(* -- core validation ------------------------------------------------- *)

module Clause = struct
  (* clauses are sorted, duplicate-free literal lists *)
  let normalise c = List.sort_uniq compare c
  let tautology c = List.exists (fun l -> List.mem (-l) c) c

  let subsumes a b =
    (* a ⊆ b *)
    List.for_all (fun l -> List.mem l b) a

  let resolve a b pivot =
    normalise
      (List.filter (( <> ) pivot) a @ List.filter (( <> ) (-pivot)) b)
end

let variables clauses =
  List.sort_uniq compare (List.concat_map (List.map abs) clauses)

(* brute force over the mentioned variables, for narrow cores *)
let brute_force_unsat clauses =
  let vars = Array.of_list (variables clauses) in
  let n = Array.length vars in
  if n > 20 then None
  else begin
    let index v =
      let rec go i = if vars.(i) = v then i else go (i + 1) in
      go 0
    in
    let satisfied assignment =
      List.for_all
        (fun clause ->
          List.exists
            (fun lit ->
              let bit = (assignment lsr index (abs lit)) land 1 = 1 in
              if lit > 0 then bit else not bit)
            clause)
        clauses
    in
    let rec try_all a =
      if a >= 1 lsl n then Some true (* no model found: unsat *)
      else if satisfied a then Some false
      else try_all (a + 1)
    in
    try_all 0
  end

(* saturation with subsumption, bounded *)
let saturate_unsat clauses ~max_clauses =
  let db = ref (List.filter (fun c -> not (Clause.tautology c)) clauses) in
  let subsumed c = List.exists (fun d -> Clause.subsumes d c) !db in
  let found_empty = ref (List.mem [] !db) in
  let progress = ref true in
  while !progress && (not !found_empty) && List.length !db < max_clauses do
    progress := false;
    let snapshot = !db in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if not !found_empty then
              List.iter
                (fun pivot ->
                  if pivot > 0 && List.mem (-pivot) b then begin
                    let r = Clause.resolve a b pivot in
                    if not (Clause.tautology r) then
                      if r = [] then found_empty := true
                      else if not (subsumed r) then begin
                        db := r :: !db;
                        progress := true
                      end
                  end)
                a)
          snapshot)
      snapshot
  done;
  !found_empty

let check_core ~nvars clauses =
  ignore nvars;
  let clauses = List.map Clause.normalise clauses in
  match brute_force_unsat clauses with
  | Some answer -> answer
  | None -> saturate_unsat clauses ~max_clauses:20000
