(** Static liveness of relation variables (§4.2).

    "We perform a static liveness analysis on all relation variables,
    and at each point where a variable may become dead, we decrement the
    reference count of any BDD it may contain."

    [analyze] runs a backward may-live analysis over a method body
    (iterating loops to a fixpoint) and records, for each statement, the
    local variables and parameters whose last use is at that statement —
    the interpreter releases them right after executing it.  Fields are
    never killed (they stay live in their containers); a variable can be
    safely "killed" twice because releases are idempotent, which also
    covers the both-branches-of-an-if case. *)

type t

val analyze : Tast.tmeth -> t

val kills_after : t -> Tast.tstmt -> Tast.var_key list
(** Variables to release immediately after executing this statement
    occurrence (matched by physical identity). *)

val total_kill_sites : t -> int
(** Diagnostic: number of statements with at least one kill. *)
