lib/relation/relation.mli: Attribute Format Jedd_bdd Physdom Schema Universe
