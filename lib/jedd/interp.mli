(** The Jedd execution engine: instantiates a compiled program against
    the relation runtime and runs its methods.

    In the paper's toolchain this stage is "javac + JVM + Jedd runtime":
    jeddc's generated Java executes relational operations through the
    runtime library.  Here the lowered operations are interpreted
    directly; the operations performed, their physical domains, and the
    replaces inserted are exactly the ones the assignment dictates, so
    profiles and benchmarks measure the same work the generated Java
    would do.

    Memory management follows §4.2: each variable is a container holding
    its own reference-counted handle; assignments release the overwritten
    handle immediately; method exit releases locals and parameters;
    temporary results are released as soon as they are consumed. *)

type t

val instantiate :
  ?node_capacity:int ->
  ?node_limit:int ->
  ?backend:Jedd_relation.Backend.kind ->
  Tast.tprogram ->
  Encode.assignment ->
  t
(** Create the universe, declare the physical domains at their computed
    widths in declaration order, declare domains and attributes, and
    initialise every field to 0B (then run field initialisers). *)

val universe : t -> Jedd_relation.Universe.t

(** {2 Registry access for host code} *)

val domain : t -> string -> Jedd_relation.Domain.t
val attribute : t -> string -> Jedd_relation.Attribute.t
val physdom : t -> string -> Jedd_relation.Physdom.t

val schema_of_var : t -> string -> Jedd_relation.Schema.t
(** The assigned layout of a field or parameter, by qualified name
    ("Cls.field" or "Cls.meth.param"). *)

val is_field : t -> string -> bool

val registries :
  t ->
  (string * Jedd_relation.Domain.t) list
  * (string * Jedd_relation.Attribute.t) list
  * (string * Jedd_relation.Physdom.t) list
(** All declared (domains, attributes, physical domains) with their
    qualified-free names, in declaration order — what the snapshot
    layer persists. *)

val fields : t -> (string * Jedd_relation.Relation.t) list
(** Every field with its current relation, sorted by qualified name.
    The relations are the live containers, not copies. *)

val get_field : t -> string -> Jedd_relation.Relation.t
val set_field : t -> string -> Jedd_relation.Relation.t -> unit
(** The relation is coerced to the field's layout. *)

(** {2 Execution} *)

type value = VRel of Jedd_relation.Relation.t | VObj of int

exception Runtime_error of string

val call : t -> string -> value list -> Jedd_relation.Relation.t option
(** [call t "Cls.meth" args] runs a method.  Relation arguments are
    coerced to the parameter layouts.  Returns the return value for
    relation-returning methods. *)

val set_print_hook : t -> (string -> unit) -> unit
(** Where [print e;] statements go (default: stdout). *)
