(* Tests for the relational runtime: construction, set ops, projection,
   rename/copy, join/compose (§2.2), physical-domain replaces, layout
   coercion, extraction (§2.3), and memory accounting (§4.2).  Includes
   the paper's Figure 3 relation and property tests against a reference
   set-of-tuples semantics. *)

module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Phys = Jedd_relation.Physdom
module Attr = Jedd_relation.Attribute
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation

(* A small fixture mirroring the paper's §2 example: types, signatures,
   methods. *)
type fixture = {
  u : U.t;
  type_d : Dom.t;
  sig_d : Dom.t;
  method_d : Dom.t;
  t1 : Phys.t;
  t2 : Phys.t;
  s1 : Phys.t;
  m1 : Phys.t;
}

let fixture () =
  let u = U.create () in
  let type_d = Dom.declare ~name:"Type" ~size:8 () in
  let sig_d = Dom.declare ~name:"Signature" ~size:8 () in
  let method_d = Dom.declare ~name:"Method" ~size:8 () in
  let t1 = Phys.declare u ~name:"T1" ~bits:3 in
  let t2 = Phys.declare u ~name:"T2" ~bits:3 in
  let s1 = Phys.declare u ~name:"S1" ~bits:3 in
  let m1 = Phys.declare u ~name:"M1" ~bits:3 in
  { u; type_d; sig_d; method_d; t1; t2; s1; m1 }

let attr name domain = Attr.declare ~name ~domain

(* ------------------------------------------------------------------ *)

let test_empty_full () =
  let f = fixture () in
  let a = attr "type" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  Alcotest.(check int) "0B has no tuples" 0 (R.size (R.empty f.u sch));
  Alcotest.(check int) "1B has |domain| tuples" 8 (R.size (R.full f.u sch))

let test_full_non_power_of_two () =
  let u = U.create () in
  let d = Dom.declare ~name:"D" ~size:5 () in
  let p = Phys.declare u ~name:"P" ~bits:3 in
  let sch = Schema.make [ { Schema.attr = attr "a" d; phys = p } ] in
  Alcotest.(check int) "1B bounded by domain size" 5 (R.size (R.full u sch))

let test_figure3_relation () =
  (* The implementsMethod relation of Figure 3: two tuples. *)
  let f = fixture () in
  let type_a = attr "type" f.type_d in
  let sig_a = attr "signature" f.sig_d in
  let method_a = attr "method" f.method_d in
  let sch =
    Schema.make
      [
        { Schema.attr = type_a; phys = f.t1 };
        { Schema.attr = sig_a; phys = f.s1 };
        { Schema.attr = method_a; phys = f.m1 };
      ]
  in
  (* A=0, B=1; foo()=0, bar()=1; A.foo()=0, B.bar()=1 *)
  let r = R.of_tuples f.u sch [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ] in
  Alcotest.(check int) "two tuples" 2 (R.size r);
  Alcotest.(check (list (list int)))
    "tuples extracted"
    [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ]
    (R.tuples r)

let test_set_ops () =
  let f = fixture () in
  let a = attr "t" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let x = R.of_tuples f.u sch [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let y = R.of_tuples f.u sch [ [ 1 ]; [ 3 ] ] in
  Alcotest.(check (list (list int))) "union"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (R.tuples (R.union x y));
  Alcotest.(check (list (list int))) "intersection" [ [ 1 ] ]
    (R.tuples (R.inter x y));
  Alcotest.(check (list (list int))) "difference"
    [ [ 0 ]; [ 2 ] ]
    (R.tuples (R.diff x y))

let test_set_ops_auto_replace () =
  (* Same attributes, different physical domains: the runtime must
     insert the replace itself. *)
  let f = fixture () in
  let a = attr "t" f.type_d in
  let sch1 = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let sch2 = Schema.make [ { Schema.attr = a; phys = f.t2 } ] in
  let x = R.of_tuples f.u sch1 [ [ 0 ]; [ 1 ] ] in
  let y = R.of_tuples f.u sch2 [ [ 1 ]; [ 2 ] ] in
  let r = R.union x y in
  Alcotest.(check (list (list int))) "union across layouts"
    [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (R.tuples r);
  Alcotest.(check bool) "equal across layouts" true
    (R.equal x (R.coerce x sch2 |> fun x' -> x'))

let test_type_errors () =
  let f = fixture () in
  let a = attr "a" f.type_d in
  let b = attr "b" f.sig_d in
  let sch_a = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let sch_b = Schema.make [ { Schema.attr = b; phys = f.s1 } ] in
  let x = R.full f.u sch_a in
  let y = R.full f.u sch_b in
  let raises name f =
    match f () with
    | exception R.Type_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Type_error" name
  in
  raises "union schema mismatch" (fun () -> R.union x y);
  raises "project missing attr" (fun () -> R.project_away x [ b ]);
  raises "rename missing attr" (fun () -> R.rename x [ (b, a) ]);
  raises "join missing attr" (fun () -> R.join x [ b ] y [ b ]);
  raises "tuple arity" (fun () -> R.tuple f.u sch_a [ 1; 2 ]);
  raises "tuple range" (fun () -> R.tuple f.u sch_a [ 99 ])

let test_schema_invariants () =
  let f = fixture () in
  let a = attr "a" f.type_d in
  let b = attr "b" f.type_d in
  let inv name g =
    match g () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  inv "duplicate attribute" (fun () ->
      Schema.make
        [ { Schema.attr = a; phys = f.t1 }; { Schema.attr = a; phys = f.t2 } ]);
  inv "shared physical domain" (fun () ->
      Schema.make
        [ { Schema.attr = a; phys = f.t1 }; { Schema.attr = b; phys = f.t1 } ]);
  inv "too narrow" (fun () ->
      let wide = Dom.declare ~name:"Wide" ~size:100 () in
      Schema.make [ { Schema.attr = attr "w" wide; phys = f.t1 } ])

let test_project () =
  let f = fixture () in
  let a = attr "a" f.type_d and b = attr "b" f.sig_d in
  let sch =
    Schema.make
      [ { Schema.attr = a; phys = f.t1 }; { Schema.attr = b; phys = f.s1 } ]
  in
  (* (0,0) (0,1) (1,0): projecting away b leaves {0,1}. *)
  let r = R.of_tuples f.u sch [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ] in
  let p = R.project_away r [ b ] in
  Alcotest.(check (list (list int))) "projection merges tuples"
    [ [ 0 ]; [ 1 ] ]
    (R.tuples p);
  Alcotest.(check int) "schema shrank" 1 (Schema.arity (R.schema p))

let test_rename () =
  let f = fixture () in
  let a = attr "a" f.type_d and b = attr "b" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let r = R.of_tuples f.u sch [ [ 3 ] ] in
  let r' = R.rename r [ (a, b) ] in
  Alcotest.(check bool) "renamed attr present" true (Schema.mem (R.schema r') b);
  Alcotest.(check bool) "old attr gone" false (Schema.mem (R.schema r') a);
  Alcotest.(check (list (list int))) "tuples unchanged" [ [ 3 ] ] (R.tuples r');
  (* Rename does not touch the BDD. *)
  Alcotest.(check bool) "same BDD root" true (R.root r = R.root r')

let test_copy () =
  let f = fixture () in
  let a = attr "a" f.type_d and c = attr "c" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let r = R.of_tuples f.u sch [ [ 2 ]; [ 5 ] ] in
  let r' = R.copy ~phys:f.t2 r a ~as_:c in
  Alcotest.(check (list (list int))) "each tuple duplicated attribute"
    [ [ 2; 2 ]; [ 5; 5 ] ]
    (R.tuples r');
  (* copy with automatic scratch physdom *)
  let r'' = R.copy r a ~as_:c in
  Alcotest.(check (list (list int))) "scratch copy"
    [ [ 2; 2 ]; [ 5; 5 ] ]
    (R.tuples r'')

let test_join () =
  let f = fixture () in
  let t = attr "type" f.type_d in
  let s = attr "sig" f.sig_d in
  let mth = attr "method" f.method_d in
  let t' = attr "type2" f.type_d in
  let left_sch =
    Schema.make
      [ { Schema.attr = t; phys = f.t1 }; { Schema.attr = s; phys = f.s1 } ]
  in
  let right_sch =
    Schema.make
      [ { Schema.attr = t'; phys = f.t2 }; { Schema.attr = mth; phys = f.m1 } ]
  in
  (* left: (1, 0) (2, 1); right: (1, 4) (3, 5) — join on type=type2 *)
  let left = R.of_tuples f.u left_sch [ [ 1; 0 ]; [ 2; 1 ] ] in
  let right = R.of_tuples f.u right_sch [ [ 1; 4 ]; [ 3; 5 ] ] in
  let j = R.join left [ t ] right [ t' ] in
  Alcotest.(check (list (list int))) "join result" [ [ 1; 0; 4 ] ] (R.tuples j);
  Alcotest.(check int) "join keeps left compared attr" 3
    (Schema.arity (R.schema j))

let test_join_multi_attr () =
  let f = fixture () in
  let t = attr "type" f.type_d and s = attr "sig" f.sig_d in
  let t' = attr "type2" f.type_d and s' = attr "sig2" f.sig_d in
  let mth = attr "method" f.method_d in
  let left_sch =
    Schema.make
      [ { Schema.attr = t; phys = f.t1 }; { Schema.attr = s; phys = f.s1 } ]
  in
  let right_sch =
    Schema.make
      [
        { Schema.attr = t'; phys = f.t1 };
        { Schema.attr = s'; phys = f.s1 };
        { Schema.attr = mth; phys = f.m1 };
      ]
  in
  let left = R.of_tuples f.u left_sch [ [ 1; 1 ]; [ 2; 2 ] ] in
  let right = R.of_tuples f.u right_sch [ [ 1; 1; 6 ]; [ 2; 1; 7 ] ] in
  let j = R.join left [ t; s ] right [ t'; s' ] in
  Alcotest.(check (list (list int))) "two-attribute join"
    [ [ 1; 1; 6 ] ]
    (R.tuples j)

let test_compose () =
  let f = fixture () in
  let sub = attr "subtype" f.type_d in
  let sup = attr "supertype" f.type_d in
  let t = attr "tgttype" f.type_d in
  let to_resolve_sch = Schema.make [ { Schema.attr = t; phys = f.t2 } ] in
  let extend_sch =
    Schema.make
      [ { Schema.attr = sub; phys = f.t2 }; { Schema.attr = sup; phys = f.t1 } ]
  in
  (* extend: B(1) extends A(0). toResolve currently at B. *)
  let to_resolve = R.of_tuples f.u to_resolve_sch [ [ 1 ] ] in
  let extend = R.of_tuples f.u extend_sch [ [ 1; 0 ] ] in
  let stepped = R.compose to_resolve [ t ] extend [ sub ] in
  Alcotest.(check (list (list int))) "moved up hierarchy" [ [ 0 ] ]
    (R.tuples stepped);
  Alcotest.(check int) "compared attrs projected away" 1
    (Schema.arity (R.schema stepped))

let test_compose_equals_join_project () =
  let f = fixture () in
  let a = attr "a" f.type_d and b = attr "b" f.sig_d in
  let a' = attr "a2" f.type_d and c = attr "c" f.method_d in
  let left_sch =
    Schema.make
      [ { Schema.attr = a; phys = f.t1 }; { Schema.attr = b; phys = f.s1 } ]
  in
  let right_sch =
    Schema.make
      [ { Schema.attr = a'; phys = f.t2 }; { Schema.attr = c; phys = f.m1 } ]
  in
  let left = R.of_tuples f.u left_sch [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let right = R.of_tuples f.u right_sch [ [ 0; 5 ]; [ 1; 6 ]; [ 5; 7 ] ] in
  let composed = R.compose left [ a ] right [ a' ] in
  let joined = R.project_away (R.join left [ a ] right [ a' ]) [ a ] in
  Alcotest.(check (list (list int))) "compose = join;project"
    (R.tuples joined) (R.tuples composed)

let test_join_same_physdom_collision () =
  (* Both operands keep everything in the same physical domains; the
     runtime must move the right side out of the way. *)
  let f = fixture () in
  let a = attr "a" f.type_d and b = attr "b" f.type_d in
  let a' = attr "a2" f.type_d and c = attr "c" f.type_d in
  let sch_l =
    Schema.make
      [ { Schema.attr = a; phys = f.t1 }; { Schema.attr = b; phys = f.t2 } ]
  in
  let sch_r =
    Schema.make
      [ { Schema.attr = a'; phys = f.t1 }; { Schema.attr = c; phys = f.t2 } ]
  in
  let left = R.of_tuples f.u sch_l [ [ 0; 1 ]; [ 2; 3 ] ] in
  let right = R.of_tuples f.u sch_r [ [ 0; 4 ]; [ 2; 5 ]; [ 6; 7 ] ] in
  let j = R.join left [ a ] right [ a' ] in
  Alcotest.(check (list (list int))) "collision-safe join"
    [ [ 0; 1; 4 ]; [ 2; 3; 5 ] ]
    (R.tuples j)

let test_select () =
  let f = fixture () in
  let a = attr "a" f.type_d and b = attr "b" f.sig_d in
  let sch =
    Schema.make
      [ { Schema.attr = a; phys = f.t1 }; { Schema.attr = b; phys = f.s1 } ]
  in
  let r = R.of_tuples f.u sch [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check (list (list int))) "select a=0"
    [ [ 0; 0 ]; [ 0; 1 ] ]
    (R.tuples (R.select r [ (a, 0) ]));
  Alcotest.(check (list (list int))) "select a=0,b=1"
    [ [ 0; 1 ] ]
    (R.tuples (R.select r [ (a, 0); (b, 1) ]))

let test_replace_explicit () =
  let f = fixture () in
  let a = attr "a" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let r = R.of_tuples f.u sch [ [ 3 ]; [ 6 ] ] in
  let r' = R.replace r [ (a, f.t2) ] in
  Alcotest.(check bool) "physdom changed" true
    (Phys.equal (Schema.phys_of (R.schema r') a) f.t2);
  Alcotest.(check (list (list int))) "contents preserved"
    [ [ 3 ]; [ 6 ] ]
    (R.tuples r')

let test_replace_width_mismatch () =
  (* Moving between physical domains of different widths. *)
  let u = U.create () in
  let d = Dom.declare ~name:"D" ~size:6 () in
  let narrow = Phys.declare u ~name:"N" ~bits:3 in
  let wide = Phys.declare u ~name:"W" ~bits:5 in
  let a = attr "a" d in
  let sch_n = Schema.make [ { Schema.attr = a; phys = narrow } ] in
  let r = R.of_tuples u sch_n [ [ 1 ]; [ 5 ] ] in
  let widened = R.replace r [ (a, wide) ] in
  Alcotest.(check (list (list int))) "narrow->wide" [ [ 1 ]; [ 5 ] ]
    (R.tuples widened);
  let back = R.replace widened [ (a, narrow) ] in
  Alcotest.(check (list (list int))) "wide->narrow" [ [ 1 ]; [ 5 ] ]
    (R.tuples back)

let test_iter_objects () =
  let f = fixture () in
  let a = attr "a" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let r = R.of_tuples f.u sch [ [ 2 ]; [ 4 ]; [ 7 ] ] in
  let objs = ref [] in
  R.iter_objects r (fun o -> objs := o :: !objs);
  Alcotest.(check (list int)) "objects" [ 2; 4; 7 ] (List.sort compare !objs)

let test_to_string () =
  let f = fixture () in
  let type_a = attr "type" f.type_d in
  let sch = Schema.make [ { Schema.attr = type_a; phys = f.t1 } ] in
  let r = R.of_tuples f.u sch [ [ 0 ] ] in
  let s = R.to_string r in
  Alcotest.(check bool) "header present" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    match lines with
    | header :: _ -> String.trim header = "type"
    | [] -> false)

let test_release_accounting () =
  let f = fixture () in
  let a = attr "a" f.type_d in
  let sch = Schema.make [ { Schema.attr = a; phys = f.t1 } ] in
  let before = R.live_root_count f.u in
  let r = R.full f.u sch in
  Alcotest.(check int) "one more live root" (before + 1)
    (R.live_root_count f.u);
  R.release r;
  Alcotest.(check int) "released" before (R.live_root_count f.u);
  (* releasing twice is harmless *)
  R.release r;
  Alcotest.(check int) "double release harmless" before (R.live_root_count f.u)

(* ---------------- property tests: BDD relations vs a reference
   set-of-tuples implementation --------------------------------------- *)

module TupleSet = Set.Make (struct
  type t = int list

  let compare = compare
end)

let prop_ops_match_reference =
  QCheck.Test.make ~count:100
    ~name:"relation algebra matches reference set semantics"
    QCheck.(pair (int_bound 1000000) (int_bound 100))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed; extra |] in
      let rand n = Random.State.int st n in
      let u = U.create () in
      let d1 = Dom.declare ~name:"D1" ~size:5 () in
      let d2 = Dom.declare ~name:"D2" ~size:7 () in
      let p1 = Phys.declare u ~name:"P1" ~bits:3 in
      let p2 = Phys.declare u ~name:"P2" ~bits:3 in
      let p3 = Phys.declare u ~name:"P3" ~bits:3 in
      let a = attr "a" d1 and b = attr "b" d2 in
      let a' = attr "a2" d1 and c = attr "c" d2 in
      let sch_ab =
        Schema.make
          [ { Schema.attr = a; phys = p1 }; { Schema.attr = b; phys = p2 } ]
      in
      let sch_ac =
        Schema.make
          [ { Schema.attr = a'; phys = p1 }; { Schema.attr = c; phys = p3 } ]
      in
      let random_tuples n gen =
        List.init n (fun _ -> gen ()) |> List.sort_uniq compare
      in
      let ts1 =
        random_tuples (rand 12) (fun () -> [ rand 5; rand 7 ])
      in
      let ts2 =
        random_tuples (rand 12) (fun () -> [ rand 5; rand 7 ])
      in
      let ts3 = random_tuples (rand 12) (fun () -> [ rand 5; rand 7 ]) in
      let r1 = R.of_tuples u sch_ab ts1 in
      let r2 = R.of_tuples u sch_ab ts2 in
      let r3 = R.of_tuples u sch_ac ts3 in
      let s1 = TupleSet.of_list ts1 in
      let s2 = TupleSet.of_list ts2 in
      let s3 = TupleSet.of_list ts3 in
      (* union / inter / diff *)
      let check_set op_name got expect =
        if got <> TupleSet.elements expect then
          QCheck.Test.fail_reportf "%s mismatch" op_name
      in
      check_set "union" (R.tuples (R.union r1 r2)) (TupleSet.union s1 s2);
      check_set "inter" (R.tuples (R.inter r1 r2)) (TupleSet.inter s1 s2);
      check_set "diff" (R.tuples (R.diff r1 r2)) (TupleSet.diff s1 s2);
      (* project *)
      let proj =
        TupleSet.elements s1
        |> List.map (fun t -> [ List.nth t 0 ])
        |> List.sort_uniq compare
      in
      if R.tuples (R.project_away r1 [ b ]) <> proj then
        QCheck.Test.fail_reportf "project mismatch";
      (* join on a=a2: (a b) >< (a2 c) = (a b c) where a=a2 *)
      let join_ref =
        List.concat_map
          (fun t1 ->
            List.filter_map
              (fun t2 ->
                if List.nth t1 0 = List.nth t2 0 then
                  Some [ List.nth t1 0; List.nth t1 1; List.nth t2 1 ]
                else None)
              (TupleSet.elements s3))
          (TupleSet.elements s1)
        |> List.sort_uniq compare
      in
      if R.tuples (R.join r1 [ a ] r3 [ a' ]) <> join_ref then
        QCheck.Test.fail_reportf "join mismatch";
      (* compose on a=a2 *)
      let compose_ref =
        List.map (fun t -> List.tl t) join_ref |> List.sort_uniq compare
      in
      if R.tuples (R.compose r1 [ a ] r3 [ a' ]) <> compose_ref then
        QCheck.Test.fail_reportf "compose mismatch";
      (* size *)
      if R.size r1 <> TupleSet.cardinal s1 then
        QCheck.Test.fail_reportf "size mismatch";
      true)

(* algebraic laws of the relational operators, on random relations *)
let prop_algebraic_laws =
  QCheck.Test.make ~count:100 ~name:"relational algebra laws"
    QCheck.(pair (int_bound 1000000) (int_bound 100))
    (fun (seed, extra) ->
      let st = Random.State.make [| seed; extra; 3 |] in
      let rand n = Random.State.int st n in
      let u = U.create () in
      let d1 = Dom.declare ~name:"D1" ~size:6 () in
      let d2 = Dom.declare ~name:"D2" ~size:6 () in
      let p1 = Phys.declare u ~name:"P1" ~bits:3 in
      let p2 = Phys.declare u ~name:"P2" ~bits:3 in
      let p3 = Phys.declare u ~name:"P3" ~bits:3 in
      let a = attr "a" d1 and b = attr "b" d2 in
      let a' = attr "a2" d1 and c = attr "c" d2 in
      let sch =
        Schema.make
          [ { Schema.attr = a; phys = p1 }; { Schema.attr = b; phys = p2 } ]
      in
      let sch2 =
        Schema.make
          [ { Schema.attr = a'; phys = p1 }; { Schema.attr = c; phys = p3 } ]
      in
      let random_rel s =
        R.of_tuples u s
          (List.init (rand 10) (fun _ -> [ rand 6; rand 6 ])
          |> List.sort_uniq compare)
      in
      let x = random_rel sch and y = random_rel sch and z = random_rel sch in
      let w = random_rel sch2 in
      let ( === ) r1 r2 = R.equal r1 r2 in
      (* boolean-algebra laws *)
      R.union x y === R.union y x
      && R.inter x y === R.inter y x
      && R.union x (R.union y z) === R.union (R.union x y) z
      && R.inter x (R.union y z) === R.union (R.inter x y) (R.inter x z)
      && R.diff x y === R.inter x (R.diff (R.full u sch) y)
      (* idempotence and identities *)
      && R.union x x === x
      && R.inter x (R.full u sch) === x
      && R.diff x (R.empty u sch) === x
      (* join distributes over union in its left argument *)
      && R.join (R.union x y) [ a ] w [ a' ]
         === R.union (R.join x [ a ] w [ a' ]) (R.join y [ a ] w [ a' ])
      (* projection after union = union of projections *)
      && R.project_away (R.union x y) [ b ]
         === R.union (R.project_away x [ b ]) (R.project_away y [ b ])
      (* rename round-trip *)
      &&
      let renamed = R.rename x [ (a, a') ] in
      R.rename renamed [ (a', a) ] === x
      (* copy then project the copy = original *)
      &&
      let copied = R.copy x a ~as_:a' in
      R.project_away copied [ a' ] === x)

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~verbose:false)
    [ prop_ops_match_reference; prop_algebraic_laws ]

let suite =
  [
    Alcotest.test_case "empty and full" `Quick test_empty_full;
    Alcotest.test_case "full non-power-of-two" `Quick test_full_non_power_of_two;
    Alcotest.test_case "figure 3 relation" `Quick test_figure3_relation;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "set ops auto-replace" `Quick test_set_ops_auto_replace;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "schema invariants" `Quick test_schema_invariants;
    Alcotest.test_case "projection" `Quick test_project;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "join on two attributes" `Quick test_join_multi_attr;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "compose = join;project" `Quick
      test_compose_equals_join_project;
    Alcotest.test_case "join with physdom collision" `Quick
      test_join_same_physdom_collision;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "explicit replace" `Quick test_replace_explicit;
    Alcotest.test_case "replace width mismatch" `Quick
      test_replace_width_mismatch;
    Alcotest.test_case "iter objects" `Quick test_iter_objects;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "release accounting" `Quick test_release_accounting;
  ]
  @ qcheck_cases
