lib/analyses/callgraph.ml: Common Jedd_lang Jedd_minijava List
