open Tast

module S = Set.Make (String)

(* Statements carry no ids; methods are small, so kills are recorded in
   a physical-identity association list. *)
type t = { mutable kills : (tstmt * var_key list) list }

let record t s keys =
  if keys <> [] then t.kills <- (s, keys) :: t.kills

let kills_after t s =
  let rec find = function
    | [] -> []
    | (s', ks) :: rest -> if s' == s then ks else find rest
  in
  find t.kills

let total_kill_sites t = List.length t.kills

(* variables (locals and parameters, by key) an expression reads *)
let rec expr_uses (e : texpr) acc =
  match e.edesc with
  | TVar ((Vlocal | Vparam), key) -> S.add key acc
  | TVar (Vfield, _) | TEmpty | TFull | TLiteral _ -> acc
  | TBinop (_, l, r) -> expr_uses l (expr_uses r acc)
  | TReplace (_, c) -> expr_uses c acc
  | TJoin (_, l, _, r, _) -> expr_uses l (expr_uses r acc)
  | TCall (_, args) ->
    List.fold_left
      (fun acc (a : targ) ->
        match a with Targ_rel te -> expr_uses te acc | Targ_obj _ -> acc)
      acc args

let rec cond_uses (c : tcond) acc =
  match c with
  | TBool _ -> acc
  | TNot c -> cond_uses c acc
  | TAnd (a, b) | TOr (a, b) -> cond_uses a (cond_uses b acc)
  | TCmp_eq (l, r) | TCmp_ne (l, r) -> expr_uses l (expr_uses r acc)

(* Backward transfer.  [record_pass] controls whether kill sets are
   written (only on the final fixpoint pass, so loop bodies do not keep
   stale kill sets from early iterations). *)
let rec transfer t ~record_pass (s : tstmt) (live_out : S.t) : S.t =
  let kill_set used defined =
    S.elements (S.diff (S.union used defined) live_out)
  in
  match s with
  | TBlock stmts ->
    List.fold_right
      (fun s live -> transfer t ~record_pass s live)
      stmts live_out
  | TDecl (key, init, _) ->
    let used =
      match init with Some e -> expr_uses e S.empty | None -> S.empty
    in
    if record_pass then record t s (kill_set used (S.singleton key));
    S.union used (S.remove key live_out)
  | TAssign (key, kind, e, _) ->
    let used = expr_uses e S.empty in
    let defined =
      if kind = Vlocal || kind = Vparam then S.singleton key else S.empty
    in
    if record_pass then record t s (kill_set used defined);
    S.union used (S.diff live_out defined)
  | TOp_assign (_, key, kind, e, _) ->
    (* reads and writes the variable *)
    let used =
      let u = expr_uses e S.empty in
      if kind = Vlocal || kind = Vparam then S.add key u else u
    in
    if record_pass then record t s (kill_set used S.empty);
    S.union used live_out
  | TIf (c, th, el) ->
    let live_th = transfer t ~record_pass th live_out in
    let live_el =
      match el with
      | Some el -> transfer t ~record_pass el live_out
      | None -> live_out
    in
    let branches = S.union live_th live_el in
    let used_c = cond_uses c S.empty in
    (* condition-only variables die after the whole statement *)
    if record_pass then
      record t s (S.elements (S.diff used_c (S.union live_out branches)));
    S.union used_c branches
  | TWhile (c, body) ->
    let used_c = cond_uses c S.empty in
    let rec fixpoint live =
      let live' =
        S.union live (transfer t ~record_pass:false body (S.union live used_c))
      in
      if S.equal live' live then live else fixpoint live'
    in
    let live_in = fixpoint (S.union live_out used_c) in
    if record_pass then
      ignore (transfer t ~record_pass:true body (S.union live_in used_c));
    live_in
  | TDo_while (body, c) ->
    let used_c = cond_uses c S.empty in
    let rec fixpoint live =
      let live' =
        S.union live (transfer t ~record_pass:false body (S.union live used_c))
      in
      if S.equal live' live then live else fixpoint live'
    in
    let live_in = fixpoint (S.union live_out used_c) in
    if record_pass then
      ignore (transfer t ~record_pass:true body (S.union live_in used_c));
    live_in
  | TReturn (e, _) ->
    (* frame teardown releases everything anyway *)
    (match e with Some e -> expr_uses e S.empty | None -> S.empty)
  | TExpr e ->
    let used = expr_uses e S.empty in
    if record_pass then record t s (kill_set used S.empty);
    S.union used live_out
  | TPrint e ->
    let used = expr_uses e S.empty in
    if record_pass then record t s (kill_set used S.empty);
    S.union used live_out

let analyze (m : tmeth) : t =
  let t = { kills = [] } in
  ignore
    (List.fold_right
       (fun s live -> transfer t ~record_pass:true s live)
       m.tm_body S.empty);
  t
