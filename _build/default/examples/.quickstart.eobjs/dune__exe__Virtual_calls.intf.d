examples/virtual_calls.mli:
