(* Quickstart: the relational API on the paper's Figure 3 example.

   Run with:  dune exec examples/quickstart.exe

   Declares the domains and attributes of §2.1, builds the
   implementsMethod relation of Figure 3, and walks through the §2.2
   operations: literal construction, union, join, projection, and
   extraction back to the host (§2.3). *)

module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Phys = Jedd_relation.Physdom
module Attr = Jedd_relation.Attribute
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation

let () =
  let u = U.create () in
  (* Domains: named finite sets of objects, with printers so relations
     display like the paper's figures. *)
  let type_names = [| "A"; "B" |] in
  let sig_names = [| "foo()"; "bar()" |] in
  let method_names = [| "A.foo()"; "B.bar()" |] in
  let type_d =
    Dom.declare ~name:"Type" ~size:2 ~printer:(fun i -> type_names.(i)) ()
  in
  let sig_d =
    Dom.declare ~name:"Signature" ~size:2 ~printer:(fun i -> sig_names.(i)) ()
  in
  let method_d =
    Dom.declare ~name:"Method" ~size:2 ~printer:(fun i -> method_names.(i)) ()
  in
  (* Physical domains: blocks of BDD variables. *)
  let t1 = Phys.declare u ~name:"T1" ~bits:2 in
  let s1 = Phys.declare u ~name:"S1" ~bits:2 in
  let m1 = Phys.declare u ~name:"M1" ~bits:2 in
  (* Attributes: named uses of a domain. *)
  let type_a = Attr.declare ~name:"type" ~domain:type_d in
  let sig_a = Attr.declare ~name:"signature" ~domain:sig_d in
  let method_a = Attr.declare ~name:"method" ~domain:method_d in
  (* <type:T1, signature:S1, method:M1> implementsMethod *)
  let schema =
    Schema.make
      [
        { Schema.attr = type_a; phys = t1 };
        { Schema.attr = sig_a; phys = s1 };
        { Schema.attr = method_a; phys = m1 };
      ]
  in
  (* new { A=>type, foo()=>signature, A.foo()=>method } twice, unioned —
     producing exactly the Figure 3 relation. *)
  let implements_method =
    R.of_tuples u schema [ [ 0; 0; 0 ]; [ 1; 1; 1 ] ]
  in
  print_endline "implementsMethod (Figure 3):";
  print_string (R.to_string implements_method);
  Printf.printf "size() = %d tuples\n\n" (R.size implements_method);
  (* Projection: remove the method attribute. *)
  let typed_sigs = R.project_away implements_method [ method_a ] in
  print_endline "(method=>) implementsMethod:";
  print_string (R.to_string typed_sigs);
  print_newline ();
  (* Selection (§2.2.4): which method does B implement? *)
  let b_methods = R.select implements_method [ (type_a, 1) ] in
  print_endline "selection type=B:";
  print_string (R.to_string b_methods);
  print_newline ();
  (* A join: pair every signature with the classes declaring it. *)
  let sig_a2 = Attr.declare ~name:"signature2" ~domain:sig_d in
  let s2 = Phys.declare u ~name:"S2" ~bits:2 in
  let wanted_schema = Schema.make [ { Schema.attr = sig_a2; phys = s2 } ] in
  let wanted = R.of_tuples u wanted_schema [ [ 1 ] ] in
  let found = R.join implements_method [ sig_a ] wanted [ sig_a2 ] in
  print_endline "join against {bar()}:";
  print_string (R.to_string found);
  print_newline ();
  (* Extraction back to the host language (§2.3). *)
  print_endline "iterating tuples from the BDD:";
  R.iter_tuples implements_method (fun tup ->
      Printf.printf "  %s declares %s as %s\n" type_names.(tup.(0))
        sig_names.(tup.(1)) method_names.(tup.(2)));
  (* Constant-time equality (§2.2.1). *)
  let again = R.of_tuples u schema [ [ 1; 1; 1 ]; [ 0; 0; 0 ] ] in
  Printf.printf "\nrebuilt relation == original: %b\n"
    (R.equal implements_method again)
