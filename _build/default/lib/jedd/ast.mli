(** Abstract syntax of Jedd programs: the Java-lite host subset plus the
    relational extensions of the paper's Figure 5.

    Attribute, domain, and physical-domain names are unresolved strings
    here; {!Typecheck} resolves them against the declarations and
    produces the typed form. *)

type pos = { file : string; line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit
(** Prints [file:line,col] — the position format of the paper's error
    messages (§3.3.3). *)

(** [<attr>] or [<attr:PHYS>] in declarations and literals. *)
type attr_phys = { attr_name : string; phys_name : string option }

(** A relation type written in source: [<a, b:P1, c>]. *)
type rel_type = { elems : attr_phys list; type_pos : pos }

(** Replacement inside a cast-like prefix (Figure 5, [Replacement]):
    [(a=>)] projection, [(a=>b)] rename, [(a=>b c)] copy. *)
type replacement =
  | Project_away of string
  | Rename_to of string * string
  | Copy_to of string * string * string

type join_kind = Join  (** [><] *) | Compose  (** [<>] *)

type set_op = Union  (** [|] *) | Inter  (** [&] *) | Diff  (** [-] *)

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Var of string  (** local, parameter or field of relation type *)
  | Empty  (** 0B *)
  | Full  (** 1B *)
  | Literal of (obj_expr * attr_phys) list
      (** [new { o=>attr, ... }]; each piece may carry a physdom. *)
  | Binop of set_op * expr * expr
  | Replace of replacement list * expr
  | JoinExpr of join_kind * expr * string list * expr * string list
      (** [x{as} >< y{bs}] / [x{as} <> y{bs}] *)
  | Call of string * arg list  (** intra-program method call *)

and obj_expr =
  | Obj_var of string  (** an object-typed parameter *)
  | Obj_int of int  (** an integer denoting the object directly *)

and arg = Arg_rel of expr | Arg_obj of obj_expr

type cond = { cdesc : cond_desc; cpos : pos }

and cond_desc =
  | Cmp_eq of expr * expr  (** [==] *)
  | Cmp_ne of expr * expr  (** [!=] *)
  | Not of cond
  | And of cond * cond
  | Or of cond * cond
  | Bool_lit of bool

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of rel_type * string * expr option
      (** [<a,b> x = e;] — local declaration *)
  | Assign of string * expr  (** [x = e;] *)
  | Op_assign of set_op * string * expr  (** [x |= e;] etc. *)
  | If of cond * stmt * stmt option
  | While of cond * stmt
  | Do_while of stmt * cond
  | Block of stmt list
  | Return of expr option
  | Expr_stmt of expr  (** bare call *)
  | Print of expr  (** [print e;] — host-facing debug aid (tostring()) *)

(** A formal parameter: a relation with a declared schema, or an object
    drawn from a domain. *)
type param =
  | Param_rel of rel_type * string
  | Param_obj of string * string  (** domain name, parameter name *)

type meth = {
  meth_name : string;
  meth_params : param list;
  meth_return : rel_type option;  (** [None] = void *)
  meth_body : stmt list;
  meth_pos : pos;
}

type field = {
  field_type : rel_type;
  field_name : string;
  field_init : expr option;
  field_pos : pos;
}

type cls = {
  cls_name : string;
  fields : field list;
  methods : meth list;
  cls_pos : pos;
}

type decl =
  | Domain_decl of string * int * pos  (** [domain Type 1024;] *)
  | Attribute_decl of string * string * pos  (** [attribute type : Type;] *)
  | Physdom_decl of string * int option * pos
      (** [physdom T1;] or [physdom T1 10;] (bits = lower bound) *)
  | Class_decl of cls

type program = decl list
