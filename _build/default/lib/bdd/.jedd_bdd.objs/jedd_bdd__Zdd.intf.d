lib/bdd/zdd.mli: Manager
