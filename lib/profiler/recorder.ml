module U = Jedd_relation.Universe

type row = { seq : int; event : U.op_event }

type summary = {
  op : string;
  label : string;
  executions : int;
  total_millis : float;
  max_result_nodes : int;
  total_result_tuples : int;
  cache_hits : int;
  cache_misses : int;
  gcs : int;
  gc_millis : float;
  reorders : int;
  reorder_swaps : int;
  reorder_millis : float;
  spill_runs : int;
  spilled_bytes : int;
  io_millis : float;
}

type t = { mutable events : row list; mutable next_seq : int }

let create () = { events = []; next_seq = 0 }

let record t event =
  t.events <- { seq = t.next_seq; event } :: t.events;
  t.next_seq <- t.next_seq + 1

let attach t u ~level =
  U.set_profile_level u level;
  U.set_on_op u (Some (record t))

let detach u =
  U.set_profile_level u U.Off;
  U.set_on_op u None

let rows t = List.rev t.events
let total_operations t = t.next_seq

let clear t =
  t.events <- [];
  t.next_seq <- 0

let summaries t =
  let table = Hashtbl.create 32 in
  List.iter
    (fun { event = e; _ } ->
      let key = (e.U.op, e.U.label) in
      let current =
        match Hashtbl.find_opt table key with
        | Some s -> s
        | None ->
          {
            op = e.U.op;
            label = e.U.label;
            executions = 0;
            total_millis = 0.0;
            max_result_nodes = 0;
            total_result_tuples = 0;
            cache_hits = 0;
            cache_misses = 0;
            gcs = 0;
            gc_millis = 0.0;
            reorders = 0;
            reorder_swaps = 0;
            reorder_millis = 0.0;
            spill_runs = 0;
            spilled_bytes = 0;
            io_millis = 0.0;
          }
      in
      let hits, misses, gcs, gc_millis, reorders, rswaps, rmillis =
        match e.U.bdd with
        | Some d ->
          ( d.U.cache_hits,
            d.U.cache_misses,
            d.U.gcs,
            d.U.gc_millis,
            d.U.reorders,
            d.U.reorder_swaps,
            d.U.reorder_millis )
        | None -> (0, 0, 0, 0.0, 0, 0, 0.0)
      in
      let sruns, sbytes, io_ms =
        match e.U.bdd with
        | Some d -> (d.U.spill_runs, d.U.spilled_bytes, d.U.io_millis)
        | None -> (0, 0, 0.0)
      in
      Hashtbl.replace table key
        {
          current with
          executions = current.executions + 1;
          total_millis = current.total_millis +. e.U.millis;
          max_result_nodes = max current.max_result_nodes e.U.result_nodes;
          total_result_tuples =
            current.total_result_tuples + e.U.result_tuples;
          cache_hits = current.cache_hits + hits;
          cache_misses = current.cache_misses + misses;
          gcs = current.gcs + gcs;
          gc_millis = current.gc_millis +. gc_millis;
          reorders = current.reorders + reorders;
          reorder_swaps = current.reorder_swaps + rswaps;
          reorder_millis = current.reorder_millis +. rmillis;
          spill_runs = current.spill_runs + sruns;
          spilled_bytes = current.spilled_bytes + sbytes;
          io_millis = current.io_millis +. io_ms;
        })
    t.events;
  Hashtbl.fold (fun _ s acc -> s :: acc) table []
  |> List.sort (fun a b -> compare b.total_millis a.total_millis)
