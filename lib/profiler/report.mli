(** Render a {!Recorder}'s contents the three ways the paper's profiler
    does: a browsable HTML report (overview → per-operation drill-down →
    per-execution BDD shape charts), a CSV table, and the SQL dump that
    substitutes for the paper's SQLite database. *)

val to_html :
  ?engine:Jedd_reorder.Reorder.t ->
  ?universe:Jedd_relation.Universe.t ->
  Recorder.t ->
  string
(** A self-contained HTML page: overview table sorted by cost, one
    anchor-linked section per operation with a line per execution, and
    inline SVG bar charts of BDD shapes when shape profiling was on.
    With [?engine] (a universe's reorder engine) a "Variable order"
    section is appended: live-node histogram per level, node attribution
    per physical-domain block, and the reorder-pass log.  With
    [?universe], a "Parallelism" section is appended: pool width,
    fork/steal traffic, stop-the-world phases, barrier waits, chunk
    refills and per-domain cache-slot counters
    ({!Recorder.parallelism_stats}). *)

val to_csv : Recorder.t -> string
(** One row per recorded execution. *)

val to_sql : Recorder.t -> string
(** [CREATE TABLE] + [INSERT] statements loadable into any SQL engine —
    the format the paper's runtime wrote for its CGI views. *)

val write_files :
  ?engine:Jedd_reorder.Reorder.t ->
  ?universe:Jedd_relation.Universe.t ->
  Recorder.t ->
  dir:string ->
  prefix:string ->
  string list
(** Write [prefix.html], [prefix.csv], [prefix.sql] — plus
    [prefix.parallelism.csv] when [?universe] is given — under [dir];
    returns the paths written. *)
