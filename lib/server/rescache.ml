(* Bounded, sharded result cache for the query path.  Keys are canonical
   request strings (verb + sorted args + universe hash — see Qeval);
   values are the successful reply's payload fields.  Sharding by key
   hash keeps lock contention negligible with many worker domains;
   eviction is FIFO per shard, which is close enough to LRU for a
   serving cache and needs no per-hit bookkeeping under the lock. *)

type shard = {
  lock : Mutex.t;
  tbl : (string, (string * Json.t) list) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
}

type t = {
  shards : shard array;
  per_shard_cap : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let nshards = 16

let create ~capacity =
  if capacity < nshards then invalid_arg "Rescache.create: capacity too small";
  {
    shards =
      Array.init nshards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            order = Queue.create ();
          });
    per_shard_cap = capacity / nshards;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let shard_of t key = t.shards.(Hashtbl.hash key land (nshards - 1))

let find t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl key in
  Mutex.unlock s.lock;
  (match r with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  r

let add t key fields =
  let s = shard_of t key in
  Mutex.lock s.lock;
  if not (Hashtbl.mem s.tbl key) then begin
    if Hashtbl.length s.tbl >= t.per_shard_cap then begin
      (match Queue.take_opt s.order with
      | Some victim ->
        Hashtbl.remove s.tbl victim;
        Atomic.incr t.evictions
      | None -> ());
      ()
    end;
    Hashtbl.add s.tbl key fields;
    Queue.add key s.order
  end;
  Mutex.unlock s.lock

(* Drop every entry whose key ends with [suffix].  Keys embed the
   universe hash as a "#<hex>" suffix (see Qeval.cache_key), so this is
   how a generation swap retires the old snapshot's answers from a
   cache shared across generations.  Returns the number evicted. *)
let evict_suffix t suffix =
  Array.fold_left
    (fun evicted s ->
      Mutex.lock s.lock;
      let victims =
        Hashtbl.fold
          (fun k _ acc -> if String.ends_with ~suffix k then k :: acc else acc)
          s.tbl []
      in
      List.iter (Hashtbl.remove s.tbl) victims;
      if victims <> [] then begin
        let keep = Queue.create () in
        Queue.iter
          (fun k -> if Hashtbl.mem s.tbl k then Queue.add k keep)
          s.order;
        Queue.clear s.order;
        Queue.transfer keep s.order
      end;
      Mutex.unlock s.lock;
      let n = List.length victims in
      if n > 0 then ignore (Atomic.fetch_and_add t.evictions n);
      evicted + n)
    0 t.shards

let entries t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions

let stats_json t : Json.t =
  Json.Obj
    [
      ("hits", Json.Int (hits t));
      ("misses", Json.Int (misses t));
      ("evictions", Json.Int (evictions t));
      ("entries", Json.Int (entries t));
    ]
