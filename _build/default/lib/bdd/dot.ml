let to_dot ?(var_name = fun lvl -> Printf.sprintf "x%d" lvl) m root =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  n0 [shape=box,label=\"0\"];\n";
  Buffer.add_string buf "  n1 [shape=box,label=\"1\"];\n";
  let seen = Hashtbl.create 256 in
  let rec go f =
    if (not (Manager.is_terminal f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" f
           (var_name (Manager.level m f)));
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=dashed];\n" f (Manager.low m f));
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d;\n" f (Manager.high m f));
      go (Manager.low m f);
      go (Manager.high m f)
    end
  in
  go root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let print_ascii_shape ?(width = 50) ppf m root =
  let counts = Count.shape m root in
  let maxc = Array.fold_left max 1 counts in
  Array.iteri
    (fun lvl c ->
      if c > 0 then
        Format.fprintf ppf "%4d |%s %d@." lvl
          (String.make (c * width / maxc) '#')
          c)
    counts
