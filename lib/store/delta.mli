(** Differential snapshots: the persistent form of an incremental
    re-solve.

    A delta records everything needed to reconstruct a full snapshot
    from an earlier one: the digest of the base snapshot object, the
    result snapshot's header sections (declarations, variable order,
    meta) verbatim, the result's relation ordering, and the raw encoded
    entries of only the relations whose bytes changed.  Applying a
    delta splices unchanged entries out of the base payload, so the
    output is byte-identical to the full snapshot the producer had —
    and is verified against the recorded result digest before being
    returned.

    Deltas chain: a delta's base may itself be a delta object in the
    same content-addressed store.  [load_chain] walks the chain down to
    a full snapshot and replays it forward. *)

type t = {
  meta : (string * string) list;
      (** Caller key/values (e.g. the edit description, generation). *)
  base : string;  (** Hex digest of the base object (snapshot or delta). *)
  result : string;
      (** Hex digest of the full snapshot bytes that applying produces. *)
  prefix : string;
      (** The result payload's header sections (meta, domains, attrs,
          physdoms), verbatim. *)
  order : string list;  (** Relation names, in result payload order. *)
  changed : (string * string) list;
      (** Relation name -> raw encoded entry, for entries that differ
          from the base (or are new). *)
}

val format_version : int

val diff :
  ?meta:(string * string) list -> base:string -> next:string -> unit -> t
(** [diff ~base ~next ()] — both full snapshot {e file} bytes — records
    the entries of [next] that are absent from or byte-different in
    [base].  Raises [Snapshot.Corrupt] if either input fails framing
    verification. *)

val apply : base:string -> t -> string
(** Replay a delta onto the base snapshot's file bytes, returning the
    full result snapshot's file bytes.  Verifies that [base] hashes to
    the recorded base digest and that the output hashes to the recorded
    result digest; raises [Snapshot.Corrupt] (with expected vs. found
    digests) otherwise. *)

val to_bytes : t -> string
(** Serialize with the same framing discipline as snapshots:
    ["JEDDDELT"] magic, format version, payload length, MD5 checksum. *)

val of_bytes : string -> t
(** Raises [Snapshot.Corrupt] on bad magic, version skew, length or
    checksum mismatch, or truncation. *)

val kind : string -> [ `Snapshot | `Delta | `Unknown ]
(** Classify object bytes by magic, for dispatch when reading from a
    {!Cas} store that holds both. *)

val load_chain : ?max_depth:int -> Cas.t -> string -> string
(** [load_chain cas key] fetches an object (ref name or digest), and if
    it is a delta, recursively loads its base and replays forward,
    returning full snapshot file bytes ready for [Snapshot.of_bytes].
    Raises [Snapshot.Corrupt] on a dangling base, an over-deep chain
    ([max_depth], default 64), or an unrecognized object; propagates
    {!Cas.Corrupt_object} from damaged blobs. *)
