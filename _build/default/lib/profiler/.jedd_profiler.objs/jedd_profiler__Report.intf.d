lib/profiler/report.mli: Recorder
