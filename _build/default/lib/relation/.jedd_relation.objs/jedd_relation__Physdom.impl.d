lib/relation/physdom.ml: Domain Jedd_bdd List Universe
