lib/relation/attribute.ml: Domain Format Stdlib
