lib/jedd/encode.mli: Constraints Jedd_sat Tast
