lib/jedd/tast.ml: Ast Hashtbl List String
