(* Tests for the incremental analysis engine (lib/incr + Live):
   semi-naive vs naive differential, the edit model, warm resumes, and
   randomized edit sequences replayed incrementally vs from-scratch. *)

module P = Jedd_minijava.Program
module Workload = Jedd_minijava.Workload
module Suite = Jedd_analyses.Suite
module Live = Jedd_analyses.Live
module Edit = Jedd_incr.Edit
module Fixpoint = Jedd_incr.Fixpoint
module R = Jedd_relation.Relation

let tiny () = Workload.generate Workload.tiny

let small () =
  Workload.generate
    {
      Workload.tiny with
      Workload.name = "small";
      classes = 12;
      sigs_per_class = 3;
      vars_per_method = 4;
      assign_factor = 5;
      field_ops_per_method = 2;
      calls_per_method = 2;
      seed = 7;
    }

let sorted l = List.sort_uniq compare l

let check_results what (a : Suite.results) (b : Suite.results) =
  let eq name x y =
    Alcotest.(check (list (list int)))
      (what ^ ": " ^ name)
      (sorted x) (sorted y)
  in
  eq "subtypes" a.Suite.subtypes b.Suite.subtypes;
  eq "pt" a.Suite.pt b.Suite.pt;
  eq "resolved" a.Suite.resolved b.Suite.resolved;
  eq "call_edges" a.Suite.call_edges b.Suite.call_edges;
  eq "reachable" a.Suite.reachable b.Suite.reachable;
  eq "side_effects" a.Suite.side_effects b.Suite.side_effects

(* -- semi-naive vs naive ------------------------------------------------ *)

let test_semi_naive_matches_naive_incore () =
  let p = small () in
  let _, semi = Suite.run_combined p in
  let _, naive = Suite.run_combined ~naive:true p in
  check_results "incore" naive semi

let test_semi_naive_matches_naive_extmem () =
  let p = tiny () in
  let _, semi = Suite.run_combined ~backend:`Extmem p in
  let _, naive = Suite.run_combined ~backend:`Extmem ~naive:true p in
  check_results "extmem" naive semi

let test_fixpoint_stats_shape () =
  let p = tiny () in
  let _, _ = Suite.run_combined p in
  (* exercise the combinator directly through an analysis instance *)
  let inst, _ = Suite.run_combined p in
  let st = Jedd_analyses.Hierarchy.solve inst in
  (* resuming an already-solved fixed point must do zero work *)
  Alcotest.(check int) "resolved fixed point resumes in one iteration" 1
    st.Fixpoint.iterations;
  Alcotest.(check int) "no new tuples on a no-op resume" 0
    (Fixpoint.total_delta st)

(* -- edit model --------------------------------------------------------- *)

let test_edit_validation () =
  let p = tiny () in
  let bad f = try ignore (f ()); false with Edit.Invalid_edit _ -> true in
  Alcotest.(check bool) "bad superclass" true
    (bad (fun () -> Edit.apply p (Edit.Add_class { superclass = Some 999 })));
  Alcotest.(check bool) "bad var" true
    (bad (fun () -> Edit.apply p (Edit.Add_assign { src = -1; dst = 0 })));
  Alcotest.(check bool) "missing fact" true
    (bad (fun () ->
         Edit.apply p (Edit.Remove_assign { src = 999999; dst = 999999 })));
  Alcotest.(check bool) "missing callsite" true
    (bad (fun () -> Edit.apply p (Edit.Remove_callsite { callsite = 99999 })))

let test_edit_tombstones () =
  let p = tiny () in
  let cs = (List.hd p.P.calls).P.cs_id in
  let p' = Edit.apply p (Edit.Remove_callsite { callsite = cs }) in
  Alcotest.(check int) "one fewer call site"
    (List.length p.P.calls - 1)
    (List.length p'.P.calls);
  (* ids are never reused: the next id is past the removed one *)
  Alcotest.(check bool) "id space not compacted" true
    (Edit.next_callsite_id p' = Edit.next_callsite_id p);
  let p'' =
    Edit.apply p'
      (Edit.Add_callsite { recv = 0; signature = 0; in_method = 0 })
  in
  Alcotest.(check int) "fresh id allocated above the tombstone"
    (Edit.next_callsite_id p)
    (List.fold_left
       (fun a (c : P.call_site) -> max a c.P.cs_id)
       0 p''.P.calls)

(* -- live sessions ------------------------------------------------------ *)

let from_scratch p =
  let _, r = Suite.run_combined p in
  r

let test_live_cold_matches_combined () =
  let p = small () in
  let live = Live.create p in
  check_results "cold" (from_scratch p) (Live.results live)

let test_live_single_edits () =
  let p = small () in
  let live = Live.create p in
  let edits =
    [
      Edit.Add_assign { src = 1; dst = 2 };
      Edit.Add_callsite { recv = 3; signature = 0; in_method = 1 };
      Edit.Add_alloc { var = 2; cls = 1 };
      Edit.Add_class { superclass = Some 0 };
      Edit.Add_store { src = 1; base = 2; field = 0 };
      Edit.Add_load { base = 2; field = 0; dst = 3 };
    ]
  in
  ignore
    (List.fold_left
       (fun () e ->
         let st = Live.update live e in
         Alcotest.(check bool)
           (Edit.describe e ^ " stays incremental")
           true
           (st.Live.mode = Live.Incremental);
         check_results (Edit.describe e) (from_scratch (Live.program live))
           (Live.results live))
       () edits)

let test_live_method_edit_partial () =
  let p = small () in
  let live = Live.create p in
  (* a new method may override existing resolutions: vcall resets *)
  let st =
    Live.update live
      (Edit.Add_method { cls = 1; signature = p.P.n_sigs - 1; n_vars = 2; entry = false })
  in
  Alcotest.(check bool) "declares growth is not plain incremental" true
    (st.Live.mode = Live.Partial || st.Live.mode = Live.Incremental);
  check_results "add-method" (from_scratch (Live.program live))
    (Live.results live)

let test_live_removal_rebuild () =
  let p = small () in
  let live = Live.create p in
  let src, dst = List.hd p.P.assigns in
  let st = Live.update live (Edit.Remove_assign { src; dst }) in
  Alcotest.(check bool) "fact removal forces a rebuild" true
    (st.Live.mode = Live.Rebuild);
  check_results "rm-assign" (from_scratch (Live.program live))
    (Live.results live)

let test_live_capacity_recompile () =
  let p = tiny () in
  let live = Live.create p in
  (* add classes until the padded Type domain overflows *)
  let rec go n saw_recompile =
    if n = 0 then saw_recompile
    else
      let st = Live.update live (Edit.Add_class { superclass = None }) in
      go (n - 1) (saw_recompile || st.Live.mode = Live.Recompile)
  in
  let saw = go (Jedd_analyses.Common.pad_for_headroom p.P.n_classes + 2) false in
  Alcotest.(check bool) "capacity overflow recompiles" true saw;
  check_results "post-recompile" (from_scratch (Live.program live))
    (Live.results live)

let test_live_random_sequence () =
  let p = small () in
  let live = Live.create p in
  let rng = Random.State.make [| 0xbeef; 42 |] in
  for i = 1 to 12 do
    let e = Edit.random rng (Live.program live) in
    let _st = Live.update live e in
    check_results
      (Printf.sprintf "random edit %d (%s)" i (Edit.describe e))
      (from_scratch (Live.program live))
      (Live.results live)
  done

let test_live_random_additions_stay_incremental () =
  let p = tiny () in
  let live = Live.create p in
  let rng = Random.State.make [| 7; 7; 7 |] in
  for _ = 1 to 10 do
    let e = Edit.random ~removals:false rng (Live.program live) in
    let st = Live.update live e in
    Alcotest.(check bool)
      (Edit.describe e ^ ": additions never rebuild")
      true
      (match st.Live.mode with
      | Live.Rebuild -> false
      | Live.Incremental | Live.Partial | Live.Recompile -> true)
  done;
  check_results "after additions" (from_scratch (Live.program live))
    (Live.results live)

let suite =
  [
    Alcotest.test_case "semi-naive = naive (incore)" `Quick
      test_semi_naive_matches_naive_incore;
    Alcotest.test_case "semi-naive = naive (extmem)" `Slow
      test_semi_naive_matches_naive_extmem;
    Alcotest.test_case "no-op resume does no work" `Quick
      test_fixpoint_stats_shape;
    Alcotest.test_case "edit validation" `Quick test_edit_validation;
    Alcotest.test_case "edit tombstones" `Quick test_edit_tombstones;
    Alcotest.test_case "live cold = combined" `Quick
      test_live_cold_matches_combined;
    Alcotest.test_case "live single edits (incremental)" `Quick
      test_live_single_edits;
    Alcotest.test_case "live add-method (partial)" `Quick
      test_live_method_edit_partial;
    Alcotest.test_case "live removal (rebuild)" `Quick
      test_live_removal_rebuild;
    Alcotest.test_case "live capacity overflow (recompile)" `Slow
      test_live_capacity_recompile;
    Alcotest.test_case "live random edit sequence" `Slow
      test_live_random_sequence;
    Alcotest.test_case "live random additions" `Quick
      test_live_random_additions_stay_incremental;
  ]
