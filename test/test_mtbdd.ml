(* Tests for the terminal-valued (MTBDD) engine and the weighted
   relation surface built on it.

   Part 1 exercises the store directly: randomized terminal-op property
   tests (apply commutativity and identities, threshold∘of_bool = id,
   exist aggregation against brute-force enumeration, replace and the
   fused relprod kernel against their unfused compositions).

   Part 2 drives the weighted Relation API, and part 3 runs the two
   weighted analyses end to end on a generated program, differencing
   every count against a recount of the boolean in-core results — the
   projection bit-identity that anchors the whole backend. *)

module Mt = Jedd_mtbdd.Mtbdd
module M = Jedd_bdd.Manager
module Ops = Jedd_bdd.Ops
module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Attr = Jedd_relation.Attribute
module Phys = Jedd_relation.Physdom
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation
module Workload = Jedd_minijava.Workload
module Suite = Jedd_analyses.Suite
module Weighted = Jedd_analyses.Weighted

let nlevels = 6
let formula_bits = 4 (* keep levels 4,5 free as replace targets *)
let all_levels = List.init nlevels Fun.id
let all_levels_a = Array.of_list all_levels
let formula_levels = List.init formula_bits Fun.id

(* The weighted indicator of one assignment of the formula levels: a
   chain of nodes with terminal [w] on the assignment's path and 0
   elsewhere (levels [formula_bits..nlevels-1] stay free). *)
let weighted_cube st bits w =
  let node = ref (Mt.terminal st w) in
  for lvl = formula_bits - 1 downto 0 do
    node :=
      (if bits.(lvl) then Mt.mk st lvl (Mt.zero st) !node
       else Mt.mk st lvl !node (Mt.zero st))
  done;
  !node

(* A random diagram as a sum of weighted assignment indicators. *)
let random_diagram rand st =
  let acc = ref (Mt.zero st) in
  for _ = 1 to 1 + Random.State.int rand 8 do
    let bits = Array.init formula_bits (fun _ -> Random.State.bool rand) in
    let w = 1 + Random.State.int rand 9 in
    acc := Mt.apply st Mt.Add !acc (weighted_cube st bits w)
  done;
  !acc

(* Brute-force map of a diagram: assignment bits (as an int) -> value. *)
let table st f =
  let out = Hashtbl.create 64 in
  Mt.iter_weighted st f ~levels:all_levels_a (fun bits w ->
      let key =
        Array.fold_left (fun a b -> (a lsl 1) lor if b then 1 else 0) 0 bits
      in
      Hashtbl.replace out key w);
  out

let sat_add a b = min Mt.value_cap (a + b)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > Mt.value_cap / b then Mt.value_cap
  else a * b

let op_fun = function
  | Mt.Add -> sat_add
  | Mt.Min -> min
  | Mt.Max -> max
  | Mt.Mul -> sat_mul
  | Mt.Diff -> fun a b -> if b = 0 then a else 0

let test_apply_properties () =
  let rand = Random.State.make [| 42 |] in
  let st = Mt.create () in
  for round = 1 to 60 do
    let f = random_diagram rand st in
    let g = random_diagram rand st in
    (* commutativity of the commutative ops: identical handles *)
    List.iter
      (fun op ->
        Alcotest.(check int)
          (Printf.sprintf "round %d: apply commutes" round)
          (Mt.apply st op f g) (Mt.apply st op g f))
      [ Mt.Add; Mt.Min; Mt.Max; Mt.Mul ];
    (* identities *)
    Alcotest.(check int) "f + 0 = f" f (Mt.apply st Mt.Add f (Mt.zero st));
    Alcotest.(check int) "f * 1 = f" f (Mt.apply st Mt.Mul f (Mt.one st));
    Alcotest.(check int) "max f 0 = f" f (Mt.apply st Mt.Max f (Mt.zero st));
    Alcotest.(check int) "f - 0B = f" f (Mt.apply st Mt.Diff f (Mt.zero st));
    Alcotest.(check int) "f * 0 = 0" (Mt.zero st)
      (Mt.apply st Mt.Mul f (Mt.zero st));
    (* pointwise semantics against brute force *)
    List.iter
      (fun op ->
        let tf = table st f and tg = table st g in
        let th = table st (Mt.apply st op f g) in
        let expect = Hashtbl.create 64 in
        for key = 0 to (1 lsl nlevels) - 1 do
          let a = Option.value (Hashtbl.find_opt tf key) ~default:0 in
          let b = Option.value (Hashtbl.find_opt tg key) ~default:0 in
          let v = (op_fun op) a b in
          if v <> 0 then Hashtbl.replace expect key v
        done;
        Alcotest.(check int)
          (Printf.sprintf "round %d: pointwise size" round)
          (Hashtbl.length expect) (Hashtbl.length th);
        Hashtbl.iter
          (fun key v ->
            Alcotest.(check int) "pointwise value" v
              (Option.value (Hashtbl.find_opt th key) ~default:0))
          expect)
      [ Mt.Add; Mt.Min; Mt.Max; Mt.Mul; Mt.Diff ];
    Mt.checkpoint st
  done

let test_exist_aggregation () =
  let rand = Random.State.make [| 43 |] in
  let st = Mt.create () in
  for round = 1 to 40 do
    let f = random_diagram rand st in
    let q =
      List.filter (fun _ -> Random.State.bool rand) all_levels
    in
    let keep = List.filter (fun l -> not (List.mem l q)) all_levels in
    let tf = table st f in
    (* project the brute-force table down to the kept levels *)
    let project agg =
      let out = Hashtbl.create 32 in
      Hashtbl.iter
        (fun key v ->
          let kkey =
            List.fold_left
              (fun a l -> (a lsl 1) lor ((key lsr (nlevels - 1 - l)) land 1))
              0 keep
          in
          let prev = Option.value (Hashtbl.find_opt out kkey) ~default:0 in
          Hashtbl.replace out kkey
            (match agg with Mt.Sum -> sat_add prev v | Mt.Max_agg -> max prev v))
        tf;
      out
    in
    List.iter
      (fun agg ->
        let r = Mt.exist st agg f q in
        let tr = table st r in
        (* re-key the result over the kept levels only *)
        let got = Hashtbl.create 32 in
        Hashtbl.iter
          (fun key v ->
            let kkey =
              List.fold_left
                (fun a l -> (a lsl 1) lor ((key lsr (nlevels - 1 - l)) land 1))
                0 keep
            in
            Hashtbl.replace got kkey v)
          tr;
        let expect = project agg in
        Alcotest.(check int)
          (Printf.sprintf "round %d: exist size" round)
          (Hashtbl.length expect) (Hashtbl.length got);
        Hashtbl.iter
          (fun kkey v ->
            Alcotest.(check int) "exist value" v
              (Option.value (Hashtbl.find_opt got kkey) ~default:0))
          expect)
      [ Mt.Sum; Mt.Max_agg ];
    Mt.checkpoint st
  done

let test_bool_roundtrip () =
  let rand = Random.State.make [| 44 |] in
  let st = Mt.create () in
  let m = M.create () in
  for _ = 1 to nlevels do
    ignore (M.new_var m)
  done;
  for round = 1 to 60 do
    (* a random boolean function as a disjunction of cubes *)
    let f = ref M.zero in
    for _ = 1 to 1 + Random.State.int rand 6 do
      let cube =
        Ops.cube m
          (List.filter_map
             (fun l ->
               if Random.State.bool rand then
                 Some (l, Random.State.bool rand)
               else None)
             all_levels)
      in
      f := Ops.bor m !f cube
    done;
    (* threshold ∘ of_bool = id, through both abstraction paths *)
    let lifted = Mt.of_bool st m !f in
    Alcotest.(check int)
      (Printf.sprintf "round %d: to_bool (of_bool f) = f" round)
      !f
      (Mt.to_bool st m lifted);
    Alcotest.(check int) "threshold_bool (of_bool f) 1 = f" !f
      (Mt.threshold_bool st m lifted 1);
    Alcotest.(check int) "threshold (of_bool f) 1 = of_bool f" lifted
      (Mt.threshold st lifted 1);
    (* weighted lift thresholds back at its weight *)
    let w = 2 + Random.State.int rand 5 in
    let heavy = Mt.of_bool st m ~weight:w !f in
    Alcotest.(check int) "threshold_bool at the lift weight" !f
      (Mt.threshold_bool st m heavy w);
    Alcotest.(check int) "threshold above the lift weight kills" M.zero
      (Mt.threshold_bool st m heavy (w + 1));
    Mt.checkpoint st;
    M.checkpoint m
  done

let test_replace_and_relprod () =
  let rand = Random.State.make [| 45 |] in
  let st = Mt.create () in
  for round = 1 to 40 do
    let f = random_diagram rand st in
    let g = random_diagram rand st in
    (* move up to two formula levels onto the free target levels 4/5;
       targets in descending order exercise the non-order-preserving
       fallback, ascending the direct relabeling pass *)
    let targets = if Random.State.bool rand then [ 4; 5 ] else [ 5; 4 ] in
    let srcs =
      List.filter (fun _ -> Random.State.bool rand) formula_levels
      |> fun l -> List.filteri (fun i _ -> i < 2) l
    in
    let pairs = List.map2 (fun s t -> (s, t)) srcs
        (List.filteri (fun i _ -> i < List.length srcs) targets)
    in
    (* on full-assignment tables, moving src to a free target is the
       transposition of the two bits: both sides are independent of the
       other's level *)
    let swap_key key =
      List.fold_left
        (fun k (s, t) ->
          let bs = (key lsr (nlevels - 1 - s)) land 1 in
          let bt = (key lsr (nlevels - 1 - t)) land 1 in
          let k =
            k
            land lnot
                   ((1 lsl (nlevels - 1 - s)) lor (1 lsl (nlevels - 1 - t)))
          in
          k lor (bs lsl (nlevels - 1 - t)) lor (bt lsl (nlevels - 1 - s)))
        key pairs
    in
    let r = Mt.replace st g pairs in
    let tg = table st g and tr = table st r in
    Alcotest.(check int)
      (Printf.sprintf "round %d: replace size" round)
      (Hashtbl.length tg) (Hashtbl.length tr);
    Hashtbl.iter
      (fun key v ->
        Alcotest.(check int) "replace value" v
          (Option.value (Hashtbl.find_opt tr (swap_key key)) ~default:0))
      tg;
    (* fused relprod = its unfused composition, for both aggregations *)
    let q = List.filter (fun _ -> Random.State.bool rand) all_levels in
    List.iter
      (fun (combine, agg) ->
        let fused = Mt.relprod_replace st ~combine ~agg f g pairs q in
        let unfused =
          Mt.exist st agg (Mt.apply st combine f (Mt.replace st g pairs)) q
        in
        Alcotest.(check int)
          (Printf.sprintf "round %d: fused = unfused" round)
          unfused fused)
      [ (Mt.Mul, Mt.Max_agg); (Mt.Mul, Mt.Sum); (Mt.Min, Mt.Max_agg) ];
    Mt.checkpoint st
  done;
  let fused, fallback = Mt.fused_stats () in
  Alcotest.(check bool) "fused kernel exercised" true (fused + fallback > 0)

let test_gc_and_stats () =
  let rand = Random.State.make [| 46 |] in
  let st = Mt.create () in
  let root = random_diagram rand st in
  Mt.addref st root;
  let before = table st root in
  for _ = 1 to 50 do
    ignore (random_diagram rand st);
    Mt.checkpoint st
  done;
  Mt.gc st;
  let after = table st root in
  Alcotest.(check int) "root survives GC (size)" (Hashtbl.length before)
    (Hashtbl.length after);
  Hashtbl.iter
    (fun key v ->
      Alcotest.(check int) "root survives GC (value)" v
        (Option.value (Hashtbl.find_opt after key) ~default:0))
    before;
  Alcotest.(check bool) "GC ran" true (Mt.gc_count st >= 1);
  let hits, misses, _ = Mt.cache_totals st in
  Alcotest.(check bool) "cache active" true (hits + misses > 0);
  Alcotest.(check bool) "per-tag stats present" true
    (List.exists
       (fun (s : Mt.cache_stat) -> s.name = "mt-apply-add" && s.misses > 0)
       (Mt.cache_stats st));
  Alcotest.(check bool) "terminal gauge counts 0 and the weights" true
    (Mt.distinct_terminals st >= 2)

(* -- part 2: the weighted Relation surface ------------------------------ *)

let weighted_universe () =
  let u = U.create ~backend:`Mtbdd () in
  let dom = Dom.declare ~name:"D" ~size:8 () in
  let a = Attr.declare ~name:"a" ~domain:dom in
  let b = Attr.declare ~name:"b" ~domain:dom in
  let p0 = Phys.declare u ~name:"P0" ~bits:3 in
  let p1 = Phys.declare u ~name:"P1" ~bits:3 in
  let sch =
    Schema.make [ { Schema.attr = a; phys = p0 }; { Schema.attr = b; phys = p1 } ]
  in
  (u, sch, a, b)

let test_weighted_relations () =
  let u, sch, _a, b = weighted_universe () in
  let r =
    R.of_weighted_tuples u sch
      [ ([ 1; 2 ], 3); ([ 1; 4 ], 2); ([ 5; 2 ], 1); ([ 1; 2 ], 4) ]
  in
  (* duplicates sum; zero weight is absence *)
  Alcotest.(check (list (pair (list int) int)))
    "weight_of_tuples"
    [ ([ 1; 2 ], 7); ([ 1; 4 ], 2); ([ 5; 2 ], 1) ]
    (R.weight_of_tuples r);
  Alcotest.(check int) "weight_of present" 7 (R.weight_of r [ 1; 2 ]);
  Alcotest.(check int) "weight_of absent" 0 (R.weight_of r [ 7; 7 ]);
  Alcotest.(check int) "total_weight" 10 (R.total_weight r);
  Alcotest.(check int) "boolean size sees support" 3 (R.size r);
  (* counting projection: sum out b *)
  let per_a = R.project_sum r [ b ] in
  Alcotest.(check (list (pair (list int) int)))
    "project_sum"
    [ ([ 1 ], 9); ([ 5 ], 1) ]
    (R.weight_of_tuples per_a);
  (* scale and threshold *)
  let doubled = R.scale r 2 in
  Alcotest.(check int) "scale doubles total" 20 (R.total_weight doubled);
  let heavy = R.threshold r 2 in
  Alcotest.(check (list (pair (list int) int)))
    "threshold >= 2"
    [ ([ 1; 2 ], 1); ([ 1; 4 ], 1) ]
    (R.weight_of_tuples heavy);
  (* boolean connectives on weighted operands: & preserves via the mask,
     | takes the pointwise max *)
  let mask = R.of_tuples u sch [ [ 1; 2 ]; [ 7; 7 ] ] in
  let masked = R.inter r mask in
  Alcotest.(check (list (pair (list int) int)))
    "inter with a 0/1 mask keeps weights"
    [ ([ 1; 2 ], 7) ]
    (R.weight_of_tuples masked);
  let r2 = R.of_weighted_tuples u sch [ ([ 1; 2 ], 2); ([ 6; 6 ], 5) ] in
  Alcotest.(check (list (pair (list int) int)))
    "union takes pointwise max"
    [ ([ 1; 2 ], 7); ([ 1; 4 ], 2); ([ 5; 2 ], 1); ([ 6; 6 ], 5) ]
    (R.weight_of_tuples (R.union r r2));
  (* the weighted surface rejects boolean backends *)
  let ub = U.create ~backend:`Incore () in
  let pb0 = Phys.declare ub ~name:"P0" ~bits:3 in
  let pb1 = Phys.declare ub ~name:"P1" ~bits:3 in
  let schb =
    Schema.make
      [ { Schema.attr = _a; phys = pb0 }; { Schema.attr = b; phys = pb1 } ]
  in
  Alcotest.check_raises "Type_error on incore"
    (R.Type_error
       "Relation.of_weighted_tuples: requires an mtbdd universe (this one \
        is incore)")
    (fun () -> ignore (R.of_weighted_tuples ub schb [ ([ 1; 2 ], 3) ]))

(* -- part 3: the weighted analyses, differenced against in-core --------- *)

let test_weighted_analyses () =
  let p = Workload.generate Workload.tiny in
  let ri = Suite.run_all ~backend:`Incore p in
  (* allocation-count points-to: support bit-identical, counts = recount *)
  let ac = Weighted.run_alloc_counts p in
  Alcotest.(check (list (list int)))
    "weighted pt support = incore pt" ri.Suite.pt
    (R.tuples ac.Weighted.ac_pt);
  Alcotest.(check (list (pair int int)))
    "alloc counts = recount of boolean pt"
    (Weighted.recount_by_first ri.Suite.pt)
    (Weighted.alloc_counts_list ac);
  (* call-frequency weighted call graph *)
  let cf = Weighted.run_call_freqs p ~call_edges:ri.Suite.call_edges in
  (* expected reachable edges: call sites sitting in reachable methods *)
  let reachable = List.filter_map (function [ m ] -> Some m | _ -> None) ri.Suite.reachable in
  let site_in =
    List.map
      (fun (cs : Jedd_minijava.Program.call_site) ->
        (cs.Jedd_minijava.Program.cs_id, cs.Jedd_minijava.Program.cs_in_method))
      p.Jedd_minijava.Program.calls
  in
  let live_edges =
    List.filter
      (function
        | [ cs; _ ] -> (
          match List.assoc_opt cs site_in with
          | Some m -> List.mem m reachable
          | None -> false)
        | _ -> false)
      ri.Suite.call_edges
    |> List.sort compare
  in
  Alcotest.(check (list (list int)))
    "weighted edge support = reachable boolean edges" live_edges
    (R.tuples cf.Weighted.cf_edges);
  (* every live edge's frequency matches the static computation *)
  let expected_w = Weighted.edge_weights p ~call_edges:ri.Suite.call_edges in
  List.iter
    (fun ((cs, m), freq) ->
      Alcotest.(check int)
        (Printf.sprintf "edge %d->%d frequency" cs m)
        (List.assoc [ cs; m ] expected_w)
        freq)
    (Weighted.edge_freqs_list cf);
  (* hotness = per-method sum of the live edge frequencies *)
  let expect_hot = Hashtbl.create 16 in
  List.iter
    (function
      | [ cs; m ] when List.mem [ cs; m ] live_edges ->
        let w = List.assoc [ cs; m ] expected_w in
        Hashtbl.replace expect_hot m
          (w + Option.value (Hashtbl.find_opt expect_hot m) ~default:0)
      | _ -> ())
    ri.Suite.call_edges;
  let expect_hot_l =
    Hashtbl.fold (fun m w acc -> (m, w) :: acc) expect_hot []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    "method hotness = summed edge frequencies" expect_hot_l
    (Weighted.method_hotness_list cf)

let suite =
  [
    Alcotest.test_case "apply: commutativity, identities, pointwise" `Quick
      test_apply_properties;
    Alcotest.test_case "exist: sum and max aggregation" `Quick
      test_exist_aggregation;
    Alcotest.test_case "boolean lifting round-trips" `Quick
      test_bool_roundtrip;
    Alcotest.test_case "replace and fused relprod" `Quick
      test_replace_and_relprod;
    Alcotest.test_case "GC, caches, terminal gauge" `Quick test_gc_and_stats;
    Alcotest.test_case "weighted relation surface" `Quick
      test_weighted_relations;
    Alcotest.test_case "weighted analyses vs in-core recount" `Quick
      test_weighted_analyses;
  ]
