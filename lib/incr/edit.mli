(** A program-edit model over the minijava substrate: the IDE-style
    mutations jeddd's live-update path replays onto an analysed program.

    Entity ids are dense integers (they are Jedd domain values), so the
    model never renumbers: additions append fresh ids at the top of the
    relevant id space, and removals are fact tombstones — the entity's
    id remains allocated, only the input facts mentioning it disappear.
    [Remove_method] drops the declares entry and the call sites textually
    inside the method (its statements must be removed by separate
    edits); [Remove_class] drops the extend edges and declares entries
    touching the class. *)

module P = Jedd_minijava.Program

type t =
  | Add_class of { superclass : int option }
  | Add_method of { cls : int; signature : int; n_vars : int; entry : bool }
  | Add_field
  | Add_alloc of { var : int; cls : int }
  | Add_assign of { src : int; dst : int }
  | Add_store of { src : int; base : int; field : int }
  | Add_load of { base : int; field : int; dst : int }
  | Add_callsite of { recv : int; signature : int; in_method : int }
  | Remove_assign of { src : int; dst : int }
  | Remove_store of { src : int; base : int; field : int }
  | Remove_load of { base : int; field : int; dst : int }
  | Remove_callsite of { callsite : int }
  | Remove_method of { meth : int }
  | Remove_class of { cls : int }

exception Invalid_edit of string

val apply : P.t -> t -> P.t
(** Validates ids against the program and returns the edited program.
    @raise Invalid_edit on out-of-range ids, duplicate declarations, or
    removal of facts that are not present. *)

val describe : t -> string

val is_addition : t -> bool
(** Additions only ever grow the input fact relations, so every
    analysis can be resumed semi-naively from its previous fixed
    point. *)

val next_callsite_id : P.t -> int
(** One past the largest allocated call-site id (ids of removed call
    sites stay allocated, so this can exceed [List.length p.calls]). *)

val random : ?removals:bool -> Random.State.t -> P.t -> t
(** A random valid edit, weighted towards the common IDE operations
    (new statements and call sites).  [removals] (default true) allows
    tombstone edits; pass [false] for addition-only sequences. *)
