(* Lock-free log2-bucketed latency histograms.  One histogram per verb:
   workers on several domains record concurrently (plain atomic
   increments, no locks), the stats verb and the load generator read
   percentile estimates.  Bucket [i] counts samples whose latency in
   microseconds has its highest set bit at position [i], so percentiles
   are exact to within a factor of two — plenty for p50/p95/p99 lines. *)

type t = {
  buckets : int Atomic.t array; (* index = log2 of the sample in us *)
  count : int Atomic.t;
  sum_us : int Atomic.t;
  max_us : int Atomic.t;
}

let nbuckets = 40 (* 2^39 us ≈ 6.4 days; samples above clamp to the top *)

let create () =
  {
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum_us = Atomic.make 0;
    max_us = Atomic.make 0;
  }

let bucket_of_us us =
  let us = max us 1 in
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  min (log2 us 0) (nbuckets - 1)

let record t ~us =
  let us = max us 0 in
  Atomic.incr t.buckets.(bucket_of_us us);
  Atomic.incr t.count;
  ignore (Atomic.fetch_and_add t.sum_us us);
  let rec bump () =
    let cur = Atomic.get t.max_us in
    if us > cur && not (Atomic.compare_and_set t.max_us cur us) then bump ()
  in
  bump ()

let count t = Atomic.get t.count
let sum_us t = Atomic.get t.sum_us

(* Upper bound (in us) of the bucket holding the q-quantile sample. *)
let percentile_us t q =
  let total = Atomic.get t.count in
  if total = 0 then 0
  else begin
    let target =
      let x = int_of_float (ceil (q *. float_of_int total)) in
      max 1 (min x total)
    in
    let acc = ref 0 in
    let found = ref (-1) in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + Atomic.get t.buckets.(i);
         if !acc >= target then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !found < 0 then 0 else 1 lsl (!found + 1)
  end

let mean_us t =
  let n = Atomic.get t.count in
  if n = 0 then 0.0 else float_of_int (Atomic.get t.sum_us) /. float_of_int n

let to_json t : Json.t =
  let ms us = Json.Float (float_of_int us /. 1000.0) in
  Json.Obj
    [
      ("count", Json.Int (Atomic.get t.count));
      ("mean_ms", Json.Float (mean_us t /. 1000.0));
      ("p50_ms", ms (percentile_us t 0.50));
      ("p95_ms", ms (percentile_us t 0.95));
      ("p99_ms", ms (percentile_us t 0.99));
      ("max_ms", ms (Atomic.get t.max_us));
    ]
