(** Graphviz export of BDDs, used by the profiler's drill-down views and
    handy when debugging variable orderings. *)

val to_dot :
  ?var_name:(int -> string) -> Manager.t -> Manager.node -> string
(** Render the graph rooted at the node as a [dot] digraph.  Low edges
    are dashed, high edges solid, as is conventional. *)

val print_ascii_shape :
  ?width:int -> Format.formatter -> Manager.t -> Manager.node -> unit
(** A terminal-friendly bar chart of nodes-per-level (the profiler's
    "shape" view, §4.3). *)
