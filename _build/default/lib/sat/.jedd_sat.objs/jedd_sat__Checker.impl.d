lib/sat/checker.ml: Array List
