(** Abstract shape analysis: a per-expression estimate of relation
    layout width and BDD node count, computed over the typed AST after
    physical-domain assignment.

    Widths come straight from the assignment (each attribute instance's
    physical domain and the computed domain bit widths); node counts
    use the saturating upper-bound formulas of
    [Jedd_relation.Predict].  Estimates can be sharpened with observed
    sizes replayed from a profiler CSV ({!hints_of_csv}): a hint for an
    expression's source position overrides the formula at that node and
    flows into every enclosing estimate.

    Consumers: the JL202 join-blowup lint and the cost sections of
    [jeddc --domain-report]. *)

type estimate = {
  bits : int;  (** total bits of the expression's physical layout *)
  nodes : int;  (** predicted BDD node count (saturating) *)
}

type t

val analyze :
  ?hints:(string -> int option) ->
  Jedd_lang.Tast.tprogram ->
  Jedd_lang.Encode.assignment ->
  t
(** Estimate every relational expression in the program.  [hints] maps
    a source label ("file:line,col" — the profiler's operation label)
    to an observed node count. *)

val estimate : t -> int -> estimate option
(** Estimate for an expression id, if the analysis saw it. *)

val hints_of_csv : string -> string -> int option
(** [hints_of_csv path] parses a [jedd-profile] per-operation CSV and
    returns a label -> max observed [result_nodes] lookup.  Returns a
    function that is [None] everywhere if the file is missing or
    malformed. *)
