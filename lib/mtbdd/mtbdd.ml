(* Hash-consed MTBDD store: integer-terminal decision diagrams with the
   same unique-table / refcount / checkpoint-GC discipline as the
   boolean manager in lib/bdd.  Terminals are encoded as nodes whose
   level is [Manager.terminal_level], with the value in the [lo] field
   and -1 in [hi]; handle 0 is the pinned terminal 0. *)

module M = Jedd_bdd.Manager

type node = int

exception Out_of_nodes

let value_cap = 1_000_000_000

let tlvl = M.terminal_level

(* Saturating non-negative terminal arithmetic. *)
let sat_add a b = if a > value_cap - b then value_cap else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > value_cap / b then value_cap
  else a * b

let pow2_sat k = if k >= 30 then value_cap else 1 lsl k

type binop = Add | Min | Max | Mul | Diff
type agg = Sum | Max_agg

(* Operation-cache tags; the order fixes the cache_stats listing. *)
let tag_names =
  [| "mt-apply-add"; "mt-apply-min"; "mt-apply-max"; "mt-apply-mul";
     "mt-apply-diff"; "mt-exist-sum"; "mt-exist-max"; "mt-replace";
     "mt-relprod"; "mt-threshold" |]

let n_tags = Array.length tag_names
let tag_apply_add = 0
let tag_apply_min = 1
let tag_apply_max = 2
let tag_apply_mul = 3
let tag_apply_diff = 4
let tag_exist_sum = 5
let tag_exist_max = 6
let tag_replace = 7
let tag_relprod = 8
let tag_threshold = 9

let tag_of_op = function
  | Add -> tag_apply_add
  | Min -> tag_apply_min
  | Max -> tag_apply_max
  | Mul -> tag_apply_mul
  | Diff -> tag_apply_diff

type cache_stat = {
  name : string;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
}

(* Cache slot layout, stride 6: tag, a, b, c, result, generation. *)
let ck_stride = 6

type t = {
  mutable lvl : int array; (* -1 = free slot *)
  mutable lo : int array; (* terminal: value *)
  mutable hi : int array; (* terminal: -1 *)
  mutable refc : int array;
  mutable hnext : int array; (* bucket chain / free-list chain *)
  mutable buckets : int array;
  mutable capacity : int; (* power of two *)
  mutable free_head : int;
  mutable free_count : int;
  node_limit : int;
  mutable peak : int;
  mutable gcs : int;
  mutable n_terminals : int;
  (* op cache *)
  cache_sets : int;
  cache_ways : int;
  cache : int array;
  mutable cache_gen : int;
  mutable tick : int;
  c_hits : int array;
  c_misses : int array;
  c_stores : int array;
  c_evict : int array;
  (* interned quantification sets and replace permutations *)
  set_ids : (int list, int) Hashtbl.t;
  mutable set_arr : int array array;
  mutable n_set : int;
  perm_ids : (int list, int) Hashtbl.t;
  mutable perm_arr : (int, int) Hashtbl.t array;
  mutable n_perm : int;
}

let fused_count = ref 0
let fallback_count = ref 0
let fused_stats () = (!fused_count, !fallback_count)

let rec pow2_ge n p = if p >= n then p else pow2_ge n (p * 2)

let hash3 a b c =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca77) lxor (c * 0xc2b2ae3d) in
  (h lxor (h lsr 17)) land max_int

let create ?(node_capacity = 1 lsl 14) ?(cache_bits = 12) ?(cache_ways = 4)
    ?node_limit () =
  let capacity = pow2_ge (Int.max 64 node_capacity) 64 in
  let sets = 1 lsl cache_bits in
  let s =
    {
      lvl = Array.make capacity (-1);
      lo = Array.make capacity 0;
      hi = Array.make capacity 0;
      refc = Array.make capacity 0;
      hnext = Array.make capacity (-1);
      buckets = Array.make capacity (-1);
      capacity;
      free_head = -1;
      free_count = 0;
      node_limit = (match node_limit with Some l -> l | None -> max_int);
      peak = 0;
      gcs = 0;
      n_terminals = 0;
      cache_sets = sets;
      cache_ways;
      cache = Array.make (sets * cache_ways * ck_stride) (-1);
      cache_gen = 0;
      tick = 0;
      c_hits = Array.make n_tags 0;
      c_misses = Array.make n_tags 0;
      c_stores = Array.make n_tags 0;
      c_evict = Array.make n_tags 0;
      set_ids = Hashtbl.create 16;
      set_arr = Array.make 8 [||];
      n_set = 0;
      perm_ids = Hashtbl.create 16;
      perm_arr = Array.make 8 (Hashtbl.create 1);
      n_perm = 0;
    }
  in
  (* chain all slots but 0 into the free list, highest first *)
  for i = capacity - 1 downto 1 do
    s.hnext.(i) <- s.free_head;
    s.free_head <- i;
    s.free_count <- s.free_count + 1
  done;
  (* pin the terminal 0 at handle 0 *)
  s.lvl.(0) <- tlvl;
  s.lo.(0) <- 0;
  s.hi.(0) <- -1;
  s.refc.(0) <- 1_000_000_000;
  let h = hash3 tlvl 0 (-1) land (capacity - 1) in
  s.hnext.(0) <- s.buckets.(h);
  s.buckets.(h) <- 0;
  s.n_terminals <- 1;
  s.peak <- 1;
  s

let level s n = s.lvl.(n)
let low s n = s.lo.(n)
let high s n = s.hi.(n)
let is_terminal s n = s.lvl.(n) = tlvl

let terminal_value s n =
  if s.lvl.(n) <> tlvl then invalid_arg "Mtbdd.terminal_value: internal node";
  s.lo.(n)

let zero _s = 0
let live_nodes s = s.capacity - s.free_count
let peak_nodes s = s.peak
let gc_count s = s.gcs
let distinct_terminals s = s.n_terminals

let addref s n = s.refc.(n) <- s.refc.(n) + 1
let delref s n = if s.refc.(n) > 0 then s.refc.(n) <- s.refc.(n) - 1

(* --- allocation, growth, GC ------------------------------------------- *)

let rehash s =
  Array.fill s.buckets 0 (Array.length s.buckets) (-1);
  let mask = s.capacity - 1 in
  for n = 0 to s.capacity - 1 do
    if s.lvl.(n) >= 0 then begin
      let h = hash3 s.lvl.(n) s.lo.(n) s.hi.(n) land mask in
      s.hnext.(n) <- s.buckets.(h);
      s.buckets.(h) <- n
    end
  done

let grow s =
  let old = s.capacity in
  if old * 2 > s.node_limit then raise Out_of_nodes;
  let cap = old * 2 in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  s.lvl <- extend s.lvl (-1);
  s.lo <- extend s.lo 0;
  s.hi <- extend s.hi 0;
  s.refc <- extend s.refc 0;
  s.hnext <- extend s.hnext (-1);
  s.buckets <- Array.make cap (-1);
  s.capacity <- cap;
  for i = cap - 1 downto old do
    s.hnext.(i) <- s.free_head;
    s.free_head <- i;
    s.free_count <- s.free_count + 1
  done;
  rehash s

let alloc s l lo_ hi_ =
  if s.free_head < 0 then grow s;
  let n = s.free_head in
  s.free_head <- s.hnext.(n);
  s.free_count <- s.free_count - 1;
  s.lvl.(n) <- l;
  s.lo.(n) <- lo_;
  s.hi.(n) <- hi_;
  s.refc.(n) <- 0;
  let h = hash3 l lo_ hi_ land (s.capacity - 1) in
  s.hnext.(n) <- s.buckets.(h);
  s.buckets.(h) <- n;
  if l = tlvl then s.n_terminals <- s.n_terminals + 1;
  let live = s.capacity - s.free_count in
  if live > s.peak then s.peak <- live;
  n

let lookup s l lo_ hi_ =
  let h = hash3 l lo_ hi_ land (s.capacity - 1) in
  let rec walk n =
    if n < 0 then -1
    else if s.lvl.(n) = l && s.lo.(n) = lo_ && s.hi.(n) = hi_ then n
    else walk s.hnext.(n)
  in
  walk s.buckets.(h)

let terminal s v =
  if v < 0 then invalid_arg "Mtbdd.terminal: negative value";
  let v = Int.min v value_cap in
  let n = lookup s tlvl v (-1) in
  if n >= 0 then n else alloc s tlvl v (-1)

let one s = terminal s 1

let mk s l lo_ hi_ =
  if lo_ = hi_ then lo_
  else
    let n = lookup s l lo_ hi_ in
    if n >= 0 then n else alloc s l lo_ hi_

let gc s =
  let marked = Bytes.make s.capacity '\000' in
  let rec mark n =
    if Bytes.get marked n = '\000' then begin
      Bytes.set marked n '\001';
      if s.lvl.(n) <> tlvl then begin
        mark s.lo.(n);
        mark s.hi.(n)
      end
    end
  in
  for n = 0 to s.capacity - 1 do
    if s.lvl.(n) >= 0 && s.refc.(n) > 0 then mark n
  done;
  s.free_head <- -1;
  s.free_count <- 0;
  for n = s.capacity - 1 downto 0 do
    if s.lvl.(n) >= 0 && Bytes.get marked n = '\000' then begin
      if s.lvl.(n) = tlvl then s.n_terminals <- s.n_terminals - 1;
      s.lvl.(n) <- -1;
      s.hnext.(n) <- s.free_head;
      s.free_head <- n;
      s.free_count <- s.free_count + 1
    end
    else if s.lvl.(n) < 0 then begin
      s.hnext.(n) <- s.free_head;
      s.free_head <- n;
      s.free_count <- s.free_count + 1
    end
  done;
  rehash s;
  s.gcs <- s.gcs + 1;
  (* cached results may reference reclaimed handles *)
  s.cache_gen <- s.cache_gen + 1

let checkpoint s =
  if s.free_count * 4 < s.capacity then begin
    gc s;
    if s.free_count * 4 < s.capacity && s.capacity * 2 <= s.node_limit then
      grow s
  end

(* --- operation cache --------------------------------------------------- *)

let cache_lookup s tag a b c =
  let set = hash3 (tag lxor (a lsl 3)) b c land (s.cache_sets - 1) in
  let base = set * s.cache_ways * ck_stride in
  let rec scan w =
    if w >= s.cache_ways then begin
      s.c_misses.(tag) <- s.c_misses.(tag) + 1;
      -1
    end
    else
      let o = base + (w * ck_stride) in
      if
        s.cache.(o + 5) = s.cache_gen
        && s.cache.(o) = tag
        && s.cache.(o + 1) = a
        && s.cache.(o + 2) = b
        && s.cache.(o + 3) = c
      then begin
        s.c_hits.(tag) <- s.c_hits.(tag) + 1;
        s.cache.(o + 4)
      end
      else scan (w + 1)
  in
  scan 0

let cache_store s tag a b c r =
  let set = hash3 (tag lxor (a lsl 3)) b c land (s.cache_sets - 1) in
  let base = set * s.cache_ways * ck_stride in
  (* prefer a stale slot; otherwise round-robin eviction *)
  let rec find w =
    if w >= s.cache_ways then -1
    else if s.cache.(base + (w * ck_stride) + 5) <> s.cache_gen then w
    else find (w + 1)
  in
  let w =
    match find 0 with
    | -1 ->
        s.tick <- s.tick + 1;
        s.c_evict.(tag) <- s.c_evict.(tag) + 1;
        s.tick mod s.cache_ways
    | w -> w
  in
  let o = base + (w * ck_stride) in
  s.cache.(o) <- tag;
  s.cache.(o + 1) <- a;
  s.cache.(o + 2) <- b;
  s.cache.(o + 3) <- c;
  s.cache.(o + 4) <- r;
  s.cache.(o + 5) <- s.cache_gen;
  s.c_stores.(tag) <- s.c_stores.(tag) + 1

let cache_stats s =
  List.init n_tags (fun i ->
      {
        name = tag_names.(i);
        hits = s.c_hits.(i);
        misses = s.c_misses.(i);
        stores = s.c_stores.(i);
        evictions = s.c_evict.(i);
      })

let cache_totals s =
  let h = ref 0 and m = ref 0 and e = ref 0 in
  for i = 0 to n_tags - 1 do
    h := !h + s.c_hits.(i);
    m := !m + s.c_misses.(i);
    e := !e + s.c_evict.(i)
  done;
  (!h, !m, !e)

(* --- apply ------------------------------------------------------------- *)

let op_terminal op a b =
  match op with
  | Add -> sat_add a b
  | Min -> Int.min a b
  | Max -> Int.max a b
  | Mul -> sat_mul a b
  | Diff -> if b = 0 then a else 0

let commutative = function Add | Min | Max | Mul -> true | Diff -> false

let apply s op f g =
  let tag = tag_of_op op in
  let rec go f g =
    (* terminal shortcuts, before touching the cache *)
    if s.lvl.(f) = tlvl && s.lvl.(g) = tlvl then
      terminal s (op_terminal op s.lo.(f) s.lo.(g))
    else
      let shortcut =
        match op with
        | Add -> if f = 0 then g else if g = 0 then f else -1
        | Max -> if f = 0 then g else if g = 0 then f else if f = g then f else -1
        | Min -> if f = 0 || g = 0 then 0 else if f = g then f else -1
        | Mul ->
            if f = 0 || g = 0 then 0
            else if s.lvl.(f) = tlvl && s.lo.(f) = 1 then g
            else if s.lvl.(g) = tlvl && s.lo.(g) = 1 then f
            else -1
        | Diff -> if f = 0 || f = g then 0 else if g = 0 then f else -1
      in
      if shortcut >= 0 then shortcut
      else
        let f, g = if commutative op && f > g then (g, f) else (f, g) in
        let r = cache_lookup s tag f g 0 in
        if r >= 0 then r
        else begin
          let lf = s.lvl.(f) and lg = s.lvl.(g) in
          let l = Int.min lf lg in
          let f0, f1 = if lf = l then (s.lo.(f), s.hi.(f)) else (f, f) in
          let g0, g1 = if lg = l then (s.lo.(g), s.hi.(g)) else (g, g) in
          let r0 = go f0 g0 in
          let r1 = go f1 g1 in
          let r = mk s l r0 r1 in
          cache_store s tag f g 0 r;
          r
        end
  in
  go f g

(* --- quantification by terminal aggregation ---------------------------- *)

let intern_set s levels =
  match Hashtbl.find_opt s.set_ids levels with
  | Some id -> id
  | None ->
      let id = s.n_set in
      if id >= Array.length s.set_arr then begin
        let a = Array.make (Array.length s.set_arr * 2) [||] in
        Array.blit s.set_arr 0 a 0 s.n_set;
        s.set_arr <- a
      end;
      s.set_arr.(id) <- Array.of_list levels;
      s.n_set <- id + 1;
      Hashtbl.add s.set_ids levels id;
      id

(* Scale every terminal by 2^k, saturating: accounts for quantified
   levels absent from a sub-diagram under Sum aggregation. *)
let scale_pow2 s n k =
  if k = 0 || n = 0 then n else apply s Mul n (terminal s (pow2_sat k))

let exist s agg f levels =
  let levels = List.sort_uniq compare levels in
  if levels = [] || f = 0 then f
  else begin
    let set_id = intern_set s levels in
    let lv = s.set_arr.(set_id) in
    let nlv = Array.length lv in
    let tag = match agg with Sum -> tag_exist_sum | Max_agg -> tag_exist_max in
    let combine = match agg with Sum -> Add | Max_agg -> Max in
    let rec go f j =
      if j >= nlv || f = 0 then f
      else begin
        let lf = s.lvl.(f) in
        (* advance past quantified levels above this node: absent from
           the support, so Sum doubles per level and Max is a no-op *)
        let j' = ref j in
        while !j' < nlv && lv.(!j') < lf do
          incr j'
        done;
        let j2 = !j' in
        let core =
          if j2 >= nlv then f
          else begin
            let key = (set_id lsl 16) lor j2 in
            let r = cache_lookup s tag f key 0 in
            if r >= 0 then r
            else
              let r =
                if lv.(j2) = lf then
                  apply s combine (go s.lo.(f) (j2 + 1)) (go s.hi.(f) (j2 + 1))
                else mk s lf (go s.lo.(f) j2) (go s.hi.(f) j2)
              in
              cache_store s tag f key 0 r;
              r
          end
        in
        match agg with
        | Sum -> scale_pow2 s core (j2 - j)
        | Max_agg -> core
      end
    in
    go f 0
  end

(* --- restrict ----------------------------------------------------------- *)

let restrict s f assigns =
  let assigns =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) assigns
  in
  let alv = Array.of_list assigns in
  let na = Array.length alv in
  let memo = Hashtbl.create 64 in
  let rec go f i =
    if f = 0 then 0
    else begin
      let lf = s.lvl.(f) in
      let i = ref i in
      while !i < na && fst alv.(!i) < lf do
        incr i
      done;
      let i = !i in
      if i >= na then f
      else
        match Hashtbl.find_opt memo (f, i) with
        | Some r -> r
        | None ->
            let lvl_i, want = alv.(i) in
            let r =
              if lvl_i = lf then go (if want then s.hi.(f) else s.lo.(f)) (i + 1)
              else mk s lf (go s.lo.(f) i) (go s.hi.(f) i)
            in
            Hashtbl.add memo (f, i) r;
            r
    end
  in
  go f 0

(* --- replace ------------------------------------------------------------ *)

let intern_perm s pairs =
  let pairs =
    List.sort compare (List.filter (fun (a, b) -> a <> b) pairs)
  in
  let key = List.concat_map (fun (a, b) -> [ a; b ]) pairs in
  match Hashtbl.find_opt s.perm_ids key with
  | Some id -> id
  | None ->
      let id = s.n_perm in
      if id >= Array.length s.perm_arr then begin
        let a = Array.make (Array.length s.perm_arr * 2) (Hashtbl.create 1) in
        Array.blit s.perm_arr 0 a 0 s.n_perm;
        s.perm_arr <- a
      end;
      let h = Hashtbl.create (Int.max 4 (List.length pairs)) in
      List.iter (fun (a, b) -> Hashtbl.replace h a b) pairs;
      s.perm_arr.(id) <- h;
      s.n_perm <- id + 1;
      Hashtbl.add s.perm_ids key id;
      id

let map_level s perm_id l =
  match Hashtbl.find_opt s.perm_arr.(perm_id) l with Some d -> d | None -> l

let support_levels s f =
  let seen = Hashtbl.create 64 in
  let levels = Hashtbl.create 16 in
  let rec walk n =
    if (not (Hashtbl.mem seen n)) && s.lvl.(n) <> tlvl then begin
      Hashtbl.add seen n ();
      Hashtbl.replace levels s.lvl.(n) ();
      walk s.lo.(n);
      walk s.hi.(n)
    end
  in
  walk f;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) levels [])

(* The permutation preserves the diagram's level order iff the images of
   the (sorted) support levels are strictly increasing. *)
let order_preserving_on s perm_id f =
  let rec check prev = function
    | [] -> true
    | l :: rest ->
        let m = map_level s perm_id l in
        m > prev && check m rest
  in
  check (-1) (support_levels s f)

(* 0/1 bi-implication diagram over the moved (src, dst) level pairs:
   the equality relation used by the non-order-preserving fallback. *)
let biimp_pairs s pairs =
  List.fold_left
    (fun acc (a, b) ->
      if a = b then acc
      else
        let lo_l, hi_l = if a < b then (a, b) else (b, a) in
        let eq_hi = mk s hi_l 0 (one s) in
        let eq_lo = mk s hi_l (one s) 0 in
        let pair_eq = mk s lo_l eq_lo eq_hi in
        apply s Mul acc pair_eq)
    (one s) pairs

let replace s f pairs =
  let pairs = List.filter (fun (a, b) -> a <> b) pairs in
  if pairs = [] || f = 0 then f
  else begin
    let perm_id = intern_perm s pairs in
    if order_preserving_on s perm_id f then begin
      let rec go n =
        if s.lvl.(n) = tlvl then n
        else
          let r = cache_lookup s tag_replace n perm_id 0 in
          if r >= 0 then r
          else begin
            let r = mk s (map_level s perm_id s.lvl.(n)) (go s.lo.(n)) (go s.hi.(n)) in
            cache_store s tag_replace n perm_id 0 r;
            r
          end
      in
      go f
    end
    else begin
      (* multiply with the equality diagram of the moved levels and
         project the sources out; Max is exact because exactly one
         source assignment matches each target assignment *)
      let eq = biimp_pairs s pairs in
      let prod = apply s Mul f eq in
      exist s Max_agg prod (List.map fst pairs)
    end
  end

(* --- fused relprod_replace --------------------------------------------- *)

let relprod_replace s ?(combine = Mul) ?(agg = Max_agg) f g pairs qlevels =
  let pairs = List.filter (fun (a, b) -> a <> b) pairs in
  let qlevels = List.sort_uniq compare qlevels in
  let fallback () =
    incr fallback_count;
    exist s agg (apply s combine f (replace s g pairs)) qlevels
  in
  if f = 0 || g = 0 then (
    match combine with
    | Mul | Min -> 0
    | Add | Max | Diff -> fallback ())
  else if not (order_preserving_on s (intern_perm s pairs) g) then fallback ()
  else begin
    incr fused_count;
    let perm_id = intern_perm s pairs in
    let set_id = intern_set s qlevels in
    let lv = s.set_arr.(set_id) in
    let nlv = Array.length lv in
    let agg_op = match agg with Sum -> Add | Max_agg -> Max in
    let zero_absorbs = match combine with Mul | Min -> true | _ -> false in
    (* the cache key must separate (combine, agg) variants of the same
       (f, g, perm, set) quadruple *)
    let op_code =
      (match combine with Mul -> 0 | Min -> 1 | Max -> 2 | Add -> 3 | Diff -> 4)
      lor (match agg with Sum -> 8 | Max_agg -> 0)
    in
    let rec go f g j =
      if zero_absorbs && (f = 0 || g = 0) then 0
      else begin
        let lf = s.lvl.(f) in
        let lg = if s.lvl.(g) = tlvl then tlvl else map_level s perm_id s.lvl.(g) in
        if lf = tlvl && lg = tlvl then begin
          let v = op_terminal combine s.lo.(f) s.lo.(g) in
          match agg with
          | Sum -> terminal s (sat_mul v (pow2_sat (nlv - j)))
          | Max_agg -> terminal s v
        end
        else begin
          let l = Int.min lf lg in
          let j' = ref j in
          while !j' < nlv && lv.(!j') < l do
            incr j'
          done;
          let j2 = !j' in
          let key =
            (op_code lsl 56) lor (perm_id lsl 40) lor (set_id lsl 16) lor j2
          in
          let r = cache_lookup s tag_relprod f g key in
          let core =
            if r >= 0 then r
            else begin
              let f0, f1 = if lf = l then (s.lo.(f), s.hi.(f)) else (f, f) in
              let g0, g1 = if lg = l then (s.lo.(g), s.hi.(g)) else (g, g) in
              let r =
                if j2 < nlv && lv.(j2) = l then
                  apply s agg_op (go f0 g0 (j2 + 1)) (go f1 g1 (j2 + 1))
                else mk s l (go f0 g0 j2) (go f1 g1 j2)
              in
              cache_store s tag_relprod f g key r;
              r
            end
          in
          match agg with
          | Sum -> scale_pow2 s core (j2 - j)
          | Max_agg -> core
        end
      end
    in
    go f g 0
  end

(* --- boolean bridges ---------------------------------------------------- *)

let of_bool s m ?(weight = 1) bn =
  let w = terminal s weight in
  let memo = Hashtbl.create 64 in
  let rec go b =
    if b = M.zero then 0
    else if b = M.one then w
    else
      match Hashtbl.find_opt memo b with
      | Some r -> r
      | None ->
          let r = mk s (M.level m b) (go (M.low m b)) (go (M.high m b)) in
          Hashtbl.add memo b r;
          r
  in
  go bn

let threshold_bool s m n k =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if s.lvl.(n) = tlvl then if s.lo.(n) >= k then M.one else M.zero
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
          let r = M.mk m s.lvl.(n) (go s.lo.(n)) (go s.hi.(n)) in
          Hashtbl.add memo n r;
          r
  in
  go n

let to_bool s m n = threshold_bool s m n 1

let threshold s n k =
  let rec go n =
    if s.lvl.(n) = tlvl then if s.lo.(n) >= k then one s else 0
    else
      let r = cache_lookup s tag_threshold n k 0 in
      if r >= 0 then r
      else begin
        let r = mk s s.lvl.(n) (go s.lo.(n)) (go s.hi.(n)) in
        cache_store s tag_threshold n k 0 r;
        r
      end
  in
  go n

(* --- counting, enumeration, diagnostics -------------------------------- *)

let nodecount s n =
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      if s.lvl.(n) <> tlvl then begin
        walk s.lo.(n);
        walk s.hi.(n)
      end
    end
  in
  walk n;
  Hashtbl.length seen

let satcount s n ~over =
  let over = List.sort_uniq compare over in
  let arr = Array.of_list over in
  let nr = Array.length arr in
  let rank = Hashtbl.create (Int.max 4 nr) in
  Array.iteri (fun i l -> Hashtbl.add rank l i) arr;
  let rank_of f =
    if s.lvl.(f) = tlvl then nr
    else
      match Hashtbl.find_opt rank s.lvl.(f) with
      | Some r -> r
      | None ->
          invalid_arg "Mtbdd.satcount: node depends on a level outside ~over"
  in
  let memo = Hashtbl.create 64 in
  let rec c f =
    if s.lvl.(f) = tlvl then if s.lo.(f) > 0 then 1 else 0
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let rf = rank_of f in
          let part g = c g lsl (rank_of g - rf - 1) in
          let r = part s.lo.(f) + part s.hi.(f) in
          Hashtbl.add memo f r;
          r
  in
  c n lsl rank_of n

let shape s n ~num_vars =
  let out = Array.make num_vars 0 in
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if (not (Hashtbl.mem seen n)) && s.lvl.(n) <> tlvl then begin
      Hashtbl.add seen n ();
      if s.lvl.(n) < num_vars then out.(s.lvl.(n)) <- out.(s.lvl.(n)) + 1;
      walk s.lo.(n);
      walk s.hi.(n)
    end
  in
  walk n;
  out

let iter_weighted s n ~levels k =
  let nl = Array.length levels in
  for i = 1 to nl - 1 do
    if levels.(i - 1) >= levels.(i) then
      invalid_arg "Mtbdd.iter_weighted: ~levels must be sorted ascending"
  done;
  let vals = Array.make nl false in
  let rec go f i =
    if f <> 0 then
      if i = nl then
        if s.lvl.(f) = tlvl then k vals s.lo.(f)
        else
          invalid_arg
            "Mtbdd.iter_weighted: node depends on a variable outside ~levels"
      else begin
        let want = levels.(i) in
        let lf = s.lvl.(f) in
        if lf < want then
          invalid_arg
            "Mtbdd.iter_weighted: node depends on a variable outside ~levels"
        else if lf > want then begin
          vals.(i) <- false;
          go f (i + 1);
          vals.(i) <- true;
          go f (i + 1)
        end
        else begin
          vals.(i) <- false;
          go s.lo.(f) (i + 1);
          vals.(i) <- true;
          go s.hi.(f) (i + 1)
        end
      end
  in
  go n 0

let iter_assignments s n ~levels k =
  iter_weighted s n ~levels (fun vals _w -> k vals)
