type t = { name : string; domain : Domain.t; uid : int }

let counter = ref 0

let declare ~name ~domain =
  incr counter;
  { name; domain; uid = !counter }

let name a = a.name
let domain a = a.domain
let equal a b = a.uid = b.uid
let compare a b = Stdlib.compare a.uid b.uid
let pp ppf a = Format.pp_print_string ppf a.name
