lib/sat/solver.ml: Array Hashtbl List
