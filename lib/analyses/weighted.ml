(* Quantitative companions to the boolean analyses (§5), on the
   terminal-valued mtbdd backend.

   Both analyses run an unmodified Jedd class from this directory on an
   [`Mtbdd] universe — the boolean fixpoints compute 0/1-weighted
   relations whose support is bit-identical to the in-core backend —
   and then extract genuinely quantitative answers with the weighted
   relation surface (project_sum / of_weighted_tuples):

   - allocation-count points-to: how many allocation sites each
     variable may point to (the counting projection of pt);
   - call-frequency weighted call graph: each resolved call edge
     carries a static execution frequency (the caller's Freq-style
     call-graph weight times a per-site factor), and summing the
     frequencies of a method's reachable incoming edges ranks method
     hotness.

   The correctness spine for both is differential: thresholding any
   weighted result at 1 must reproduce, tuple for tuple, what the
   boolean analyses compute in-core, and the counts must agree with
   recounting the boolean tuples by hand ({!recount_by_first}). *)

module P = Jedd_minijava.Program
module Driver = Jedd_lang.Driver
module Interp = Jedd_lang.Interp
module R = Jedd_relation.Relation
module A = Jedd_relation.Attribute
module S = Jedd_relation.Schema

let attr_named schema name =
  List.find (fun a -> A.name a = name) (S.attrs schema)

(* Reference recount over boolean tuples: group by the first component,
   count tuples per group.  The hand-computed answer the weighted
   results are differenced against. *)
let recount_by_first tuples =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | key :: _ ->
        Hashtbl.replace tbl key
          (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)
      | [] -> ())
    tuples;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl [] |> List.sort compare

(* -- allocation-count points-to ----------------------------------------- *)

type alloc_counts = {
  ac_inst : Interp.t;  (* the mtbdd universe the analysis ran in *)
  ac_pt : R.t;  (* points-to support, 0/1-weighted *)
  ac_counts : R.t;  (* <var>, weight = number of allocation sites *)
}

let run_alloc_counts ?(node_capacity = 1 lsl 16) ?node_limit
    ?(reorder = false) (p : P.t) =
  let compiled =
    match
      Driver.compile
        [ ("PointsTo.jedd", Common.preamble p ^ Pointsto.source) ]
    with
    | Ok c -> c
    | Error e ->
      failwith ("weighted points-to: " ^ Driver.error_to_string e)
  in
  let inst =
    Driver.instantiate ~node_capacity ?node_limit ~backend:`Mtbdd compiled
  in
  Pointsto.load_facts inst p;
  Pointsto.run ~reorder inst;
  let pt = R.dup (Interp.get_field inst "PointsTo.pt") in
  let heap = attr_named (R.schema pt) "heap" in
  let counts = R.project_sum ~label:"alloc-counts" pt [ heap ] in
  { ac_inst = inst; ac_pt = pt; ac_counts = counts }

let alloc_counts_list t =
  R.fold_weighted t.ac_counts ~init:[] ~f:(fun acc tup w ->
      match tup with [ v ] -> (v, w) :: acc | _ -> acc)
  |> List.rev

(* -- call-frequency weighted call graph --------------------------------- *)

type call_freqs = {
  cf_inst : Interp.t;
  cf_edges : R.t;
      (* <callsite, method> restricted to reachable sites,
         weight = static call frequency *)
  cf_hot : R.t;  (* <method>, weight = summed reachable in-edge frequency *)
}

(* Static frequency per resolved call edge: propagate Freq-style
   call-graph weights over the subject program's own call graph
   (entries at weight 1, every call site multiplying by [site_factor],
   saturating), then weight each edge by its caller.  The [max 1] floor
   keeps the weighted relation's support exactly the boolean callEdge
   set, which the differential gate depends on. *)
let edge_weights ?(site_factor = 8) (p : P.t) ~call_edges =
  let in_method = Hashtbl.create 64 in
  List.iter
    (fun (cs : P.call_site) ->
      Hashtbl.replace in_method cs.P.cs_id cs.P.cs_in_method)
    p.P.calls;
  let edges =
    List.filter_map
      (function
        | [ cs; callee ] ->
          Option.map
            (fun caller -> (caller, callee, site_factor))
            (Hashtbl.find_opt in_method cs)
        | _ -> None)
      call_edges
  in
  let w =
    Jedd_cost.Freq.graph_weights ~n:p.P.n_methods ~entries:p.P.entry_methods
      ~edges
  in
  List.filter_map
    (function
      | [ cs; callee ] ->
        let freq =
          match Hashtbl.find_opt in_method cs with
          | Some caller ->
            max 1 (Jedd_cost.Freq.sat_mul w.(caller) site_factor)
          | None -> 1
        in
        Some ([ cs; callee ], freq)
      | _ -> None)
    call_edges

let run_call_freqs ?(node_capacity = 1 lsl 16) ?node_limit ?site_factor
    (p : P.t) ~call_edges =
  let compiled =
    match
      Driver.compile
        [ ("CallGraph.jedd", Common.preamble p ^ Callgraph.source) ]
    with
    | Ok c -> c
    | Error e ->
      failwith ("weighted call graph: " ^ Driver.error_to_string e)
  in
  let inst =
    Driver.instantiate ~node_capacity ?node_limit ~backend:`Mtbdd compiled
  in
  Callgraph.load_facts inst p ~call_edges;
  Callgraph.run inst;
  let u = Interp.universe inst in
  let ce_schema = R.schema (Interp.get_field inst "CallGraph.callEdge") in
  let weighted =
    R.of_weighted_tuples u ce_schema (edge_weights ?site_factor p ~call_edges)
  in
  (* Restrict to reachable call sites: intersection on the mtbdd backend
     is the pointwise product, so joining with the 0/1 reachableSites
     mask keeps every surviving edge's frequency unchanged. *)
  let sites = Interp.get_field inst "CallGraph.reachableSites" in
  let callsite = attr_named ce_schema "callsite" in
  let live =
    R.join ~label:"freq-edges" weighted [ callsite ] sites [ callsite ]
  in
  let hot = R.project_sum ~label:"method-hotness" live [ callsite ] in
  R.release weighted;
  { cf_inst = inst; cf_edges = live; cf_hot = hot }

let edge_freqs_list t =
  R.fold_weighted t.cf_edges ~init:[] ~f:(fun acc tup w ->
      match tup with [ cs; m ] -> ((cs, m), w) :: acc | _ -> acc)
  |> List.rev

let method_hotness_list t =
  R.fold_weighted t.cf_hot ~init:[] ~f:(fun acc tup w ->
      match tup with [ m ] -> (m, w) :: acc | _ -> acc)
  |> List.rev
