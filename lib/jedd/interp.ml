open Tast
module U = Jedd_relation.Universe
module Dom = Jedd_relation.Domain
module Phys = Jedd_relation.Physdom
module Attr = Jedd_relation.Attribute
module Schema = Jedd_relation.Schema
module R = Jedd_relation.Relation

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type t = {
  prog : tprogram;
  asg : Encode.assignment;
  u : U.t;
  domains : (string, Dom.t) Hashtbl.t;
  attrs : (string, Attr.t) Hashtbl.t;
  physdoms : (string, Phys.t) Hashtbl.t;
  fields : (var_key, R.t ref) Hashtbl.t;
  liveness : (string, Liveness.t) Hashtbl.t;  (* per qualified method *)
  liveness_lock : Mutex.t;
      (* the table fills lazily on first call of each method; interpreter
         instances are shared read-mostly when analyses run on separate
         domains, so the fill must be a critical section *)
  mutable print_hook : string -> unit;
}

type value = VRel of R.t | VObj of int

let universe t = t.u

let domain t name =
  match Hashtbl.find_opt t.domains name with
  | Some d -> d
  | None -> fail "unknown domain %s" name

let attribute t name =
  match Hashtbl.find_opt t.attrs name with
  | Some a -> a
  | None -> fail "unknown attribute %s" name

let physdom t name =
  match Hashtbl.find_opt t.physdoms name with
  | Some p -> p
  | None -> fail "unknown physical domain %s" name

(* The runtime layout of an attribute list at a given constraint site. *)
let schema_at t site (schema : attr_info list) =
  Schema.make
    (List.map
       (fun (a : attr_info) ->
         {
           Schema.attr = attribute t a.a_name;
           phys = physdom t (t.asg.Encode.phys_of site a.a_name).p_name;
         })
       schema)

let schema_of_var t key =
  match Hashtbl.find_opt t.prog.vars key with
  | Some v -> schema_at t (Constraints.S_var key) v.v_schema
  | None -> fail "unknown variable %s" key

let set_print_hook t hook = t.print_hook <- hook

let instantiate_base ?(node_capacity = 1 lsl 16) ?node_limit ?backend
    (prog : tprogram) (asg : Encode.assignment) : t =
  let u = U.create ~node_capacity ?node_limit ?backend () in
  let physdoms = Hashtbl.create 16 in
  List.iter
    (fun (p : phys_info) ->
      let bits =
        match List.assoc_opt p.p_name asg.Encode.widths with
        | Some w -> w
        | None -> max 1 (Option.value p.p_min_bits ~default:1)
      in
      Hashtbl.add physdoms p.p_name (Phys.declare u ~name:p.p_name ~bits))
    prog.physdoms;
  let domains = Hashtbl.create 16 in
  List.iter
    (fun (d : domain_info) ->
      Hashtbl.add domains d.d_name (Dom.declare ~name:d.d_name ~size:d.d_size ()))
    prog.domains;
  let attrs = Hashtbl.create 16 in
  List.iter
    (fun (a : attr_info) ->
      Hashtbl.add attrs a.a_name
        (Attr.declare ~name:a.a_name ~domain:(Hashtbl.find domains a.a_domain.d_name)))
    prog.attrs;
  let t =
    {
      prog;
      asg;
      u;
      domains;
      attrs;
      physdoms;
      fields = Hashtbl.create 32;
      liveness = Hashtbl.create 16;
      liveness_lock = Mutex.create ();
      print_hook = print_string;
    }
  in
  (* every field starts as 0B at its assigned layout (§4.2: one
     container per field) *)
  Hashtbl.iter
    (fun key (v : var_info) ->
      if v.v_kind = Vfield then
        Hashtbl.add t.fields key
          (ref (R.empty u (schema_at t (Constraints.S_var key) v.v_schema))))
    prog.vars;
  t

(* -- evaluation -------------------------------------------------------------- *)

type frame = {
  meth : string;  (* qualified name, for return-site layouts *)
  locals : (var_key, R.t ref) Hashtbl.t;
  objs : (string, int) Hashtbl.t;
}

exception Return_value of R.t option

(* evaluation yields a relation plus ownership: temporaries are released
   by their consumer; variable reads are owned by the variable *)
type owned = { rel : R.t; owned : bool }

let read_var t frame key =
  match Hashtbl.find_opt frame.locals key with
  | Some r -> !r
  | None -> (
    match Hashtbl.find_opt t.fields key with
    | Some r -> !r
    | None -> fail "variable %s has no storage" key)

let write_var t frame key rel =
  let slot =
    match Hashtbl.find_opt frame.locals key with
    | Some r -> r
    | None -> (
      match Hashtbl.find_opt t.fields key with
      | Some r -> r
      | None -> fail "variable %s has no storage" key)
  in
  let old = !slot in
  slot := rel;
  (* §4.2 case 2: the overwritten BDD's count drops immediately *)
  R.release old

let release_if_owned o = if o.owned then R.release o.rel

(* Take ownership of a value coerced to a storage layout (declared
   attribute order included). *)
let own_at target (o : owned) =
  let c = R.coerce o.rel target in
  if c == o.rel then (if o.owned then o.rel else R.dup o.rel)
  else begin
    release_if_owned o;
    c
  end

(* Coerce an evaluated operand to the dummy-replace wrapper's layout.
   When the assignment gave the wrapper the same layout, this is the
   no-op replace the translator removes (§3.3.2). *)
let consume t frame eval_fn (child : texpr) ~(fallback : Schema.t option) =
  if child.is_poly then begin
    let sch =
      match fallback with
      | Some s -> s
      | None -> fail "0B/1B in a context with no expected schema"
    in
    match child.edesc with
    | TEmpty -> { rel = R.empty t.u sch; owned = true }
    | TFull -> { rel = R.full t.u sch; owned = true }
    | _ -> assert false
  end
  else begin
    let o = eval_fn frame child in
    let target = schema_at t (Constraints.S_wrap child.eid) child.eschema in
    let coerced =
      R.coerce ~label:(Format.asprintf "%a" Ast.pp_pos child.epos) o.rel target
    in
    if coerced == o.rel then o
    else begin
      release_if_owned o;
      { rel = coerced; owned = true }
    end
  end

let rec eval t frame (e : texpr) : owned =
  let site = Constraints.S_expr e.eid in
  match e.edesc with
  | TEmpty | TFull -> fail "0B/1B evaluated without context at %s"
                        (Format.asprintf "%a" Ast.pp_pos e.epos)
  | TVar (_, key) -> { rel = read_var t frame key; owned = false }
  | TLiteral pieces ->
    let sch = schema_at t site e.eschema in
    let objs =
      List.map
        (fun (o, _) ->
          match o with
          | Tobj_int n -> n
          | Tobj_var (name, _) -> (
            match Hashtbl.find_opt frame.objs name with
            | Some v -> v
            | None -> fail "object parameter %s unbound" name))
        pieces
    in
    { rel = R.tuple t.u sch objs; owned = true }
  | TBinop (op, l, r) ->
    let lo = consume t frame (eval t) l ~fallback:None in
    let target_fallback = Some (R.schema lo.rel) in
    let ro = consume t frame (eval t) r ~fallback:target_fallback in
    let f =
      match op with
      | Ast.Union -> R.union
      | Ast.Inter -> R.inter
      | Ast.Diff -> R.diff
    in
    let result = f ~label:(pos_label e) lo.rel ro.rel in
    release_if_owned lo;
    release_if_owned ro;
    { rel = result; owned = true }
  | TReplace (reps, c) ->
    let co = consume t frame (eval t) c ~fallback:None in
    let result =
      List.fold_left
        (fun (acc : owned) rep ->
          let next =
            match rep with
            | TProj a ->
              R.project_away ~label:(pos_label e) acc.rel [ attribute t a.a_name ]
            | TRen (a, b) ->
              R.rename ~label:(pos_label e) acc.rel
                [ (attribute t a.a_name, attribute t b.a_name) ]
            | TCopy (a, b, c') ->
              let copied =
                R.copy ~label:(pos_label e)
                  ~phys:(physdom t (t.asg.Encode.phys_of site c'.a_name).p_name)
                  acc.rel (attribute t a.a_name) ~as_:(attribute t c'.a_name)
              in
              if a.a_name = b.a_name then copied
              else begin
                let renamed =
                  R.rename copied [ (attribute t a.a_name, attribute t b.a_name) ]
                in
                R.release copied;
                renamed
              end
          in
          release_if_owned acc;
          { rel = next; owned = true })
        co reps
    in
    result
  | TJoin (kind, l, la, r, ra) ->
    let lo = consume t frame (eval t) l ~fallback:None in
    let ro = consume t frame (eval t) r ~fallback:None in
    let lattrs = List.map (fun a -> attribute t a.a_name) la in
    let rattrs = List.map (fun a -> attribute t a.a_name) ra in
    let result =
      match kind with
      | Ast.Join -> R.join ~label:(pos_label e) lo.rel lattrs ro.rel rattrs
      | Ast.Compose -> R.compose ~label:(pos_label e) lo.rel lattrs ro.rel rattrs
    in
    release_if_owned lo;
    release_if_owned ro;
    { rel = result; owned = true }
  | TCall (q, args) -> (
    match call_method t q (eval_args t frame q args) with
    | Some rel -> { rel; owned = true }
    | None -> fail "void method %s used as an expression" q)

and pos_label (e : texpr) = Format.asprintf "%a" Ast.pp_pos e.epos

and eval_args t frame q (args : targ list) : value list =
  let m = Hashtbl.find t.prog.methods q in
  List.map2
    (fun (arg : targ) (p : tparam) ->
      match (arg, p) with
      | Targ_obj (Tobj_int n), _ -> VObj n
      | Targ_obj (Tobj_var (name, _)), _ -> (
        match Hashtbl.find_opt frame.objs name with
        | Some v -> VObj v
        | None -> fail "object parameter %s unbound" name)
      | Targ_rel te, Tparam_rel key ->
        let target =
          schema_at t (Constraints.S_var key)
            (Hashtbl.find t.prog.vars key).v_schema
        in
        let o = consume t frame (eval t) te ~fallback:(Some target) in
        (* hand ownership to the callee *)
        if o.owned then VRel o.rel else VRel (R.dup o.rel)
      | Targ_rel _, Tparam_obj _ -> assert false)
    args m.tm_params

and eval_cond t frame (c : tcond) : bool =
  match c with
  | TBool b -> b
  | TNot c -> not (eval_cond t frame c)
  | TAnd (a, b) -> eval_cond t frame a && eval_cond t frame b
  | TOr (a, b) -> eval_cond t frame a || eval_cond t frame b
  | TCmp_eq (l, r) | TCmp_ne (l, r) ->
    let eq = compare_rels t frame l r in
    (match c with TCmp_eq _ -> eq | _ -> not eq)

and compare_rels t frame (l : texpr) (r : texpr) : bool =
  (* [Compare] allows 0B/1B on either side; normalise the constant to
     the right (comparison is symmetric) *)
  let l, r = if l.is_poly then (r, l) else (l, r) in
  let lo = consume t frame (eval t) l ~fallback:None in
  let result =
    if r.is_poly then
      match r.edesc with
      | TEmpty -> R.is_empty lo.rel
      | TFull ->
        let full = R.full t.u (R.schema lo.rel) in
        let e = R.equal lo.rel full in
        R.release full;
        e
      | _ -> assert false
    else begin
      let ro = consume t frame (eval t) r ~fallback:(Some (R.schema lo.rel)) in
      let e = R.equal lo.rel ro.rel in
      release_if_owned ro;
      e
    end
  in
  release_if_owned lo;
  result

and exec t frame (s : tstmt) : unit =
  exec_stmt t frame s;
  (* §4.2: release variables whose last use was this statement (the
     static liveness analysis ran at instantiation) *)
  let lv_opt =
    Mutex.lock t.liveness_lock;
    let v = Hashtbl.find_opt t.liveness frame.meth in
    Mutex.unlock t.liveness_lock;
    v
  in
  match lv_opt with
  | Some lv ->
    List.iter
      (fun key ->
        match Hashtbl.find_opt frame.locals key with
        | Some slot -> R.release !slot
        | None -> ())
      (Liveness.kills_after lv s)
  | None -> ()

and exec_stmt t frame (s : tstmt) : unit =
  match s with
  | TDecl (key, init, _) ->
    let v = Hashtbl.find t.prog.vars key in
    let target = schema_at t (Constraints.S_var key) v.v_schema in
    let value =
      match init with
      | None -> R.empty t.u target
      | Some te ->
        let o = consume t frame (eval t) te ~fallback:(Some target) in
        own_at target o
    in
    (* redeclaration in a later loop iteration releases the old handle *)
    (match Hashtbl.find_opt frame.locals key with
    | Some old -> R.release !old
    | None -> ());
    Hashtbl.replace frame.locals key (ref value)
  | TAssign (key, _, te, _) ->
    let v = Hashtbl.find t.prog.vars key in
    let target = schema_at t (Constraints.S_var key) v.v_schema in
    let o = consume t frame (eval t) te ~fallback:(Some target) in
    write_var t frame key (own_at target o)
  | TOp_assign (op, key, _, te, _) ->
    let v = Hashtbl.find t.prog.vars key in
    let target = schema_at t (Constraints.S_var key) v.v_schema in
    let o = consume t frame (eval t) te ~fallback:(Some target) in
    let current = read_var t frame key in
    let f =
      match op with
      | Ast.Union -> R.union
      | Ast.Inter -> R.inter
      | Ast.Diff -> R.diff
    in
    let updated = f current o.rel in
    release_if_owned o;
    write_var t frame key updated
  | TIf (c, th, el) ->
    if eval_cond t frame c then exec t frame th
    else Option.iter (exec t frame) el
  | TWhile (c, body) ->
    while eval_cond t frame c do
      exec t frame body
    done
  | TDo_while (body, c) ->
    let continue_loop = ref true in
    while !continue_loop do
      exec t frame body;
      continue_loop := eval_cond t frame c
    done
  | TBlock stmts -> List.iter (exec t frame) stmts
  | TReturn (None, _) -> raise (Return_value None)
  | TReturn (Some te, _) ->
    let fallback =
      match (Hashtbl.find t.prog.methods frame.meth).tm_return with
      | Some schema ->
        Some (schema_at t (Constraints.S_return frame.meth) schema)
      | None -> None
    in
    let o = consume t frame (eval t) te ~fallback in
    (* the wrapper layout for a return equals the return-site layout *)
    raise (Return_value (Some (if o.owned then o.rel else R.dup o.rel)))
  | TExpr te -> (
    match te.edesc with
    | TCall (q, args) -> (
      (* a statement-level call may be void *)
      match call_method t q (eval_args t frame q args) with
      | Some r -> R.release r
      | None -> ())
    | _ ->
      if not te.is_poly then begin
        let o = eval t frame te in
        release_if_owned o
      end)
  | TPrint te ->
    if te.is_poly then t.print_hook "0B/1B\n"
    else begin
      (* printing is layout-independent: no wrapper, no coercion *)
      let o = eval t frame te in
      t.print_hook (R.to_string o.rel);
      release_if_owned o
    end

and call_method t q (args : value list) : R.t option =
  let m =
    match Hashtbl.find_opt t.prog.methods q with
    | Some m -> m
    | None -> fail "unknown method %s" q
  in
  (let need =
     Mutex.lock t.liveness_lock;
     let n = not (Hashtbl.mem t.liveness q) in
     Mutex.unlock t.liveness_lock;
     n
   in
   if need then begin
     (* analyze outside the lock; a racing duplicate is idempotent *)
     let lv = Liveness.analyze m in
     Mutex.lock t.liveness_lock;
     if not (Hashtbl.mem t.liveness q) then Hashtbl.replace t.liveness q lv;
     Mutex.unlock t.liveness_lock
   end);
  let frame = { meth = q; locals = Hashtbl.create 8; objs = Hashtbl.create 4 } in
  if List.length args <> List.length m.tm_params then
    fail "method %s expects %d arguments" q (List.length m.tm_params);
  List.iter2
    (fun (p : tparam) (v : value) ->
      match (p, v) with
      | Tparam_rel key, VRel r ->
        let target =
          schema_at t (Constraints.S_var key)
            (Hashtbl.find t.prog.vars key).v_schema
        in
        let r' =
          let c = R.coerce r target in
          if c == r then r
          else begin
            R.release r;
            c
          end
        in
        Hashtbl.replace frame.locals key (ref r')
      | Tparam_obj (name, _), VObj n -> Hashtbl.replace frame.objs name n
      | Tparam_rel _, VObj _ -> fail "method %s: relation argument expected" q
      | Tparam_obj _, VRel _ -> fail "method %s: object argument expected" q)
    m.tm_params args;
  let result =
    try
      List.iter (exec t frame) m.tm_body;
      None
    with Return_value r -> r
  in
  (* §4.2 cases 3/4: locals and parameters die with the frame *)
  Hashtbl.iter (fun _ slot -> R.release !slot) frame.locals;
  result

(* -- host API ------------------------------------------------------------------ *)

let run_field_initialisers t =
  List.iter
    (fun q ->
      if
        String.length q >= 7
        &&
        let parts = String.split_on_char '.' q in
        match parts with
        | [ _; meth ] -> String.length meth > 6 && String.sub meth 0 6 = "<init:"
        | _ -> false
      then ignore (call_method t q []))
    t.prog.method_order

let is_field t key = Hashtbl.mem t.fields key

let get_field t key =
  match Hashtbl.find_opt t.fields key with
  | Some r -> !r
  | None -> fail "unknown field %s" key

let set_field t key rel =
  match Hashtbl.find_opt t.fields key with
  | Some slot ->
    let v = Hashtbl.find t.prog.vars key in
    let target = schema_at t (Constraints.S_var key) v.v_schema in
    let rel' =
      let c = R.coerce rel target in
      if c == rel then R.dup rel else c
    in
    let old = !slot in
    slot := rel';
    R.release old
  | None -> fail "unknown field %s" key

let call t q args = call_method t q args

(* Declaration-order registry listings for the snapshot layer: the
   program's declaration lists drive the order, the instance tables
   supply the runtime values. *)
let registries t =
  ( List.map (fun (d : domain_info) -> (d.d_name, Hashtbl.find t.domains d.d_name))
      t.prog.domains,
    List.map (fun (a : attr_info) -> (a.a_name, Hashtbl.find t.attrs a.a_name))
      t.prog.attrs,
    List.map (fun (p : phys_info) -> (p.p_name, Hashtbl.find t.physdoms p.p_name))
      t.prog.physdoms )

let fields t =
  Hashtbl.fold (fun key slot acc -> (key, !slot) :: acc) t.fields []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let instantiate ?node_capacity ?node_limit ?backend prog asg =
  let t = instantiate_base ?node_capacity ?node_limit ?backend prog asg in
  run_field_initialisers t;
  t
