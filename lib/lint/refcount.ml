(* JL100: the static refcount-discipline verifier.

   An abstract interpretation of [Ir.Discipline] over the IR
   control-flow graph: registers move through
   unborn/owned/borrowed/dead states, joins merge path states, and the
   fixpoint proves that on every path each owned intermediate is freed
   or consumed exactly once, nothing is read after its value is gone,
   and no owned value survives to method exit.  The transition rules
   are the same ones [Ir_interp] replays dynamically under
   JEDD_CHECK_IR=1, so a proof here is a proof about what the
   interpreter will actually do. *)

open Jedd_lang
module D = Ir.Discipline

module Solver = Jedd_dataflow.Solver (struct
  type t = D.frame option  (* None = unreachable *)

  let bottom = None

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (D.join_frame a b)

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b -> D.equal_frame a b
    | _ -> false
end)

(* the abstract effect of one CFG node; collected errors are dropped
   during the fixpoint and gathered in a clean pass afterwards *)
let node_effect (fr : D.frame) (node : Cfg.inode) : string list =
  match node with
  | Cfg.I_instr i -> D.step fr i
  | Cfg.I_cmp (r, r2) -> D.compare_reads fr r r2
  | Cfg.I_ret (Some r) -> D.consume_return fr r
  | Cfg.I_ret None | Cfg.I_entry | Cfg.I_exit | Cfg.I_join -> []

let verify_method (m : Ir.cmethod) : string list =
  let cfg = Cfg.build_ir m in
  let transfer n fact =
    match fact with
    | None -> None
    | Some fr ->
      let fr = D.copy fr in
      ignore (node_effect fr cfg.Cfg.inodes.(n));
      Some fr
  in
  let res =
    Solver.run cfg.Cfg.igraph Jedd_dataflow.Forward
      ~init:(fun n ->
        if n = cfg.Cfg.ientry then Some (D.init m.Ir.c_nregs) else None)
      ~transfer
  in
  (* report from the stable fixpoint only, in node order, deduplicated *)
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add e =
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      out := e :: !out
    end
  in
  let size = Jedd_dataflow.Graph.size cfg.Cfg.igraph in
  for n = 0 to size - 1 do
    match res.Solver.before n with
    | None -> ()
    | Some fr -> List.iter add (node_effect (D.copy fr) cfg.Cfg.inodes.(n))
  done;
  (match res.Solver.before cfg.Cfg.iexit with
  | Some fr -> List.iter add (D.leaks fr)
  | None -> ());
  List.rev !out

let check (prog : Tast.tprogram) (methods : (string, Ir.cmethod) Hashtbl.t) :
    Diag.t list * int * int =
  let diags = ref [] in
  let violations = ref 0 in
  let verified = ref 0 in
  List.iter
    (fun q ->
      match Hashtbl.find_opt methods q with
      | None -> ()
      | Some m ->
        incr verified;
        let errs = verify_method m in
        if errs <> [] then begin
          violations := !violations + List.length errs;
          let pos =
            match Hashtbl.find_opt prog.Tast.methods q with
            | Some tm -> tm.Tast.tm_pos
            | None -> { Ast.file = "<ir>"; line = 0; col = 0 }
          in
          diags :=
            Diag.make ~notes:errs ~code:"JL100" ~severity:Diag.Error ~pos
              (Printf.sprintf
                 "register discipline violation in the lowered code of %s" q)
            :: !diags
        end)
    prog.Tast.method_order;
  (!diags, !verified, !violations)
