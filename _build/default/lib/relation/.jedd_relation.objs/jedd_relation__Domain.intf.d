lib/relation/domain.mli:
